package crowdcdn

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation (run them all with `go test -bench=. -benchmem`), the
// ablation benches called out in DESIGN.md, and micro-benchmarks of the
// core substrates. The figure benches run the same code as cmd/cdnexp
// at a reduced scale (benchScale) so a full -bench=. pass stays in the
// minutes; run cmd/cdnexp for paper-scale numbers.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/mcmf"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/region"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/similarity"
	"repro/internal/stats"
	"repro/internal/trace"
)

// benchScale shrinks the paper's worlds for benchmarking.
const benchScale = 0.15

var (
	benchDataOnce sync.Once
	benchWorld    *trace.World
	benchTrace    *trace.Trace
	benchRunnerV  *exp.Runner
)

// benchData lazily generates one shared eval-scale world for all
// benchmarks (generation itself is benchmarked separately).
func benchData(b *testing.B) (*trace.World, *trace.Trace, *exp.Runner) {
	b.Helper()
	benchDataOnce.Do(func() {
		cfg := trace.EvalConfig()
		cfg.NumHotspots = 80
		cfg.NumVideos = 4000
		cfg.NumUsers = 8000
		cfg.NumRequests = 14400
		cfg.NumRegions = 8
		world, tr, err := trace.Generate(cfg)
		if err != nil {
			panic(fmt.Sprintf("bench data generation failed: %v", err))
		}
		benchWorld, benchTrace = world, tr
		benchRunnerV = exp.NewRunner(1, benchScale)
	})
	return benchWorld, benchTrace, benchRunnerV
}

// benchFigure runs one paper experiment per iteration and logs its
// headline notes once.
func benchFigure(b *testing.B, id string) {
	_, _, runner := benchData(b)
	// Warm the runner's cached worlds so iterations time the analysis,
	// not one-off trace generation.
	if _, err := runner.Run(id); err != nil {
		b.Fatalf("warm-up %s: %v", id, err)
	}
	b.ResetTimer()
	var figs []*exp.Figure
	for i := 0; i < b.N; i++ {
		var err error
		figs, err = runner.Run(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, fig := range figs {
		for _, note := range fig.Notes {
			b.Logf("%s: %s", fig.ID, note)
		}
	}
}

func BenchmarkFig2WorkloadDistribution(b *testing.B) { benchFigure(b, "fig2") }
func BenchmarkFig3aWorkloadCorrelation(b *testing.B) { benchFigure(b, "fig3a") }
func BenchmarkFig3bContentSimilarity(b *testing.B)   { benchFigure(b, "fig3b") }
func BenchmarkFig5Deployment(b *testing.B)           { benchFigure(b, "fig5") }
func BenchmarkFig6CapacitySweep(b *testing.B)        { benchFigure(b, "fig6") }
func BenchmarkFig7CacheSweep(b *testing.B)           { benchFigure(b, "fig7") }
func BenchmarkFig8RunningTime(b *testing.B)          { benchFigure(b, "fig8") }
func BenchmarkFig9ThetaSweep(b *testing.B)           { benchFigure(b, "fig9") }

// benchPolicy simulates the shared world under a policy and reports the
// paper's metrics alongside the timing.
func benchPolicy(b *testing.B, policy sim.Scheduler) {
	world, tr, _ := benchData(b)
	b.ResetTimer()
	var m *sim.Metrics
	for i := 0; i < b.N; i++ {
		var err error
		m, err = sim.Run(world, tr, policy, sim.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(m.HotspotServingRatio, "serving")
	b.ReportMetric(m.AvgAccessDistanceKm, "dist-km")
	b.ReportMetric(m.ReplicationCost, "repl")
	b.ReportMetric(m.CDNServerLoad, "cdn-load")
}

func BenchmarkSchemeRBCAer(b *testing.B)  { benchPolicy(b, scheme.NewRBCAer(core.DefaultParams())) }
func BenchmarkSchemeNearest(b *testing.B) { benchPolicy(b, scheme.Nearest{}) }
func BenchmarkSchemeRandom(b *testing.B)  { benchPolicy(b, scheme.Random{RadiusKm: 1.5}) }
func BenchmarkSchemeLPBased(b *testing.B) { benchPolicy(b, scheme.LPBased{}) }

// Ablation: value of content aggregation (guide nodes) and the
// guide-edge pricing formula (DESIGN.md's avg-distance vs the paper's
// literal avg-capacity).
func BenchmarkAblationGuideCost(b *testing.B) {
	variants := []struct {
		name string
		mut  func(*core.Params)
	}{
		{"avg-distance", func(p *core.Params) { p.GuideCost = core.GuideCostAvgDistance }},
		{"avg-capacity", func(p *core.Params) { p.GuideCost = core.GuideCostAvgCapacity }},
		{"no-guides", func(p *core.Params) { p.DisableGuides = true }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			params := core.DefaultParams()
			v.mut(&params)
			benchPolicy(b, scheme.NewRBCAer(params))
		})
	}
}

// Ablation: the incremental θ sweep versus a single round at θ2.
func BenchmarkAblationThetaSchedule(b *testing.B) {
	for _, single := range []bool{false, true} {
		name := "sweep"
		if single {
			name = "single-shot"
		}
		b.Run(name, func(b *testing.B) {
			params := core.DefaultParams()
			params.SingleShotTheta = single
			benchPolicy(b, scheme.NewRBCAer(params))
		})
	}
}

// Ablation: oracle demand versus learned (EWMA / AR) demand over a
// multi-slot day.
func BenchmarkAblationPrediction(b *testing.B) {
	cfg := trace.EvalConfig()
	cfg.NumHotspots = 60
	cfg.NumVideos = 3000
	cfg.NumUsers = 6000
	cfg.NumRequests = 60000
	cfg.NumRegions = 8
	cfg.Slots = 48
	world, tr, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name   string
		policy sim.Scheduler
	}{
		{"oracle", scheme.NewRBCAer(core.DefaultParams())},
		{"seasonal24", &scheme.Predicted{Inner: scheme.NewRBCAer(core.DefaultParams()), Method: predict.Seasonal{Period: 24}}},
		{"ewma", &scheme.Predicted{Inner: scheme.NewRBCAer(core.DefaultParams()), Method: predict.EWMA{Alpha: 0.5}}},
		{"ar2", &scheme.Predicted{Inner: scheme.NewRBCAer(core.DefaultParams()), Method: predict.AR{Order: 2}}},
		{"last-value", &scheme.Predicted{Inner: scheme.NewRBCAer(core.DefaultParams()), Method: predict.LastValue{}}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var m *sim.Metrics
			for i := 0; i < b.N; i++ {
				var err error
				m, err = sim.Run(world, tr, v.policy, sim.Options{Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(m.HotspotServingRatio, "serving")
			b.ReportMetric(m.CDNServerLoad, "cdn-load")
		})
	}
}

// Ablation: MCMF solver choice inside RBCAer.
func BenchmarkAblationMCMF(b *testing.B) {
	for _, alg := range []mcmf.Algorithm{mcmf.SSPDijkstra, mcmf.BellmanFord} {
		b.Run(alg.String(), func(b *testing.B) {
			params := core.DefaultParams()
			params.Algorithm = alg
			benchPolicy(b, scheme.NewRBCAer(params))
		})
	}
}

// Ablation: sensitivity to the content-cluster cut threshold.
func BenchmarkAblationClusterCut(b *testing.B) {
	for _, cut := range []float64{0.5, 0.75, 0.85} {
		b.Run(fmt.Sprintf("cut=%.2f", cut), func(b *testing.B) {
			params := core.DefaultParams()
			params.ClusterCut = cut
			benchPolicy(b, scheme.NewRBCAer(params))
		})
	}
}

func BenchmarkSchemePowerOfTwo(b *testing.B) { benchPolicy(b, scheme.PowerOfTwo{RadiusKm: 1.5}) }
func BenchmarkSchemeHierarchical(b *testing.B) {
	benchPolicy(b, region.NewPolicy(3.0))
}

// Extension: robustness to crowdsourced-device churn.
func BenchmarkExtChurn(b *testing.B) {
	world, tr, _ := benchData(b)
	for _, churn := range []float64{0, 0.1, 0.3} {
		b.Run(fmt.Sprintf("churn=%.1f", churn), func(b *testing.B) {
			var m *sim.Metrics
			for i := 0; i < b.N; i++ {
				var err error
				m, err = sim.Run(world, tr, scheme.NewRBCAer(core.DefaultParams()),
					sim.Options{Seed: 1, HotspotChurn: churn})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(m.HotspotServingRatio, "serving")
			b.ReportMetric(float64(m.OfflineHotspotSlots), "offline-slots")
		})
	}
}

// Extension: reactive caching baselines.
func BenchmarkExtReactive(b *testing.B) {
	world, tr, _ := benchData(b)
	for _, policy := range []sim.Scheduler{scheme.NewReactiveLRU(), scheme.NewReactiveLFU()} {
		b.Run(policy.Name(), func(b *testing.B) {
			var m *sim.Metrics
			for i := 0; i < b.N; i++ {
				var err error
				m, err = sim.Run(world, tr, policy, sim.Options{Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(m.HotspotServingRatio, "serving")
			b.ReportMetric(m.ReplicationCost, "repl")
		})
	}
}

// --- substrate micro-benchmarks ---

func BenchmarkMCMFSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 200
	type edge struct {
		from, to int
		cap      int64
		cost     float64
	}
	edges := make([]edge, 0, n*6)
	for i := 0; i < n*6; i++ {
		from, to := rng.Intn(n), rng.Intn(n)
		if from == to {
			continue
		}
		edges = append(edges, edge{from, to, int64(1 + rng.Intn(20)), rng.Float64() * 10})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := mcmf.NewGraph(n)
		for _, e := range edges {
			if _, err := g.AddEdge(e.from, e.to, e.cap, e.cost); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := g.MinCostMaxFlow(0, n-1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterAgglomerative(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const n = 300
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := rng.Float64()
			dist[i][j], dist[j][i] = v, v
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := cluster.Agglomerative(n, func(a, c int) float64 { return dist[a][c] }, cluster.Complete)
		if err != nil {
			b.Fatal(err)
		}
		if got := d.Cut(0.5); len(got) == 0 {
			b.Fatal("empty cut")
		}
	}
}

func BenchmarkGridNearest(b *testing.B) {
	world, tr, _ := benchData(b)
	index, err := world.Index()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := tr.Requests[i%len(tr.Requests)]
		if _, _, ok := index.Nearest(req.Location); !ok {
			b.Fatal("no nearest")
		}
	}
}

func BenchmarkJaccardTopSets(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	mkSet := func() similarity.Set {
		s := make(similarity.Set)
		for i := 0; i < 60; i++ {
			s.Add(rng.Intn(400))
		}
		return s
	}
	sa, sb := mkSet(), mkSet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = similarity.Jaccard(sa, sb)
	}
}

func BenchmarkTraceGenerate(b *testing.B) {
	cfg := trace.EvalConfig()
	cfg.NumHotspots = 60
	cfg.NumVideos = 3000
	cfg.NumUsers = 5000
	cfg.NumRequests = 10000
	cfg.NumRegions = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := trace.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRBCAerSchedulingRound(b *testing.B) {
	world, tr, _ := benchData(b)
	index, err := world.Index()
	if err != nil {
		b.Fatal(err)
	}
	ctx, err := sim.BuildSlotContext(world, index, 0, tr.Requests, stats.SplitRand(1, "bench"))
	if err != nil {
		b.Fatal(err)
	}
	sched, err := core.New(world, core.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Schedule(ctx.Demand); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedule measures one RBCAer scheduling round under
// different worker counts. The Workers knob parallelises the round's
// O(m²) loops (over×under distance cache, Jaccard matrix, candidate
// generation) without changing the plan, so the speedup here is the
// acceptance test for the parallel hot path.
func BenchmarkSchedule(b *testing.B) {
	world, tr, _ := benchData(b)
	index, err := world.Index()
	if err != nil {
		b.Fatal(err)
	}
	ctx, err := sim.BuildSlotContext(world, index, 0, tr.Requests, stats.SplitRand(1, "bench"))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			params := core.DefaultParams()
			params.Workers = workers
			sched, err := core.New(world, params)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sched.Schedule(ctx.Demand); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScheduleObs measures one RBCAer scheduling round with the
// observability layer off versus fully on (registry counters plus
// round events) — the disabled variant must stay within noise of the
// pre-instrumentation hot path, and the enabled delta is the price of
// a fully observed round.
func BenchmarkScheduleObs(b *testing.B) {
	world, tr, _ := benchData(b)
	index, err := world.Index()
	if err != nil {
		b.Fatal(err)
	}
	ctx, err := sim.BuildSlotContext(world, index, 0, tr.Requests, stats.SplitRand(1, "bench"))
	if err != nil {
		b.Fatal(err)
	}
	for _, enabled := range []bool{false, true} {
		name := "disabled"
		if enabled {
			name = "enabled"
		}
		b.Run(name, func(b *testing.B) {
			params := core.DefaultParams()
			if enabled {
				params.Obs = obs.NewRegistry()
				params.RecordEvents = true
			}
			sched, err := core.New(world, params)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sched.Schedule(ctx.Demand); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScheduleSlotsParallel measures a multi-slot replay with the
// timeslots scheduled sequentially (sim.Run) versus concurrently
// (sim.RunParallel) — the simulator half of the parallel hot path.
func BenchmarkScheduleSlotsParallel(b *testing.B) {
	cfg := trace.EvalConfig()
	cfg.NumHotspots = 60
	cfg.NumVideos = 3000
	cfg.NumUsers = 6000
	cfg.NumRequests = 48000
	cfg.NumRegions = 8
	cfg.Slots = 8
	world, tr, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	newPolicy := func() sim.Scheduler { return scheme.NewRBCAer(core.DefaultParams()) }
	for _, workers := range []int{1, 0} {
		name := "sequential"
		if workers == 0 {
			name = "concurrent"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunParallel(world, tr, newPolicy, workers, sim.Options{Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSpearman(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 24)
	ys := make([]float64, 24)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.Spearman(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}
