// Online: drive RBCAer over a full day of hourly timeslots, comparing
// oracle per-slot demand against EWMA-predicted demand (the paper
// assumes popularity "can be learned through some popularity
// prediction algorithm"), and inspect one scheduling round's internals
// through the low-level API.
package main

import (
	"fmt"
	"os"

	crowdcdn "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "online: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := crowdcdn.DefaultTraceConfig()
	cfg.NumHotspots = 60
	cfg.NumVideos = 3000
	cfg.NumUsers = 6000
	cfg.NumRequests = 120000
	cfg.NumRegions = 8
	cfg.Slots = 24 // hourly scheduling rounds over one day

	world, tr, err := crowdcdn.Generate(cfg)
	if err != nil {
		return err
	}

	oracle := crowdcdn.NewRBCAer(crowdcdn.DefaultParams())
	ewma := crowdcdn.NewPredicted(crowdcdn.NewRBCAer(crowdcdn.DefaultParams()), 0.5)
	factored := crowdcdn.NewFactoredPredicted(crowdcdn.NewRBCAer(crowdcdn.DefaultParams()))

	fmt.Println("RBCAer over 24 hourly slots (oracle vs learned demand):")
	for _, policy := range []crowdcdn.Scheduler{oracle, factored, ewma} {
		m, err := crowdcdn.Simulate(world, tr, policy, crowdcdn.SimOptions{Seed: 1})
		if err != nil {
			return err
		}
		fmt.Printf("  %-22s serving=%.3f dist=%.2fkm repl=%.3f cdnload=%.3f\n",
			m.Scheme, m.HotspotServingRatio, m.AvgAccessDistanceKm,
			m.ReplicationCost, m.CDNServerLoad)
	}

	// Peek inside one round with the low-level scheduler: aggregate the
	// busiest slot's demand by hand and inspect the plan.
	sched, err := crowdcdn.NewRBCAScheduler(world, crowdcdn.DefaultParams())
	if err != nil {
		return err
	}
	bySlot := tr.BySlot()
	busiest, busiestCount := 0, 0
	for s, reqs := range bySlot {
		if len(reqs) > busiestCount {
			busiest, busiestCount = s, len(reqs)
		}
	}
	index, err := world.Index()
	if err != nil {
		return err
	}
	agg := newDemand(len(world.Hotspots))
	for _, req := range bySlot[busiest] {
		h, _, ok := index.Nearest(req.Location)
		if !ok {
			return fmt.Errorf("no hotspot for request %d", req.ID)
		}
		agg.Add(crowdcdn.HotspotID(h), req.Video, 1)
	}

	plan, err := sched.Schedule(agg)
	if err != nil {
		return err
	}
	fmt.Printf("\nbusiest slot %d (%d requests):\n", busiest, busiestCount)
	fmt.Printf("  overloaded=%d under-utilized=%d content-clusters=%d\n",
		plan.Stats.Overloaded, plan.Stats.Underutilized, plan.Stats.Clusters)
	fmt.Printf("  movable workload=%d, moved=%d (%d guide nodes, %d θ iterations)\n",
		plan.Stats.MaxFlow, plan.Stats.MovedFlow, plan.Stats.GuideNodes, plan.Stats.Iterations)
	fmt.Printf("  %d per-video redirects, %d replicas placed\n",
		len(plan.Redirects), plan.Stats.Replicas)
	return nil
}

// newDemand builds an empty per-hotspot demand aggregation.
func newDemand(numHotspots int) *crowdcdn.Demand {
	d := crowdcdn.Demand{
		PerVideo: make([]map[crowdcdn.VideoID]int64, numHotspots),
		Totals:   make([]int64, numHotspots),
	}
	return &d
}
