// Quickstart: generate a small synthetic crowdsourced CDN, schedule it
// with RBCAer, and print the paper's four evaluation metrics.
package main

import (
	"fmt"
	"os"

	crowdcdn "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// Start from the paper's evaluation configuration and shrink it so
	// the example finishes in well under a second.
	cfg := crowdcdn.DefaultTraceConfig()
	cfg.NumHotspots = 60
	cfg.NumVideos = 3000
	cfg.NumUsers = 6000
	cfg.NumRequests = 8000
	cfg.NumRegions = 8

	world, tr, err := crowdcdn.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("world: %d hotspots over %.0fx%.0f km, %d videos, %d requests\n",
		len(world.Hotspots), world.Bounds.Width(), world.Bounds.Height(),
		world.NumVideos, len(tr.Requests))

	policy := crowdcdn.NewRBCAer(crowdcdn.DefaultParams())
	m, err := crowdcdn.Simulate(world, tr, policy, crowdcdn.SimOptions{Seed: 1})
	if err != nil {
		return err
	}

	fmt.Printf("hotspot serving ratio: %.3f\n", m.HotspotServingRatio)
	fmt.Printf("avg access distance:   %.2f km (CDN misses cost %.1f km)\n",
		m.AvgAccessDistanceKm, world.CDNDistanceKm)
	fmt.Printf("replication cost:      %.3f x video set\n", m.ReplicationCost)
	fmt.Printf("CDN server load:       %.3f of original workload\n", m.CDNServerLoad)
	fmt.Printf("scheduling time:       %v\n", m.SchedulingTime)
	return nil
}
