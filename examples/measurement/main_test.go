package main

import "testing"

// TestRun executes the example end to end, keeping the walkthrough
// compiling and correct as the library evolves.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
