// Measurement: reproduce the paper's Sec. II measurement insights on a
// synthetic city-scale deployment — skewed nearest-routing workloads
// (Fig. 2), low workload correlation between nearby hotspots (Fig. 3a),
// and diverse content similarity (Fig. 3b).
package main

import (
	"fmt"
	"os"

	crowdcdn "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "measurement: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// A quarter-scale measurement world keeps the example fast while
	// preserving the statistics; run cmd/cdnmeasure for full scale.
	cfg := crowdcdn.MeasurementTraceConfig()
	cfg.NumHotspots = 1200
	cfg.NumVideos = 15000
	cfg.NumUsers = 50000
	cfg.NumRequests = 280000
	cfg.NumRegions = 16

	world, tr, err := crowdcdn.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("measurement world: %d hotspots, %d requests over %d hourly slots\n\n",
		len(world.Hotspots), len(tr.Requests), tr.Slots)

	for _, analyze := range []func(*crowdcdn.World, *crowdcdn.Trace, int64) (*crowdcdn.Figure, error){
		crowdcdn.AnalyzeWorkloadDistribution,
		crowdcdn.AnalyzeWorkloadCorrelation,
		crowdcdn.AnalyzeContentSimilarity,
	} {
		fig, err := analyze(world, tr, 1)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %s\n", fig.ID, fig.Title)
		for _, note := range fig.Notes {
			fmt.Printf("  %s\n", note)
		}
		fmt.Println()
	}
	fmt.Println("full CDF tables: go run ./cmd/cdnmeasure")
	return nil
}
