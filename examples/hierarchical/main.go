// Hierarchical: scale RBCAer to a city-size fleet with the
// cross-region mode the paper proposes as future work — RBCAer across
// region-level virtual hotspots, then RBCAer within each region —
// and compare it against flat RBCAer on quality and scheduling time.
package main

import (
	"fmt"
	"os"

	crowdcdn "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "hierarchical: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// A 4x-the-paper fleet over a proportionally larger area.
	cfg := crowdcdn.DefaultTraceConfig()
	cfg.NumHotspots = 1240
	cfg.NumUsers = 120000
	cfg.NumRequests = 850000
	cfg.NumRegions = 56
	cfg.Bounds.MaxX = 34
	cfg.Bounds.MaxY = 22

	world, tr, err := crowdcdn.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("world: %d hotspots, %d requests over %.0fx%.0f km\n\n",
		len(world.Hotspots), len(tr.Requests), world.Bounds.Width(), world.Bounds.Height())

	policies := []crowdcdn.Scheduler{
		crowdcdn.NewRBCAer(crowdcdn.DefaultParams()),
		crowdcdn.NewHierarchical(3.0),
	}
	fmt.Printf("%-22s %8s %9s %8s %14s\n", "scheme", "serving", "dist(km)", "cdnload", "sched-time")
	for _, p := range policies {
		m, err := crowdcdn.Simulate(world, tr, p, crowdcdn.SimOptions{Seed: 1})
		if err != nil {
			return err
		}
		fmt.Printf("%-22s %8.3f %9.2f %8.3f %14v\n",
			m.Scheme, m.HotspotServingRatio, m.AvgAccessDistanceKm,
			m.CDNServerLoad, m.SchedulingTime.Round(1000000))
	}
	fmt.Println("\nthe hierarchical mode schedules faster AND balances across longer")
	fmt.Println("ranges than flat RBCAer's θ2 = 1.5 km neighbourhood allows;")
	fmt.Println("sweep fleet sizes with: go run ./cmd/cdnexp ext-hier")
	return nil
}
