// Comparison: run the paper's three schemes (RBCAer, Nearest, Random)
// on one synthetic workload and print the Sec. V metric comparison,
// mirroring a single column of the paper's Figs. 6/7.
package main

import (
	"fmt"
	"os"

	crowdcdn "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "comparison: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// A mid-size world: ~1/3 of the paper's evaluation scale.
	cfg := crowdcdn.DefaultTraceConfig()
	cfg.NumHotspots = 100
	cfg.NumVideos = 5000
	cfg.NumUsers = 10000
	cfg.NumRequests = 22000
	cfg.NumRegions = 10

	world, tr, err := crowdcdn.Generate(cfg)
	if err != nil {
		return err
	}

	policies := []crowdcdn.Scheduler{
		crowdcdn.NewRBCAer(crowdcdn.DefaultParams()),
		crowdcdn.NewNearest(),
		crowdcdn.NewRandom(1.5),
	}

	fmt.Printf("%-14s  %8s  %9s  %10s  %8s  %12s\n",
		"scheme", "serving", "dist(km)", "repl(x|V|)", "cdnload", "sched-time")
	var base *crowdcdn.Metrics
	for _, p := range policies {
		m, err := crowdcdn.Simulate(world, tr, p, crowdcdn.SimOptions{Seed: 1})
		if err != nil {
			return err
		}
		fmt.Printf("%-14s  %8.3f  %9.2f  %10.3f  %8.3f  %12v\n",
			m.Scheme, m.HotspotServingRatio, m.AvgAccessDistanceKm,
			m.ReplicationCost, m.CDNServerLoad, m.SchedulingTime.Round(1000000))
		if base == nil {
			base = m
		}
	}

	// Headline comparison in the paper's terms (RBCAer vs Nearest).
	nearest, err := crowdcdn.Simulate(world, tr, crowdcdn.NewNearest(), crowdcdn.SimOptions{Seed: 1})
	if err != nil {
		return err
	}
	fmt.Printf("\nRBCAer vs Nearest: %.0f%% lower access distance, %.0f%% lower CDN load\n",
		100*(1-base.AvgAccessDistanceKm/nearest.AvgAccessDistanceKm),
		100*(1-base.CDNServerLoad/nearest.CDNServerLoad))
	return nil
}
