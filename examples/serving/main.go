// Serving: run the online scheduling service in-process, replay a
// generated trace through it over real HTTP with the load generator,
// and inspect the per-slot plans it served — including the ingest,
// lookup, and swap metrics the server records.
//
// The walkthrough mirrors a deployment: requests POST to /ingest as
// they arrive, a slot boundary triggers one RBCAer round on a
// dedicated worker, and GET /redirect answers from the atomically
// swapped current plan. Here slots advance manually (deterministic
// mode); a real deployment sets ServerConfig.SlotDuration instead.
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"

	crowdcdn "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "serving: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := crowdcdn.DefaultTraceConfig()
	cfg.NumHotspots = 24
	cfg.NumVideos = 800
	cfg.NumUsers = 600
	cfg.NumRequests = 4000
	cfg.NumRegions = 4
	cfg.Slots = 5

	world, tr, err := crowdcdn.Generate(cfg)
	if err != nil {
		return err
	}

	// Boot the service on an ephemeral port with manual slots. The
	// registry collects the server's counters and latency histograms.
	reg := crowdcdn.NewMetricsRegistry()
	srv, err := crowdcdn.NewServer(crowdcdn.ServerConfig{
		World:       world,
		Registry:    reg,
		PlanHistory: tr.Slots + 1,
	})
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	fmt.Printf("online scheduler serving %d hotspots at %s\n\n", len(world.Hotspots), base)

	// Replay the trace: each slot's requests are POSTed concurrently,
	// then POST /admin/advance forces the slot boundary and blocks
	// until the slot's plan is live.
	report, err := crowdcdn.ReplayTrace(base, world, tr, crowdcdn.LoadgenOptions{Workers: 8})
	if err != nil {
		return err
	}
	fmt.Println("per-slot plans (from the replay report):")
	for _, sr := range report.Slots {
		fmt.Printf("  slot %d: %d requests -> epoch %d digest %s\n",
			sr.Slot, sr.Accepted, sr.Epoch, sr.Digest)
	}
	fmt.Printf("total: %d accepted, %d rejected\n\n", report.Accepted, report.Rejected)

	// Plan records carry the scheduling outcomes per slot.
	fmt.Println("plan history (GET /plans view):")
	for _, rec := range srv.Plans() {
		fmt.Printf("  slot %d: %d replicas, %d redirect edges, moved flow %d, stranded %d, degraded=%v\n",
			rec.Slot, rec.Replicas, rec.Redirects, rec.MovedFlow, rec.Stranded, rec.Degraded)
	}

	// Ask the live API where a few requests should go. Target -1 is
	// the origin CDN server; anything else is a hotspot id.
	fmt.Println("\nsample lookups against the current plan:")
	for h := 0; h < 3; h++ {
		var resp struct {
			Target int    `json:"target"`
			Digest string `json:"digest"`
		}
		r, err := http.Get(fmt.Sprintf("%s/redirect?video=%d&hotspot=%d", base, h*7, h))
		if err != nil {
			return err
		}
		if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
			r.Body.Close()
			return err
		}
		r.Body.Close()
		fmt.Printf("  video %d at hotspot %d -> target %d (plan %s)\n", h*7, h, resp.Target, resp.Digest)
	}

	// The server's own metrics: ingest/lookup volumes and plan swaps.
	fmt.Println("\nserver metrics:")
	for _, c := range reg.Snapshot(false).Counters {
		fmt.Printf("  %-28s %d\n", c.Name, c.Value)
	}
	return nil
}
