package main

import "testing"

// TestRun executes the walkthrough end to end: in-process server, HTTP
// trace replay, plan history, lookups, and the metrics dump.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
