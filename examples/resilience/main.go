// Resilience: schedule through a correlated regional outage. A blackout
// takes every hotspot within 4 km of the city centre offline for the
// middle slots of the day while a flash crowd hits the hottest videos;
// the simulator re-aggregates demand to the surviving fleet and falls
// back to the CDN for the rest. The run uses SimulateParallel — fault
// injection is deterministic, so the metrics are byte-identical for
// every worker count.
package main

import (
	"fmt"
	"os"

	crowdcdn "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "resilience: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := crowdcdn.DefaultTraceConfig()
	cfg.Slots = 8
	world, tr, err := crowdcdn.Generate(cfg)
	if err != nil {
		return err
	}
	center := crowdcdn.Point{
		X: (world.Bounds.MinX + world.Bounds.MaxX) / 2,
		Y: (world.Bounds.MinY + world.Bounds.MaxY) / 2,
	}
	outage := &crowdcdn.FaultScenario{
		Name: "downtown-blackout",
		Outages: []crowdcdn.RegionalOutage{
			{Center: center, RadiusKm: 4, StartSlot: 3, EndSlot: 6},
		},
		FlashCrowds: []crowdcdn.FlashCrowd{
			{StartSlot: 3, EndSlot: 6, TopVideos: 10, Multiplier: 2},
		},
	}
	fmt.Printf("world: %d hotspots over %.0fx%.0f km; outage radius 4 km around (%.1f, %.1f), slots 3-5\n\n",
		len(world.Hotspots), world.Bounds.Width(), world.Bounds.Height(), center.X, center.Y)

	newPolicy := func() crowdcdn.Scheduler { return crowdcdn.NewRBCAer(crowdcdn.DefaultParams()) }
	fmt.Printf("%-10s %8s %9s %9s %9s %10s\n",
		"run", "serving", "dist(km)", "offline", "stranded", "flash-reqs")
	for _, f := range []struct {
		name     string
		scenario *crowdcdn.FaultScenario
	}{
		{"healthy", nil},
		{"blackout", outage},
	} {
		m, err := crowdcdn.SimulateParallel(world, tr, newPolicy, 0,
			crowdcdn.SimOptions{Seed: 1, Faults: f.scenario})
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %8.3f %9.2f %9d %9d %10d\n",
			f.name, m.HotspotServingRatio, m.AvgAccessDistanceKm,
			m.OfflineHotspotSlots, m.StrandedRequests, m.FlashInjectedRequests)
	}
	fmt.Println("\nhotspots inside the outage serve nothing for three slots; RBCAer")
	fmt.Println("re-aggregates their demand onto the surviving ring and strands the")
	fmt.Println("overflow to the CDN. sweep five failure families with:")
	fmt.Println("go run ./cmd/cdnexp resilience")
	return nil
}
