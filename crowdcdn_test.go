package crowdcdn

import (
	"bytes"
	"testing"
)

// smallEvalConfig shrinks the paper's evaluation setup for fast tests
// while preserving the ~1.1x oversubscription regime.
func smallEvalConfig() TraceConfig {
	cfg := DefaultTraceConfig()
	cfg.NumHotspots = 50
	cfg.NumVideos = 2000
	cfg.NumUsers = 4000
	cfg.NumRequests = 4300
	cfg.NumRegions = 7
	return cfg
}

func TestPublicAPIEndToEnd(t *testing.T) {
	world, tr, err := Generate(smallEvalConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}

	policies := []Scheduler{
		NewRBCAer(DefaultParams()),
		NewNearest(),
		NewRandom(1.5),
	}
	results := make(map[string]*Metrics, len(policies))
	for _, p := range policies {
		m, err := Simulate(world, tr, p, SimOptions{Seed: 1})
		if err != nil {
			t.Fatalf("Simulate(%s): %v", p.Name(), err)
		}
		if m.TotalRequests != int64(len(tr.Requests)) {
			t.Errorf("%s: simulated %d of %d requests", p.Name(), m.TotalRequests, len(tr.Requests))
		}
		if m.ServedByHotspot+m.ServedByCDN != m.TotalRequests {
			t.Errorf("%s: serving counts do not add up: %+v", p.Name(), m)
		}
		if m.HotspotServingRatio < 0 || m.HotspotServingRatio > 1 {
			t.Errorf("%s: serving ratio %v outside [0, 1]", p.Name(), m.HotspotServingRatio)
		}
		results[m.Scheme] = m
	}

	// The paper's headline ordering must hold even at test scale:
	// RBCAer dominates Nearest on every metric.
	rb, near := results["RBCAer"], results["Nearest"]
	if rb.HotspotServingRatio < near.HotspotServingRatio {
		t.Errorf("RBCAer serving ratio %.3f < Nearest %.3f",
			rb.HotspotServingRatio, near.HotspotServingRatio)
	}
	if rb.AvgAccessDistanceKm > near.AvgAccessDistanceKm {
		t.Errorf("RBCAer distance %.3f > Nearest %.3f",
			rb.AvgAccessDistanceKm, near.AvgAccessDistanceKm)
	}
	if rb.CDNServerLoad > near.CDNServerLoad {
		t.Errorf("RBCAer CDN load %.3f > Nearest %.3f", rb.CDNServerLoad, near.CDNServerLoad)
	}
}

func TestPublicAPILowLevelScheduler(t *testing.T) {
	world, tr, err := Generate(smallEvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewRBCAScheduler(world, DefaultParams())
	if err != nil {
		t.Fatalf("NewRBCAScheduler: %v", err)
	}
	index, err := world.Index()
	if err != nil {
		t.Fatal(err)
	}
	demand := &Demand{
		PerVideo: make([]map[VideoID]int64, len(world.Hotspots)),
		Totals:   make([]int64, len(world.Hotspots)),
	}
	for _, req := range tr.Requests {
		h, _, ok := index.Nearest(req.Location)
		if !ok {
			t.Fatal("empty index")
		}
		demand.Add(HotspotID(h), req.Video, 1)
	}
	plan, err := sched.Schedule(demand)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if plan.Stats.MaxFlow > 0 && plan.Stats.MovedFlow == 0 {
		t.Error("balancing moved nothing despite movable workload")
	}
	if len(plan.Placement) != len(world.Hotspots) {
		t.Errorf("placement covers %d hotspots, want %d", len(plan.Placement), len(world.Hotspots))
	}

	// The sharded low-level scheduler accepts the same demand.
	shardSched, err := NewShardScheduler(world, ShardParams{CellKm: 4})
	if err != nil {
		t.Fatalf("NewShardScheduler: %v", err)
	}
	splan, err := shardSched.Schedule(demand)
	if err != nil {
		t.Fatalf("sharded Schedule: %v", err)
	}
	if len(splan.Placement) != len(world.Hotspots) {
		t.Errorf("sharded placement covers %d hotspots, want %d", len(splan.Placement), len(world.Hotspots))
	}
}

func TestPublicAPIFileRoundTrip(t *testing.T) {
	world, tr, err := Generate(smallEvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	var wbuf, rbuf bytes.Buffer
	if err := WriteWorld(&wbuf, world); err != nil {
		t.Fatal(err)
	}
	if err := WriteRequests(&rbuf, tr); err != nil {
		t.Fatal(err)
	}
	world2, err := ReadWorld(&wbuf)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := ReadRequests(&rbuf)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Simulate(world, tr, NewNearest(), SimOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Simulate(world2, tr2, NewNearest(), SimOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if m1.ServedByHotspot != m2.ServedByHotspot || m1.Replicas != m2.Replicas {
		t.Errorf("round-tripped world simulates differently: %+v vs %+v", m1, m2)
	}
}

func TestPublicAPIExperimentRunner(t *testing.T) {
	runner := NewExperimentRunner(1, 0.05)
	ids := ExperimentIDs()
	if len(ids) != 8 {
		t.Fatalf("ExperimentIDs() = %v, want 8 experiments", ids)
	}
	figs, err := runner.Run("fig9")
	if err != nil {
		t.Fatalf("Run(fig9): %v", err)
	}
	var buf bytes.Buffer
	for _, f := range figs {
		if err := f.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
	if buf.Len() == 0 {
		t.Error("Render produced no output")
	}
}

func TestPublicAPIMeasurementAnalyses(t *testing.T) {
	cfg := smallEvalConfig()
	cfg.Slots = 8
	cfg.NumRequests = 9000
	world, tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, analyze := range map[string]func(*World, *Trace, int64) (*Figure, error){
		"workload":    AnalyzeWorkloadDistribution,
		"correlation": AnalyzeWorkloadCorrelation,
		"similarity":  AnalyzeContentSimilarity,
	} {
		fig, err := analyze(world, tr, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(fig.Series) == 0 {
			t.Errorf("%s produced no series", name)
		}
	}
}

func TestPublicAPIPredicted(t *testing.T) {
	cfg := smallEvalConfig()
	cfg.Slots = 6
	cfg.NumRequests = 9000
	world, tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Simulate(world, tr, NewPredicted(NewRBCAer(DefaultParams()), 0.5), SimOptions{Seed: 1})
	if err != nil {
		t.Fatalf("Simulate(Predicted): %v", err)
	}
	if m.TotalRequests == 0 {
		t.Error("nothing simulated")
	}
}

func TestPublicAPIExtensions(t *testing.T) {
	cfg := smallEvalConfig()
	world, tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	policies := []Scheduler{
		NewHierarchical(3.0),
		NewSharded(ShardParams{CellKm: 4}),
		NewPowerOfTwo(1.5),
		NewReactiveLRU(),
		NewReactiveLFU(),
		NewLPBased(),
	}
	for _, p := range policies {
		m, err := Simulate(world, tr, p, SimOptions{Seed: 1})
		if err != nil {
			t.Fatalf("Simulate(%s): %v", p.Name(), err)
		}
		if m.TotalRequests == 0 {
			t.Errorf("%s simulated nothing", p.Name())
		}
	}

	// Churn through the facade.
	m, err := Simulate(world, tr, NewRBCAer(DefaultParams()), SimOptions{Seed: 1, HotspotChurn: 0.2})
	if err != nil {
		t.Fatalf("Simulate with churn: %v", err)
	}
	if m.OfflineHotspotSlots == 0 {
		t.Error("churn had no effect")
	}

	if len(ExtensionExperimentIDs()) == 0 {
		t.Error("no extension experiments listed")
	}
	if MeasurementTraceConfig().NumHotspots <= DefaultTraceConfig().NumHotspots {
		t.Error("measurement config not city-scale")
	}
}

func TestPublicAPISummarize(t *testing.T) {
	world, tr, err := Generate(smallEvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(world, tr)
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if s.Requests != len(tr.Requests) || s.Hotspots != len(world.Hotspots) {
		t.Errorf("summary counts wrong: %+v", s)
	}
	var buf bytes.Buffer
	if err := s.Render(&buf); err != nil || buf.Len() == 0 {
		t.Errorf("Render failed: %v", err)
	}
}
