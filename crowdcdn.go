// Package crowdcdn is the public API of the crowdsourced-CDN
// reproduction of "Joint Request Balancing and Content Aggregation in
// Crowdsourced CDN" (Ma, Wang, Yi, Liu, Sun — ICDCS 2017).
//
// It re-exports the user-facing pieces of the internal packages:
//
//   - world and trace generation (a calibrated synthetic substitute for
//     the paper's proprietary iQiyi / Wi-Fi AP datasets),
//   - the RBCAer scheduler (the paper's contribution: request balancing
//     via min-cost max-flow plus content aggregation) and the baseline
//     policies it is compared against,
//   - the trace-driven simulator with the paper's four evaluation
//     metrics, and
//   - the experiment harness that regenerates every figure of the
//     paper's evaluation.
//
// A minimal end-to-end run:
//
//	world, tr, err := crowdcdn.Generate(crowdcdn.DefaultTraceConfig())
//	if err != nil { ... }
//	metrics, err := crowdcdn.Simulate(world, tr, crowdcdn.NewRBCAer(crowdcdn.DefaultParams()), crowdcdn.SimOptions{Seed: 1})
//	if err != nil { ... }
//	fmt.Printf("serving ratio %.3f\n", metrics.HotspotServingRatio)
//
// See the runnable programs under examples/ and the cmd/ tools for
// fuller usage, and DESIGN.md / EXPERIMENTS.md for the reproduction's
// scope and results.
package crowdcdn

import (
	"io"
	"net/http"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/region"
	"repro/internal/scenario"
	"repro/internal/scheme"
	"repro/internal/server"
	"repro/internal/server/loadgen"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Domain model (see internal/trace).
type (
	// World is the static deployment: region, hotspot fleet, catalogue
	// size, and CDN latency proxy.
	World = trace.World
	// Hotspot is an edge content hotspot with service and cache
	// capacity.
	Hotspot = trace.Hotspot
	// Request is one video session.
	Request = trace.Request
	// Trace is a sequence of requests over timeslots.
	Trace = trace.Trace
	// TraceConfig parameterises the synthetic world/trace generator.
	TraceConfig = trace.Config
	// VideoID identifies a video.
	VideoID = trace.VideoID
	// HotspotID identifies a hotspot.
	HotspotID = trace.HotspotID
	// UserID identifies a user.
	UserID = trace.UserID
	// Point is a planar location in kilometres.
	Point = geo.Point
	// Rect is an axis-aligned region in kilometres.
	Rect = geo.Rect
)

// Scheduling (see internal/core and internal/sim).
type (
	// Params are RBCAer's tuning parameters.
	Params = core.Params
	// Demand is one slot's per-hotspot per-video aggregated demand.
	Demand = core.Demand
	// Plan is the output of one RBCAer scheduling round.
	Plan = core.Plan
	// RBCAScheduler runs RBCAer rounds directly (lower-level than the
	// policy returned by NewRBCAer).
	RBCAScheduler = core.Scheduler
	// Scheduler is a simulator policy.
	Scheduler = sim.Scheduler
	// Metrics are the paper's evaluation metrics for one run.
	Metrics = sim.Metrics
	// SimOptions configure a simulation run.
	SimOptions = sim.Options
	// Figure is the data behind one reproduced paper figure.
	Figure = exp.Figure
	// ExperimentRunner regenerates the paper's figures.
	ExperimentRunner = exp.Runner
)

// Fault injection (see internal/fault and DESIGN.md §7). A
// FaultScenario plugs into SimOptions.Faults; all fault randomness is
// pre-drawn from seed streams split off SimOptions.Seed, so faulty
// runs stay byte-identical across worker counts.
type (
	// FaultScenario composes failure modes for one simulation run.
	FaultScenario = fault.Scenario
	// MarkovChurn is per-hotspot on/off session churn.
	MarkovChurn = fault.MarkovChurn
	// RegionalOutage takes every hotspot within a radius offline for a
	// window of slots.
	RegionalOutage = fault.RegionalOutage
	// CapacityDegradation scales a random fraction of the fleet's
	// service/cache capacity over a window of slots.
	CapacityDegradation = fault.CapacityDegradation
	// FlashCrowd multiplies demand for the hottest videos over a window
	// of slots.
	FlashCrowd = fault.FlashCrowd
	// StaleReports lags and thins the demand reports policies see.
	StaleReports = fault.StaleReports
)

// Declarative scenarios (see internal/scenario and DESIGN.md §13). A
// scenario file (YAML subset, zero dependencies) declares a world,
// timed fault events, seeded stress generation, and assertions; Execute
// compiles it onto a FaultScenario and reports every assertion's
// verdict. cdnsim -scenario runs one from the command line.
type (
	// ScenarioDoc is one parsed scenario file.
	ScenarioDoc = scenario.Doc
	// ScenarioOptions parameterise scenario execution.
	ScenarioOptions = scenario.ExecOptions
	// ScenarioReport is a finished scenario run with per-assertion
	// verdicts; its text rendering is deterministic across worker
	// counts.
	ScenarioReport = scenario.Report
)

// LoadScenario reads and parses a scenario file.
func LoadScenario(path string) (*ScenarioDoc, error) { return scenario.Load(path) }

// ParseScenario parses scenario source text.
func ParseScenario(src []byte) (*ScenarioDoc, error) { return scenario.Parse(src) }

// Observability (see internal/obs and DESIGN.md §8). A Registry and a
// Tracer plug into SimOptions (and Params.Obs for RBCAer round
// counters); their deterministic outputs — Snapshot(false) and a
// dropTimings tracer's event stream — are byte-identical across worker
// counts on a fixed seed.
type (
	// MetricsRegistry collects named counters, gauges, histograms, and
	// timers from a run.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a sorted, serialisable view of a registry.
	MetricsSnapshot = obs.Snapshot
	// RoundTracer records per-round / per-slot structured events into a
	// bounded ring buffer.
	RoundTracer = obs.Tracer
	// TraceEvent is one recorded scheduling event.
	TraceEvent = obs.Event
	// PhaseTimings splits a scheduling round's wall time into the
	// cluster / balance / replicate phases.
	PhaseTimings = obs.PhaseTimings
)

// Online serving (see internal/server and DESIGN.md §10). A Server
// ingests live requests over HTTP, recomputes an RBCAer plan each
// timeslot on a dedicated worker, and serves redirect lookups from an
// atomically swapped immutable plan. Fed the same trace, it produces
// plans byte-identical to Simulate's.
type (
	// ServerConfig configures an online scheduling server.
	ServerConfig = server.Config
	// Server is one online scheduling service instance.
	Server = server.Server
	// PlanRecord is one retained per-slot plan summary.
	PlanRecord = server.PlanRecord
	// LoadgenOptions tune a trace replay against a running server.
	LoadgenOptions = loadgen.Options
	// LoadgenReport is the outcome of a replay.
	LoadgenReport = loadgen.Report
	// WorkloadSpec is a parsed ServeGen-style open-loop workload
	// specification (client classes with Poisson/gamma/Weibull
	// arrivals; see ParseWorkloadSpec and DESIGN.md §15).
	WorkloadSpec = loadgen.Spec
	// WorkloadClass is one declared client class of a WorkloadSpec.
	WorkloadClass = loadgen.ClassSpec
	// WorkloadStream is a materialised open-loop request schedule,
	// bucketed by timeslot (byte-reproducible per seed).
	WorkloadStream = loadgen.Stream
)

// NewServer validates the configuration and builds an online scheduling
// server (start it with Start, stop it with Close).
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// ReplayTrace drives a trace through a running server slot by slot
// (POST /ingest + POST /admin/advance) and reports per-slot outcomes,
// including each served plan's digest.
func ReplayTrace(baseURL string, world *World, tr *Trace, opts LoadgenOptions) (*LoadgenReport, error) {
	return loadgen.Replay(baseURL, world, tr, opts)
}

// ParseWorkloadSpec parses the line-based open-loop workload grammar:
//
//	class <name> clients=N arrival=poisson|gamma|weibull rate=R [shape=S] [videos=zipf:A|uniform]
//
// Generate a byte-reproducible request stream with
// (*WorkloadSpec).Generate and drive it with DriveWorkload.
func ParseWorkloadSpec(text string) (*WorkloadSpec, error) { return loadgen.ParseSpec(text) }

// DriveWorkload posts a generated open-loop stream through a serving
// tier slot by slot, fanning requests across opts.Targets (every
// frontend of a multi-instance server) and forcing slot boundaries
// through baseURL.
func DriveWorkload(baseURL string, stream *WorkloadStream, opts LoadgenOptions) (*LoadgenReport, error) {
	return loadgen.DriveOpenLoop(baseURL, stream, opts)
}

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewRoundTracer returns a ring-buffered tracer holding up to capacity
// events (0 selects the default). dropTimings strips wall-clock
// duration attributes so the stream stays deterministic.
func NewRoundTracer(capacity int, dropTimings bool) *RoundTracer {
	return obs.NewTracer(capacity, dropTimings)
}

// ServeDebug starts an HTTP server on addr exposing net/http/pprof
// profiles, expvar, and the registry/tracer contents (see
// internal/obs). It returns the server and its actual address
// (addr may use port 0).
func ServeDebug(addr string, reg *MetricsRegistry, tr *RoundTracer) (*http.Server, string, error) {
	return obs.ServeDebug(addr, reg, tr)
}

// CDN is the simulator's sentinel target meaning "served by the origin
// CDN server".
const CDN = sim.CDN

// DefaultTraceConfig returns the paper's Sec. V evaluation-scale
// configuration (17x11 km, 310 hotspots, 15,190 videos, 212,472
// requests).
func DefaultTraceConfig() TraceConfig { return trace.DefaultConfig() }

// MeasurementTraceConfig returns the paper's Sec. II measurement-scale
// configuration (city-scale, 5,000 hotspots, a day of hourly slots).
func MeasurementTraceConfig() TraceConfig { return trace.MeasurementConfig() }

// Generate builds a synthetic world and request trace from the
// configuration, deterministically in cfg.Seed.
func Generate(cfg TraceConfig) (*World, *Trace, error) { return trace.Generate(cfg) }

// DefaultParams returns RBCAer's paper-default parameters (θ1=0.5 km,
// θ2=1.5 km, δd=0.5 km, top-20% signatures; cluster cut recalibrated
// to this repository's trace — see DESIGN.md).
func DefaultParams() Params { return core.DefaultParams() }

// DefaultDeltaThreshold is the recommended Params.DeltaThreshold for
// incremental delta scheduling (see DESIGN.md §12).
const DefaultDeltaThreshold = core.DefaultDeltaThreshold

// DeltaParams returns DefaultParams with incremental delta scheduling
// enabled: delta rounds up to DefaultDeltaThreshold drift, with a full
// re-solve every fullSolveEvery slots (0 disables the periodic
// fallback).
func DeltaParams(fullSolveEvery int) Params {
	p := core.DefaultParams()
	p.DeltaThreshold = DefaultDeltaThreshold
	p.FullSolveEvery = fullSolveEvery
	return p
}

// NewRBCAScheduler returns the low-level RBCAer scheduler for driving
// rounds manually (see examples/online).
func NewRBCAScheduler(world *World, params Params) (*RBCAScheduler, error) {
	return core.New(world, params)
}

// NewRBCAer returns the RBCAer simulator policy.
func NewRBCAer(params Params) Scheduler { return scheme.NewRBCAer(params) }

// NewNearest returns the Nearest-routing baseline policy.
func NewNearest() Scheduler { return scheme.Nearest{} }

// NewRandom returns the local-random baseline policy with the given
// routing radius in kilometres (the paper uses 1.5).
func NewRandom(radiusKm float64) Scheduler { return scheme.Random{RadiusKm: radiusKm} }

// NewLPBased returns the LP-relaxation baseline policy used in the
// running-time comparison.
func NewLPBased() Scheduler { return scheme.LPBased{} }

// NewPredicted wraps a policy so it schedules on EWMA-forecast demand
// instead of oracle per-slot demand.
func NewPredicted(inner Scheduler, ewmaAlpha float64) Scheduler {
	return &scheme.Predicted{Inner: inner, Method: predict.EWMA{Alpha: ewmaAlpha}}
}

// NewFactoredPredicted wraps a policy with factored demand forecasting:
// per-hotspot totals predicted seasonally and spread over each
// hotspot's smoothed video-share distribution — the best-performing
// learned-demand mode (see EXPERIMENTS.md, abl-prediction).
func NewFactoredPredicted(inner Scheduler) Scheduler {
	return scheme.NewFactoredPredicted(inner)
}

// NewHierarchical returns the cross-region hierarchical RBCAer (the
// extension the paper proposes via its region-partition prior work):
// RBCAer across region-level virtual hotspots, then within each region.
// cellKm is the region grid size (0 selects 3 km).
func NewHierarchical(cellKm float64) Scheduler { return region.NewPolicy(cellKm) }

// ShardParams configure the sharded regional scheduler: geo-partition
// the world, run one RBCAer round per shard concurrently, then
// reconcile residual overload across shard boundaries. See DESIGN.md
// §14.
type ShardParams = shard.Params

// NewSharded returns the sharded regional scheduling policy. Merged
// plans are byte-identical for any ShardParams.Workers value, and
// identical to the plain RBCAer when the partition has one shard.
func NewSharded(p ShardParams) Scheduler { return shard.NewPolicy(p) }

// NewShardScheduler returns the low-level sharded scheduler for
// driving rounds manually, mirroring NewRBCAScheduler.
func NewShardScheduler(world *World, p ShardParams) (*shard.Scheduler, error) {
	return shard.New(world, p)
}

// NewPowerOfTwo returns the power-of-two-choices baseline (related work
// [20]): Random's caching with each request picking the less-loaded of
// two random in-radius holders.
func NewPowerOfTwo(radiusKm float64) Scheduler { return scheme.PowerOfTwo{RadiusKm: radiusKm} }

// NewReactiveLRU returns the unmanaged-edge baseline: no prefetching,
// per-hotspot LRU caches filled on miss.
func NewReactiveLRU() Scheduler { return scheme.NewReactiveLRU() }

// NewReactiveLFU is NewReactiveLRU with LFU eviction.
func NewReactiveLFU() Scheduler { return scheme.NewReactiveLFU() }

// Simulate replays the trace against the world under the policy and
// returns the paper's evaluation metrics.
func Simulate(world *World, tr *Trace, policy Scheduler, opts SimOptions) (*Metrics, error) {
	return sim.Run(world, tr, policy, opts)
}

// SimulateParallel is Simulate with independent timeslots scheduled
// concurrently on up to workers goroutines (0 selects
// runtime.GOMAXPROCS(0); <=1 falls back to Simulate). Each worker
// schedules with its own policy instance from newPolicy, so the policy
// must be stateless across slots (RBCAer, Nearest, Random and
// power-of-two qualify; the reactive and predicted policies do not).
// Metrics are identical to Simulate's for every worker count.
func SimulateParallel(world *World, tr *Trace, newPolicy func() Scheduler, workers int, opts SimOptions) (*Metrics, error) {
	return sim.RunParallel(world, tr, newPolicy, workers, opts)
}

// NewExperimentRunner returns a harness that regenerates the paper's
// figures. scale in (0, 1] shrinks the worlds for quick runs; 1 is
// paper scale.
func NewExperimentRunner(seed int64, scale float64) *ExperimentRunner {
	return exp.NewRunner(seed, scale)
}

// ExperimentIDs lists the reproducible paper experiments in order.
func ExperimentIDs() []string { return exp.Experiments() }

// ExtensionExperimentIDs lists the experiments this reproduction adds
// beyond the paper: the hierarchical cross-region mode, device-churn
// robustness, the reactive-caching comparison, and the ablations.
func ExtensionExperimentIDs() []string { return exp.ExtensionExperiments() }

// AnalyzeWorkloadDistribution runs the paper's Fig. 2 measurement on
// any world and trace: per-hotspot workload CDFs under nearest and
// random routing, with the replication-cost comparison.
func AnalyzeWorkloadDistribution(world *World, tr *Trace, seed int64) (*Figure, error) {
	return exp.WorkloadDistribution(world, tr, seed)
}

// AnalyzeWorkloadCorrelation runs the paper's Fig. 3a measurement on
// any world and multi-slot trace: the CDF of Spearman workload
// correlation between hotspot pairs within 5 km.
func AnalyzeWorkloadCorrelation(world *World, tr *Trace, seed int64) (*Figure, error) {
	return exp.WorkloadCorrelation(world, tr, seed)
}

// AnalyzeContentSimilarity runs the paper's Fig. 3b measurement on any
// world and trace: CDFs of top-20% content-set Jaccard similarity
// between nearby hotspots at several deployment sample ratios.
func AnalyzeContentSimilarity(world *World, tr *Trace, seed int64) (*Figure, error) {
	return exp.ContentSimilarity(world, tr, seed)
}

// WriteWorld encodes a world as JSON (the cmd tools' world format).
func WriteWorld(w io.Writer, world *World) error { return trace.WriteWorld(w, world) }

// ReadWorld decodes and validates a world written by WriteWorld.
func ReadWorld(r io.Reader) (*World, error) { return trace.ReadWorld(r) }

// WriteRequests encodes a trace as CSV (the cmd tools' trace format).
func WriteRequests(w io.Writer, tr *Trace) error { return trace.WriteRequests(w, tr) }

// ReadRequests decodes a trace written by WriteRequests.
func ReadRequests(r io.Reader) (*Trace, error) { return trace.ReadRequests(r) }

// TraceSummary describes a world/trace pair with the measurement
// study's key statistics (workload skew, Gini, Zipf fit).
type TraceSummary = trace.Summary

// Summarize computes a TraceSummary over nearest-hotspot aggregation.
func Summarize(world *World, tr *Trace) (*TraceSummary, error) {
	return trace.Summarize(world, tr)
}
