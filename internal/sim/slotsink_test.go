package sim

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/similarity"
	"repro/internal/trace"
)

// sinkWorldTrace generates a small world/trace pair with the given slot
// count for the sink tests.
func sinkWorldTrace(t *testing.T, slots int) (*trace.World, *trace.Trace) {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.NumHotspots = 20
	cfg.NumVideos = 300
	cfg.NumUsers = 200
	cfg.NumRequests = 1500
	cfg.NumRegions = 4
	cfg.Slots = slots
	world, tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return world, tr
}

// cdnOnly sends every request to the CDN — the simplest slot-independent
// policy, adequate for exercising the sink plumbing.
type cdnOnly struct{}

func (cdnOnly) Name() string { return "cdn-only" }

func (cdnOnly) Schedule(ctx *SlotContext) (*Assignment, error) {
	target := make([]int, len(ctx.Requests))
	for i := range target {
		target[i] = CDN
	}
	placement := make([]similarity.Set, len(ctx.World.Hotspots))
	for h := range placement {
		placement[h] = similarity.NewSet()
	}
	return &Assignment{Placement: placement, Target: target}, nil
}

// TestSlotSinkReceivesSlotsInOrder: the sink sees every applied slot's
// metrics in slot order, matching PerSlot, regardless of worker count.
func TestSlotSinkReceivesSlotsInOrder(t *testing.T) {
	world, tr := sinkWorldTrace(t, 4)
	var sunk []SlotMetrics
	opts := Options{
		Seed:            1,
		KeepSlotMetrics: true,
		SlotSink: func(sm SlotMetrics) error {
			sunk = append(sunk, sm)
			return nil
		},
	}
	m, err := Run(world, tr, cdnOnly{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sunk) != tr.Slots {
		t.Fatalf("sink saw %d slots, want %d", len(sunk), tr.Slots)
	}
	for i, sm := range sunk {
		if sm.Slot != i {
			t.Fatalf("sink slot %d arrived at position %d", sm.Slot, i)
		}
	}
	if !reflect.DeepEqual(sunk, m.PerSlot) {
		t.Fatalf("sink stream differs from PerSlot:\n%+v\n%+v", sunk, m.PerSlot)
	}

	// The parallel path must deliver the identical stream.
	var sunkPar []SlotMetrics
	optsPar := opts
	optsPar.SlotSink = func(sm SlotMetrics) error {
		sunkPar = append(sunkPar, sm)
		return nil
	}
	if _, err := RunParallel(world, tr, func() Scheduler { return cdnOnly{} }, 4, optsPar); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sunk, sunkPar) {
		t.Fatal("sink stream differs between Run and RunParallel")
	}
}

// TestSlotSinkWithoutKeepSlotMetrics: the sink alone must not switch on
// PerSlot retention.
func TestSlotSinkWithoutKeepSlotMetrics(t *testing.T) {
	world, tr := sinkWorldTrace(t, 3)
	seen := 0
	opts := Options{
		Seed:     1,
		SlotSink: func(SlotMetrics) error { seen++; return nil },
	}
	m, err := Run(world, tr, cdnOnly{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if seen != tr.Slots {
		t.Fatalf("sink saw %d slots, want %d", seen, tr.Slots)
	}
	if m.PerSlot != nil {
		t.Fatalf("PerSlot retained without KeepSlotMetrics: %d entries", len(m.PerSlot))
	}
}

// TestSlotSinkAbortsRun: a sink error stops the run and surfaces with
// slot context, preserving the error chain for errors.Is.
func TestSlotSinkAbortsRun(t *testing.T) {
	world, tr := sinkWorldTrace(t, 4)
	sentinel := errors.New("enough")
	calls := 0
	opts := Options{
		Seed: 1,
		SlotSink: func(sm SlotMetrics) error {
			calls++
			if sm.Slot == 1 {
				return fmt.Errorf("stop: %w", sentinel)
			}
			return nil
		},
	}
	_, err := Run(world, tr, cdnOnly{}, opts)
	if err == nil {
		t.Fatal("sink error did not abort the run")
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("error chain lost the sentinel: %v", err)
	}
	if calls != 2 {
		t.Fatalf("sink called %d times, want 2 (slots 0 and 1)", calls)
	}
}
