// Package sim is the trace-driven crowdsourced-CDN simulator. It
// replays a request trace slot by slot against a world, invokes a
// pluggable scheduling policy each slot, strictly enforces the paper's
// constraints (a request is served by a hotspot only if the video is
// placed there and service capacity remains, otherwise by the origin
// CDN server), and accumulates the paper's four evaluation metrics:
// hotspot serving ratio, average content access distance, content
// replication cost, and CDN server load.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/par"
	"repro/internal/similarity"
	"repro/internal/stats"
	"repro/internal/trace"
)

// CDN is the sentinel target meaning "served by the origin CDN server".
const CDN = -1

// SlotContext carries everything a scheduling policy may use for one
// timeslot.
type SlotContext struct {
	World *trace.World
	// Index is a spatial index over the world's hotspots.
	Index *geo.Grid
	// Slot is the timeslot number.
	Slot int
	// Requests are this slot's requests.
	Requests []trace.Request
	// Nearest[r] is the nearest hotspot of Requests[r] (the paper's
	// aggregation point).
	Nearest []int
	// Demand is the per-hotspot per-video aggregation of Requests.
	// Policies running on predicted demand may ignore it.
	Demand *core.Demand
	// Capacity[h] is hotspot h's effective service capacity this slot:
	// normally World.Hotspots[h].ServiceCapacity, but 0 for hotspots
	// offline due to churn. Policies must budget against this, not the
	// world's nominal capacity.
	Capacity []int64
	// Rand is the slot's deterministic randomness source.
	Rand *rand.Rand
}

// EffectiveCapacity returns ctx.Capacity, falling back to the world's
// nominal capacities for contexts built without the field.
func (ctx *SlotContext) EffectiveCapacity() []int64 {
	if ctx.Capacity != nil {
		return ctx.Capacity
	}
	out := make([]int64, len(ctx.World.Hotspots))
	for h := range ctx.World.Hotspots {
		out[h] = ctx.World.Hotspots[h].ServiceCapacity
	}
	return out
}

// Assignment is a policy's decision for one slot.
type Assignment struct {
	// Placement[h] is the set of videos hotspot h caches this slot.
	Placement []similarity.Set
	// Target[r] is the hotspot index that should serve Requests[r], or
	// CDN. The simulator enforces feasibility: an infeasible target
	// (video not placed, capacity exhausted) falls back to the CDN and
	// is counted in Metrics.Infeasible.
	Target []int
	// ExtraReplicas reports origin fetches beyond the slot-to-slot
	// placement difference the simulator already accounts (reactive
	// caching policies fetch and evict within a slot). Most policies
	// leave it zero.
	ExtraReplicas int64
}

// Scheduler is a request-redirection and content-placement policy.
type Scheduler interface {
	// Name identifies the policy in reports ("RBCAer", "Nearest", ...).
	Name() string
	// Schedule decides one slot.
	Schedule(ctx *SlotContext) (*Assignment, error)
}

// Metrics are the paper's evaluation metrics accumulated over a run.
type Metrics struct {
	Scheme string

	TotalRequests   int64
	ServedByHotspot int64
	ServedByCDN     int64
	// Infeasible counts hotspot targets the simulator had to bounce to
	// the CDN (video missing or capacity exhausted). A correct policy
	// keeps this near zero; it is part of ServedByCDN.
	Infeasible int64

	// HotspotServingRatio is ServedByHotspot / TotalRequests.
	HotspotServingRatio float64
	// AvgAccessDistanceKm averages the request→server distance, with
	// World.CDNDistanceKm charged for CDN-served requests.
	AvgAccessDistanceKm float64
	// Replicas is the number of videos pushed to hotspot caches over
	// the run (new placements only; carrying a cached video across
	// slots is free).
	Replicas int64
	// ReplicationCost is Replicas / World.NumVideos (the paper's
	// normalisation: multiples of the entire video set).
	ReplicationCost float64
	// CDNServerLoad is (ServedByCDN + Replicas) / TotalRequests: origin
	// egress for misses plus replica pushes, normalised by the
	// original workload.
	CDNServerLoad float64

	// PerHotspotLoad[h] is the nearest-aggregated workload λ_h summed
	// over slots (the Fig. 2 distribution under Nearest routing).
	PerHotspotLoad []int64
	// PerHotspotServed[h] is the number of requests actually served by
	// hotspot h over the run.
	PerHotspotServed []int64
	// PerHotspotSlotLoad[h][t] is λ_h per slot (the Fig. 3a series).
	PerHotspotSlotLoad [][]int64

	// OfflineHotspotSlots counts (hotspot, slot) pairs lost to churn.
	OfflineHotspotSlots int64

	// PerSlot holds a per-timeslot metrics timeline when
	// Options.KeepSlotMetrics is set (nil otherwise).
	PerSlot []SlotMetrics

	// SchedulingTime is the total time spent inside Scheduler.Schedule.
	SchedulingTime time.Duration
}

// SlotMetrics is one timeslot's slice of the run metrics.
type SlotMetrics struct {
	Slot            int
	Requests        int64
	ServedByHotspot int64
	ServedByCDN     int64
	Replicas        int64
	// HotspotServingRatio is ServedByHotspot / Requests for this slot.
	HotspotServingRatio float64
}

// Options configure a simulation run.
type Options struct {
	// Seed drives per-slot randomness handed to policies.
	Seed int64
	// KeepSlotLoads retains PerHotspotSlotLoad (needed for the
	// correlation analyses; costs O(hotspots × slots) memory).
	KeepSlotLoads bool
	// KeepSlotMetrics retains a per-timeslot metrics timeline in
	// Metrics.PerSlot (serving ratio, CDN load, and replicas per slot).
	KeepSlotMetrics bool
	// HotspotChurn is the probability that a hotspot is offline for a
	// given slot (crowdsourced edge devices are unreliable). Offline
	// hotspots disappear from the slot's index — requests aggregate to
	// the nearest online hotspot — and serve nothing; their cache
	// contents survive for when they return. 0 disables churn.
	HotspotChurn float64
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.HotspotChurn < 0 || o.HotspotChurn >= 1 {
		return fmt.Errorf("sim: HotspotChurn %v outside [0, 1)", o.HotspotChurn)
	}
	return nil
}

// Run replays the trace against the world under the policy and returns
// aggregate metrics.
func Run(world *trace.World, tr *trace.Trace, policy Scheduler, opts Options) (*Metrics, error) {
	if policy == nil {
		return nil, fmt.Errorf("sim: nil policy")
	}
	if err := validateRun(world, tr, opts); err != nil {
		return nil, err
	}
	index, err := world.Index()
	if err != nil {
		return nil, err
	}
	churnRng := stats.SplitRand(opts.Seed, "hotspot-churn")

	metrics := newRunMetrics(world, tr, policy.Name(), opts)
	var distanceSum float64
	prevPlacement := make([]similarity.Set, len(world.Hotspots))

	for slot, requests := range tr.BySlot() {
		if len(requests) == 0 {
			continue
		}
		w := &slotWork{slot: slot, requests: requests}
		if opts.HotspotChurn > 0 {
			drawOffline(world, churnRng, opts, metrics, w)
		}
		if !w.allOffline {
			if err := scheduleSlot(world, index, policy, opts, w); err != nil {
				return nil, err
			}
		}
		metrics.SchedulingTime += w.took
		if err := applySlot(world, opts, metrics, w, prevPlacement, &distanceSum); err != nil {
			return nil, err
		}
		if w.asg != nil {
			prevPlacement = w.asg.Placement
		}
	}
	finalizeMetrics(world, metrics, distanceSum)
	return metrics, nil
}

// RunParallel is Run with the per-slot scheduling rounds — the
// simulation's dominant cost — executed concurrently on up to workers
// goroutines (0 selects GOMAXPROCS; 1 falls back to Run). Each worker
// schedules with its own policy instance from newPolicy, so policies
// need not be safe for concurrent use, and everything order-sensitive
// (churn draws, replica accounting against the previous slot's
// placement, request serving, metric accumulation) still runs
// sequentially in slot order. The metrics are therefore identical to
// Run's — including float accumulation order — whenever each policy
// instance's decisions depend only on the slot it is handed. Policies
// that carry state across slots (demand predictors, reactive caches)
// would observe slots out of order; run those through Run instead.
func RunParallel(world *trace.World, tr *trace.Trace, newPolicy func() Scheduler, workers int, opts Options) (*Metrics, error) {
	if newPolicy == nil {
		return nil, fmt.Errorf("sim: nil policy factory")
	}
	first := newPolicy()
	if first == nil {
		return nil, fmt.Errorf("sim: policy factory returned nil")
	}
	workers = par.Workers(workers)
	if workers <= 1 {
		return Run(world, tr, first, opts)
	}
	if err := validateRun(world, tr, opts); err != nil {
		return nil, err
	}
	index, err := world.Index()
	if err != nil {
		return nil, err
	}
	churnRng := stats.SplitRand(opts.Seed, "hotspot-churn")
	metrics := newRunMetrics(world, tr, first.Name(), opts)

	// Sequential prologue: collect the non-empty slots and draw their
	// churn in slot order, so the churn stream matches Run's exactly.
	var work []*slotWork
	for slot, requests := range tr.BySlot() {
		if len(requests) == 0 {
			continue
		}
		w := &slotWork{slot: slot, requests: requests}
		if opts.HotspotChurn > 0 {
			drawOffline(world, churnRng, opts, metrics, w)
		}
		work = append(work, w)
	}

	// Parallel phase: schedule each slot with a worker-owned policy
	// instance. Slots are striped across workers; each worker touches
	// only its own slotWork entries, so no synchronisation beyond the
	// final Wait is needed.
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		policy := first
		if wk > 0 {
			policy = newPolicy()
		}
		if policy == nil {
			return nil, fmt.Errorf("sim: policy factory returned nil")
		}
		wg.Add(1)
		go func(wk int, policy Scheduler) {
			defer wg.Done()
			for idx := wk; idx < len(work); idx += workers {
				w := work[idx]
				if w.allOffline {
					continue
				}
				w.err = scheduleSlot(world, index, policy, opts, w)
			}
		}(wk, policy)
	}
	wg.Wait()
	for _, w := range work {
		if w.err != nil {
			return nil, w.err
		}
	}

	// Sequential epilogue: apply the slots in order, exactly as Run
	// does. SchedulingTime sums the per-slot rounds, i.e. total CPU
	// time spent scheduling, not the (shorter) parallel wall time.
	prevPlacement := make([]similarity.Set, len(world.Hotspots))
	var distanceSum float64
	for _, w := range work {
		metrics.SchedulingTime += w.took
		if err := applySlot(world, opts, metrics, w, prevPlacement, &distanceSum); err != nil {
			return nil, err
		}
		if w.asg != nil {
			prevPlacement = w.asg.Placement
		}
	}
	finalizeMetrics(world, metrics, distanceSum)
	return metrics, nil
}

// slotWork carries one non-empty timeslot through the prepare →
// schedule → apply pipeline shared by Run and RunParallel.
type slotWork struct {
	slot       int
	requests   []trace.Request
	offline    []bool // nil when churn is disabled
	allOffline bool
	ctx        *SlotContext
	asg        *Assignment
	took       time.Duration
	err        error
}

// validateRun checks the shared Run/RunParallel inputs.
func validateRun(world *trace.World, tr *trace.Trace, opts Options) error {
	if world == nil || tr == nil {
		return fmt.Errorf("sim: nil world or trace")
	}
	if err := world.Validate(); err != nil {
		return fmt.Errorf("sim: invalid world: %w", err)
	}
	if err := tr.Validate(world); err != nil {
		return fmt.Errorf("sim: invalid trace: %w", err)
	}
	return opts.Validate()
}

// newRunMetrics allocates the metrics accumulator for one run.
func newRunMetrics(world *trace.World, tr *trace.Trace, scheme string, opts Options) *Metrics {
	m := len(world.Hotspots)
	metrics := &Metrics{
		Scheme:           scheme,
		PerHotspotLoad:   make([]int64, m),
		PerHotspotServed: make([]int64, m),
	}
	if opts.KeepSlotLoads {
		metrics.PerHotspotSlotLoad = make([][]int64, m)
		for h := range metrics.PerHotspotSlotLoad {
			metrics.PerHotspotSlotLoad[h] = make([]int64, tr.Slots)
		}
	}
	return metrics
}

// drawOffline draws the slot's churned-out hotspots from rng (exactly
// one draw per hotspot, so the stream is identical however slots are
// later scheduled) and records them on w.
func drawOffline(world *trace.World, rng *rand.Rand, opts Options, metrics *Metrics, w *slotWork) {
	m := len(world.Hotspots)
	w.offline = make([]bool, m)
	online := 0
	for h := 0; h < m; h++ {
		if rng.Float64() < opts.HotspotChurn {
			w.offline[h] = true
			metrics.OfflineHotspotSlots++
		} else {
			online++
		}
	}
	w.allOffline = online == 0
}

// scheduleSlot builds the slot's context (indexing only online
// hotspots under churn) and runs one policy scheduling round,
// recording the assignment and its duration on w.
func scheduleSlot(world *trace.World, index *geo.Grid, policy Scheduler, opts Options, w *slotWork) error {
	slotIndex := index
	if w.offline != nil {
		var err error
		slotIndex, err = onlineIndex(world, w.offline)
		if err != nil {
			return err
		}
	}
	ctx, err := BuildSlotContext(world, slotIndex, w.slot, w.requests, stats.SplitRand(opts.Seed, fmt.Sprintf("slot-%d", w.slot)))
	if err != nil {
		return err
	}
	if w.offline != nil {
		for h := range ctx.Capacity {
			if w.offline[h] {
				ctx.Capacity[h] = 0
			}
		}
	}
	w.ctx = ctx

	start := time.Now()
	asg, err := policy.Schedule(ctx)
	w.took = time.Since(start)
	if err != nil {
		return fmt.Errorf("sim: %s slot %d: %w", policy.Name(), w.slot, err)
	}
	if err := checkAssignment(asg, len(world.Hotspots), len(w.requests)); err != nil {
		return fmt.Errorf("sim: %s slot %d: %w", policy.Name(), w.slot, err)
	}
	w.asg = asg
	return nil
}

// applySlot folds one scheduled slot into the metrics: demand
// accounting, replica pushes against the previous placement, and
// serving every request in order under placement and capacity
// constraints. It must be called in slot order.
func applySlot(world *trace.World, opts Options, metrics *Metrics, w *slotWork, prevPlacement []similarity.Set, distanceSum *float64) error {
	m := len(world.Hotspots)
	slot, requests := w.slot, w.requests

	if w.allOffline {
		// Whole fleet offline: everything goes to the origin.
		metrics.ServedByCDN += int64(len(requests))
		metrics.TotalRequests += int64(len(requests))
		*distanceSum += world.CDNDistanceKm * float64(len(requests))
		if opts.KeepSlotMetrics {
			metrics.PerSlot = append(metrics.PerSlot, SlotMetrics{
				Slot:        slot,
				Requests:    int64(len(requests)),
				ServedByCDN: int64(len(requests)),
			})
		}
		return nil
	}

	ctx, asg := w.ctx, w.asg
	for h := 0; h < m; h++ {
		metrics.PerHotspotLoad[h] += ctx.Demand.Totals[h]
		if opts.KeepSlotLoads {
			metrics.PerHotspotSlotLoad[h][slot] = ctx.Demand.Totals[h]
		}
	}

	slotServedBefore := metrics.ServedByHotspot
	slotCDNBefore := metrics.ServedByCDN
	slotReplicasBefore := metrics.Replicas

	// Replication accounting: only newly placed videos cost a push.
	for h := 0; h < m; h++ {
		pl := asg.Placement[h]
		if pl.Len() > world.Hotspots[h].CacheCapacity {
			return fmt.Errorf("sim: %s slot %d: hotspot %d placement %d exceeds cache %d",
				metrics.Scheme, slot, h, pl.Len(), world.Hotspots[h].CacheCapacity)
		}
		for v := range pl {
			if prevPlacement[h] == nil || !prevPlacement[h].Contains(v) {
				metrics.Replicas++
			}
		}
	}

	// Serve requests in order, enforcing placement and capacity
	// (offline hotspots serve nothing).
	capLeft := make([]int64, m)
	for h := 0; h < m; h++ {
		capLeft[h] = world.Hotspots[h].ServiceCapacity
		if w.offline != nil && w.offline[h] {
			capLeft[h] = 0
		}
	}
	for r, req := range requests {
		target := asg.Target[r]
		if target != CDN {
			feasible := capLeft[target] > 0 && asg.Placement[target].Contains(int(req.Video))
			if !feasible {
				metrics.Infeasible++
				target = CDN
			}
		}
		if target == CDN {
			metrics.ServedByCDN++
			*distanceSum += world.CDNDistanceKm
		} else {
			capLeft[target]--
			metrics.ServedByHotspot++
			metrics.PerHotspotServed[target]++
			*distanceSum += req.Location.DistanceTo(world.Hotspots[target].Location)
		}
	}
	metrics.TotalRequests += int64(len(requests))
	if asg.ExtraReplicas < 0 {
		return fmt.Errorf("sim: %s slot %d: negative ExtraReplicas %d",
			metrics.Scheme, slot, asg.ExtraReplicas)
	}
	metrics.Replicas += asg.ExtraReplicas

	if opts.KeepSlotMetrics {
		sm := SlotMetrics{
			Slot:            slot,
			Requests:        int64(len(requests)),
			ServedByHotspot: metrics.ServedByHotspot - slotServedBefore,
			ServedByCDN:     metrics.ServedByCDN - slotCDNBefore,
			Replicas:        metrics.Replicas - slotReplicasBefore,
		}
		if sm.Requests > 0 {
			sm.HotspotServingRatio = float64(sm.ServedByHotspot) / float64(sm.Requests)
		}
		metrics.PerSlot = append(metrics.PerSlot, sm)
	}
	return nil
}

// finalizeMetrics derives the run-level ratios.
func finalizeMetrics(world *trace.World, metrics *Metrics, distanceSum float64) {
	if metrics.TotalRequests > 0 {
		metrics.HotspotServingRatio = float64(metrics.ServedByHotspot) / float64(metrics.TotalRequests)
		metrics.AvgAccessDistanceKm = distanceSum / float64(metrics.TotalRequests)
		metrics.CDNServerLoad = (float64(metrics.ServedByCDN) + float64(metrics.Replicas)) /
			float64(metrics.TotalRequests)
	}
	if world.NumVideos > 0 {
		metrics.ReplicationCost = float64(metrics.Replicas) / float64(world.NumVideos)
	}
}

// BuildSlotContext aggregates one slot's requests to their nearest
// hotspots and packages the scheduling inputs. It is exported for
// policies and experiments that drive scheduling outside Run.
func BuildSlotContext(world *trace.World, index *geo.Grid, slot int, requests []trace.Request, rng *rand.Rand) (*SlotContext, error) {
	nearest := make([]int, len(requests))
	demand := core.NewDemand(len(world.Hotspots))
	for r, req := range requests {
		h, _, ok := index.Nearest(req.Location)
		if !ok {
			return nil, fmt.Errorf("sim: no hotspot found for request %d", req.ID)
		}
		nearest[r] = h
		demand.Add(trace.HotspotID(h), req.Video, 1)
	}
	capacity := make([]int64, len(world.Hotspots))
	for h := range world.Hotspots {
		capacity[h] = world.Hotspots[h].ServiceCapacity
	}
	return &SlotContext{
		World:    world,
		Index:    index,
		Slot:     slot,
		Requests: requests,
		Nearest:  nearest,
		Demand:   demand,
		Capacity: capacity,
		Rand:     rng,
	}, nil
}

// onlineIndex builds a spatial index over the world's online hotspots.
func onlineIndex(world *trace.World, offline []bool) (*geo.Grid, error) {
	cell := 1.0
	if n := len(world.Hotspots); n > 0 {
		cell = math.Max(0.05, math.Sqrt(world.Bounds.Area()/float64(n)))
	}
	g, err := geo.NewGrid(world.Bounds, cell)
	if err != nil {
		return nil, fmt.Errorf("sim: building online index: %w", err)
	}
	for _, h := range world.Hotspots {
		if !offline[h.ID] {
			g.Insert(int(h.ID), h.Location)
		}
	}
	return g, nil
}

func checkAssignment(asg *Assignment, numHotspots, numRequests int) error {
	if asg == nil {
		return fmt.Errorf("nil assignment")
	}
	if len(asg.Placement) != numHotspots {
		return fmt.Errorf("placement covers %d hotspots, want %d", len(asg.Placement), numHotspots)
	}
	if len(asg.Target) != numRequests {
		return fmt.Errorf("assignment covers %d requests, want %d", len(asg.Target), numRequests)
	}
	for r, t := range asg.Target {
		if t != CDN && (t < 0 || t >= numHotspots) {
			return fmt.Errorf("request %d target %d out of range", r, t)
		}
	}
	return nil
}
