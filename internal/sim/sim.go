// Package sim is the trace-driven crowdsourced-CDN simulator. It
// replays a request trace slot by slot against a world, invokes a
// pluggable scheduling policy each slot, strictly enforces the paper's
// constraints (a request is served by a hotspot only if the video is
// placed there and service capacity remains, otherwise by the origin
// CDN server), and accumulates the paper's four evaluation metrics:
// hotspot serving ratio, average content access distance, content
// replication cost, and CDN server load.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/similarity"
	"repro/internal/stats"
	"repro/internal/trace"
)

// CDN is the sentinel target meaning "served by the origin CDN server".
const CDN = -1

// SlotContext carries everything a scheduling policy may use for one
// timeslot.
type SlotContext struct {
	World *trace.World
	// Index is a spatial index over the world's hotspots.
	Index *geo.Grid
	// Slot is the timeslot number.
	Slot int
	// Requests are this slot's requests.
	Requests []trace.Request
	// Nearest[r] is the nearest hotspot of Requests[r] (the paper's
	// aggregation point).
	Nearest []int
	// Demand is the per-hotspot per-video aggregation of Requests.
	// Policies running on predicted demand may ignore it.
	Demand *core.Demand
	// Capacity[h] is hotspot h's effective service capacity this slot:
	// normally World.Hotspots[h].ServiceCapacity, but 0 for hotspots
	// offline due to churn. Policies must budget against this, not the
	// world's nominal capacity.
	Capacity []int64
	// Rand is the slot's deterministic randomness source.
	Rand *rand.Rand
}

// EffectiveCapacity returns ctx.Capacity, falling back to the world's
// nominal capacities for contexts built without the field.
func (ctx *SlotContext) EffectiveCapacity() []int64 {
	if ctx.Capacity != nil {
		return ctx.Capacity
	}
	out := make([]int64, len(ctx.World.Hotspots))
	for h := range ctx.World.Hotspots {
		out[h] = ctx.World.Hotspots[h].ServiceCapacity
	}
	return out
}

// Assignment is a policy's decision for one slot.
type Assignment struct {
	// Placement[h] is the set of videos hotspot h caches this slot.
	Placement []similarity.Set
	// Target[r] is the hotspot index that should serve Requests[r], or
	// CDN. The simulator enforces feasibility: an infeasible target
	// (video not placed, capacity exhausted) falls back to the CDN and
	// is counted in Metrics.Infeasible.
	Target []int
	// ExtraReplicas reports origin fetches beyond the slot-to-slot
	// placement difference the simulator already accounts (reactive
	// caching policies fetch and evict within a slot). Most policies
	// leave it zero.
	ExtraReplicas int64
}

// Scheduler is a request-redirection and content-placement policy.
type Scheduler interface {
	// Name identifies the policy in reports ("RBCAer", "Nearest", ...).
	Name() string
	// Schedule decides one slot.
	Schedule(ctx *SlotContext) (*Assignment, error)
}

// Metrics are the paper's evaluation metrics accumulated over a run.
type Metrics struct {
	Scheme string

	TotalRequests   int64
	ServedByHotspot int64
	ServedByCDN     int64
	// Infeasible counts hotspot targets the simulator had to bounce to
	// the CDN (video missing or capacity exhausted). A correct policy
	// keeps this near zero; it is part of ServedByCDN.
	Infeasible int64

	// HotspotServingRatio is ServedByHotspot / TotalRequests.
	HotspotServingRatio float64
	// AvgAccessDistanceKm averages the request→server distance, with
	// World.CDNDistanceKm charged for CDN-served requests.
	AvgAccessDistanceKm float64
	// Replicas is the number of videos pushed to hotspot caches over
	// the run (new placements only; carrying a cached video across
	// slots is free).
	Replicas int64
	// ReplicationCost is Replicas / World.NumVideos (the paper's
	// normalisation: multiples of the entire video set).
	ReplicationCost float64
	// CDNServerLoad is (ServedByCDN + Replicas) / TotalRequests: origin
	// egress for misses plus replica pushes, normalised by the
	// original workload.
	CDNServerLoad float64

	// PerHotspotLoad[h] is the nearest-aggregated workload λ_h summed
	// over slots (the Fig. 2 distribution under Nearest routing).
	PerHotspotLoad []int64
	// PerHotspotServed[h] is the number of requests actually served by
	// hotspot h over the run.
	PerHotspotServed []int64
	// PerHotspotSlotLoad[h][t] is λ_h per slot (the Fig. 3a series).
	PerHotspotSlotLoad [][]int64

	// OfflineHotspotSlots counts (hotspot, slot) pairs lost to churn.
	OfflineHotspotSlots int64

	// PerSlot holds a per-timeslot metrics timeline when
	// Options.KeepSlotMetrics is set (nil otherwise).
	PerSlot []SlotMetrics

	// SchedulingTime is the total time spent inside Scheduler.Schedule.
	SchedulingTime time.Duration
}

// SlotMetrics is one timeslot's slice of the run metrics.
type SlotMetrics struct {
	Slot            int
	Requests        int64
	ServedByHotspot int64
	ServedByCDN     int64
	Replicas        int64
	// HotspotServingRatio is ServedByHotspot / Requests for this slot.
	HotspotServingRatio float64
}

// Options configure a simulation run.
type Options struct {
	// Seed drives per-slot randomness handed to policies.
	Seed int64
	// KeepSlotLoads retains PerHotspotSlotLoad (needed for the
	// correlation analyses; costs O(hotspots × slots) memory).
	KeepSlotLoads bool
	// KeepSlotMetrics retains a per-timeslot metrics timeline in
	// Metrics.PerSlot (serving ratio, CDN load, and replicas per slot).
	KeepSlotMetrics bool
	// HotspotChurn is the probability that a hotspot is offline for a
	// given slot (crowdsourced edge devices are unreliable). Offline
	// hotspots disappear from the slot's index — requests aggregate to
	// the nearest online hotspot — and serve nothing; their cache
	// contents survive for when they return. 0 disables churn.
	HotspotChurn float64
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.HotspotChurn < 0 || o.HotspotChurn >= 1 {
		return fmt.Errorf("sim: HotspotChurn %v outside [0, 1)", o.HotspotChurn)
	}
	return nil
}

// Run replays the trace against the world under the policy and returns
// aggregate metrics.
func Run(world *trace.World, tr *trace.Trace, policy Scheduler, opts Options) (*Metrics, error) {
	if world == nil || tr == nil {
		return nil, fmt.Errorf("sim: nil world or trace")
	}
	if policy == nil {
		return nil, fmt.Errorf("sim: nil policy")
	}
	if err := world.Validate(); err != nil {
		return nil, fmt.Errorf("sim: invalid world: %w", err)
	}
	if err := tr.Validate(world); err != nil {
		return nil, fmt.Errorf("sim: invalid trace: %w", err)
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	index, err := world.Index()
	if err != nil {
		return nil, err
	}
	churnRng := stats.SplitRand(opts.Seed, "hotspot-churn")

	m := len(world.Hotspots)
	metrics := &Metrics{
		Scheme:           policy.Name(),
		PerHotspotLoad:   make([]int64, m),
		PerHotspotServed: make([]int64, m),
	}
	if opts.KeepSlotLoads {
		metrics.PerHotspotSlotLoad = make([][]int64, m)
		for h := range metrics.PerHotspotSlotLoad {
			metrics.PerHotspotSlotLoad[h] = make([]int64, tr.Slots)
		}
	}

	var distanceSum float64
	prevPlacement := make([]similarity.Set, m)

	bySlot := tr.BySlot()
	for slot, requests := range bySlot {
		if len(requests) == 0 {
			continue
		}

		// Churn: draw this slot's offline hotspots and index only the
		// online ones, so demand aggregates to reachable devices.
		slotIndex := index
		var offline []bool
		if opts.HotspotChurn > 0 {
			offline = make([]bool, m)
			online := 0
			for h := 0; h < m; h++ {
				if churnRng.Float64() < opts.HotspotChurn {
					offline[h] = true
					metrics.OfflineHotspotSlots++
				} else {
					online++
				}
			}
			if online == 0 {
				// Whole fleet offline: everything goes to the origin.
				metrics.ServedByCDN += int64(len(requests))
				metrics.TotalRequests += int64(len(requests))
				distanceSum += world.CDNDistanceKm * float64(len(requests))
				if opts.KeepSlotMetrics {
					metrics.PerSlot = append(metrics.PerSlot, SlotMetrics{
						Slot:        slot,
						Requests:    int64(len(requests)),
						ServedByCDN: int64(len(requests)),
					})
				}
				continue
			}
			slotIndex, err = onlineIndex(world, offline)
			if err != nil {
				return nil, err
			}
		}

		ctx, err := BuildSlotContext(world, slotIndex, slot, requests, stats.SplitRand(opts.Seed, fmt.Sprintf("slot-%d", slot)))
		if err != nil {
			return nil, err
		}
		if offline != nil {
			for h := 0; h < m; h++ {
				if offline[h] {
					ctx.Capacity[h] = 0
				}
			}
		}
		for h := 0; h < m; h++ {
			metrics.PerHotspotLoad[h] += ctx.Demand.Totals[h]
			if opts.KeepSlotLoads {
				metrics.PerHotspotSlotLoad[h][slot] = ctx.Demand.Totals[h]
			}
		}

		start := time.Now()
		asg, err := policy.Schedule(ctx)
		metrics.SchedulingTime += time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("sim: %s slot %d: %w", policy.Name(), slot, err)
		}
		if err := checkAssignment(asg, m, len(requests)); err != nil {
			return nil, fmt.Errorf("sim: %s slot %d: %w", policy.Name(), slot, err)
		}

		slotServedBefore := metrics.ServedByHotspot
		slotCDNBefore := metrics.ServedByCDN
		slotReplicasBefore := metrics.Replicas

		// Replication accounting: only newly placed videos cost a push.
		for h := 0; h < m; h++ {
			pl := asg.Placement[h]
			if pl.Len() > world.Hotspots[h].CacheCapacity {
				return nil, fmt.Errorf("sim: %s slot %d: hotspot %d placement %d exceeds cache %d",
					policy.Name(), slot, h, pl.Len(), world.Hotspots[h].CacheCapacity)
			}
			for v := range pl {
				if prevPlacement[h] == nil || !prevPlacement[h].Contains(v) {
					metrics.Replicas++
				}
			}
		}

		// Serve requests in order, enforcing placement and capacity
		// (offline hotspots serve nothing).
		capLeft := make([]int64, m)
		for h := 0; h < m; h++ {
			capLeft[h] = world.Hotspots[h].ServiceCapacity
			if offline != nil && offline[h] {
				capLeft[h] = 0
			}
		}
		for r, req := range requests {
			target := asg.Target[r]
			if target != CDN {
				feasible := capLeft[target] > 0 && asg.Placement[target].Contains(int(req.Video))
				if !feasible {
					metrics.Infeasible++
					target = CDN
				}
			}
			if target == CDN {
				metrics.ServedByCDN++
				distanceSum += world.CDNDistanceKm
			} else {
				capLeft[target]--
				metrics.ServedByHotspot++
				metrics.PerHotspotServed[target]++
				distanceSum += req.Location.DistanceTo(world.Hotspots[target].Location)
			}
		}
		metrics.TotalRequests += int64(len(requests))
		if asg.ExtraReplicas < 0 {
			return nil, fmt.Errorf("sim: %s slot %d: negative ExtraReplicas %d",
				policy.Name(), slot, asg.ExtraReplicas)
		}
		metrics.Replicas += asg.ExtraReplicas
		prevPlacement = asg.Placement

		if opts.KeepSlotMetrics {
			sm := SlotMetrics{
				Slot:            slot,
				Requests:        int64(len(requests)),
				ServedByHotspot: metrics.ServedByHotspot - slotServedBefore,
				ServedByCDN:     metrics.ServedByCDN - slotCDNBefore,
				Replicas:        metrics.Replicas - slotReplicasBefore,
			}
			if sm.Requests > 0 {
				sm.HotspotServingRatio = float64(sm.ServedByHotspot) / float64(sm.Requests)
			}
			metrics.PerSlot = append(metrics.PerSlot, sm)
		}
	}

	if metrics.TotalRequests > 0 {
		metrics.HotspotServingRatio = float64(metrics.ServedByHotspot) / float64(metrics.TotalRequests)
		metrics.AvgAccessDistanceKm = distanceSum / float64(metrics.TotalRequests)
		metrics.CDNServerLoad = (float64(metrics.ServedByCDN) + float64(metrics.Replicas)) /
			float64(metrics.TotalRequests)
	}
	if world.NumVideos > 0 {
		metrics.ReplicationCost = float64(metrics.Replicas) / float64(world.NumVideos)
	}
	return metrics, nil
}

// BuildSlotContext aggregates one slot's requests to their nearest
// hotspots and packages the scheduling inputs. It is exported for
// policies and experiments that drive scheduling outside Run.
func BuildSlotContext(world *trace.World, index *geo.Grid, slot int, requests []trace.Request, rng *rand.Rand) (*SlotContext, error) {
	nearest := make([]int, len(requests))
	demand := core.NewDemand(len(world.Hotspots))
	for r, req := range requests {
		h, _, ok := index.Nearest(req.Location)
		if !ok {
			return nil, fmt.Errorf("sim: no hotspot found for request %d", req.ID)
		}
		nearest[r] = h
		demand.Add(trace.HotspotID(h), req.Video, 1)
	}
	capacity := make([]int64, len(world.Hotspots))
	for h := range world.Hotspots {
		capacity[h] = world.Hotspots[h].ServiceCapacity
	}
	return &SlotContext{
		World:    world,
		Index:    index,
		Slot:     slot,
		Requests: requests,
		Nearest:  nearest,
		Demand:   demand,
		Capacity: capacity,
		Rand:     rng,
	}, nil
}

// onlineIndex builds a spatial index over the world's online hotspots.
func onlineIndex(world *trace.World, offline []bool) (*geo.Grid, error) {
	cell := 1.0
	if n := len(world.Hotspots); n > 0 {
		cell = math.Max(0.05, math.Sqrt(world.Bounds.Area()/float64(n)))
	}
	g, err := geo.NewGrid(world.Bounds, cell)
	if err != nil {
		return nil, fmt.Errorf("sim: building online index: %w", err)
	}
	for _, h := range world.Hotspots {
		if !offline[h.ID] {
			g.Insert(int(h.ID), h.Location)
		}
	}
	return g, nil
}

func checkAssignment(asg *Assignment, numHotspots, numRequests int) error {
	if asg == nil {
		return fmt.Errorf("nil assignment")
	}
	if len(asg.Placement) != numHotspots {
		return fmt.Errorf("placement covers %d hotspots, want %d", len(asg.Placement), numHotspots)
	}
	if len(asg.Target) != numRequests {
		return fmt.Errorf("assignment covers %d requests, want %d", len(asg.Target), numRequests)
	}
	for r, t := range asg.Target {
		if t != CDN && (t < 0 || t >= numHotspots) {
			return fmt.Errorf("request %d target %d out of range", r, t)
		}
	}
	return nil
}
