// Package sim is the trace-driven crowdsourced-CDN simulator. It
// replays a request trace slot by slot against a world, invokes a
// pluggable scheduling policy each slot, strictly enforces the paper's
// constraints (a request is served by a hotspot only if the video is
// placed there and service capacity remains, otherwise by the origin
// CDN server), and accumulates the paper's four evaluation metrics:
// hotspot serving ratio, average content access distance, content
// replication cost, and CDN server load.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/similarity"
	"repro/internal/stats"
	"repro/internal/trace"
)

// CDN is the sentinel target meaning "served by the origin CDN server".
const CDN = -1

// SlotContext carries everything a scheduling policy may use for one
// timeslot.
type SlotContext struct {
	World *trace.World
	// Index is a spatial index over the world's hotspots.
	Index *geo.Grid
	// Slot is the timeslot number.
	Slot int
	// Requests are this slot's requests.
	Requests []trace.Request
	// Nearest[r] is the nearest hotspot of Requests[r] (the paper's
	// aggregation point).
	Nearest []int
	// Demand is the per-hotspot per-video aggregation of Requests.
	// Policies running on predicted demand may ignore it.
	Demand *core.Demand
	// Capacity[h] is hotspot h's effective service capacity this slot:
	// normally World.Hotspots[h].ServiceCapacity, but 0 for hotspots
	// offline due to churn or injected faults, and scaled down under
	// capacity degradation. Policies must budget against this, not the
	// world's nominal capacity.
	Capacity []int64
	// CacheCapacity[h] is hotspot h's effective cache capacity this
	// slot, when injected faults degrade it; nil means nominal. The
	// slice is shared — policies must not mutate it. Use
	// EffectiveCacheCapacity for a nil-safe view.
	CacheCapacity []int
	// Rand is the slot's deterministic randomness source.
	Rand *rand.Rand
}

// EffectiveCapacity returns ctx.Capacity, falling back to the world's
// nominal capacities for contexts built without the field.
func (ctx *SlotContext) EffectiveCapacity() []int64 {
	if ctx.Capacity != nil {
		return ctx.Capacity
	}
	out := make([]int64, len(ctx.World.Hotspots))
	for h := range ctx.World.Hotspots {
		out[h] = ctx.World.Hotspots[h].ServiceCapacity
	}
	return out
}

// EffectiveCacheCapacity returns ctx.CacheCapacity, falling back to the
// world's nominal cache capacities when no fault degrades them. The
// returned slice may be shared — callers must not mutate it.
func (ctx *SlotContext) EffectiveCacheCapacity() []int {
	if ctx.CacheCapacity != nil {
		return ctx.CacheCapacity
	}
	out := make([]int, len(ctx.World.Hotspots))
	for h := range ctx.World.Hotspots {
		out[h] = ctx.World.Hotspots[h].CacheCapacity
	}
	return out
}

// Assignment is a policy's decision for one slot.
type Assignment struct {
	// Placement[h] is the set of videos hotspot h caches this slot.
	Placement []similarity.Set
	// Target[r] is the hotspot index that should serve Requests[r], or
	// CDN. The simulator enforces feasibility: an infeasible target
	// (video not placed, capacity exhausted) falls back to the CDN and
	// is counted in Metrics.Infeasible.
	Target []int
	// ExtraReplicas reports origin fetches beyond the slot-to-slot
	// placement difference the simulator already accounts (reactive
	// caching policies fetch and evict within a slot). Most policies
	// leave it zero.
	ExtraReplicas int64
	// Degraded reports that the policy produced this assignment under
	// degraded conditions (recovered solver failure, deadline cutoff).
	// The simulator counts such slots in Metrics.DegradedRounds.
	Degraded bool
	// StrandedDemand is the workload the policy knowingly abandoned to
	// the CDN this slot (RBCAer reports Stats.StrandedToCDN here).
	StrandedDemand int64
	// Phases is the slot's wall-clock scheduling-phase breakdown, when
	// the policy collects one (RBCAer under observability); zero
	// otherwise. Accumulated into Metrics.Phases.
	Phases obs.PhaseTimings
	// Events are the slot's structured trace events, when the policy
	// records them (core.Params.RecordEvents). The simulator flushes
	// them to Options.Tracer in slot order from its sequential
	// epilogue, so the event stream is identical for Run and
	// RunParallel at any worker count.
	Events []obs.Event
	// Plan, when non-nil, is the core scheduling plan this assignment
	// was materialised from (RBCAer sets it; baselines leave it nil).
	// The simulator forwards it to Options.PlanSink and otherwise
	// ignores it.
	Plan *core.Plan
}

// Scheduler is a request-redirection and content-placement policy.
type Scheduler interface {
	// Name identifies the policy in reports ("RBCAer", "Nearest", ...).
	Name() string
	// Schedule decides one slot.
	Schedule(ctx *SlotContext) (*Assignment, error)
}

// Metrics are the paper's evaluation metrics accumulated over a run.
type Metrics struct {
	Scheme string

	TotalRequests   int64
	ServedByHotspot int64
	ServedByCDN     int64
	// Infeasible counts hotspot targets the simulator had to bounce to
	// the CDN (video missing or capacity exhausted). A correct policy
	// keeps this near zero; it is part of ServedByCDN.
	Infeasible int64

	// HotspotServingRatio is ServedByHotspot / TotalRequests.
	HotspotServingRatio float64
	// AvgAccessDistanceKm averages the request→server distance, with
	// World.CDNDistanceKm charged for CDN-served requests.
	AvgAccessDistanceKm float64
	// Replicas is the number of videos pushed to hotspot caches over
	// the run (new placements only; carrying a cached video across
	// slots is free).
	Replicas int64
	// ReplicationCost is Replicas / World.NumVideos (the paper's
	// normalisation: multiples of the entire video set).
	ReplicationCost float64
	// CDNServerLoad is (ServedByCDN + Replicas) / TotalRequests: origin
	// egress for misses plus replica pushes, normalised by the
	// original workload.
	CDNServerLoad float64

	// PerHotspotLoad[h] is the nearest-aggregated workload λ_h summed
	// over slots (the Fig. 2 distribution under Nearest routing).
	PerHotspotLoad []int64
	// PerHotspotServed[h] is the number of requests actually served by
	// hotspot h over the run.
	PerHotspotServed []int64
	// PerHotspotSlotLoad[h][t] is λ_h per slot (the Fig. 3a series).
	PerHotspotSlotLoad [][]int64

	// OfflineHotspotSlots counts (hotspot, slot) pairs offline for any
	// reason: i.i.d. HotspotChurn or injected faults (each pair counted
	// once even when causes overlap).
	OfflineHotspotSlots int64
	// FaultOutageSlots counts (hotspot, slot) outage pairs injected by
	// Options.Faults, keyed by cause ("markov-churn",
	// "regional-outage"). Unlike OfflineHotspotSlots it attributes every
	// fault pair to its cause even when the hotspot was already churned
	// out by HotspotChurn. Nil when no fault outage occurred.
	FaultOutageSlots map[string]int64
	// FlashInjectedRequests is the number of synthetic requests
	// flash-crowd faults added to the trace (part of TotalRequests).
	FlashInjectedRequests int64
	// DegradedRounds counts slots whose assignment was produced under
	// degraded conditions (Assignment.Degraded).
	DegradedRounds int64
	// StrandedRequests is the total workload policies knowingly
	// abandoned to the CDN (Σ Assignment.StrandedDemand).
	StrandedRequests int64
	// FallbackServedByCDN is the number of requests the CDN absorbed
	// during degraded rounds (part of ServedByCDN).
	FallbackServedByCDN int64

	// PerSlot holds a per-timeslot metrics timeline when
	// Options.KeepSlotMetrics is set (nil otherwise).
	PerSlot []SlotMetrics

	// SchedulingTime is the total time spent inside Scheduler.Schedule.
	SchedulingTime time.Duration
	// Phases accumulates the per-slot scheduling-phase breakdown
	// (Assignment.Phases) over the run. Zero for policies that do not
	// report phases. Wall-clock: not part of the determinism contract.
	Phases obs.PhaseTimings
	// WallTime is the run's total wall clock (the "simulate" phase).
	// In RunParallel it is shorter than SchedulingTime, which sums the
	// concurrent per-slot rounds.
	WallTime time.Duration
}

// SlotMetrics is one timeslot's slice of the run metrics.
type SlotMetrics struct {
	Slot            int
	Requests        int64
	ServedByHotspot int64
	ServedByCDN     int64
	Replicas        int64
	// HotspotServingRatio is ServedByHotspot / Requests for this slot.
	HotspotServingRatio float64
	// Infeasible counts this slot's hotspot targets bounced to the CDN.
	Infeasible int64
	// Stranded is the workload the policy knowingly abandoned to the
	// CDN this slot (Assignment.StrandedDemand).
	Stranded int64
	// Degraded reports the slot's assignment was produced under
	// degraded conditions (or the whole fleet was offline).
	Degraded bool
}

// Options configure a simulation run.
type Options struct {
	// Seed drives per-slot randomness handed to policies.
	Seed int64
	// KeepSlotLoads retains PerHotspotSlotLoad (needed for the
	// correlation analyses; costs O(hotspots × slots) memory).
	KeepSlotLoads bool
	// KeepSlotMetrics retains a per-timeslot metrics timeline in
	// Metrics.PerSlot (serving ratio, CDN load, and replicas per slot).
	KeepSlotMetrics bool
	// HotspotChurn is the probability that a hotspot is offline for a
	// given slot (crowdsourced edge devices are unreliable). Offline
	// hotspots disappear from the slot's index — requests aggregate to
	// the nearest online hotspot — and serve nothing; their cache
	// contents survive for when they return. 0 disables churn; 1 takes
	// the whole fleet down every slot (everything served by the CDN).
	HotspotChurn float64
	// Faults optionally injects structured failures — Markov session
	// churn, correlated regional outages, capacity degradation, flash
	// crowds, stale load reports — on top of the i.i.d. HotspotChurn.
	// The scenario is compiled into a deterministic per-slot timeline
	// from Seed, so runs are reproducible across Run, RunParallel, and
	// any worker count. Nil injects nothing.
	Faults *fault.Scenario
	// Registry, when non-nil, receives the run's metrics (sim.*
	// counters, plus sim.phase.* wall-clock timers) at the end of the
	// run. The deterministic snapshot (Registry.Snapshot(false)) is
	// byte-identical across Run/RunParallel and any worker count.
	Registry *obs.Registry
	// Tracer, when non-nil, receives per-slot trace events: whatever
	// the policy recorded on Assignment.Events plus one "slot" summary
	// event per applied slot. Events are flushed in slot order from the
	// sequential epilogue, so the sequence is worker-count independent
	// (byte-identical JSONL with a dropTimings tracer).
	Tracer *obs.Tracer
	// PlanSink, when non-nil, receives each scheduled slot's core plan
	// in slot order from the sequential epilogue, for policies that
	// expose one (Assignment.Plan — RBCAer does). Slots scheduled by
	// plan-less policies and all-offline slots are skipped. Like the
	// tracer stream, the (slot, plan) sequence is identical for Run and
	// RunParallel at any worker count; the online serving layer's e2e
	// harness compares these plans byte-for-byte against the ones it
	// computed live (see internal/server).
	PlanSink func(slot int, plan *core.Plan)
	// SlotSink, when non-nil, receives each applied slot's metrics in
	// slot order from the sequential epilogue — the hook scenario
	// assertions evaluate on during the run. Returning a non-nil error
	// aborts the run with that error (fail-fast scenarios). Like the
	// tracer stream, the SlotMetrics sequence is identical for Run and
	// RunParallel at any worker count.
	SlotSink func(SlotMetrics) error
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.HotspotChurn < 0 || o.HotspotChurn > 1 {
		return fmt.Errorf("sim: HotspotChurn %v outside [0, 1]", o.HotspotChurn)
	}
	if err := o.Faults.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	return nil
}

// Run replays the trace against the world under the policy and returns
// aggregate metrics.
func Run(world *trace.World, tr *trace.Trace, policy Scheduler, opts Options) (*Metrics, error) {
	runStart := time.Now()
	if policy == nil {
		return nil, fmt.Errorf("sim: nil policy")
	}
	if err := validateRun(world, tr, opts); err != nil {
		return nil, err
	}
	tr, tl, injected, err := compileFaults(world, tr, opts)
	if err != nil {
		return nil, err
	}
	index, err := world.Index()
	if err != nil {
		return nil, err
	}
	churnRng := stats.SplitRand(opts.Seed, "hotspot-churn")

	metrics := newRunMetrics(world, tr, policy.Name(), opts)
	metrics.FlashInjectedRequests = injected
	var distanceSum float64
	prevPlacement := make([]similarity.Set, len(world.Hotspots))

	bySlot := tr.BySlot()
	for slot, requests := range bySlot {
		if len(requests) == 0 {
			continue
		}
		w := &slotWork{slot: slot, requests: requests}
		prepareSlot(world, tl, bySlot, churnRng, opts, metrics, w)
		if !w.allOffline {
			if err := scheduleSlot(world, index, policy, opts, w); err != nil {
				return nil, err
			}
		}
		metrics.SchedulingTime += w.took
		if err := applySlot(world, opts, metrics, w, prevPlacement, &distanceSum); err != nil {
			return nil, err
		}
		if w.asg != nil {
			prevPlacement = w.asg.Placement
		}
	}
	finalizeMetrics(world, metrics, distanceSum)
	metrics.WallTime = time.Since(runStart)
	publishRunMetrics(opts.Registry, metrics)
	return metrics, nil
}

// RunParallel is Run with the per-slot scheduling rounds — the
// simulation's dominant cost — executed concurrently on up to workers
// goroutines (0 selects GOMAXPROCS; 1 falls back to Run). Each worker
// schedules with its own policy instance from newPolicy, so policies
// need not be safe for concurrent use, and everything order-sensitive
// (churn draws, replica accounting against the previous slot's
// placement, request serving, metric accumulation) still runs
// sequentially in slot order. The metrics are therefore identical to
// Run's — including float accumulation order — whenever each policy
// instance's decisions depend only on the slot it is handed. Policies
// that carry state across slots (demand predictors, reactive caches)
// would observe slots out of order; run those through Run instead.
func RunParallel(world *trace.World, tr *trace.Trace, newPolicy func() Scheduler, workers int, opts Options) (*Metrics, error) {
	runStart := time.Now()
	if newPolicy == nil {
		return nil, fmt.Errorf("sim: nil policy factory")
	}
	first := newPolicy()
	if first == nil {
		return nil, fmt.Errorf("sim: policy factory returned nil")
	}
	workers = par.Workers(workers)
	if workers <= 1 {
		return Run(world, tr, first, opts)
	}
	if err := validateRun(world, tr, opts); err != nil {
		return nil, err
	}
	tr, tl, injected, err := compileFaults(world, tr, opts)
	if err != nil {
		return nil, err
	}
	index, err := world.Index()
	if err != nil {
		return nil, err
	}
	churnRng := stats.SplitRand(opts.Seed, "hotspot-churn")
	metrics := newRunMetrics(world, tr, first.Name(), opts)
	metrics.FlashInjectedRequests = injected

	// Sequential prologue: collect the non-empty slots and draw their
	// churn in slot order, so the churn stream matches Run's exactly.
	// Fault injection reads the precompiled timeline, so it is
	// order-independent, but folding it into the same prologue keeps the
	// metric accumulation identical to Run's.
	var work []*slotWork
	bySlot := tr.BySlot()
	for slot, requests := range bySlot {
		if len(requests) == 0 {
			continue
		}
		w := &slotWork{slot: slot, requests: requests}
		prepareSlot(world, tl, bySlot, churnRng, opts, metrics, w)
		work = append(work, w)
	}

	// Parallel phase: schedule each slot with a worker-owned policy
	// instance. Slots are striped across workers; each worker touches
	// only its own slotWork entries, so no synchronisation beyond the
	// final Wait is needed.
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		policy := first
		if wk > 0 {
			policy = newPolicy()
		}
		if policy == nil {
			return nil, fmt.Errorf("sim: policy factory returned nil")
		}
		wg.Add(1)
		go func(wk int, policy Scheduler) {
			defer wg.Done()
			for idx := wk; idx < len(work); idx += workers {
				w := work[idx]
				if w.allOffline {
					continue
				}
				w.err = scheduleSlot(world, index, policy, opts, w)
			}
		}(wk, policy)
	}
	wg.Wait()
	for _, w := range work {
		if w.err != nil {
			return nil, w.err
		}
	}

	// Sequential epilogue: apply the slots in order, exactly as Run
	// does. SchedulingTime sums the per-slot rounds, i.e. total CPU
	// time spent scheduling, not the (shorter) parallel wall time.
	prevPlacement := make([]similarity.Set, len(world.Hotspots))
	var distanceSum float64
	for _, w := range work {
		metrics.SchedulingTime += w.took
		if err := applySlot(world, opts, metrics, w, prevPlacement, &distanceSum); err != nil {
			return nil, err
		}
		if w.asg != nil {
			prevPlacement = w.asg.Placement
		}
	}
	finalizeMetrics(world, metrics, distanceSum)
	metrics.WallTime = time.Since(runStart)
	publishRunMetrics(opts.Registry, metrics)
	return metrics, nil
}

// slotWork carries one non-empty timeslot through the prepare →
// schedule → apply pipeline shared by Run and RunParallel.
type slotWork struct {
	slot       int
	requests   []trace.Request
	offline    []bool // nil when neither churn nor faults apply
	allOffline bool
	// svc is the slot's degraded per-hotspot service-capacity base row
	// (before offline zeroing); nil means nominal. Shared with the
	// fault timeline — never mutated.
	svc []int64
	// cache is the slot's degraded per-hotspot cache capacities; nil
	// means nominal. Shared with the fault timeline — never mutated.
	cache []int
	// reportRequests are the requests the scheduler's (stale) load
	// report actually describes; nil when reports are fresh.
	reportRequests []trace.Request
	// drops marks hotspots whose load report was lost this slot.
	drops []bool
	// stale is set when the policy's demand view must be rebuilt from
	// reportRequests/drops instead of the slot's true requests.
	stale bool
	// actual is the slot's true aggregated demand, kept for metrics
	// when ctx.Demand carries the stale reported view.
	actual *core.Demand
	ctx    *SlotContext
	asg    *Assignment
	took   time.Duration
	err    error
}

// compileFaults expands Options.Faults against the run: flash crowds
// are injected into the trace up front (a pure transform, so demand is
// identical however slots are later scheduled) and everything else is
// compiled into a deterministic per-slot timeline. A run without
// faults returns the inputs untouched.
func compileFaults(world *trace.World, tr *trace.Trace, opts Options) (*trace.Trace, *fault.Timeline, int64, error) {
	if opts.Faults == nil || opts.Faults.Empty() {
		return tr, nil, 0, nil
	}
	tr, injected, err := fault.InjectFlashCrowds(tr, opts.Faults)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("sim: %w", err)
	}
	tl, err := fault.Compile(world, tr.Slots, opts.Seed, opts.Faults)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("sim: %w", err)
	}
	// Per-family fault counters are a pure function of the compiled
	// timeline, published once per run: fault.cause.churn/outage/
	// degradation/stale_drops from the timeline, fault.cause.flash for
	// the trace-level injection. Deterministic for any worker count.
	if opts.Registry != nil {
		tl.Publish(opts.Registry)
		opts.Registry.Counter("fault.cause.flash").Add(injected)
	}
	return tr, tl, injected, nil
}

// prepareSlot draws the slot's i.i.d. churn and merges the fault
// timeline into the slot's offline mask, capacity rows, and stale
// report view. It must run sequentially in slot order (the churn
// stream and metric accumulation are order-sensitive).
func prepareSlot(world *trace.World, tl *fault.Timeline, bySlot [][]trace.Request, churnRng *rand.Rand, opts Options, metrics *Metrics, w *slotWork) {
	if opts.HotspotChurn > 0 {
		drawOffline(world, churnRng, opts, metrics, w)
	}
	if tl == nil {
		return
	}
	m := len(world.Hotspots)
	if causes := tl.Causes(w.slot); causes != nil {
		if w.offline == nil {
			w.offline = make([]bool, m)
		}
		for h, c := range causes {
			if c == fault.CauseNone {
				continue
			}
			if metrics.FaultOutageSlots == nil {
				metrics.FaultOutageSlots = make(map[string]int64)
			}
			metrics.FaultOutageSlots[c.String()]++
			if !w.offline[h] {
				w.offline[h] = true
				metrics.OfflineHotspotSlots++
			}
		}
	}
	if w.offline != nil {
		online := 0
		for h := range w.offline {
			if !w.offline[h] {
				online++
			}
		}
		w.allOffline = online == 0
	}
	w.svc = tl.ServiceCapacities(w.slot)
	w.cache = tl.CacheCapacities(w.slot)
	if tl.Stale() {
		w.stale = true
		w.reportRequests = bySlot[tl.ReportSlot(w.slot)]
		w.drops = tl.DroppedReports(w.slot)
	}
}

// validateRun checks the shared Run/RunParallel inputs.
func validateRun(world *trace.World, tr *trace.Trace, opts Options) error {
	if world == nil || tr == nil {
		return fmt.Errorf("sim: nil world or trace")
	}
	if err := world.Validate(); err != nil {
		return fmt.Errorf("sim: invalid world: %w", err)
	}
	if err := tr.Validate(world); err != nil {
		return fmt.Errorf("sim: invalid trace: %w", err)
	}
	return opts.Validate()
}

// newRunMetrics allocates the metrics accumulator for one run.
func newRunMetrics(world *trace.World, tr *trace.Trace, scheme string, opts Options) *Metrics {
	m := len(world.Hotspots)
	metrics := &Metrics{
		Scheme:           scheme,
		PerHotspotLoad:   make([]int64, m),
		PerHotspotServed: make([]int64, m),
	}
	if opts.KeepSlotLoads {
		metrics.PerHotspotSlotLoad = make([][]int64, m)
		for h := range metrics.PerHotspotSlotLoad {
			metrics.PerHotspotSlotLoad[h] = make([]int64, tr.Slots)
		}
	}
	return metrics
}

// drawOffline draws the slot's churned-out hotspots from rng (exactly
// one draw per hotspot, so the stream is identical however slots are
// later scheduled) and records them on w.
func drawOffline(world *trace.World, rng *rand.Rand, opts Options, metrics *Metrics, w *slotWork) {
	m := len(world.Hotspots)
	w.offline = make([]bool, m)
	online := 0
	for h := 0; h < m; h++ {
		if rng.Float64() < opts.HotspotChurn {
			w.offline[h] = true
			metrics.OfflineHotspotSlots++
		} else {
			online++
		}
	}
	w.allOffline = online == 0
}

// scheduleSlot builds the slot's context (indexing only online
// hotspots under churn or faults, degrading capacities, and swapping
// in the stale reported demand when load reports lag) and runs one
// policy scheduling round, recording the assignment and its duration
// on w. Everything it reads from w was fixed by the sequential
// prepareSlot, so slots may be scheduled concurrently in any order.
func scheduleSlot(world *trace.World, index *geo.Grid, policy Scheduler, opts Options, w *slotWork) error {
	slotIndex := index
	if w.offline != nil {
		var err error
		slotIndex, err = onlineIndex(world, w.offline)
		if err != nil {
			return err
		}
	}
	ctx, err := BuildSlotContext(world, slotIndex, w.slot, w.requests, stats.SplitRand(opts.Seed, fmt.Sprintf("slot-%d", w.slot)))
	if err != nil {
		return err
	}
	if w.svc != nil {
		copy(ctx.Capacity, w.svc)
	}
	if w.offline != nil {
		for h := range ctx.Capacity {
			if w.offline[h] {
				ctx.Capacity[h] = 0
			}
		}
	}
	ctx.CacheCapacity = w.cache
	w.actual = ctx.Demand
	if w.stale {
		// The policy schedules against the load report it would have
		// received: the lagged slot's requests aggregated through
		// *today's* online index, minus reports lost in flight. The
		// simulator still serves (and accounts) the true requests.
		reported := core.NewDemand(len(world.Hotspots))
		for _, req := range w.reportRequests {
			h, _, ok := slotIndex.Nearest(req.Location)
			if !ok {
				continue
			}
			reported.Add(trace.HotspotID(h), req.Video, 1)
		}
		if w.drops != nil {
			for h, dropped := range w.drops {
				if dropped {
					reported.Totals[h] = 0
					reported.PerVideo[h] = nil
				}
			}
		}
		ctx.Demand = reported
	}
	w.ctx = ctx

	start := time.Now()
	asg, err := policy.Schedule(ctx)
	w.took = time.Since(start)
	if err != nil {
		return fmt.Errorf("sim: %s slot %d: %w", policy.Name(), w.slot, err)
	}
	if err := checkAssignment(asg, len(world.Hotspots), len(w.requests)); err != nil {
		return fmt.Errorf("sim: %s slot %d: %w", policy.Name(), w.slot, err)
	}
	w.asg = asg
	return nil
}

// applySlot folds one scheduled slot into the metrics: demand
// accounting, replica pushes against the previous placement, and
// serving every request in order under placement and capacity
// constraints. It must be called in slot order.
func applySlot(world *trace.World, opts Options, metrics *Metrics, w *slotWork, prevPlacement []similarity.Set, distanceSum *float64) error {
	m := len(world.Hotspots)
	slot, requests := w.slot, w.requests

	if w.allOffline {
		// Whole fleet offline: everything goes to the origin.
		metrics.ServedByCDN += int64(len(requests))
		metrics.TotalRequests += int64(len(requests))
		*distanceSum += world.CDNDistanceKm * float64(len(requests))
		if opts.KeepSlotMetrics || opts.SlotSink != nil {
			sm := SlotMetrics{
				Slot:        slot,
				Requests:    int64(len(requests)),
				ServedByCDN: int64(len(requests)),
				Degraded:    true,
			}
			if opts.KeepSlotMetrics {
				metrics.PerSlot = append(metrics.PerSlot, sm)
			}
			if opts.SlotSink != nil {
				if err := opts.SlotSink(sm); err != nil {
					return fmt.Errorf("sim: slot %d: %w", slot, err)
				}
			}
		}
		opts.Tracer.Emit(obs.Event{Type: "slot", Slot: slot, Attrs: []obs.Attr{
			obs.I("requests", int64(len(requests))),
			obs.I("served_hotspot", 0),
			obs.I("served_cdn", int64(len(requests))),
			obs.I("replicas", 0),
			obs.I("all_offline", 1),
		}})
		return nil
	}

	asg := w.asg
	// Load metrics always reflect the true aggregated demand, not the
	// stale reported view the policy may have scheduled against.
	for h := 0; h < m; h++ {
		metrics.PerHotspotLoad[h] += w.actual.Totals[h]
		if opts.KeepSlotLoads {
			metrics.PerHotspotSlotLoad[h][slot] = w.actual.Totals[h]
		}
	}

	slotServedBefore := metrics.ServedByHotspot
	slotCDNBefore := metrics.ServedByCDN
	slotReplicasBefore := metrics.Replicas
	slotInfeasibleBefore := metrics.Infeasible

	// Replication accounting: only newly placed videos cost a push.
	// Placements are bounded by the slot's effective (possibly
	// degraded) cache capacities.
	for h := 0; h < m; h++ {
		pl := asg.Placement[h]
		cacheCap := world.Hotspots[h].CacheCapacity
		if w.cache != nil {
			cacheCap = w.cache[h]
		}
		if pl.Len() > cacheCap {
			return fmt.Errorf("sim: %s slot %d: hotspot %d placement %d exceeds cache %d",
				metrics.Scheme, slot, h, pl.Len(), cacheCap)
		}
		for v := range pl {
			if prevPlacement[h] == nil || !prevPlacement[h].Contains(v) {
				metrics.Replicas++
			}
		}
	}

	// Serve requests in order, enforcing placement and effective
	// capacity (offline hotspots serve nothing; degraded hotspots serve
	// their scaled-down share).
	capLeft := make([]int64, m)
	for h := 0; h < m; h++ {
		capLeft[h] = world.Hotspots[h].ServiceCapacity
		if w.svc != nil {
			capLeft[h] = w.svc[h]
		}
		if w.offline != nil && w.offline[h] {
			capLeft[h] = 0
		}
	}
	for r, req := range requests {
		target := asg.Target[r]
		if target != CDN {
			feasible := capLeft[target] > 0 && asg.Placement[target].Contains(int(req.Video))
			if !feasible {
				metrics.Infeasible++
				target = CDN
			}
		}
		if target == CDN {
			metrics.ServedByCDN++
			*distanceSum += world.CDNDistanceKm
		} else {
			capLeft[target]--
			metrics.ServedByHotspot++
			metrics.PerHotspotServed[target]++
			*distanceSum += req.Location.DistanceTo(world.Hotspots[target].Location)
		}
	}
	metrics.TotalRequests += int64(len(requests))
	if asg.ExtraReplicas < 0 {
		return fmt.Errorf("sim: %s slot %d: negative ExtraReplicas %d",
			metrics.Scheme, slot, asg.ExtraReplicas)
	}
	if asg.StrandedDemand < 0 {
		return fmt.Errorf("sim: %s slot %d: negative StrandedDemand %d",
			metrics.Scheme, slot, asg.StrandedDemand)
	}
	metrics.Replicas += asg.ExtraReplicas
	metrics.StrandedRequests += asg.StrandedDemand
	if opts.PlanSink != nil && asg.Plan != nil {
		opts.PlanSink(slot, asg.Plan)
	}
	metrics.Phases = metrics.Phases.Add(asg.Phases)
	if asg.Degraded {
		metrics.DegradedRounds++
		metrics.FallbackServedByCDN += metrics.ServedByCDN - slotCDNBefore
	}

	// Flush the slot's trace: first whatever the policy recorded during
	// its round, then the simulator's own slot summary. applySlot runs
	// sequentially in slot order in both Run and RunParallel, so the
	// event sequence is worker-count independent.
	if opts.Tracer != nil {
		opts.Tracer.EmitAll(slot, asg.Events)
		opts.Tracer.Emit(obs.Event{Type: "slot", Slot: slot, Attrs: []obs.Attr{
			obs.I("requests", int64(len(requests))),
			obs.I("served_hotspot", metrics.ServedByHotspot-slotServedBefore),
			obs.I("served_cdn", metrics.ServedByCDN-slotCDNBefore),
			obs.I("replicas", metrics.Replicas-slotReplicasBefore),
			obs.I("degraded", degradedAttr(asg.Degraded)),
			obs.D("sched_dur", w.took),
		}})
	}

	if opts.KeepSlotMetrics || opts.SlotSink != nil {
		sm := SlotMetrics{
			Slot:            slot,
			Requests:        int64(len(requests)),
			ServedByHotspot: metrics.ServedByHotspot - slotServedBefore,
			ServedByCDN:     metrics.ServedByCDN - slotCDNBefore,
			Replicas:        metrics.Replicas - slotReplicasBefore,
			Infeasible:      metrics.Infeasible - slotInfeasibleBefore,
			Stranded:        asg.StrandedDemand,
			Degraded:        asg.Degraded,
		}
		if sm.Requests > 0 {
			sm.HotspotServingRatio = float64(sm.ServedByHotspot) / float64(sm.Requests)
		}
		if opts.KeepSlotMetrics {
			metrics.PerSlot = append(metrics.PerSlot, sm)
		}
		if opts.SlotSink != nil {
			if err := opts.SlotSink(sm); err != nil {
				return fmt.Errorf("sim: slot %d: %w", slot, err)
			}
		}
	}
	return nil
}

// degradedAttr renders the degraded flag as a 0/1 event attribute.
func degradedAttr(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// publishRunMetrics folds a finished run into the registry: logical
// totals as sim.* counters (deterministic for any worker count), wall
// clock as sim.phase.* timers (excluded from the deterministic
// snapshot).
func publishRunMetrics(r *obs.Registry, m *Metrics) {
	if r == nil {
		return
	}
	r.Counter("sim.runs").Inc()
	r.Counter("sim.requests_total").Add(m.TotalRequests)
	r.Counter("sim.served_by_hotspot").Add(m.ServedByHotspot)
	r.Counter("sim.served_by_cdn").Add(m.ServedByCDN)
	r.Counter("sim.infeasible").Add(m.Infeasible)
	r.Counter("sim.replicas").Add(m.Replicas)
	r.Counter("sim.offline_hotspot_slots").Add(m.OfflineHotspotSlots)
	r.Counter("sim.flash_injected_requests").Add(m.FlashInjectedRequests)
	r.Counter("sim.degraded_rounds").Add(m.DegradedRounds)
	r.Counter("sim.stranded_requests").Add(m.StrandedRequests)
	r.Counter("sim.fallback_served_by_cdn").Add(m.FallbackServedByCDN)
	for cause, n := range m.FaultOutageSlots {
		r.Counter("sim.fault_outage_slots." + cause).Add(n)
	}
	r.Timer("sim.phase.simulate").Observe(m.WallTime)
	r.Timer("sim.phase.scheduling").Observe(m.SchedulingTime)
	r.Timer("sim.phase.cluster").Observe(m.Phases.Cluster)
	r.Timer("sim.phase.balance").Observe(m.Phases.Balance)
	r.Timer("sim.phase.replicate").Observe(m.Phases.Replicate)
}

// finalizeMetrics derives the run-level ratios.
func finalizeMetrics(world *trace.World, metrics *Metrics, distanceSum float64) {
	if metrics.TotalRequests > 0 {
		metrics.HotspotServingRatio = float64(metrics.ServedByHotspot) / float64(metrics.TotalRequests)
		metrics.AvgAccessDistanceKm = distanceSum / float64(metrics.TotalRequests)
		metrics.CDNServerLoad = (float64(metrics.ServedByCDN) + float64(metrics.Replicas)) /
			float64(metrics.TotalRequests)
	}
	if world.NumVideos > 0 {
		metrics.ReplicationCost = float64(metrics.Replicas) / float64(world.NumVideos)
	}
}

// BuildSlotContext aggregates one slot's requests to their nearest
// hotspots and packages the scheduling inputs. It is exported for
// policies and experiments that drive scheduling outside Run.
func BuildSlotContext(world *trace.World, index *geo.Grid, slot int, requests []trace.Request, rng *rand.Rand) (*SlotContext, error) {
	nearest := make([]int, len(requests))
	demand := core.NewDemand(len(world.Hotspots))
	for r, req := range requests {
		h, _, ok := index.Nearest(req.Location)
		if !ok {
			return nil, fmt.Errorf("sim: no hotspot found for request %d", req.ID)
		}
		nearest[r] = h
		demand.Add(trace.HotspotID(h), req.Video, 1)
	}
	capacity := make([]int64, len(world.Hotspots))
	for h := range world.Hotspots {
		capacity[h] = world.Hotspots[h].ServiceCapacity
	}
	return &SlotContext{
		World:    world,
		Index:    index,
		Slot:     slot,
		Requests: requests,
		Nearest:  nearest,
		Demand:   demand,
		Capacity: capacity,
		Rand:     rng,
	}, nil
}

// onlineIndex builds a spatial index over the world's online hotspots.
func onlineIndex(world *trace.World, offline []bool) (*geo.Grid, error) {
	cell := 1.0
	if n := len(world.Hotspots); n > 0 {
		cell = math.Max(0.05, math.Sqrt(world.Bounds.Area()/float64(n)))
	}
	g, err := geo.NewGrid(world.Bounds, cell)
	if err != nil {
		return nil, fmt.Errorf("sim: building online index: %w", err)
	}
	for _, h := range world.Hotspots {
		if !offline[h.ID] {
			g.Insert(int(h.ID), h.Location)
		}
	}
	return g, nil
}

func checkAssignment(asg *Assignment, numHotspots, numRequests int) error {
	if asg == nil {
		return fmt.Errorf("nil assignment")
	}
	if len(asg.Placement) != numHotspots {
		return fmt.Errorf("placement covers %d hotspots, want %d", len(asg.Placement), numHotspots)
	}
	if len(asg.Target) != numRequests {
		return fmt.Errorf("assignment covers %d requests, want %d", len(asg.Target), numRequests)
	}
	for r, t := range asg.Target {
		if t != CDN && (t < 0 || t >= numHotspots) {
			return fmt.Errorf("request %d target %d out of range", r, t)
		}
	}
	return nil
}
