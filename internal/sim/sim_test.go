package sim

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/similarity"
	"repro/internal/stats"
	"repro/internal/trace"
)

// stubPolicy lets tests hand the simulator arbitrary assignments.
type stubPolicy struct {
	name     string
	schedule func(ctx *SlotContext) (*Assignment, error)
}

func (s stubPolicy) Name() string                                   { return s.name }
func (s stubPolicy) Schedule(ctx *SlotContext) (*Assignment, error) { return s.schedule(ctx) }

var _ Scheduler = stubPolicy{}

// twoHotspotWorld is a minimal world: hotspot 0 at x=0, hotspot 1 at
// x=2, capacities 2 requests / 2 videos each.
func twoHotspotWorld() *trace.World {
	return &trace.World{
		Bounds: geo.Rect{MinX: -1, MinY: -1, MaxX: 3, MaxY: 1},
		Hotspots: []trace.Hotspot{
			{ID: 0, Location: geo.Point{X: 0, Y: 0}, ServiceCapacity: 2, CacheCapacity: 2},
			{ID: 1, Location: geo.Point{X: 2, Y: 0}, ServiceCapacity: 2, CacheCapacity: 2},
		},
		NumVideos:     10,
		CDNDistanceKm: 20,
	}
}

func requestsAt(videos []trace.VideoID, x float64, slot int) []trace.Request {
	out := make([]trace.Request, len(videos))
	for i, v := range videos {
		out[i] = trace.Request{
			ID:       i,
			Video:    v,
			Location: geo.Point{X: x, Y: 0},
			Slot:     slot,
		}
	}
	return out
}

func placeEverything(ctx *SlotContext) []similarity.Set {
	m := len(ctx.World.Hotspots)
	placement := make([]similarity.Set, m)
	for h := 0; h < m; h++ {
		placement[h] = similarity.NewSet()
		for v := range ctx.Demand.PerVideo[h] {
			if placement[h].Len() < ctx.World.Hotspots[h].CacheCapacity {
				placement[h].Add(int(v))
			}
		}
	}
	return placement
}

func TestRunInputValidation(t *testing.T) {
	world := twoHotspotWorld()
	tr := &trace.Trace{Slots: 1, Requests: requestsAt([]trace.VideoID{1}, 0, 0)}
	nearest := stubPolicy{name: "stub", schedule: func(ctx *SlotContext) (*Assignment, error) {
		return &Assignment{Placement: placeEverything(ctx), Target: append([]int(nil), ctx.Nearest...)}, nil
	}}
	if _, err := Run(nil, tr, nearest, Options{}); err == nil {
		t.Error("Run(nil world) succeeded")
	}
	if _, err := Run(world, nil, nearest, Options{}); err == nil {
		t.Error("Run(nil trace) succeeded")
	}
	if _, err := Run(world, tr, nil, Options{}); err == nil {
		t.Error("Run(nil policy) succeeded")
	}
	badWorld := twoHotspotWorld()
	badWorld.NumVideos = 0
	if _, err := Run(badWorld, tr, nearest, Options{}); err == nil {
		t.Error("Run(invalid world) succeeded")
	}
	badTrace := &trace.Trace{Slots: 1, Requests: []trace.Request{{Video: 99, Slot: 0}}}
	if _, err := Run(world, badTrace, nearest, Options{}); err == nil {
		t.Error("Run(invalid trace) succeeded")
	}
}

func TestRunServesFeasibleTargets(t *testing.T) {
	world := twoHotspotWorld()
	// Two requests at hotspot 0 for video 1: capacity 2, cache fits.
	tr := &trace.Trace{Slots: 1, Requests: requestsAt([]trace.VideoID{1, 1}, 0.1, 0)}
	policy := stubPolicy{name: "local", schedule: func(ctx *SlotContext) (*Assignment, error) {
		return &Assignment{Placement: placeEverything(ctx), Target: append([]int(nil), ctx.Nearest...)}, nil
	}}
	m, err := Run(world, tr, policy, Options{Seed: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.TotalRequests != 2 || m.ServedByHotspot != 2 || m.ServedByCDN != 0 {
		t.Fatalf("metrics = %+v, want everything hotspot-served", m)
	}
	if m.HotspotServingRatio != 1 {
		t.Errorf("serving ratio = %v, want 1", m.HotspotServingRatio)
	}
	// Distance: requests at x=0.1, hotspot at x=0.
	if !almostEqual(m.AvgAccessDistanceKm, 0.1, 1e-9) {
		t.Errorf("avg distance = %v, want 0.1", m.AvgAccessDistanceKm)
	}
	if m.Replicas != 1 {
		t.Errorf("replicas = %d, want 1", m.Replicas)
	}
	if want := 1.0 / 10; !almostEqual(m.ReplicationCost, want, 1e-9) {
		t.Errorf("replication cost = %v, want %v", m.ReplicationCost, want)
	}
	// CDN load = (0 misses + 1 replica) / 2 requests.
	if !almostEqual(m.CDNServerLoad, 0.5, 1e-9) {
		t.Errorf("CDN load = %v, want 0.5", m.CDNServerLoad)
	}
	if m.PerHotspotLoad[0] != 2 || m.PerHotspotServed[0] != 2 {
		t.Errorf("per-hotspot stats wrong: load %v served %v", m.PerHotspotLoad, m.PerHotspotServed)
	}
}

func TestRunEnforcesCapacity(t *testing.T) {
	world := twoHotspotWorld()
	// Three requests at hotspot 0: capacity 2 → one bounced to CDN.
	tr := &trace.Trace{Slots: 1, Requests: requestsAt([]trace.VideoID{1, 1, 1}, 0, 0)}
	policy := stubPolicy{name: "overload", schedule: func(ctx *SlotContext) (*Assignment, error) {
		return &Assignment{Placement: placeEverything(ctx), Target: append([]int(nil), ctx.Nearest...)}, nil
	}}
	m, err := Run(world, tr, policy, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.ServedByHotspot != 2 || m.ServedByCDN != 1 || m.Infeasible != 1 {
		t.Fatalf("metrics = served %d, cdn %d, infeasible %d; want 2, 1, 1",
			m.ServedByHotspot, m.ServedByCDN, m.Infeasible)
	}
	// The bounced request pays the CDN distance.
	if want := 20.0 / 3; !almostEqual(m.AvgAccessDistanceKm, want, 1e-9) {
		t.Errorf("avg distance = %v, want %v", m.AvgAccessDistanceKm, want)
	}
}

func TestRunEnforcesPlacement(t *testing.T) {
	world := twoHotspotWorld()
	tr := &trace.Trace{Slots: 1, Requests: requestsAt([]trace.VideoID{1}, 0, 0)}
	policy := stubPolicy{name: "no-placement", schedule: func(ctx *SlotContext) (*Assignment, error) {
		placement := []similarity.Set{similarity.NewSet(), similarity.NewSet()}
		return &Assignment{Placement: placement, Target: append([]int(nil), ctx.Nearest...)}, nil
	}}
	m, err := Run(world, tr, policy, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.ServedByCDN != 1 || m.Infeasible != 1 {
		t.Errorf("request served without placement: %+v", m)
	}
}

func TestRunRejectsOversizedPlacement(t *testing.T) {
	world := twoHotspotWorld()
	tr := &trace.Trace{Slots: 1, Requests: requestsAt([]trace.VideoID{1}, 0, 0)}
	policy := stubPolicy{name: "cache-buster", schedule: func(ctx *SlotContext) (*Assignment, error) {
		placement := []similarity.Set{similarity.NewSet(1, 2, 3), similarity.NewSet()}
		return &Assignment{Placement: placement, Target: append([]int(nil), ctx.Nearest...)}, nil
	}}
	if _, err := Run(world, tr, policy, Options{}); err == nil {
		t.Error("Run accepted placement exceeding cache capacity")
	}
}

func TestRunRejectsBadAssignment(t *testing.T) {
	world := twoHotspotWorld()
	tr := &trace.Trace{Slots: 1, Requests: requestsAt([]trace.VideoID{1}, 0, 0)}
	cases := map[string]func(ctx *SlotContext) (*Assignment, error){
		"nil assignment": func(ctx *SlotContext) (*Assignment, error) { return nil, nil },
		"short placement": func(ctx *SlotContext) (*Assignment, error) {
			return &Assignment{Placement: []similarity.Set{similarity.NewSet()}, Target: []int{0}}, nil
		},
		"short targets": func(ctx *SlotContext) (*Assignment, error) {
			return &Assignment{Placement: placeEverything(ctx), Target: nil}, nil
		},
		"target out of range": func(ctx *SlotContext) (*Assignment, error) {
			return &Assignment{Placement: placeEverything(ctx), Target: []int{7}}, nil
		},
		"policy error": func(ctx *SlotContext) (*Assignment, error) {
			return nil, fmt.Errorf("boom")
		},
	}
	for name, schedule := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Run(world, tr, stubPolicy{name: name, schedule: schedule}, Options{}); err == nil {
				t.Error("Run accepted a bad assignment")
			}
		})
	}
}

func TestRunReplicaAccountingAcrossSlots(t *testing.T) {
	world := twoHotspotWorld()
	reqs := append(requestsAt([]trace.VideoID{1}, 0, 0), requestsAt([]trace.VideoID{1}, 0, 1)...)
	reqs[1].ID = 1
	tr := &trace.Trace{Slots: 2, Requests: reqs}

	// The same placement both slots: the replica is pushed once.
	stable := stubPolicy{name: "stable", schedule: func(ctx *SlotContext) (*Assignment, error) {
		placement := []similarity.Set{similarity.NewSet(1), similarity.NewSet()}
		return &Assignment{Placement: placement, Target: append([]int(nil), ctx.Nearest...)}, nil
	}}
	m, err := Run(world, tr, stable, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Replicas != 1 {
		t.Errorf("stable placement replicas = %d, want 1 (carried across slots)", m.Replicas)
	}

	// Churning placement pays for each re-fetch.
	churn := stubPolicy{name: "churn", schedule: func(ctx *SlotContext) (*Assignment, error) {
		video := 1
		if ctx.Slot == 1 {
			video = 2
		}
		placement := []similarity.Set{similarity.NewSet(video), similarity.NewSet()}
		targets := make([]int, len(ctx.Requests))
		for i := range targets {
			targets[i] = CDN
		}
		return &Assignment{Placement: placement, Target: targets}, nil
	}}
	m2, err := Run(world, tr, churn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Replicas != 2 {
		t.Errorf("churning placement replicas = %d, want 2", m2.Replicas)
	}
}

func TestRunSlotLoads(t *testing.T) {
	world := twoHotspotWorld()
	reqs := append(requestsAt([]trace.VideoID{1, 2}, 0, 0), requestsAt([]trace.VideoID{3}, 2, 1)...)
	for i := range reqs {
		reqs[i].ID = i
	}
	tr := &trace.Trace{Slots: 2, Requests: reqs}
	policy := stubPolicy{name: "cdn-only", schedule: func(ctx *SlotContext) (*Assignment, error) {
		targets := make([]int, len(ctx.Requests))
		for i := range targets {
			targets[i] = CDN
		}
		placement := []similarity.Set{similarity.NewSet(), similarity.NewSet()}
		return &Assignment{Placement: placement, Target: targets}, nil
	}}
	m, err := Run(world, tr, policy, Options{KeepSlotLoads: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.PerHotspotSlotLoad[0][0] != 2 || m.PerHotspotSlotLoad[1][1] != 1 {
		t.Errorf("slot loads = %v", m.PerHotspotSlotLoad)
	}
	if m.PerHotspotLoad[0] != 2 || m.PerHotspotLoad[1] != 1 {
		t.Errorf("aggregate loads = %v", m.PerHotspotLoad)
	}
	if m.HotspotServingRatio != 0 {
		t.Errorf("serving ratio = %v, want 0 (CDN-only policy)", m.HotspotServingRatio)
	}
}

func TestBuildSlotContextAggregation(t *testing.T) {
	world := twoHotspotWorld()
	index, err := world.Index()
	if err != nil {
		t.Fatal(err)
	}
	reqs := []trace.Request{
		{ID: 0, Video: 1, Location: geo.Point{X: 0.2, Y: 0}},
		{ID: 1, Video: 1, Location: geo.Point{X: 0.3, Y: 0}},
		{ID: 2, Video: 4, Location: geo.Point{X: 1.9, Y: 0}},
	}
	ctx, err := BuildSlotContext(world, index, 0, reqs, stats.SplitRand(1, "test"))
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Nearest[0] != 0 || ctx.Nearest[1] != 0 || ctx.Nearest[2] != 1 {
		t.Errorf("Nearest = %v", ctx.Nearest)
	}
	if ctx.Demand.Totals[0] != 2 || ctx.Demand.Totals[1] != 1 {
		t.Errorf("Totals = %v", ctx.Demand.Totals)
	}
	if ctx.Demand.PerVideo[0][1] != 2 || ctx.Demand.PerVideo[1][4] != 1 {
		t.Errorf("PerVideo = %v", ctx.Demand.PerVideo)
	}
}

func almostEqual(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestRunWithChurn(t *testing.T) {
	world := twoHotspotWorld()
	reqs := make([]trace.Request, 0, 40)
	for slot := 0; slot < 20; slot++ {
		for i := 0; i < 2; i++ {
			reqs = append(reqs, trace.Request{
				ID: slot*2 + i, Video: 1,
				Location: geo.Point{X: float64(i) * 2, Y: 0}, Slot: slot,
			})
		}
	}
	tr := &trace.Trace{Slots: 20, Requests: reqs}
	policy := stubPolicy{name: "local", schedule: func(ctx *SlotContext) (*Assignment, error) {
		// Respect per-slot effective capacities like a correct policy.
		capLeft := append([]int64(nil), ctx.EffectiveCapacity()...)
		targets := make([]int, len(ctx.Requests))
		placement := placeEverything(ctx)
		for r := range ctx.Requests {
			h := ctx.Nearest[r]
			if capLeft[h] > 0 && placement[h].Contains(int(ctx.Requests[r].Video)) {
				targets[r] = h
				capLeft[h]--
			} else {
				targets[r] = CDN
			}
		}
		return &Assignment{Placement: placement, Target: targets}, nil
	}}
	m, err := Run(world, tr, policy, Options{Seed: 3, HotspotChurn: 0.5})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.OfflineHotspotSlots == 0 {
		t.Error("no hotspot ever went offline at 50% churn")
	}
	if m.Infeasible != 0 {
		t.Errorf("capacity-respecting policy produced %d infeasible targets", m.Infeasible)
	}
	if m.ServedByHotspot+m.ServedByCDN != m.TotalRequests {
		t.Errorf("serving counts inconsistent: %+v", m)
	}
}

func TestRunWholeFleetOffline(t *testing.T) {
	world := twoHotspotWorld()
	tr := &trace.Trace{Slots: 1, Requests: requestsAt([]trace.VideoID{1, 2}, 0, 0)}
	policy := stubPolicy{name: "never-called", schedule: func(ctx *SlotContext) (*Assignment, error) {
		return nil, fmt.Errorf("policy must not run with the whole fleet offline")
	}}
	// Churn just below 1 with a seed that takes both hotspots down: try
	// seeds until the all-offline branch triggers.
	for seed := int64(0); seed < 200; seed++ {
		m, err := Run(world, tr, policy, Options{Seed: seed, HotspotChurn: 0.99})
		if err != nil {
			continue // policy ran: fleet was partly online for this seed
		}
		if m.ServedByCDN != 2 || m.ServedByHotspot != 0 {
			t.Fatalf("all-offline slot served wrongly: %+v", m)
		}
		if m.AvgAccessDistanceKm != world.CDNDistanceKm {
			t.Fatalf("all-offline distance %v, want CDN %v", m.AvgAccessDistanceKm, world.CDNDistanceKm)
		}
		return
	}
	t.Fatal("no seed produced an all-offline slot at 99% churn")
}

func TestEffectiveCapacityFallback(t *testing.T) {
	world := twoHotspotWorld()
	ctx := &SlotContext{World: world}
	got := ctx.EffectiveCapacity()
	if len(got) != 2 || got[0] != world.Hotspots[0].ServiceCapacity {
		t.Errorf("fallback capacities = %v", got)
	}
	ctx.Capacity = []int64{0, 1}
	if got := ctx.EffectiveCapacity(); got[0] != 0 || got[1] != 1 {
		t.Errorf("explicit capacities ignored: %v", got)
	}
}

func TestOnlineIndexExcludesOffline(t *testing.T) {
	world := twoHotspotWorld()
	idx, err := onlineIndex(world, []bool{true, false})
	if err != nil {
		t.Fatalf("onlineIndex: %v", err)
	}
	if idx.Len() != 1 {
		t.Fatalf("online index has %d points, want 1", idx.Len())
	}
	id, _, ok := idx.Nearest(geo.Point{X: 0, Y: 0})
	if !ok || id != 1 {
		t.Errorf("nearest online = %d (%v), want hotspot 1", id, ok)
	}
}

func TestRunRejectsNegativeExtraReplicas(t *testing.T) {
	world := twoHotspotWorld()
	tr := &trace.Trace{Slots: 1, Requests: requestsAt([]trace.VideoID{1}, 0, 0)}
	policy := stubPolicy{name: "bad-extra", schedule: func(ctx *SlotContext) (*Assignment, error) {
		targets := []int{CDN}
		placement := []similarity.Set{similarity.NewSet(), similarity.NewSet()}
		return &Assignment{Placement: placement, Target: targets, ExtraReplicas: -1}, nil
	}}
	if _, err := Run(world, tr, policy, Options{}); err == nil {
		t.Error("negative ExtraReplicas accepted")
	}
}

func TestRunKeepsSlotMetrics(t *testing.T) {
	world := twoHotspotWorld()
	reqs := append(requestsAt([]trace.VideoID{1, 2}, 0, 0), requestsAt([]trace.VideoID{3}, 2, 1)...)
	for i := range reqs {
		reqs[i].ID = i
	}
	tr := &trace.Trace{Slots: 2, Requests: reqs}
	policy := stubPolicy{name: "local", schedule: func(ctx *SlotContext) (*Assignment, error) {
		return &Assignment{Placement: placeEverything(ctx), Target: append([]int(nil), ctx.Nearest...)}, nil
	}}
	m, err := Run(world, tr, policy, Options{KeepSlotMetrics: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(m.PerSlot) != 2 {
		t.Fatalf("PerSlot has %d entries, want 2", len(m.PerSlot))
	}
	var served, cdn, reqTotal, replicas int64
	for i, sm := range m.PerSlot {
		if sm.Slot != i {
			t.Errorf("PerSlot[%d].Slot = %d", i, sm.Slot)
		}
		served += sm.ServedByHotspot
		cdn += sm.ServedByCDN
		reqTotal += sm.Requests
		replicas += sm.Replicas
	}
	// The timeline must partition the aggregate metrics exactly.
	if served != m.ServedByHotspot || cdn != m.ServedByCDN ||
		reqTotal != m.TotalRequests || replicas != m.Replicas {
		t.Errorf("timeline does not sum to aggregates: %+v vs totals %+v", m.PerSlot, m)
	}
	// Disabled by default.
	m2, err := Run(world, tr, policy, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m2.PerSlot != nil {
		t.Error("PerSlot retained without the option")
	}
}

// saltedPolicy is a deterministic, per-slot-independent policy that
// consumes the slot's randomness stream: it caches each hotspot's
// demanded videos minus a random per-slot exclusion and targets the
// nearest hotspot when the video survived. Equal slot inputs (context
// plus rand stream) always yield equal assignments, so Run and
// RunParallel must agree exactly.
type saltedPolicy struct{}

func (saltedPolicy) Name() string { return "salted" }

func (saltedPolicy) Schedule(ctx *SlotContext) (*Assignment, error) {
	m := len(ctx.World.Hotspots)
	salt := ctx.Rand.Intn(7)
	placement := make([]similarity.Set, m)
	for h := 0; h < m; h++ {
		placement[h] = similarity.NewSet()
		videos := make([]int, 0, len(ctx.Demand.PerVideo[h]))
		for v := range ctx.Demand.PerVideo[h] {
			videos = append(videos, int(v))
		}
		sort.Ints(videos)
		for _, v := range videos {
			if (v+salt)%7 == 0 {
				continue
			}
			if placement[h].Len() < ctx.World.Hotspots[h].CacheCapacity {
				placement[h].Add(v)
			}
		}
	}
	targets := make([]int, len(ctx.Requests))
	for r, req := range ctx.Requests {
		h := ctx.Nearest[r]
		if placement[h].Contains(int(req.Video)) {
			targets[r] = h
		} else {
			targets[r] = CDN
		}
	}
	return &Assignment{Placement: placement, Target: targets}, nil
}

// TestRunParallelMatchesRun locks in RunParallel's contract: for a
// per-slot-independent policy, scheduling slots concurrently must
// reproduce Run's metrics bit for bit — churn draws, per-slot policy
// randomness, replica accounting against the previous slot, and float
// accumulation order included. Run with -race this also exercises the
// worker fan-out for data races.
func TestRunParallelMatchesRun(t *testing.T) {
	cfg := trace.DefaultConfig()
	cfg.NumHotspots = 30
	cfg.NumVideos = 600
	cfg.NumUsers = 900
	cfg.NumRequests = 5000
	cfg.NumRegions = 5
	cfg.Slots = 8
	world, tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	opts := Options{Seed: 7, HotspotChurn: 0.15, KeepSlotLoads: true, KeepSlotMetrics: true}

	want, err := Run(world, tr, saltedPolicy{}, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want.OfflineHotspotSlots == 0 {
		t.Fatal("churn drew no offline slots; test world too small to exercise the churn stream")
	}
	norm := func(m *Metrics) Metrics {
		cp := *m
		cp.SchedulingTime = 0 // wall-clock: the only fields allowed to differ
		cp.WallTime = 0
		cp.Phases = obs.PhaseTimings{}
		return cp
	}
	for _, workers := range []int{0, 1, 2, 3, 8} {
		got, err := RunParallel(world, tr, func() Scheduler { return saltedPolicy{} }, workers, opts)
		if err != nil {
			t.Fatalf("RunParallel(workers=%d): %v", workers, err)
		}
		if !reflect.DeepEqual(norm(want), norm(got)) {
			t.Errorf("RunParallel(workers=%d) metrics diverge from Run:\n got %+v\nwant %+v",
				workers, norm(got), norm(want))
		}
	}
}

func TestRunParallelValidation(t *testing.T) {
	world := twoHotspotWorld()
	tr := &trace.Trace{Slots: 1, Requests: requestsAt([]trace.VideoID{1}, 0, 0)}
	if _, err := RunParallel(world, tr, nil, 2, Options{}); err == nil {
		t.Error("nil factory accepted")
	}
	if _, err := RunParallel(world, tr, func() Scheduler { return nil }, 2, Options{}); err == nil {
		t.Error("nil-returning factory accepted")
	}
}
