package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/similarity"
	"repro/internal/trace"
)

// planStubPolicy exposes a synthetic per-slot core.Plan on its
// assignments so the PlanSink plumbing can be tested without RBCAer
// (the scheme package cannot be imported here without a cycle; the
// real RBCAer plan flow is certified end to end in internal/server).
type planStubPolicy struct{}

func (planStubPolicy) Name() string { return "plan-stub" }

func (planStubPolicy) Schedule(ctx *SlotContext) (*Assignment, error) {
	m := len(ctx.World.Hotspots)
	placement := placeEverything(ctx)
	targets := make([]int, len(ctx.Requests))
	for r := range ctx.Requests {
		targets[r] = CDN
	}
	plan := &core.Plan{
		Placement:     make([]similarity.Set, m),
		OverflowToCDN: make([]int64, m),
		Flows:         []core.FlowEdge{{From: 0, To: 1, Amount: int64(ctx.Slot)}},
	}
	copy(plan.Placement, placement)
	return &Assignment{Placement: placement, Target: targets, Plan: plan}, nil
}

// TestPlanSinkSlotOrder locks in the PlanSink contract: plans arrive in
// ascending slot order, once per scheduled slot, with the identical
// (slot, canonical-bytes) sequence from Run and RunParallel at any
// worker count.
func TestPlanSinkSlotOrder(t *testing.T) {
	world := twoHotspotWorld()
	var reqs []trace.Request
	for slot := 0; slot < 6; slot++ {
		if slot == 3 {
			continue // empty slot: no plan must be emitted for it
		}
		rs := requestsAt([]trace.VideoID{1, 2}, 0, slot)
		for i := range rs {
			rs[i].ID = len(reqs) + i
		}
		reqs = append(reqs, rs...)
	}
	tr := &trace.Trace{Slots: 6, Requests: reqs}

	type rec struct {
		slot  int
		bytes string
	}
	capture := func() (*[]rec, Options) {
		var got []rec
		opts := Options{Seed: 2, PlanSink: func(slot int, plan *core.Plan) {
			got = append(got, rec{slot, string(plan.Canonical())})
		}}
		return &got, opts
	}

	seq, opts := capture()
	if _, err := Run(world, tr, planStubPolicy{}, opts); err != nil {
		t.Fatalf("Run: %v", err)
	}
	wantSlots := []int{0, 1, 2, 4, 5}
	if len(*seq) != len(wantSlots) {
		t.Fatalf("Run delivered %d plans, want %d", len(*seq), len(wantSlots))
	}
	for i, r := range *seq {
		if r.slot != wantSlots[i] {
			t.Fatalf("Run plan %d for slot %d, want %d", i, r.slot, wantSlots[i])
		}
	}

	for _, workers := range []int{2, 4} {
		par, popts := capture()
		_, err := RunParallel(world, tr, func() Scheduler { return planStubPolicy{} }, workers, popts)
		if err != nil {
			t.Fatalf("RunParallel(workers=%d): %v", workers, err)
		}
		if len(*par) != len(*seq) {
			t.Fatalf("workers=%d delivered %d plans, want %d", workers, len(*par), len(*seq))
		}
		for i := range *seq {
			if (*par)[i] != (*seq)[i] {
				t.Fatalf("workers=%d plan %d diverged from sequential run", workers, i)
			}
		}
	}
}

// TestPlanSinkSkipsPlanlessPolicies checks plan-less assignments never
// reach the sink.
func TestPlanSinkSkipsPlanlessPolicies(t *testing.T) {
	world := twoHotspotWorld()
	tr := &trace.Trace{Slots: 1, Requests: requestsAt([]trace.VideoID{1}, 0, 0)}
	called := false
	policy := stubPolicy{name: "planless", schedule: func(ctx *SlotContext) (*Assignment, error) {
		return &Assignment{
			Placement: placeEverything(ctx),
			Target:    []int{CDN},
		}, nil
	}}
	opts := Options{PlanSink: func(int, *core.Plan) { called = true }}
	if _, err := Run(world, tr, policy, opts); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if called {
		t.Fatalf("PlanSink called for a plan-less assignment")
	}
}
