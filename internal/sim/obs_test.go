package sim

import (
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

// runObs executes one observed run and returns the deterministic
// registry snapshot (JSON) and trace stream (JSONL) bytes. workers 0
// selects sequential Run.
func runObs(t *testing.T, world *trace.World, tr *trace.Trace, workers int, opts Options) (snapshot, events []byte) {
	t.Helper()
	opts.Registry = obs.NewRegistry()
	opts.Tracer = obs.NewTracer(1<<16, true)
	var err error
	if workers == 0 {
		_, err = Run(world, tr, resilientPolicy{}, opts)
	} else {
		_, err = RunParallel(world, tr, func() Scheduler { return resilientPolicy{} }, workers, opts)
	}
	if err != nil {
		t.Fatalf("run(workers=%d): %v", workers, err)
	}
	var snap, evs bytes.Buffer
	if err := opts.Registry.Snapshot(false).WriteJSON(&snap); err != nil {
		t.Fatal(err)
	}
	if err := opts.Tracer.WriteJSONL(&evs); err != nil {
		t.Fatal(err)
	}
	return snap.Bytes(), evs.Bytes()
}

// TestObsDeterminism is the tentpole acceptance at the simulator level:
// with observability fully enabled — registry publishing and a
// deterministic (dropTimings) tracer — Run and RunParallel at Workers
// ∈ {1, 4, 8} must produce byte-identical metric snapshots and trace
// event sequences on a fixed seed, both on a clean run and under the
// full stress fault timeline. Run with -race this doubles as the
// race-regression test for RunParallel with faults + tracing enabled.
func TestObsDeterminism(t *testing.T) {
	cfg := trace.DefaultConfig()
	cfg.NumHotspots = 30
	cfg.NumVideos = 600
	cfg.NumUsers = 900
	cfg.NumRequests = 5000
	cfg.NumRegions = 5
	cfg.Slots = 8
	world, tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}

	scenarios := map[string]Options{
		"clean":  {Seed: 11, KeepSlotMetrics: true},
		"faults": {Seed: 11, HotspotChurn: 0.1, Faults: stressScenario(world)},
	}
	for name, opts := range scenarios {
		t.Run(name, func(t *testing.T) {
			refSnap, refEvents := runObs(t, world, tr, 0, opts)
			if !bytes.Contains(refSnap, []byte("sim.requests_total")) {
				t.Fatalf("snapshot missing sim counters:\n%s", refSnap)
			}
			if !bytes.Contains(refEvents, []byte(`"type":"slot"`)) {
				t.Fatalf("trace missing slot events:\n%s", refEvents)
			}
			if bytes.Contains(refSnap, []byte("timers")) {
				t.Fatalf("deterministic snapshot leaked timers:\n%s", refSnap)
			}
			if bytes.Contains(refEvents, []byte("sched_dur")) {
				t.Fatalf("dropTimings tracer leaked a duration attr:\n%s", refEvents)
			}
			for _, workers := range []int{1, 4, 8} {
				snap, events := runObs(t, world, tr, workers, opts)
				if !bytes.Equal(refSnap, snap) {
					t.Errorf("workers=%d: metric snapshot diverges from sequential Run", workers)
				}
				if !bytes.Equal(refEvents, events) {
					t.Errorf("workers=%d: trace event stream diverges from sequential Run", workers)
				}
			}
		})
	}
}
