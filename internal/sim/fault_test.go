package sim

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/similarity"
	"repro/internal/trace"
)

// resilientPolicy is a deterministic, slot-independent policy that
// honours every fault channel the context exposes: it budgets against
// the effective (degraded) service and cache capacities, consumes the
// slot's randomness stream, and reports degraded rounds. Equal slot
// inputs always yield equal assignments, so Run and RunParallel must
// agree bit for bit under any fault scenario.
type resilientPolicy struct{}

func (resilientPolicy) Name() string { return "resilient" }

func (resilientPolicy) Schedule(ctx *SlotContext) (*Assignment, error) {
	m := len(ctx.World.Hotspots)
	salt := ctx.Rand.Intn(7)
	cache := ctx.EffectiveCacheCapacity()
	placement := make([]similarity.Set, m)
	for h := 0; h < m; h++ {
		placement[h] = similarity.NewSet()
		videos := make([]int, 0, len(ctx.Demand.PerVideo[h]))
		for v := range ctx.Demand.PerVideo[h] {
			videos = append(videos, int(v))
		}
		sort.Ints(videos)
		for _, v := range videos {
			if (v+salt)%7 == 0 {
				continue
			}
			if placement[h].Len() < cache[h] {
				placement[h].Add(v)
			}
		}
	}
	capLeft := append([]int64(nil), ctx.EffectiveCapacity()...)
	targets := make([]int, len(ctx.Requests))
	var stranded int64
	for r, req := range ctx.Requests {
		h := ctx.Nearest[r]
		if capLeft[h] > 0 && placement[h].Contains(int(req.Video)) {
			targets[r] = h
			capLeft[h]--
		} else {
			targets[r] = CDN
			stranded++
		}
	}
	return &Assignment{
		Placement:      placement,
		Target:         targets,
		Degraded:       salt == 3,
		StrandedDemand: stranded,
	}, nil
}

// stressScenario composes every failure mode against the given world.
func stressScenario(world *trace.World) *fault.Scenario {
	return &fault.Scenario{
		Name:  "stress",
		Churn: &fault.MarkovChurn{FailPerSlot: 0.1, RecoverPerSlot: 0.3},
		Outages: []fault.RegionalOutage{
			{Center: world.Hotspots[0].Location, RadiusKm: 2, StartSlot: 2, EndSlot: 4},
		},
		Degradations: []fault.CapacityDegradation{
			{StartSlot: 1, EndSlot: 6, Fraction: 0.6, ServiceFactor: 0.5, CacheFactor: 0.5},
		},
		FlashCrowds: []fault.FlashCrowd{
			{StartSlot: 1, EndSlot: 4, TopVideos: 3, Multiplier: 2},
		},
		Staleness: &fault.StaleReports{LagSlots: 1, DropFraction: 0.2},
	}
}

// TestRunParallelMatchesRunWithFaults is the resilience determinism
// contract: with every fault channel active — Markov churn, a regional
// outage, capacity degradation, a flash crowd, stale and dropped load
// reports — RunParallel must reproduce Run's metrics byte for byte at
// every worker count. Run with -race this also exercises concurrent
// reads of the shared fault timeline.
func TestRunParallelMatchesRunWithFaults(t *testing.T) {
	cfg := trace.DefaultConfig()
	cfg.NumHotspots = 30
	cfg.NumVideos = 600
	cfg.NumUsers = 900
	cfg.NumRequests = 5000
	cfg.NumRegions = 5
	cfg.Slots = 8
	world, tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	opts := Options{
		Seed:            11,
		HotspotChurn:    0.1,
		KeepSlotLoads:   true,
		KeepSlotMetrics: true,
		Faults:          stressScenario(world),
	}

	want, err := Run(world, tr, resilientPolicy{}, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The scenario must actually bite, or the test proves nothing.
	if len(want.FaultOutageSlots) == 0 {
		t.Fatal("fault scenario injected no outages")
	}
	if want.FlashInjectedRequests == 0 {
		t.Fatal("flash crowd injected no requests")
	}
	if want.DegradedRounds == 0 {
		t.Fatal("no degraded rounds recorded")
	}
	norm := func(m *Metrics) Metrics {
		cp := *m
		cp.SchedulingTime = 0 // wall-clock: the only fields allowed to differ
		cp.WallTime = 0
		cp.Phases = obs.PhaseTimings{}
		return cp
	}
	for _, workers := range []int{0, 1, 2, 3, 8} {
		got, err := RunParallel(world, tr, func() Scheduler { return resilientPolicy{} }, workers, opts)
		if err != nil {
			t.Fatalf("RunParallel(workers=%d): %v", workers, err)
		}
		if !reflect.DeepEqual(norm(want), norm(got)) {
			t.Errorf("RunParallel(workers=%d) metrics diverge from Run under faults:\n got %+v\nwant %+v",
				workers, norm(got), norm(want))
		}
	}
}

// TestOptionsValidate is the table-driven validation contract for every
// Options field (HotspotChurn is [0, 1] inclusive, matching its doc).
func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		ok   bool
	}{
		{"zero value", Options{}, true},
		{"seed only", Options{Seed: -42}, true},
		{"flags", Options{KeepSlotLoads: true, KeepSlotMetrics: true}, true},
		{"churn zero", Options{HotspotChurn: 0}, true},
		{"churn mid", Options{HotspotChurn: 0.5}, true},
		{"churn one", Options{HotspotChurn: 1}, true},
		{"churn negative", Options{HotspotChurn: -0.01}, false},
		{"churn above one", Options{HotspotChurn: 1.01}, false},
		{"nil faults", Options{Faults: nil}, true},
		{"empty faults", Options{Faults: &fault.Scenario{}}, true},
		{"valid faults", Options{Faults: &fault.Scenario{
			Churn: &fault.MarkovChurn{FailPerSlot: 0.2, RecoverPerSlot: 0.4},
		}}, true},
		{"invalid faults", Options{Faults: &fault.Scenario{
			Churn: &fault.MarkovChurn{FailPerSlot: 2},
		}}, false},
	}
	for _, tc := range cases {
		err := tc.opts.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid options accepted", tc.name)
		}
	}
}

// TestAllOfflineRegression locks in the w.allOffline path for both Run
// and RunParallel: at HotspotChurn 1 the policy must never run, every
// request is CDN-served at CDN distance, and the two entry points
// produce identical metrics at every worker count.
func TestAllOfflineRegression(t *testing.T) {
	world := twoHotspotWorld()
	reqs := append(requestsAt([]trace.VideoID{1, 2}, 0, 0), requestsAt([]trace.VideoID{3}, 2, 1)...)
	for i := range reqs {
		reqs[i].ID = i
	}
	tr := &trace.Trace{Slots: 2, Requests: reqs}
	policy := stubPolicy{name: "never-called", schedule: func(ctx *SlotContext) (*Assignment, error) {
		return nil, fmt.Errorf("policy must not run with the whole fleet offline")
	}}
	opts := Options{Seed: 5, HotspotChurn: 1, KeepSlotMetrics: true}

	want, err := Run(world, tr, policy, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want.ServedByCDN != 3 || want.ServedByHotspot != 0 || want.TotalRequests != 3 {
		t.Fatalf("all-offline run served wrongly: %+v", want)
	}
	if want.AvgAccessDistanceKm != world.CDNDistanceKm {
		t.Fatalf("all-offline distance %v, want CDN %v", want.AvgAccessDistanceKm, world.CDNDistanceKm)
	}
	if want.OfflineHotspotSlots != 4 { // 2 hotspots × 2 non-empty slots
		t.Errorf("OfflineHotspotSlots = %d, want 4", want.OfflineHotspotSlots)
	}
	norm := func(m *Metrics) Metrics {
		cp := *m
		cp.SchedulingTime = 0
		cp.WallTime = 0
		cp.Phases = obs.PhaseTimings{}
		return cp
	}
	for _, workers := range []int{2, 8} {
		got, err := RunParallel(world, tr, func() Scheduler { return policy }, workers, opts)
		if err != nil {
			t.Fatalf("RunParallel(workers=%d): %v", workers, err)
		}
		if !reflect.DeepEqual(norm(want), norm(got)) {
			t.Errorf("RunParallel(workers=%d) all-offline metrics diverge:\n got %+v\nwant %+v",
				workers, norm(got), norm(want))
		}
	}
}

// TestRegionalOutageServesByCDN pins the outage plumbing: a radius
// covering only hotspot 0 takes it offline for the window, requests
// re-aggregate to hotspot 1 or fall back to the CDN, and the outage is
// attributed in FaultOutageSlots.
func TestRegionalOutageServesByCDN(t *testing.T) {
	world := twoHotspotWorld()
	tr := &trace.Trace{Slots: 1, Requests: requestsAt([]trace.VideoID{1, 2}, 0, 0)}
	opts := Options{Faults: &fault.Scenario{
		Outages: []fault.RegionalOutage{
			{Center: world.Hotspots[0].Location, RadiusKm: 0.5, StartSlot: 0, EndSlot: 1},
		},
	}}
	m, err := Run(world, tr, resilientPolicy{}, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.FaultOutageSlots["regional-outage"] != 1 {
		t.Errorf("FaultOutageSlots = %v, want regional-outage: 1", m.FaultOutageSlots)
	}
	if m.OfflineHotspotSlots != 1 {
		t.Errorf("OfflineHotspotSlots = %d, want 1", m.OfflineHotspotSlots)
	}
	if m.PerHotspotServed[0] != 0 {
		t.Errorf("offline hotspot 0 served %d requests", m.PerHotspotServed[0])
	}
}

// TestCapacityDegradationBoundsServing pins the degraded-capacity
// plumbing: with service halved, a nominal-capacity worth of nearest
// targets overflows and the excess bounces to the CDN.
func TestCapacityDegradationBoundsServing(t *testing.T) {
	world := twoHotspotWorld() // service capacity 2 per hotspot
	tr := &trace.Trace{Slots: 1, Requests: requestsAt([]trace.VideoID{1, 1}, 0, 0)}
	naive := stubPolicy{name: "nominal-budget", schedule: func(ctx *SlotContext) (*Assignment, error) {
		// Deliberately budget against nominal capacity to prove the
		// simulator enforces the degraded one.
		return &Assignment{Placement: placeEverything(ctx), Target: append([]int(nil), ctx.Nearest...)}, nil
	}}
	opts := Options{Faults: &fault.Scenario{
		Degradations: []fault.CapacityDegradation{
			{StartSlot: 0, EndSlot: 1, Fraction: 1, ServiceFactor: 0.5, CacheFactor: 1},
		},
	}}
	m, err := Run(world, tr, naive, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.ServedByHotspot != 1 || m.Infeasible != 1 {
		t.Errorf("served %d infeasible %d, want 1 and 1 (capacity floor(2*0.5)=1)",
			m.ServedByHotspot, m.Infeasible)
	}
}

// TestStaleReportsLagDemandView pins the stale-report plumbing: with a
// one-slot lag the policy's demand view at slot t aggregates slot
// t-1's requests, while serving and load metrics stay true.
func TestStaleReportsLagDemandView(t *testing.T) {
	world := twoHotspotWorld()
	reqs := append(requestsAt([]trace.VideoID{1, 1}, 0, 0), requestsAt([]trace.VideoID{2}, 0, 1)...)
	for i := range reqs {
		reqs[i].ID = i
	}
	tr := &trace.Trace{Slots: 2, Requests: reqs}
	seen := map[int]int64{}
	recorder := stubPolicy{name: "recorder", schedule: func(ctx *SlotContext) (*Assignment, error) {
		seen[ctx.Slot] = ctx.Demand.Totals[0]
		targets := make([]int, len(ctx.Requests))
		for i := range targets {
			targets[i] = CDN
		}
		return &Assignment{Placement: []similarity.Set{{}, {}}, Target: targets}, nil
	}}
	opts := Options{Faults: &fault.Scenario{Staleness: &fault.StaleReports{LagSlots: 1}}}
	m, err := Run(world, tr, recorder, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Slot 0 clamps to itself (2 requests); slot 1 sees slot 0's 2
	// requests instead of its own 1.
	if seen[0] != 2 || seen[1] != 2 {
		t.Errorf("reported demand = %v, want slot0: 2, slot1: 2 (lagged)", seen)
	}
	// Load metrics reflect true demand: 2 + 1 requests at hotspot 0.
	if m.PerHotspotLoad[0] != 3 {
		t.Errorf("PerHotspotLoad[0] = %d, want 3 (true demand)", m.PerHotspotLoad[0])
	}
}

// TestDroppedReportsHideDemand pins the partial-report plumbing: with
// every report dropped, policies see zero demand everywhere.
func TestDroppedReportsHideDemand(t *testing.T) {
	world := twoHotspotWorld()
	tr := &trace.Trace{Slots: 1, Requests: requestsAt([]trace.VideoID{1, 2}, 0, 0)}
	var sawDemand int64
	recorder := stubPolicy{name: "recorder", schedule: func(ctx *SlotContext) (*Assignment, error) {
		for h := range ctx.Demand.Totals {
			sawDemand += ctx.Demand.Totals[h]
		}
		targets := make([]int, len(ctx.Requests))
		for i := range targets {
			targets[i] = CDN
		}
		return &Assignment{Placement: []similarity.Set{{}, {}}, Target: targets}, nil
	}}
	opts := Options{Faults: &fault.Scenario{Staleness: &fault.StaleReports{DropFraction: 1}}}
	if _, err := Run(world, tr, recorder, opts); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sawDemand != 0 {
		t.Errorf("policy saw %d demand despite every report dropped", sawDemand)
	}
}

// TestFlashCrowdInflatesWorkload pins the flash-crowd plumbing: the
// injected duplicates show up in TotalRequests and are reported in
// FlashInjectedRequests.
func TestFlashCrowdInflatesWorkload(t *testing.T) {
	world := twoHotspotWorld()
	tr := &trace.Trace{Slots: 1, Requests: requestsAt([]trace.VideoID{1, 1, 2}, 0, 0)}
	opts := Options{Faults: &fault.Scenario{
		FlashCrowds: []fault.FlashCrowd{
			{StartSlot: 0, EndSlot: 1, TopVideos: 1, Multiplier: 3},
		},
	}}
	m, err := Run(world, tr, resilientPolicy{}, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Video 1 (2 requests) gains 2 duplicates each.
	if m.FlashInjectedRequests != 4 {
		t.Errorf("FlashInjectedRequests = %d, want 4", m.FlashInjectedRequests)
	}
	if m.TotalRequests != 7 {
		t.Errorf("TotalRequests = %d, want 3 + 4 injected", m.TotalRequests)
	}
}

// TestDegradedAssignmentMetrics pins the degraded-round accounting:
// Assignment.Degraded and StrandedDemand flow into DegradedRounds,
// StrandedRequests, and FallbackServedByCDN, and a negative
// StrandedDemand is rejected.
func TestDegradedAssignmentMetrics(t *testing.T) {
	world := twoHotspotWorld()
	tr := &trace.Trace{Slots: 1, Requests: requestsAt([]trace.VideoID{1, 2}, 0, 0)}
	degraded := stubPolicy{name: "degraded", schedule: func(ctx *SlotContext) (*Assignment, error) {
		targets := make([]int, len(ctx.Requests))
		for i := range targets {
			targets[i] = CDN
		}
		return &Assignment{
			Placement:      []similarity.Set{{}, {}},
			Target:         targets,
			Degraded:       true,
			StrandedDemand: 2,
		}, nil
	}}
	m, err := Run(world, tr, degraded, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.DegradedRounds != 1 || m.StrandedRequests != 2 || m.FallbackServedByCDN != 2 {
		t.Errorf("degraded accounting = rounds %d stranded %d fallback %d, want 1, 2, 2",
			m.DegradedRounds, m.StrandedRequests, m.FallbackServedByCDN)
	}

	negative := stubPolicy{name: "negative", schedule: func(ctx *SlotContext) (*Assignment, error) {
		targets := make([]int, len(ctx.Requests))
		for i := range targets {
			targets[i] = CDN
		}
		return &Assignment{Placement: []similarity.Set{{}, {}}, Target: targets, StrandedDemand: -1}, nil
	}}
	if _, err := Run(world, tr, negative, Options{}); err == nil {
		t.Error("negative StrandedDemand accepted")
	}
}

// TestEffectiveCacheCapacityFallback mirrors the service-capacity
// fallback test for the cache vector.
func TestEffectiveCacheCapacityFallback(t *testing.T) {
	world := twoHotspotWorld()
	ctx := &SlotContext{World: world}
	got := ctx.EffectiveCacheCapacity()
	if len(got) != 2 || got[0] != world.Hotspots[0].CacheCapacity {
		t.Errorf("fallback cache capacities = %v", got)
	}
	ctx.CacheCapacity = []int{0, 1}
	if got := ctx.EffectiveCacheCapacity(); got[0] != 0 || got[1] != 1 {
		t.Errorf("explicit cache capacities ignored: %v", got)
	}
}
