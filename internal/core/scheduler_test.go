package core

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/trace"
)

// checkPlanInvariants verifies every constraint a plan must satisfy
// against its demand: per-pair flows realised by matching redirects,
// redirect volume bounded by per-video demand, placement bounded by
// cache capacity, redirected videos placed at their targets, inflow
// bounded by target slack, outflow + overflow accounting for the whole
// surplus, and MovedFlow <= MaxFlow.
func checkPlanInvariants(t *testing.T, w *trace.World, d *Demand, plan *Plan) {
	t.Helper()
	m := len(w.Hotspots)

	outflow := make([]int64, m)
	inflow := make([]int64, m)
	for _, f := range plan.Flows {
		if f.Amount <= 0 {
			t.Fatalf("non-positive flow %+v", f)
		}
		outflow[f.From] += f.Amount
		inflow[f.To] += f.Amount
	}

	// Redirects must sum exactly to the realised flows and never exceed
	// the source's per-video demand.
	redirectPair := make(map[[2]int]int64)
	redirectVideo := make(map[[2]int64]int64) // (source, video) → count
	for _, r := range plan.Redirects {
		if r.Count <= 0 {
			t.Fatalf("non-positive redirect %+v", r)
		}
		redirectPair[[2]int{int(r.From), int(r.To)}] += r.Count
		redirectVideo[[2]int64{int64(r.From), int64(r.Video)}] += r.Count
		if !plan.Placement[r.To].Contains(int(r.Video)) {
			t.Fatalf("redirect %+v but video not placed at target", r)
		}
	}
	for _, f := range plan.Flows {
		if got := redirectPair[[2]int{int(f.From), int(f.To)}]; got != f.Amount {
			t.Fatalf("flow %d→%d amount %d but redirects sum to %d", f.From, f.To, f.Amount, got)
		}
	}
	for key, cnt := range redirectVideo {
		if lam := d.PerVideo[key[0]][trace.VideoID(key[1])]; cnt > lam {
			t.Fatalf("hotspot %d video %d redirects %d exceed demand %d", key[0], key[1], cnt, lam)
		}
	}

	var moved int64
	for h := 0; h < m; h++ {
		if got, cache := plan.Placement[h].Len(), w.Hotspots[h].CacheCapacity; got > cache {
			t.Fatalf("hotspot %d placement %d exceeds cache %d", h, got, cache)
		}
		lambda := d.Totals[h]
		svc := w.Hotspots[h].ServiceCapacity
		switch {
		case lambda > svc: // overloaded
			if inflow[h] != 0 {
				t.Fatalf("overloaded hotspot %d received %d inflow", h, inflow[h])
			}
			if outflow[h]+plan.OverflowToCDN[h] != lambda-svc {
				t.Fatalf("hotspot %d surplus %d != outflow %d + overflow %d",
					h, lambda-svc, outflow[h], plan.OverflowToCDN[h])
			}
		case lambda < svc: // under-utilised
			if outflow[h] != 0 {
				t.Fatalf("under-utilised hotspot %d sent %d outflow", h, outflow[h])
			}
			if inflow[h] > svc-lambda {
				t.Fatalf("hotspot %d inflow %d exceeds slack %d", h, inflow[h], svc-lambda)
			}
			if plan.OverflowToCDN[h] != 0 {
				t.Fatalf("under-utilised hotspot %d has overflow %d", h, plan.OverflowToCDN[h])
			}
		default:
			if inflow[h] != 0 || outflow[h] != 0 || plan.OverflowToCDN[h] != 0 {
				t.Fatalf("balanced hotspot %d has flows in=%d out=%d overflow=%d",
					h, inflow[h], outflow[h], plan.OverflowToCDN[h])
			}
		}
		moved += outflow[h]
	}
	if moved > plan.Stats.MaxFlow {
		t.Fatalf("realised flow %d exceeds movable workload %d", moved, plan.Stats.MaxFlow)
	}
	if plan.Stats.MovedFlow > plan.Stats.MaxFlow {
		t.Fatalf("MovedFlow %d exceeds MaxFlow %d", plan.Stats.MovedFlow, plan.Stats.MaxFlow)
	}
	if moved+plan.Stats.UnrealizedFlow != plan.Stats.MovedFlow {
		t.Fatalf("realised %d + unrealised %d != moved %d",
			moved, plan.Stats.UnrealizedFlow, plan.Stats.MovedFlow)
	}
}

func scheduleOK(t *testing.T, w *trace.World, p Params, d *Demand) *Plan {
	t.Helper()
	s, err := New(w, p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	plan, err := s.Schedule(d)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	checkPlanInvariants(t, w, d, plan)
	return plan
}

func TestBalancingMovesSurplusToNeighbour(t *testing.T) {
	// Hotspot 0 has 15 requests for capacity 10; hotspot 1 (1 km away)
	// has 2 requests and slack 8. The 5 surplus units fit within θ2.
	w := lineWorld(2, 1.0, 10, 50)
	d := NewDemand(2)
	for v := trace.VideoID(0); v < 5; v++ {
		d.Add(0, v, 3) // 15 requests over 5 videos
	}
	d.Add(1, 100, 2)

	plan := scheduleOK(t, w, DefaultParams(), d)
	if plan.Stats.MaxFlow != 5 {
		t.Errorf("MaxFlow = %d, want 5", plan.Stats.MaxFlow)
	}
	if plan.Stats.MovedFlow != 5 {
		t.Errorf("MovedFlow = %d, want 5", plan.Stats.MovedFlow)
	}
	if plan.OverflowToCDN[0] != 0 {
		t.Errorf("OverflowToCDN[0] = %d, want 0", plan.OverflowToCDN[0])
	}
	var total int64
	for _, r := range plan.Redirects {
		if r.From != 0 || r.To != 1 {
			t.Errorf("unexpected redirect %+v", r)
		}
		total += r.Count
	}
	if total != 5 {
		t.Errorf("redirected %d units, want 5", total)
	}
}

func TestBalancingRespectsTheta(t *testing.T) {
	// The only slack hotspot is 5 km away — beyond θ2 = 1.5 km — so the
	// surplus must fall back to the CDN.
	w := lineWorld(2, 5.0, 10, 50)
	d := NewDemand(2)
	d.Add(0, 1, 18)

	plan := scheduleOK(t, w, DefaultParams(), d)
	if plan.Stats.MovedFlow != 0 {
		t.Errorf("MovedFlow = %d, want 0 (target beyond θ2)", plan.Stats.MovedFlow)
	}
	if plan.OverflowToCDN[0] != 8 {
		t.Errorf("OverflowToCDN[0] = %d, want 8", plan.OverflowToCDN[0])
	}
	if len(plan.Redirects) != 0 {
		t.Errorf("redirects = %v, want none", plan.Redirects)
	}
}

func TestBalancingPrefersNearTarget(t *testing.T) {
	// Two slack hotspots at 1 km and 1.4 km; surplus 3 fits entirely in
	// the nearer one, which min-cost flow must prefer.
	hotspots := []trace.Hotspot{
		{ID: 0, Location: geo.Point{X: 0, Y: 0}, ServiceCapacity: 10, CacheCapacity: 50},
		{ID: 1, Location: geo.Point{X: 1.0, Y: 0}, ServiceCapacity: 10, CacheCapacity: 50},
		{ID: 2, Location: geo.Point{X: 0, Y: 1.4}, ServiceCapacity: 10, CacheCapacity: 50},
	}
	w := &trace.World{
		Bounds:        geo.Rect{MinX: -2, MinY: -2, MaxX: 3, MaxY: 3},
		Hotspots:      hotspots,
		NumVideos:     100,
		CDNDistanceKm: 20,
	}
	d := NewDemand(3)
	d.Add(0, 1, 13)
	d.Add(1, 2, 5)
	d.Add(2, 3, 5)

	plan := scheduleOK(t, w, DefaultParams(), d)
	if plan.Stats.MovedFlow != 3 {
		t.Fatalf("MovedFlow = %d, want 3", plan.Stats.MovedFlow)
	}
	for _, f := range plan.Flows {
		if f.To != 1 {
			t.Errorf("flow went to hotspot %d, want nearer hotspot 1 (%+v)", f.To, f)
		}
	}
}

func TestAblationVariantsProduceValidPlans(t *testing.T) {
	w := lineWorld(6, 0.7, 8, 30)
	d := randomDemand(w, 200, 60, 3)

	variants := map[string]Params{
		"default":      DefaultParams(),
		"no guides":    func() Params { p := DefaultParams(); p.DisableGuides = true; return p }(),
		"single shot":  func() Params { p := DefaultParams(); p.SingleShotTheta = true; return p }(),
		"literal cost": func() Params { p := DefaultParams(); p.GuideCost = GuideCostAvgCapacity; return p }(),
		"bellman-ford": func() Params { p := DefaultParams(); p.Algorithm = 2; return p }(),
		"bpeak":        func() Params { p := DefaultParams(); p.BPeak = 10; return p }(),
	}
	for name, params := range variants {
		t.Run(name, func(t *testing.T) {
			scheduleOK(t, w, params, d)
		})
	}
}

func TestBPeakBoundsLocalFill(t *testing.T) {
	// No overload at all: every replica comes from the greedy local
	// fill, which BPeak must cap.
	w := lineWorld(3, 1.0, 100, 50)
	d := NewDemand(3)
	for h := trace.HotspotID(0); h < 3; h++ {
		for v := trace.VideoID(0); v < 10; v++ {
			d.Add(h, v+trace.VideoID(h)*10, 2)
		}
	}
	p := DefaultParams()
	p.BPeak = 7
	plan := scheduleOK(t, w, p, d)
	if plan.Stats.Replicas > 7 {
		t.Errorf("Replicas = %d, want <= BPeak 7", plan.Stats.Replicas)
	}
}

func TestDeterministicPlans(t *testing.T) {
	w := lineWorld(8, 0.6, 8, 30)
	d := randomDemand(w, 300, 80, 7)
	s1, err := New(w, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(w, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	p1, err := s1.Schedule(d)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s2.Schedule(d.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Redirects) != len(p2.Redirects) || len(p1.Flows) != len(p2.Flows) {
		t.Fatalf("plans differ in size: %d/%d redirects, %d/%d flows",
			len(p1.Redirects), len(p2.Redirects), len(p1.Flows), len(p2.Flows))
	}
	for i := range p1.Redirects {
		if p1.Redirects[i] != p2.Redirects[i] {
			t.Fatalf("redirect %d differs: %+v vs %+v", i, p1.Redirects[i], p2.Redirects[i])
		}
	}
	for h := range p1.Placement {
		if p1.Placement[h].Len() != p2.Placement[h].Len() {
			t.Fatalf("placement at %d differs", h)
		}
		for v := range p1.Placement[h] {
			if !p2.Placement[h].Contains(v) {
				t.Fatalf("placement at %d differs on video %d", h, v)
			}
		}
	}
}

func TestRandomDemandInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(10)
		w := lineWorld(n, 0.3+rng.Float64(), int64(5+rng.Intn(10)), 5+rng.Intn(40))
		d := randomDemand(w, 50+rng.Intn(400), 20+rng.Intn(100), rng.Int63())
		scheduleOK(t, w, DefaultParams(), d)
	}
}

func TestAnalyzeThetaMonotone(t *testing.T) {
	w := lineWorld(10, 0.5, 6, 30)
	d := randomDemand(w, 300, 50, 5)
	s, err := New(w, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var prevEdges int
	var prevFlow int64
	for _, theta := range []float64{0, 0.5, 1, 2, 4, 8} {
		ta, err := s.AnalyzeTheta(d, theta)
		if err != nil {
			t.Fatalf("AnalyzeTheta(%v): %v", theta, err)
		}
		if ta.DirectEdges < prevEdges {
			t.Errorf("edges decreased at θ=%v: %d < %d", theta, ta.DirectEdges, prevEdges)
		}
		if ta.Flow < prevFlow {
			t.Errorf("flow decreased at θ=%v: %d < %d", theta, ta.Flow, prevFlow)
		}
		if ta.FlowFraction < 0 || ta.FlowFraction > 1+1e-9 {
			t.Errorf("flow fraction %v outside [0,1]", ta.FlowFraction)
		}
		prevEdges, prevFlow = ta.DirectEdges, ta.Flow
	}
	if _, err := s.AnalyzeTheta(d, -1); err == nil {
		t.Error("AnalyzeTheta(negative) succeeded")
	}
	if _, err := s.AnalyzeTheta(NewDemand(1), 1); err == nil {
		t.Error("AnalyzeTheta(size mismatch) succeeded")
	}
}

// randomDemand synthesises demand with a Zipf-ish skew over videos and
// hotspot loads proportional to position (so some overload, some not).
func randomDemand(w *trace.World, requests, videos int, seed int64) *Demand {
	rng := rand.New(rand.NewSource(seed))
	d := NewDemand(len(w.Hotspots))
	for r := 0; r < requests; r++ {
		// Squared draw biases load toward low-index hotspots.
		h := rng.Intn(len(w.Hotspots))
		if rng.Intn(2) == 0 {
			h = h * h / len(w.Hotspots)
		}
		v := rng.Intn(videos)
		if rng.Intn(2) == 0 {
			v = v * v / videos
		}
		d.Add(trace.HotspotID(h), trace.VideoID(v), 1)
	}
	return d
}
