package core

import (
	"testing"

	"repro/internal/par"
)

// BenchmarkBuildNetwork measures steady-state network construction on
// the round arena — the per-θ-iteration cost of the sweep, with the
// graph, candidate rows, and node tables all reused.
func BenchmarkBuildNetwork(b *testing.B) {
	world := lineWorld(64, 0.2, 5, 8)
	d := spreadDemand(64, 20, 6)
	params := DefaultParams()
	params.Workers = 1
	s, err := New(world, params)
	if err != nil {
		b.Fatal(err)
	}
	clusterOf, _, err := s.contentClusters(d)
	if err != nil {
		b.Fatal(err)
	}
	over, under, phiOver, phiUnder := s.partition(d, s.worldCapacities())
	dc := s.newDistCache(over, under, par.Workers(params.Workers))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nb := s.buildNetwork(params.Theta2, over, under, phiOver, phiUnder, dc, clusterOf, true)
		if nb.directPairs == 0 {
			b.Fatal("empty network")
		}
	}
}
