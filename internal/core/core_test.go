package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/geo"
	"repro/internal/mcmf"
	"repro/internal/trace"
)

// lineWorld builds a world with hotspots every `spacing` km along the
// x axis, uniform service capacity and cache size.
func lineWorld(n int, spacing float64, svc int64, cache int) *trace.World {
	hotspots := make([]trace.Hotspot, n)
	for i := range hotspots {
		hotspots[i] = trace.Hotspot{
			ID:              trace.HotspotID(i),
			Location:        geo.Point{X: float64(i) * spacing, Y: 0},
			ServiceCapacity: svc,
			CacheCapacity:   cache,
		}
	}
	width := float64(n) * spacing
	if width < 1 {
		width = 1
	}
	return &trace.World{
		Bounds:        geo.Rect{MinX: -1, MinY: -1, MaxX: width, MaxY: 1},
		Hotspots:      hotspots,
		NumVideos:     1000,
		CDNDistanceKm: 20,
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Params)
	}{
		{"theta1 negative", func(p *Params) { p.Theta1 = -1 }},
		{"theta2 < theta1", func(p *Params) { p.Theta2 = p.Theta1 - 0.1 }},
		{"zero delta", func(p *Params) { p.DeltaD = 0 }},
		{"cluster cut > 1", func(p *Params) { p.ClusterCut = 1.5 }},
		{"zero top fraction", func(p *Params) { p.TopFraction = 0 }},
		{"bad linkage", func(p *Params) { p.Linkage = cluster.Linkage(9) }},
		{"bad guide cost", func(p *Params) { p.GuideCost = GuideCostMode(9) }},
		{"bad algorithm", func(p *Params) { p.Algorithm = mcmf.Algorithm(9) }},
		{"negative bpeak", func(p *Params) { p.BPeak = -1 }},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			tt.mut(&p)
			if err := p.Validate(); err == nil {
				t.Error("Validate() succeeded, want error")
			}
		})
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, DefaultParams()); err == nil {
		t.Error("New(nil world) succeeded")
	}
	bad := DefaultParams()
	bad.DeltaD = 0
	if _, err := New(lineWorld(2, 1, 10, 5), bad); err == nil {
		t.Error("New(bad params) succeeded")
	}
	invalid := lineWorld(2, 1, 10, 5)
	invalid.NumVideos = 0
	if _, err := New(invalid, DefaultParams()); err == nil {
		t.Error("New(invalid world) succeeded")
	}
}

func TestDemandAccumulation(t *testing.T) {
	d := NewDemand(3)
	d.Add(0, 5, 2)
	d.Add(0, 5, 1)
	d.Add(0, 7, 4)
	d.Add(2, 5, 1)
	if d.NumHotspots() != 3 {
		t.Errorf("NumHotspots() = %d, want 3", d.NumHotspots())
	}
	if d.Totals[0] != 7 || d.Totals[1] != 0 || d.Totals[2] != 1 {
		t.Errorf("Totals = %v, want [7 0 1]", d.Totals)
	}
	if d.PerVideo[0][5] != 3 || d.PerVideo[0][7] != 4 {
		t.Errorf("PerVideo[0] = %v", d.PerVideo[0])
	}
	counts := d.VideoCounts(0)
	if counts[5] != 3 || counts[7] != 4 {
		t.Errorf("VideoCounts(0) = %v", counts)
	}
}

func TestDemandClone(t *testing.T) {
	d := NewDemand(2)
	d.Add(0, 1, 5)
	c := d.Clone()
	c.Add(0, 1, 3)
	c.Add(1, 2, 1)
	if d.PerVideo[0][1] != 5 || d.Totals[0] != 5 {
		t.Error("Clone() shares state with the original")
	}
	if d.Totals[1] != 0 {
		t.Error("Clone() mutation leaked into original totals")
	}
}

func TestScheduleDemandSizeMismatch(t *testing.T) {
	s, err := New(lineWorld(3, 1, 10, 5), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Schedule(NewDemand(2)); err == nil {
		t.Error("Schedule(wrong size) succeeded")
	}
	if _, err := s.Schedule(nil); err == nil {
		t.Error("Schedule(nil) succeeded")
	}
}

func TestGuideCostModeString(t *testing.T) {
	if GuideCostAvgDistance.String() != "avg-distance" ||
		GuideCostAvgCapacity.String() != "avg-capacity" {
		t.Error("GuideCostMode.String() unexpected")
	}
	if GuideCostMode(9).String() == "" {
		t.Error("unknown GuideCostMode.String() empty")
	}
}
