package core

import (
	"testing"

	"repro/internal/trace"
)

func TestReplicateAggregatesSharedVideo(t *testing.T) {
	// Two overloaded hotspots (0, 2) both overflowing with demand for
	// the SAME video, one under-utilised hotspot (1) between them.
	// Content aggregation should serve both through a single replica at
	// hotspot 1.
	w := lineWorld(3, 0.7, 10, 50)
	d := NewDemand(3)
	d.Add(0, 7, 14) // surplus 4
	d.Add(2, 7, 14) // surplus 4
	d.Add(1, 9, 2)  // slack 8

	plan := scheduleOK(t, w, DefaultParams(), d)
	if plan.Stats.MovedFlow != 8 {
		t.Fatalf("MovedFlow = %d, want 8", plan.Stats.MovedFlow)
	}
	if !plan.Placement[1].Contains(7) {
		t.Fatal("video 7 not placed at the aggregation target")
	}
	// One replica of video 7 at hotspot 1 serves redirects from both
	// sources; sources keep their own replica for the remaining local
	// demand.
	var to1 int64
	for _, r := range plan.Redirects {
		if r.To != 1 || r.Video != 7 {
			t.Errorf("unexpected redirect %+v", r)
		}
		to1 += r.Count
	}
	if to1 != 8 {
		t.Errorf("redirected %d units of video 7, want 8", to1)
	}
}

func TestReplicateTargetCacheFullUnrealized(t *testing.T) {
	// The only target has zero cache, so the balancing flow cannot be
	// realised into redirects; the surplus must fall back to the CDN.
	w := lineWorld(2, 1.0, 10, 50)
	w.Hotspots[1].CacheCapacity = 0
	d := NewDemand(2)
	d.Add(0, 7, 15) // surplus 5
	d.Add(1, 9, 2)  // slack 8 but no cache

	plan := scheduleOK(t, w, DefaultParams(), d)
	if plan.Stats.UnrealizedFlow != plan.Stats.MovedFlow {
		t.Errorf("UnrealizedFlow = %d, want all of MovedFlow %d",
			plan.Stats.UnrealizedFlow, plan.Stats.MovedFlow)
	}
	if len(plan.Redirects) != 0 {
		t.Errorf("redirects = %v, want none", plan.Redirects)
	}
	if plan.OverflowToCDN[0] != 5 {
		t.Errorf("OverflowToCDN[0] = %d, want the whole surplus 5", plan.OverflowToCDN[0])
	}
	if plan.Placement[1].Len() != 0 {
		t.Errorf("placement at cache-less hotspot: %v", plan.Placement[1].Sorted())
	}
}

func TestReplicateLocalFillByDemand(t *testing.T) {
	// No balancing: placement is pure local fill, highest demand first,
	// bounded by cache capacity.
	w := lineWorld(1, 1.0, 100, 2)
	d := NewDemand(1)
	d.Add(0, 1, 10)
	d.Add(0, 2, 5)
	d.Add(0, 3, 1)

	plan := scheduleOK(t, w, DefaultParams(), d)
	if !plan.Placement[0].Contains(1) || !plan.Placement[0].Contains(2) {
		t.Errorf("placement = %v, want top-2 videos {1, 2}", plan.Placement[0].Sorted())
	}
	if plan.Placement[0].Contains(3) {
		t.Error("cache overfilled with video 3")
	}
	if plan.Stats.Replicas != 2 {
		t.Errorf("Replicas = %d, want 2", plan.Stats.Replicas)
	}
}

func TestReplicateServeBudgetSkipsUnservableDemand(t *testing.T) {
	// Capacity 3 with demand for 10 distinct videos: replicating all 10
	// would waste pushes — the serviceable-demand budget (the paper's
	// B_peak role) must stop the fill early.
	w := lineWorld(1, 1.0, 3, 50)
	d := NewDemand(1)
	for v := trace.VideoID(0); v < 10; v++ {
		d.Add(0, v, 1)
	}
	plan := scheduleOK(t, w, DefaultParams(), d)
	if plan.Stats.Replicas > 3 {
		t.Errorf("Replicas = %d, want <= service capacity 3", plan.Stats.Replicas)
	}
}

func TestReplicateSourceKeepsResidualDemand(t *testing.T) {
	// Hotspot 0: 12 units of video 5 (surplus 2 moves away) plus 3 of
	// video 6. After redirecting 2 units of video 5, the source still
	// has local demand for both videos and should cache both.
	w := lineWorld(2, 1.0, 10, 50)
	d := NewDemand(2)
	d.Add(0, 5, 12)
	d.Add(0, 6, 3) // wait: totals 15 > 10, surplus 5
	d.Add(1, 9, 1)

	plan := scheduleOK(t, w, DefaultParams(), d)
	if !plan.Placement[0].Contains(5) || !plan.Placement[0].Contains(6) {
		t.Errorf("source placement = %v, want videos 5 and 6", plan.Placement[0].Sorted())
	}
}

func TestReplicateFullyMovedVideoNotCachedAtSource(t *testing.T) {
	// Video 5's demand at hotspot 0 equals the surplus, and it wins the
	// greedy eu tie against video 7 (equal eu, smaller id), so all of
	// it moves to hotspot 1. The source must not waste a replica on a
	// video whose entire demand was redirected away.
	w := lineWorld(2, 1.0, 10, 50)
	d := NewDemand(2)
	d.Add(0, 5, 4)  // the surplus: fully movable
	d.Add(0, 7, 10) // fills capacity exactly
	d.Add(1, 9, 2)  // slack 8

	plan := scheduleOK(t, w, DefaultParams(), d)
	var video5Moved int64
	for _, r := range plan.Redirects {
		if r.Video == 5 {
			video5Moved += r.Count
		}
	}
	if video5Moved != 4 {
		t.Fatalf("video 5 moved %d units, want 4", video5Moved)
	}
	if plan.Placement[0].Contains(5) {
		t.Error("source cached video 5 although its whole demand was redirected")
	}
	if !plan.Placement[1].Contains(5) {
		t.Error("target did not cache redirected video 5")
	}
}
