package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/mcmf"
	"repro/internal/trace"
)

// deltaSlot is one timeslot's input to the differential harness.
type deltaSlot struct {
	d    *Demand
	cons Constraints
}

// deltaDriftSlots synthesises a slot sequence with the drift shapes the
// delta path must survive: totals-preserving mix drift (replayable),
// totals changes (partition shifts), vanishing demand rows, service and
// cache constraint flips, and completely unchanged slots.
func deltaDriftSlots(w *trace.World, videos, slots int, seed int64) []deltaSlot {
	rng := rand.New(rand.NewSource(seed))
	m := len(w.Hotspots)
	cur := randomDemand(w, 30*m, videos, seed)
	out := make([]deltaSlot, 0, slots)
	for slot := 0; slot < slots; slot++ {
		next := cur.Clone()
		var cons Constraints
		switch {
		case slot == 0 || slot%8 == 6:
			// Unchanged slot: pure replay, zero patched rows.
		default:
			// Totals-preserving mix drift at two hotspots.
			for k := 0; k < 2; k++ {
				h := trace.HotspotID(rng.Intn(m))
				for v, n := range next.PerVideo[h] {
					if n <= 0 {
						continue
					}
					next.Add(h, v, -n)
					next.Add(h, trace.VideoID(rng.Intn(videos)), n)
					break
				}
			}
			if slot%4 == 1 {
				// Totals change: new load lands at one hotspot.
				next.Add(trace.HotspotID(rng.Intn(m)), trace.VideoID(rng.Intn(videos)), 3)
			}
			if slot%5 == 2 {
				// Vanishing demand: one hotspot's row empties.
				h := rng.Intn(m)
				next.Totals[h] = 0
				next.PerVideo[h] = make(map[trace.VideoID]int64)
			}
			if slot%6 == 3 {
				// Service flip: halve one hotspot's capacity, which can
				// move it across the over/under boundary.
				svc := make([]int64, m)
				for h := range svc {
					svc[h] = w.Hotspots[h].ServiceCapacity
				}
				svc[rng.Intn(m)] /= 2
				cons.Service = svc
			}
			if slot%7 == 4 {
				// Cache flip: shrink one hotspot's cache.
				cache := make([]int, m)
				for h := range cache {
					cache[h] = w.Hotspots[h].CacheCapacity
				}
				cache[rng.Intn(m)] /= 2
				cons.Cache = cache
			}
		}
		out = append(out, deltaSlot{d: next, cons: cons})
		cur = next
	}
	return out
}

// effWorld applies a slot's constraint overrides to a copy of the
// world, so checkPlanInvariants sees the capacities the round ran with.
func effWorld(w *trace.World, cons Constraints) *trace.World {
	if cons.Service == nil && cons.Cache == nil {
		return w
	}
	out := *w
	out.Hotspots = append([]trace.Hotspot(nil), w.Hotspots...)
	for h := range out.Hotspots {
		if cons.Service != nil {
			out.Hotspots[h].ServiceCapacity = cons.Service[h]
		}
		if cons.Cache != nil {
			out.Hotspots[h].CacheCapacity = cons.Cache[h]
		}
	}
	return &out
}

// deltaParams returns params running in delta mode with fallbacks
// disabled (threshold 1 never trips on drift).
func deltaParams(workers int) Params {
	p := DefaultParams()
	p.Workers = workers
	p.DeltaThreshold = 1
	return p
}

// TestDeltaMatchesFullDifferential is the tentpole property: across a
// drifting slot sequence, delta-mode plans must be digest-identical to
// independent full solves of the same inputs, for serial and parallel
// schedulers alike.
func TestDeltaMatchesFullDifferential(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			w := lineWorld(24, 1.0, 10, 30)
			slots := deltaDriftSlots(w, 200, 24, 42)

			sDelta, err := New(w, deltaParams(workers))
			if err != nil {
				t.Fatalf("New(delta): %v", err)
			}
			full := DefaultParams()
			full.Workers = workers
			sFull, err := New(w, full)
			if err != nil {
				t.Fatalf("New(full): %v", err)
			}

			for i, slot := range slots {
				dp, err := sDelta.ScheduleRound(slot.d, slot.cons)
				if err != nil {
					t.Fatalf("slot %d: delta ScheduleRound: %v", i, err)
				}
				fp, err := sFull.ScheduleRound(slot.d.Clone(), slot.cons)
				if err != nil {
					t.Fatalf("slot %d: full ScheduleRound: %v", i, err)
				}
				if dp.Digest() != fp.Digest() {
					t.Fatalf("slot %d: delta digest %x != full digest %x (delta round=%v replayed=%v patched=%d)",
						i, dp.Digest(), fp.Digest(), dp.Stats.DeltaRound, dp.Stats.SweepReplayed, dp.Stats.PatchedRows)
				}
				checkPlanInvariants(t, effWorld(w, slot.cons), slot.d, dp)
				if i == 0 && (dp.Stats.DeltaRound || dp.Stats.DeltaFallback) {
					t.Errorf("slot 0 marked DeltaRound=%v DeltaFallback=%v; want a plain cold full solve",
						dp.Stats.DeltaRound, dp.Stats.DeltaFallback)
				}
				if i > 0 && !dp.Stats.DeltaRound {
					t.Errorf("slot %d not a delta round despite threshold 1", i)
				}
			}

			st := sDelta.DeltaStats()
			if st.Rounds != int64(len(slots)) {
				t.Errorf("DeltaStats.Rounds = %d, want %d", st.Rounds, len(slots))
			}
			if st.SweepReplays == 0 {
				t.Error("no sweep replays across unchanged slots")
			}
			if st.Fallbacks != 0 {
				t.Errorf("DeltaStats.Fallbacks = %d, want 0 at threshold 1", st.Fallbacks)
			}
		})
	}
}

// TestDeltaUnchangedSlotPatchesNothing locks the zero-work fast path:
// an identical slot replays the sweep, skips stage A, and patches no
// rows.
func TestDeltaUnchangedSlotPatchesNothing(t *testing.T) {
	w := lineWorld(16, 1.0, 10, 30)
	d := randomDemand(w, 400, 150, 7)
	s, err := New(w, deltaParams(1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Schedule(d.Clone()); err != nil {
		t.Fatalf("slot 0: %v", err)
	}
	plan, err := s.Schedule(d.Clone())
	if err != nil {
		t.Fatalf("slot 1: %v", err)
	}
	if !plan.Stats.DeltaRound || !plan.Stats.SweepReplayed {
		t.Errorf("DeltaRound=%v SweepReplayed=%v; want both on an unchanged slot",
			plan.Stats.DeltaRound, plan.Stats.SweepReplayed)
	}
	if plan.Stats.PatchedRows != 0 {
		t.Errorf("PatchedRows = %d on an unchanged slot, want 0", plan.Stats.PatchedRows)
	}
}

// TestDeltaVerifySelfChecks runs the drift sequence with shadow
// verification on: every delta round is checked against a live full
// solve, and no mismatch may occur.
func TestDeltaVerifySelfChecks(t *testing.T) {
	w := lineWorld(20, 1.0, 10, 30)
	slots := deltaDriftSlots(w, 150, 16, 11)
	p := deltaParams(2)
	p.DeltaVerify = true
	s, err := New(w, p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i, slot := range slots {
		if _, err := s.ScheduleRound(slot.d, slot.cons); err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
	}
	if st := s.DeltaStats(); st.VerifyMismatches != 0 {
		t.Fatalf("VerifyMismatches = %d, want 0", st.VerifyMismatches)
	}
}

// TestDeltaPeriodicFallback checks FullSolveEvery: with N=3 the rounds
// at 3, 6, 9, ... re-solve fully and are marked as fallbacks.
func TestDeltaPeriodicFallback(t *testing.T) {
	w := lineWorld(12, 1.0, 10, 30)
	slots := deltaDriftSlots(w, 100, 10, 3)
	p := deltaParams(1)
	p.FullSolveEvery = 3
	s, err := New(w, p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i, slot := range slots {
		plan, err := s.ScheduleRound(slot.d, slot.cons)
		if err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
		wantFallback := i > 0 && i%3 == 0
		if plan.Stats.DeltaFallback != wantFallback {
			t.Errorf("slot %d: DeltaFallback = %v, want %v", i, plan.Stats.DeltaFallback, wantFallback)
		}
		if plan.Stats.DeltaRound == plan.Stats.DeltaFallback && i > 0 {
			t.Errorf("slot %d: DeltaRound=%v DeltaFallback=%v; want exactly one after warmup",
				i, plan.Stats.DeltaRound, plan.Stats.DeltaFallback)
		}
	}
	if st := s.DeltaStats(); st.Fallbacks != 3 {
		t.Errorf("Fallbacks = %d, want 3 (slots 3, 6, 9)", st.Fallbacks)
	}
}

// TestDeltaDriftFallback checks the drift threshold: a slot touching
// more than DeltaThreshold of the hotspots triggers a full re-solve.
func TestDeltaDriftFallback(t *testing.T) {
	w := lineWorld(12, 1.0, 10, 30)
	d := randomDemand(w, 360, 100, 5)
	p := deltaParams(1)
	p.DeltaThreshold = 0.25
	s, err := New(w, p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Schedule(d.Clone()); err != nil {
		t.Fatalf("slot 0: %v", err)
	}

	// Small drift: one hotspot dirty out of 12 (8% <= 25%).
	small := d.Clone()
	small.Add(0, 99, 1)
	plan, err := s.Schedule(small)
	if err != nil {
		t.Fatalf("small drift: %v", err)
	}
	if !plan.Stats.DeltaRound || plan.Stats.DeltaFallback {
		t.Errorf("small drift: DeltaRound=%v DeltaFallback=%v; want a delta round",
			plan.Stats.DeltaRound, plan.Stats.DeltaFallback)
	}

	// Heavy drift: every hotspot dirty.
	heavy := small.Clone()
	for h := 0; h < 12; h++ {
		heavy.Add(trace.HotspotID(h), trace.VideoID(h), 2)
	}
	plan, err = s.Schedule(heavy)
	if err != nil {
		t.Fatalf("heavy drift: %v", err)
	}
	if plan.Stats.DeltaRound || !plan.Stats.DeltaFallback {
		t.Errorf("heavy drift: DeltaRound=%v DeltaFallback=%v; want a drift fallback",
			plan.Stats.DeltaRound, plan.Stats.DeltaFallback)
	}
	if st := s.DeltaStats(); st.Fallbacks != 1 {
		t.Errorf("Fallbacks = %d, want 1", st.Fallbacks)
	}
}

// TestDeltaParamsValidate covers the new knobs' validation.
func TestDeltaParamsValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"negative threshold", func(p *Params) { p.DeltaThreshold = -0.1 }},
		{"threshold above one", func(p *Params) { p.DeltaThreshold = 1.5 }},
		{"negative FullSolveEvery", func(p *Params) { p.FullSolveEvery = -1 }},
		{"delta with BPeak", func(p *Params) { p.DeltaThreshold = 0.5; p.BPeak = 10 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams()
			tc.mut(&p)
			if err := p.Validate(); err == nil {
				t.Error("Validate accepted invalid delta params")
			}
		})
	}
	good := DefaultParams()
	good.DeltaThreshold = DefaultDeltaThreshold
	good.FullSolveEvery = 10
	good.DeltaVerify = true
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected valid delta params: %v", err)
	}
}

// TestDeltaDegradedRoundNotReplayed injects a failing solver for the
// cold round: the recovered (degraded) sweep must not be replayed, and
// once the solver heals the delta rounds must re-converge with full
// solves.
func TestDeltaDegradedRoundNotReplayed(t *testing.T) {
	w := lineWorld(8, 1.0, 10, 30)
	// Half the hotspots overloaded, half idle, so the sweep actually
	// solves (an all-over or all-under partition skips the solver).
	d := NewDemand(8)
	for h := 0; h < 4; h++ {
		for v := 0; v < 20; v++ {
			d.Add(trace.HotspotID(h), trace.VideoID(h*20+v), 1)
		}
	}
	s, err := New(w, deltaParams(1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sFull, err := New(w, DefaultParams())
	if err != nil {
		t.Fatalf("New(full): %v", err)
	}

	orig := solveFn
	solveFn = func(*mcmf.Graph, int, int, int64, mcmf.Algorithm) (mcmf.Result, error) {
		return mcmf.Result{}, fmt.Errorf("injected solver failure")
	}
	plan, err := s.Schedule(d.Clone())
	solveFn = orig
	if err != nil {
		t.Fatalf("degraded slot: %v", err)
	}
	if !plan.Degraded {
		t.Fatal("cold round with failing solver not degraded")
	}

	// Same demand, healed solver: the degraded record must not replay.
	plan, err = s.Schedule(d.Clone())
	if err != nil {
		t.Fatalf("healed slot: %v", err)
	}
	if plan.Stats.SweepReplayed {
		t.Error("degraded sweep record was replayed")
	}
	if !plan.Stats.DeltaRound {
		t.Error("healed slot not a delta round")
	}
	fp, err := sFull.Schedule(d.Clone())
	if err != nil {
		t.Fatalf("full reference: %v", err)
	}
	if plan.Digest() != fp.Digest() {
		t.Error("healed delta plan diverges from full solve")
	}

	// Third identical slot: now the healthy record replays.
	plan, err = s.Schedule(d.Clone())
	if err != nil {
		t.Fatalf("replay slot: %v", err)
	}
	if !plan.Stats.SweepReplayed {
		t.Error("healthy record not replayed on an unchanged slot")
	}
	if plan.Digest() != fp.Digest() {
		t.Error("replayed delta plan diverges from full solve")
	}
}
