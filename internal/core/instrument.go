package core

import (
	"time"

	"repro/internal/obs"
)

// roundObs gathers one scheduling round's instrumentation: wall-clock
// phase marks and, when event recording is on, the structured events
// destined for Plan.Events. The zero value is fully disabled and makes
// every method a cheap no-op, so the uninstrumented hot path pays only
// branch checks.
type roundObs struct {
	timing bool // collect wall-clock marks (metrics or events enabled)
	record bool // assemble Plan.Events
	events []obs.Event
}

func newRoundObs(p Params) roundObs {
	return roundObs{timing: p.Obs != nil || p.RecordEvents, record: p.RecordEvents}
}

// now returns a phase mark, or the zero time when disabled.
func (o *roundObs) now() time.Time {
	if o.timing {
		return time.Now()
	}
	return time.Time{}
}

// since returns the elapsed time from a now() mark (0 when disabled).
func (o *roundObs) since(t0 time.Time) time.Duration {
	if o.timing {
		return time.Since(t0)
	}
	return 0
}

// emit appends one trace event (slot -1: the simulator stamps slots
// when flushing to a tracer).
func (o *roundObs) emit(typ string, attrs ...obs.Attr) {
	if o.record {
		o.events = append(o.events, obs.Event{Type: typ, Slot: -1, Attrs: attrs})
	}
}

// publishRound folds one finished round's stats into the registry. All
// quantities are logical (deterministic); the wall-clock phase
// breakdown goes to timers, which stay out of the deterministic
// snapshot.
func publishRound(r *obs.Registry, st *Stats, mcmfPaths int64) {
	if r == nil {
		return
	}
	r.Counter("core.rounds").Inc()
	r.Counter("core.max_flow").Add(st.MaxFlow)
	r.Counter("core.moved_flow").Add(st.MovedFlow)
	r.Counter("core.unrealized_flow").Add(st.UnrealizedFlow)
	r.Counter("core.stranded_to_cdn").Add(st.StrandedToCDN)
	r.Counter("core.replicas").Add(st.Replicas)
	r.Counter("core.distance_calcs").Add(st.DistanceCalcs)
	r.Counter("core.theta_iterations").Add(int64(st.Iterations))
	r.Counter("core.guide_nodes").Add(int64(st.GuideNodes))
	r.Counter("core.direct_edges").Add(int64(st.DirectEdges))
	r.Counter("core.clusters").Add(int64(st.Clusters))
	r.Counter("core.recovered_errors").Add(int64(st.RecoveredErrors))
	r.Counter("core.mcmf_paths").Add(mcmfPaths)
	if st.Degraded {
		r.Counter("core.degraded_rounds").Inc()
	}
	if st.DeadlineExceeded {
		r.Counter("core.deadline_exceeded").Inc()
	}
	r.Histogram("core.moved_flow_per_round", obs.PowersOf2Buckets(24)).Observe(st.MovedFlow)
	r.Histogram("core.replicas_per_round", obs.PowersOf2Buckets(24)).Observe(st.Replicas)
	r.Timer("core.phase.cluster").Observe(st.Phases.Cluster)
	r.Timer("core.phase.balance").Observe(st.Phases.Balance)
	r.Timer("core.phase.replicate").Observe(st.Phases.Replicate)
}
