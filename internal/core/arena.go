package core

import (
	"repro/internal/mcmf"
)

// roundArena is the per-Scheduler reusable storage behind the
// scheduling hot path. One round builds roughly ten transient
// structures per θ iteration — the flow graph, hotspot→node and
// source/sink-arc tables, per-target candidate lists, the
// cluster-grouping scratch, the attributed-edge list — and a fresh
// flows accumulator per round. The arena persists all of them across θ
// iterations and across rounds, so steady-state network construction
// appends into retained storage instead of reallocating.
//
// Membership tables (nodeOf, source/sink arcs) are epoch-stamped int
// slices instead of maps: every buildNetwork call bumps epoch, and an
// entry is live only when its stamp matches — an O(1) "clear" with no
// map traffic and no per-round zeroing of the m-sized tables.
//
// The arena inherits the Scheduler's concurrency contract (sequential
// use only); the worker fan-out inside a round writes disjoint candsOf
// rows, never the shared tables.
type roundArena struct {
	g     *mcmf.Graph
	epoch int64

	// Hotspot-indexed, epoch-stamped tables (sized m at construction).
	nodeOf []int32 // hotspot -> graph node, valid when nodeEp matches
	nodeEp []int64
	srcEp  []int64 // source arc added this epoch
	snkEp  []int64 // sink arc added this epoch

	candsOf [][]cand // per-under-target candidate rows, caps retained
	groups  []cand   // cluster-stable-sort scratch
	net     flowNet  // reused result shell; edges cap retained

	flows  map[int64]int64 // per-round flow accumulator, cleared per round
	counts map[int]int64   // contentClusters signature scratch
}

func newRoundArena(m int) *roundArena {
	return &roundArena{
		g:      mcmf.NewGraph(0),
		nodeOf: make([]int32, m),
		nodeEp: make([]int64, m),
		srcEp:  make([]int64, m),
		snkEp:  make([]int64, m),
		flows:  make(map[int64]int64),
		counts: make(map[int]int64),
	}
}

// emptyFlows returns the round flow accumulator, cleared for reuse.
func (ar *roundArena) emptyFlows() map[int64]int64 {
	clear(ar.flows)
	return ar.flows
}

// candRows returns the candidate table with n reusable rows, growing
// the row directory while keeping every existing row's capacity.
func (ar *roundArena) candRows(n int) [][]cand {
	if cap(ar.candsOf) < n {
		grown := make([][]cand, n)
		copy(grown, ar.candsOf[:cap(ar.candsOf)])
		ar.candsOf = grown
	}
	return ar.candsOf[:n]
}
