package core

import (
	"fmt"
	"slices"

	"repro/internal/cluster"
	"repro/internal/mcmf"
	"repro/internal/par"
	"repro/internal/similarity"
)

// pairKey packs an (i, j) hotspot pair into a map key.
func pairKey(i, j, m int) int64 { return int64(i)*int64(m) + int64(j) }

func unpackPair(k int64, m int) (i, j int) {
	return int(k / int64(m)), int(k % int64(m))
}

// attributedEdge ties a flow-network edge back to the hotspot pair its
// flow should be attributed to. For a direct edge it is <i, j>; for a
// guide in-edge i→n_kj it is also <i, j> because everything entering
// n_kj exits to j.
type attributedEdge struct {
	id   mcmf.EdgeID
	i, j int
}

// flowNet is one constructed balancing network (Gd, or Gc when guide
// nodes were inserted).
type flowNet struct {
	g           *mcmf.Graph
	source      int
	sink        int
	edges       []attributedEdge
	directPairs int // number of candidate <i,j> pairs with d_ij < θ
	guideNodes  int
}

// distCache holds the over×under pairwise geo distances of one
// scheduling round. Schedule computes it once and reuses it across
// every θ iteration of the sweep and the residual Gd pass, so the
// number of DistanceTo evaluations per round is |Hs|·|Ht| regardless
// of how many θ rounds run.
type distCache struct {
	nu int       // len(under)
	d  []float64 // d[oi*nu+uj] = distance(over[oi], under[uj])
}

// newDistCache computes the over×under distance matrix, fanning the
// rows out over workers goroutines (each row is written by exactly one
// worker, so the cache is identical for every worker count).
func (s *Scheduler) newDistCache(over, under []int, workers int) *distCache {
	nu := len(under)
	dc := &distCache{nu: nu, d: make([]float64, len(over)*nu)}
	locs := s.locs
	par.Chunks(len(over), workers, func(lo, hi int) {
		for oi := lo; oi < hi; oi++ {
			pi := locs[over[oi]]
			row := dc.d[oi*nu : (oi+1)*nu]
			for uj, j := range under {
				row[uj] = pi.DistanceTo(locs[j])
			}
		}
	})
	return dc
}

// at returns the cached distance between over[oi] and under[uj].
func (c *distCache) at(oi, uj int) float64 { return c.d[oi*c.nu+uj] }

// calcs is the number of distance evaluations the cache performed.
func (c *distCache) calcs() int64 {
	if c.nu == 0 {
		return 0
	}
	return int64(len(c.d)/c.nu) * int64(c.nu)
}

// cand is one admissible <i, j> pair: overloaded source i, the pair
// capacity φ_ij = min(φ_i, φ_j), and d_ij.
type cand struct {
	i      int
	phiIJ  int64
	distIJ float64
}

// buildNetwork constructs the θ-bounded balancing network over the
// hotspots with remaining surplus (over, phiOver) and remaining slack
// (under, phiUnder), reading pair distances from dc. When useGuides is
// true, flow-guide nodes implement the content-aggregation rewrite of
// Sec. IV-B (turning Gd into Gc).
//
// Construction is deterministic: targets are visited in ascending
// hotspot order (under is sorted by construction) and clusters in
// ascending cluster id, so identical inputs yield an identical graph —
// and therefore an identical min-cost flow — on every run.
func (s *Scheduler) buildNetwork(
	theta float64,
	over, under []int,
	phiOver, phiUnder []int64,
	dc *distCache,
	clusterOf []int,
	useGuides bool,
) *flowNet {
	return s.buildNetworkIn(s.ar.g, &s.ar.net, theta, over, under, phiOver, phiUnder, dc, clusterOf, useGuides)
}

// buildNetworkIn is buildNetwork with an explicit destination: the graph
// is rebuilt in g (Reinit, storage retained) and the result shell is
// written into *shell (edges capacity retained). The arena's
// epoch-stamped tables and candidate scratch are shared across
// destinations — only one network is ever under construction at a time.
// The delta path uses this to record each θ iteration's network into its
// own retained graph so the next round can replay the sweep.
func (s *Scheduler) buildNetworkIn(
	g *mcmf.Graph,
	shell *flowNet,
	theta float64,
	over, under []int,
	phiOver, phiUnder []int64,
	dc *distCache,
	clusterOf []int,
	useGuides bool,
) *flowNet {
	ar := s.ar
	ar.epoch++
	g.Reinit(2)
	const (
		source = 0
		sink   = 1
	)

	*shell = flowNet{g: g, source: source, sink: sink, edges: shell.edges[:0]}
	nb := shell

	// Candidate pairs within θ, grouped by under-utilised target.
	// candsOf is indexed alongside under; the O(|Hs|·|Ht|) enumeration
	// is the per-iteration hot loop, so targets fan out over the
	// round's workers — each writes only its own candsOf rows (reused
	// from the arena, so steady state appends into retained storage).
	candsOf := ar.candRows(len(under))
	par.Chunks(len(under), par.Workers(s.params.Workers), func(lo, hi int) {
		for uj := lo; uj < hi; uj++ {
			cands := candsOf[uj][:0]
			j := under[uj]
			if phiUnder[j] > 0 {
				for oi, i := range over {
					if phiOver[i] <= 0 {
						continue
					}
					d := dc.at(oi, uj)
					if d >= theta {
						continue
					}
					phiIJ := phiOver[i]
					if phiUnder[j] < phiIJ {
						phiIJ = phiUnder[j]
					}
					cands = append(cands, cand{i: i, phiIJ: phiIJ, distIJ: d})
				}
			}
			candsOf[uj] = cands
		}
	})
	for _, cands := range candsOf {
		nb.directPairs += len(cands)
	}

	// Hotspot→node plus lazy source/sink arcs, epoch-stamped so the
	// tables clear in O(1) per buildNetwork call instead of allocating
	// three maps.
	ensureNode := func(h int) int {
		if ar.nodeEp[h] == ar.epoch {
			return int(ar.nodeOf[h])
		}
		n := g.AddNode()
		ar.nodeOf[h] = int32(n)
		ar.nodeEp[h] = ar.epoch
		return n
	}
	mustEdge := func(from, to int, capacity int64, cost float64) mcmf.EdgeID {
		id, err := g.AddEdge(from, to, capacity, cost)
		if err != nil {
			// All arguments are validated by construction; an error
			// here is a programming bug.
			panic(fmt.Sprintf("core: building flow network: %v", err))
		}
		return id
	}

	for uj, cands := range candsOf {
		if len(cands) == 0 {
			continue
		}
		j := under[uj]
		nj := ensureNode(j)
		if ar.snkEp[j] != ar.epoch {
			mustEdge(nj, sink, phiUnder[j], 0)
			ar.snkEp[j] = ar.epoch
		}

		// Partition candidates by the source hotspot's content cluster,
		// visiting clusters in ascending id so edge insertion — and
		// hence the solver's path choices on cost ties — is
		// deterministic. A stable sort by cluster id over arena scratch
		// yields exactly the order the previous map-of-groups build
		// visited (ascending cluster, original candidate order within a
		// cluster) without allocating per-target maps.
		groups := cands
		if useGuides {
			ar.groups = append(ar.groups[:0], cands...)
			slices.SortStableFunc(ar.groups, func(a, b cand) int {
				return clusterOf[a.i] - clusterOf[b.i]
			})
			groups = ar.groups
		}

		for gLo := 0; gLo < len(groups); {
			gHi := gLo + 1
			k := -1
			if useGuides {
				k = clusterOf[groups[gLo].i]
				for gHi < len(groups) && clusterOf[groups[gHi].i] == k {
					gHi++
				}
			} else {
				gHi = len(groups)
			}
			group := groups[gLo:gHi]
			gLo = gHi
			var sumPhi int64
			var sumDist float64
			for _, c := range group {
				sumPhi += c.phiIJ
				sumDist += c.distIJ
			}
			guided := false
			if useGuides && k >= 0 {
				// Insert a guide node when the cluster can cover at
				// least half of j's slack, or when j itself belongs to
				// the cluster (Sec. IV-B).
				if 2*sumPhi >= phiUnder[j] || clusterOf[j] == k {
					guided = true
				}
			}
			if guided {
				guide := g.AddNode()
				nb.guideNodes++
				var outCost float64
				switch s.params.GuideCost {
				case GuideCostAvgCapacity:
					outCost = float64(sumPhi) / float64(len(group))
				default: // GuideCostAvgDistance
					outCost = sumDist / float64(len(group))
				}
				outCap := sumPhi
				if phiUnder[j] < outCap {
					outCap = phiUnder[j]
				}
				mustEdge(guide, nj, outCap, outCost)
				for _, c := range group {
					ni := ensureNode(c.i)
					if ar.srcEp[c.i] != ar.epoch {
						mustEdge(source, ni, phiOver[c.i], 0)
						ar.srcEp[c.i] = ar.epoch
					}
					id := mustEdge(ni, guide, c.phiIJ, 0)
					nb.edges = append(nb.edges, attributedEdge{id: id, i: c.i, j: j})
				}
			} else {
				for _, c := range group {
					ni := ensureNode(c.i)
					if ar.srcEp[c.i] != ar.epoch {
						mustEdge(source, ni, phiOver[c.i], 0)
						ar.srcEp[c.i] = ar.epoch
					}
					id := mustEdge(ni, nj, c.phiIJ, c.distIJ)
					nb.edges = append(nb.edges, attributedEdge{id: id, i: c.i, j: j})
				}
			}
		}
	}
	return nb
}

// contentClusters computes each hotspot's content signature (its
// top-TopFraction demanded videos) and clusters hotspots by the
// content-aware distance Jd = 1 - Jaccard, cutting the dendrogram at
// ClusterCut. It returns the cluster index per hotspot and the number
// of clusters.
func (s *Scheduler) contentClusters(d *Demand) ([]int, int, error) {
	m := len(s.world.Hotspots)
	sets := make([]similarity.Set, m)
	counts := s.ar.counts // reused across hotspots; TopFraction copies what it keeps
	for h := 0; h < m; h++ {
		clear(counts)
		for v, n := range d.PerVideo[h] {
			counts[int(v)] = n
		}
		set, err := similarity.TopFraction(counts, s.params.TopFraction)
		if err != nil {
			return nil, 0, fmt.Errorf("core: content signature of hotspot %d: %w", h, err)
		}
		sets[h] = set
	}
	// The O(m²) Jaccard matrix dominates clustering on large fleets;
	// compute it in parallel and hand the finished matrix to the
	// (inherently sequential) nearest-neighbour-chain algorithm.
	dist := similarity.DistanceMatrix(sets, par.Workers(s.params.Workers))
	dendro, err := cluster.AgglomerativeMatrix(dist, s.params.Linkage)
	if err != nil {
		return nil, 0, fmt.Errorf("core: clustering hotspots: %w", err)
	}
	groups := dendro.Cut(s.params.ClusterCut)
	clusterOf := make([]int, m)
	for k, grp := range groups {
		for _, h := range grp {
			clusterOf[h] = k
		}
	}
	return clusterOf, len(groups), nil
}

// ThetaAnalysis reports, for a given θ, the size and effectiveness of
// the balancing graph Gd — the quantities of the paper's Fig. 9.
type ThetaAnalysis struct {
	Theta float64
	// DirectEdges is the number of <i,j> pairs with d_ij < θ.
	DirectEdges int
	// EdgeFraction is DirectEdges normalised by |V|^2 with
	// |V| = |Hs| + |Ht| (the possible-edge count).
	EdgeFraction float64
	// Flow is the max flow achievable on Gd(θ).
	Flow int64
	// FlowFraction is Flow normalised by the unrestricted movable
	// workload min(Σφ_i, Σφ_j).
	FlowFraction float64
}

// AnalyzeTheta computes the Fig. 9 quantities for one θ against the
// demand: how many candidate edges the θ bound keeps and what fraction
// of the movable workload those edges can carry.
func (s *Scheduler) AnalyzeTheta(d *Demand, theta float64) (ThetaAnalysis, error) {
	if d.NumHotspots() != len(s.world.Hotspots) {
		return ThetaAnalysis{}, fmt.Errorf("core: demand covers %d hotspots, world has %d",
			d.NumHotspots(), len(s.world.Hotspots))
	}
	if theta < 0 {
		return ThetaAnalysis{}, fmt.Errorf("core: negative theta %v", theta)
	}
	over, under, phiOver, phiUnder := s.partition(d, s.worldCapacities())
	dc := s.newDistCache(over, under, par.Workers(s.params.Workers))
	nb := s.buildNetwork(theta, over, under, phiOver, phiUnder, dc, nil, false)
	res, err := nb.g.Solve(nb.source, nb.sink, int64(1)<<62, s.params.Algorithm)
	if err != nil {
		return ThetaAnalysis{}, fmt.Errorf("core: solving Gd(θ=%v): %w", theta, err)
	}

	var sumOver, sumUnder int64
	for _, i := range over {
		sumOver += phiOver[i]
	}
	for _, j := range under {
		sumUnder += phiUnder[j]
	}
	maxflow := sumOver
	if sumUnder < maxflow {
		maxflow = sumUnder
	}
	v := len(over) + len(under)
	out := ThetaAnalysis{
		Theta:       theta,
		DirectEdges: nb.directPairs,
		Flow:        res.Flow,
	}
	if v > 0 {
		out.EdgeFraction = float64(nb.directPairs) / float64(v*v)
	}
	if maxflow > 0 {
		out.FlowFraction = float64(res.Flow) / float64(maxflow)
	}
	return out, nil
}

// partition splits hotspots into overloaded and under-utilised sets
// with their surplus/slack φ values against the given capacities.
func (s *Scheduler) partition(d *Demand, svc []int64) (over, under []int, phiOver, phiUnder []int64) {
	m := len(s.world.Hotspots)
	phiOver = make([]int64, m)
	phiUnder = make([]int64, m)
	for h := 0; h < m; h++ {
		lambda := d.Totals[h]
		switch {
		case lambda > svc[h]:
			over = append(over, h)
			phiOver[h] = lambda - svc[h]
		case lambda < svc[h]:
			under = append(under, h)
			phiUnder[h] = svc[h] - lambda
		}
	}
	return over, under, phiOver, phiUnder
}
