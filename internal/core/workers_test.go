package core

import (
	"reflect"
	"testing"

	"repro/internal/geo"
	"repro/internal/trace"
)

// mustPlan builds a scheduler with the params and schedules the demand.
func mustPlan(t *testing.T, w *trace.World, p Params, d *Demand) *Plan {
	t.Helper()
	s, err := New(w, p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	plan, err := s.Schedule(d.Clone())
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	return plan
}

// TestScheduleRunTwiceIdentical locks in deterministic network
// construction: scheduling the same demand twice — on the same
// scheduler and on a freshly built one — must produce byte-identical
// plans (flows, redirects, placement, overflow, and stats), not merely
// equivalent ones. Before candidate/cluster iteration was forced into
// sorted order this could diverge through Go's randomised map
// iteration feeding the MCMF solver edges in different orders.
func TestScheduleRunTwiceIdentical(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		w := lineWorld(12, 0.4, 55, 30)
		d := randomDemand(w, 500, 120, seed)

		s, err := New(w, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		first, err := s.Schedule(d.Clone())
		if err != nil {
			t.Fatal(err)
		}
		again, err := s.Schedule(d.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("seed %d: same scheduler produced different plans:\n%+v\nvs\n%+v", seed, first, again)
		}
		fresh := mustPlan(t, w, DefaultParams(), d)
		if !reflect.DeepEqual(first, fresh) {
			t.Fatalf("seed %d: fresh scheduler produced a different plan:\n%+v\nvs\n%+v", seed, first, fresh)
		}
	}
}

// TestWorkersPlanEquality asserts the Workers knob never changes the
// answer: for seeded worlds, every worker count yields the exact plan
// the serial path computes. Run under -race this also exercises the
// distance-cache, Jaccard-matrix, and candidate-generation fan-outs
// for data races.
func TestWorkersPlanEquality(t *testing.T) {
	for _, seed := range []int64{7, 11} {
		w := lineWorld(16, 0.35, 60, 40)
		d := randomDemand(w, 800, 150, seed)

		serial := DefaultParams()
		serial.Workers = 1
		want := mustPlan(t, w, serial, d)

		for _, workers := range []int{0, 2, 3, 8} {
			p := DefaultParams()
			p.Workers = workers
			got := mustPlan(t, w, p, d)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("seed %d: Workers=%d plan differs from serial:\n%+v\nvs\n%+v",
					seed, workers, got, want)
			}
		}
	}
}

// TestSweepThetas pins the θ schedule to the closed form
// Theta1 + k·DeltaD. The accumulation it replaced (theta += DeltaD)
// drifts linearly with the iteration count and could miss the final
// θ2 round entirely on long sweeps.
func TestSweepThetas(t *testing.T) {
	p := DefaultParams() // 0.5 → 1.5 step 0.5
	got := sweepThetas(p)
	want := []float64{0.5, 1.0, 1.5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sweepThetas(default) = %v, want %v", got, want)
	}

	// Long sweep where repeated accumulation of 0.1 demonstrably
	// drifts: the closed form must still emit exactly K+1 values and
	// land exactly on Theta2.
	p.Theta1, p.Theta2, p.DeltaD = 0, 1000, 0.1
	got = sweepThetas(p)
	if len(got) != 10001 {
		t.Fatalf("long sweep emitted %d values, want 10001", len(got))
	}
	if got[0] != 0 || got[len(got)-1] != 1000 {
		t.Fatalf("long sweep endpoints %v..%v, want 0..1000", got[0], got[len(got)-1])
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("sweep not strictly increasing at %d: %v <= %v", i, got[i], got[i-1])
		}
		if got[i] > p.Theta2 {
			t.Fatalf("sweep value %v exceeds Theta2", got[i])
		}
	}
	// The old accumulation loop for comparison: it ends up off by the
	// accumulated rounding error, which is what the closed form fixes.
	acc := 0.0
	for i := 0; i < 10000; i++ {
		acc += 0.1
	}
	if acc == 1000 {
		t.Skip("platform accumulates 0.1 exactly; drift scenario not reproducible")
	}

	// A range that is not a whole number of steps stops at the last
	// step below Theta2 (the residual Gd pass covers the remainder).
	p.Theta1, p.Theta2, p.DeltaD = 0.5, 1.4, 0.5
	got = sweepThetas(p)
	want = []float64{0.5, 1.0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("partial sweep = %v, want %v", got, want)
	}

	// SingleShotTheta collapses the sweep to one θ2 round.
	p = DefaultParams()
	p.SingleShotTheta = true
	if got := sweepThetas(p); !reflect.DeepEqual(got, []float64{p.Theta2}) {
		t.Fatalf("single-shot sweep = %v, want [%v]", got, p.Theta2)
	}
}

// TestDistanceCalcsIndependentOfIterations proves the distance cache
// does its job: shrinking DeltaD multiplies the θ iterations but the
// number of pairwise distance evaluations stays |Hs|·|Ht|.
func TestDistanceCalcsIndependentOfIterations(t *testing.T) {
	w := lineWorld(14, 0.4, 55, 30)
	d := randomDemand(w, 600, 120, 5)

	coarse := DefaultParams() // 3 iterations
	fine := DefaultParams()
	fine.DeltaD = 0.05 // 21 iterations

	pc := mustPlan(t, w, coarse, d)
	pf := mustPlan(t, w, fine, d)

	if pf.Stats.Iterations <= pc.Stats.Iterations {
		t.Fatalf("fine sweep ran %d iterations, coarse %d; expected more",
			pf.Stats.Iterations, pc.Stats.Iterations)
	}
	wantCalcs := int64(pc.Stats.Overloaded) * int64(pc.Stats.Underutilized)
	if pc.Stats.DistanceCalcs != wantCalcs {
		t.Errorf("coarse DistanceCalcs = %d, want |Hs|·|Ht| = %d", pc.Stats.DistanceCalcs, wantCalcs)
	}
	if pf.Stats.DistanceCalcs != pc.Stats.DistanceCalcs {
		t.Errorf("DistanceCalcs scales with iterations: %d (x%d iters) vs %d (x%d iters)",
			pf.Stats.DistanceCalcs, pf.Stats.Iterations, pc.Stats.DistanceCalcs, pc.Stats.Iterations)
	}
}

// TestStatsAccumulateAcrossIterations pins the DirectEdges/GuideNodes
// contract with a hand-built two-iteration sweep whose per-iteration
// counts are known exactly: both stats must accumulate over every θ
// iteration. DirectEdges used to report only the final iteration
// (overwritten each round) while GuideNodes summed, so the old code
// would report 1 here instead of 2.
func TestStatsAccumulateAcrossIterations(t *testing.T) {
	// h0 overloaded (surplus 10); h1 within θ1 with slack 4; h2 only
	// within θ2 with slack 6. Iteration θ=0.5 enumerates exactly
	// <h0,h1> and drains h1; iteration θ=1.0 enumerates exactly
	// <h0,h2> (h1 is exhausted and skipped).
	w := &trace.World{
		Bounds: geo.Rect{MinX: -1, MinY: -1, MaxX: 2, MaxY: 1},
		Hotspots: []trace.Hotspot{
			{ID: 0, Location: geo.Point{X: 0, Y: 0}, ServiceCapacity: 5, CacheCapacity: 30},
			{ID: 1, Location: geo.Point{X: 0.3, Y: 0}, ServiceCapacity: 5, CacheCapacity: 30},
			{ID: 2, Location: geo.Point{X: 0.75, Y: 0}, ServiceCapacity: 7, CacheCapacity: 30},
		},
		NumVideos:     100,
		CDNDistanceKm: 20,
	}
	d := NewDemand(3)
	for v := trace.VideoID(0); v < 5; v++ {
		d.Add(0, v, 3) // 15 requests: surplus 10
	}
	d.Add(1, 50, 1) // slack 4
	d.Add(2, 60, 1) // slack 6

	p := DefaultParams()
	p.Theta1, p.Theta2, p.DeltaD = 0.5, 1.0, 0.5

	plan := mustPlan(t, w, p, d)
	st := plan.Stats
	if st.Iterations != 2 {
		t.Fatalf("Iterations = %d, want 2 (θ=0.5 and θ=1.0)", st.Iterations)
	}
	if st.MovedFlow != 10 {
		t.Fatalf("MovedFlow = %d, want 10", st.MovedFlow)
	}
	if st.DirectEdges != 2 {
		t.Errorf("DirectEdges = %d, want 2 (one pair per iteration, accumulated)", st.DirectEdges)
	}
	if st.GuideNodes != 2 {
		t.Errorf("GuideNodes = %d, want 2 (one guide per iteration, accumulated)", st.GuideNodes)
	}
	if st.DistanceCalcs != 2 {
		t.Errorf("DistanceCalcs = %d, want |Hs|·|Ht| = 2", st.DistanceCalcs)
	}
}
