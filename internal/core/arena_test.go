package core

import (
	"reflect"
	"testing"

	"repro/internal/par"
	"repro/internal/trace"
)

// spreadDemand overloads the first k hotspots and leaves the rest
// under-utilised, with overlapping video sets so clustering and
// replication have real work.
func spreadDemand(n, k int, perOver int64) *Demand {
	d := NewDemand(n)
	for h := 0; h < k; h++ {
		for v := 0; v < 12; v++ {
			d.Add(trace.HotspotID(h), trace.VideoID(v+h), perOver)
		}
	}
	for h := k; h < n; h++ {
		d.Add(trace.HotspotID(h), trace.VideoID(h), 1)
	}
	return d
}

// TestArenaReusePlansIdentical locks the arena against cross-round
// leakage: the same demand scheduled on a long-lived scheduler —
// before and after rounds on a different demand — must produce a plan
// deep-equal to a fresh scheduler's, for both guide modes.
func TestArenaReusePlansIdentical(t *testing.T) {
	world := lineWorld(12, 0.4, 6, 8)
	dA := spreadDemand(12, 3, 4)
	dB := spreadDemand(12, 5, 7)
	for _, disableGuides := range []bool{false, true} {
		params := DefaultParams()
		params.DisableGuides = disableGuides

		fresh := func(d *Demand) *Plan {
			s, err := New(world, params)
			if err != nil {
				t.Fatal(err)
			}
			p, err := s.Schedule(d)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
		wantA, wantB := fresh(dA), fresh(dB)

		s, err := New(world, params)
		if err != nil {
			t.Fatal(err)
		}
		sequence := []struct {
			name string
			d    *Demand
			want *Plan
		}{
			{"A-first", dA, wantA},
			{"B-interleaved", dB, wantB},
			{"A-again", dA, wantA},
			{"B-again", dB, wantB},
		}
		for _, step := range sequence {
			got, err := s.Schedule(step.d)
			if err != nil {
				t.Fatalf("guides=%v %s: %v", !disableGuides, step.name, err)
			}
			if !reflect.DeepEqual(got, step.want) {
				t.Errorf("guides=%v %s: reused-arena plan diverges from fresh scheduler", !disableGuides, step.name)
			}
		}
	}
}

// TestFastPathNoMovableFlow covers the MaxFlow==0 early exit: no
// overloaded hotspots (everything fits) and no under-utilised hotspots
// (everything overloaded) must both skip the sweep machinery while
// still producing a complete plan.
func TestFastPathNoMovableFlow(t *testing.T) {
	t.Run("all-under", func(t *testing.T) {
		world := lineWorld(8, 0.4, 50, 6)
		d := NewDemand(8)
		for h := 0; h < 8; h++ {
			d.Add(trace.HotspotID(h), trace.VideoID(h), 3)
		}
		s, err := New(world, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		plan, err := s.Schedule(d)
		if err != nil {
			t.Fatal(err)
		}
		st := plan.Stats
		if st.MaxFlow != 0 || st.Iterations != 0 || st.Clusters != 0 || st.DistanceCalcs != 0 {
			t.Errorf("fast path ran sweep machinery: %+v", st)
		}
		if len(plan.Flows) != 0 || len(plan.Redirects) != 0 {
			t.Errorf("fast path moved flow: %d flows, %d redirects", len(plan.Flows), len(plan.Redirects))
		}
		for h, o := range plan.OverflowToCDN {
			if o != 0 {
				t.Errorf("hotspot %d overflows %d with spare capacity", h, o)
			}
		}
		// The greedy local fill must still replicate demanded videos.
		if st.Replicas == 0 {
			t.Error("fast path skipped Procedure 1's local fill")
		}
		for h := 0; h < 8; h++ {
			if !plan.Placement[h].Contains(h) {
				t.Errorf("hotspot %d missing its demanded video in placement", h)
			}
		}
	})

	t.Run("all-over", func(t *testing.T) {
		world := lineWorld(4, 0.4, 2, 6)
		d := NewDemand(4)
		for h := 0; h < 4; h++ {
			d.Add(trace.HotspotID(h), trace.VideoID(h), 10)
		}
		s, err := New(world, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		plan, err := s.Schedule(d)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Stats.MaxFlow != 0 || plan.Stats.Iterations != 0 {
			t.Errorf("fast path ran the sweep: %+v", plan.Stats)
		}
		var stranded int64
		for h, o := range plan.OverflowToCDN {
			if o != 8 {
				t.Errorf("hotspot %d overflow %d, want 8", h, o)
			}
			stranded += o
		}
		if plan.Stats.StrandedToCDN != stranded {
			t.Errorf("StrandedToCDN = %d, want %d", plan.Stats.StrandedToCDN, stranded)
		}
	})
}

// TestBuildNetworkSteadyStateAllocs bounds the steady-state allocation
// cost of network construction so arena reuse cannot silently rot. The
// first build sizes the arena; subsequent builds should only pay a
// handful of incidental allocations (closure headers and the like),
// not the ~10 maps/slices the pre-arena path allocated.
func TestBuildNetworkSteadyStateAllocs(t *testing.T) {
	world := lineWorld(24, 0.3, 5, 8)
	d := spreadDemand(24, 8, 6)
	params := DefaultParams()
	params.Workers = 1
	s, err := New(world, params)
	if err != nil {
		t.Fatal(err)
	}
	clusterOf, _, err := s.contentClusters(d)
	if err != nil {
		t.Fatal(err)
	}
	over, under, phiOver, phiUnder := s.partition(d, s.worldCapacities())
	dc := s.newDistCache(over, under, par.Workers(params.Workers))

	for _, useGuides := range []bool{true, false} {
		// Warm the arena at this shape.
		nb := s.buildNetwork(params.Theta2, over, under, phiOver, phiUnder, dc, clusterOf, useGuides)
		if nb.directPairs == 0 {
			t.Fatal("test network is empty — nothing exercised")
		}
		allocs := testing.AllocsPerRun(20, func() {
			s.buildNetwork(params.Theta2, over, under, phiOver, phiUnder, dc, clusterOf, useGuides)
		})
		const maxAllocs = 8
		if allocs > maxAllocs {
			t.Errorf("guides=%v: steady-state buildNetwork allocates %v objects per call, want <= %d",
				useGuides, allocs, maxAllocs)
		}
	}
}
