package core

import (
	"fmt"
	"math"
	"slices"
	"time"

	"repro/internal/geo"
	"repro/internal/mcmf"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/similarity"
	"repro/internal/trace"
)

// Scheduler runs RBCAer scheduling rounds against a fixed world.
// It is safe for sequential reuse across timeslots; it is not safe for
// concurrent use.
type Scheduler struct {
	world  *trace.World
	params Params
	locs   []geo.Point
	// ar is the reusable round arena behind buildNetwork and the flows
	// accumulator; it shares the Scheduler's sequential-use contract.
	ar *roundArena
	// delta is the retained incremental-scheduling state, allocated
	// lazily on the first round when Params.DeltaThreshold > 0 and
	// dropped whenever a round errors or shadow verification mismatches.
	delta *deltaState
	// deltaTotals are the cumulative delta counters; unlike delta they
	// survive retained-state drops for the Scheduler's lifetime.
	deltaTotals DeltaStats
}

// New validates the inputs and returns a scheduler for the world.
func New(world *trace.World, params Params) (*Scheduler, error) {
	if world == nil {
		return nil, fmt.Errorf("core: nil world")
	}
	if err := world.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid world: %w", err)
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	locs := make([]geo.Point, len(world.Hotspots))
	for i, h := range world.Hotspots {
		locs[i] = h.Location
	}
	return &Scheduler{world: world, params: params, locs: locs, ar: newRoundArena(len(world.Hotspots))}, nil
}

// World returns the world the scheduler was built for.
func (s *Scheduler) World() *trace.World { return s.world }

// Params returns the scheduler's parameters.
func (s *Scheduler) Params() Params { return s.params }

// Constraints carries one round's effective resource limits, which may
// differ from the world's nominal values when faults degrade the fleet
// (churned-out hotspots at capacity 0, throttled devices at a fraction
// of their nominal service or cache capacity). Nil slices mean
// "nominal".
type Constraints struct {
	// Service[h] overrides hotspot h's service capacity this round.
	Service []int64
	// Cache[h] overrides hotspot h's cache capacity this round.
	Cache []int
}

// Schedule runs Algorithm 1 (request balancing with content
// aggregation) followed by Procedure 1 (content aggregation
// replication) on one timeslot's aggregated demand and returns the
// resulting plan.
func (s *Scheduler) Schedule(d *Demand) (*Plan, error) {
	return s.ScheduleRound(d, Constraints{})
}

// ScheduleWithCapacities is Schedule with per-round effective service
// capacities overriding the world's nominal values (the simulator uses
// this to model churned-out hotspots as capacity 0 for a slot). A nil
// svc uses the world's capacities; otherwise svc must cover every
// hotspot with non-negative values.
func (s *Scheduler) ScheduleWithCapacities(d *Demand, svc []int64) (*Plan, error) {
	return s.ScheduleRound(d, Constraints{Service: svc})
}

// solveFn indirects the MCMF solve so tests can inject solver failures
// and panics to exercise the degraded path.
var solveFn = func(g *mcmf.Graph, source, sink int, limit int64, alg mcmf.Algorithm) (mcmf.Result, error) {
	return g.Solve(source, sink, limit, alg)
}

// safeSolve runs one MCMF solve, converting a solver panic into an
// error so a corrupted or over-constrained network can never take the
// whole scheduling round down.
func safeSolve(g *mcmf.Graph, source, sink int, limit int64, alg mcmf.Algorithm) (res mcmf.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: mcmf solver panicked: %v", r)
		}
	}()
	return solveFn(g, source, sink, limit, alg)
}

// ScheduleRound is the fault-aware scheduling entry point: Schedule
// with per-round effective service and cache capacities. It validates
// its inputs and degrades gracefully instead of failing the round:
//
//   - an infeasible or failing MCMF solve (error or panic) is
//     recoverable — the θ iteration's flow simply stays unmoved and
//     falls back to the CDN, counted in Stats.RecoveredErrors;
//   - when Params.Deadline is set and the round overruns it, the θ
//     sweep stops early and the best partial plan so far is returned
//     with Stats.DeadlineExceeded;
//   - either way the plan is complete and feasible (placement within
//     cache limits, stranded surplus routed to the CDN via
//     OverflowToCDN) and marked with Plan.Degraded.
//
// Hard errors remain only for contract violations by the caller: nil
// or negative demand, mis-sized or negative capacity vectors.
func (s *Scheduler) ScheduleRound(d *Demand, cons Constraints) (*Plan, error) {
	svc, cache, err := s.validateRound(d, cons)
	if err != nil {
		return nil, err
	}
	if s.params.DeltaThreshold > 0 {
		return s.scheduleDelta(d, svc, cache)
	}
	return s.scheduleFull(d, svc, cache, nil, false)
}

// validateRound checks the caller-contract inputs of one round and
// resolves the effective capacity vectors.
func (s *Scheduler) validateRound(d *Demand, cons Constraints) (svc []int64, cache []int, err error) {
	if d == nil {
		return nil, nil, fmt.Errorf("core: nil demand")
	}
	m := len(s.world.Hotspots)
	if d.NumHotspots() != m {
		return nil, nil, fmt.Errorf("core: demand covers %d hotspots, world has %d", d.NumHotspots(), m)
	}
	if len(d.PerVideo) != m {
		return nil, nil, fmt.Errorf("core: demand per-video covers %d hotspots, world has %d", len(d.PerVideo), m)
	}
	for h, n := range d.Totals {
		if n < 0 {
			return nil, nil, fmt.Errorf("core: negative demand %d at hotspot %d", n, h)
		}
	}
	svc = cons.Service
	if svc == nil {
		svc = s.worldCapacities()
	} else {
		if len(svc) != m {
			return nil, nil, fmt.Errorf("core: capacities cover %d hotspots, world has %d", len(svc), m)
		}
		for h, c := range svc {
			if c < 0 {
				return nil, nil, fmt.Errorf("core: negative capacity %d at hotspot %d", c, h)
			}
		}
	}
	cache = cons.Cache
	if cache == nil {
		cache = s.worldCacheCapacities()
	} else {
		if len(cache) != m {
			return nil, nil, fmt.Errorf("core: cache capacities cover %d hotspots, world has %d", len(cache), m)
		}
		for h, c := range cache {
			if c < 0 {
				return nil, nil, fmt.Errorf("core: negative cache capacity %d at hotspot %d", c, h)
			}
		}
	}
	return svc, cache, nil
}

// scheduleFull runs one complete scheduling round: clustering, the full
// θ sweep, replication, and plan assembly. When rec is non-nil the round
// belongs to a delta-mode scheduler: each θ iteration's network and flow
// solution is recorded into rec for the next round's replay, clustering
// goes through the memoised refresh path, and Params.Deadline is ignored
// (delta mode's latency story is the delta path, not truncation). quiet
// suppresses all observability side effects (events, metrics, timers) —
// the DeltaVerify shadow solve uses it so verification never perturbs
// the published counters.
func (s *Scheduler) scheduleFull(d *Demand, svc []int64, cache []int, rec *sweepRecord, quiet bool) (*Plan, error) {
	start := time.Now()
	overDeadline := func() bool {
		if quiet || rec != nil {
			return false
		}
		return s.params.Deadline > 0 && time.Since(start) >= s.params.Deadline
	}
	var ro roundObs
	if !quiet {
		ro = newRoundObs(s.params)
	}

	over, under, phiOver, phiUnder := s.partition(d, svc)
	var stats Stats
	stats.Overloaded = len(over)
	stats.Underutilized = len(under)

	var sumOver, sumUnder int64
	for _, i := range over {
		sumOver += phiOver[i]
	}
	for _, j := range under {
		sumUnder += phiUnder[j]
	}
	stats.MaxFlow = sumOver
	if sumUnder < stats.MaxFlow {
		stats.MaxFlow = sumUnder
	}

	// Fast path: no movable workload (no overloaded or no
	// under-utilised hotspots) means the θ sweep cannot move anything —
	// skip clustering, the distance cache, and the sweep entirely and
	// go straight to replication. Common in light-traffic and heavily
	// degraded slots. The skipped stages would all have been no-ops:
	// the sweep breaks before its first iteration and the distance
	// cache is empty whenever either side of the partition is, so the
	// plan is identical to the full path's.
	if stats.MaxFlow == 0 {
		dcache := &distCache{}
		if rec != nil {
			// A zero-iteration record: the next round, if unchanged,
			// "replays" an empty sweep.
			rec.captureRound(over, under, dcache, s.delta.clusterEpoch, true)
		}
		return s.finishRound(d, &stats, &ro, over, under, phiOver, s.ar.emptyFlows(), svc, cache, dcache, 0, quiet)
	}

	var clusterOf []int
	if !s.params.DisableGuides {
		t0 := ro.now()
		var nClusters int
		var err error
		if rec != nil {
			clusterOf, nClusters, err = s.delta.refreshClusters(s, d)
		} else {
			clusterOf, nClusters, err = s.contentClusters(d)
		}
		if err != nil {
			return nil, err
		}
		stats.Clusters = nClusters
		stats.Phases.Cluster = ro.since(t0)
		ro.emit("cluster",
			obs.I("clusters", int64(nClusters)),
			obs.I("overloaded", int64(stats.Overloaded)),
			obs.I("underutilized", int64(stats.Underutilized)),
			obs.I("max_flow", stats.MaxFlow),
			obs.D("dur", stats.Phases.Cluster))
	}

	flows := s.ar.emptyFlows()

	// The over×under distances are fixed for the whole round: compute
	// them once and share the cache across every θ iteration and the
	// residual Gd pass.
	tBalance := ro.now()
	dcache := s.newDistCache(over, under, par.Workers(s.params.Workers))
	stats.DistanceCalcs = dcache.calcs()

	mcmfPaths := s.runSweep(over, under, phiOver, phiUnder, dcache, clusterOf, flows, &stats, &ro, rec, overDeadline)
	stats.Phases.Balance = ro.since(tBalance)
	if rec != nil {
		rec.captureRound(over, under, dcache, s.delta.clusterEpoch, !stats.Degraded)
	}

	return s.finishRound(d, &stats, &ro, over, under, phiOver, flows, svc, cache, dcache, mcmfPaths, quiet)
}

// runSweep runs Algorithm 1's θ sweep plus the residual Gd pass,
// accumulating extracted flows into flows and decrementing the φ
// vectors. When rec is non-nil every iteration's network is built into
// the record's own retained graph and its solved flow vector is
// snapshotted so the next round can replay the sweep without solving.
// Returns the total MCMF augmenting-path count.
func (s *Scheduler) runSweep(
	over, under []int,
	phiOver, phiUnder []int64,
	dcache *distCache,
	clusterOf []int,
	flows map[int64]int64,
	stats *Stats,
	ro *roundObs,
	rec *sweepRecord,
	overDeadline func() bool,
) int64 {
	var moved int64
	var mcmfPaths int64
	dest := func() (*mcmf.Graph, *flowNet) {
		if rec != nil {
			return rec.dest()
		}
		return s.ar.g, &s.ar.net
	}

	// θ sweep over the content-aggregation network Gc (Algorithm 1,
	// lines 5-10). The sweep is driven by integer step index so float
	// accumulation cannot skip or double the final θ2 round.
	for _, theta := range sweepThetas(s.params) {
		if moved >= stats.MaxFlow {
			break
		}
		if overDeadline() {
			stats.Degraded = true
			stats.DeadlineExceeded = true
			ro.emit("deadline", obs.F("theta", theta))
			break
		}
		tIter := ro.now()
		g, shell := dest()
		nb := s.buildNetworkIn(g, shell, theta, over, under, phiOver, phiUnder, dcache, clusterOf, !s.params.DisableGuides)
		stats.DirectEdges += nb.directPairs
		stats.GuideNodes += nb.guideNodes
		var extracted int64
		var paths int64
		var recovered int64
		if len(nb.edges) > 0 {
			res, err := safeSolve(nb.g, nb.source, nb.sink, stats.MaxFlow-moved, s.params.Algorithm)
			if err != nil {
				// Recoverable: the iteration's flow stays unmoved and
				// falls back to the CDN with the rest of the surplus.
				stats.Degraded = true
				stats.RecoveredErrors++
				recovered = 1
			} else {
				extracted = s.extractFlows(nb, flows, phiOver, phiUnder)
				if extracted != res.Flow {
					// Attribution mismatch: trust the extracted flows (they
					// reflect the edges actually carrying flow, and φ was
					// decremented to match) and degrade instead of failing.
					stats.Degraded = true
					stats.RecoveredErrors++
					recovered = 1
				}
				paths = int64(res.Paths)
				mcmfPaths += paths
				moved += extracted
			}
		}
		if rec != nil {
			rec.capture(theta, false, extracted, paths)
		}
		stats.Iterations++
		ro.emit("theta-iter",
			obs.F("theta", theta),
			obs.I("direct_pairs", int64(nb.directPairs)),
			obs.I("guide_nodes", int64(nb.guideNodes)),
			obs.I("moved", extracted),
			obs.I("paths", paths),
			obs.I("recovered", recovered),
			obs.D("dur", ro.since(tIter)))
	}

	// Residual pass on the plain balancing network Gd (Algorithm 1,
	// lines 11-13): move whatever the guided rounds left behind.
	if moved < stats.MaxFlow && !overDeadline() {
		tRes := ro.now()
		g, shell := dest()
		nb := s.buildNetworkIn(g, shell, s.params.Theta2, over, under, phiOver, phiUnder, dcache, nil, false)
		var extracted int64
		var paths int64
		var recovered int64
		if len(nb.edges) > 0 {
			res, err := safeSolve(nb.g, nb.source, nb.sink, stats.MaxFlow-moved, s.params.Algorithm)
			if err != nil {
				stats.Degraded = true
				stats.RecoveredErrors++
				recovered = 1
			} else {
				extracted = s.extractFlows(nb, flows, phiOver, phiUnder)
				if extracted != res.Flow {
					stats.Degraded = true
					stats.RecoveredErrors++
					recovered = 1
				}
				paths = int64(res.Paths)
				mcmfPaths += paths
				moved += extracted
			}
		}
		if rec != nil {
			rec.capture(s.params.Theta2, true, extracted, paths)
		}
		ro.emit("residual-pass",
			obs.I("direct_pairs", int64(nb.directPairs)),
			obs.I("moved", extracted),
			obs.I("paths", paths),
			obs.I("recovered", recovered),
			obs.D("dur", ro.since(tRes)))
	} else if moved < stats.MaxFlow && overDeadline() {
		stats.Degraded = true
		stats.DeadlineExceeded = true
		ro.emit("deadline", obs.F("theta", s.params.Theta2))
	}
	stats.MovedFlow = moved
	return mcmfPaths
}

// finishRound runs the round's tail shared by the full θ-sweep path and
// the MaxFlow==0 fast path: Procedure 1 replication followed by
// assemblePlan.
func (s *Scheduler) finishRound(
	d *Demand,
	stats *Stats,
	ro *roundObs,
	over, under []int,
	phiOver []int64,
	flows map[int64]int64,
	svc []int64,
	cache []int,
	dcache *distCache,
	mcmfPaths int64,
	quiet bool,
) (*Plan, error) {
	// Procedure 1: realise flows into per-video redirects and build
	// the placement.
	tRep := ro.now()
	redirects, placement, unrealized, replicas, err := s.replicate(d, flows, svc, cache)
	if err != nil {
		return nil, err
	}
	stats.UnrealizedFlow = unrealized
	stats.Replicas = replicas
	stats.Phases.Replicate = ro.since(tRep)
	return s.assemblePlan(stats, ro, over, under, phiOver, flows, redirects, placement, dcache, mcmfPaths, quiet), nil
}

// assemblePlan runs the round's final accounting — CDN overflow, the
// realised-flow reconciliation, Ω1 — publishes the round's metrics
// (unless quiet), and assembles the Plan. It is shared by the full and
// delta paths, so both produce byte-identical canonical output from
// identical inputs.
func (s *Scheduler) assemblePlan(
	stats *Stats,
	ro *roundObs,
	over, under []int,
	phiOver []int64,
	flows map[int64]int64,
	redirects []Redirect,
	placement []similarity.Set,
	dcache *distCache,
	mcmfPaths int64,
	quiet bool,
) *Plan {
	m := len(s.world.Hotspots)

	// Whatever surplus remains unmovable within θ2 goes to the origin
	// CDN server (Algorithm 1, line 14).
	overflow := make([]int64, m)
	for _, i := range over {
		overflow[i] = phiOver[i]
	}

	// Unrealised flow stays at its overloaded source and therefore
	// also falls back to the CDN.
	realized := make(map[int64]int64, len(flows))
	for _, r := range redirects {
		realized[pairKey(int(r.From), int(r.To), m)] += r.Count
	}
	for k, f := range flows {
		if miss := f - realized[k]; miss > 0 {
			i, _ := unpackPair(k, m)
			overflow[i] += miss
		}
	}
	for _, o := range overflow {
		stats.StrandedToCDN += o
	}
	stats.Omega1Km = s.omega1(redirects, stats.StrandedToCDN, over, under, dcache)

	if stats.Degraded {
		ro.emit("degraded",
			obs.I("recovered_errors", int64(stats.RecoveredErrors)),
			obs.I("deadline_exceeded", boolAttr(stats.DeadlineExceeded)))
	}
	ro.emit("round",
		obs.I("max_flow", stats.MaxFlow),
		obs.I("moved", stats.MovedFlow),
		obs.I("unrealized", stats.UnrealizedFlow),
		obs.I("stranded", stats.StrandedToCDN),
		obs.I("replicas", stats.Replicas),
		obs.I("redirects", int64(len(redirects))),
		obs.I("iterations", int64(stats.Iterations)),
		obs.I("mcmf_paths", mcmfPaths),
		obs.F("omega1_km", stats.Omega1Km),
		obs.I("degraded", boolAttr(stats.Degraded)),
		obs.D("cluster_dur", stats.Phases.Cluster),
		obs.D("balance_dur", stats.Phases.Balance),
		obs.D("replicate_dur", stats.Phases.Replicate))
	if !quiet {
		publishRound(s.params.Obs, stats, mcmfPaths)
	}

	return &Plan{
		Flows:         flowEdges(flows, realized, m),
		Redirects:     redirects,
		Placement:     placement,
		OverflowToCDN: overflow,
		Degraded:      stats.Degraded,
		Stats:         *stats,
		Events:        ro.events,
	}
}

// boolAttr renders a bool as a 0/1 event attribute value.
func boolAttr(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// omega1 computes the round's realised access-latency cost Ω1: every
// redirected request pays the inter-hotspot distance (reusing the
// round's distance cache, so no extra geo evaluations), every
// CDN-stranded request pays CDNDistanceKm, and locally served requests
// pay 0. The summation order is fixed (redirect slice order, then the
// stranded total), keeping the value deterministic.
func (s *Scheduler) omega1(redirects []Redirect, stranded int64, over, under []int, dcache *distCache) float64 {
	var sum float64
	if len(redirects) > 0 {
		oIdx := make(map[int]int, len(over))
		for oi, h := range over {
			oIdx[h] = oi
		}
		uIdx := make(map[int]int, len(under))
		for uj, h := range under {
			uIdx[h] = uj
		}
		for _, r := range redirects {
			sum += float64(r.Count) * dcache.at(oIdx[int(r.From)], uIdx[int(r.To)])
		}
	}
	return sum + float64(stranded)*s.world.CDNDistanceKm
}

// worldCacheCapacities returns the nominal per-hotspot cache
// capacities.
func (s *Scheduler) worldCacheCapacities() []int {
	cache := make([]int, len(s.world.Hotspots))
	for h := range s.world.Hotspots {
		cache[h] = s.world.Hotspots[h].CacheCapacity
	}
	return cache
}

// sweepThetas returns the θ values Algorithm 1's sweep visits:
// Theta1 + k·DeltaD for k = 0..K with K = ⌊(Theta2-Theta1)/DeltaD⌋
// (computed with a small tolerance so an exactly divisible range
// includes Theta2). Each θ is derived from the step index by one
// multiplication — never by accumulating DeltaD — so rounding error
// stays at one ulp per value instead of growing with the iteration
// count, which previously could skip (or, below θ2, double) the final
// θ2 round on long sweeps. Values are clamped to Theta2 so the last
// round is bounded by exactly the configured threshold.
func sweepThetas(p Params) []float64 {
	if p.SingleShotTheta {
		return []float64{p.Theta2}
	}
	span := p.Theta2 - p.Theta1
	// Relative tolerance: treat Theta1 + K·DeltaD as reaching Theta2
	// when it falls short by under half an ulp-scale of the division.
	k := int(math.Floor(span/p.DeltaD + 1e-9))
	if k < 0 {
		k = 0
	}
	out := make([]float64, k+1)
	for i := 0; i <= k; i++ {
		th := p.Theta1 + float64(i)*p.DeltaD
		if th > p.Theta2 {
			th = p.Theta2
		}
		out[i] = th
	}
	return out
}

// extractFlows reads attributed edge flows out of a solved network,
// accumulates them into flows, and decrements the remaining φ values.
// It returns the total units extracted.
func (s *Scheduler) extractFlows(nb *flowNet, flows map[int64]int64, phiOver, phiUnder []int64) int64 {
	m := len(s.world.Hotspots)
	var total int64
	for _, ae := range nb.edges {
		f := nb.g.Flow(ae.id)
		if f <= 0 {
			continue
		}
		flows[pairKey(ae.i, ae.j, m)] += f
		phiOver[ae.i] -= f
		phiUnder[ae.j] -= f
		total += f
	}
	return total
}

// flowEdges converts the realised flow map into a deterministic slice,
// keeping only the realised amounts (flows Procedure 1 backed out are
// reported via OverflowToCDN instead).
func flowEdges(flows, realized map[int64]int64, m int) []FlowEdge {
	keys := make([]int64, 0, len(flows))
	for k := range flows {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	out := make([]FlowEdge, 0, len(keys))
	for _, k := range keys {
		amt := realized[k]
		if amt <= 0 {
			continue
		}
		i, j := unpackPair(k, m)
		out = append(out, FlowEdge{
			From:   trace.HotspotID(i),
			To:     trace.HotspotID(j),
			Amount: amt,
		})
	}
	return out
}

// worldCapacities returns the nominal per-hotspot service capacities.
func (s *Scheduler) worldCapacities() []int64 {
	svc := make([]int64, len(s.world.Hotspots))
	for h := range s.world.Hotspots {
		svc[h] = s.world.Hotspots[h].ServiceCapacity
	}
	return svc
}
