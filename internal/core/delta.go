package core

// Incremental delta scheduling (DESIGN.md §12).
//
// RBCAer's per-slot cost is dominated by three stages whose inputs drift
// slowly between adjacent slots: content clustering (signatures + the
// O(m²) Jaccard matrix), the θ-swept MCMF solve, and Procedure 1's
// replication walk. Delta mode retains the previous round's inputs and
// sub-results and re-computes only what an exact input diff invalidates.
//
// The reuse rules are exact memoisation, never approximation: a retained
// sub-result is reused only when every input it depends on is provably
// unchanged, and everything else is recomputed cold through the
// identical code path. MCMF optima are not unique, so the sweep is never
// "warm-started and re-solved" — either the whole sweep's inputs are
// unchanged (partition, distances, clusters, θ schedule) and the
// recorded flow solutions are replayed verbatim onto the retained
// per-iteration graphs via residual patching (mcmf.SetFlows), or the
// sweep runs cold. This makes delta plans digest-identical to full
// solves by construction; Params.DeltaVerify additionally shadow-runs
// the full solver and compares Plan.Digest at runtime.

import (
	"fmt"
	"slices"

	"repro/internal/cluster"
	"repro/internal/mcmf"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/similarity"
	"repro/internal/trace"
)

// sweepIter is one recorded θ-sweep iteration: the network it built (in
// its own retained graph) and the flow solution the solver found on it.
type sweepIter struct {
	g         *mcmf.Graph
	net       flowNet
	flows     []int64 // per-edge flow snapshot, EdgeID order
	theta     float64
	residual  bool
	extracted int64
	paths     int64
}

// sweepRecord is the retained θ sweep of the last non-replayed round:
// every iteration's network and solution, plus the round inputs a
// replay must match (partition, distance cache, cluster epoch).
type sweepRecord struct {
	iters []sweepIter
	n     int // live iterations of the recorded round

	// flows is the recorded round's accumulated (i,j) flow map, owned
	// by the record (copied, never aliased): replicateDelta compares
	// the current round's flows against it to skip stage A.
	flows map[int64]int64

	// over/under/dcache are the recorded round's partition and distance
	// cache, retained by reference (partition allocates fresh slices
	// every round, so nothing else mutates them).
	over, under []int
	dcache      *distCache
	// clusterEpoch is the delta state's cluster epoch when the round
	// was recorded.
	clusterEpoch int64
	// valid reports the recorded round completed non-degraded; degraded
	// rounds (recovered solver errors) are never replayed.
	valid bool
}

// begin resets the record for a new round's captures, retaining the
// per-iteration graphs and storage.
func (r *sweepRecord) begin() { r.n = 0 }

// dest returns the graph and result shell the next iteration should
// build into, growing the iteration table on demand.
func (r *sweepRecord) dest() (*mcmf.Graph, *flowNet) {
	if r.n == len(r.iters) {
		r.iters = append(r.iters, sweepIter{g: mcmf.NewGraph(0)})
	}
	it := &r.iters[r.n]
	if it.g == nil {
		it.g = mcmf.NewGraph(0)
	}
	return it.g, &it.net
}

// capture records the iteration just solved in the slot dest() returned:
// its per-edge flow snapshot and extraction summary.
func (r *sweepRecord) capture(theta float64, residual bool, extracted, paths int64) {
	it := &r.iters[r.n]
	it.flows = it.net.g.AppendFlows(it.flows[:0])
	it.theta = theta
	it.residual = residual
	it.extracted = extracted
	it.paths = paths
	r.n++
}

// captureRound records the round-level replay preconditions.
func (r *sweepRecord) captureRound(over, under []int, dcache *distCache, clusterEpoch int64, valid bool) {
	r.over, r.under = over, under
	r.dcache = dcache
	r.clusterEpoch = clusterEpoch
	r.valid = valid
}

// retainFlows copies the round's accumulated flow map into the record.
func (r *sweepRecord) retainFlows(flows map[int64]int64) {
	if r.flows == nil {
		r.flows = make(map[int64]int64, len(flows))
	} else {
		clear(r.flows)
	}
	for k, f := range flows {
		r.flows[k] = f
	}
}

// deltaState is the scheduler's retained cross-round memoisation state.
// It is dropped wholesale (next round solves cold) on any round error or
// shadow-verification mismatch.
type deltaState struct {
	haveState bool

	// Retained round inputs. demand is retained BY REFERENCE — the
	// documented delta-mode caller contract forbids mutating a Demand
	// after passing it to ScheduleRound. svc and cache are copied.
	demand *Demand
	svc    []int64
	cache  []int

	// Per-round dirty flags, rewritten by diff each round.
	demandDirty []bool
	svcDirty    []bool
	cacheDirty  []bool
	dirtyList   []int

	// Signature dirt accumulates across rounds until a clustering round
	// consumes it (fast-path rounds skip clustering entirely, so their
	// dirt must survive into the next clustered round).
	sigDirty     []bool
	sigDirtyList []int

	// Memoised clustering state: content signatures, the full Jaccard
	// distance matrix, and the current cut. clusterEpoch bumps only
	// when the cut's content actually changes.
	sets         []similarity.Set
	dist         [][]float64
	clusterOf    []int
	nClusters    int
	clusterEpoch int64

	// rec is the recorded θ sweep of the last non-replayed round.
	rec sweepRecord

	// Retained replication outputs of the previous round. placement
	// rows are aliased into served plans, which treat them as
	// immutable. outFoot/inFoot are the per-hotspot redirect footprints
	// (video → count redirected out of / into the hotspot): the exact
	// dirty test for fill-row reuse and the reconstruction basis for
	// patched rows when stage A is skipped.
	redirects  []Redirect
	placement  []similarity.Set
	unrealized int64
	outFoot    []map[trace.VideoID]int64
	inFoot     []map[trace.VideoID]int64

	// sinceFull counts rounds since the last full solve, driving the
	// FullSolveEvery periodic fallback.
	sinceFull int
}

func newDeltaState(m int) *deltaState {
	return &deltaState{
		demandDirty: make([]bool, m),
		svcDirty:    make([]bool, m),
		cacheDirty:  make([]bool, m),
		sigDirty:    make([]bool, m),
		svc:         make([]int64, m),
		cache:       make([]int, m),
	}
}

// DeltaStats are the scheduler's cumulative incremental-scheduling
// counters. They survive retained-state drops (errors, verify
// mismatches) for the lifetime of the Scheduler.
type DeltaStats struct {
	// Rounds counts every round scheduled in delta mode, including
	// fallbacks.
	Rounds int64
	// Fallbacks counts drift and periodic full solves (the cold first
	// round is not a fallback).
	Fallbacks int64
	// SweepReplays counts rounds that reused the recorded θ-sweep flow
	// solution instead of re-solving.
	SweepReplays int64
	// PatchedRows is the total number of per-hotspot plan rows rebuilt
	// by delta rounds.
	PatchedRows int64
	// VerifyMismatches counts DeltaVerify digest mismatches (each drops
	// the retained state and serves the full plan).
	VerifyMismatches int64
}

// DeltaStats reports the scheduler's cumulative delta counters.
func (s *Scheduler) DeltaStats() DeltaStats { return s.deltaTotals }

// scheduleDelta is the delta-mode round entry: diff the inputs against
// the retained snapshot, pick full or delta, and verify if asked.
func (s *Scheduler) scheduleDelta(d *Demand, svc []int64, cache []int) (*Plan, error) {
	m := len(s.world.Hotspots)
	if s.delta == nil {
		s.delta = newDeltaState(m)
	}
	ds := s.delta

	reason := "cold"
	totalsOrSvcChanged := false
	if ds.haveState {
		ds.sinceFull++
		totalsOrSvcChanged = ds.diff(d, svc, cache)
		switch {
		case s.params.FullSolveEvery > 0 && ds.sinceFull >= s.params.FullSolveEvery:
			reason = "periodic"
		case float64(len(ds.dirtyList)) > s.params.DeltaThreshold*float64(m):
			reason = "drift"
		default:
			reason = ""
		}
	}

	var plan *Plan
	var err error
	if reason != "" {
		plan, err = s.deltaFull(d, svc, cache, reason)
	} else {
		plan, err = s.deltaRound(d, svc, cache, totalsOrSvcChanged)
	}
	if err != nil {
		// Drop the retained state: the next round re-solves cold.
		s.delta = nil
		return nil, err
	}
	s.deltaTotals.Rounds++
	if s.params.DeltaVerify && plan.Stats.DeltaRound {
		plan = s.deltaVerifyPlan(d, svc, cache, plan)
	}
	publishDelta(s.params.Obs, &plan.Stats)
	return plan, nil
}

// deltaFull runs a recorded full solve (cold start, drift fallback, or
// periodic fallback) and retains everything the next delta round needs.
func (s *Scheduler) deltaFull(d *Demand, svc []int64, cache []int, reason string) (*Plan, error) {
	ds := s.delta
	ds.rec.begin()
	plan, err := s.scheduleFull(d, svc, cache, &ds.rec, false)
	if err != nil {
		return nil, err
	}
	if reason != "cold" {
		plan.Stats.DeltaFallback = true
		s.deltaTotals.Fallbacks++
	}
	// s.ar.flows still holds the round's accumulated flow map (the next
	// round clears it on reuse).
	ds.rec.retainFlows(s.ar.flows)
	ds.retain(d, svc, cache, plan)
	ds.rebuildFootprints(plan.Redirects)
	ds.sinceFull = 0
	return plan, nil
}

// deltaRound runs one incremental round: memoised clustering, sweep
// replay (or cold sweep) and patch-based replication, all through the
// same assembly tail as the full path.
func (s *Scheduler) deltaRound(d *Demand, svc []int64, cache []int, totalsOrSvcChanged bool) (*Plan, error) {
	ds := s.delta
	rec := &ds.rec
	ro := newRoundObs(s.params)

	over, under, phiOver, phiUnder := s.partition(d, svc)
	var stats Stats
	stats.DeltaRound = true
	stats.Overloaded = len(over)
	stats.Underutilized = len(under)
	var sumOver, sumUnder int64
	for _, i := range over {
		sumOver += phiOver[i]
	}
	for _, j := range under {
		sumUnder += phiUnder[j]
	}
	stats.MaxFlow = sumOver
	if sumUnder < stats.MaxFlow {
		stats.MaxFlow = sumUnder
	}

	flows := s.ar.emptyFlows()
	var mcmfPaths int64
	replayed := false
	dcache := &distCache{}

	if stats.MaxFlow == 0 {
		// Mirror the full path's fast path: no clustering, no sweep. A
		// zero-iteration record keeps the next unchanged round
		// replayable.
		rec.begin()
		rec.captureRound(over, under, dcache, ds.clusterEpoch, true)
	} else {
		var clusterOf []int
		if !s.params.DisableGuides {
			t0 := ro.now()
			nClusters := 0
			var err error
			clusterOf, nClusters, err = ds.refreshClusters(s, d)
			if err != nil {
				return nil, err
			}
			stats.Clusters = nClusters
			stats.Phases.Cluster = ro.since(t0)
			ro.emit("cluster",
				obs.I("clusters", int64(nClusters)),
				obs.I("overloaded", int64(stats.Overloaded)),
				obs.I("underutilized", int64(stats.Underutilized)),
				obs.I("max_flow", stats.MaxFlow),
				obs.D("dur", stats.Phases.Cluster))
		}

		tBalance := ro.now()
		dcache = rec.dcache
		if dcache == nil || !slices.Equal(over, rec.over) || !slices.Equal(under, rec.under) {
			dcache = s.newDistCache(over, under, par.Workers(s.params.Workers))
		}
		stats.DistanceCalcs = dcache.calcs()

		canReplay := rec.valid && !totalsOrSvcChanged && rec.clusterEpoch == ds.clusterEpoch
		if canReplay {
			if err := s.replaySweep(rec, flows, phiOver, phiUnder, &stats, &mcmfPaths); err != nil {
				// Cannot happen by construction (the recorded networks
				// and solutions match this round's inputs exactly);
				// recover defensively by re-running the round cold.
				over, under, phiOver, phiUnder = s.partition(d, svc)
				flows = s.ar.emptyFlows()
				mcmfPaths = 0
				stats.MovedFlow, stats.Iterations, stats.DirectEdges, stats.GuideNodes = 0, 0, 0, 0
				canReplay = false
			} else {
				stats.SweepReplayed = true
				replayed = true
				s.deltaTotals.SweepReplays++
			}
		}
		if !canReplay {
			rec.begin()
			mcmfPaths = s.runSweep(over, under, phiOver, phiUnder, dcache, clusterOf, flows, &stats, &ro, rec, func() bool { return false })
			rec.captureRound(over, under, dcache, ds.clusterEpoch, !stats.Degraded)
		}
		stats.Phases.Balance = ro.since(tBalance)
	}

	tRep := ro.now()
	redirects, placement, unrealized, replicas, patched, skippedA, err := s.replicateDelta(d, flows, svc, cache)
	if err != nil {
		return nil, err
	}
	stats.UnrealizedFlow = unrealized
	stats.Replicas = replicas
	stats.PatchedRows = patched
	stats.Phases.Replicate = ro.since(tRep)
	s.deltaTotals.PatchedRows += int64(patched)

	ro.emit("delta",
		obs.I("patched_rows", int64(patched)),
		obs.I("sweep_replayed", boolAttr(stats.SweepReplayed)),
		obs.I("skipped_stage_a", boolAttr(skippedA)))
	plan := s.assemblePlan(&stats, &ro, over, under, phiOver, flows, redirects, placement, dcache, mcmfPaths, false)

	if !replayed {
		rec.retainFlows(flows)
	}
	ds.retain(d, svc, cache, plan)
	if !skippedA {
		ds.rebuildFootprints(plan.Redirects)
	}
	return plan, nil
}

// replaySweep imposes each recorded iteration's flow solution onto its
// retained network and re-extracts it through the identical extraction
// path, accumulating into flows and the φ vectors. The recorded round's
// networks are exactly the ones this round's solve would build (the
// caller certified partition, distances, and clusters unchanged), so
// the result is what a fresh solve would produce, without solving.
func (s *Scheduler) replaySweep(rec *sweepRecord, flows map[int64]int64, phiOver, phiUnder []int64, stats *Stats, mcmfPaths *int64) error {
	var moved int64
	for k := 0; k < rec.n; k++ {
		it := &rec.iters[k]
		if err := it.net.g.SetFlows(it.flows); err != nil {
			return fmt.Errorf("core: delta replay iteration %d: %w", k, err)
		}
		extracted := s.extractFlows(&it.net, flows, phiOver, phiUnder)
		if extracted != it.extracted {
			return fmt.Errorf("core: delta replay iteration %d extracted %d, recorded %d", k, extracted, it.extracted)
		}
		moved += extracted
		*mcmfPaths += it.paths
		if !it.residual {
			stats.DirectEdges += it.net.directPairs
			stats.GuideNodes += it.net.guideNodes
			stats.Iterations++
		}
	}
	stats.MovedFlow = moved
	return nil
}

// replicateDelta is the patch-based Procedure 1: it reuses the previous
// round's redirects when the flows and every flow participant's inputs
// are unchanged (stage A skip), and rebuilds only the per-hotspot fill
// rows whose inputs — demand, capacities, or redirect footprint —
// changed, aliasing the retained rows for everything else.
func (s *Scheduler) replicateDelta(d *Demand, flows map[int64]int64, svc []int64, cache []int) (
	redirects []Redirect,
	placement []similarity.Set,
	unrealized int64,
	replicas int64,
	patched int,
	skippedA bool,
	err error,
) {
	ds := s.delta
	m := len(s.world.Hotspots)

	// Stage A (realizeFlows) depends on exactly: the flow map, the flow
	// sources' demand rows, and the flow targets' cache capacities. If
	// all are unchanged its outputs are unchanged.
	skippedA = flowsEqual(flows, ds.rec.flows)
	if skippedA {
		for k, f := range flows {
			if f <= 0 {
				continue
			}
			i, j := unpackPair(k, m)
			if ds.demandDirty[i] || ds.cacheDirty[j] {
				skippedA = false
				break
			}
		}
	}

	var lv *lambdaView
	var cacheUsed []int
	var stageA []similarity.Set
	var freshOut, freshIn []map[trace.VideoID]int64
	if skippedA {
		redirects = ds.redirects
		unrealized = ds.unrealized
	} else {
		lv = newLambdaView(d, m)
		stageA = make([]similarity.Set, m)
		for h := range stageA {
			stageA[h] = make(similarity.Set)
		}
		cacheUsed = make([]int, m)
		redirects, unrealized, _ = s.realizeFlows(flows, cache, lv, stageA, cacheUsed)
		if unrealized < 0 {
			return nil, nil, 0, 0, 0, false, fmt.Errorf("core: negative unrealized flow %d (bug)", unrealized)
		}
		freshOut, freshIn = footprints(m, redirects)
	}

	serveBudget := s.fillBudgets(svc, redirects)
	placement = make([]similarity.Set, m)
	var scratch []fillCand
	for h := 0; h < m; h++ {
		dirty := ds.demandDirty[h] || ds.svcDirty[h] || ds.cacheDirty[h]
		if !skippedA && !dirty {
			dirty = !footEqual(freshOut[h], ds.outFoot[h]) || !footEqual(freshIn[h], ds.inFoot[h])
		}
		if !dirty {
			// Every input of this row — demand, svc, cache, redirect
			// footprint in and out — is unchanged, so a rebuild would
			// reproduce the retained row exactly; alias it.
			placement[h] = ds.placement[h]
			continue
		}
		patched++
		if skippedA {
			// Reconstruct the row's post-stage-A state from the
			// retained footprints: stage A placed exactly the inbound
			// redirect videos, and consumed outFoot[h] from the local
			// demand.
			pl := make(similarity.Set, len(ds.inFoot[h]))
			for v := range ds.inFoot[h] {
				pl.Add(int(v))
			}
			_, scratch = s.fillHotspot(d.PerVideo[h], ds.outFoot[h], pl, pl.Len(), cache[h], serveBudget[h], scratch)
			placement[h] = pl
		} else {
			pl := stageA[h]
			_, scratch = s.fillHotspot(lv.row(h), nil, pl, cacheUsed[h], cache[h], serveBudget[h], scratch)
			placement[h] = pl
		}
	}
	for h := 0; h < m; h++ {
		replicas += int64(placement[h].Len())
	}
	return redirects, placement, unrealized, replicas, patched, skippedA, nil
}

// diff compares the round's inputs against the retained snapshot,
// rewriting the per-hotspot dirty flags and accumulating signature
// dirt. It reports whether any demand total or service capacity changed
// — the condition under which the over/under partition (and hence the
// sweep's networks) may differ from the recorded round's.
func (ds *deltaState) diff(d *Demand, svc []int64, cache []int) (totalsOrSvcChanged bool) {
	m := len(d.Totals)
	ds.dirtyList = ds.dirtyList[:0]
	for h := 0; h < m; h++ {
		demandChanged := d.Totals[h] != ds.demand.Totals[h] ||
			!demandRowEqual(d.PerVideo[h], ds.demand.PerVideo[h])
		ds.demandDirty[h] = demandChanged
		ds.svcDirty[h] = svc[h] != ds.svc[h]
		ds.cacheDirty[h] = cache[h] != ds.cache[h]
		if d.Totals[h] != ds.demand.Totals[h] || ds.svcDirty[h] {
			totalsOrSvcChanged = true
		}
		if demandChanged && !ds.sigDirty[h] {
			ds.sigDirty[h] = true
			ds.sigDirtyList = append(ds.sigDirtyList, h)
		}
		if demandChanged || ds.svcDirty[h] || ds.cacheDirty[h] {
			ds.dirtyList = append(ds.dirtyList, h)
		}
	}
	return totalsOrSvcChanged
}

// refreshClusters is the memoised contentClusters: recompute only the
// signatures marked dirty since the last clustering round, patch the
// retained distance matrix for the signatures that actually changed,
// and re-cut the dendrogram only then. The cluster epoch bumps only
// when the resulting cut differs, which is what invalidates sweep
// replay.
func (ds *deltaState) refreshClusters(s *Scheduler, d *Demand) ([]int, int, error) {
	m := len(s.world.Hotspots)
	counts := s.ar.counts
	signature := func(h int) (similarity.Set, error) {
		clear(counts)
		for v, n := range d.PerVideo[h] {
			counts[int(v)] = n
		}
		set, err := similarity.TopFraction(counts, s.params.TopFraction)
		if err != nil {
			return nil, fmt.Errorf("core: content signature of hotspot %d: %w", h, err)
		}
		return set, nil
	}

	if ds.sets == nil {
		// Cold: compute everything, exactly like contentClusters.
		ds.sets = make([]similarity.Set, m)
		for h := 0; h < m; h++ {
			set, err := signature(h)
			if err != nil {
				return nil, 0, err
			}
			ds.sets[h] = set
		}
		ds.sigDirtyList = ds.sigDirtyList[:0]
		for h := range ds.sigDirty {
			ds.sigDirty[h] = false
		}
		ds.dist = similarity.DistanceMatrix(ds.sets, par.Workers(s.params.Workers))
		if err := ds.recut(s); err != nil {
			return nil, 0, err
		}
		return ds.clusterOf, ds.nClusters, nil
	}

	var changed []int
	for _, h := range ds.sigDirtyList {
		set, err := signature(h)
		if err != nil {
			return nil, 0, err
		}
		if !setsEqual(set, ds.sets[h]) {
			ds.sets[h] = set
			changed = append(changed, h)
		}
		ds.sigDirty[h] = false
	}
	ds.sigDirtyList = ds.sigDirtyList[:0]
	if len(changed) == 0 {
		return ds.clusterOf, ds.nClusters, nil
	}

	// Patch the matrix rows of the changed signatures with the map
	// kernel (documented exact-identical to DistanceMatrix's bitset
	// kernel); above ~m/8 changed rows the full parallel recompute is
	// cheaper than m serial evaluations per row.
	if len(changed)*8 > m {
		ds.dist = similarity.DistanceMatrix(ds.sets, par.Workers(s.params.Workers))
	} else {
		for _, h := range changed {
			row := ds.dist[h]
			for j := 0; j < m; j++ {
				if j == h {
					row[j] = 0
					continue
				}
				v := similarity.JaccardDistance(ds.sets[h], ds.sets[j])
				row[j] = v
				ds.dist[j][h] = v
			}
		}
	}
	if err := ds.recut(s); err != nil {
		return nil, 0, err
	}
	return ds.clusterOf, ds.nClusters, nil
}

// recut re-runs the dendrogram cut on the retained distance matrix and
// bumps the cluster epoch only if the cut's content changed.
// cluster.AgglomerativeMatrix does not modify its input, so the
// retained matrix survives the call.
func (ds *deltaState) recut(s *Scheduler) error {
	dendro, err := cluster.AgglomerativeMatrix(ds.dist, s.params.Linkage)
	if err != nil {
		return fmt.Errorf("core: clustering hotspots: %w", err)
	}
	groups := dendro.Cut(s.params.ClusterCut)
	clusterOf := make([]int, len(ds.dist))
	for k, grp := range groups {
		for _, h := range grp {
			clusterOf[h] = k
		}
	}
	if ds.clusterOf == nil || ds.nClusters != len(groups) || !slices.Equal(clusterOf, ds.clusterOf) {
		ds.clusterOf = clusterOf
		ds.nClusters = len(groups)
		ds.clusterEpoch++
	}
	return nil
}

// retain snapshots the round's inputs and replication outputs.
func (ds *deltaState) retain(d *Demand, svc []int64, cache []int, plan *Plan) {
	ds.demand = d
	copy(ds.svc, svc)
	copy(ds.cache, cache)
	ds.redirects = plan.Redirects
	ds.placement = plan.Placement
	ds.unrealized = plan.Stats.UnrealizedFlow
	ds.haveState = true
}

// rebuildFootprints recomputes the per-hotspot redirect footprints.
func (ds *deltaState) rebuildFootprints(redirects []Redirect) {
	m := len(ds.demandDirty)
	ds.outFoot, ds.inFoot = footprints(m, redirects)
}

// deltaVerifyPlan shadow-runs the full solver (quiet: no events, no
// metrics) and compares plan digests. On mismatch the full plan wins
// and the retained state is dropped.
func (s *Scheduler) deltaVerifyPlan(d *Demand, svc []int64, cache []int, plan *Plan) *Plan {
	full, err := s.scheduleFull(d, svc, cache, nil, true)
	if err != nil || full.Digest() != plan.Digest() {
		s.deltaTotals.VerifyMismatches++
		s.delta = nil
		if s.params.Obs != nil {
			s.params.Obs.Counter("core.delta.verify_mismatch").Inc()
		}
		if err != nil {
			// The shadow itself failed; keep the delta plan but start
			// cold next round.
			return plan
		}
		full.Stats.DeltaFallback = true
		return full
	}
	return plan
}

// publishDelta folds one delta-mode round's counters into the registry.
func publishDelta(r *obs.Registry, st *Stats) {
	if r == nil {
		return
	}
	if st.DeltaRound {
		r.Counter("core.delta.rounds").Inc()
		if st.SweepReplayed {
			r.Counter("core.delta.sweep_replays").Inc()
		}
		r.Counter("core.delta.patched_rows").Add(int64(st.PatchedRows))
	}
	if st.DeltaFallback {
		r.Counter("core.delta.fallbacks").Inc()
	}
}

// footprints builds the per-hotspot out/in redirect footprints
// (video → count) of a redirect set.
func footprints(m int, redirects []Redirect) (out, in []map[trace.VideoID]int64) {
	out = make([]map[trace.VideoID]int64, m)
	in = make([]map[trace.VideoID]int64, m)
	for _, r := range redirects {
		o := out[r.From]
		if o == nil {
			o = make(map[trace.VideoID]int64)
			out[r.From] = o
		}
		o[r.Video] += r.Count
		i := in[r.To]
		if i == nil {
			i = make(map[trace.VideoID]int64)
			in[r.To] = i
		}
		i[r.Video] += r.Count
	}
	return out, in
}

// demandRowEqual reports exact equality of two per-video demand rows.
func demandRowEqual(a, b map[trace.VideoID]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for v, n := range a {
		if bn, ok := b[v]; !ok || bn != n {
			return false
		}
	}
	return true
}

// footEqual reports equality of two footprints (nil equals empty).
func footEqual(a, b map[trace.VideoID]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for v, n := range a {
		if b[v] != n {
			return false
		}
	}
	return true
}

// flowsEqual reports equality of two (i,j) flow maps (nil equals empty).
func flowsEqual(a, b map[int64]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, f := range a {
		if b[k] != f {
			return false
		}
	}
	return true
}

// setsEqual reports equality of two content signatures.
func setsEqual(a, b similarity.Set) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if !b.Contains(id) {
			return false
		}
	}
	return true
}
