package core

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/similarity"
	"repro/internal/trace"
)

// replicate implements Procedure 1 (ContentAggregationReplication): it
// converts the inter-hotspot flows f_ij into per-video request
// redirects using the content-placement efficiency index
// eu(v,j) = Σ_i min(f_ij, λ_iv), placing redirected videos at their
// targets, and then greedily fills the remaining cache space with
// locally demanded videos ranked by the offload efficiency index
// el(v,i) until caches are full or the replication budget BPeak is
// reached.
//
// It returns the redirects, the placement y, the amount of flow that
// could not be realised into concrete redirects (no matching demand or
// no cache space at the target), and the total number of replicas.
// cache holds the round's effective per-hotspot cache capacities
// (nominal or degraded).
func (s *Scheduler) replicate(d *Demand, flows map[int64]int64, svc []int64, cache []int) (
	redirects []Redirect,
	placement []similarity.Set,
	unrealized int64,
	replicas int64,
	err error,
) {
	m := len(s.world.Hotspots)
	placement = make([]similarity.Set, m)
	for h := range placement {
		placement[h] = make(similarity.Set)
	}
	cacheUsed := make([]int, m)
	lv := newLambdaView(d, m)

	redirects, unrealized, replicas = s.realizeFlows(flows, cache, lv, placement, cacheUsed)
	serveBudget := s.fillBudgets(svc, redirects)

	if s.params.BPeak > 0 {
		// Greedy local fill (Procedure 1, lines 14-19): replicate the
		// highest remaining local demand el(v, i) = λ_iv until caches
		// fill or the budget runs out. BPeak is a single global budget
		// consumed in global (count, hotspot, video) order, so the rows
		// cannot be decomposed — keep the global walk.
		type localDemand struct {
			hotspot int
			video   trace.VideoID
			count   int64
		}
		var fill []localDemand
		for i := 0; i < m; i++ {
			if cacheUsed[i] >= cache[i] {
				continue
			}
			for v, n := range lv.row(i) {
				if n <= 0 || placement[i].Contains(int(v)) {
					continue
				}
				fill = append(fill, localDemand{hotspot: i, video: v, count: n})
			}
		}
		slices.SortFunc(fill, func(a, b localDemand) int {
			switch {
			case a.count != b.count:
				if a.count > b.count {
					return -1
				}
				return 1
			case a.hotspot != b.hotspot:
				return a.hotspot - b.hotspot
			default:
				return int(a.video) - int(b.video)
			}
		})
		for _, ld := range fill {
			if replicas >= s.params.BPeak {
				break
			}
			if serveBudget[ld.hotspot] <= 0 {
				continue
			}
			if cacheUsed[ld.hotspot] >= cache[ld.hotspot] {
				continue
			}
			if placement[ld.hotspot].Contains(int(ld.video)) {
				continue
			}
			placement[ld.hotspot].Add(int(ld.video))
			cacheUsed[ld.hotspot]++
			replicas++
			serveBudget[ld.hotspot] -= ld.count
		}
	} else {
		// Without the global BPeak budget every state the fill walk
		// touches — cache space, serve budget, placement — is
		// per-hotspot, and the global (count desc, hotspot asc, video
		// asc) order restricted to one hotspot is (count desc, video
		// asc): the walk decomposes into independent per-hotspot fills
		// in ascending hotspot order with identical output. The delta
		// path patches exactly these rows.
		var scratch []fillCand
		for i := 0; i < m; i++ {
			var added int64
			added, scratch = s.fillHotspot(lv.row(i), nil, placement[i], cacheUsed[i], cache[i], serveBudget[i], scratch)
			replicas += added
		}
	}

	if unrealized < 0 {
		return nil, nil, 0, 0, fmt.Errorf("core: negative unrealized flow %d (bug)", unrealized)
	}
	return redirects, placement, unrealized, replicas, nil
}

// lambdaView is the remaining-local-demand vector λ_rem of Procedure 1,
// materialised lazily: a hotspot's row is copied (filtered to n > 0)
// only when stage A mutates it; every other hotspot reads the raw
// demand map with non-positive entries filtered at the use sites —
// exactly the set the eager copy would have held. On typical rounds
// only the flow sources (a few dozen of thousands of hotspots) ever
// materialise. The view never mutates the underlying Demand.
type lambdaView struct {
	d   *Demand
	mod []map[trace.VideoID]int64
}

func newLambdaView(d *Demand, m int) *lambdaView {
	return &lambdaView{d: d, mod: make([]map[trace.VideoID]int64, m)}
}

// materialize returns hotspot h's mutable remaining-demand row, copying
// the filtered (n > 0) demand on first use.
func (lv *lambdaView) materialize(h int) map[trace.VideoID]int64 {
	if lv.mod[h] == nil {
		row := make(map[trace.VideoID]int64, len(lv.d.PerVideo[h]))
		for v, n := range lv.d.PerVideo[h] {
			if n > 0 {
				row[v] = n
			}
		}
		lv.mod[h] = row
	}
	return lv.mod[h]
}

// at returns λ_rem for (h, v). Callers treat non-positive values as
// absent, which makes the raw-row read equivalent to the filtered copy.
func (lv *lambdaView) at(h int, v trace.VideoID) int64 {
	if row := lv.mod[h]; row != nil {
		return row[v]
	}
	return lv.d.PerVideo[h][v]
}

// row returns hotspot h's remaining-demand row for read-only iteration:
// the materialised row when stage A touched h, the raw demand map
// otherwise (iterate with an n > 0 guard).
func (lv *lambdaView) row(h int) map[trace.VideoID]int64 {
	if lv.mod[h] != nil {
		return lv.mod[h]
	}
	return lv.d.PerVideo[h]
}

// realizeFlows is stage A of Procedure 1: it converts the inter-hotspot
// flows into per-video redirects in descending eu(v,j) order, placing
// each redirected video at its target. It mutates lv (source rows),
// placement, and cacheUsed (target rows) and returns the redirects, the
// flow it could not realise, and the replicas it placed.
func (s *Scheduler) realizeFlows(
	flows map[int64]int64,
	cache []int,
	lv *lambdaView,
	placement []similarity.Set,
	cacheUsed []int,
) (redirects []Redirect, unrealized int64, replicas int64) {
	m := len(s.world.Hotspots)

	// Remaining flow budget per (i, j) pair.
	remaining := make(map[int64]int64, len(flows))
	var totalFlow int64
	for k, f := range flows {
		if f > 0 {
			remaining[k] = f
			totalFlow += f
		}
	}

	// Per-target source lists (SinktoSource(j) in the paper).
	sourcesOf := make(map[int][]int)
	for k := range remaining {
		i, j := unpackPair(k, m)
		sourcesOf[j] = append(sourcesOf[j], i)
	}
	for j := range sourcesOf {
		sort.Ints(sourcesOf[j])
	}

	// eu(v, j) under the current remaining flow and demand.
	euOf := func(v trace.VideoID, j int) int64 {
		var sum int64
		for _, i := range sourcesOf[j] {
			rem := remaining[pairKey(i, j, m)]
			if rem <= 0 {
				continue
			}
			lam := lv.at(i, v)
			if lam <= 0 {
				continue
			}
			if lam < rem {
				sum += lam
			} else {
				sum += rem
			}
		}
		return sum
	}

	// Seed the lazy max-heap over (v, j) with initial eu values. Every
	// flow source materialises its λ_rem row here, before any read.
	var h euHeap
	for j, srcs := range sourcesOf {
		seen := make(map[trace.VideoID]struct{})
		for _, i := range srcs {
			for v := range lv.materialize(i) {
				if _, dup := seen[v]; dup {
					continue
				}
				seen[v] = struct{}{}
				if eu := euOf(v, j); eu > 0 {
					h.push(euEntry{video: v, target: j, eu: eu})
				}
			}
		}
	}

	remainingTotal := totalFlow
	for len(h) > 0 && remainingTotal > 0 {
		top := h.pop()
		cur := euOf(top.video, top.target)
		if cur <= 0 {
			continue
		}
		if cur < top.eu {
			// Stale priority: requeue with the refreshed value.
			h.push(euEntry{video: top.video, target: top.target, eu: cur})
			continue
		}
		j := top.target
		v := top.video
		// Redirecting v to j requires a replica at j.
		if !placement[j].Contains(int(v)) {
			if cacheUsed[j] >= cache[j] {
				continue // target cache full; this (v, j) is unrealisable
			}
			placement[j].Add(int(v))
			cacheUsed[j]++
			replicas++
		}
		for _, i := range sourcesOf[j] {
			key := pairKey(i, j, m)
			rem := remaining[key]
			if rem <= 0 {
				continue
			}
			row := lv.mod[i] // materialised at seeding
			lam := row[v]
			if lam <= 0 {
				continue
			}
			amt := lam
			if rem < amt {
				amt = rem
			}
			redirects = append(redirects, Redirect{
				From:  trace.HotspotID(i),
				To:    trace.HotspotID(j),
				Video: v,
				Count: amt,
			})
			remaining[key] = rem - amt
			if lam == amt {
				delete(row, v)
			} else {
				row[v] = lam - amt
			}
			remainingTotal -= amt
		}
	}
	return redirects, remainingTotal, replicas
}

// fillBudgets computes the per-hotspot serve budget of the greedy fill.
// Replicating a video the hotspot has no service capacity left to serve
// would add CDN push load with zero serving benefit — this is the role
// of the paper's B_peak bound on the replication loop. We budget each
// hotspot's fill by its serviceable residual demand: service capacity
// minus the inflow reserved by redirects.
func (s *Scheduler) fillBudgets(svc []int64, redirects []Redirect) []int64 {
	over := s.params.FillOverprovision
	if over <= 0 {
		over = 1
	}
	serveBudget := make([]int64, len(svc))
	for i, c := range svc {
		serveBudget[i] = int64(float64(c) * over)
	}
	for _, rd := range redirects {
		serveBudget[rd.To] -= rd.Count
	}
	return serveBudget
}

// fillCand is one candidate of a single hotspot's greedy fill.
type fillCand struct {
	video trace.VideoID
	count int64
}

// fillHotspot runs one hotspot's greedy local fill: remaining local
// demand in (count desc, video asc) order, bounded by cache space and
// the serve budget. base is the hotspot's demand row; minus, when
// non-nil, holds per-video amounts already redirected away (λ − minus
// is the remaining demand — the delta path reconstructs λ_rem this way
// from the retained redirect footprint). Non-positive remaining demand
// and videos already placed are skipped. Returns the replicas added and
// the (possibly grown) candidate scratch for reuse.
func (s *Scheduler) fillHotspot(
	base map[trace.VideoID]int64,
	minus map[trace.VideoID]int64,
	placement similarity.Set,
	used, cacheCap int,
	budget int64,
	scratch []fillCand,
) (int64, []fillCand) {
	if used >= cacheCap || budget <= 0 {
		return 0, scratch
	}
	cands := scratch[:0]
	for v, n := range base {
		if minus != nil {
			n -= minus[v]
		}
		if n <= 0 || placement.Contains(int(v)) {
			continue
		}
		cands = append(cands, fillCand{video: v, count: n})
	}
	slices.SortFunc(cands, func(a, b fillCand) int {
		switch {
		case a.count != b.count:
			if a.count > b.count {
				return -1
			}
			return 1
		default:
			return int(a.video) - int(b.video)
		}
	})
	var added int64
	for _, c := range cands {
		if budget <= 0 || used >= cacheCap {
			break
		}
		placement.Add(int(c.video))
		used++
		added++
		budget -= c.count
	}
	return added, cands
}

// euEntry is a (video, target) candidate keyed by its content-placement
// efficiency index.
type euEntry struct {
	video  trace.VideoID
	target int
	eu     int64
}

// euHeap is a max-heap over euEntry with deterministic tie-breaking.
// Hand-rolled (sift-up/sift-down identical to container/heap) because
// the boxed interface{} Push/Pop of container/heap dominated the
// round's allocation profile: one box per operation on a heap that sees
// every (video, target) candidate of the round. The (eu, target, video)
// order is strict and total, so pop order is deterministic.
type euHeap []euEntry

func (h euHeap) less(a, b int) bool {
	if h[a].eu != h[b].eu {
		return h[a].eu > h[b].eu
	}
	if h[a].target != h[b].target {
		return h[a].target < h[b].target
	}
	return h[a].video < h[b].video
}

func (h *euHeap) push(e euEntry) {
	*h = append(*h, e)
	s := *h
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2 // parent
		if !s.less(j, i) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
}

func (h *euHeap) pop() euEntry {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	// Sift the new root down over s[:n].
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && s.less(j2, j1) {
			j = j2
		}
		if !s.less(j, i) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	*h = s[:n]
	return s[n]
}
