package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/mcmf"
	"repro/internal/trace"
)

// overloadedDemand puts surplus on hotspot 0 with slack next door so a
// healthy round would move flow.
func overloadedDemand(m int) *Demand {
	d := NewDemand(m)
	for v := 0; v < 15; v++ {
		d.Add(0, trace.VideoID(1+v), 1)
	}
	for h := 1; h < m; h++ {
		d.Add(trace.HotspotID(h), 1, 2)
	}
	return d
}

func TestDeadlineTruncatesSweep(t *testing.T) {
	w := lineWorld(3, 1.0, 10, 50)
	p := DefaultParams()
	p.Deadline = time.Nanosecond // expires before the first θ round
	s, err := New(w, p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d := overloadedDemand(3)
	plan, err := s.Schedule(d)
	if err != nil {
		t.Fatalf("Schedule under deadline: %v", err)
	}
	checkPlanInvariants(t, w, d, plan)
	if !plan.Degraded || !plan.Stats.Degraded {
		t.Error("deadline-truncated round not marked Degraded")
	}
	if !plan.Stats.DeadlineExceeded {
		t.Error("Stats.DeadlineExceeded not set")
	}
	// Nothing moved: the whole surplus must be stranded to the CDN.
	if got := plan.OverflowToCDN[0]; got != 5 {
		t.Errorf("overflow at hotspot 0 = %d, want full surplus 5", got)
	}
	if plan.Stats.StrandedToCDN != 5 {
		t.Errorf("StrandedToCDN = %d, want 5", plan.Stats.StrandedToCDN)
	}
}

func TestSolverFailureIsRecoverable(t *testing.T) {
	cases := []struct {
		name string
		stub func(*mcmf.Graph, int, int, int64, mcmf.Algorithm) (mcmf.Result, error)
	}{
		{"error", func(*mcmf.Graph, int, int, int64, mcmf.Algorithm) (mcmf.Result, error) {
			return mcmf.Result{}, fmt.Errorf("injected solver failure")
		}},
		{"panic", func(*mcmf.Graph, int, int, int64, mcmf.Algorithm) (mcmf.Result, error) {
			panic("injected solver panic")
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			orig := solveFn
			solveFn = tc.stub
			defer func() { solveFn = orig }()

			w := lineWorld(3, 1.0, 10, 50)
			s, err := New(w, DefaultParams())
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			d := overloadedDemand(3)
			plan, err := s.Schedule(d)
			if err != nil {
				t.Fatalf("Schedule with failing solver: %v", err)
			}
			checkPlanInvariants(t, w, d, plan)
			if !plan.Degraded {
				t.Error("recovered-solver round not marked Degraded")
			}
			if plan.Stats.RecoveredErrors == 0 {
				t.Error("RecoveredErrors = 0 despite every solve failing")
			}
			if len(plan.Flows) != 0 {
				t.Errorf("failing solver still produced flows %v", plan.Flows)
			}
			if plan.OverflowToCDN[0] != 5 {
				t.Errorf("overflow at hotspot 0 = %d, want full surplus 5", plan.OverflowToCDN[0])
			}
		})
	}
}

func TestScheduleRoundRejectsBadInput(t *testing.T) {
	w := lineWorld(2, 1.0, 10, 50)
	s, err := New(w, DefaultParams())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	negDemand := NewDemand(2)
	negDemand.Totals[0] = -1

	cases := []struct {
		name string
		d    *Demand
		cons Constraints
		want string
	}{
		{"nil demand", nil, Constraints{}, "nil demand"},
		{"hotspot mismatch", NewDemand(3), Constraints{}, "hotspots"},
		{"negative demand", negDemand, Constraints{}, "negative demand"},
		{"short capacities", NewDemand(2), Constraints{Service: []int64{1}}, "capacities"},
		{"negative capacity", NewDemand(2), Constraints{Service: []int64{1, -1}}, "negative capacity"},
		{"short cache", NewDemand(2), Constraints{Cache: []int{1}}, "cache capacities"},
		{"negative cache", NewDemand(2), Constraints{Cache: []int{1, -1}}, "negative cache"},
	}
	for _, tc := range cases {
		_, err := s.ScheduleRound(tc.d, tc.cons)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestZeroCacheStrandsSurplus(t *testing.T) {
	w := lineWorld(3, 1.0, 10, 50)
	s, err := New(w, DefaultParams())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d := overloadedDemand(3)
	plan, err := s.ScheduleRound(d, Constraints{Cache: []int{0, 0, 0}})
	if err != nil {
		t.Fatalf("ScheduleRound: %v", err)
	}
	for h, set := range plan.Placement {
		if set.Len() != 0 {
			t.Errorf("hotspot %d placed %d videos with zero cache", h, set.Len())
		}
	}
	if len(plan.Redirects) != 0 {
		t.Errorf("redirects %v without any placement", plan.Redirects)
	}
	// Moved flow cannot be realised without cache space: the full
	// surplus falls back to the CDN.
	if plan.OverflowToCDN[0] != 5 || plan.Stats.StrandedToCDN != 5 {
		t.Errorf("overflow=%d stranded=%d, want both 5",
			plan.OverflowToCDN[0], plan.Stats.StrandedToCDN)
	}
}

func TestDegradedCacheBoundsPlacement(t *testing.T) {
	w := lineWorld(3, 1.0, 10, 50)
	s, err := New(w, DefaultParams())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d := overloadedDemand(3)
	cache := []int{1, 1, 1}
	plan, err := s.ScheduleRound(d, Constraints{Cache: cache})
	if err != nil {
		t.Fatalf("ScheduleRound: %v", err)
	}
	for h, set := range plan.Placement {
		if set.Len() > cache[h] {
			t.Errorf("hotspot %d placed %d videos, degraded cache is %d", h, set.Len(), cache[h])
		}
	}
}

func TestHealthyRoundNotDegraded(t *testing.T) {
	w := lineWorld(3, 1.0, 10, 50)
	d := overloadedDemand(3)
	plan := scheduleOK(t, w, DefaultParams(), d)
	if plan.Degraded || plan.Stats.Degraded || plan.Stats.DeadlineExceeded {
		t.Errorf("healthy round marked degraded: %+v", plan.Stats)
	}
	if plan.Stats.RecoveredErrors != 0 {
		t.Errorf("healthy round recorded %d recovered errors", plan.Stats.RecoveredErrors)
	}
}
