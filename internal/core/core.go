// Package core implements the paper's primary contribution: the
// Request-Balancing and Content-Aggregation scheduler (RBCAer) for
// crowdsourced CDNs.
//
// Each scheduling round (timeslot) takes the per-hotspot, per-video
// demand aggregated at each request's nearest hotspot and produces:
//
//   - inter-hotspot workload flows f_ij moving surplus requests from
//     overloaded to under-utilised hotspots (Algorithm 1: an iterative
//     θ-bounded min-cost max-flow on the content-aggregation network
//     Gc, falling back to the plain balancing network Gd),
//   - a per-video redirection plan realising those flows (Procedure 1),
//     and
//   - the content placement y_vj (which videos each hotspot prefetches),
//     minimising replication cost by aggregating similar hotspots'
//     redirected demand onto shared replicas.
package core

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/mcmf"
	"repro/internal/obs"
	"repro/internal/similarity"
	"repro/internal/trace"
)

// GuideCostMode selects the cost of the guide-node → target edge in the
// content-aggregation network Gc.
type GuideCostMode int

const (
	// GuideCostAvgDistance prices the guide edge at the average
	// distance from the cluster's overloaded hotspots to the target —
	// the evident intent of the paper's formula (see DESIGN.md).
	GuideCostAvgDistance GuideCostMode = iota + 1
	// GuideCostAvgCapacity prices the guide edge with the literal
	// formula of Sec. IV-B, Σφ_ij/‖Hjk‖ (average pair capacity).
	GuideCostAvgCapacity
)

// String implements fmt.Stringer.
func (m GuideCostMode) String() string {
	switch m {
	case GuideCostAvgDistance:
		return "avg-distance"
	case GuideCostAvgCapacity:
		return "avg-capacity"
	default:
		return fmt.Sprintf("guide-cost(%d)", int(m))
	}
}

// Params are RBCAer's tuning parameters. Defaults follow the paper's
// Sec. V setup.
type Params struct {
	// Theta1, Theta2, DeltaD drive the latency-threshold sweep of
	// Algorithm 1: edges <i,j> enter the flow network only when
	// d_ij < θ, with θ growing from Theta1 to Theta2 in DeltaD steps.
	Theta1 float64
	Theta2 float64
	DeltaD float64

	// ClusterCut is the maximum content-aware distance Jd within a
	// cluster. The paper uses 0.5, tuned to its trace where nearby
	// hotspots reach Jaccard 0.8; our synthetic similarities top out
	// near 0.6, so the default is recalibrated to 0.75 (intra-cluster
	// Jaccard >= 0.25, above the nearby-pair median) — see
	// EXPERIMENTS.md. The abl-cluster ablation sweeps this knob.
	ClusterCut float64
	// TopFraction sizes each hotspot's content signature: the top
	// fraction of its demanded videos (the paper's top-20%).
	TopFraction float64
	// Linkage is the hierarchical-clustering linkage; Complete
	// guarantees the intra-cluster distance bound.
	Linkage cluster.Linkage

	// GuideCost selects the guide-edge pricing (see GuideCostMode).
	GuideCost GuideCostMode
	// Algorithm selects the MCMF solver.
	Algorithm mcmf.Algorithm

	// BPeak caps the number of replicas pushed in the greedy local
	// cache-fill stage of Procedure 1 (the paper's "server load
	// reaches the peak traffic observed"). 0 means unlimited.
	BPeak int64
	// FillOverprovision scales the serviceable-demand budget of the
	// greedy cache-fill loop. 1 (and 0, the zero value) is the exact
	// budget; >1 prefetches beyond what capacity can serve — wasteful
	// under oracle demand but a robustness buffer when scheduling on
	// *predicted* demand (see the abl-prediction experiment).
	FillOverprovision float64

	// DisableGuides skips content aggregation and balances on Gd only
	// (ablation: pure load balancing).
	DisableGuides bool
	// SingleShotTheta replaces the θ sweep with one round at Theta2
	// (ablation: value of the incremental schedule).
	SingleShotTheta bool

	// Deadline bounds one scheduling round's wall clock. 0 (the zero
	// value) disables the bound. When a round overruns the deadline,
	// the θ sweep stops early and the best partial plan is returned
	// with Stats.DeadlineExceeded and Plan.Degraded set; the surplus
	// the truncated sweep could not move falls back to the CDN.
	// Because the cutoff is wall-clock, deadline-bounded rounds are
	// NOT deterministic across machines or worker counts — leave it 0
	// when byte-identical reproducibility matters.
	Deadline time.Duration

	// Workers bounds the parallelism of one scheduling round: the
	// over×under pairwise-distance cache, the Jaccard distance matrix
	// fed to clustering, and candidate-pair generation in the flow
	// network all fan out over this many goroutines. 0 (the zero
	// value) selects runtime.GOMAXPROCS(0); 1 forces the serial path.
	// The fan-out uses fixed work partitions writing into disjoint
	// preallocated ranges, so plans are identical for every value.
	Workers int

	// DeltaThreshold enables incremental delta scheduling when > 0:
	// the scheduler retains the previous round's demand snapshot, flow
	// solution, and over/under partition, and re-solves only what a
	// demand diff invalidates, reusing the rest verbatim (see
	// DESIGN.md §12). A round falls back to a full solve when the
	// fraction of hotspots whose demand changed exceeds the threshold
	// (1 disables drift fallback entirely). Delta rounds are certified
	// digest-identical to full solves by the differential suite.
	//
	// Enabling delta mode imposes a caller contract: the *Demand passed
	// to ScheduleRound is retained by reference until the next round and
	// must not be mutated afterwards. Delta rounds ignore Params.Deadline
	// (their whole point is bounded latency), and DeltaThreshold is
	// incompatible with BPeak > 0 (the replica cap is a global budget
	// that per-hotspot patching cannot preserve).
	DeltaThreshold float64
	// FullSolveEvery forces a periodic full solve every N delta rounds
	// regardless of drift (0 disables the periodic fallback). Only
	// meaningful when DeltaThreshold > 0.
	FullSolveEvery int
	// DeltaVerify shadow-runs the full solver alongside every delta
	// round and compares Plan.Digest(); on mismatch the full plan wins,
	// the retained delta state is dropped, and a verify-mismatch counter
	// is published. Expensive — a debugging/soak aid, not a production
	// setting.
	DeltaVerify bool

	// Obs, when non-nil, receives the round's metrics: logical
	// counters and histograms (deterministic for any Workers count)
	// plus wall-clock phase timers (core.phase.*, nondeterministic and
	// excluded from the registry's deterministic snapshot). Nil
	// disables metric publication at zero cost on the hot path.
	Obs *obs.Registry
	// RecordEvents, when set, makes every round record its structured
	// trace events (θ-sweep iterations, MCMF solve outcomes, degraded
	// transitions, round summary) into Plan.Events for a tracer to
	// flush. Off (the zero value) skips event assembly entirely.
	RecordEvents bool
}

// DefaultDeltaThreshold is the drift-fallback fraction the cmd-level
// -delta flags use: a delta round re-solves from scratch when more than
// a quarter of the hotspots' demand changed since the previous slot.
const DefaultDeltaThreshold = 0.25

// DefaultParams returns the paper's evaluation parameters:
// θ1 = 0.5 km, θ2 = 1.5 km, δd = 0.5 km, top-20% signatures, complete
// linkage, average-distance guide pricing — with the cluster cut
// recalibrated to this repository's trace (see Params.ClusterCut).
func DefaultParams() Params {
	return Params{
		Theta1:      0.5,
		Theta2:      1.5,
		DeltaD:      0.5,
		ClusterCut:  0.75,
		TopFraction: 0.2,
		Linkage:     cluster.Complete,
		GuideCost:   GuideCostAvgDistance,
		Algorithm:   mcmf.SSPDijkstra,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Theta1 < 0 || p.Theta2 < p.Theta1 {
		return fmt.Errorf("core: need 0 <= Theta1 <= Theta2, got %v, %v", p.Theta1, p.Theta2)
	}
	if p.DeltaD <= 0 {
		return fmt.Errorf("core: DeltaD must be positive, got %v", p.DeltaD)
	}
	if p.ClusterCut < 0 || p.ClusterCut > 1 {
		return fmt.Errorf("core: ClusterCut must be in [0,1], got %v", p.ClusterCut)
	}
	if p.TopFraction <= 0 || p.TopFraction > 1 {
		return fmt.Errorf("core: TopFraction must be in (0,1], got %v", p.TopFraction)
	}
	switch p.Linkage {
	case cluster.Single, cluster.Complete, cluster.Average:
	default:
		return fmt.Errorf("core: unknown linkage %v", p.Linkage)
	}
	switch p.GuideCost {
	case GuideCostAvgDistance, GuideCostAvgCapacity:
	default:
		return fmt.Errorf("core: unknown guide cost mode %v", p.GuideCost)
	}
	switch p.Algorithm {
	case mcmf.SSPDijkstra, mcmf.BellmanFord:
	default:
		return fmt.Errorf("core: unknown MCMF algorithm %v", p.Algorithm)
	}
	if p.BPeak < 0 {
		return fmt.Errorf("core: negative BPeak %d", p.BPeak)
	}
	if p.FillOverprovision < 0 {
		return fmt.Errorf("core: negative FillOverprovision %v", p.FillOverprovision)
	}
	if p.Workers < 0 {
		return fmt.Errorf("core: negative Workers %d", p.Workers)
	}
	if p.Deadline < 0 {
		return fmt.Errorf("core: negative Deadline %v", p.Deadline)
	}
	if p.DeltaThreshold < 0 || p.DeltaThreshold > 1 {
		return fmt.Errorf("core: DeltaThreshold must be in [0,1], got %v", p.DeltaThreshold)
	}
	if p.FullSolveEvery < 0 {
		return fmt.Errorf("core: negative FullSolveEvery %d", p.FullSolveEvery)
	}
	if p.DeltaThreshold > 0 && p.BPeak > 0 {
		return fmt.Errorf("core: DeltaThreshold is incompatible with BPeak > 0 (global replica cap cannot be patched per hotspot)")
	}
	return nil
}

// Demand is one timeslot's request demand aggregated at each request's
// nearest hotspot (λ_h and λ_hv in the paper).
type Demand struct {
	// PerVideo[h][v] is the number of requests for video v aggregated
	// at hotspot h.
	PerVideo []map[trace.VideoID]int64
	// Totals[h] is λ_h = Σ_v PerVideo[h][v].
	Totals []int64
}

// NewDemand returns an empty demand over numHotspots hotspots.
func NewDemand(numHotspots int) *Demand {
	return &Demand{
		PerVideo: make([]map[trace.VideoID]int64, numHotspots),
		Totals:   make([]int64, numHotspots),
	}
}

// Add records n requests for video v aggregated at hotspot h.
func (d *Demand) Add(h trace.HotspotID, v trace.VideoID, n int64) {
	if d.PerVideo[h] == nil {
		d.PerVideo[h] = make(map[trace.VideoID]int64)
	}
	d.PerVideo[h][v] += n
	d.Totals[h] += n
}

// NumHotspots returns the hotspot count the demand covers.
func (d *Demand) NumHotspots() int { return len(d.Totals) }

// VideoCounts returns hotspot h's demand keyed by plain int video ids,
// the form the similarity helpers consume.
func (d *Demand) VideoCounts(h int) map[int]int64 {
	out := make(map[int]int64, len(d.PerVideo[h]))
	for v, n := range d.PerVideo[h] {
		out[int(v)] = n
	}
	return out
}

// Clone returns a deep copy.
func (d *Demand) Clone() *Demand {
	out := NewDemand(len(d.Totals))
	copy(out.Totals, d.Totals)
	for h, m := range d.PerVideo {
		if m == nil {
			continue
		}
		cp := make(map[trace.VideoID]int64, len(m))
		for v, n := range m {
			cp[v] = n
		}
		out.PerVideo[h] = cp
	}
	return out
}

// FlowEdge is a realised inter-hotspot workload movement: Amount
// requests aggregated at From are redirected to To.
type FlowEdge struct {
	From   trace.HotspotID
	To     trace.HotspotID
	Amount int64
}

// Redirect moves Count requests for Video from hotspot From to To.
type Redirect struct {
	From  trace.HotspotID
	To    trace.HotspotID
	Video trace.VideoID
	Count int64
}

// Stats summarises one scheduling round, feeding the Fig. 9 analysis
// and the running-time/ablation benches.
type Stats struct {
	// MaxFlow is the theoretically movable workload
	// min(Σ_i∈Hs φ_i, Σ_j∈Ht φ_j).
	MaxFlow int64
	// MovedFlow is the workload actually moved by the θ sweep plus the
	// residual Gd pass.
	MovedFlow int64
	// UnrealizedFlow is moved flow Procedure 1 could not convert into
	// concrete per-video redirects (insufficient matching demand or
	// target cache space); it falls back to the CDN.
	UnrealizedFlow int64
	// Overloaded and Underutilized are |Hs| and |Ht|.
	Overloaded    int
	Underutilized int
	// Clusters is the number of content clusters.
	Clusters int
	// GuideNodes is the total number of flow-guide nodes inserted,
	// accumulated across every θ iteration of the sweep (the residual
	// Gd pass never inserts guides).
	GuideNodes int
	// DirectEdges is the total number of <i,j> candidate pairs
	// enumerated, accumulated across every θ iteration of the sweep
	// like GuideNodes (each iteration re-enumerates the pairs its θ
	// admits, so a pair within θ1 contributes once per iteration).
	// The residual Gd pass is not counted. For the per-θ pair count of
	// a single graph, see ThetaAnalysis.DirectEdges.
	DirectEdges int
	// Iterations is the number of θ rounds executed.
	Iterations int
	// Degraded reports that the round ran under degraded conditions:
	// an MCMF solve failed and was recovered, or the deadline cut the
	// sweep short. The plan is still complete and feasible; unmoved
	// surplus falls back to the CDN via OverflowToCDN.
	Degraded bool
	// DeadlineExceeded reports that Params.Deadline truncated the
	// round (implies Degraded).
	DeadlineExceeded bool
	// RecoveredErrors counts MCMF solves (θ iterations or the residual
	// Gd pass) that failed — error or panic — and were recovered by
	// leaving their flow unmoved.
	RecoveredErrors int
	// StrandedToCDN is the total surplus workload routed to the origin
	// CDN server (Σ OverflowToCDN): demand the round could not balance
	// within θ2, could not realise into redirects, or abandoned when
	// degrading.
	StrandedToCDN int64
	// DistanceCalcs is the number of pairwise geo-distance evaluations
	// the round performed. The over×under distances are computed once
	// into a per-round cache and reused by every θ iteration and the
	// residual Gd pass, so this is |Hs|·|Ht| — independent of the
	// number of θ iterations.
	DistanceCalcs int64
	// Replicas is the total number of video placements produced.
	Replicas int64
	// Omega1Km is the round's realised access-latency cost Ω1 in
	// distance units: Σ over redirects of count·d(from, to) plus
	// Σ over hotspots of OverflowToCDN[h]·CDNDistanceKm. Requests
	// served at their own aggregation hotspot contribute 0. The
	// paper's replication cost Ω2 is Stats.Replicas.
	Omega1Km float64
	// DeltaRound reports the round ran on the incremental delta path
	// (Params.DeltaThreshold > 0 and no fallback fired). The digest of a
	// delta plan is certified identical to the full solve's.
	DeltaRound bool
	// DeltaFallback reports a delta-mode round fell back to a full
	// solve (drift above DeltaThreshold, the FullSolveEvery period, or
	// a dropped retained state). The very first round of a delta-mode
	// scheduler is a cold full solve, not a fallback.
	DeltaFallback bool
	// SweepReplayed reports the round reused the previous round's θ-sweep
	// flow solution verbatim instead of re-running MCMF.
	SweepReplayed bool
	// PatchedRows is the number of per-hotspot plan rows (placement +
	// fill) rebuilt by a delta round; the remaining rows were reused.
	PatchedRows int
	// Phases is the round's wall-clock breakdown into the cluster /
	// balance / replicate phases. Populated only when observability is
	// enabled (Params.Obs or Params.RecordEvents); wall-clock values
	// are nondeterministic and never enter the determinism contract.
	Phases obs.PhaseTimings
}

// Plan is the output of one scheduling round.
type Plan struct {
	// Flows is the realised inter-hotspot flow f_ij.
	Flows []FlowEdge
	// Redirects is the per-video realisation of Flows.
	Redirects []Redirect
	// Placement[h] is the set of videos hotspot h prefetches (y_vh).
	Placement []similarity.Set
	// OverflowToCDN[h] is surplus workload at h that could not be
	// balanced within θ2 and is redirected to the origin CDN server.
	OverflowToCDN []int64
	// Degraded mirrors Stats.Degraded: the round ran under degraded
	// conditions (recovered solver failure or deadline cutoff) and
	// this is the best partial plan, with stranded demand routed to
	// the CDN.
	Degraded bool
	// Stats summarises the round.
	Stats Stats
	// Events is the round's structured trace, recorded in emission
	// order when Params.RecordEvents is set (nil otherwise). Slot
	// numbers are stamped by whoever flushes them to an obs.Tracer.
	Events []obs.Event
}
