package core

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// overloadDemand concentrates demand on hotspot 0 so the round has both
// overloaded and underutilized hotspots and real flow to move.
func overloadDemand(n int) *Demand {
	d := NewDemand(n)
	for v := 0; v < 20; v++ {
		d.Add(0, trace.VideoID(v), 1)
	}
	d.Add(1, 100, 1)
	return d
}

func counterValue(snap obs.Snapshot, name string) (int64, bool) {
	for _, c := range snap.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

func TestScheduleObservability(t *testing.T) {
	params := DefaultParams()
	reg := obs.NewRegistry()
	params.Obs = reg
	params.RecordEvents = true
	s, err := New(lineWorld(6, 1, 5, 4), params)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := s.Schedule(overloadDemand(6))
	if err != nil {
		t.Fatal(err)
	}

	types := map[string]int{}
	for _, ev := range plan.Events {
		types[ev.Type]++
		if ev.Slot != -1 {
			t.Errorf("event %q carries slot %d before the simulator stamps it", ev.Type, ev.Slot)
		}
	}
	for _, want := range []string{"cluster", "theta-iter", "round"} {
		if types[want] == 0 {
			t.Errorf("no %q event recorded (got %v)", want, types)
		}
	}

	snap := reg.Snapshot(true)
	if v, ok := counterValue(snap, "core.rounds"); !ok || v != 1 {
		t.Errorf("core.rounds = %d, %v; want 1, true", v, ok)
	}
	if v, ok := counterValue(snap, "core.max_flow"); !ok || v != plan.Stats.MaxFlow {
		t.Errorf("core.max_flow = %d, %v; want %d", v, ok, plan.Stats.MaxFlow)
	}
	if v, ok := counterValue(snap, "core.theta_iterations"); !ok || v != int64(plan.Stats.Iterations) {
		t.Errorf("core.theta_iterations = %d, %v; want %d", v, ok, plan.Stats.Iterations)
	}
	if len(snap.Timers) == 0 {
		t.Error("timed snapshot has no phase timers")
	}
	if reg.Snapshot(false).Timers != nil {
		t.Error("deterministic snapshot leaks wall-clock timers")
	}
}

func TestScheduleDeadlineObservability(t *testing.T) {
	params := DefaultParams()
	params.Deadline = time.Nanosecond
	reg := obs.NewRegistry()
	params.Obs = reg
	params.RecordEvents = true
	s, err := New(lineWorld(6, 1, 5, 4), params)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := s.Schedule(overloadDemand(6))
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Degraded || !plan.Stats.DeadlineExceeded {
		t.Fatalf("Degraded=%v DeadlineExceeded=%v; want an immediate deadline trip",
			plan.Degraded, plan.Stats.DeadlineExceeded)
	}
	var sawDeadline, sawDegraded bool
	for _, ev := range plan.Events {
		switch ev.Type {
		case "deadline":
			sawDeadline = true
		case "degraded":
			sawDegraded = true
		}
	}
	if !sawDeadline || !sawDegraded {
		t.Errorf("deadline=%v degraded=%v events; want both", sawDeadline, sawDegraded)
	}
	snap := reg.Snapshot(false)
	if v, _ := counterValue(snap, "core.degraded_rounds"); v != 1 {
		t.Errorf("core.degraded_rounds = %d, want 1", v)
	}
	if v, _ := counterValue(snap, "core.deadline_exceeded"); v != 1 {
		t.Errorf("core.deadline_exceeded = %d, want 1", v)
	}
}

// TestScheduleObsDisabled locks the uninstrumented contract: no registry
// and no event recording means no events and zero phase marks beyond
// what the scheduler measures for its own stats.
func TestScheduleObsDisabled(t *testing.T) {
	s, err := New(lineWorld(6, 1, 5, 4), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := s.Schedule(overloadDemand(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Events) != 0 {
		t.Errorf("disabled run recorded %d events", len(plan.Events))
	}
	if plan.Stats.Phases.Total() != 0 {
		t.Errorf("disabled run measured phases %v", plan.Stats.Phases)
	}
}
