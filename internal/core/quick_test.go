package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// quickScenario is a randomly generated scheduling scenario for
// property-based testing with testing/quick.
type quickScenario struct {
	hotspots int
	spacing  float64
	svc      int64
	cache    int
	requests int
	videos   int
	seed     int64
}

// Generate implements quick.Generator.
func (quickScenario) Generate(r *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(quickScenario{
		hotspots: 2 + r.Intn(12),
		spacing:  0.2 + r.Float64()*1.5,
		svc:      int64(3 + r.Intn(15)),
		cache:    1 + r.Intn(40),
		requests: 20 + r.Intn(400),
		videos:   5 + r.Intn(120),
		seed:     r.Int63(),
	})
}

var _ quick.Generator = quickScenario{}

func TestQuickPlanInvariants(t *testing.T) {
	f := func(sc quickScenario) bool {
		w := lineWorld(sc.hotspots, sc.spacing, sc.svc, sc.cache)
		d := randomDemand(w, sc.requests, sc.videos, sc.seed)
		s, err := New(w, DefaultParams())
		if err != nil {
			return false
		}
		plan, err := s.Schedule(d)
		if err != nil {
			return false
		}
		// Reuse the full invariant checker; it fails the test on any
		// violated constraint.
		checkPlanInvariants(t, w, d, plan)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickCapacityOverrideInvariants(t *testing.T) {
	// Per-round capacity overrides (churn) must preserve every plan
	// invariant with respect to the OVERRIDDEN capacities.
	f := func(sc quickScenario) bool {
		w := lineWorld(sc.hotspots, sc.spacing, sc.svc, sc.cache)
		d := randomDemand(w, sc.requests, sc.videos, sc.seed)
		s, err := New(w, DefaultParams())
		if err != nil {
			return false
		}
		// Zero out a deterministic subset of hotspots ("offline").
		rng := rand.New(rand.NewSource(sc.seed))
		svc := make([]int64, sc.hotspots)
		for h := range svc {
			if rng.Intn(3) == 0 {
				svc[h] = 0
			} else {
				svc[h] = sc.svc
			}
		}
		plan, err := s.ScheduleWithCapacities(d, svc)
		if err != nil {
			return false
		}
		// Check the invariants against a world whose capacities match
		// the overrides (the checker reads world capacities).
		w2 := lineWorld(sc.hotspots, sc.spacing, sc.svc, sc.cache)
		for h := range w2.Hotspots {
			w2.Hotspots[h].ServiceCapacity = svc[h]
		}
		checkPlanInvariants(t, w2, d, plan)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestScheduleWithCapacitiesValidation(t *testing.T) {
	w := lineWorld(3, 1, 10, 5)
	s, err := New(w, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	d := NewDemand(3)
	d.Add(0, 1, 5)
	if _, err := s.ScheduleWithCapacities(d, []int64{1, 2}); err == nil {
		t.Error("short capacity slice accepted")
	}
	if _, err := s.ScheduleWithCapacities(d, []int64{1, -2, 3}); err == nil {
		t.Error("negative capacity accepted")
	}
	// Zero capacities everywhere: everything overflows to the CDN.
	plan, err := s.ScheduleWithCapacities(d, []int64{0, 0, 0})
	if err != nil {
		t.Fatalf("all-zero capacities: %v", err)
	}
	if plan.OverflowToCDN[0] != 5 {
		t.Errorf("overflow = %d, want all 5 requests", plan.OverflowToCDN[0])
	}
	if plan.Stats.Replicas != 0 {
		t.Errorf("replicas = %d, want 0 (nothing serviceable)", plan.Stats.Replicas)
	}
}
