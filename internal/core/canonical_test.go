package core

import (
	"bytes"
	"testing"

	"repro/internal/similarity"
)

// TestCanonicalDeterministic locks in the canonical encoding's
// reproducibility: scheduling the same demand on fresh schedulers must
// yield byte-identical canonical plans and equal digests.
func TestCanonicalDeterministic(t *testing.T) {
	w := lineWorld(12, 0.4, 55, 30)
	d := randomDemand(w, 500, 120, 9)
	a := mustPlan(t, w, DefaultParams(), d)
	b := mustPlan(t, w, DefaultParams(), d)
	if !bytes.Equal(a.Canonical(), b.Canonical()) {
		t.Fatalf("canonical encodings differ for identical rounds:\n%s\nvs\n%s", a.Canonical(), b.Canonical())
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("digests differ: %x vs %x", a.Digest(), b.Digest())
	}
}

// TestCanonicalDistinguishesPlans checks the encoding reflects every
// logical plan field: perturbing any one of them changes the bytes.
func TestCanonicalDistinguishesPlans(t *testing.T) {
	base := func() *Plan {
		return &Plan{
			Flows:         []FlowEdge{{From: 0, To: 1, Amount: 3}},
			Redirects:     []Redirect{{From: 0, To: 1, Video: 7, Count: 2}},
			Placement:     []similarity.Set{similarity.NewSet(1, 2), similarity.NewSet(7)},
			OverflowToCDN: []int64{0, 4},
		}
	}
	ref := base().Canonical()
	mutations := map[string]func(*Plan){
		"flow amount":     func(p *Plan) { p.Flows[0].Amount = 4 },
		"redirect video":  func(p *Plan) { p.Redirects[0].Video = 8 },
		"redirect count":  func(p *Plan) { p.Redirects[0].Count = 1 },
		"placement video": func(p *Plan) { p.Placement[1] = similarity.NewSet(9) },
		"overflow":        func(p *Plan) { p.OverflowToCDN[1] = 5 },
		"degraded":        func(p *Plan) { p.Degraded = true },
	}
	for name, mutate := range mutations {
		p := base()
		mutate(p)
		if bytes.Equal(ref, p.Canonical()) {
			t.Errorf("%s: mutation not reflected in canonical encoding", name)
		}
	}
	// Stats and events are excluded by design.
	p := base()
	p.Stats.MovedFlow = 99
	p.Events = nil
	if !bytes.Equal(ref, p.Canonical()) {
		t.Errorf("stats leaked into the canonical encoding")
	}
}

// TestParseCanonicalRoundTrip: decoding a real scheduled plan's
// canonical bytes and re-encoding must reproduce the identical bytes
// and digest — the fidelity contract the serving tier's plan
// distribution channel verifies on every swap.
func TestParseCanonicalRoundTrip(t *testing.T) {
	w := lineWorld(12, 0.4, 55, 30)
	d := randomDemand(w, 500, 120, 9)
	plan := mustPlan(t, w, DefaultParams(), d)
	canonical := plan.Canonical()

	decoded, err := ParseCanonical(canonical)
	if err != nil {
		t.Fatalf("ParseCanonical: %v", err)
	}
	if !bytes.Equal(decoded.Canonical(), canonical) {
		t.Fatalf("re-encoded plan differs from original canonical bytes")
	}
	if decoded.Digest() != plan.Digest() {
		t.Fatalf("digest changed across the round trip")
	}
	if DigestOf(canonical) != plan.Digest() {
		t.Fatalf("DigestOf(canonical) != plan.Digest()")
	}
	if len(decoded.Flows) != len(plan.Flows) || len(decoded.Redirects) != len(plan.Redirects) ||
		len(decoded.Placement) != len(plan.Placement) || len(decoded.OverflowToCDN) != len(plan.OverflowToCDN) {
		t.Fatalf("decoded sections differ in length from the original plan")
	}

	// A hand-built plan exercising degraded, empty placement rows, and
	// empty sections round-trips too.
	hand := &Plan{
		Degraded:      true,
		Redirects:     []Redirect{{From: 2, To: 0, Video: 5, Count: 9}},
		Placement:     []similarity.Set{similarity.NewSet(4, 1), similarity.NewSet()},
		OverflowToCDN: []int64{7, 0},
	}
	hb := hand.Canonical()
	hd, err := ParseCanonical(hb)
	if err != nil {
		t.Fatalf("ParseCanonical(hand-built): %v", err)
	}
	if !bytes.Equal(hd.Canonical(), hb) {
		t.Fatalf("hand-built plan did not round-trip")
	}
	if !hd.Degraded {
		t.Fatalf("degraded flag lost in round trip")
	}

	// The empty plan is the minimal valid encoding.
	ed, err := ParseCanonical((&Plan{}).Canonical())
	if err != nil {
		t.Fatalf("ParseCanonical(empty): %v", err)
	}
	if !bytes.Equal(ed.Canonical(), (&Plan{}).Canonical()) {
		t.Fatalf("empty plan did not round-trip")
	}
}

// TestParseCanonicalRejectsMalformed: the decoder is strict — every
// kind of corruption is an error, never a silently wrong plan.
func TestParseCanonicalRejectsMalformed(t *testing.T) {
	good := (&Plan{
		Flows:         []FlowEdge{{From: 0, To: 1, Amount: 3}},
		Redirects:     []Redirect{{From: 0, To: 1, Video: 7, Count: 2}},
		Placement:     []similarity.Set{similarity.NewSet(1, 2), similarity.NewSet(7)},
		OverflowToCDN: []int64{0, 4},
	}).Canonical()
	if _, err := ParseCanonical(good); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
	cases := map[string][]byte{
		"empty input":       nil,
		"bad magic":         []byte("plan v2\n"),
		"truncated":         good[:len(good)/2],
		"trailing bytes":    append(append([]byte{}, good...), 'x'),
		"negative count":    bytes.Replace(good, []byte("flows 1"), []byte("flows -1"), 1),
		"overlong count":    bytes.Replace(good, []byte("flows 1"), []byte("flows 999999999999"), 1),
		"non-numeric field": bytes.Replace(good, []byte("f 0 1 3"), []byte("f 0 1 x"), 1),
		"bad degraded":      bytes.Replace(good, []byte("degraded 0"), []byte("degraded 2"), 1),
		"mislabelled row":   bytes.Replace(good, []byte("p 0 "), []byte("p 9 "), 1),
		"bad overflow":      bytes.Replace(good, []byte("overflow 0 4"), []byte("overflow 0 x"), 1),
		"count mismatch":    bytes.Replace(good, []byte("flows 1"), []byte("flows 2"), 1),
	}
	for name, data := range cases {
		if _, err := ParseCanonical(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestCanonicalSetOrderIndependent checks placement serialisation does
// not depend on map insertion order.
func TestCanonicalSetOrderIndependent(t *testing.T) {
	a := &Plan{Placement: []similarity.Set{similarity.NewSet(3, 1, 2)}, OverflowToCDN: []int64{0}}
	b := &Plan{Placement: []similarity.Set{similarity.NewSet(2, 3, 1)}, OverflowToCDN: []int64{0}}
	if !bytes.Equal(a.Canonical(), b.Canonical()) {
		t.Fatalf("set insertion order leaked into canonical bytes")
	}
}
