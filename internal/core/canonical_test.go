package core

import (
	"bytes"
	"testing"

	"repro/internal/similarity"
)

// TestCanonicalDeterministic locks in the canonical encoding's
// reproducibility: scheduling the same demand on fresh schedulers must
// yield byte-identical canonical plans and equal digests.
func TestCanonicalDeterministic(t *testing.T) {
	w := lineWorld(12, 0.4, 55, 30)
	d := randomDemand(w, 500, 120, 9)
	a := mustPlan(t, w, DefaultParams(), d)
	b := mustPlan(t, w, DefaultParams(), d)
	if !bytes.Equal(a.Canonical(), b.Canonical()) {
		t.Fatalf("canonical encodings differ for identical rounds:\n%s\nvs\n%s", a.Canonical(), b.Canonical())
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("digests differ: %x vs %x", a.Digest(), b.Digest())
	}
}

// TestCanonicalDistinguishesPlans checks the encoding reflects every
// logical plan field: perturbing any one of them changes the bytes.
func TestCanonicalDistinguishesPlans(t *testing.T) {
	base := func() *Plan {
		return &Plan{
			Flows:         []FlowEdge{{From: 0, To: 1, Amount: 3}},
			Redirects:     []Redirect{{From: 0, To: 1, Video: 7, Count: 2}},
			Placement:     []similarity.Set{similarity.NewSet(1, 2), similarity.NewSet(7)},
			OverflowToCDN: []int64{0, 4},
		}
	}
	ref := base().Canonical()
	mutations := map[string]func(*Plan){
		"flow amount":     func(p *Plan) { p.Flows[0].Amount = 4 },
		"redirect video":  func(p *Plan) { p.Redirects[0].Video = 8 },
		"redirect count":  func(p *Plan) { p.Redirects[0].Count = 1 },
		"placement video": func(p *Plan) { p.Placement[1] = similarity.NewSet(9) },
		"overflow":        func(p *Plan) { p.OverflowToCDN[1] = 5 },
		"degraded":        func(p *Plan) { p.Degraded = true },
	}
	for name, mutate := range mutations {
		p := base()
		mutate(p)
		if bytes.Equal(ref, p.Canonical()) {
			t.Errorf("%s: mutation not reflected in canonical encoding", name)
		}
	}
	// Stats and events are excluded by design.
	p := base()
	p.Stats.MovedFlow = 99
	p.Events = nil
	if !bytes.Equal(ref, p.Canonical()) {
		t.Errorf("stats leaked into the canonical encoding")
	}
}

// TestCanonicalSetOrderIndependent checks placement serialisation does
// not depend on map insertion order.
func TestCanonicalSetOrderIndependent(t *testing.T) {
	a := &Plan{Placement: []similarity.Set{similarity.NewSet(3, 1, 2)}, OverflowToCDN: []int64{0}}
	b := &Plan{Placement: []similarity.Set{similarity.NewSet(2, 3, 1)}, OverflowToCDN: []int64{0}}
	if !bytes.Equal(a.Canonical(), b.Canonical()) {
		t.Fatalf("set insertion order leaked into canonical bytes")
	}
}
