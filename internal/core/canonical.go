package core

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"strconv"

	"repro/internal/similarity"
	"repro/internal/trace"
)

// AppendCanonical appends a deterministic textual encoding of the
// plan's logical content to b and returns the extended buffer. Two
// plans encode identically iff they make the same scheduling decisions:
// the encoding covers flows, redirects, placement (video ids in sorted
// order), CDN overflow, and the degraded flag. Wall-clock stats and
// trace events are deliberately excluded — they never enter the
// determinism contract (see DESIGN.md §8). The flow and redirect slices
// are already in deterministic order for a deterministic round
// (TestScheduleRunTwiceIdentical), so the bytes are reproducible across
// processes, worker counts, and the online/offline entry points.
func (p *Plan) AppendCanonical(b []byte) []byte {
	b = append(b, "plan v1\ndegraded "...)
	b = appendBool(b, p.Degraded)
	b = append(b, "\nflows "...)
	b = strconv.AppendInt(b, int64(len(p.Flows)), 10)
	b = append(b, '\n')
	for _, f := range p.Flows {
		b = append(b, 'f', ' ')
		b = strconv.AppendInt(b, int64(f.From), 10)
		b = append(b, ' ')
		b = strconv.AppendInt(b, int64(f.To), 10)
		b = append(b, ' ')
		b = strconv.AppendInt(b, f.Amount, 10)
		b = append(b, '\n')
	}
	b = append(b, "redirects "...)
	b = strconv.AppendInt(b, int64(len(p.Redirects)), 10)
	b = append(b, '\n')
	for _, r := range p.Redirects {
		b = append(b, 'r', ' ')
		b = strconv.AppendInt(b, int64(r.From), 10)
		b = append(b, ' ')
		b = strconv.AppendInt(b, int64(r.To), 10)
		b = append(b, ' ')
		b = strconv.AppendInt(b, int64(r.Video), 10)
		b = append(b, ' ')
		b = strconv.AppendInt(b, r.Count, 10)
		b = append(b, '\n')
	}
	b = append(b, "placement "...)
	b = strconv.AppendInt(b, int64(len(p.Placement)), 10)
	b = append(b, '\n')
	for h, set := range p.Placement {
		b = append(b, 'p', ' ')
		b = strconv.AppendInt(b, int64(h), 10)
		for _, v := range set.Sorted() {
			b = append(b, ' ')
			b = strconv.AppendInt(b, int64(v), 10)
		}
		b = append(b, '\n')
	}
	b = append(b, "overflow"...)
	for _, o := range p.OverflowToCDN {
		b = append(b, ' ')
		b = strconv.AppendInt(b, o, 10)
	}
	return append(b, '\n')
}

// Canonical returns the plan's canonical encoding (AppendCanonical into
// a fresh buffer).
func (p *Plan) Canonical() []byte { return p.AppendCanonical(nil) }

// Digest returns the FNV-1a hash of the plan's canonical encoding: a
// compact fingerprint for plan-identity checks (the serving layer
// exposes it so lookups can be matched to the exact plan that answered
// them).
func (p *Plan) Digest() uint64 {
	h := fnv.New64a()
	_, _ = h.Write(p.Canonical())
	return h.Sum64()
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, '1')
	}
	return append(b, '0')
}

// DigestOf fingerprints an already-encoded canonical plan: the same
// FNV-1a hash Plan.Digest computes, without needing the Plan. The
// serving tier's plan-distribution channel uses it to verify received
// plan bytes against the digest the scheduler advertised.
func DigestOf(canonical []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(canonical)
	return h.Sum64()
}

// ParseCanonical decodes a canonical plan encoding back into a Plan
// holding the logical scheduling content: flows, redirects, placement,
// CDN overflow, and the degraded flag (stats and events are not part
// of the encoding and come back zero). It is the receive side of the
// serving tier's plan-distribution channel: each frontend instance
// reconstructs its serving plan from the distributed bytes rather
// than sharing the scheduler's. The parser is strict — any deviation
// from the AppendCanonical grammar is an error, never a guess — and
// for a well-formed input the round trip re-encodes to the identical
// bytes (certified in canonical_test.go and re-checked on every swap
// by the serving tier).
func ParseCanonical(canonical []byte) (*Plan, error) {
	cp := canonicalParser{rest: canonical}
	p := &Plan{}

	if err := cp.literal("plan v1\n"); err != nil {
		return nil, err
	}
	if err := cp.literal("degraded "); err != nil {
		return nil, err
	}
	deg, err := cp.int64Until('\n')
	if err != nil || (deg != 0 && deg != 1) {
		return nil, fmt.Errorf("core: canonical plan: bad degraded flag")
	}
	p.Degraded = deg == 1

	if err := cp.literal("flows "); err != nil {
		return nil, err
	}
	nf, err := cp.count()
	if err != nil {
		return nil, fmt.Errorf("core: canonical plan: flows header: %w", err)
	}
	p.Flows = make([]FlowEdge, 0, prealloc(nf))
	for i := int64(0); i < nf; i++ {
		if err := cp.literal("f "); err != nil {
			return nil, err
		}
		from, err1 := cp.int64Until(' ')
		to, err2 := cp.int64Until(' ')
		amt, err3 := cp.int64Until('\n')
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("core: canonical plan: flow %d malformed", i)
		}
		p.Flows = append(p.Flows, FlowEdge{From: trace.HotspotID(from), To: trace.HotspotID(to), Amount: amt})
	}

	if err := cp.literal("redirects "); err != nil {
		return nil, err
	}
	nr, err := cp.count()
	if err != nil {
		return nil, fmt.Errorf("core: canonical plan: redirects header: %w", err)
	}
	p.Redirects = make([]Redirect, 0, prealloc(nr))
	for i := int64(0); i < nr; i++ {
		if err := cp.literal("r "); err != nil {
			return nil, err
		}
		from, err1 := cp.int64Until(' ')
		to, err2 := cp.int64Until(' ')
		video, err3 := cp.int64Until(' ')
		count, err4 := cp.int64Until('\n')
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return nil, fmt.Errorf("core: canonical plan: redirect %d malformed", i)
		}
		p.Redirects = append(p.Redirects, Redirect{
			From: trace.HotspotID(from), To: trace.HotspotID(to),
			Video: trace.VideoID(video), Count: count,
		})
	}

	if err := cp.literal("placement "); err != nil {
		return nil, err
	}
	np, err := cp.count()
	if err != nil {
		return nil, fmt.Errorf("core: canonical plan: placement header: %w", err)
	}
	p.Placement = make([]similarity.Set, 0, prealloc(np))
	for i := int64(0); i < np; i++ {
		if err := cp.literal("p "); err != nil {
			return nil, err
		}
		line, err := cp.line()
		if err != nil {
			return nil, fmt.Errorf("core: canonical plan: placement row %d: %w", i, err)
		}
		fields := bytes.Split(line, []byte{' '})
		h, err := strconv.ParseInt(string(fields[0]), 10, 64)
		if err != nil || h != i {
			return nil, fmt.Errorf("core: canonical plan: placement row %d labelled %q", i, fields[0])
		}
		set := make(similarity.Set, len(fields)-1)
		for _, f := range fields[1:] {
			v, err := strconv.ParseInt(string(f), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("core: canonical plan: placement row %d video %q", i, f)
			}
			set.Add(int(v))
		}
		p.Placement = append(p.Placement, set)
	}

	if err := cp.literal("overflow"); err != nil {
		return nil, err
	}
	tail, err := cp.line()
	if err != nil {
		return nil, fmt.Errorf("core: canonical plan: overflow row: %w", err)
	}
	if len(tail) > 0 {
		if tail[0] != ' ' {
			return nil, fmt.Errorf("core: canonical plan: overflow row malformed")
		}
		for _, f := range bytes.Split(tail[1:], []byte{' '}) {
			o, err := strconv.ParseInt(string(f), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("core: canonical plan: overflow entry %q", f)
			}
			p.OverflowToCDN = append(p.OverflowToCDN, o)
		}
	}
	if len(cp.rest) != 0 {
		return nil, fmt.Errorf("core: canonical plan: %d trailing bytes", len(cp.rest))
	}
	return p, nil
}

// prealloc clamps a declared section length to a safe preallocation
// hint: the sections still parse to their full declared size via
// append, but a corrupt header cannot force a huge upfront allocation.
func prealloc(n int64) int64 {
	const cap = 4096
	if n > cap {
		return cap
	}
	return n
}

// canonicalParser is a cursor over a canonical encoding.
type canonicalParser struct{ rest []byte }

// literal consumes an exact string.
func (cp *canonicalParser) literal(s string) error {
	if len(cp.rest) < len(s) || string(cp.rest[:len(s)]) != s {
		return fmt.Errorf("core: canonical plan: expected %q", s)
	}
	cp.rest = cp.rest[len(s):]
	return nil
}

// int64Until consumes a decimal integer terminated by sep (consuming
// the separator too).
func (cp *canonicalParser) int64Until(sep byte) (int64, error) {
	i := bytes.IndexByte(cp.rest, sep)
	if i < 0 {
		return 0, fmt.Errorf("missing %q separator", sep)
	}
	v, err := strconv.ParseInt(string(cp.rest[:i]), 10, 64)
	if err != nil {
		return 0, err
	}
	cp.rest = cp.rest[i+1:]
	return v, nil
}

// count consumes a non-negative section length terminated by newline,
// with a sanity cap so corrupt headers cannot force absurd
// preallocation.
func (cp *canonicalParser) count() (int64, error) {
	n, err := cp.int64Until('\n')
	if err != nil {
		return 0, err
	}
	const maxSection = 1 << 28
	if n < 0 || n > maxSection {
		return 0, fmt.Errorf("section length %d out of range", n)
	}
	return n, nil
}

// line consumes through the next newline, returning the bytes before
// it.
func (cp *canonicalParser) line() ([]byte, error) {
	i := bytes.IndexByte(cp.rest, '\n')
	if i < 0 {
		return nil, fmt.Errorf("unterminated line")
	}
	out := cp.rest[:i]
	cp.rest = cp.rest[i+1:]
	return out, nil
}
