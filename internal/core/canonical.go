package core

import (
	"hash/fnv"
	"strconv"
)

// AppendCanonical appends a deterministic textual encoding of the
// plan's logical content to b and returns the extended buffer. Two
// plans encode identically iff they make the same scheduling decisions:
// the encoding covers flows, redirects, placement (video ids in sorted
// order), CDN overflow, and the degraded flag. Wall-clock stats and
// trace events are deliberately excluded — they never enter the
// determinism contract (see DESIGN.md §8). The flow and redirect slices
// are already in deterministic order for a deterministic round
// (TestScheduleRunTwiceIdentical), so the bytes are reproducible across
// processes, worker counts, and the online/offline entry points.
func (p *Plan) AppendCanonical(b []byte) []byte {
	b = append(b, "plan v1\ndegraded "...)
	b = appendBool(b, p.Degraded)
	b = append(b, "\nflows "...)
	b = strconv.AppendInt(b, int64(len(p.Flows)), 10)
	b = append(b, '\n')
	for _, f := range p.Flows {
		b = append(b, 'f', ' ')
		b = strconv.AppendInt(b, int64(f.From), 10)
		b = append(b, ' ')
		b = strconv.AppendInt(b, int64(f.To), 10)
		b = append(b, ' ')
		b = strconv.AppendInt(b, f.Amount, 10)
		b = append(b, '\n')
	}
	b = append(b, "redirects "...)
	b = strconv.AppendInt(b, int64(len(p.Redirects)), 10)
	b = append(b, '\n')
	for _, r := range p.Redirects {
		b = append(b, 'r', ' ')
		b = strconv.AppendInt(b, int64(r.From), 10)
		b = append(b, ' ')
		b = strconv.AppendInt(b, int64(r.To), 10)
		b = append(b, ' ')
		b = strconv.AppendInt(b, int64(r.Video), 10)
		b = append(b, ' ')
		b = strconv.AppendInt(b, r.Count, 10)
		b = append(b, '\n')
	}
	b = append(b, "placement "...)
	b = strconv.AppendInt(b, int64(len(p.Placement)), 10)
	b = append(b, '\n')
	for h, set := range p.Placement {
		b = append(b, 'p', ' ')
		b = strconv.AppendInt(b, int64(h), 10)
		for _, v := range set.Sorted() {
			b = append(b, ' ')
			b = strconv.AppendInt(b, int64(v), 10)
		}
		b = append(b, '\n')
	}
	b = append(b, "overflow"...)
	for _, o := range p.OverflowToCDN {
		b = append(b, ' ')
		b = strconv.AppendInt(b, o, 10)
	}
	return append(b, '\n')
}

// Canonical returns the plan's canonical encoding (AppendCanonical into
// a fresh buffer).
func (p *Plan) Canonical() []byte { return p.AppendCanonical(nil) }

// Digest returns the FNV-1a hash of the plan's canonical encoding: a
// compact fingerprint for plan-identity checks (the serving layer
// exposes it so lookups can be matched to the exact plan that answered
// them).
func (p *Plan) Digest() uint64 {
	h := fnv.New64a()
	_, _ = h.Write(p.Canonical())
	return h.Sum64()
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, '1')
	}
	return append(b, '0')
}
