package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. A nil *Counter
// accepts every call as a no-op.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. A nil *Gauge accepts every
// call as a no-op.
type Gauge struct{ v atomic.Int64 }

// Set records the current value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Value returns the last recorded value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts integer observations into a fixed bucket layout so
// its snapshot is deterministic: bucket i counts observations <=
// bounds[i], with one implicit overflow bucket above the last bound.
// Updates are commutative atomic adds, so concurrent observation from
// worker goroutines yields the same snapshot as serial observation. A
// nil *Histogram accepts every call as a no-op.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Timer accumulates wall-clock durations. Timers are the registry's
// nondeterministic instruments: they appear only in Snapshot(true) and
// never in the deterministic snapshot. A nil *Timer accepts every call
// as a no-op.
type Timer struct {
	ns    atomic.Int64
	count atomic.Int64
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	if t != nil {
		t.ns.Add(int64(d))
		t.count.Add(1)
	}
}

// Total returns the accumulated duration (0 on nil).
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.ns.Load())
}

// Count returns the number of observations (0 on nil).
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// PowersOf2Buckets returns the fixed bucket layout 1, 2, 4, ... 2^(n-1)
// — the registry's standard layout for count-like observations (flow
// units per round, replicas per round, ...). A fixed layout keeps
// histogram snapshots comparable across runs and code versions.
func PowersOf2Buckets(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = 1 << uint(i)
	}
	return out
}

// Registry is a process-wide named-instrument registry. Instruments are
// created on first use and live for the registry's lifetime; lookups
// take a mutex but the returned instruments update lock-free, so hot
// paths should resolve instruments once and reuse them. A nil
// *Registry returns nil instruments from every getter, which in turn
// no-op — disabling observability is passing a nil registry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	timers   map[string]*Timer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		timers:   make(map[string]*Timer),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (bounds must be sorted ascending; later
// calls reuse the existing layout and ignore bounds).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		b := make([]int64, len(bounds))
		copy(b, bounds)
		h = &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge in a snapshot.
type GaugeSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistSnap is one histogram in a snapshot. Buckets[i] counts
// observations <= Bounds[i]; Buckets[len(Bounds)] is the overflow
// bucket.
type HistSnap struct {
	Name    string  `json:"name"`
	Bounds  []int64 `json:"bounds"`
	Buckets []int64 `json:"buckets"`
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
}

// TimerSnap is one wall-clock timer in a snapshot.
type TimerSnap struct {
	Name    string `json:"name"`
	TotalNs int64  `json:"total_ns"`
	Count   int64  `json:"count"`
}

// Snapshot is a point-in-time copy of a registry, sorted by instrument
// name so that rendering it is deterministic.
type Snapshot struct {
	Counters   []CounterSnap `json:"counters"`
	Gauges     []GaugeSnap   `json:"gauges,omitempty"`
	Histograms []HistSnap    `json:"histograms,omitempty"`
	Timers     []TimerSnap   `json:"timers,omitempty"`
}

// Snapshot copies the registry's current state. With withTimings false
// it returns the deterministic snapshot — counters, gauges, and
// histograms only — which is byte-identical (via WriteJSON) for any
// worker count scheduling the same workload. withTimings true adds the
// wall-clock timers. A nil registry yields an empty snapshot.
func (r *Registry) Snapshot(withTimings bool) Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		hs := HistSnap{
			Name:    name,
			Bounds:  append([]int64(nil), h.bounds...),
			Buckets: make([]int64, len(h.buckets)),
			Count:   h.Count(),
			Sum:     h.Sum(),
		}
		for i := range h.buckets {
			hs.Buckets[i] = h.buckets[i].Load()
		}
		s.Histograms = append(s.Histograms, hs)
	}
	if withTimings {
		for name, t := range r.timers {
			s.Timers = append(s.Timers, TimerSnap{Name: name, TotalNs: int64(t.Total()), Count: t.Count()})
		}
	}
	sort.Slice(s.Counters, func(a, b int) bool { return s.Counters[a].Name < s.Counters[b].Name })
	sort.Slice(s.Gauges, func(a, b int) bool { return s.Gauges[a].Name < s.Gauges[b].Name })
	sort.Slice(s.Histograms, func(a, b int) bool { return s.Histograms[a].Name < s.Histograms[b].Name })
	sort.Slice(s.Timers, func(a, b int) bool { return s.Timers[a].Name < s.Timers[b].Name })
	return s
}

// WriteJSON renders the snapshot as indented JSON. The encoding is
// deterministic: instruments are pre-sorted by name and all values are
// integers.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders the snapshot as aligned "name value" lines, timers
// as seconds.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "counter %-40s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "gauge   %-40s %d\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "hist    %-40s count=%d sum=%d\n", h.Name, h.Count, h.Sum); err != nil {
			return err
		}
	}
	for _, t := range s.Timers {
		if _, err := fmt.Fprintf(w, "timer   %-40s %.6fs n=%d\n",
			t.Name, time.Duration(t.TotalNs).Seconds(), t.Count); err != nil {
			return err
		}
	}
	return nil
}
