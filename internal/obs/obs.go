// Package obs is the repository's dependency-free observability layer:
// a typed metrics registry (counters, gauges, histograms with fixed
// bucket layouts, wall-clock timers), a structured per-round trace
// recorder with a ring-buffer cap, and an opt-in pprof/expvar debug
// server. Everything is safe for concurrent use and nil-safe — a nil
// *Registry, *Tracer, or instrument accepts every call as a no-op, so
// instrumented hot paths cost a nil check when observability is
// disabled.
//
// # Determinism contract
//
// The scheduler's reproducibility guarantee (identical plans and
// metrics for every Workers count, see internal/core and internal/sim)
// extends to this layer:
//
//   - counters, gauges, and histograms record logical quantities
//     (flow units, replicas, iterations, ...) via commutative atomic
//     updates, so Snapshot(false) — the deterministic snapshot — is
//     byte-identical for any worker count and any goroutine
//     interleaving of the same workload;
//   - wall-clock state (timers, and duration-kind event attributes) is
//     inherently nondeterministic and therefore segregated: timers
//     appear only in Snapshot(true), and a Tracer constructed with
//     dropTimings=true drops duration attributes at emit, making the
//     JSONL event stream byte-identical as well;
//   - trace events are ordered by the emitting code, which must emit
//     them from a sequential section (the simulator flushes per-round
//     events in slot order from its sequential epilogue).
package obs

import "time"

// PhaseTimings is the wall-clock breakdown of one scheduling round (or
// an accumulation of rounds) into the scheduler's phases: content
// clustering, request balancing (the θ sweep plus the residual pass),
// and replication (Procedure 1). The simulate phase — everything
// around the per-round scheduling, i.e. the total run wall clock — is
// tracked separately by the simulator.
type PhaseTimings struct {
	Cluster   time.Duration
	Balance   time.Duration
	Replicate time.Duration
}

// Add returns the field-wise sum of p and q.
func (p PhaseTimings) Add(q PhaseTimings) PhaseTimings {
	return PhaseTimings{
		Cluster:   p.Cluster + q.Cluster,
		Balance:   p.Balance + q.Balance,
		Replicate: p.Replicate + q.Replicate,
	}
}

// Total returns the summed duration of all phases.
func (p PhaseTimings) Total() time.Duration {
	return p.Cluster + p.Balance + p.Replicate
}
