package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
	"time"
)

// AttrKind discriminates the value carried by an Attr.
type AttrKind int

const (
	// KindInt is an integer attribute.
	KindInt AttrKind = iota + 1
	// KindFloat is a float attribute.
	KindFloat
	// KindStr is a string attribute.
	KindStr
	// KindDur is a wall-clock duration attribute (nanoseconds). Unlike
	// the other kinds it is nondeterministic, and a Tracer constructed
	// with dropTimings=true drops it at emit.
	KindDur
)

// Attr is one key/value attribute of an Event. Exactly one of the
// value fields is meaningful, selected by Kind.
type Attr struct {
	Key   string
	Kind  AttrKind
	Int   int64
	Float float64
	Str   string
}

// I returns an integer attribute.
func I(key string, v int64) Attr { return Attr{Key: key, Kind: KindInt, Int: v} }

// F returns a float attribute.
func F(key string, v float64) Attr { return Attr{Key: key, Kind: KindFloat, Float: v} }

// S returns a string attribute.
func S(key string, v string) Attr { return Attr{Key: key, Kind: KindStr, Str: v} }

// D returns a duration attribute (timing-kind; dropped by tracers
// configured for deterministic output).
func D(key string, d time.Duration) Attr { return Attr{Key: key, Kind: KindDur, Int: int64(d)} }

// Event is one structured trace event: a type tag, the timeslot it
// belongs to (-1 when not slot-scoped), and ordered attributes. The
// Seq number is assigned by the Tracer at emit time.
type Event struct {
	Seq   int64
	Type  string
	Slot  int
	Attrs []Attr
}

// appendJSON renders the event as a single JSON object with a stable
// key order (seq, type, slot, then attributes in emit order), so equal
// event sequences serialise to byte-identical JSONL.
func (e Event) appendJSON(b []byte) []byte {
	b = append(b, `{"seq":`...)
	b = strconv.AppendInt(b, e.Seq, 10)
	b = append(b, `,"type":`...)
	b = strconv.AppendQuote(b, e.Type)
	b = append(b, `,"slot":`...)
	b = strconv.AppendInt(b, int64(e.Slot), 10)
	for _, a := range e.Attrs {
		b = append(b, ',')
		b = strconv.AppendQuote(b, a.Key)
		b = append(b, ':')
		switch a.Kind {
		case KindFloat:
			b = strconv.AppendFloat(b, a.Float, 'g', -1, 64)
		case KindStr:
			b = strconv.AppendQuote(b, a.Str)
		default: // KindInt, KindDur
			b = strconv.AppendInt(b, a.Int, 10)
		}
	}
	return append(b, '}')
}

// DefaultTracerCap is the default ring-buffer capacity of a Tracer.
const DefaultTracerCap = 4096

// Tracer records structured events into a bounded ring buffer: once
// capacity is reached the oldest events are dropped (and counted), so
// tracing a long run costs bounded memory. Emit is safe for concurrent
// use, but event ORDER is the caller's contract — for deterministic
// sequences, emit from a sequential section (the simulator flushes
// per-round events in slot order). A nil *Tracer accepts every call as
// a no-op.
type Tracer struct {
	mu          sync.Mutex
	buf         []Event
	next        int
	full        bool
	seq         int64
	dropped     int64
	dropTimings bool
}

// NewTracer returns a tracer holding at most capacity events
// (DefaultTracerCap when capacity <= 0). With dropTimings true,
// duration-kind attributes are stripped at emit so the recorded
// sequence — and its JSONL rendering — is deterministic.
func NewTracer(capacity int, dropTimings bool) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerCap
	}
	return &Tracer{buf: make([]Event, 0, capacity), dropTimings: dropTimings}
}

// Emit records one event, assigning its sequence number.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emitLocked(ev)
}

// EmitAll records events in order, stamping each with the slot.
func (t *Tracer) EmitAll(slot int, evs []Event) {
	if t == nil || len(evs) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, ev := range evs {
		ev.Slot = slot
		t.emitLocked(ev)
	}
}

func (t *Tracer) emitLocked(ev Event) {
	if t.dropTimings {
		kept := ev.Attrs[:0:0]
		for _, a := range ev.Attrs {
			if a.Kind != KindDur {
				kept = append(kept, a)
			}
		}
		ev.Attrs = kept
	} else {
		ev.Attrs = append([]Attr(nil), ev.Attrs...)
	}
	ev.Seq = t.seq
	t.seq++
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
		return
	}
	// Ring: overwrite the oldest event.
	t.buf[t.next] = ev
	t.next = (t.next + 1) % cap(t.buf)
	t.full = true
	t.dropped++
}

// Events returns a copy of the retained events in emit order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if t.full {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// Dropped returns how many events the ring buffer has evicted.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// WriteJSONL writes the retained events as JSON lines in emit order.
// For a tracer constructed with dropTimings=true the output is
// byte-identical across runs that emit equal event sequences.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	var line []byte
	for _, ev := range t.Events() {
		line = ev.appendJSON(line[:0])
		line = append(line, '\n')
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}
