package invariant

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/geo"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/trace"
)

// shardCheckingPolicy wraps the sharded policy and runs every slot's
// merged plan through CheckPlan — against the slot's effective
// (fault-degraded) constraints — and the materialised assignment
// through CheckAssignment.
type shardCheckingPolicy struct {
	inner sim.Scheduler
	slots int
	errs  []error
}

func (c *shardCheckingPolicy) Name() string { return c.inner.Name() }

func (c *shardCheckingPolicy) Schedule(ctx *sim.SlotContext) (*sim.Assignment, error) {
	asg, err := c.inner.Schedule(ctx)
	if err != nil {
		return nil, err
	}
	c.slots++
	cons := core.Constraints{Service: ctx.EffectiveCapacity(), Cache: ctx.EffectiveCacheCapacity()}
	if cerr := CheckPlan(ctx.World, ctx.Demand, cons, asg.Plan); cerr != nil {
		c.errs = append(c.errs, fmt.Errorf("slot %d: plan: %w", ctx.Slot, cerr))
	}
	if _, cerr := CheckAssignment(ctx, asg); cerr != nil {
		c.errs = append(c.errs, fmt.Errorf("slot %d: assignment: %w", ctx.Slot, cerr))
	}
	return asg, nil
}

// TestShardedPlanInvariants runs the sharded scheduler through the
// simulator for every partitioner × fault family and asserts each
// slot's merged plan and materialised assignment pass the full
// first-principles checks.
func TestShardedPlanInvariants(t *testing.T) {
	world, tr := genWorld(t, 3, nil)

	partitioners := map[string]shard.Params{
		"grid-4km":  {CellKm: 4},
		"grid-2km":  {CellKm: 2},
		"cluster-5": {Shards: 5},
	}
	families := map[string]sim.Options{
		"clean": {Seed: 9},
		"churn": {Seed: 9, Faults: &fault.Scenario{
			Name:  "churn",
			Churn: &fault.MarkovChurn{FailPerSlot: 0.15, RecoverPerSlot: 0.5},
		}},
		"outage": {Seed: 9, Faults: &fault.Scenario{
			Name:    "outage",
			Outages: []fault.RegionalOutage{{Center: geo.Point{X: 8, Y: 5}, RadiusKm: 3, StartSlot: 1, EndSlot: 3}},
		}},
		"degradation": {Seed: 9, Faults: &fault.Scenario{
			Name: "degradation",
			Degradations: []fault.CapacityDegradation{
				{StartSlot: 0, EndSlot: 3, Fraction: 0.5, ServiceFactor: 0.4, CacheFactor: 0.6},
			},
		}},
		"flash-crowd": {Seed: 9, Faults: &fault.Scenario{
			Name:        "flash",
			FlashCrowds: []fault.FlashCrowd{{StartSlot: 1, EndSlot: 3, TopVideos: 3, Multiplier: 3}},
		}},
		"stale-reports": {Seed: 9, Faults: &fault.Scenario{
			Name:      "stale",
			Staleness: &fault.StaleReports{LagSlots: 1, DropFraction: 0.2},
		}},
	}

	for fname, opts := range families {
		for pname, params := range partitioners {
			t.Run(fname+"/"+pname, func(t *testing.T) {
				pol := &shardCheckingPolicy{inner: shard.NewPolicy(params)}
				if _, err := sim.Run(world, tr, pol, opts); err != nil {
					t.Fatalf("Run: %v", err)
				}
				if pol.slots == 0 {
					t.Fatal("policy never scheduled a slot")
				}
				for _, err := range pol.errs {
					t.Error(err)
				}
			})
		}
	}
}

// boundaryWorld builds a three-shard world whose sharded round is
// guaranteed to produce a boundary (cross-shard) move: hotspot 0 is
// overloaded alone in its shard, the others hold all the slack.
func boundaryWorld(t *testing.T) (*trace.World, *core.Demand) {
	t.Helper()
	world := &trace.World{
		Bounds: geo.Rect{MinX: 0, MinY: 0, MaxX: 20, MaxY: 20},
		Hotspots: []trace.Hotspot{
			{ID: 0, Location: geo.Point{X: 1, Y: 1}, ServiceCapacity: 2, CacheCapacity: 4},
			{ID: 1, Location: geo.Point{X: 11, Y: 1}, ServiceCapacity: 10, CacheCapacity: 4},
			{ID: 2, Location: geo.Point{X: 1, Y: 11}, ServiceCapacity: 10, CacheCapacity: 4},
		},
		NumVideos:     16,
		CDNDistanceKm: 28,
	}
	if err := world.Validate(); err != nil {
		t.Fatalf("hand-built world invalid: %v", err)
	}
	d := core.NewDemand(3)
	d.Add(0, 1, 10)
	return world, d
}

// TestShardedBoundaryCorruptionDetected corrupts a merged plan at a
// shard boundary in every structurally distinct way and requires
// CheckPlan to reject each one.
func TestShardedBoundaryCorruptionDetected(t *testing.T) {
	world, d := boundaryWorld(t)

	solve := func(t *testing.T) (*shard.Scheduler, *core.Plan) {
		t.Helper()
		s, err := shard.New(world, shard.Params{CellKm: 5})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		plan, err := s.ScheduleRound(d.Clone(), core.Constraints{})
		if err != nil {
			t.Fatalf("ScheduleRound: %v", err)
		}
		return s, plan
	}

	// The clean plan must pass, and must actually contain a boundary
	// move — otherwise the corruptions below prove nothing.
	s, clean := solve(t)
	if err := CheckPlan(world, d, core.Constraints{}, clean); err != nil {
		t.Fatalf("clean sharded plan rejected: %v", err)
	}
	boundaryIdx := -1
	for i, r := range clean.Redirects {
		if s.Partition().OfHotspot[r.From] != s.Partition().OfHotspot[r.To] {
			boundaryIdx = i
			break
		}
	}
	if boundaryIdx < 0 {
		t.Fatal("sharded round produced no boundary move on the adversarial world")
	}

	corruptions := map[string]func(s *shard.Scheduler, plan *core.Plan){
		"inflate boundary redirect count": func(s *shard.Scheduler, plan *core.Plan) {
			plan.Redirects[boundaryIdx].Count++
		},
		"drop boundary placement at target": func(s *shard.Scheduler, plan *core.Plan) {
			r := plan.Redirects[boundaryIdx]
			delete(plan.Placement[r.To], int(r.Video))
		},
		"re-strand moved flow at source": func(s *shard.Scheduler, plan *core.Plan) {
			r := plan.Redirects[boundaryIdx]
			plan.OverflowToCDN[r.From]++
		},
		"desync flows from redirects": func(s *shard.Scheduler, plan *core.Plan) {
			plan.Flows = plan.Flows[:0]
		},
		"misreport omega": func(s *shard.Scheduler, plan *core.Plan) {
			plan.Stats.Omega1Km += 5
		},
		"retarget move into the source shard": func(s *shard.Scheduler, plan *core.Plan) {
			plan.Redirects[boundaryIdx].To = plan.Redirects[boundaryIdx].From
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			s, plan := solve(t)
			corrupt(s, plan)
			if err := CheckPlan(world, d, core.Constraints{}, plan); err == nil {
				t.Fatal("CheckPlan accepted the boundary-corrupted plan")
			}
		})
	}
}
