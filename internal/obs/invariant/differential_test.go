package invariant

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/lp"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/trace"
)

// lpLowerBound solves the full LP relaxation of problem (U) on one
// slot's exact demand: every hotspot is a candidate server for every
// demand group (plus the CDN), with the slot's effective service and
// cache capacities. Any feasible enforced outcome of the slot — from
// any scheme — induces a feasible fractional point (x̂ the served
// shares, ŷ the placement indicator), so the optimum is a true lower
// bound on α·Ω1 + β·Ω2.
func lpLowerBound(t *testing.T, ctx *sim.SlotContext, alpha, beta float64) float64 {
	t.Helper()
	m := len(ctx.World.Hotspots)

	type group struct {
		hotspot int
		video   trace.VideoID
		count   int64
	}
	var groups []group
	for h := 0; h < m; h++ {
		for v, n := range ctx.Demand.PerVideo[h] {
			if n > 0 {
				groups = append(groups, group{hotspot: h, video: v, count: n})
			}
		}
	}
	sort.Slice(groups, func(a, b int) bool {
		if groups[a].hotspot != groups[b].hotspot {
			return groups[a].hotspot < groups[b].hotspot
		}
		return groups[a].video < groups[b].video
	})

	var prob lp.Problem
	prob.Pricing = lp.DantzigPricing
	type xKey struct{ g, j int }
	xVar := make(map[xKey]lp.Var)
	yVar := make(map[int64]lp.Var)
	yKey := func(v trace.VideoID, j int) int64 { return int64(v)*int64(m) + int64(j) }
	xCDN := make([]lp.Var, len(groups))
	for gi, g := range groups {
		loc := ctx.World.Hotspots[g.hotspot].Location
		for j := 0; j < m; j++ {
			d := loc.DistanceTo(ctx.World.Hotspots[j].Location)
			xVar[xKey{g: gi, j: j}] = prob.AddVariable(alpha * float64(g.count) * d)
			if _, ok := yVar[yKey(g.video, j)]; !ok {
				yVar[yKey(g.video, j)] = prob.AddVariable(beta)
			}
		}
		xCDN[gi] = prob.AddVariable(alpha * float64(g.count) * ctx.World.CDNDistanceKm)
	}

	// Each group fully assigned (Eq. 4).
	for gi := range groups {
		row := map[lp.Var]float64{xCDN[gi]: 1}
		for j := 0; j < m; j++ {
			row[xVar[xKey{g: gi, j: j}]] = 1
		}
		if err := prob.AddConstraint(row, lp.EQ, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Serving requires placement (Eq. 5).
	for gi, g := range groups {
		for j := 0; j < m; j++ {
			row := map[lp.Var]float64{
				xVar[xKey{g: gi, j: j}]: 1,
				yVar[yKey(g.video, j)]:  -1,
			}
			if err := prob.AddConstraint(row, lp.LE, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Service capacity (Eq. 6).
	svc := ctx.EffectiveCapacity()
	for j := 0; j < m; j++ {
		row := make(map[lp.Var]float64, len(groups))
		for gi, g := range groups {
			row[xVar[xKey{g: gi, j: j}]] = float64(g.count)
		}
		if err := prob.AddConstraint(row, lp.LE, float64(svc[j])); err != nil {
			t.Fatal(err)
		}
	}
	// Cache capacity (Eq. 7).
	cache := ctx.EffectiveCacheCapacity()
	perCache := make([]map[lp.Var]float64, m)
	for k, v := range yVar {
		j := int(k % int64(m))
		if perCache[j] == nil {
			perCache[j] = make(map[lp.Var]float64)
		}
		perCache[j][v] = 1
	}
	for j, row := range perCache {
		if row == nil {
			continue
		}
		if err := prob.AddConstraint(row, lp.LE, float64(cache[j])); err != nil {
			t.Fatal(err)
		}
	}

	sol, err := prob.Solve()
	if err != nil {
		t.Fatalf("LP solve: %v", err)
	}
	if sol.Status != lp.Optimal {
		t.Fatalf("LP status %v", sol.Status)
	}
	return sol.Objective
}

// enforcedObjective schedules the slot with the given scheme and
// evaluates α·Ω1 + β·Ω2 on the enforced outcome.
func enforcedObjective(t *testing.T, ctx *sim.SlotContext, pol sim.Scheduler, alpha, beta float64) float64 {
	t.Helper()
	asg, err := pol.Schedule(ctx)
	if err != nil {
		t.Fatalf("%s: %v", pol.Name(), err)
	}
	out, err := CheckAssignment(ctx, asg)
	if err != nil {
		t.Fatalf("%s assignment invalid: %v", pol.Name(), err)
	}
	return out.Objective(alpha, beta)
}

// TestDifferentialObjectiveBounds sandwiches RBCAer's enforced
// objective between the LP-relaxation lower bound (no integer feasible
// point can beat the relaxed optimum) and Nearest's objective (the
// heuristic must not lose to never redirecting), table-driven over
// (α, β) weights and θ-sweep grids, on an oversubscribed single-slot
// world.
func TestDifferentialObjectiveBounds(t *testing.T) {
	world, tr := genWorld(t, 3, func(cfg *trace.Config) {
		// Dense downtown block: hotspots within the θ sweep's reach of
		// each other, demand well past the fleet's service capacity, so
		// redirection genuinely competes with the CDN.
		cfg.Bounds = geo.Rect{MinX: 0, MinY: 0, MaxX: 3, MaxY: 2}
		cfg.NumHotspots = 8
		cfg.NumVideos = 40
		cfg.NumUsers = 150
		cfg.NumRequests = 700
		cfg.NumRegions = 2
		cfg.RegionStdKm = 0.5
		cfg.Slots = 1
		// Capacities that leave part of the fleet underutilized while
		// the region-centre hotspots overload, so the balancer has both
		// surplus and room to move it into.
		cfg.ServiceCapacityFrac = 0.6
		cfg.CacheCapacityFrac = 0.25
	})
	ctx := slotContext(t, world, tr, 0)

	thetas := []struct{ t1, t2 float64 }{
		{0.5, 1.5}, // the paper's default sweep
		{0.5, 1.0},
		{1.0, 2.0},
	}
	weights := []struct{ alpha, beta float64 }{
		{1, 0.5},
		{1, 1},
		{1, 2},
	}
	const eps = 1e-6
	improved := false
	for _, w := range weights {
		bound := lpLowerBound(t, ctx, w.alpha, w.beta)
		nearest := enforcedObjective(t, ctx, scheme.Nearest{}, w.alpha, w.beta)
		t.Logf("α=%v β=%v: LP bound %.3f, Nearest %.3f", w.alpha, w.beta, bound, nearest)
		if bound > nearest+eps {
			t.Fatalf("α=%v β=%v: LP bound %.3f exceeds Nearest %.3f — relaxation is wrong",
				w.alpha, w.beta, bound, nearest)
		}
		for _, th := range thetas {
			params := core.DefaultParams()
			params.Theta1, params.Theta2 = th.t1, th.t2
			obj := enforcedObjective(t, ctx, scheme.NewRBCAer(params), w.alpha, w.beta)
			t.Logf("α=%v β=%v θ=[%v,%v]: RBCAer %.3f", w.alpha, w.beta, th.t1, th.t2, obj)
			if obj < bound-eps*(1+bound) {
				t.Errorf("α=%v β=%v θ=[%v,%v]: RBCAer objective %.3f below LP lower bound %.3f",
					w.alpha, w.beta, th.t1, th.t2, obj, bound)
			}
			if obj > nearest+eps {
				t.Errorf("α=%v β=%v θ=[%v,%v]: RBCAer objective %.3f worse than Nearest %.3f",
					w.alpha, w.beta, th.t1, th.t2, obj, nearest)
			}
			if obj < nearest-eps {
				improved = true
			}
		}
	}
	// A sandwich where RBCAer never beats Nearest means the world has
	// degenerated to no balancing opportunity and the test is vacuous.
	if !improved {
		t.Error("RBCAer never improved on Nearest; world no longer exercises redirection")
	}
}
