// Package invariant checks scheduling outputs against the paper's
// feasibility constraints, independently of the code that produced
// them. It is a test harness: property tests run every scheme's output
// through these checks across seeds and fault timelines, so a
// scheduler change that violates a constraint — overloading a hotspot,
// overfilling a cache, dropping or double-assigning requests, or
// drifting the Ω1/Ω2 accounting away from the plan — fails loudly.
package invariant

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// omega1Eps tolerates float summation drift when recomputing Ω1.
const omega1Eps = 1e-6

// effective resolves a round's effective service and cache capacities
// from the constraints, falling back to the world's nominal values.
func effective(world *trace.World, cons core.Constraints) (svc []int64, cache []int) {
	m := len(world.Hotspots)
	svc = cons.Service
	if svc == nil {
		svc = make([]int64, m)
		for h := range world.Hotspots {
			svc[h] = world.Hotspots[h].ServiceCapacity
		}
	}
	cache = cons.Cache
	if cache == nil {
		cache = make([]int, m)
		for h := range world.Hotspots {
			cache[h] = world.Hotspots[h].CacheCapacity
		}
	}
	return svc, cache
}

// CheckPlan verifies a core.Plan against the demand and effective
// constraints it was scheduled under:
//
//   - replica count per hotspot within the effective cache capacity
//     c_h, and Stats.Replicas consistent with the placement;
//   - every redirect realisable: positive count, distinct endpoints,
//     video placed at the target, and per-video redirected demand
//     within the source's aggregated demand;
//   - flow conservation (exactly-once assignment at hotspot
//     granularity): for every hotspot, redirected-out workload plus
//     CDN overflow equals its surplus max(0, λ_h − s_h), and
//     Plan.Flows match the per-pair redirect totals;
//   - per-hotspot service load within the effective capacity s_h:
//     retained demand plus redirected inflow never exceeds s_h;
//   - the Stats ledger consistent: Σ Flows = MovedFlow −
//     UnrealizedFlow ≤ MaxFlow, StrandedToCDN = Σ OverflowToCDN, and
//     Ω1 recomputed from the redirects and overflow matches
//     Stats.Omega1Km (Ω2 is Stats.Replicas).
func CheckPlan(world *trace.World, d *core.Demand, cons core.Constraints, plan *core.Plan) error {
	if world == nil || d == nil || plan == nil {
		return fmt.Errorf("invariant: nil world, demand, or plan")
	}
	m := len(world.Hotspots)
	if d.NumHotspots() != m {
		return fmt.Errorf("invariant: demand covers %d hotspots, world has %d", d.NumHotspots(), m)
	}
	svc, cache := effective(world, cons)

	// Cache constraint and Ω2 consistency.
	if len(plan.Placement) != m {
		return fmt.Errorf("invariant: placement covers %d hotspots, want %d", len(plan.Placement), m)
	}
	var replicas int64
	for h, pl := range plan.Placement {
		if pl.Len() > cache[h] {
			return fmt.Errorf("invariant: hotspot %d places %d videos, effective cache is %d",
				h, pl.Len(), cache[h])
		}
		replicas += int64(pl.Len())
	}
	if replicas != plan.Stats.Replicas {
		return fmt.Errorf("invariant: Stats.Replicas = %d, placement holds %d",
			plan.Stats.Replicas, replicas)
	}

	// Redirect validity and per-hotspot accounting.
	if len(plan.OverflowToCDN) != m {
		return fmt.Errorf("invariant: overflow covers %d hotspots, want %d", len(plan.OverflowToCDN), m)
	}
	outBy := make([]int64, m)
	inBy := make([]int64, m)
	perVideoOut := make([]map[trace.VideoID]int64, m)
	pairTotals := make(map[[2]int]int64)
	for k, r := range plan.Redirects {
		i, j := int(r.From), int(r.To)
		if i < 0 || i >= m || j < 0 || j >= m {
			return fmt.Errorf("invariant: redirect %d endpoints (%d → %d) out of range", k, i, j)
		}
		if i == j {
			return fmt.Errorf("invariant: redirect %d is a self-loop at hotspot %d", k, i)
		}
		if r.Count <= 0 {
			return fmt.Errorf("invariant: redirect %d has non-positive count %d", k, r.Count)
		}
		if !plan.Placement[j].Contains(int(r.Video)) {
			return fmt.Errorf("invariant: redirect %d sends video %d to hotspot %d, which does not place it",
				k, r.Video, j)
		}
		outBy[i] += r.Count
		inBy[j] += r.Count
		if perVideoOut[i] == nil {
			perVideoOut[i] = make(map[trace.VideoID]int64)
		}
		perVideoOut[i][r.Video] += r.Count
		pairTotals[[2]int{i, j}] += r.Count
	}
	for h, byVideo := range perVideoOut {
		for v, n := range byVideo {
			if n > d.PerVideo[h][v] {
				return fmt.Errorf("invariant: hotspot %d redirects %d requests for video %d but aggregates only %d",
					h, n, v, d.PerVideo[h][v])
			}
		}
	}

	// Plan.Flows must be exactly the per-pair redirect totals.
	flowPairs := make(map[[2]int]int64)
	for k, f := range plan.Flows {
		if f.Amount <= 0 {
			return fmt.Errorf("invariant: flow %d has non-positive amount %d", k, f.Amount)
		}
		flowPairs[[2]int{int(f.From), int(f.To)}] += f.Amount
	}
	if len(flowPairs) != len(pairTotals) {
		return fmt.Errorf("invariant: %d flow pairs vs %d redirect pairs", len(flowPairs), len(pairTotals))
	}
	for pair, amt := range flowPairs {
		if pairTotals[pair] != amt {
			return fmt.Errorf("invariant: flow %d→%d carries %d, redirects realise %d",
				pair[0], pair[1], amt, pairTotals[pair])
		}
	}

	// Flow conservation per hotspot, and the service-capacity bound
	// (paper constraint (2)): retained demand plus inflow fits s_h.
	var totalOut, totalOverflow int64
	for h := 0; h < m; h++ {
		o := plan.OverflowToCDN[h]
		if o < 0 {
			return fmt.Errorf("invariant: negative overflow %d at hotspot %d", o, h)
		}
		surplus := d.Totals[h] - svc[h]
		if surplus < 0 {
			surplus = 0
		}
		if outBy[h]+o != surplus {
			return fmt.Errorf("invariant: hotspot %d redirects %d + overflow %d ≠ surplus %d (λ=%d, s=%d)",
				h, outBy[h], o, surplus, d.Totals[h], svc[h])
		}
		retained := d.Totals[h] - outBy[h] - o
		if retained < 0 {
			return fmt.Errorf("invariant: hotspot %d retained demand is negative (%d)", h, retained)
		}
		if retained+inBy[h] > svc[h] {
			return fmt.Errorf("invariant: hotspot %d load %d (retained %d + inflow %d) exceeds effective capacity %d",
				h, retained+inBy[h], retained, inBy[h], svc[h])
		}
		totalOut += outBy[h]
		totalOverflow += o
	}

	// Stats ledger.
	st := plan.Stats
	if st.MovedFlow > st.MaxFlow {
		return fmt.Errorf("invariant: MovedFlow %d exceeds MaxFlow %d", st.MovedFlow, st.MaxFlow)
	}
	if st.UnrealizedFlow < 0 || st.UnrealizedFlow > st.MovedFlow {
		return fmt.Errorf("invariant: UnrealizedFlow %d outside [0, MovedFlow=%d]",
			st.UnrealizedFlow, st.MovedFlow)
	}
	if realized := st.MovedFlow - st.UnrealizedFlow; totalOut != realized {
		return fmt.Errorf("invariant: redirects realise %d, Stats claim MovedFlow−UnrealizedFlow = %d",
			totalOut, realized)
	}
	if totalOverflow != st.StrandedToCDN {
		return fmt.Errorf("invariant: Σ overflow = %d, Stats.StrandedToCDN = %d",
			totalOverflow, st.StrandedToCDN)
	}

	// Ω1 recompute from X (redirects + overflow), same summation order
	// as the scheduler.
	var omega1 float64
	for _, r := range plan.Redirects {
		omega1 += float64(r.Count) *
			world.Hotspots[r.From].Location.DistanceTo(world.Hotspots[r.To].Location)
	}
	omega1 += float64(totalOverflow) * world.CDNDistanceKm
	if diff := math.Abs(omega1 - st.Omega1Km); diff > omega1Eps*math.Max(1, math.Abs(omega1)) {
		return fmt.Errorf("invariant: Ω1 recomputed %.9f, Stats.Omega1Km %.9f (Δ=%g)",
			omega1, st.Omega1Km, diff)
	}
	return nil
}

// Outcome is the enforced result of one slot assignment: what each
// hotspot actually serves once the simulator's feasibility rule
// (placement present and capacity remaining, else CDN) is applied.
type Outcome struct {
	// Served[h] is the number of requests hotspot h serves.
	Served []int64
	// CDN is the number of requests the origin serves.
	CDN int64
	// Replicas is Σ placement sizes (Ω2 for this slot).
	Replicas int64
	// Omega1Km is Σ over requests of the aggregation-hotspot → server
	// distance (0 when served at the request's own aggregation
	// hotspot, CDNDistanceKm for origin-served requests).
	Omega1Km float64
}

// CheckAssignment verifies a slot assignment from any scheme against
// the slot's effective constraints — placement within effective cache
// capacities, every request assigned exactly one well-formed target —
// then applies the simulator's feasibility enforcement and returns the
// enforced outcome, whose per-hotspot loads are verified against the
// effective service capacities.
func CheckAssignment(ctx *sim.SlotContext, asg *sim.Assignment) (*Outcome, error) {
	if ctx == nil || asg == nil {
		return nil, fmt.Errorf("invariant: nil context or assignment")
	}
	m := len(ctx.World.Hotspots)
	if len(asg.Placement) != m {
		return nil, fmt.Errorf("invariant: placement covers %d hotspots, want %d", len(asg.Placement), m)
	}
	if len(asg.Target) != len(ctx.Requests) {
		return nil, fmt.Errorf("invariant: %d targets for %d requests", len(asg.Target), len(ctx.Requests))
	}
	cache := ctx.EffectiveCacheCapacity()
	out := &Outcome{Served: make([]int64, m)}
	for h, pl := range asg.Placement {
		if pl.Len() > cache[h] {
			return nil, fmt.Errorf("invariant: hotspot %d places %d videos, effective cache is %d",
				h, pl.Len(), cache[h])
		}
		out.Replicas += int64(pl.Len())
	}

	// Enforce feasibility exactly as the simulator does, in request
	// order, and account the aggregation-hotspot → server distances.
	capLeft := append([]int64(nil), ctx.EffectiveCapacity()...)
	for r, req := range ctx.Requests {
		target := asg.Target[r]
		if target != sim.CDN && (target < 0 || target >= m) {
			return nil, fmt.Errorf("invariant: request %d target %d out of range", r, target)
		}
		if target != sim.CDN {
			if capLeft[target] <= 0 || !asg.Placement[target].Contains(int(req.Video)) {
				target = sim.CDN
			}
		}
		if target == sim.CDN {
			out.CDN++
			out.Omega1Km += ctx.World.CDNDistanceKm
			continue
		}
		capLeft[target]--
		out.Served[target]++
		if h := ctx.Nearest[r]; h != target {
			out.Omega1Km += ctx.World.Hotspots[h].Location.
				DistanceTo(ctx.World.Hotspots[target].Location)
		}
	}
	svc := ctx.EffectiveCapacity()
	for h, n := range out.Served {
		if n > svc[h] {
			return nil, fmt.Errorf("invariant: hotspot %d serves %d, effective capacity is %d",
				h, n, svc[h])
		}
	}
	return out, nil
}

// Objective evaluates α·Ω1 + β·Ω2 for an enforced slot outcome: Ω1 is
// the total aggregation-hotspot → server distance (CDN requests at
// CDNDistanceKm) and Ω2 the number of replicas placed.
func (o *Outcome) Objective(alpha, beta float64) float64 {
	return alpha*o.Omega1Km + beta*float64(o.Replicas)
}
