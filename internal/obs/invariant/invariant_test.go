package invariant

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/similarity"
	"repro/internal/stats"
	"repro/internal/trace"
)

// genWorld builds a small calibrated world whose demand oversubscribes
// part of the fleet, so plans actually contain redirects and overflow.
func genWorld(t *testing.T, seed int64, mutate func(*trace.Config)) (*trace.World, *trace.Trace) {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.Seed = seed
	cfg.NumHotspots = 24
	cfg.NumVideos = 400
	cfg.NumUsers = 600
	cfg.NumRequests = 2600
	cfg.NumRegions = 4
	cfg.Slots = 4
	if mutate != nil {
		mutate(&cfg)
	}
	world, tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return world, tr
}

// slotContext packages one slot of the trace as a scheduling context.
func slotContext(t *testing.T, world *trace.World, tr *trace.Trace, slot int) *sim.SlotContext {
	t.Helper()
	index, err := world.Index()
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := sim.BuildSlotContext(world, index, slot, tr.BySlot()[slot], stats.SplitRand(int64(slot)+1, "invariant-test"))
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// constraintVariants enumerates the effective-capacity regimes a round
// can be scheduled under: nominal, a degraded fleet (half the hotspots
// at half service and half cache), and a partial blackout (every fourth
// hotspot at zero service).
func constraintVariants(world *trace.World) map[string]core.Constraints {
	m := len(world.Hotspots)
	nominalSvc := make([]int64, m)
	nominalCache := make([]int, m)
	for h := range world.Hotspots {
		nominalSvc[h] = world.Hotspots[h].ServiceCapacity
		nominalCache[h] = world.Hotspots[h].CacheCapacity
	}
	degSvc := append([]int64(nil), nominalSvc...)
	degCache := append([]int(nil), nominalCache...)
	for h := 0; h < m; h += 2 {
		degSvc[h] /= 2
		degCache[h] /= 2
	}
	blackSvc := append([]int64(nil), nominalSvc...)
	for h := 0; h < m; h += 4 {
		blackSvc[h] = 0
	}
	return map[string]core.Constraints{
		"nominal":  {},
		"degraded": {Service: degSvc, Cache: degCache},
		"blackout": {Service: blackSvc, Cache: nominalCache},
	}
}

// TestCheckPlanRBCAer is the core-level property test: every plan the
// scheduler emits — across trace seeds, slots, and capacity regimes —
// must satisfy all feasibility and accounting invariants.
func TestCheckPlanRBCAer(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		world, tr := genWorld(t, seed, nil)
		sched, err := core.New(world, core.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		for name, cons := range constraintVariants(world) {
			t.Run(fmt.Sprintf("seed%d/%s", seed, name), func(t *testing.T) {
				var redirects, overflow int64
				for slot := 0; slot < 2; slot++ {
					d := slotContext(t, world, tr, slot).Demand
					plan, err := sched.ScheduleRound(d, cons)
					if err != nil {
						t.Fatalf("slot %d: ScheduleRound: %v", slot, err)
					}
					if err := CheckPlan(world, d, cons, plan); err != nil {
						t.Errorf("slot %d: %v", slot, err)
					}
					redirects += int64(len(plan.Redirects))
					overflow += plan.Stats.StrandedToCDN
				}
				// The property test is vacuous on a plan with no
				// movement at all; the worlds are tuned to redirect.
				if redirects == 0 && overflow == 0 {
					t.Error("no redirects or overflow scheduled; world too idle to exercise invariants")
				}
			})
		}
	}
}

// TestCheckPlanDeltaRounds runs the same invariant bar over the
// incremental scheduler: a single stateful delta-mode scheduler walks
// every slot of the trace while the effective constraints flip between
// regimes, and every plan — cold, patched, replayed, or fallen back —
// must satisfy the full invariant set and match an independent full
// solve digest-for-digest.
func TestCheckPlanDeltaRounds(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		world, tr := genWorld(t, seed, nil)
		params := core.DefaultParams()
		params.DeltaThreshold = 1
		params.FullSolveEvery = 3
		sched, err := core.New(world, params)
		if err != nil {
			t.Fatal(err)
		}
		full, err := core.New(world, core.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		variants := constraintVariants(world)
		order := []string{"nominal", "nominal", "degraded", "blackout"}
		for slot := 0; slot < tr.Slots; slot++ {
			cons := variants[order[slot%len(order)]]
			d := slotContext(t, world, tr, slot).Demand
			plan, err := sched.ScheduleRound(d, cons)
			if err != nil {
				t.Fatalf("seed %d slot %d: delta ScheduleRound: %v", seed, slot, err)
			}
			if err := CheckPlan(world, d, cons, plan); err != nil {
				t.Errorf("seed %d slot %d (delta round=%v): %v", seed, slot, plan.Stats.DeltaRound, err)
			}
			ref, err := full.ScheduleRound(d.Clone(), cons)
			if err != nil {
				t.Fatalf("seed %d slot %d: full ScheduleRound: %v", seed, slot, err)
			}
			if plan.Digest() != ref.Digest() {
				t.Errorf("seed %d slot %d: delta plan diverges from full solve", seed, slot)
			}
		}
		if st := sched.DeltaStats(); st.Rounds == 0 || st.Fallbacks == 0 {
			t.Errorf("seed %d: delta stats %+v never exercised rounds and fallbacks", seed, st)
		}
	}
}

// TestCheckPlanNegative corrupts valid plans one invariant at a time
// and requires CheckPlan to fail loudly on each.
func TestCheckPlanNegative(t *testing.T) {
	world, tr := genWorld(t, 1, nil)
	cache0 := world.Hotspots[0].CacheCapacity

	corruptions := map[string]func(*core.Plan){
		"extra-redirect": func(p *core.Plan) {
			p.Redirects = append(p.Redirects, core.Redirect{From: 0, To: 1, Video: 0, Count: 5})
		},
		"self-loop": func(p *core.Plan) {
			p.Redirects = append(p.Redirects, core.Redirect{From: 2, To: 2, Video: 0, Count: 1})
		},
		"cache-overflow": func(p *core.Plan) {
			for v := world.NumVideos; p.Placement[0].Len() <= cache0; v++ {
				p.Placement[0].Add(v)
			}
		},
		"replica-ledger": func(p *core.Plan) {
			p.Stats.Replicas++
		},
		"omega1-drift": func(p *core.Plan) {
			p.Stats.Omega1Km += 1
		},
		"stranded-ledger": func(p *core.Plan) {
			p.Stats.StrandedToCDN++
		},
		"overflow-conservation": func(p *core.Plan) {
			p.OverflowToCDN[0]++
		},
		"moved-exceeds-max": func(p *core.Plan) {
			p.Stats.MovedFlow = p.Stats.MaxFlow + 1
		},
	}

	sched, err := core.New(world, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	d := slotContext(t, world, tr, 0).Demand
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			// The scheduler is deterministic, so a fresh schedule is a
			// fresh deep copy to corrupt.
			plan, err := sched.ScheduleRound(d, core.Constraints{})
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckPlan(world, d, core.Constraints{}, plan); err != nil {
				t.Fatalf("baseline plan already invalid: %v", err)
			}
			corrupt(plan)
			if err := CheckPlan(world, d, core.Constraints{}, plan); err == nil {
				t.Fatal("CheckPlan accepted the corrupted plan")
			}
		})
	}
}

// checkingPolicy wraps a scheme and runs every slot assignment through
// CheckAssignment before handing it to the simulator.
type checkingPolicy struct {
	inner sim.Scheduler
	slots int
	errs  []error
}

func (c *checkingPolicy) Name() string { return c.inner.Name() }

func (c *checkingPolicy) Schedule(ctx *sim.SlotContext) (*sim.Assignment, error) {
	asg, err := c.inner.Schedule(ctx)
	if err != nil {
		return nil, err
	}
	c.slots++
	if _, cerr := CheckAssignment(ctx, asg); cerr != nil {
		c.errs = append(c.errs, fmt.Errorf("slot %d: %w", ctx.Slot, cerr))
	}
	return asg, nil
}

// TestAllSchemesAssignmentInvariants runs every scheme through the
// simulator — clean and under a composite fault timeline — asserting
// each slot's assignment passes CheckAssignment.
func TestAllSchemesAssignmentInvariants(t *testing.T) {
	world, tr := genWorld(t, 1, nil)
	schemes := map[string]func() sim.Scheduler{
		"RBCAer":     func() sim.Scheduler { return scheme.NewRBCAer(core.DefaultParams()) },
		"Nearest":    func() sim.Scheduler { return scheme.Nearest{} },
		"Random":     func() sim.Scheduler { return scheme.Random{RadiusKm: 1.5} },
		"PowerOfTwo": func() sim.Scheduler { return scheme.PowerOfTwo{RadiusKm: 1.5} },
		"Reactive":   func() sim.Scheduler { return scheme.NewReactiveLRU() },
		"LP-based":   func() sim.Scheduler { return scheme.LPBased{MaxGroups: 120, Dantzig: true} },
	}
	scenarios := map[string]sim.Options{
		"clean": {Seed: 5},
		"faults": {Seed: 5, HotspotChurn: 0.05, Faults: &fault.Scenario{
			Name:  "invariant-stress",
			Churn: &fault.MarkovChurn{FailPerSlot: 0.1, RecoverPerSlot: 0.4},
			Degradations: []fault.CapacityDegradation{
				{StartSlot: 1, EndSlot: 3, Fraction: 0.5, ServiceFactor: 0.5, CacheFactor: 0.5},
			},
			FlashCrowds: []fault.FlashCrowd{{StartSlot: 1, EndSlot: 3, TopVideos: 3, Multiplier: 2}},
		}},
	}
	for sname, opts := range scenarios {
		for pname, build := range schemes {
			t.Run(sname+"/"+pname, func(t *testing.T) {
				pol := &checkingPolicy{inner: build()}
				if _, err := sim.Run(world, tr, pol, opts); err != nil {
					t.Fatalf("Run: %v", err)
				}
				if pol.slots == 0 {
					t.Fatal("policy never scheduled a slot")
				}
				for _, err := range pol.errs {
					t.Error(err)
				}
			})
		}
	}
}

// TestCheckAssignmentNegative corrupts a valid assignment in every
// structurally distinct way and requires CheckAssignment to reject it.
func TestCheckAssignmentNegative(t *testing.T) {
	world, tr := genWorld(t, 2, nil)
	ctx := slotContext(t, world, tr, 0)
	asg, err := (scheme.Nearest{}).Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckAssignment(ctx, asg); err != nil {
		t.Fatalf("baseline assignment invalid: %v", err)
	}
	if _, err := CheckAssignment(nil, asg); err == nil {
		t.Error("nil context accepted")
	}
	if _, err := CheckAssignment(ctx, nil); err == nil {
		t.Error("nil assignment accepted")
	}

	t.Run("short-placement", func(t *testing.T) {
		bad := *asg
		bad.Placement = asg.Placement[:len(asg.Placement)-1]
		if _, err := CheckAssignment(ctx, &bad); err == nil {
			t.Error("truncated placement accepted")
		}
	})
	t.Run("short-targets", func(t *testing.T) {
		bad := *asg
		bad.Target = asg.Target[:len(asg.Target)-1]
		if _, err := CheckAssignment(ctx, &bad); err == nil {
			t.Error("truncated targets accepted")
		}
	})
	t.Run("target-out-of-range", func(t *testing.T) {
		bad := *asg
		bad.Target = append([]int(nil), asg.Target...)
		bad.Target[0] = len(world.Hotspots) + 3
		if _, err := CheckAssignment(ctx, &bad); err == nil {
			t.Error("out-of-range target accepted")
		}
	})
	t.Run("cache-overflow", func(t *testing.T) {
		bad := *asg
		bad.Placement = append([]similarity.Set(nil), asg.Placement...)
		over := similarity.NewSet()
		for v := range asg.Placement[0] {
			over.Add(v)
		}
		cache := ctx.EffectiveCacheCapacity()
		for v := world.NumVideos; over.Len() <= cache[0]; v++ {
			over.Add(v)
		}
		bad.Placement[0] = over
		if _, err := CheckAssignment(ctx, &bad); err == nil {
			t.Error("oversized placement accepted")
		}
	})
}
