package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	g := r.Gauge("x")
	g.Set(7)
	if g.Value() != 0 {
		t.Fatalf("nil gauge value = %d", g.Value())
	}
	h := r.Histogram("x", PowersOf2Buckets(4))
	h.Observe(5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil histogram count=%d sum=%d", h.Count(), h.Sum())
	}
	tm := r.Timer("x")
	tm.Observe(time.Second)
	if tm.Total() != 0 || tm.Count() != 0 {
		t.Fatalf("nil timer total=%v count=%d", tm.Total(), tm.Count())
	}
	s := r.Snapshot(true)
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms)+len(s.Timers) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rounds")
	c.Add(2)
	c.Inc()
	if got := r.Counter("rounds").Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	g := r.Gauge("slots")
	g.Set(4)
	g.Set(9)
	if got := r.Gauge("slots").Value(); got != 9 {
		t.Fatalf("gauge = %d, want 9", got)
	}
	tm := r.Timer("phase")
	tm.Observe(2 * time.Millisecond)
	tm.Observe(3 * time.Millisecond)
	if tm.Total() != 5*time.Millisecond || tm.Count() != 2 {
		t.Fatalf("timer total=%v count=%d", tm.Total(), tm.Count())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("flow", []int64{1, 2, 4, 8})
	for _, v := range []int64{0, 1, 2, 3, 5, 8, 9, 100} {
		h.Observe(v)
	}
	s := r.Snapshot(false)
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %d", len(s.Histograms))
	}
	hs := s.Histograms[0]
	// <=1: {0,1}; <=2: {2}; <=4: {3}; <=8: {5,8}; overflow: {9,100}
	want := []int64{2, 1, 1, 2, 2}
	if len(hs.Buckets) != len(want) {
		t.Fatalf("buckets = %v", hs.Buckets)
	}
	for i, w := range want {
		if hs.Buckets[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, hs.Buckets[i], w, hs.Buckets)
		}
	}
	if hs.Count != 8 || hs.Sum != 128 {
		t.Fatalf("count=%d sum=%d", hs.Count, hs.Sum)
	}
}

func TestPowersOf2Buckets(t *testing.T) {
	got := PowersOf2Buckets(5)
	want := []int64{1, 2, 4, 8, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
}

// TestSnapshotDeterministic asserts the determinism contract at the
// registry level: concurrent commutative updates from many goroutines
// produce the exact same deterministic snapshot bytes as serial
// updates, and timers appear only when requested.
func TestSnapshotDeterministic(t *testing.T) {
	build := func(workers int) *Registry {
		r := NewRegistry()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < 1000; i += workers {
					r.Counter("moved").Add(int64(i))
					r.Histogram("flow", PowersOf2Buckets(10)).Observe(int64(i % 700))
				}
			}(w)
		}
		wg.Wait()
		r.Gauge("slots").Set(42)
		r.Timer("wall").Observe(time.Duration(workers) * time.Millisecond)
		return r
	}
	var ref bytes.Buffer
	if err := build(1).Snapshot(false).WriteJSON(&ref); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(ref.String(), "timers") {
		t.Fatalf("deterministic snapshot contains timers:\n%s", ref.String())
	}
	for _, workers := range []int{2, 4, 8} {
		var got bytes.Buffer
		if err := build(workers).Snapshot(false).WriteJSON(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ref.Bytes(), got.Bytes()) {
			t.Fatalf("snapshot differs for workers=%d:\n%s\nvs\n%s", workers, ref.String(), got.String())
		}
	}
	var full bytes.Buffer
	if err := build(1).Snapshot(true).WriteJSON(&full); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(full.String(), `"wall"`) {
		t.Fatalf("Snapshot(true) missing timer:\n%s", full.String())
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(1)
	r.Gauge("b").Set(2)
	r.Histogram("c", PowersOf2Buckets(2)).Observe(1)
	r.Timer("d").Observe(time.Second)
	var buf bytes.Buffer
	if err := r.Snapshot(true).WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"counter", "gauge", "hist", "timer", "1.000000s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestPhaseTimings(t *testing.T) {
	p := PhaseTimings{Cluster: 1, Balance: 2, Replicate: 3}
	q := p.Add(PhaseTimings{Cluster: 10, Balance: 20, Replicate: 30})
	if q != (PhaseTimings{Cluster: 11, Balance: 22, Replicate: 33}) {
		t.Fatalf("Add = %+v", q)
	}
	if q.Total() != 66 {
		t.Fatalf("Total = %v", q.Total())
	}
}
