package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServeDebug(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("core.rounds").Add(3)
	reg.Timer("core.phase.balance").Observe(time.Millisecond)
	tr := NewTracer(8, false)
	tr.Emit(Event{Type: "round", Slot: 0, Attrs: []Attr{I("moved", 5)}})

	srv, addr, err := ServeDebug("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(b)
	}

	if body := get("/debug/metrics"); !strings.Contains(body, `"core.rounds"`) ||
		!strings.Contains(body, `"core.phase.balance"`) {
		t.Fatalf("/debug/metrics:\n%s", body)
	}
	if body := get("/debug/events"); !strings.Contains(body, `"type":"round"`) {
		t.Fatalf("/debug/events:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "cmdline") {
		t.Fatalf("/debug/vars:\n%s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/:\n%s", body)
	}
}

func TestServeDebugNilBackends(t *testing.T) {
	srv, addr, err := ServeDebug("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
