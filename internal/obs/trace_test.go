package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTracerNil(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Type: "x"})
	tr.EmitAll(3, []Event{{Type: "y"}})
	if tr.Events() != nil || tr.Dropped() != 0 || tr.Len() != 0 {
		t.Fatal("nil tracer not inert")
	}
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestTracerEmitAndSeq(t *testing.T) {
	tr := NewTracer(8, false)
	tr.Emit(Event{Type: "a", Slot: -1})
	tr.EmitAll(5, []Event{{Type: "b"}, {Type: "c", Attrs: []Attr{I("n", 7)}}})
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != int64(i) {
			t.Fatalf("seq[%d] = %d", i, ev.Seq)
		}
	}
	if evs[0].Slot != -1 || evs[1].Slot != 5 || evs[2].Slot != 5 {
		t.Fatalf("slots: %d %d %d", evs[0].Slot, evs[1].Slot, evs[2].Slot)
	}
	if len(evs[2].Attrs) != 1 || evs[2].Attrs[0].Int != 7 {
		t.Fatalf("attrs: %+v", evs[2].Attrs)
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(4, false)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Type: "e", Attrs: []Attr{I("i", int64(i))}})
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(6 + i); ev.Attrs[0].Int != want || ev.Seq != want {
			t.Fatalf("ev[%d] = %+v, want i=seq=%d", i, ev, want)
		}
	}
}

func TestTracerDropTimings(t *testing.T) {
	tr := NewTracer(8, true)
	tr.Emit(Event{Type: "round", Attrs: []Attr{
		I("moved", 10),
		D("dur", 123*time.Millisecond),
		F("theta", 0.5),
	}})
	evs := tr.Events()
	if len(evs) != 1 || len(evs[0].Attrs) != 2 {
		t.Fatalf("attrs after dropTimings: %+v", evs)
	}
	for _, a := range evs[0].Attrs {
		if a.Kind == KindDur {
			t.Fatalf("duration attr survived: %+v", a)
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(8, false)
	tr.Emit(Event{Type: "theta-iter", Slot: 2, Attrs: []Attr{
		F("theta", 0.25),
		I("moved", 12),
		S("mode", "gc"),
		D("dur", 5*time.Microsecond),
	}})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"seq":0,"type":"theta-iter","slot":2,"theta":0.25,"moved":12,"mode":"gc","dur":5000}` + "\n"
	if buf.String() != want {
		t.Fatalf("jsonl:\n%q\nwant:\n%q", buf.String(), want)
	}
	if strings.Count(buf.String(), "\n") != 1 {
		t.Fatalf("line count: %q", buf.String())
	}
}

func TestTracerDefaultCap(t *testing.T) {
	tr := NewTracer(0, false)
	if cap(tr.buf) != DefaultTracerCap {
		t.Fatalf("cap = %d", cap(tr.buf))
	}
}

// Mutating the caller's attr slice after Emit must not change the
// recorded event.
func TestTracerCopiesAttrs(t *testing.T) {
	tr := NewTracer(4, false)
	attrs := []Attr{I("n", 1)}
	tr.Emit(Event{Type: "a", Attrs: attrs})
	attrs[0].Int = 99
	if got := tr.Events()[0].Attrs[0].Int; got != 1 {
		t.Fatalf("recorded attr mutated: %d", got)
	}
}
