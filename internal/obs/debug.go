package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServeDebug starts an HTTP debug server on addr (host:port; use
// ":0" for an ephemeral port) exposing:
//
//	/debug/pprof/...   net/http/pprof profiles
//	/debug/vars        expvar
//	/debug/metrics     the registry snapshot as JSON (with timers)
//	/debug/events      the tracer's retained events as JSONL
//
// reg and tr may be nil; the corresponding endpoints then serve empty
// documents. The server runs on its own mux (it does not touch
// http.DefaultServeMux) and its goroutine exits when the returned
// *http.Server is Closed or Shutdown. The second return value is the
// address actually listened on.
func ServeDebug(addr string, reg *Registry, tr *Tracer) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.Snapshot(true).WriteJSON(w)
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = tr.WriteJSONL(w)
	})
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
