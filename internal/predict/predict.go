// Package predict implements the per-video demand predictors the paper
// assumes as an input ("the popularity distribution of the files
// changes slowly and can be learned through some popularity prediction
// algorithm (like the regression model ARIMA)"): an exponentially
// weighted moving average, an autoregressive AR(p) model fitted by
// least squares, and a last-value baseline. The simulator can feed
// RBCAer predicted rather than oracle demand; an ablation bench
// measures the difference.
package predict

import (
	"fmt"
	"math"
)

// Method forecasts the next value of a scalar series.
type Method interface {
	// Name identifies the method in reports.
	Name() string
	// Forecast predicts the next value from the history (oldest
	// first). Implementations must handle short histories gracefully;
	// an empty history forecasts 0.
	Forecast(history []float64) float64
}

// LastValue predicts the most recent observation (a persistence
// baseline).
type LastValue struct{}

var _ Method = LastValue{}

// Name implements Method.
func (LastValue) Name() string { return "last-value" }

// Forecast implements Method.
func (LastValue) Forecast(history []float64) float64 {
	if len(history) == 0 {
		return 0
	}
	return history[len(history)-1]
}

// EWMA predicts with an exponentially weighted moving average.
type EWMA struct {
	// Alpha is the smoothing factor in (0, 1]; larger tracks recent
	// values more closely.
	Alpha float64
}

var _ Method = EWMA{}

// Name implements Method.
func (e EWMA) Name() string { return fmt.Sprintf("ewma(%.2f)", e.Alpha) }

// Forecast implements Method.
func (e EWMA) Forecast(history []float64) float64 {
	if len(history) == 0 {
		return 0
	}
	alpha := e.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	s := history[0]
	for _, v := range history[1:] {
		s = alpha*v + (1-alpha)*s
	}
	return s
}

// Seasonal is the seasonal-naive method: it predicts the value observed
// one period ago (e.g. the same hour yesterday with Period 24), the
// natural forecaster for diurnal video demand. With less than one full
// period of history it falls back to persistence.
type Seasonal struct {
	// Period is the season length in slots (e.g. 24 for hourly slots).
	Period int
}

var _ Method = Seasonal{}

// Name implements Method.
func (s Seasonal) Name() string { return fmt.Sprintf("seasonal(%d)", s.Period) }

// Forecast implements Method.
func (s Seasonal) Forecast(history []float64) float64 {
	if s.Period < 1 || len(history) < s.Period {
		return LastValue{}.Forecast(history)
	}
	return history[len(history)-s.Period]
}

// AR is an autoregressive model of the given order, refitted by
// ordinary least squares on every call. With Order p it predicts
// x_t = c + a_1 x_{t-1} + ... + a_p x_{t-p}. It is the paper's
// ARIMA-family stand-in (an ARIMA(p,0,0)).
type AR struct {
	Order int
}

var _ Method = AR{}

// Name implements Method.
func (a AR) Name() string { return fmt.Sprintf("ar(%d)", a.Order) }

// Forecast implements Method.
func (a AR) Forecast(history []float64) float64 {
	p := a.Order
	if p < 1 {
		p = 1
	}
	if len(history) < p+2 {
		// Too little data to fit; fall back to persistence.
		return LastValue{}.Forecast(history)
	}
	coeffs, intercept, err := FitAR(history, p)
	if err != nil {
		return LastValue{}.Forecast(history)
	}
	pred := intercept
	for k := 0; k < p; k++ {
		pred += coeffs[k] * history[len(history)-1-k]
	}
	if pred < 0 {
		pred = 0
	}
	return pred
}

// FitAR fits an AR(p) model with intercept to the series by ordinary
// least squares, returning the lag coefficients (coeffs[k] multiplies
// x_{t-1-k}) and the intercept. It requires len(series) >= p+2.
func FitAR(series []float64, p int) (coeffs []float64, intercept float64, err error) {
	if p < 1 {
		return nil, 0, fmt.Errorf("predict: non-positive AR order %d", p)
	}
	n := len(series) - p
	if n < 2 {
		return nil, 0, fmt.Errorf("predict: series of length %d too short for AR(%d)", len(series), p)
	}
	// Design matrix rows: [1, x_{t-1}, ..., x_{t-p}] for t = p..len-1.
	dim := p + 1
	// Normal equations: (X'X) beta = X'y.
	xtx := make([][]float64, dim)
	for i := range xtx {
		xtx[i] = make([]float64, dim)
	}
	xty := make([]float64, dim)
	row := make([]float64, dim)
	for t := p; t < len(series); t++ {
		row[0] = 1
		for k := 0; k < p; k++ {
			row[k+1] = series[t-1-k]
		}
		y := series[t]
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * y
		}
	}
	beta, err := solveGaussian(xtx, xty)
	if err != nil {
		return nil, 0, err
	}
	return beta[1:], beta[0], nil
}

// solveGaussian solves Ax = b with partial pivoting, adding a small
// ridge term when the system is singular (constant series).
func solveGaussian(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][i] += 1e-9 // ridge for numerical stability
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil, fmt.Errorf("predict: singular system")
		}
		m[col], m[piv] = m[piv], m[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := m[r][n]
		for c := r + 1; c < n; c++ {
			s -= m[r][c] * x[c]
		}
		x[r] = s / m[r][r]
	}
	return x, nil
}

// Forecaster tracks per-key demand histories and forecasts the next
// slot's demand for every key seen so far.
type Forecaster struct {
	method Method
	window int
	hist   map[int][]float64
}

// NewForecaster returns a forecaster using the method, keeping at most
// window observations per key (window <= 0 means unbounded).
func NewForecaster(m Method, window int) (*Forecaster, error) {
	if m == nil {
		return nil, fmt.Errorf("predict: nil method")
	}
	return &Forecaster{method: m, window: window, hist: make(map[int][]float64)}, nil
}

// Observe appends one slot's demand counts. Keys absent from demand are
// recorded as zero so gaps are learned.
func (f *Forecaster) Observe(demand map[int]int64) {
	for k := range f.hist {
		if _, ok := demand[k]; !ok {
			f.hist[k] = appendWindow(f.hist[k], 0, f.window)
		}
	}
	for k, v := range demand {
		f.hist[k] = appendWindow(f.hist[k], float64(v), f.window)
	}
}

func appendWindow(s []float64, v float64, window int) []float64 {
	s = append(s, v)
	if window > 0 && len(s) > window {
		s = s[len(s)-window:]
	}
	return s
}

// Forecast predicts the next slot's demand per key, rounded up from
// 0.25 (per-key demand series are sparse — a video requested once in a
// while would otherwise always round to zero and never be prefetched).
// Keys never observed are absent.
func (f *Forecaster) Forecast() map[int]int64 {
	out := make(map[int]int64, len(f.hist))
	for k, h := range f.hist {
		v := f.method.Forecast(h)
		if v < 0 || math.IsNaN(v) {
			v = 0
		}
		out[k] = int64(math.Ceil(v - 0.25))
	}
	return out
}

// MAE returns the mean absolute error of per-key one-step forecasts
// against the observed values. Used by tests and the prediction
// ablation to quantify learner quality.
func MAE(forecast, actual map[int]int64) float64 {
	keys := make(map[int]struct{}, len(forecast)+len(actual))
	for k := range forecast {
		keys[k] = struct{}{}
	}
	for k := range actual {
		keys[k] = struct{}{}
	}
	if len(keys) == 0 {
		return 0
	}
	var sum float64
	for k := range keys {
		sum += math.Abs(float64(forecast[k] - actual[k]))
	}
	return sum / float64(len(keys))
}
