package predict

import (
	"math"
	"math/rand"
	"testing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLastValue(t *testing.T) {
	m := LastValue{}
	if got := m.Forecast(nil); got != 0 {
		t.Errorf("Forecast(nil) = %v, want 0", got)
	}
	if got := m.Forecast([]float64{1, 2, 3}); got != 3 {
		t.Errorf("Forecast() = %v, want 3", got)
	}
	if m.Name() == "" {
		t.Error("Name() empty")
	}
}

func TestEWMA(t *testing.T) {
	m := EWMA{Alpha: 0.5}
	if got := m.Forecast(nil); got != 0 {
		t.Errorf("Forecast(nil) = %v, want 0", got)
	}
	if got := m.Forecast([]float64{4}); got != 4 {
		t.Errorf("Forecast(single) = %v, want 4", got)
	}
	// s = 2; then 0.5*4 + 0.5*2 = 3; then 0.5*6 + 0.5*3 = 4.5.
	if got := m.Forecast([]float64{2, 4, 6}); !almostEqual(got, 4.5, 1e-12) {
		t.Errorf("Forecast() = %v, want 4.5", got)
	}
	// Constant series forecast the constant.
	if got := m.Forecast([]float64{7, 7, 7, 7}); !almostEqual(got, 7, 1e-12) {
		t.Errorf("Forecast(constant) = %v, want 7", got)
	}
	// Invalid alpha falls back gracefully rather than exploding.
	bad := EWMA{Alpha: 3}
	if got := bad.Forecast([]float64{1, 1}); math.IsNaN(got) {
		t.Error("Forecast with invalid alpha returned NaN")
	}
}

func TestFitARRecoversCoefficients(t *testing.T) {
	// Synthesise x_t = 2 + 0.6 x_{t-1} with tiny noise; AR(1) must
	// recover the generating process closely.
	// Noise must be large enough to spread the regressor away from the
	// process's fixed point, or the fit is ill-conditioned against the
	// intercept.
	rng := rand.New(rand.NewSource(3))
	series := make([]float64, 2000)
	series[0] = 5
	for i := 1; i < len(series); i++ {
		series[i] = 2 + 0.6*series[i-1] + rng.NormFloat64()*1.0
	}
	coeffs, intercept, err := FitAR(series, 1)
	if err != nil {
		t.Fatalf("FitAR: %v", err)
	}
	if !almostEqual(coeffs[0], 0.6, 0.05) {
		t.Errorf("AR coefficient = %v, want ~0.6", coeffs[0])
	}
	if !almostEqual(intercept, 2, 0.3) {
		t.Errorf("intercept = %v, want ~2", intercept)
	}
}

func TestFitARErrors(t *testing.T) {
	if _, _, err := FitAR([]float64{1, 2, 3}, 0); err == nil {
		t.Error("FitAR(order 0) succeeded")
	}
	if _, _, err := FitAR([]float64{1, 2}, 2); err == nil {
		t.Error("FitAR(too short) succeeded")
	}
}

func TestARForecast(t *testing.T) {
	m := AR{Order: 1}
	if m.Name() == "" {
		t.Error("Name() empty")
	}
	// Too little history → persistence fallback.
	if got := m.Forecast([]float64{5}); got != 5 {
		t.Errorf("short-history Forecast = %v, want 5 (fallback)", got)
	}
	// Deterministic linear growth is captured by AR(2) exactly (with
	// an intercept an AR(1) also fits it): x_t = x_{t-1} + 1.
	series := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	got := (AR{Order: 2}).Forecast(series)
	if !almostEqual(got, 9, 0.1) {
		t.Errorf("Forecast(linear) = %v, want ~9", got)
	}
	// Negative predictions clamp to zero.
	falling := []float64{10, 8, 6, 4, 2, 0}
	if got := (AR{Order: 1}).Forecast(falling); got < 0 {
		t.Errorf("Forecast() = %v, want >= 0", got)
	}
	// Constant series stay constant despite the singular design matrix.
	constant := []float64{4, 4, 4, 4, 4, 4}
	if got := (AR{Order: 1}).Forecast(constant); !almostEqual(got, 4, 0.2) {
		t.Errorf("Forecast(constant) = %v, want ~4", got)
	}
}

func TestForecaster(t *testing.T) {
	fc, err := NewForecaster(LastValue{}, 0)
	if err != nil {
		t.Fatalf("NewForecaster: %v", err)
	}
	if got := fc.Forecast(); len(got) != 0 {
		t.Errorf("cold Forecast() = %v, want empty", got)
	}
	fc.Observe(map[int]int64{1: 5, 2: 3})
	fc.Observe(map[int]int64{1: 7}) // key 2 implicitly observed as 0
	got := fc.Forecast()
	if got[1] != 7 {
		t.Errorf("Forecast()[1] = %d, want 7", got[1])
	}
	if got[2] != 0 {
		t.Errorf("Forecast()[2] = %d, want 0 (gap learned)", got[2])
	}
	if _, err := NewForecaster(nil, 0); err == nil {
		t.Error("NewForecaster(nil) succeeded")
	}
}

func TestForecasterWindow(t *testing.T) {
	fc, err := NewForecaster(LastValue{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		fc.Observe(map[int]int64{1: int64(i)})
	}
	if got := fc.Forecast()[1]; got != 10 {
		t.Errorf("windowed Forecast = %d, want 10", got)
	}
	// The window must actually bound history length.
	if n := len(fc.hist[1]); n != 2 {
		t.Errorf("history length %d, want 2", n)
	}
}

func TestForecasterSparseRounding(t *testing.T) {
	// A video seen once long ago should still be forecast (ceil-biased
	// rounding), which matters for sparse per-(hotspot, video) series.
	fc, err := NewForecaster(EWMA{Alpha: 0.3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	fc.Observe(map[int]int64{1: 1})
	fc.Observe(map[int]int64{1: 1})
	fc.Observe(map[int]int64{})
	if got := fc.Forecast()[1]; got < 1 {
		t.Errorf("sparse Forecast = %d, want >= 1", got)
	}
}

func TestMAE(t *testing.T) {
	if got := MAE(nil, nil); got != 0 {
		t.Errorf("MAE(empty) = %v, want 0", got)
	}
	forecast := map[int]int64{1: 5, 2: 0}
	actual := map[int]int64{1: 7, 3: 4}
	// Errors: |5-7| + |0-0| + |0-4| over 3 keys = 2.
	if got := MAE(forecast, actual); !almostEqual(got, 2, 1e-12) {
		t.Errorf("MAE = %v, want 2", got)
	}
}

func TestSeasonal(t *testing.T) {
	m := Seasonal{Period: 3}
	if m.Name() == "" {
		t.Error("Name() empty")
	}
	// Too little history falls back to persistence.
	if got := m.Forecast([]float64{5, 6}); got != 6 {
		t.Errorf("short-history Forecast = %v, want 6", got)
	}
	// Exactly one period: predicts the value one period back.
	if got := m.Forecast([]float64{1, 2, 3}); got != 1 {
		t.Errorf("Forecast = %v, want 1", got)
	}
	if got := m.Forecast([]float64{1, 2, 3, 4, 5}); got != 3 {
		t.Errorf("Forecast = %v, want 3", got)
	}
	// A perfectly periodic series is predicted exactly.
	series := []float64{10, 2, 7, 10, 2, 7, 10, 2}
	if got := (Seasonal{Period: 3}).Forecast(series); got != 7 {
		t.Errorf("periodic Forecast = %v, want 7", got)
	}
	// Invalid period falls back gracefully.
	if got := (Seasonal{}).Forecast([]float64{4, 9}); got != 9 {
		t.Errorf("zero-period Forecast = %v, want 9 (persistence)", got)
	}
}
