package trace

import (
	"fmt"
	"io"

	"repro/internal/stats"
)

// Summary describes a generated (or loaded) world/trace pair with the
// statistics the paper's measurement study cares about. Build with
// Summarize.
type Summary struct {
	Hotspots      int
	Videos        int
	DistinctVideo int
	Requests      int
	Slots         int
	Users         int

	// Nearest-routing workload distribution (paper Fig. 2).
	MedianLoad float64
	P99Load    float64
	LoadGini   float64

	// Rank-frequency Zipf fit of global video popularity.
	ZipfAlpha float64
	ZipfR2    float64
}

// Summarize computes a Summary; the trace is mapped to nearest hotspots
// with the world's index.
func Summarize(world *World, tr *Trace) (*Summary, error) {
	if err := world.Validate(); err != nil {
		return nil, err
	}
	if err := tr.Validate(world); err != nil {
		return nil, err
	}
	index, err := world.Index()
	if err != nil {
		return nil, err
	}

	loads := make([]float64, len(world.Hotspots))
	videoCounts := make(map[VideoID]float64)
	users := make(map[UserID]struct{})
	for _, req := range tr.Requests {
		h, _, ok := index.Nearest(req.Location)
		if !ok {
			return nil, fmt.Errorf("trace: empty hotspot index")
		}
		loads[h]++
		videoCounts[req.Video]++
		users[req.User] = struct{}{}
	}

	s := &Summary{
		Hotspots:      len(world.Hotspots),
		Videos:        world.NumVideos,
		DistinctVideo: len(videoCounts),
		Requests:      len(tr.Requests),
		Slots:         tr.Slots,
		Users:         len(users),
		MedianLoad:    stats.Median(loads),
		P99Load:       stats.Quantile(loads, 0.99),
	}
	if gini, err := stats.Gini(loads); err == nil {
		s.LoadGini = gini
	}
	counts := make([]float64, 0, len(videoCounts))
	for _, c := range videoCounts {
		counts = append(counts, c)
	}
	if fit, err := stats.FitZipf(counts); err == nil {
		s.ZipfAlpha = fit.Alpha
		s.ZipfR2 = fit.R2
	}
	return s, nil
}

// Render writes the summary as aligned text.
func (s *Summary) Render(w io.Writer) error {
	skew := 0.0
	if s.MedianLoad > 0 {
		skew = s.P99Load / s.MedianLoad
	}
	_, err := fmt.Fprintf(w,
		"hotspots:         %d\n"+
			"videos:           %d (%d requested)\n"+
			"requests:         %d over %d slot(s) from %d users\n"+
			"nearest workload: median %.0f, p99 %.0f (%.1fx), Gini %.2f\n"+
			"video popularity: Zipf alpha %.2f (log-log R^2 %.2f)\n",
		s.Hotspots, s.Videos, s.DistinctVideo,
		s.Requests, s.Slots, s.Users,
		s.MedianLoad, s.P99Load, skew, s.LoadGini,
		s.ZipfAlpha, s.ZipfR2)
	return err
}
