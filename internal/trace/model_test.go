package trace

import (
	"testing"

	"repro/internal/geo"
)

func TestWorldValidate(t *testing.T) {
	valid := testWorld()
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid world rejected: %v", err)
	}
	tests := []struct {
		name string
		mut  func(*World)
	}{
		{"bad bounds", func(w *World) { w.Bounds = geo.Rect{MinX: 1, MaxX: 0} }},
		{"no videos", func(w *World) { w.NumVideos = 0 }},
		{"no cdn distance", func(w *World) { w.CDNDistanceKm = 0 }},
		{"no hotspots", func(w *World) { w.Hotspots = nil }},
		{"non-dense ids", func(w *World) { w.Hotspots[1].ID = 5 }},
		{"negative capacity", func(w *World) { w.Hotspots[0].ServiceCapacity = -1 }},
		{"negative cache", func(w *World) { w.Hotspots[0].CacheCapacity = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			w := testWorld()
			tt.mut(w)
			if err := w.Validate(); err == nil {
				t.Error("Validate() succeeded, want error")
			}
		})
	}
}

func TestTraceValidate(t *testing.T) {
	w := testWorld()
	tr := &Trace{Slots: 2, Requests: []Request{
		{ID: 0, Video: 1, Slot: 0},
		{ID: 1, Video: 99, Slot: 1},
	}}
	if err := tr.Validate(w); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := &Trace{Slots: 0}
	if err := bad.Validate(w); err == nil {
		t.Error("Validate(zero slots) succeeded")
	}
	badSlot := &Trace{Slots: 2, Requests: []Request{{Video: 1, Slot: 5}}}
	if err := badSlot.Validate(w); err == nil {
		t.Error("Validate(slot out of range) succeeded")
	}
	badVideo := &Trace{Slots: 2, Requests: []Request{{Video: 100, Slot: 0}}}
	if err := badVideo.Validate(w); err == nil {
		t.Error("Validate(video out of range) succeeded")
	}
}

func TestTraceBySlot(t *testing.T) {
	tr := &Trace{Slots: 3, Requests: []Request{
		{ID: 0, Slot: 2},
		{ID: 1, Slot: 0},
		{ID: 2, Slot: 2},
	}}
	by := tr.BySlot()
	if len(by) != 3 {
		t.Fatalf("BySlot() len %d, want 3", len(by))
	}
	if len(by[0]) != 1 || by[0][0].ID != 1 {
		t.Errorf("slot 0 = %v", by[0])
	}
	if len(by[1]) != 0 {
		t.Errorf("slot 1 = %v, want empty", by[1])
	}
	if len(by[2]) != 2 || by[2][0].ID != 0 || by[2][1].ID != 2 {
		t.Errorf("slot 2 = %v (order must be preserved)", by[2])
	}
}

func TestWorldIndex(t *testing.T) {
	w := testWorld()
	idx, err := w.Index()
	if err != nil {
		t.Fatalf("Index: %v", err)
	}
	if idx.Len() != len(w.Hotspots) {
		t.Fatalf("index has %d points, want %d", idx.Len(), len(w.Hotspots))
	}
	id, _, ok := idx.Nearest(geo.Point{X: 1.1, Y: 2.1})
	if !ok || id != 0 {
		t.Errorf("Nearest = (%d, %v), want hotspot 0", id, ok)
	}
	id, _, ok = idx.Nearest(geo.Point{X: 3.4, Y: 4.3})
	if !ok || id != 1 {
		t.Errorf("Nearest = (%d, %v), want hotspot 1", id, ok)
	}
}
