// Package trace defines the crowdsourced-CDN domain model (videos,
// content hotspots, users, request sessions) and a calibrated synthetic
// generator that substitutes for the paper's proprietary datasets (the
// iQiyi video-session trace and the Beijing Wi-Fi AP deployment trace).
//
// The generator reproduces the three statistical properties the paper's
// measurement study establishes and RBCAer exploits:
//
//  1. highly skewed nearest-routing hotspot workloads (99th percentile
//     about 9x the median — Fig. 2),
//  2. low workload correlation between nearby hotspots over the hours
//     of a day (~70% of pairs below 0.4 Spearman — Fig. 3a), and
//  3. widely varying content similarity between nearby hotspots
//     (top-20% Jaccard spread over roughly 0.1-0.8 — Fig. 3b).
//
// It also reads and writes traces in CSV/JSON so the cmd tools can
// interoperate.
package trace

import (
	"fmt"
	"math"

	"repro/internal/geo"
)

// VideoID identifies a video. Videos are unit-sized, following the
// paper's chunking assumption.
type VideoID int32

// HotspotID identifies a content hotspot (an edge device such as a
// smart Wi-Fi AP).
type HotspotID int32

// UserID identifies a user.
type UserID int32

// Hotspot is an edge content hotspot with tight service and storage
// capacity, co-located with a Wi-Fi AP at a fixed location.
type Hotspot struct {
	ID       HotspotID
	Location geo.Point
	// ServiceCapacity is the number of requests the hotspot can serve
	// in one timeslot (s_h in the paper).
	ServiceCapacity int64
	// CacheCapacity is the number of unit-size videos the hotspot can
	// cache (c_h in the paper).
	CacheCapacity int
}

// Request is one video session: a user at a location requesting a video
// during a timeslot. Following the paper, each request has unit demand
// and is served by exactly one hotspot or the origin CDN server for its
// whole duration.
type Request struct {
	ID       int
	User     UserID
	Video    VideoID
	Location geo.Point
	Slot     int
}

// World is the static deployment: the service region, the hotspot
// fleet, the video catalogue size, and the latency charged when the
// origin CDN server serves a request.
type World struct {
	Bounds    geo.Rect
	Hotspots  []Hotspot
	NumVideos int
	// CDNDistanceKm is the access-latency proxy charged for requests
	// served by the origin CDN server. The paper sets it to the
	// evaluation rectangle's diagonal (20 km).
	CDNDistanceKm float64
}

// Validate checks internal consistency of the world.
func (w *World) Validate() error {
	if !w.Bounds.Valid() || w.Bounds.Area() <= 0 {
		return fmt.Errorf("trace: invalid world bounds %+v", w.Bounds)
	}
	if w.NumVideos <= 0 {
		return fmt.Errorf("trace: non-positive video count %d", w.NumVideos)
	}
	if w.CDNDistanceKm <= 0 {
		return fmt.Errorf("trace: non-positive CDN distance %v", w.CDNDistanceKm)
	}
	if len(w.Hotspots) == 0 {
		return fmt.Errorf("trace: no hotspots")
	}
	for i, h := range w.Hotspots {
		if int(h.ID) != i {
			return fmt.Errorf("trace: hotspot %d has ID %d (IDs must be dense)", i, h.ID)
		}
		if h.ServiceCapacity < 0 {
			return fmt.Errorf("trace: hotspot %d has negative service capacity", i)
		}
		if h.CacheCapacity < 0 {
			return fmt.Errorf("trace: hotspot %d has negative cache capacity", i)
		}
	}
	return nil
}

// Index builds a spatial index over the world's hotspots for
// nearest/range queries. Cell size is chosen for ~1 hotspot per cell.
func (w *World) Index() (*geo.Grid, error) {
	cell := 1.0
	if n := len(w.Hotspots); n > 0 {
		cell = math.Max(0.05, math.Sqrt(w.Bounds.Area()/float64(n)))
	}
	g, err := geo.NewGrid(w.Bounds, cell)
	if err != nil {
		return nil, fmt.Errorf("trace: building hotspot index: %w", err)
	}
	for _, h := range w.Hotspots {
		g.Insert(int(h.ID), h.Location)
	}
	return g, nil
}

// Trace is a sequence of requests over a number of timeslots against a
// world.
type Trace struct {
	Slots    int
	Requests []Request
}

// Validate checks the trace against the world.
func (t *Trace) Validate(w *World) error {
	if t.Slots <= 0 {
		return fmt.Errorf("trace: non-positive slot count %d", t.Slots)
	}
	for i, r := range t.Requests {
		if r.Slot < 0 || r.Slot >= t.Slots {
			return fmt.Errorf("trace: request %d slot %d outside [0, %d)", i, r.Slot, t.Slots)
		}
		if int(r.Video) < 0 || int(r.Video) >= w.NumVideos {
			return fmt.Errorf("trace: request %d video %d outside [0, %d)", i, r.Video, w.NumVideos)
		}
	}
	return nil
}

// BySlot partitions requests by timeslot, preserving order.
func (t *Trace) BySlot() [][]Request {
	out := make([][]Request, t.Slots)
	for _, r := range t.Requests {
		out[r.Slot] = append(out[r.Slot], r)
	}
	return out
}
