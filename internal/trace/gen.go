package trace

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geo"
	"repro/internal/stats"
)

// Config parameterises the synthetic world and trace generator. The
// defaults (DefaultConfig / EvalConfig / MeasurementConfig) are
// calibrated against the statistics the paper reports for its
// proprietary datasets; see the package comment and DESIGN.md.
type Config struct {
	// Seed drives all randomness; equal configs generate equal worlds.
	Seed int64

	// Bounds is the service region on the kilometre plane.
	Bounds geo.Rect

	NumHotspots int
	NumVideos   int
	NumUsers    int
	NumRequests int
	// Slots is the number of timeslots the trace spans. The diurnal
	// activity model is expressed over a 24-hour day and resampled to
	// this resolution; Slots=1 collapses the trace into a single
	// scheduling round as in the paper's Sec. V evaluation.
	Slots int

	// ZipfAlpha is the exponent of the global video-popularity Zipf law.
	ZipfAlpha float64
	// UserActivityAlpha is the exponent of the Zipf law over per-user
	// session counts (a few heavy watchers, a long tail).
	UserActivityAlpha float64

	// NumRegions is the number of demand regions (spatial Gaussian
	// clusters with their own diurnal profile and local catalogue).
	NumRegions int
	// RegionWeightAlpha skews how population mass spreads over regions.
	RegionWeightAlpha float64
	// RegionStdKm is the spatial standard deviation of user homes
	// around their region centre.
	RegionStdKm float64
	// HotspotUniformFrac is the fraction of hotspots deployed uniformly
	// at random; the rest follow region centres (with a wider spread),
	// mimicking denser AP deployment where people are.
	HotspotUniformFrac float64
	// UserUniformFrac is the fraction of users placed uniformly.
	UserUniformFrac float64

	// LocalityWeight is the probability that a request draws from its
	// region's local catalogue instead of the global catalogue — the
	// "small population" effect that differentiates nearby hotspots'
	// content (paper Sec. II-B).
	LocalityWeight float64
	// LocalCatalogFrac sizes each region's local catalogue as a
	// fraction of the full video set.
	LocalCatalogFrac float64

	// ServiceCapacityFrac sets every hotspot's per-slot service
	// capacity to this fraction of the video-set size (the paper's
	// "capacity 5% == 760 requests" convention).
	ServiceCapacityFrac float64
	// CacheCapacityFrac sets every hotspot's cache size to this
	// fraction of the video-set size (the paper's "cache 3% == 450").
	CacheCapacityFrac float64

	// SlotNoise is the probability that a request's timeslot is drawn
	// uniformly instead of from its region's diurnal profile,
	// modelling irregular individual viewing behaviour.
	SlotNoise float64

	// CDNDistanceKm is the latency proxy charged for origin-served
	// requests; 0 means "use the bounds diagonal" (the paper's 20 km).
	CDNDistanceKm float64
	// JitterStdKm spreads request locations around the user's home.
	JitterStdKm float64
}

// DefaultConfig returns the evaluation-scale configuration matching the
// paper's Sec. V setup: a 17x11 km region, 310 hotspots, 15,190 videos,
// 212,472 requests, service capacity 5% and cache 3% of the video set.
func DefaultConfig() Config {
	return Config{
		Seed:                1,
		Bounds:              geo.Rect{MinX: 0, MinY: 0, MaxX: 17, MaxY: 11},
		NumHotspots:         310,
		NumVideos:           15190,
		NumUsers:            30000,
		NumRequests:         212472,
		Slots:               1,
		ZipfAlpha:           1.0,
		UserActivityAlpha:   0.6,
		NumRegions:          14,
		RegionWeightAlpha:   0.9,
		RegionStdKm:         1.1,
		HotspotUniformFrac:  0.45,
		UserUniformFrac:     0.15,
		LocalityWeight:      0.6,
		LocalCatalogFrac:    0.01,
		ServiceCapacityFrac: 0.05,
		CacheCapacityFrac:   0.03,
		SlotNoise:           0.2,
		JitterStdKm:         0.25,
	}
}

// EvalConfig is an alias for DefaultConfig, named for readability at
// call sites reproducing Sec. V figures.
func EvalConfig() Config { return DefaultConfig() }

// MeasurementConfig returns the measurement-scale configuration for the
// Sec. II study: a city-scale region with 5,000 sampled hotspots and a
// full day of requests in hourly slots.
func MeasurementConfig() Config {
	cfg := DefaultConfig()
	cfg.Bounds = geo.Rect{MinX: 0, MinY: 0, MaxX: 44, MaxY: 36}
	cfg.NumHotspots = 5000
	cfg.NumVideos = 60000
	cfg.NumUsers = 220000
	cfg.NumRequests = 1200000
	cfg.Slots = 24
	cfg.NumRegions = 60
	return cfg
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if !c.Bounds.Valid() || c.Bounds.Area() <= 0 {
		return fmt.Errorf("trace: invalid bounds %+v", c.Bounds)
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"NumHotspots", c.NumHotspots},
		{"NumVideos", c.NumVideos},
		{"NumUsers", c.NumUsers},
		{"NumRequests", c.NumRequests},
		{"Slots", c.Slots},
		{"NumRegions", c.NumRegions},
	} {
		if f.v <= 0 {
			return fmt.Errorf("trace: %s must be positive, got %d", f.name, f.v)
		}
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"HotspotUniformFrac", c.HotspotUniformFrac},
		{"UserUniformFrac", c.UserUniformFrac},
		{"LocalityWeight", c.LocalityWeight},
		{"SlotNoise", c.SlotNoise},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("trace: %s must be in [0,1], got %v", f.name, f.v)
		}
	}
	if c.LocalCatalogFrac <= 0 || c.LocalCatalogFrac > 1 {
		return fmt.Errorf("trace: LocalCatalogFrac must be in (0,1], got %v", c.LocalCatalogFrac)
	}
	if c.ZipfAlpha < 0 || c.UserActivityAlpha < 0 || c.RegionWeightAlpha < 0 {
		return fmt.Errorf("trace: Zipf exponents must be non-negative")
	}
	if c.RegionStdKm <= 0 {
		return fmt.Errorf("trace: RegionStdKm must be positive, got %v", c.RegionStdKm)
	}
	if c.ServiceCapacityFrac < 0 || c.CacheCapacityFrac < 0 {
		return fmt.Errorf("trace: capacity fractions must be non-negative")
	}
	if c.CDNDistanceKm < 0 {
		return fmt.Errorf("trace: CDNDistanceKm must be non-negative, got %v", c.CDNDistanceKm)
	}
	if c.JitterStdKm < 0 {
		return fmt.Errorf("trace: JitterStdKm must be non-negative, got %v", c.JitterStdKm)
	}
	return nil
}

// regionKind selects a diurnal activity profile.
type regionKind int

const (
	regionResidential regionKind = iota
	regionOffice
	regionMixed
)

// hourProfile returns relative activity for each hour of a 24-hour day.
func (k regionKind) hourProfile() [24]float64 {
	var p [24]float64
	for h := 0; h < 24; h++ {
		switch k {
		case regionResidential:
			switch {
			case h >= 18 && h <= 23:
				p[h] = 1.0
			case h >= 7 && h <= 9:
				p[h] = 0.45
			case h >= 10 && h <= 17:
				p[h] = 0.25
			default:
				p[h] = 0.08
			}
		case regionOffice:
			switch {
			case h >= 9 && h <= 17:
				p[h] = 1.0
			case h >= 7 && h <= 8, h == 18:
				p[h] = 0.5
			case h >= 19 && h <= 22:
				p[h] = 0.2
			default:
				p[h] = 0.05
			}
		default: // regionMixed
			switch {
			case h >= 8 && h <= 22:
				p[h] = 0.7
			default:
				p[h] = 0.15
			}
		}
	}
	return p
}

// slotWeights resamples an hourly profile onto `slots` timeslots. With
// more than 24 slots the day repeats (slot s maps to hour s mod 24), so
// a 48-slot trace spans two diurnal cycles.
func slotWeights(p [24]float64, slots int) []float64 {
	w := make([]float64, slots)
	if slots > 24 {
		for s := 0; s < slots; s++ {
			w[s] = p[s%24]
		}
		return w
	}
	for s := 0; s < slots; s++ {
		// Average the hours that map into this slot.
		lo := float64(s) * 24 / float64(slots)
		hi := float64(s+1) * 24 / float64(slots)
		var sum, cnt float64
		for h := int(lo); float64(h) < hi && h < 24; h++ {
			sum += p[h]
			cnt++
		}
		if cnt == 0 {
			sum, cnt = p[int(lo)%24], 1
		}
		w[s] = sum / cnt
	}
	return w
}

// randomizeProfile individualises a base diurnal profile: a cyclic
// phase shift of up to ±3 hours, a random blend toward uniform
// activity, and per-hour multiplicative jitter. Without this, every
// region of the same kind would share one profile and the workload
// correlation between nearby hotspots (paper Fig. 3a) would be far
// higher than measured.
func randomizeProfile(base [24]float64, rng *rand.Rand) [24]float64 {
	var mean float64
	for _, v := range base {
		mean += v
	}
	mean /= 24

	shift := rng.Intn(7) - 3
	eta := 0.1 + 0.4*rng.Float64()
	var out [24]float64
	for h := 0; h < 24; h++ {
		v := base[((h-shift)%24+24)%24]
		v = (1-eta)*v + eta*mean
		v *= math.Exp(rng.NormFloat64() * 0.35)
		out[h] = v
	}
	return out
}

// region is one demand cluster.
type region struct {
	center   geo.Point
	kind     regionKind
	catalog  []VideoID // local catalogue, most-popular-first
	slotProb *stats.Alias
	catProb  *stats.Alias
}

// Generate builds a world and trace from the configuration. Generation
// is fully deterministic in cfg (including Seed).
func Generate(cfg Config) (*World, *Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}

	regions, err := makeRegions(cfg)
	if err != nil {
		return nil, nil, err
	}
	world, err := makeWorld(cfg, regions)
	if err != nil {
		return nil, nil, err
	}
	tr, err := makeTrace(cfg, regions)
	if err != nil {
		return nil, nil, err
	}
	return world, tr, nil
}

func makeRegions(cfg Config) ([]region, error) {
	rng := stats.SplitRand(cfg.Seed, "regions")
	regions := make([]region, cfg.NumRegions)

	catSize := int(float64(cfg.NumVideos)*cfg.LocalCatalogFrac + 0.5)
	if catSize < 1 {
		catSize = 1
	}
	catAlias, err := stats.NewZipf(catSize, 1.0)
	if err != nil {
		return nil, fmt.Errorf("trace: catalogue popularity: %w", err)
	}
	// Catalogue membership is popularity-biased (a mild Zipf over the
	// whole video set) so regions overlap on the popular head.
	catalogPick, err := stats.NewZipf(cfg.NumVideos, 0.6)
	if err != nil {
		return nil, fmt.Errorf("trace: catalogue membership: %w", err)
	}

	for k := range regions {
		r := &regions[k]
		r.center = geo.Point{
			X: cfg.Bounds.MinX + rng.Float64()*cfg.Bounds.Width(),
			Y: cfg.Bounds.MinY + rng.Float64()*cfg.Bounds.Height(),
		}
		switch rng.Intn(3) {
		case 0:
			r.kind = regionOffice
		case 1:
			r.kind = regionMixed
		default:
			r.kind = regionResidential
		}
		sw := slotWeights(randomizeProfile(r.kind.hourProfile(), rng), cfg.Slots)
		r.slotProb, err = stats.NewAlias(sw)
		if err != nil {
			return nil, fmt.Errorf("trace: region %d slot profile: %w", k, err)
		}
		// Local catalogue: a region-specific subset of the video set
		// sampled with a popularity bias (globally popular videos show
		// up in many regions' catalogues, obscure ones in few). This
		// yields the Fig. 3b behaviour: nearby hotspots in one region
		// share most of their top content, hotspots across regions
		// share only the popular head, and the similarity spread
		// between nearby hotspots is wide.
		r.catalog = make([]VideoID, catSize)
		seen := make(map[int]struct{}, catSize)
		for i := 0; i < catSize; {
			v := catalogPick.Sample(rng)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			r.catalog[i] = VideoID(v)
			i++
		}
		r.catProb = catAlias
	}
	return regions, nil
}

func makeWorld(cfg Config, regions []region) (*World, error) {
	rng := stats.SplitRand(cfg.Seed, "world")
	regionWeights, err := stats.ZipfWeights(cfg.NumRegions, cfg.RegionWeightAlpha)
	if err != nil {
		return nil, err
	}
	regionPick, err := stats.NewAlias(regionWeights)
	if err != nil {
		return nil, err
	}

	svc := int64(float64(cfg.NumVideos)*cfg.ServiceCapacityFrac + 0.5)
	cache := int(float64(cfg.NumVideos)*cfg.CacheCapacityFrac + 0.5)

	hotspots := make([]Hotspot, cfg.NumHotspots)
	for i := range hotspots {
		var p geo.Point
		if rng.Float64() < cfg.HotspotUniformFrac {
			p = geo.Point{
				X: cfg.Bounds.MinX + rng.Float64()*cfg.Bounds.Width(),
				Y: cfg.Bounds.MinY + rng.Float64()*cfg.Bounds.Height(),
			}
		} else {
			// APs cluster where people are, but with a wider spread
			// than the users themselves — this gap is what produces
			// the skewed nearest-routing workloads of Fig. 2.
			c := regions[regionPick.Sample(rng)]
			std := cfg.RegionStdKm * 1.8
			p = cfg.Bounds.Clamp(c.center.Add(rng.NormFloat64()*std, rng.NormFloat64()*std))
		}
		hotspots[i] = Hotspot{
			ID:              HotspotID(i),
			Location:        p,
			ServiceCapacity: svc,
			CacheCapacity:   cache,
		}
	}

	cdn := cfg.CDNDistanceKm
	if cdn == 0 {
		cdn = cfg.Bounds.Diagonal()
	}
	w := &World{
		Bounds:        cfg.Bounds,
		Hotspots:      hotspots,
		NumVideos:     cfg.NumVideos,
		CDNDistanceKm: cdn,
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

func makeTrace(cfg Config, regions []region) (*Trace, error) {
	rng := stats.SplitRand(cfg.Seed, "trace")

	regionWeights, err := stats.ZipfWeights(cfg.NumRegions, cfg.RegionWeightAlpha)
	if err != nil {
		return nil, err
	}
	regionPick, err := stats.NewAlias(regionWeights)
	if err != nil {
		return nil, err
	}

	// Place users: mostly clustered tightly around region centres.
	type user struct {
		home   geo.Point
		region int32
	}
	users := make([]user, cfg.NumUsers)
	for i := range users {
		if rng.Float64() < cfg.UserUniformFrac {
			users[i] = user{
				home: geo.Point{
					X: cfg.Bounds.MinX + rng.Float64()*cfg.Bounds.Width(),
					Y: cfg.Bounds.MinY + rng.Float64()*cfg.Bounds.Height(),
				},
				region: int32(rng.Intn(cfg.NumRegions)),
			}
		} else {
			k := regionPick.Sample(rng)
			c := regions[k]
			users[i] = user{
				home: cfg.Bounds.Clamp(c.center.Add(
					rng.NormFloat64()*cfg.RegionStdKm,
					rng.NormFloat64()*cfg.RegionStdKm,
				)),
				region: int32(k),
			}
		}
	}

	userPickWeights, err := stats.ZipfWeights(cfg.NumUsers, cfg.UserActivityAlpha)
	if err != nil {
		return nil, err
	}
	// Shuffle activity ranks so heavy watchers are not spatially biased.
	rng.Shuffle(len(userPickWeights), func(i, j int) {
		userPickWeights[i], userPickWeights[j] = userPickWeights[j], userPickWeights[i]
	})
	userPick, err := stats.NewAlias(userPickWeights)
	if err != nil {
		return nil, err
	}

	globalPick, err := stats.NewZipf(cfg.NumVideos, cfg.ZipfAlpha)
	if err != nil {
		return nil, err
	}

	reqs := make([]Request, cfg.NumRequests)
	for i := range reqs {
		u := userPick.Sample(rng)
		usr := users[u]
		reg := &regions[usr.region]
		slot := 0
		if cfg.Slots > 1 {
			if rng.Float64() < cfg.SlotNoise {
				slot = rng.Intn(cfg.Slots)
			} else {
				slot = reg.slotProb.Sample(rng)
			}
		}
		var video VideoID
		if rng.Float64() < cfg.LocalityWeight {
			video = reg.catalog[reg.catProb.Sample(rng)]
		} else {
			video = VideoID(globalPick.Sample(rng))
		}
		loc := usr.home
		if cfg.JitterStdKm > 0 {
			loc = cfg.Bounds.Clamp(loc.Add(
				rng.NormFloat64()*cfg.JitterStdKm,
				rng.NormFloat64()*cfg.JitterStdKm,
			))
		}
		reqs[i] = Request{
			ID:       i,
			User:     UserID(u),
			Video:    video,
			Location: loc,
			Slot:     slot,
		}
	}
	return &Trace{Slots: cfg.Slots, Requests: reqs}, nil
}
