package trace

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/stats"
)

// smallConfig returns a fast-to-generate configuration that still
// exhibits the calibrated statistics.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NumHotspots = 60
	cfg.NumVideos = 3000
	cfg.NumUsers = 5000
	cfg.NumRequests = 8000
	cfg.NumRegions = 8
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	if err := MeasurementConfig().Validate(); err != nil {
		t.Fatalf("MeasurementConfig invalid: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero hotspots", func(c *Config) { c.NumHotspots = 0 }},
		{"zero videos", func(c *Config) { c.NumVideos = 0 }},
		{"zero users", func(c *Config) { c.NumUsers = 0 }},
		{"zero requests", func(c *Config) { c.NumRequests = 0 }},
		{"zero slots", func(c *Config) { c.Slots = 0 }},
		{"zero regions", func(c *Config) { c.NumRegions = 0 }},
		{"bad bounds", func(c *Config) { c.Bounds = geo.Rect{MinX: 1, MaxX: 0} }},
		{"uniform frac > 1", func(c *Config) { c.HotspotUniformFrac = 1.5 }},
		{"negative locality", func(c *Config) { c.LocalityWeight = -0.1 }},
		{"zero catalogue", func(c *Config) { c.LocalCatalogFrac = 0 }},
		{"negative zipf", func(c *Config) { c.ZipfAlpha = -1 }},
		{"zero region std", func(c *Config) { c.RegionStdKm = 0 }},
		{"negative capacity frac", func(c *Config) { c.ServiceCapacityFrac = -0.1 }},
		{"negative cdn distance", func(c *Config) { c.CDNDistanceKm = -1 }},
		{"negative jitter", func(c *Config) { c.JitterStdKm = -1 }},
		{"slot noise > 1", func(c *Config) { c.SlotNoise = 2 }},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("Validate() succeeded, want error")
			}
			if _, _, err := Generate(cfg); err == nil {
				t.Error("Generate() succeeded on invalid config")
			}
		})
	}
}

func TestGenerateBasics(t *testing.T) {
	cfg := smallConfig()
	world, tr, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if err := world.Validate(); err != nil {
		t.Fatalf("generated world invalid: %v", err)
	}
	if err := tr.Validate(world); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	if len(world.Hotspots) != cfg.NumHotspots {
		t.Errorf("hotspots = %d, want %d", len(world.Hotspots), cfg.NumHotspots)
	}
	if len(tr.Requests) != cfg.NumRequests {
		t.Errorf("requests = %d, want %d", len(tr.Requests), cfg.NumRequests)
	}
	if world.NumVideos != cfg.NumVideos {
		t.Errorf("videos = %d, want %d", world.NumVideos, cfg.NumVideos)
	}
	// Paper conventions: capacity/cache fractions of the video set.
	wantSvc := int64(float64(cfg.NumVideos)*cfg.ServiceCapacityFrac + 0.5)
	wantCache := int(float64(cfg.NumVideos)*cfg.CacheCapacityFrac + 0.5)
	for _, h := range world.Hotspots {
		if h.ServiceCapacity != wantSvc {
			t.Fatalf("hotspot %d capacity %d, want %d", h.ID, h.ServiceCapacity, wantSvc)
		}
		if h.CacheCapacity != wantCache {
			t.Fatalf("hotspot %d cache %d, want %d", h.ID, h.CacheCapacity, wantCache)
		}
		if !world.Bounds.Contains(h.Location) {
			t.Fatalf("hotspot %d outside bounds: %v", h.ID, h.Location)
		}
	}
	for _, r := range tr.Requests {
		if !world.Bounds.Contains(r.Location) {
			t.Fatalf("request %d outside bounds: %v", r.ID, r.Location)
		}
	}
	// Default CDN distance is the region diagonal (paper's 20 km).
	if got, want := world.CDNDistanceKm, world.Bounds.Diagonal(); got != want {
		t.Errorf("CDN distance = %v, want diagonal %v", got, want)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallConfig()
	w1, t1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, t2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w1.Hotspots {
		if w1.Hotspots[i] != w2.Hotspots[i] {
			t.Fatalf("hotspot %d differs between runs", i)
		}
	}
	for i := range t1.Requests {
		if t1.Requests[i] != t2.Requests[i] {
			t.Fatalf("request %d differs between runs", i)
		}
	}

	cfg.Seed = 2
	w3, t3, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range t1.Requests {
		if t1.Requests[i] != t3.Requests[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
	_ = w3
}

func TestGenerateWorkloadSkew(t *testing.T) {
	// The calibrated generator must reproduce the paper's core
	// measurement: nearest-routing workloads are highly skewed
	// (99th percentile many times the median — the paper reports 9x).
	cfg := smallConfig()
	cfg.NumRequests = 30000 // enough volume for stable quantiles
	world, tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	index, err := world.Index()
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]float64, len(world.Hotspots))
	for _, req := range tr.Requests {
		h, _, ok := index.Nearest(req.Location)
		if !ok {
			t.Fatal("empty index")
		}
		loads[h]++
	}
	med := stats.Median(loads)
	p99 := stats.Quantile(loads, 0.99)
	if med <= 0 {
		t.Fatalf("median load %v, want positive", med)
	}
	if ratio := p99 / med; ratio < 3 {
		t.Errorf("p99/median = %v, want >= 3 (paper: 9x)", ratio)
	}
}

func TestGenerateSlots(t *testing.T) {
	cfg := smallConfig()
	cfg.Slots = 24
	_, tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	for _, r := range tr.Requests {
		if r.Slot < 0 || r.Slot >= 24 {
			t.Fatalf("slot %d out of range", r.Slot)
		}
		seen[r.Slot]++
	}
	if len(seen) < 20 {
		t.Errorf("only %d distinct slots used, want near 24", len(seen))
	}
	// Single-slot traces put everything in slot 0.
	cfg.Slots = 1
	_, tr1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr1.Requests {
		if r.Slot != 0 {
			t.Fatalf("slot %d in single-slot trace", r.Slot)
		}
	}
}

func TestSlotWeightsResampling(t *testing.T) {
	var p [24]float64
	for h := range p {
		p[h] = float64(h)
	}
	w24 := slotWeights(p, 24)
	for h := 0; h < 24; h++ {
		if w24[h] != float64(h) {
			t.Fatalf("identity resample broken at %d: %v", h, w24[h])
		}
	}
	w12 := slotWeights(p, 12)
	if len(w12) != 12 {
		t.Fatalf("len = %d, want 12", len(w12))
	}
	// Each 2-hour slot averages its two hours.
	if w12[0] != 0.5 || w12[11] != 22.5 {
		t.Errorf("w12 endpoints = %v, %v; want 0.5, 22.5", w12[0], w12[11])
	}
	w1 := slotWeights(p, 1)
	if len(w1) != 1 || w1[0] != 11.5 {
		t.Errorf("w1 = %v, want [11.5]", w1)
	}
}

func TestRandomizeProfileKeepsPositive(t *testing.T) {
	rng := stats.SplitRand(1, "profile-test")
	base := regionResidential.hourProfile()
	for trial := 0; trial < 50; trial++ {
		out := randomizeProfile(base, rng)
		for h, v := range out {
			if v <= 0 {
				t.Fatalf("trial %d: hour %d weight %v, want positive", trial, h, v)
			}
		}
	}
}
