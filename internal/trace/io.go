package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/geo"
)

// worldJSON is the on-disk representation of a World.
type worldJSON struct {
	Bounds        geo.Rect      `json:"bounds"`
	NumVideos     int           `json:"num_videos"`
	CDNDistanceKm float64       `json:"cdn_distance_km"`
	Hotspots      []hotspotJSON `json:"hotspots"`
}

type hotspotJSON struct {
	ID              HotspotID `json:"id"`
	X               float64   `json:"x"`
	Y               float64   `json:"y"`
	ServiceCapacity int64     `json:"service_capacity"`
	CacheCapacity   int       `json:"cache_capacity"`
}

// WriteWorld encodes the world as JSON.
func WriteWorld(w io.Writer, world *World) error {
	wj := worldJSON{
		Bounds:        world.Bounds,
		NumVideos:     world.NumVideos,
		CDNDistanceKm: world.CDNDistanceKm,
		Hotspots:      make([]hotspotJSON, len(world.Hotspots)),
	}
	for i, h := range world.Hotspots {
		wj.Hotspots[i] = hotspotJSON{
			ID:              h.ID,
			X:               h.Location.X,
			Y:               h.Location.Y,
			ServiceCapacity: h.ServiceCapacity,
			CacheCapacity:   h.CacheCapacity,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(wj); err != nil {
		return fmt.Errorf("trace: encoding world: %w", err)
	}
	return nil
}

// ReadWorld decodes a world written by WriteWorld and validates it.
func ReadWorld(r io.Reader) (*World, error) {
	var wj worldJSON
	if err := json.NewDecoder(r).Decode(&wj); err != nil {
		return nil, fmt.Errorf("trace: decoding world: %w", err)
	}
	world := &World{
		Bounds:        wj.Bounds,
		NumVideos:     wj.NumVideos,
		CDNDistanceKm: wj.CDNDistanceKm,
		Hotspots:      make([]Hotspot, len(wj.Hotspots)),
	}
	for i, h := range wj.Hotspots {
		world.Hotspots[i] = Hotspot{
			ID:              h.ID,
			Location:        geo.Point{X: h.X, Y: h.Y},
			ServiceCapacity: h.ServiceCapacity,
			CacheCapacity:   h.CacheCapacity,
		}
	}
	if err := world.Validate(); err != nil {
		return nil, err
	}
	return world, nil
}

// requestHeader is the CSV column layout for request traces, mirroring
// the four fields of the paper's session records (user, timestamp,
// video, location) plus a request id.
var requestHeader = []string{"id", "user", "video", "x", "y", "slot"}

// WriteRequests encodes the trace as CSV with a header row.
func WriteRequests(w io.Writer, tr *Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(requestHeader); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	rec := make([]string, len(requestHeader))
	for _, r := range tr.Requests {
		rec[0] = strconv.Itoa(r.ID)
		rec[1] = strconv.Itoa(int(r.User))
		rec[2] = strconv.Itoa(int(r.Video))
		rec[3] = strconv.FormatFloat(r.Location.X, 'f', 5, 64)
		rec[4] = strconv.FormatFloat(r.Location.Y, 'f', 5, 64)
		rec[5] = strconv.Itoa(r.Slot)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: writing request %d: %w", r.ID, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: flushing requests: %w", err)
	}
	return nil
}

// ReadRequests decodes a CSV trace written by WriteRequests. The slot
// count is inferred as max(slot)+1.
func ReadRequests(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(requestHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	for i, want := range requestHeader {
		if header[i] != want {
			return nil, fmt.Errorf("trace: header column %d is %q, want %q", i, header[i], want)
		}
	}
	tr := &Trace{Slots: 1}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading line %d: %w", line, err)
		}
		req, err := parseRequest(rec)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if req.Slot+1 > tr.Slots {
			tr.Slots = req.Slot + 1
		}
		tr.Requests = append(tr.Requests, req)
	}
	return tr, nil
}

func parseRequest(rec []string) (Request, error) {
	id, err := strconv.Atoi(rec[0])
	if err != nil {
		return Request{}, fmt.Errorf("bad id %q: %w", rec[0], err)
	}
	user, err := strconv.Atoi(rec[1])
	if err != nil {
		return Request{}, fmt.Errorf("bad user %q: %w", rec[1], err)
	}
	video, err := strconv.Atoi(rec[2])
	if err != nil {
		return Request{}, fmt.Errorf("bad video %q: %w", rec[2], err)
	}
	x, err := strconv.ParseFloat(rec[3], 64)
	if err != nil {
		return Request{}, fmt.Errorf("bad x %q: %w", rec[3], err)
	}
	y, err := strconv.ParseFloat(rec[4], 64)
	if err != nil {
		return Request{}, fmt.Errorf("bad y %q: %w", rec[4], err)
	}
	slot, err := strconv.Atoi(rec[5])
	if err != nil {
		return Request{}, fmt.Errorf("bad slot %q: %w", rec[5], err)
	}
	if slot < 0 {
		return Request{}, fmt.Errorf("negative slot %d", slot)
	}
	return Request{
		ID:       id,
		User:     UserID(user),
		Video:    VideoID(video),
		Location: geo.Point{X: x, Y: y},
		Slot:     slot,
	}, nil
}
