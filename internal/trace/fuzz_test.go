package trace

import (
	"math"
	"testing"

	"repro/internal/geo"
)

// FuzzWorldValidate throws arbitrary world shapes at Validate and
// checks the contract the rest of the repo relies on: Validate never
// panics, and any world it accepts can be spatially indexed and can
// validate a well-formed trace without blowing up.
func FuzzWorldValidate(f *testing.F) {
	// Seed corpus: a healthy world, plus one neighbour per rejection
	// branch in Validate.
	f.Add(0.0, 0.0, 4.0, 5.0, int16(3), int64(10), int32(8), 100, 20.0, int32(0))
	f.Add(3.0, 1.0, 3.0, 9.0, int16(2), int64(5), int32(4), 50, 20.0, int32(0))     // zero-area bounds
	f.Add(0.0, 0.0, 4.0, 5.0, int16(0), int64(10), int32(8), 100, 20.0, int32(0))   // no hotspots
	f.Add(0.0, 0.0, 4.0, 5.0, int16(3), int64(-1), int32(8), 100, 20.0, int32(0))   // negative service
	f.Add(0.0, 0.0, 4.0, 5.0, int16(3), int64(10), int32(-2), 100, 20.0, int32(0))  // negative cache
	f.Add(0.0, 0.0, 4.0, 5.0, int16(3), int64(10), int32(8), 0, 20.0, int32(0))     // no videos
	f.Add(0.0, 0.0, 4.0, 5.0, int16(3), int64(10), int32(8), 100, -3.0, int32(0))   // bad CDN distance
	f.Add(0.0, 0.0, 4.0, 5.0, int16(3), int64(10), int32(8), 100, 20.0, int32(7))   // sparse IDs
	f.Add(math.NaN(), 0.0, 4.0, 5.0, int16(3), int64(10), int32(8), 100, 20.0, int32(0))

	f.Fuzz(func(t *testing.T, minX, minY, maxX, maxY float64,
		numHotspots int16, svc int64, cache int32,
		numVideos int, cdnKm float64, idOffset int32) {
		n := int(numHotspots)
		if n < 0 {
			n = -n
		}
		n %= 256 // keep fuzz iterations cheap
		w := &World{
			Bounds:        geo.Rect{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY},
			NumVideos:     numVideos,
			CDNDistanceKm: cdnKm,
		}
		for i := 0; i < n; i++ {
			frac := float64(i) / float64(n)
			w.Hotspots = append(w.Hotspots, Hotspot{
				ID: HotspotID(int32(i) + idOffset),
				Location: geo.Point{
					X: minX + frac*(maxX-minX),
					Y: minY + frac*(maxY-minY),
				},
				ServiceCapacity: svc,
				CacheCapacity:   int(cache),
			})
		}
		if err := w.Validate(); err != nil {
			return // rejected; only the absence of a panic matters
		}
		// Accepted worlds must be indexable: the simulator calls
		// World.Index unconditionally after a successful Validate.
		if _, err := w.Index(); err != nil {
			t.Fatalf("Validate accepted a world that Index rejects: %v", err)
		}
		// And a minimal in-range trace must validate against them.
		tr := &Trace{Slots: 1, Requests: []Request{
			{ID: 0, Video: 0, Location: w.Hotspots[0].Location, Slot: 0},
		}}
		if err := tr.Validate(w); err != nil {
			t.Fatalf("well-formed trace rejected against accepted world: %v", err)
		}
	})
}
