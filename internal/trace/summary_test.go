package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	cfg := smallConfig()
	cfg.NumRequests = 6000
	world, tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(world, tr)
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if s.Hotspots != cfg.NumHotspots || s.Requests != cfg.NumRequests {
		t.Errorf("counts wrong: %+v", s)
	}
	if s.DistinctVideo <= 0 || s.DistinctVideo > cfg.NumVideos {
		t.Errorf("distinct videos %d implausible", s.DistinctVideo)
	}
	if s.Users <= 0 || s.Users > cfg.NumUsers {
		t.Errorf("users %d implausible", s.Users)
	}
	if s.MedianLoad <= 0 || s.P99Load < s.MedianLoad {
		t.Errorf("load quantiles implausible: median %v p99 %v", s.MedianLoad, s.P99Load)
	}
	if s.LoadGini <= 0 || s.LoadGini >= 1 {
		t.Errorf("Gini %v implausible for a skewed workload", s.LoadGini)
	}
	// The generator draws global popularity from Zipf(1.0); the fitted
	// exponent should land in a sane band.
	if s.ZipfAlpha < 0.5 || s.ZipfAlpha > 2 {
		t.Errorf("fitted Zipf alpha %v far from the configured 1.0", s.ZipfAlpha)
	}

	var buf bytes.Buffer
	if err := s.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	for _, want := range []string{"hotspots:", "nearest workload:", "Zipf alpha"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Render output missing %q", want)
		}
	}
}

func TestSummarizeInvalidInputs(t *testing.T) {
	world, tr, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := *world
	bad.NumVideos = 0
	if _, err := Summarize(&bad, tr); err == nil {
		t.Error("Summarize(invalid world) succeeded")
	}
	badTrace := &Trace{Slots: 0}
	if _, err := Summarize(world, badTrace); err == nil {
		t.Error("Summarize(invalid trace) succeeded")
	}
}
