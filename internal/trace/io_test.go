package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geo"
)

func testWorld() *World {
	return &World{
		Bounds:        geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10},
		NumVideos:     100,
		CDNDistanceKm: 14.14,
		Hotspots: []Hotspot{
			{ID: 0, Location: geo.Point{X: 1, Y: 2}, ServiceCapacity: 5, CacheCapacity: 3},
			{ID: 1, Location: geo.Point{X: 3.5, Y: 4.25}, ServiceCapacity: 7, CacheCapacity: 4},
		},
	}
}

func TestWorldRoundTrip(t *testing.T) {
	want := testWorld()
	var buf bytes.Buffer
	if err := WriteWorld(&buf, want); err != nil {
		t.Fatalf("WriteWorld: %v", err)
	}
	got, err := ReadWorld(&buf)
	if err != nil {
		t.Fatalf("ReadWorld: %v", err)
	}
	if got.Bounds != want.Bounds || got.NumVideos != want.NumVideos ||
		got.CDNDistanceKm != want.CDNDistanceKm {
		t.Errorf("world metadata mismatch: %+v vs %+v", got, want)
	}
	if len(got.Hotspots) != len(want.Hotspots) {
		t.Fatalf("hotspot count %d, want %d", len(got.Hotspots), len(want.Hotspots))
	}
	for i := range want.Hotspots {
		if got.Hotspots[i] != want.Hotspots[i] {
			t.Errorf("hotspot %d = %+v, want %+v", i, got.Hotspots[i], want.Hotspots[i])
		}
	}
}

func TestReadWorldInvalid(t *testing.T) {
	if _, err := ReadWorld(strings.NewReader("not json")); err == nil {
		t.Error("ReadWorld(garbage) succeeded")
	}
	// Valid JSON but invalid world (no hotspots).
	if _, err := ReadWorld(strings.NewReader(`{"bounds":{"MinX":0,"MinY":0,"MaxX":1,"MaxY":1},"num_videos":5,"cdn_distance_km":1,"hotspots":[]}`)); err == nil {
		t.Error("ReadWorld(empty hotspots) succeeded")
	}
}

func TestRequestsRoundTrip(t *testing.T) {
	want := &Trace{
		Slots: 3,
		Requests: []Request{
			{ID: 0, User: 7, Video: 42, Location: geo.Point{X: 1.5, Y: 2.25}, Slot: 0},
			{ID: 1, User: 8, Video: 3, Location: geo.Point{X: 9.125, Y: 0.5}, Slot: 2},
		},
	}
	var buf bytes.Buffer
	if err := WriteRequests(&buf, want); err != nil {
		t.Fatalf("WriteRequests: %v", err)
	}
	got, err := ReadRequests(&buf)
	if err != nil {
		t.Fatalf("ReadRequests: %v", err)
	}
	if got.Slots != want.Slots {
		t.Errorf("Slots = %d, want %d", got.Slots, want.Slots)
	}
	if len(got.Requests) != len(want.Requests) {
		t.Fatalf("request count %d, want %d", len(got.Requests), len(want.Requests))
	}
	for i := range want.Requests {
		w, g := want.Requests[i], got.Requests[i]
		if g.ID != w.ID || g.User != w.User || g.Video != w.Video || g.Slot != w.Slot {
			t.Errorf("request %d = %+v, want %+v", i, g, w)
		}
		if g.Location.DistanceTo(w.Location) > 1e-4 {
			t.Errorf("request %d location %v, want %v", i, g.Location, w.Location)
		}
	}
}

func TestReadRequestsErrors(t *testing.T) {
	tests := []struct {
		name string
		data string
	}{
		{"bad header", "a,b,c,d,e,f\n"},
		{"short row", "id,user,video,x,y,slot\n1,2\n"},
		{"bad id", "id,user,video,x,y,slot\nx,2,3,1.0,1.0,0\n"},
		{"bad user", "id,user,video,x,y,slot\n1,x,3,1.0,1.0,0\n"},
		{"bad video", "id,user,video,x,y,slot\n1,2,x,1.0,1.0,0\n"},
		{"bad x", "id,user,video,x,y,slot\n1,2,3,x,1.0,0\n"},
		{"bad y", "id,user,video,x,y,slot\n1,2,3,1.0,x,0\n"},
		{"bad slot", "id,user,video,x,y,slot\n1,2,3,1.0,1.0,x\n"},
		{"negative slot", "id,user,video,x,y,slot\n1,2,3,1.0,1.0,-1\n"},
		{"empty", ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadRequests(strings.NewReader(tt.data)); err == nil {
				t.Error("ReadRequests() succeeded, want error")
			}
		})
	}
}

func TestGeneratedTraceRoundTrip(t *testing.T) {
	cfg := smallConfig()
	cfg.NumRequests = 500
	cfg.Slots = 4
	world, tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wbuf, rbuf bytes.Buffer
	if err := WriteWorld(&wbuf, world); err != nil {
		t.Fatal(err)
	}
	if err := WriteRequests(&rbuf, tr); err != nil {
		t.Fatal(err)
	}
	world2, err := ReadWorld(&wbuf)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := ReadRequests(&rbuf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.Validate(world2); err != nil {
		t.Fatalf("round-tripped trace invalid: %v", err)
	}
	if len(tr2.Requests) != len(tr.Requests) || tr2.Slots != tr.Slots {
		t.Errorf("round trip lost requests: %d/%d slots %d/%d",
			len(tr2.Requests), len(tr.Requests), tr2.Slots, tr.Slots)
	}
}
