package scenario

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Doc is one parsed scenario file: a generated world, a run
// configuration, explicit timed fault events, an optional seeded stress
// generator, and the assertions the run must satisfy.
type Doc struct {
	// Name labels the scenario in reports.
	Name string
	// Description is free-form documentation (unused by the runner).
	Description string

	World  WorldSpec
	Spec   RunSpec
	Events []Event
	Stress *Stress

	// Asserts are evaluated once against the finished run's metrics and
	// obs snapshot.
	Asserts []Assertion
	// SlotAsserts are evaluated in-run against every applied slot's
	// metrics (optionally windowed).
	SlotAsserts []SlotAssertion

	// SourcePath is the file the doc was loaded from ("" for Parse).
	SourcePath string
}

// WorldSpec overrides the synthetic world/trace generator. Zero fields
// keep trace.DefaultConfig's evaluation-scale values; scenario files
// are expected to scale down for CI.
type WorldSpec struct {
	Seed     int64
	Hotspots int
	Videos   int
	Users    int
	Requests int
	Slots    int
}

// RunSpec configures the simulation run.
type RunSpec struct {
	// Scheme is the scheduling policy (default "rbcaer").
	Scheme string
	// Seed is the simulation seed (default: the world seed).
	Seed int64
	// Churn is the i.i.d. per-slot offline probability, on top of any
	// Markov churn event.
	Churn float64
	// RadiusKm is the random/p2c routing radius (default 1.5).
	RadiusKm float64
	// Delta enables incremental delta scheduling (rbcaer only; slots
	// run sequentially).
	Delta bool
	// DeltaEvery forces a full re-solve every N delta slots (default
	// 16; 0 never).
	DeltaEvery int
	// DeltaThreshold overrides the drift fraction above which a delta
	// round falls back to a full solve (0 keeps
	// core.DefaultDeltaThreshold).
	DeltaThreshold float64
	// DeltaVerify shadow-verifies every delta round against a full
	// solve.
	DeltaVerify bool
	// CapacityFrac overrides every hotspot's service capacity as a
	// fraction of the video set (0 keeps the generated value).
	CapacityFrac float64
	// CacheFrac likewise for cache capacity.
	CacheFrac float64
	// FailFast aborts the run at the first violated slot assertion
	// instead of collecting every violation.
	FailFast bool
	// Shards cluster-partitions the world into this many shards and
	// schedules them concurrently with boundary reconciliation
	// (rbcaer only). Mutually exclusive with ShardCellKm.
	Shards int
	// ShardCellKm grid-partitions the world into shards of this cell
	// size in km (rbcaer only). Mutually exclusive with Shards.
	ShardCellKm float64
	// Serve drives the trace through a real WAL-backed serving tier
	// (internal/server) over HTTP instead of the offline simulator and
	// requires every slot's plan to be byte-identical to an offline
	// run; crash events kill the tier abruptly mid-slot and restart it
	// from disk (rbcaer only; no fault events, stress, churn, sharding,
	// or slot assertions).
	Serve bool
	// Instances is the serve-mode frontend count (0 = 2).
	Instances int
	// Fsync is the serve-mode WAL fsync policy: always, interval, or
	// none ("" = always).
	Fsync string
	// CheckpointEvery writes a serve-mode checkpoint every N slot
	// boundaries (0 = the server default).
	CheckpointEvery int
}

// EventKind discriminates timed scenario events.
type EventKind int

const (
	// EventChurn switches on Markov session churn for the whole run.
	EventChurn EventKind = iota + 1
	// EventOutage is a correlated regional outage window.
	EventOutage
	// EventDegrade is a capacity-degradation window.
	EventDegrade
	// EventFlash is a flash-crowd window.
	EventFlash
	// EventStale degrades the scheduler's load reports for the whole
	// run.
	EventStale
	// EventTheta switches RBCAer's θ-sweep parameters from a slot
	// onward.
	EventTheta
	// EventCrash kills the serve-mode tier abruptly mid-slot and
	// restarts it from the write-ahead log (run.serve only).
	EventCrash
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventChurn:
		return "churn"
	case EventOutage:
		return "regional_outage"
	case EventDegrade:
		return "degrade_capacity"
	case EventFlash:
		return "flash_crowd"
	case EventStale:
		return "stale_reports"
	case EventTheta:
		return "theta"
	case EventCrash:
		return "crash"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one explicit timed entry of the events section. At/Until
// bound windowed families ([At, Until)); whole-run families (churn,
// stale_reports) require At == 0.
type Event struct {
	Kind  EventKind
	At    int
	Until int

	// churn
	Fail    float64
	Recover float64
	// regional_outage
	X, Y, RadiusKm float64
	// degrade_capacity
	Fraction      float64
	ServiceFactor float64
	CacheFactor   float64
	// flash_crowd
	TopVideos  int
	Multiplier int
	// stale_reports
	Lag          int
	DropFraction float64
	// theta
	Theta1, Theta2, DeltaD float64
}

// Load reads and parses a scenario file.
func Load(path string) (*Doc, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	d, err := Parse(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	d.SourcePath = path
	return d, nil
}

// Parse parses scenario YAML into a validated Doc.
func Parse(src []byte) (*Doc, error) {
	root, err := parseYAML(src)
	if err != nil {
		return nil, err
	}
	d, err := newDec(root, "scenario")
	if err != nil {
		return nil, err
	}
	doc := &Doc{}
	doc.Name = d.str("name", "")
	doc.Description = d.str("description", "")

	if w := d.get("world"); w != nil {
		if err := doc.decodeWorld(w); err != nil {
			return nil, err
		}
	}
	if r := d.get("run"); r != nil {
		if err := doc.decodeRun(r); err != nil {
			return nil, err
		}
	}
	if ev := d.get("events"); ev != nil {
		if err := doc.decodeEvents(ev); err != nil {
			return nil, err
		}
	}
	if st := d.get("stress"); st != nil {
		if err := doc.decodeStress(st); err != nil {
			return nil, err
		}
	}
	if a := d.get("assert"); a != nil {
		if err := doc.decodeAsserts(a); err != nil {
			return nil, err
		}
	}
	if a := d.get("assert_slot"); a != nil {
		if err := doc.decodeSlotAsserts(a); err != nil {
			return nil, err
		}
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	if doc.Name == "" {
		return nil, fmt.Errorf("scenario: missing required key \"name\"")
	}
	if err := doc.validate(); err != nil {
		return nil, err
	}
	return doc, nil
}

func (doc *Doc) decodeWorld(n *node) error {
	d, err := newDec(n, "world")
	if err != nil {
		return err
	}
	doc.World = WorldSpec{
		Seed:     d.int64Of("seed", 1),
		Hotspots: d.integer("hotspots", 0),
		Videos:   d.integer("videos", 0),
		Users:    d.integer("users", 0),
		Requests: d.integer("requests", 0),
		Slots:    d.integer("slots", 0),
	}
	return d.finish()
}

func (doc *Doc) decodeRun(n *node) error {
	d, err := newDec(n, "run")
	if err != nil {
		return err
	}
	doc.Spec = RunSpec{
		Scheme:          d.str("scheme", ""),
		Seed:            d.int64Of("seed", 0),
		Churn:           d.float("churn", 0),
		RadiusKm:        d.float("radius_km", 0),
		Delta:           d.boolean("delta", false),
		DeltaEvery:      d.integer("delta_every", 16),
		DeltaThreshold:  d.float("delta_threshold", 0),
		DeltaVerify:     d.boolean("delta_verify", false),
		CapacityFrac:    d.float("capacity_frac", 0),
		CacheFrac:       d.float("cache_frac", 0),
		FailFast:        d.boolean("fail_fast", false),
		Shards:          d.integer("shards", 0),
		ShardCellKm:     d.float("shard_cell_km", 0),
		Serve:           d.boolean("serve", false),
		Instances:       d.integer("instances", 0),
		Fsync:           d.str("fsync", ""),
		CheckpointEvery: d.integer("checkpoint_every", 0),
	}
	return d.finish()
}

// parseAt parses an event start slot: either a bare integer or the
// "slot N" form the grammar documents.
func parseAt(d *dec) int {
	c := d.get("at")
	if c == nil {
		return 0
	}
	s, ok := d.scalarOf("at", c)
	if !ok {
		return 0
	}
	s = strings.TrimSpace(strings.TrimPrefix(s, "slot "))
	v, err := strconv.Atoi(s)
	if err != nil {
		d.fail("line %d: %s.at: %q is not a slot number (want N or \"slot N\")", c.line, d.ctx, s)
		return 0
	}
	return v
}

// parseWindow resolves an event's [At, Until) window from at plus
// either "for" (a duration in slots) or "until" (an exclusive end
// slot).
func parseWindow(d *dec, ev *Event) {
	ev.At = parseAt(d)
	hasFor, hasUntil := d.n.child("for") != nil, d.n.child("until") != nil
	switch {
	case hasFor && hasUntil:
		d.fail("%s: give \"for\" or \"until\", not both", d.ctx)
	case hasFor:
		ev.Until = ev.At + d.integer("for", 0)
	case hasUntil:
		ev.Until = d.integer("until", 0)
	default:
		d.fail("%s: windowed event needs \"for\" (slots) or \"until\" (end slot)", d.ctx)
	}
}

func (doc *Doc) decodeEvents(n *node) error {
	if n.kind != seqNode {
		return fmt.Errorf("scenario: line %d: events must be a sequence", n.line)
	}
	for i, item := range n.items {
		ctx := fmt.Sprintf("events[%d]", i)
		d, err := newDec(item, ctx)
		if err != nil {
			return err
		}
		action := d.str("action", "")
		var ev Event
		switch action {
		case "churn":
			ev = Event{
				Kind:    EventChurn,
				At:      parseAt(d),
				Fail:    d.float("fail", 0),
				Recover: d.float("recover", 0),
			}
			if ev.At != 0 {
				d.fail("%s: churn is whole-run (the Markov chain has no window); at must be 0", ctx)
			}
		case "regional_outage":
			ev = Event{
				Kind:     EventOutage,
				X:        d.float("x", 0),
				Y:        d.float("y", 0),
				RadiusKm: d.float("radius_km", -1),
			}
			parseWindow(d, &ev)
			if ev.RadiusKm < 0 {
				d.fail("%s: regional_outage needs radius_km >= 0", ctx)
			}
		case "degrade_capacity":
			ev = Event{
				Kind:          EventDegrade,
				Fraction:      d.float("fraction", 1),
				ServiceFactor: d.float("service_factor", 1),
				CacheFactor:   d.float("cache_factor", 1),
			}
			parseWindow(d, &ev)
		case "flash_crowd":
			ev = Event{
				Kind:       EventFlash,
				TopVideos:  d.integer("top_videos", 0),
				Multiplier: d.integer("multiplier", 0),
			}
			parseWindow(d, &ev)
		case "stale_reports":
			ev = Event{
				Kind:         EventStale,
				At:           parseAt(d),
				Lag:          d.integer("lag", 0),
				DropFraction: d.float("drop_fraction", 0),
			}
			if ev.At != 0 {
				d.fail("%s: stale_reports is whole-run; at must be 0", ctx)
			}
		case "theta":
			ev = Event{
				Kind:   EventTheta,
				At:     parseAt(d),
				Theta1: d.float("theta1", -1),
				Theta2: d.float("theta2", -1),
				DeltaD: d.float("delta_d", -1),
			}
		case "crash":
			ev = Event{Kind: EventCrash, At: parseAt(d)}
		case "":
			d.fail("line %d: %s: missing \"action\"", item.line, ctx)
		default:
			d.fail("line %d: %s: unknown action %q (want churn, regional_outage, degrade_capacity, flash_crowd, stale_reports, theta, or crash)",
				item.line, ctx, action)
		}
		if err := d.finish(); err != nil {
			return err
		}
		doc.Events = append(doc.Events, ev)
	}
	return nil
}

func (doc *Doc) decodeAsserts(n *node) error {
	if n.kind != seqNode {
		return fmt.Errorf("scenario: line %d: assert must be a sequence", n.line)
	}
	for i, item := range n.items {
		if item.kind != scalarNode {
			return fmt.Errorf("scenario: line %d: assert[%d] must be an expression string", item.line, i)
		}
		a, err := parseAssertion(item.scalar, item.line, false)
		if err != nil {
			return err
		}
		doc.Asserts = append(doc.Asserts, a)
	}
	return nil
}

func (doc *Doc) decodeSlotAsserts(n *node) error {
	if n.kind != seqNode {
		return fmt.Errorf("scenario: line %d: assert_slot must be a sequence", n.line)
	}
	for i, item := range n.items {
		switch item.kind {
		case scalarNode:
			a, err := parseAssertion(item.scalar, item.line, true)
			if err != nil {
				return err
			}
			doc.SlotAsserts = append(doc.SlotAsserts, SlotAssertion{Assertion: a, From: 0, To: -1})
		case mapNode:
			ctx := fmt.Sprintf("assert_slot[%d]", i)
			d, err := newDec(item, ctx)
			if err != nil {
				return err
			}
			expr := d.str("expr", "")
			from := d.integer("from", 0)
			to := d.integer("to", -1)
			if err := d.finish(); err != nil {
				return err
			}
			if expr == "" {
				return fmt.Errorf("scenario: line %d: %s: missing \"expr\"", item.line, ctx)
			}
			a, err := parseAssertion(expr, item.line, true)
			if err != nil {
				return err
			}
			if from < 0 || (to != -1 && to <= from) {
				return fmt.Errorf("scenario: line %d: %s: bad slot window [%d, %d)", item.line, ctx, from, to)
			}
			doc.SlotAsserts = append(doc.SlotAsserts, SlotAssertion{Assertion: a, From: from, To: to})
		default:
			return fmt.Errorf("scenario: line %d: assert_slot[%d] must be an expression or a mapping", item.line, i)
		}
	}
	return nil
}

// validate cross-checks the decoded document. Fault parameter ranges
// themselves are validated again by fault.Scenario.Validate at compile
// time; this layer catches scenario-level contradictions.
func (doc *Doc) validate() error {
	switch doc.Spec.Scheme {
	case "", "rbcaer", "nearest", "random", "lp", "hier", "p2c", "reactive-lru", "reactive-lfu":
	default:
		return fmt.Errorf("scenario: unknown run.scheme %q", doc.Spec.Scheme)
	}
	if doc.Spec.Churn < 0 || doc.Spec.Churn > 1 {
		return fmt.Errorf("scenario: run.churn %v outside [0, 1]", doc.Spec.Churn)
	}
	if doc.Spec.Shards < 0 {
		return fmt.Errorf("scenario: run.shards %d negative", doc.Spec.Shards)
	}
	if doc.Spec.ShardCellKm < 0 {
		return fmt.Errorf("scenario: run.shard_cell_km %v negative", doc.Spec.ShardCellKm)
	}
	if doc.Spec.Shards > 0 && doc.Spec.ShardCellKm > 0 {
		return fmt.Errorf("scenario: run.shards and run.shard_cell_km are mutually exclusive")
	}
	if (doc.Spec.Shards > 0 || doc.Spec.ShardCellKm > 0) &&
		doc.Spec.Scheme != "" && doc.Spec.Scheme != "rbcaer" {
		return fmt.Errorf("scenario: sharding requires run.scheme rbcaer, got %q", doc.Spec.Scheme)
	}
	if err := doc.validateServe(); err != nil {
		return err
	}
	var churnEvents, staleEvents int
	thetaAt := -1
	for i, ev := range doc.Events {
		switch ev.Kind {
		case EventChurn:
			churnEvents++
			if churnEvents > 1 {
				return fmt.Errorf("scenario: events[%d]: duplicate churn event", i)
			}
		case EventStale:
			staleEvents++
			if staleEvents > 1 {
				return fmt.Errorf("scenario: events[%d]: duplicate stale_reports event", i)
			}
		case EventTheta:
			if doc.Spec.Scheme != "" && doc.Spec.Scheme != "rbcaer" {
				return fmt.Errorf("scenario: events[%d]: theta requires run.scheme rbcaer, got %q", i, doc.Spec.Scheme)
			}
			if doc.Spec.Delta {
				return fmt.Errorf("scenario: events[%d]: theta events are incompatible with delta mode (delta rounds reuse state across the θ regime change)", i)
			}
			if doc.Spec.Shards > 0 || doc.Spec.ShardCellKm > 0 {
				return fmt.Errorf("scenario: events[%d]: theta events are incompatible with sharded scheduling", i)
			}
			if ev.At <= thetaAt {
				return fmt.Errorf("scenario: events[%d]: theta events must have strictly increasing \"at\" slots", i)
			}
			thetaAt = ev.At
		}
	}
	if churnEvents > 0 && doc.Stress != nil && doc.Stress.Churn != nil {
		return fmt.Errorf("scenario: explicit churn event and stress.churn both set; keep one")
	}
	if staleEvents > 0 && doc.Stress != nil && doc.Stress.Staleness != nil {
		return fmt.Errorf("scenario: explicit stale_reports event and stress.stale_reports both set; keep one")
	}
	if doc.Spec.Delta && doc.Spec.Scheme != "" && doc.Spec.Scheme != "rbcaer" {
		return fmt.Errorf("scenario: run.delta requires run.scheme rbcaer, got %q", doc.Spec.Scheme)
	}
	if doc.Spec.DeltaThreshold < 0 {
		return fmt.Errorf("scenario: run.delta_threshold %v must be non-negative", doc.Spec.DeltaThreshold)
	}
	if doc.Spec.DeltaThreshold > 0 && !doc.Spec.Delta {
		return fmt.Errorf("scenario: run.delta_threshold needs run.delta: true")
	}
	return nil
}

// validateServe cross-checks serve mode: a serve run drives a real
// durable serving tier, so only crash events apply, and the simulator's
// fault/stress machinery (and its per-slot metrics) is unavailable.
func (doc *Doc) validateServe() error {
	if !doc.Spec.Serve {
		if doc.Spec.Instances != 0 || doc.Spec.Fsync != "" || doc.Spec.CheckpointEvery != 0 {
			return fmt.Errorf("scenario: run.instances/fsync/checkpoint_every need run.serve: true")
		}
		for i, ev := range doc.Events {
			if ev.Kind == EventCrash {
				return fmt.Errorf("scenario: events[%d]: crash needs run.serve: true", i)
			}
		}
		return nil
	}
	if doc.Spec.Scheme != "" && doc.Spec.Scheme != "rbcaer" {
		return fmt.Errorf("scenario: run.serve requires run.scheme rbcaer, got %q", doc.Spec.Scheme)
	}
	if doc.Spec.Delta {
		return fmt.Errorf("scenario: run.serve does not support delta mode")
	}
	if doc.Spec.Shards > 0 || doc.Spec.ShardCellKm > 0 {
		return fmt.Errorf("scenario: run.serve does not support sharded scheduling")
	}
	if doc.Spec.Churn != 0 {
		return fmt.Errorf("scenario: run.serve does not support churn (the serving tier has no fault injection)")
	}
	if doc.Stress != nil {
		return fmt.Errorf("scenario: run.serve does not support the stress section")
	}
	if len(doc.SlotAsserts) > 0 {
		return fmt.Errorf("scenario: run.serve does not support assert_slot (serve runs have no per-slot sim metrics)")
	}
	if doc.Spec.Instances < 0 {
		return fmt.Errorf("scenario: run.instances %d negative", doc.Spec.Instances)
	}
	if doc.Spec.CheckpointEvery < 0 {
		return fmt.Errorf("scenario: run.checkpoint_every %d negative", doc.Spec.CheckpointEvery)
	}
	switch doc.Spec.Fsync {
	case "", "always", "interval", "none":
	default:
		return fmt.Errorf("scenario: run.fsync %q (want always, interval, or none)", doc.Spec.Fsync)
	}
	prev := 0
	for i, ev := range doc.Events {
		if ev.Kind != EventCrash {
			return fmt.Errorf("scenario: events[%d]: serve mode supports only crash events, got %s", i, ev.Kind)
		}
		if ev.At < 1 {
			return fmt.Errorf("scenario: events[%d]: crash.at must be >= 1", i)
		}
		if ev.At <= prev {
			return fmt.Errorf("scenario: events[%d]: crash events must have strictly increasing \"at\" slots", i)
		}
		prev = ev.At
	}
	return nil
}
