package scenario

import (
	"strings"
	"testing"
)

// tinyRun is a fast fault-active document used by the execution tests.
const tinyRun = `name: tiny
world:
  seed: 9
  hotspots: 25
  videos: 400
  users: 300
  requests: 1200
  slots: 4
run:
  scheme: rbcaer
events:
  - at: 1
    action: regional_outage
    x: 5
    y: 5
    radius_km: 2
    for: 2
assert:
  - TotalRequests == 1200
  - fault.cause.outage >= 0
assert_slot:
  - stranded >= 0
`

// tinyShardedRun drives the sharded scheduling path (run.shard_cell_km)
// through a fault window.
const tinyShardedRun = `name: tiny-sharded
world:
  seed: 9
  hotspots: 25
  videos: 400
  users: 300
  requests: 1200
  slots: 4
run:
  scheme: rbcaer
  shard_cell_km: 5
events:
  - at: 1
    action: regional_outage
    x: 5
    y: 5
    radius_km: 2
    for: 2
assert:
  - TotalRequests == 1200
  - shard.rounds > 0
  - shard.boundary.moved_flow >= 0
assert_slot:
  - stranded >= 0
`

// TestExecuteShardedDeterministic mirrors the headline determinism
// contract for the sharded path: byte-identical reports at Workers 1
// and 4 (shard pools and slot pools both scale with Workers).
func TestExecuteShardedDeterministic(t *testing.T) {
	texts := make([]string, 2)
	for i, workers := range []int{1, 4} {
		doc, err := Parse([]byte(tinyShardedRun))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := doc.Execute(ExecOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !rep.Pass {
			t.Fatalf("workers=%d: report failed:\n%s", workers, rep.Text())
		}
		texts[i] = rep.Text()
	}
	if texts[0] != texts[1] {
		t.Fatalf("sharded reports differ between Workers 1 and 4:\n--- w1:\n%s\n--- w4:\n%s", texts[0], texts[1])
	}
}

// TestExecuteReportDeterministic certifies the DSL's headline contract:
// the same file produces byte-identical reports at Workers 1 and 4
// (run under -race in CI).
func TestExecuteReportDeterministic(t *testing.T) {
	texts := make([]string, 2)
	for i, workers := range []int{1, 4} {
		doc, err := Parse([]byte(tinyRun))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := doc.Execute(ExecOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !rep.Pass {
			t.Fatalf("workers=%d: report failed:\n%s", workers, rep.Text())
		}
		texts[i] = rep.Text()
	}
	if texts[0] != texts[1] {
		t.Fatalf("reports differ between Workers 1 and 4:\n--- w1:\n%s\n--- w4:\n%s", texts[0], texts[1])
	}
}

func TestExecuteFailingAssertion(t *testing.T) {
	src := strings.Replace(tinyRun, "TotalRequests == 1200", "TotalRequests == 1", 1)
	doc, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := doc.Execute(ExecOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("violated assertion reported Pass")
	}
	if rep.Results[0].Pass || rep.Results[0].Value != 1200 {
		t.Fatalf("result[0] = %+v, want fail at value 1200", rep.Results[0])
	}
	if !strings.Contains(rep.Text(), "FAIL TotalRequests == 1") {
		t.Fatalf("report does not name the failed assertion:\n%s", rep.Text())
	}
	if !strings.Contains(rep.Text(), "result: FAIL") {
		t.Fatalf("report verdict not FAIL:\n%s", rep.Text())
	}
}

func TestExecuteUnknownCounterFailsAssertion(t *testing.T) {
	src := strings.Replace(tinyRun, "fault.cause.outage >= 0", "fault.cause.meteor >= 0", 1)
	doc, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := doc.Execute(ExecOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("assertion on a missing counter passed")
	}
	if rep.Results[1].Err == "" || !strings.Contains(rep.Results[1].Err, "fault.cause.meteor") {
		t.Fatalf("result[1] = %+v, want evaluation error naming the counter", rep.Results[1])
	}
}

func TestExecuteSlotWindowViolation(t *testing.T) {
	// The outage spans slots [1, 3); requiring zero stranding there must
	// fail, and the report must pin the first violating slot.
	src := strings.Replace(tinyRun, "stranded >= 0", "expr: stranded == 0\n    from: 1\n    to: 3", 1)
	doc, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := doc.Execute(ExecOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Skip("outage stranded nothing in this world; window test not applicable")
	}
	r := rep.SlotResults[0]
	if r.Violations == 0 || r.FirstSlot < 1 || r.FirstSlot >= 3 {
		t.Fatalf("slot result = %+v, want violation inside [1, 3)", r)
	}
	if r.Checked != 2 {
		t.Fatalf("checked = %d, want 2 (window [1, 3))", r.Checked)
	}
}

func TestExecuteFailFastAborts(t *testing.T) {
	src := strings.Replace(tinyRun, "run:\n  scheme: rbcaer", "run:\n  scheme: rbcaer\n  fail_fast: true", 1)
	src = strings.Replace(src, "stranded >= 0", "expr: stranded == 0\n    from: 1\n    to: 3", 1)
	doc, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if !doc.Spec.FailFast {
		t.Fatal("fail_fast not decoded")
	}
	rep, err := doc.Execute(ExecOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Skip("outage stranded nothing in this world; fail-fast not triggered")
	}
	if !rep.Aborted {
		t.Fatalf("fail_fast run not aborted: %+v", rep)
	}
	if rep.Metrics != nil {
		t.Fatal("aborted run still carries final metrics")
	}
	if !strings.Contains(rep.Text(), "run aborted at slot") {
		t.Fatalf("report does not state the abort:\n%s", rep.Text())
	}
}

func TestExecuteThetaRegimes(t *testing.T) {
	src := strings.Replace(tinyRun,
		"events:",
		"events:\n  - action: theta\n    at: 2\n    theta1: 1\n    theta2: 2.5",
		1)
	doc, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	texts := make([]string, 2)
	for i, workers := range []int{1, 4} {
		rep, err := doc.Execute(ExecOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		texts[i] = rep.Text()
	}
	if texts[0] != texts[1] {
		t.Fatalf("theta reports differ across worker counts:\n%s\n---\n%s", texts[0], texts[1])
	}
}

func TestExecuteAllSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, s := range []string{"nearest", "random", "p2c", "lp", "hier", "reactive-lru", "reactive-lfu"} {
		s := s
		t.Run(s, func(t *testing.T) {
			src := strings.Replace(tinyRun, "scheme: rbcaer", "scheme: "+s, 1)
			doc, err := Parse([]byte(src))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := doc.Execute(ExecOptions{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Metrics == nil || rep.Metrics.TotalRequests != 1200 {
				t.Fatalf("scheme %s: metrics = %+v", s, rep.Metrics)
			}
		})
	}
}
