package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Op is an assertion comparison operator.
type Op int

const (
	OpLT Op = iota + 1
	OpLE
	OpGT
	OpGE
	OpEQ
	OpNE
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	case OpEQ:
		return "=="
	case OpNE:
		return "!="
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

var ops = map[string]Op{
	"<": OpLT, "<=": OpLE, ">": OpGT, ">=": OpGE, "==": OpEQ, "!=": OpNE,
}

// Assertion is one parsed "ident op value" expression.
type Assertion struct {
	// Raw is the source expression, used verbatim in reports.
	Raw   string
	Ident string
	Op    Op
	// Value is the numeric right-hand side (unused for bools).
	Value float64
	// IsBool marks a boolean comparison (slot "degraded" only).
	IsBool    bool
	BoolValue bool
	Line      int
}

// SlotAssertion is an assertion evaluated against every applied slot in
// [From, To) — To == -1 means the end of the run.
type SlotAssertion struct {
	Assertion
	From, To int
}

// window renders the assertion's slot window for reports.
func (a SlotAssertion) window() string {
	if a.From == 0 && a.To == -1 {
		return "all slots"
	}
	if a.To == -1 {
		return fmt.Sprintf("slots %d..end", a.From)
	}
	return fmt.Sprintf("slots [%d, %d)", a.From, a.To)
}

// covers reports whether the assertion applies to slot.
func (a SlotAssertion) covers(slot int) bool {
	return slot >= a.From && (a.To == -1 || slot < a.To)
}

// runIdents names the run-level sim-metric vocabulary. Any other
// identifier containing a '.' resolves against the obs registry
// snapshot's counters (e.g. fault.cause.outage, core.delta.rounds).
var runIdents = map[string]func(*sim.Metrics) float64{
	"TotalRequests":         func(m *sim.Metrics) float64 { return float64(m.TotalRequests) },
	"ServedByHotspot":       func(m *sim.Metrics) float64 { return float64(m.ServedByHotspot) },
	"ServedByCDN":           func(m *sim.Metrics) float64 { return float64(m.ServedByCDN) },
	"Infeasible":            func(m *sim.Metrics) float64 { return float64(m.Infeasible) },
	"HotspotServingRatio":   func(m *sim.Metrics) float64 { return m.HotspotServingRatio },
	"AvgAccessDistanceKm":   func(m *sim.Metrics) float64 { return m.AvgAccessDistanceKm },
	"Replicas":              func(m *sim.Metrics) float64 { return float64(m.Replicas) },
	"ReplicationCost":       func(m *sim.Metrics) float64 { return m.ReplicationCost },
	"CDNServerLoad":         func(m *sim.Metrics) float64 { return m.CDNServerLoad },
	"OfflineHotspotSlots":   func(m *sim.Metrics) float64 { return float64(m.OfflineHotspotSlots) },
	"FlashInjectedRequests": func(m *sim.Metrics) float64 { return float64(m.FlashInjectedRequests) },
	"DegradedRounds":        func(m *sim.Metrics) float64 { return float64(m.DegradedRounds) },
	"StrandedRequests":      func(m *sim.Metrics) float64 { return float64(m.StrandedRequests) },
	"FallbackServedByCDN":   func(m *sim.Metrics) float64 { return float64(m.FallbackServedByCDN) },
}

// slotIdents names the slot-level vocabulary over sim.SlotMetrics.
// "degraded" is the lone boolean.
var slotIdents = map[string]func(sim.SlotMetrics) float64{
	"slot":           func(s sim.SlotMetrics) float64 { return float64(s.Slot) },
	"requests":       func(s sim.SlotMetrics) float64 { return float64(s.Requests) },
	"served_hotspot": func(s sim.SlotMetrics) float64 { return float64(s.ServedByHotspot) },
	"served_cdn":     func(s sim.SlotMetrics) float64 { return float64(s.ServedByCDN) },
	"replicas":       func(s sim.SlotMetrics) float64 { return float64(s.Replicas) },
	"serving_ratio":  func(s sim.SlotMetrics) float64 { return s.HotspotServingRatio },
	"infeasible":     func(s sim.SlotMetrics) float64 { return float64(s.Infeasible) },
	"stranded":       func(s sim.SlotMetrics) float64 { return float64(s.Stranded) },
}

// parseAssertion parses "ident op value". Slot assertions draw from the
// slot vocabulary (plus boolean "degraded"); run assertions draw from
// the sim-metric vocabulary or dotted obs counter names.
func parseAssertion(expr string, line int, slotLevel bool) (Assertion, error) {
	fields := strings.Fields(expr)
	if len(fields) != 3 {
		return Assertion{}, fmt.Errorf("scenario: line %d: assertion %q must be \"ident op value\"", line, expr)
	}
	a := Assertion{Raw: strings.Join(fields, " "), Ident: fields[0], Line: line}
	op, ok := ops[fields[1]]
	if !ok {
		return Assertion{}, fmt.Errorf("scenario: line %d: assertion %q: unknown operator %q (want <, <=, >, >=, ==, or !=)", line, expr, fields[1])
	}
	a.Op = op
	switch fields[2] {
	case "true", "false":
		a.IsBool = true
		a.BoolValue = fields[2] == "true"
		if op != OpEQ && op != OpNE {
			return Assertion{}, fmt.Errorf("scenario: line %d: assertion %q: boolean comparisons support only == and !=", line, expr)
		}
	default:
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return Assertion{}, fmt.Errorf("scenario: line %d: assertion %q: %q is not a number or bool", line, expr, fields[2])
		}
		a.Value = v
	}
	if slotLevel {
		if a.IsBool {
			if a.Ident != "degraded" {
				return Assertion{}, fmt.Errorf("scenario: line %d: assertion %q: only \"degraded\" is boolean", line, expr)
			}
		} else if _, ok := slotIdents[a.Ident]; !ok {
			return Assertion{}, fmt.Errorf("scenario: line %d: assertion %q: unknown slot metric %q (want %s, or boolean degraded)",
				line, expr, a.Ident, strings.Join(sortedKeys(slotIdents), ", "))
		}
	} else {
		if a.IsBool {
			return Assertion{}, fmt.Errorf("scenario: line %d: assertion %q: run-level assertions are numeric (use DegradedRounds == 0)", line, expr)
		}
		if _, ok := runIdents[a.Ident]; !ok && !strings.Contains(a.Ident, ".") {
			return Assertion{}, fmt.Errorf("scenario: line %d: assertion %q: unknown run metric %q (want a sim metric like %s, or a dotted obs counter like fault.cause.outage)",
				line, expr, a.Ident, strings.Join(sortedRunIdents(), ", "))
		}
	}
	return a, nil
}

// compare applies the operator to a numeric left-hand side.
func (a Assertion) compare(v float64) bool {
	switch a.Op {
	case OpLT:
		return v < a.Value
	case OpLE:
		return v <= a.Value
	case OpGT:
		return v > a.Value
	case OpGE:
		return v >= a.Value
	case OpEQ:
		return v == a.Value
	case OpNE:
		return v != a.Value
	default:
		return false
	}
}

// compareBool applies ==/!= to a boolean left-hand side.
func (a Assertion) compareBool(v bool) bool {
	if a.Op == OpEQ {
		return v == a.BoolValue
	}
	return v != a.BoolValue
}

// evalRun resolves the assertion's identifier against the run metrics
// (sim vocabulary first, then the snapshot's counters) and compares.
func (a Assertion) evalRun(m *sim.Metrics, snap obs.Snapshot) (value float64, pass bool, err error) {
	if fn, ok := runIdents[a.Ident]; ok {
		if m == nil {
			return 0, false, fmt.Errorf("run metric %q is not available in serve mode (assert a dotted counter like serve.plans_mismatched instead)", a.Ident)
		}
		v := fn(m)
		return v, a.compare(v), nil
	}
	for _, c := range snap.Counters {
		if c.Name == a.Ident {
			v := float64(c.Value)
			return v, a.compare(v), nil
		}
	}
	return 0, false, fmt.Errorf("no counter %q in the run's metrics registry (is the fault family / subsystem it counts active?)", a.Ident)
}

// evalSlot evaluates the assertion against one slot's metrics.
func (a SlotAssertion) evalSlot(s sim.SlotMetrics) (value float64, pass bool) {
	if a.IsBool {
		if a.compareBool(s.Degraded) {
			return 0, true
		}
		return boolVal(s.Degraded), false
	}
	v := slotIdents[a.Ident](s)
	return v, a.compare(v)
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func sortedKeys(m map[string]func(sim.SlotMetrics) float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedRunIdents() []string {
	out := make([]string, 0, len(runIdents))
	for k := range runIdents {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
