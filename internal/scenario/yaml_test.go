package scenario

import (
	"strings"
	"testing"
)

func TestParseYAMLStructures(t *testing.T) {
	src := []byte(`---
# comment
name: demo # trailing comment
world:
  seed: 7
  hotspots: 60
list:
  - one
  - two
flow: [1, 2, 3]
quoted: "a # not-comment: still"
nested:
  - key: value
    extra: 2
  - key: other
`)
	root, err := parseYAML(src)
	if err != nil {
		t.Fatal(err)
	}
	if root.kind != mapNode {
		t.Fatalf("root kind = %v, want mapping", root.kind)
	}
	if got := root.child("name"); got == nil || got.scalar != "demo" {
		t.Fatalf("name = %+v, want scalar demo", got)
	}
	w := root.child("world")
	if w == nil || w.kind != mapNode || w.child("seed").scalar != "7" {
		t.Fatalf("world = %+v, want mapping with seed 7", w)
	}
	l := root.child("list")
	if l == nil || l.kind != seqNode || len(l.items) != 2 || l.items[1].scalar != "two" {
		t.Fatalf("list = %+v, want 2-item sequence", l)
	}
	f := root.child("flow")
	if f == nil || f.kind != seqNode || len(f.items) != 3 || f.items[2].scalar != "3" {
		t.Fatalf("flow = %+v, want 3-item sequence", f)
	}
	if got := root.child("quoted").scalar; got != "a # not-comment: still" {
		t.Fatalf("quoted = %q", got)
	}
	n := root.child("nested")
	if n == nil || n.kind != seqNode || len(n.items) != 2 {
		t.Fatalf("nested = %+v, want 2-item sequence", n)
	}
	first := n.items[0]
	if first.kind != mapNode || first.child("key").scalar != "value" || first.child("extra").scalar != "2" {
		t.Fatalf("nested[0] = %+v, want mapping {key: value, extra: 2}", first)
	}
}

func TestParseYAMLErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"tab indent", "a:\n\tb: 1\n", "tab"},
		{"duplicate key", "a: 1\na: 2\n", "duplicate key"},
		{"bad flow list", "a: [1, 2\n", "flow list"},
		{"nested flow", "a: [[1], 2]\n", "flow list"},
		{"scalar root", "just a scalar\n", "key: value"},
		{"empty", "", "empty"},
		{"seq root", "- a\n- b\n", "mapping"},
		{"bad unquote", `a: "unterminated` + "\n", "quoted scalar"},
		{"quoted key", `"a": 1` + "\n", "quoted key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAML([]byte(tc.src))
			if err == nil {
				t.Fatalf("parseYAML(%q): no error, want %q", tc.src, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("parseYAML(%q) error = %v, want substring %q", tc.src, err, tc.want)
			}
		})
	}
}

func TestParseYAMLLineNumbers(t *testing.T) {
	src := []byte("a: 1\n\n# comment\nb:\n  c: 2\n")
	root, err := parseYAML(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := root.child("b").child("c").line; got != 5 {
		t.Fatalf("b.c line = %d, want 5", got)
	}
}

func TestDecoderUnknownKey(t *testing.T) {
	root, err := parseYAML([]byte("known: 1\nmystery: 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	d, err := newDec(root, "test")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.integer("known", 0); got != 1 {
		t.Fatalf("known = %d, want 1", got)
	}
	err = d.finish()
	if err == nil || !strings.Contains(err.Error(), "mystery") {
		t.Fatalf("finish() = %v, want unknown-key error naming mystery", err)
	}
}

func TestDecoderRanges(t *testing.T) {
	root, err := parseYAML([]byte("pin: 0.5\nspan: [0.1, 0.9]\nints: [2, 5]\nbad: [3, 1]\n"))
	if err != nil {
		t.Fatal(err)
	}
	d, err := newDec(root, "test")
	if err != nil {
		t.Fatal(err)
	}
	if r := d.floatRange("pin", Range{}); r.Lo != 0.5 || r.Hi != 0.5 {
		t.Fatalf("pin = %+v, want degenerate [0.5, 0.5]", r)
	}
	if r := d.floatRange("span", Range{}); r.Lo != 0.1 || r.Hi != 0.9 {
		t.Fatalf("span = %+v", r)
	}
	if r := d.intRange("ints", IntRange{}); r.Lo != 2 || r.Hi != 5 {
		t.Fatalf("ints = %+v", r)
	}
	d.floatRange("bad", Range{})
	if err := d.finish(); err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("finish() = %v, want inverted-range error", err)
	}
}
