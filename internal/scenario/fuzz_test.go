package scenario

import "testing"

// FuzzScenarioParse enforces the parser's no-panic contract: any byte
// input either parses into a validated Doc or returns an error — never
// panics, never hangs. CI runs this as a smoke alongside the other
// fuzzers.
func FuzzScenarioParse(f *testing.F) {
	seeds := []string{
		"",
		"name: a\n",
		"---\nname: a\nworld:\n  seed: 3\n",
		"name: a\nevents:\n  - at: slot 2\n    action: regional_outage\n    x: 1\n    y: 2\n    radius_km: 3\n    for: 2\n",
		"name: a\nevents:\n  - action: churn\n    fail: 0.1\n    recover: 0.5\n",
		"name: a\nstress:\n  seed: 7\n  churn:\n    fail: [0.1, 0.2]\n",
		"name: a\nstress:\n  fleet:\n    - name: t\n      weight: 1\n",
		"name: a\nassert:\n  - StrandedRequests < 10\n",
		"name: a\nassert_slot:\n  - degraded == false\n  - expr: stranded < 5\n    from: 1\n    to: 3\n",
		"name: \"quoted # name\"\nrun:\n  scheme: nearest\n",
		"name: a\nflow: [1, 2\n",
		"a:\n\tb: tab\n",
		"- seq\n- root\n",
		"name: a\nrun:\n  delta: true\n  delta_threshold: 0.5\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := Parse(data)
		if err == nil && doc == nil {
			t.Fatal("Parse returned nil doc and nil error")
		}
		if err == nil && doc.Name == "" {
			t.Fatal("Parse accepted a doc with no name")
		}
	})
}
