package scenario

import (
	"strings"
	"testing"
)

// tinyServe drives a crash/restart serve run small enough for CI.
const tinyServe = `name: tiny-serve
world:
  seed: 11
  hotspots: 16
  videos: 400
  users: 600
  requests: 2000
  slots: 4
run:
  serve: true
  instances: 3
  fsync: always
  checkpoint_every: 2
events:
  - at: slot 2
    action: crash
assert:
  - serve.crashes == 1
  - serve.plans_mismatched == 0
  - serve.plans_match == 4
  - serve.recovered_records > 0
`

// TestExecuteServeCrashRecovery runs the full serve-mode path: offline
// reference, real HTTP serving tier, abrupt kill mid-slot, restart
// from the WAL, byte-identity check, serve.* assertions.
func TestExecuteServeCrashRecovery(t *testing.T) {
	doc, err := Parse([]byte(tinyServe))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := doc.Execute(ExecOptions{Workers: 1})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !rep.Pass {
		t.Fatalf("serve run failed:\n%s", rep.Text())
	}
	if !rep.Serve || rep.Crashes != 1 || rep.PlansMismatched != 0 || rep.PlansMatched != 4 {
		t.Fatalf("serve report = %+v", rep)
	}
	if rep.Metrics != nil {
		t.Fatal("serve run has sim metrics")
	}
	text := rep.Text()
	if !strings.Contains(text, "serve:    3 frontends, fsync always, 1 crash(es); 4/4 plans byte-identical to offline") {
		t.Fatalf("report text missing serve line:\n%s", text)
	}
}

// TestExecuteServeRejectsSimMetricAsserts: the run-level sim vocabulary
// is unavailable in serve mode and must fail the assertion loudly, not
// panic on a nil *sim.Metrics.
func TestExecuteServeRejectsSimMetricAsserts(t *testing.T) {
	src := `name: serve-bad-assert
world:
  seed: 11
  hotspots: 12
  videos: 200
  users: 200
  requests: 400
  slots: 2
run:
  serve: true
assert:
  - TotalRequests == 400
`
	doc, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := doc.Execute(ExecOptions{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if rep.Pass {
		t.Fatal("sim-metric assertion passed in serve mode")
	}
	if len(rep.Results) != 1 || !strings.Contains(rep.Results[0].Err, "not available in serve mode") {
		t.Fatalf("results = %+v", rep.Results)
	}
}

// TestServeValidation locks in the serve-mode schema rules.
func TestServeValidation(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			"crash without serve",
			"name: t\nevents:\n  - at: 1\n    action: crash\n",
			"crash needs run.serve: true",
		},
		{
			"serve keys without serve",
			"name: t\nrun:\n  instances: 3\n",
			"need run.serve: true",
		},
		{
			"serve with non-rbcaer scheme",
			"name: t\nrun:\n  serve: true\n  scheme: nearest\n",
			"run.serve requires run.scheme rbcaer",
		},
		{
			"serve with delta",
			"name: t\nrun:\n  serve: true\n  delta: true\n",
			"does not support delta",
		},
		{
			"serve with shards",
			"name: t\nrun:\n  serve: true\n  shards: 2\n",
			"does not support sharded",
		},
		{
			"serve with churn",
			"name: t\nrun:\n  serve: true\n  churn: 0.1\n",
			"does not support churn",
		},
		{
			"serve with stress",
			"name: t\nrun:\n  serve: true\nstress:\n  outages:\n    count: 1\n    radius_km: [1, 2]\n    start: [0, 1]\n    duration: 1\n",
			"does not support the stress section",
		},
		{
			"serve with slot asserts",
			"name: t\nrun:\n  serve: true\nassert_slot:\n  - stranded >= 0\n",
			"does not support assert_slot",
		},
		{
			"serve with fault event",
			"name: t\nrun:\n  serve: true\nevents:\n  - at: 1\n    action: regional_outage\n    x: 1\n    y: 1\n    radius_km: 1\n    for: 1\n",
			"supports only crash events",
		},
		{
			"crash at slot 0",
			"name: t\nrun:\n  serve: true\nevents:\n  - at: 0\n    action: crash\n",
			"crash.at must be >= 1",
		},
		{
			"crash slots not increasing",
			"name: t\nrun:\n  serve: true\nevents:\n  - at: 2\n    action: crash\n  - at: 2\n    action: crash\n",
			"strictly increasing",
		},
		{
			"bad fsync policy",
			"name: t\nrun:\n  serve: true\n  fsync: sometimes\n",
			"run.fsync \"sometimes\"",
		},
		{
			"negative checkpoint",
			"name: t\nrun:\n  serve: true\n  checkpoint_every: -1\n",
			"checkpoint_every -1 negative",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if err == nil {
				t.Fatalf("parsed without error, want %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestServeCrashBeyondRun: a crash slot outside the run is an execution
// error (the slot count is only resolved at execute time).
func TestServeCrashBeyondRun(t *testing.T) {
	src := `name: t
world:
  seed: 3
  hotspots: 12
  videos: 200
  users: 200
  requests: 400
  slots: 2
run:
  serve: true
events:
  - at: 7
    action: crash
`
	doc, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doc.Execute(ExecOptions{}); err == nil || !strings.Contains(err.Error(), "outside the 2-slot run") {
		t.Fatalf("Execute error = %v", err)
	}
}
