package scenario

import (
	"testing"

	"repro/internal/sim"
)

// TestOpStrings pins the operator rendering, including the
// out-of-range fallback used in internal error messages.
func TestOpStrings(t *testing.T) {
	for _, tc := range []struct {
		op   Op
		want string
	}{
		{OpLT, "<"}, {OpLE, "<="}, {OpGT, ">"}, {OpGE, ">="},
		{OpEQ, "=="}, {OpNE, "!="}, {Op(0), "op(0)"},
	} {
		if got := tc.op.String(); got != tc.want {
			t.Errorf("Op(%d).String() = %q, want %q", int(tc.op), got, tc.want)
		}
	}
}

// TestCompareOperators covers every arm of the numeric comparison plus
// the boolean ==/!= path.
func TestCompareOperators(t *testing.T) {
	for _, tc := range []struct {
		op   Op
		v    float64
		want bool
	}{
		{OpLT, 1, true}, {OpLT, 2, false},
		{OpLE, 2, true}, {OpLE, 3, false},
		{OpGT, 3, true}, {OpGT, 2, false},
		{OpGE, 2, true}, {OpGE, 1, false},
		{OpEQ, 2, true}, {OpEQ, 1, false},
		{OpNE, 1, true}, {OpNE, 2, false},
		{Op(0), 2, false}, // unknown operator never passes
	} {
		a := Assertion{Op: tc.op, Value: 2}
		if got := a.compare(tc.v); got != tc.want {
			t.Errorf("compare(%v %s 2) = %v, want %v", tc.v, tc.op, got, tc.want)
		}
	}
	eq := Assertion{Op: OpEQ, BoolValue: true}
	ne := Assertion{Op: OpNE, BoolValue: true}
	if !eq.compareBool(true) || eq.compareBool(false) {
		t.Error("compareBool == arm wrong")
	}
	if ne.compareBool(true) || !ne.compareBool(false) {
		t.Error("compareBool != arm wrong")
	}
}

// TestRunIdentVocabulary drives every run-level identifier through a
// metrics struct with distinct field values, so a renamed or re-wired
// accessor cannot slip through.
func TestRunIdentVocabulary(t *testing.T) {
	m := &sim.Metrics{
		TotalRequests:         1,
		ServedByHotspot:       2,
		ServedByCDN:           3,
		Infeasible:            4,
		HotspotServingRatio:   5,
		AvgAccessDistanceKm:   6,
		Replicas:              7,
		ReplicationCost:       8,
		CDNServerLoad:         9,
		OfflineHotspotSlots:   10,
		FlashInjectedRequests: 11,
		DegradedRounds:        12,
		StrandedRequests:      13,
		FallbackServedByCDN:   14,
	}
	want := map[string]float64{
		"TotalRequests": 1, "ServedByHotspot": 2, "ServedByCDN": 3,
		"Infeasible": 4, "HotspotServingRatio": 5, "AvgAccessDistanceKm": 6,
		"Replicas": 7, "ReplicationCost": 8, "CDNServerLoad": 9,
		"OfflineHotspotSlots": 10, "FlashInjectedRequests": 11,
		"DegradedRounds": 12, "StrandedRequests": 13, "FallbackServedByCDN": 14,
	}
	if len(want) != len(runIdents) {
		t.Fatalf("vocabulary drifted: test covers %d idents, runIdents has %d", len(want), len(runIdents))
	}
	for ident, w := range want {
		fn, ok := runIdents[ident]
		if !ok {
			t.Errorf("runIdents missing %q", ident)
			continue
		}
		if got := fn(m); got != w {
			t.Errorf("runIdents[%q] = %v, want %v", ident, got, w)
		}
	}
}

// TestSlotIdentVocabulary does the same for the slot-level vocabulary.
func TestSlotIdentVocabulary(t *testing.T) {
	s := sim.SlotMetrics{
		Slot: 1, Requests: 2, ServedByHotspot: 3, ServedByCDN: 4,
		Replicas: 5, HotspotServingRatio: 6, Infeasible: 7, Stranded: 8,
	}
	want := map[string]float64{
		"slot": 1, "requests": 2, "served_hotspot": 3, "served_cdn": 4,
		"replicas": 5, "serving_ratio": 6, "infeasible": 7, "stranded": 8,
	}
	if len(want) != len(slotIdents) {
		t.Fatalf("vocabulary drifted: test covers %d idents, slotIdents has %d", len(want), len(slotIdents))
	}
	for ident, w := range want {
		fn, ok := slotIdents[ident]
		if !ok {
			t.Errorf("slotIdents missing %q", ident)
			continue
		}
		if got := fn(s); got != w {
			t.Errorf("slotIdents[%q] = %v, want %v", ident, got, w)
		}
	}
}

// TestSlotAssertionWindow pins the report rendering and coverage of
// slot windows.
func TestSlotAssertionWindow(t *testing.T) {
	all := SlotAssertion{From: 0, To: -1}
	if all.window() != "all slots" || !all.covers(0) || !all.covers(99) {
		t.Errorf("all-slots window: %q", all.window())
	}
	open := SlotAssertion{From: 3, To: -1}
	if open.window() != "slots 3..end" || open.covers(2) || !open.covers(3) {
		t.Errorf("open window: %q", open.window())
	}
	closed := SlotAssertion{From: 2, To: 5}
	if closed.window() != "slots [2, 5)" || closed.covers(5) || !closed.covers(4) {
		t.Errorf("closed window: %q", closed.window())
	}
}

// TestEventKindStrings pins the event-kind names used in validation
// messages and reports.
func TestEventKindStrings(t *testing.T) {
	for _, tc := range []struct {
		k    EventKind
		want string
	}{
		{EventChurn, "churn"},
		{EventOutage, "regional_outage"},
		{EventDegrade, "degrade_capacity"},
		{EventFlash, "flash_crowd"},
		{EventStale, "stale_reports"},
		{EventTheta, "theta"},
		{EventCrash, "crash"},
		{EventKind(99), "event(99)"},
	} {
		if got := tc.k.String(); got != tc.want {
			t.Errorf("EventKind(%d).String() = %q, want %q", int(tc.k), got, tc.want)
		}
	}
}

// TestNodeKindStrings pins the YAML node-kind names used in parse
// errors.
func TestNodeKindStrings(t *testing.T) {
	for _, tc := range []struct {
		k    nodeKind
		want string
	}{
		{scalarNode, "scalar"},
		{mapNode, "mapping"},
		{seqNode, "sequence"},
		{nodeKind(9), "node(9)"},
	} {
		if got := tc.k.String(); got != tc.want {
			t.Errorf("nodeKind(%d).String() = %q, want %q", int(tc.k), got, tc.want)
		}
	}
}
