// Package scenario is the declarative chaos-scenario layer: a
// zero-dependency YAML-subset parser, a scenario schema (explicit timed
// fault events, seeded stress generation, and in-run assertions), and a
// runner that compiles everything onto the existing fault.Scenario /
// fault.Timeline — there is no second injection path — executes the
// simulation, and evaluates the assertions into a deterministic
// pass/fail report.
//
// The repository deliberately has no third-party dependencies, so the
// parser hand-rolls the small YAML subset the scenario grammar needs:
//
//   - block mappings ("key: value", or "key:" introducing an indented
//     block) with unique keys,
//   - block sequences ("- item", where an item is a scalar, a flow
//     list, or a mapping whose first entry sits on the dash line),
//   - flow lists of scalars ("[0.1, 0.5]"),
//   - plain scalars and double-quoted scalars (Go escape rules),
//   - '#' comments (full-line, or trailing after whitespace) and blank
//     lines,
//   - an optional leading "---" document marker.
//
// Indentation is spaces only (a tab in leading whitespace is an error),
// anchors/aliases/multi-documents/flow mappings are not supported, and
// unknown keys are rejected by the schema layer — scenario files fail
// loudly rather than half-parse. The parser never panics on any input
// (FuzzScenarioParse enforces this); malformed input yields an error
// carrying the offending line number.
package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// nodeKind discriminates parsed YAML nodes.
type nodeKind int

const (
	scalarNode nodeKind = iota
	mapNode
	seqNode
)

func (k nodeKind) String() string {
	switch k {
	case scalarNode:
		return "scalar"
	case mapNode:
		return "mapping"
	case seqNode:
		return "sequence"
	default:
		return fmt.Sprintf("node(%d)", int(k))
	}
}

// node is one parsed YAML value. Mappings keep their entries in file
// order so downstream processing is deterministic.
type node struct {
	kind   nodeKind
	line   int
	scalar string   // scalarNode
	keys   []string // mapNode: entry keys, file order
	vals   []*node  // mapNode: entry values, parallel to keys
	items  []*node  // seqNode
}

// child returns the mapping entry for key, or nil.
func (n *node) child(key string) *node {
	for i, k := range n.keys {
		if k == key {
			return n.vals[i]
		}
	}
	return nil
}

// line is one significant source line after comment stripping.
type srcLine struct {
	indent int
	text   string
	num    int
}

// parseYAML parses src into a top-level mapping node.
func parseYAML(src []byte) (*node, error) {
	lines, err := splitLines(src)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("scenario: empty document")
	}
	if lines[0].indent != 0 {
		return nil, fmt.Errorf("scenario: line %d: top-level content must not be indented", lines[0].num)
	}
	pos := 0
	root, err := parseBlock(lines, &pos, 0)
	if err != nil {
		return nil, err
	}
	if pos != len(lines) {
		return nil, fmt.Errorf("scenario: line %d: unexpected content after document", lines[pos].num)
	}
	if root.kind != mapNode {
		return nil, fmt.Errorf("scenario: line %d: document must be a mapping", root.line)
	}
	return root, nil
}

// splitLines strips comments and blanks and computes indentation.
func splitLines(src []byte) ([]srcLine, error) {
	var out []srcLine
	raw := strings.Split(string(src), "\n")
	for i, l := range raw {
		num := i + 1
		l = strings.TrimRight(l, "\r")
		trimmed := strings.TrimLeft(l, " ")
		if strings.ContainsAny(leadingWhitespace(l), "\t") {
			return nil, fmt.Errorf("scenario: line %d: tab in indentation (use spaces)", num)
		}
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		if num == 1 || len(out) == 0 {
			if trimmed == "---" {
				continue
			}
		}
		stripped := stripComment(trimmed)
		stripped = strings.TrimRight(stripped, " ")
		if stripped == "" {
			continue
		}
		out = append(out, srcLine{indent: len(l) - len(trimmed), text: stripped, num: num})
	}
	return out, nil
}

// leadingWhitespace returns l's leading space/tab run.
func leadingWhitespace(l string) string {
	for i := 0; i < len(l); i++ {
		if l[i] != ' ' && l[i] != '\t' {
			return l[:i]
		}
	}
	return l
}

// stripComment removes a trailing " # ..." comment outside double
// quotes. A '#' must follow whitespace (or start the line) to open a
// comment, matching YAML.
func stripComment(s string) string {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if !inQuote {
				inQuote = true
			} else if i == 0 || s[i-1] != '\\' {
				inQuote = false
			}
		case '#':
			if !inQuote && (i == 0 || s[i-1] == ' ') {
				return s[:i]
			}
		}
	}
	return s
}

// parseBlock parses one block (mapping or sequence) whose entries all
// share the indentation of lines[*pos], which must be >= minIndent.
func parseBlock(lines []srcLine, pos *int, minIndent int) (*node, error) {
	first := lines[*pos]
	if first.indent < minIndent {
		return nil, fmt.Errorf("scenario: line %d: expected indented block", first.num)
	}
	if isSeqItem(first.text) {
		return parseSeq(lines, pos, first.indent)
	}
	return parseMap(lines, pos, first.indent)
}

// isSeqItem reports whether a stripped line starts a sequence item.
func isSeqItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

// parseMap parses mapping entries at exactly indent.
func parseMap(lines []srcLine, pos *int, indent int) (*node, error) {
	n := &node{kind: mapNode, line: lines[*pos].num}
	for *pos < len(lines) {
		l := lines[*pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("scenario: line %d: unexpected indentation", l.num)
		}
		if isSeqItem(l.text) {
			return nil, fmt.Errorf("scenario: line %d: unexpected sequence item inside mapping", l.num)
		}
		key, rest, err := splitKey(l)
		if err != nil {
			return nil, err
		}
		if n.child(key) != nil {
			return nil, fmt.Errorf("scenario: line %d: duplicate key %q", l.num, key)
		}
		*pos++
		var val *node
		if rest == "" {
			if *pos >= len(lines) || lines[*pos].indent <= indent {
				return nil, fmt.Errorf("scenario: line %d: key %q has no value", l.num, key)
			}
			val, err = parseBlock(lines, pos, indent+1)
			if err != nil {
				return nil, err
			}
		} else {
			val, err = parseInline(rest, l.num)
			if err != nil {
				return nil, err
			}
		}
		n.keys = append(n.keys, key)
		n.vals = append(n.vals, val)
	}
	return n, nil
}

// splitKey splits "key: rest" (or "key:") on the first unquoted colon.
func splitKey(l srcLine) (key, rest string, err error) {
	text := l.text
	if strings.HasPrefix(text, "\"") {
		return "", "", fmt.Errorf("scenario: line %d: quoted keys are not supported", l.num)
	}
	for i := 0; i < len(text); i++ {
		if text[i] != ':' {
			continue
		}
		if i+1 == len(text) {
			return strings.TrimSpace(text[:i]), "", nil
		}
		if text[i+1] == ' ' {
			return strings.TrimSpace(text[:i]), strings.TrimSpace(text[i+1:]), nil
		}
	}
	return "", "", fmt.Errorf("scenario: line %d: expected \"key: value\", got %q", l.num, text)
}

// parseSeq parses sequence items at exactly indent.
func parseSeq(lines []srcLine, pos *int, indent int) (*node, error) {
	n := &node{kind: seqNode, line: lines[*pos].num}
	for *pos < len(lines) {
		l := lines[*pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("scenario: line %d: unexpected indentation", l.num)
		}
		if !isSeqItem(l.text) {
			return nil, fmt.Errorf("scenario: line %d: expected sequence item", l.num)
		}
		rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(l.text, "-"), " "))
		var item *node
		var err error
		switch {
		case rest == "":
			// "-" alone: the item is the following indented block.
			*pos++
			if *pos >= len(lines) || lines[*pos].indent <= indent {
				return nil, fmt.Errorf("scenario: line %d: empty sequence item", l.num)
			}
			item, err = parseBlock(lines, pos, indent+1)
		case looksLikeMapping(rest):
			// "- key: value": a mapping item whose first entry sits on
			// the dash line; continuation entries are indented to the
			// first entry's column. Splice a synthetic line in place of
			// the dash line and parse a block.
			itemIndent := l.indent + (len(l.text) - len(rest))
			lines[*pos] = srcLine{indent: itemIndent, text: rest, num: l.num}
			item, err = parseBlock(lines, pos, indent+1)
		default:
			*pos++
			item, err = parseInline(rest, l.num)
		}
		if err != nil {
			return nil, err
		}
		n.items = append(n.items, item)
	}
	return n, nil
}

// looksLikeMapping reports whether a sequence-item remainder opens a
// mapping entry ("key: value" or "key:"). Quoted scalars never do.
func looksLikeMapping(rest string) bool {
	if strings.HasPrefix(rest, "\"") || strings.HasPrefix(rest, "[") {
		return false
	}
	if strings.HasSuffix(rest, ":") && !strings.Contains(rest, " ") {
		return true
	}
	i := strings.Index(rest, ": ")
	if i < 0 {
		return false
	}
	// The candidate key must be a single token (no spaces), so scalars
	// like "slot 40: note" stay scalars.
	return !strings.Contains(rest[:i], " ")
}

// parseInline parses an inline value: a flow list of scalars or a
// scalar.
func parseInline(s string, lineNum int) (*node, error) {
	if strings.HasPrefix(s, "[") {
		return parseFlowList(s, lineNum)
	}
	sc, err := parseScalar(s, lineNum)
	if err != nil {
		return nil, err
	}
	return &node{kind: scalarNode, line: lineNum, scalar: sc}, nil
}

// parseFlowList parses "[a, b, c]" of scalars.
func parseFlowList(s string, lineNum int) (*node, error) {
	if !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("scenario: line %d: unterminated flow list %q", lineNum, s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	n := &node{kind: seqNode, line: lineNum}
	if inner == "" {
		return n, nil
	}
	for _, part := range strings.Split(inner, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("scenario: line %d: empty element in flow list", lineNum)
		}
		if strings.HasPrefix(part, "[") {
			return nil, fmt.Errorf("scenario: line %d: nested flow lists are not supported", lineNum)
		}
		sc, err := parseScalar(part, lineNum)
		if err != nil {
			return nil, err
		}
		n.items = append(n.items, &node{kind: scalarNode, line: lineNum, scalar: sc})
	}
	return n, nil
}

// parseScalar resolves a scalar token: double-quoted strings use Go
// escape rules; everything else is taken verbatim.
func parseScalar(s string, lineNum int) (string, error) {
	if strings.HasPrefix(s, "\"") {
		unq, err := strconv.Unquote(s)
		if err != nil {
			return "", fmt.Errorf("scenario: line %d: bad quoted scalar %s: %v", lineNum, s, err)
		}
		return unq, nil
	}
	return s, nil
}

// ---- typed decoding -------------------------------------------------

// dec is a strict decoder over one mapping node: every key the schema
// reads is marked used, and finish() rejects leftovers so typos in
// scenario files fail loudly.
type dec struct {
	n    *node
	used map[string]bool
	ctx  string
	err  error
}

func newDec(n *node, ctx string) (*dec, error) {
	if n.kind != mapNode {
		return nil, fmt.Errorf("scenario: line %d: %s must be a mapping, got %s", n.line, ctx, n.kind)
	}
	return &dec{n: n, used: make(map[string]bool), ctx: ctx}, nil
}

// fail records the first decode error.
func (d *dec) fail(format string, args ...interface{}) {
	if d.err == nil {
		d.err = fmt.Errorf("scenario: "+format, args...)
	}
}

// get marks a key used and returns its node (nil when absent).
func (d *dec) get(key string) *node {
	d.used[key] = true
	return d.n.child(key)
}

// has reports whether the key is present (marking it used).
func (d *dec) has(key string) bool { return d.get(key) != nil }

// finish returns the first decode error, or an unknown-key error.
func (d *dec) finish() error {
	if d.err != nil {
		return d.err
	}
	for i, k := range d.n.keys {
		if !d.used[k] {
			return fmt.Errorf("scenario: line %d: unknown key %q in %s", d.n.vals[i].line, k, d.ctx)
		}
	}
	return nil
}

func (d *dec) scalarOf(key string, c *node) (string, bool) {
	if c.kind != scalarNode {
		d.fail("line %d: %s.%s must be a scalar, got %s", c.line, d.ctx, key, c.kind)
		return "", false
	}
	return c.scalar, true
}

// str returns the string value of key, or def when absent.
func (d *dec) str(key, def string) string {
	c := d.get(key)
	if c == nil {
		return def
	}
	s, ok := d.scalarOf(key, c)
	if !ok {
		return def
	}
	return s
}

// integer returns the int value of key, or def when absent.
func (d *dec) integer(key string, def int) int {
	c := d.get(key)
	if c == nil {
		return def
	}
	s, ok := d.scalarOf(key, c)
	if !ok {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		d.fail("line %d: %s.%s: %q is not an integer", c.line, d.ctx, key, s)
		return def
	}
	return v
}

// int64Of returns the int64 value of key, or def when absent.
func (d *dec) int64Of(key string, def int64) int64 {
	c := d.get(key)
	if c == nil {
		return def
	}
	s, ok := d.scalarOf(key, c)
	if !ok {
		return def
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		d.fail("line %d: %s.%s: %q is not an integer", c.line, d.ctx, key, s)
		return def
	}
	return v
}

// float returns the float64 value of key, or def when absent.
func (d *dec) float(key string, def float64) float64 {
	c := d.get(key)
	if c == nil {
		return def
	}
	s, ok := d.scalarOf(key, c)
	if !ok {
		return def
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		d.fail("line %d: %s.%s: %q is not a number", c.line, d.ctx, key, s)
		return def
	}
	return v
}

// boolean returns the bool value of key, or def when absent.
func (d *dec) boolean(key string, def bool) bool {
	c := d.get(key)
	if c == nil {
		return def
	}
	s, ok := d.scalarOf(key, c)
	if !ok {
		return def
	}
	switch s {
	case "true":
		return true
	case "false":
		return false
	default:
		d.fail("line %d: %s.%s: %q is not a bool (want true or false)", c.line, d.ctx, key, s)
		return def
	}
}

// floatRange returns the [lo, hi] float range of key. A scalar value v
// is the degenerate range [v, v]. Absent yields def.
func (d *dec) floatRange(key string, def Range) Range {
	c := d.get(key)
	if c == nil {
		return def
	}
	if c.kind == scalarNode {
		v, err := strconv.ParseFloat(c.scalar, 64)
		if err != nil {
			d.fail("line %d: %s.%s: %q is not a number", c.line, d.ctx, key, c.scalar)
			return def
		}
		return Range{Lo: v, Hi: v}
	}
	if c.kind != seqNode || len(c.items) != 2 {
		d.fail("line %d: %s.%s must be a number or [lo, hi]", c.line, d.ctx, key)
		return def
	}
	var r Range
	for i, target := range []*float64{&r.Lo, &r.Hi} {
		it := c.items[i]
		if it.kind != scalarNode {
			d.fail("line %d: %s.%s range bounds must be numbers", c.line, d.ctx, key)
			return def
		}
		v, err := strconv.ParseFloat(it.scalar, 64)
		if err != nil {
			d.fail("line %d: %s.%s: %q is not a number", c.line, d.ctx, key, it.scalar)
			return def
		}
		*target = v
	}
	if r.Hi < r.Lo {
		d.fail("line %d: %s.%s: range [%v, %v] has hi < lo", c.line, d.ctx, key, r.Lo, r.Hi)
		return def
	}
	return r
}

// intRange returns the [lo, hi] integer range of key. A scalar value v
// is the degenerate range [v, v]. Absent yields def.
func (d *dec) intRange(key string, def IntRange) IntRange {
	r := d.floatRange(key, Range{Lo: float64(def.Lo), Hi: float64(def.Hi)})
	lo, hi := int(r.Lo), int(r.Hi)
	if float64(lo) != r.Lo || float64(hi) != r.Hi {
		d.fail("%s.%s: range bounds must be integers", d.ctx, key)
		return def
	}
	return IntRange{Lo: lo, Hi: hi}
}
