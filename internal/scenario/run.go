package scenario

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/region"
	"repro/internal/scheme"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ExecOptions parameterise scenario execution. Workers only changes how
// the run is parallelised — scenario semantics, metrics, and the report
// are byte-identical for every value (the determinism suite certifies
// Workers 1 vs 4).
type ExecOptions struct {
	// Workers is the scheduling parallelism (0 = all cores, 1 =
	// serial). Delta-mode scenarios always run sequentially.
	Workers int
}

// errFailFast aborts a fail_fast run at the first violated slot
// assertion.
var errFailFast = errors.New("scenario: slot assertion violated (fail_fast)")

// AssertResult is one evaluated run-level assertion.
type AssertResult struct {
	Assertion
	Value float64
	Pass  bool
	// Err records an evaluation error (e.g. an unknown obs counter);
	// the assertion counts as failed.
	Err string
}

// SlotAssertResult is one evaluated slot-level assertion aggregated
// over its window.
type SlotAssertResult struct {
	SlotAssertion
	// Checked counts the applied slots the window covered.
	Checked int
	// Violations counts covered slots where the predicate was false.
	Violations int
	// FirstSlot/FirstValue describe the first violation.
	FirstSlot  int
	FirstValue float64
	Pass       bool
}

// Report is a finished scenario run: the headline metrics, the fault
// summary, and every assertion's verdict. Its text rendering contains
// no wall-clock quantities, so equal (file, seed) runs render
// byte-identically at any worker count.
type Report struct {
	Name        string
	Scheme      string
	Hotspots    int
	Videos      int
	Slots       int
	Seed        int64
	Delta       bool
	StressCount int
	FaultCounts fault.CauseCounts

	// Serve-mode outcome (run.serve: true). Metrics is nil for serve
	// runs; the byte-identity verdict lives in PlansMatched /
	// PlansMismatched and the serve.* counters of Snapshot.
	Serve           bool
	ServeInstances  int
	ServeFsync      string
	Crashes         int
	PlansMatched    int
	PlansMismatched int

	Metrics     *sim.Metrics
	Snapshot    obs.Snapshot
	Results     []AssertResult
	SlotResults []SlotAssertResult

	// Aborted is set when fail_fast stopped the run mid-way; Metrics is
	// nil and run-level assertions were not evaluated.
	Aborted     bool
	AbortedSlot int

	Pass bool
}

// Execute generates the scenario's world and trace, compiles the
// explicit events and stress expansion onto one fault.Scenario, runs
// the simulation with in-run slot assertions, evaluates the run-level
// assertions, and returns the report. The returned error is non-nil
// only for scenario/infrastructure failures — assertion failures are
// reported via Report.Pass.
func (doc *Doc) Execute(opt ExecOptions) (*Report, error) {
	if doc.Spec.Serve {
		return doc.executeServe(opt)
	}
	cfg := doc.traceConfig()
	world, tr, err := trace.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario: generating world: %w", err)
	}
	doc.applyCapacityOverrides(world)

	stressSeed := cfg.Seed
	if doc.Stress != nil && doc.Stress.SeedSet {
		stressSeed = doc.Stress.Seed
	}
	if doc.Stress != nil {
		doc.Stress.applyFleet(world, stressSeed)
	}
	sc, stressCount, err := doc.compileFaults(world, cfg.Slots, stressSeed)
	if err != nil {
		return nil, err
	}

	reg := obs.NewRegistry()
	simSeed := doc.Spec.Seed
	if simSeed == 0 {
		simSeed = cfg.Seed
	}
	factory, slotIndependent, err := doc.policy(reg, opt.Workers)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Name:        doc.Name,
		Scheme:      doc.schemeName(),
		Hotspots:    len(world.Hotspots),
		Videos:      world.NumVideos,
		Slots:       cfg.Slots,
		Seed:        simSeed,
		Delta:       doc.Spec.Delta,
		StressCount: stressCount,
	}

	// Slot assertions evaluate in-run on the sequential epilogue.
	slotResults := make([]SlotAssertResult, len(doc.SlotAsserts))
	for i := range slotResults {
		slotResults[i] = SlotAssertResult{SlotAssertion: doc.SlotAsserts[i], Pass: true, FirstSlot: -1}
	}
	sink := func(sm sim.SlotMetrics) error {
		violated := false
		for i := range slotResults {
			r := &slotResults[i]
			if !r.covers(sm.Slot) {
				continue
			}
			r.Checked++
			v, ok := r.evalSlot(sm)
			if !ok {
				r.Violations++
				r.Pass = false
				if r.FirstSlot < 0 {
					r.FirstSlot = sm.Slot
					r.FirstValue = v
				}
				violated = true
			}
		}
		if violated && doc.Spec.FailFast {
			return fmt.Errorf("%w", errFailFast)
		}
		return nil
	}

	opts := sim.Options{
		Seed:            simSeed,
		HotspotChurn:    doc.Spec.Churn,
		Faults:          sc,
		Registry:        reg,
		KeepSlotMetrics: true,
		SlotSink:        sink,
	}

	var m *sim.Metrics
	if slotIndependent && cfg.Slots > 1 {
		m, err = sim.RunParallel(world, tr, factory, opt.Workers, opts)
	} else {
		m, err = sim.Run(world, tr, factory(), opts)
	}
	rep.SlotResults = slotResults
	if err != nil {
		if errors.Is(err, errFailFast) {
			rep.Aborted = true
			rep.AbortedSlot = firstViolationSlot(slotResults)
			rep.Snapshot = reg.Snapshot(false)
			rep.Pass = false
			return rep, nil
		}
		return nil, fmt.Errorf("scenario: %w", err)
	}

	if tl, err := fault.Compile(world, tr.Slots, simSeed, sc); err == nil && tl != nil {
		rep.FaultCounts = tl.Counts()
	}

	rep.Metrics = m
	rep.Snapshot = reg.Snapshot(false)
	rep.Results = make([]AssertResult, len(doc.Asserts))
	pass := true
	for i, a := range doc.Asserts {
		r := AssertResult{Assertion: a}
		v, ok, err := a.evalRun(m, rep.Snapshot)
		if err != nil {
			r.Err = err.Error()
			r.Pass = false
		} else {
			r.Value = v
			r.Pass = ok
		}
		if !r.Pass {
			pass = false
		}
		rep.Results[i] = r
	}
	for i := range rep.SlotResults {
		if !rep.SlotResults[i].Pass {
			pass = false
		}
	}
	rep.Pass = pass
	return rep, nil
}

// firstViolationSlot returns the earliest first-violation slot.
func firstViolationSlot(rs []SlotAssertResult) int {
	first := -1
	for _, r := range rs {
		if r.FirstSlot >= 0 && (first < 0 || r.FirstSlot < first) {
			first = r.FirstSlot
		}
	}
	return first
}

// traceConfig folds the world section onto the default generator
// config.
func (doc *Doc) traceConfig() trace.Config {
	cfg := trace.DefaultConfig()
	cfg.Seed = doc.World.Seed
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if doc.World.Hotspots > 0 {
		cfg.NumHotspots = doc.World.Hotspots
	}
	if doc.World.Videos > 0 {
		cfg.NumVideos = doc.World.Videos
	}
	if doc.World.Users > 0 {
		cfg.NumUsers = doc.World.Users
	}
	if doc.World.Requests > 0 {
		cfg.NumRequests = doc.World.Requests
	}
	if doc.World.Slots > 0 {
		cfg.Slots = doc.World.Slots
	}
	return cfg
}

// applyCapacityOverrides applies the run section's world-level capacity
// overrides (fractions of the video set, like cdnsim -capacity/-cache).
func (doc *Doc) applyCapacityOverrides(world *trace.World) {
	for i := range world.Hotspots {
		if doc.Spec.CapacityFrac > 0 {
			world.Hotspots[i].ServiceCapacity = int64(float64(world.NumVideos)*doc.Spec.CapacityFrac + 0.5)
		}
		if doc.Spec.CacheFrac > 0 {
			world.Hotspots[i].CacheCapacity = int(float64(world.NumVideos)*doc.Spec.CacheFrac + 0.5)
		}
	}
}

// compileFaults lowers the explicit events plus the stress expansion
// onto a single fault.Scenario — the same structure PR-2 composes in Go
// — so there is exactly one injection path. θ events are handled by the
// policy layer, not the fault layer.
func (doc *Doc) compileFaults(world *trace.World, slots int, stressSeed int64) (*fault.Scenario, int, error) {
	sc := &fault.Scenario{Name: doc.Name}
	for i, ev := range doc.Events {
		switch ev.Kind {
		case EventChurn:
			sc.Churn = &fault.MarkovChurn{FailPerSlot: ev.Fail, RecoverPerSlot: ev.Recover}
		case EventOutage:
			sc.Outages = append(sc.Outages, fault.RegionalOutage{
				Center:    point(ev.X, ev.Y),
				RadiusKm:  ev.RadiusKm,
				StartSlot: ev.At,
				EndSlot:   ev.Until,
			})
		case EventDegrade:
			sc.Degradations = append(sc.Degradations, fault.CapacityDegradation{
				StartSlot:     ev.At,
				EndSlot:       ev.Until,
				Fraction:      ev.Fraction,
				ServiceFactor: ev.ServiceFactor,
				CacheFactor:   ev.CacheFactor,
			})
		case EventFlash:
			sc.FlashCrowds = append(sc.FlashCrowds, fault.FlashCrowd{
				StartSlot:  ev.At,
				EndSlot:    ev.Until,
				TopVideos:  ev.TopVideos,
				Multiplier: ev.Multiplier,
			})
		case EventStale:
			sc.Staleness = &fault.StaleReports{LagSlots: ev.Lag, DropFraction: ev.DropFraction}
		case EventTheta:
			// Policy-layer event; nothing to inject.
		default:
			return nil, 0, fmt.Errorf("scenario: events[%d]: unhandled kind %v", i, ev.Kind)
		}
	}
	stressCount := 0
	if doc.Stress != nil {
		stressCount = doc.Stress.expand(sc, world, slots, stressSeed)
	}
	if err := sc.Validate(); err != nil {
		return nil, 0, fmt.Errorf("scenario: compiled fault scenario invalid: %w", err)
	}
	return sc, stressCount, nil
}

// schemeName resolves the run scheme with its default.
func (doc *Doc) schemeName() string {
	if doc.Spec.Scheme == "" {
		return "rbcaer"
	}
	return doc.Spec.Scheme
}

// policy builds the scheduling-policy factory and reports whether slots
// may be scheduled concurrently (mirroring cmd/cdnsim's table).
func (doc *Doc) policy(reg *obs.Registry, workers int) (func() sim.Scheduler, bool, error) {
	radius := doc.Spec.RadiusKm
	if radius == 0 {
		radius = 1.5
	}
	var thetas []Event
	for _, ev := range doc.Events {
		if ev.Kind == EventTheta {
			thetas = append(thetas, ev)
		}
	}
	switch doc.schemeName() {
	case "rbcaer":
		params := core.DefaultParams()
		if doc.Spec.Delta {
			params.DeltaThreshold = core.DefaultDeltaThreshold
			if doc.Spec.DeltaThreshold > 0 {
				params.DeltaThreshold = doc.Spec.DeltaThreshold
			}
			params.FullSolveEvery = doc.Spec.DeltaEvery
			params.DeltaVerify = doc.Spec.DeltaVerify
		}
		params.Obs = reg
		if doc.Spec.Shards > 0 || doc.Spec.ShardCellKm > 0 {
			// Sharded mode: shard-level concurrency replaces
			// intra-round fan-out (theta events are rejected by
			// validate, so thetas is empty here).
			params.Workers = 1
			sp := shard.Params{
				Shards:  doc.Spec.Shards,
				CellKm:  doc.Spec.ShardCellKm,
				Local:   params,
				Workers: workers,
				Obs:     reg,
			}
			return func() sim.Scheduler { return shard.NewPolicy(sp) }, !doc.Spec.Delta, nil
		}
		params.Workers = workers
		if len(thetas) == 0 {
			return func() sim.Scheduler { return scheme.NewRBCAer(params) }, !doc.Spec.Delta, nil
		}
		return func() sim.Scheduler { return newThetaPolicy(params, thetas) }, true, nil
	case "nearest":
		return func() sim.Scheduler { return scheme.Nearest{} }, true, nil
	case "random":
		return func() sim.Scheduler { return scheme.Random{RadiusKm: radius} }, true, nil
	case "lp":
		return func() sim.Scheduler { return scheme.LPBased{} }, false, nil
	case "hier":
		return func() sim.Scheduler { return region.NewPolicy(0) }, false, nil
	case "p2c":
		return func() sim.Scheduler { return scheme.PowerOfTwo{RadiusKm: radius} }, true, nil
	case "reactive-lru":
		return func() sim.Scheduler { return scheme.NewReactiveLRU() }, false, nil
	case "reactive-lfu":
		return func() sim.Scheduler { return scheme.NewReactiveLFU() }, false, nil
	default:
		return nil, false, fmt.Errorf("scenario: unknown scheme %q", doc.Spec.Scheme)
	}
}

// thetaPolicy routes each slot to the RBCAer instance whose θ regime
// covers it: the base parameters before the first theta event, then
// each event's overrides from its slot onward. Every factory call
// builds fresh instances, so each sim worker owns its own regime set
// and slots stay independently schedulable.
type thetaPolicy struct {
	starts []int
	scheds []sim.Scheduler
}

func newThetaPolicy(base core.Params, events []Event) *thetaPolicy {
	p := &thetaPolicy{
		starts: []int{0},
		scheds: []sim.Scheduler{scheme.NewRBCAer(base)},
	}
	cur := base
	for _, ev := range events {
		if ev.Theta1 >= 0 {
			cur.Theta1 = ev.Theta1
		}
		if ev.Theta2 >= 0 {
			cur.Theta2 = ev.Theta2
		}
		if ev.DeltaD > 0 {
			cur.DeltaD = ev.DeltaD
		}
		p.starts = append(p.starts, ev.At)
		p.scheds = append(p.scheds, scheme.NewRBCAer(cur))
	}
	return p
}

// Name implements sim.Scheduler.
func (p *thetaPolicy) Name() string { return "RBCAer" }

// Schedule implements sim.Scheduler.
func (p *thetaPolicy) Schedule(ctx *sim.SlotContext) (*sim.Assignment, error) {
	pick := 0
	for i, start := range p.starts {
		if ctx.Slot >= start {
			pick = i
		}
	}
	return p.scheds[pick].Schedule(ctx)
}

// ---- report rendering ----------------------------------------------

// Text renders the deterministic pass/fail report.
func (r *Report) Text() string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}

// WriteText renders the report. No wall-clock quantity appears, so the
// rendering is byte-identical for equal runs at any worker count.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "scenario: %s\n", r.Name)
	deltaTag := ""
	if r.Delta {
		deltaTag = ", delta"
	}
	fmt.Fprintf(w, "world:    %d hotspots, %d videos, %d slots (seed %d)\n", r.Hotspots, r.Videos, r.Slots, r.Seed)
	fmt.Fprintf(w, "scheme:   %s%s\n", r.Scheme, deltaTag)
	if r.Serve {
		fmt.Fprintf(w, "serve:    %d frontends, fsync %s, %d crash(es); %d/%d plans byte-identical to offline\n",
			r.ServeInstances, r.ServeFsync, r.Crashes, r.PlansMatched, r.PlansMatched+r.PlansMismatched)
	} else {
		fmt.Fprintf(w, "faults:   churn-slots=%d outage-slots=%d degraded-slots=%d dropped-reports=%d stress-generated=%d\n",
			r.FaultCounts.ChurnSlots, r.FaultCounts.OutageSlots, r.FaultCounts.DegradedSlots,
			r.FaultCounts.DroppedReports, r.StressCount)
	}
	if r.Aborted {
		fmt.Fprintf(w, "\nrun aborted at slot %d: slot assertion violated (fail_fast)\n", r.AbortedSlot)
	}
	if r.Metrics != nil {
		m := r.Metrics
		fmt.Fprintf(w, "\nmetrics:\n")
		fmt.Fprintf(w, "  total_requests:        %d (flash-injected %d)\n", m.TotalRequests, m.FlashInjectedRequests)
		fmt.Fprintf(w, "  served:                %d hotspot, %d cdn (%d infeasible)\n", m.ServedByHotspot, m.ServedByCDN, m.Infeasible)
		fmt.Fprintf(w, "  hotspot_serving_ratio: %s\n", fnum(m.HotspotServingRatio))
		fmt.Fprintf(w, "  avg_access_distance:   %s km\n", fnum(m.AvgAccessDistanceKm))
		fmt.Fprintf(w, "  replication_cost:      %s (%d replicas)\n", fnum(m.ReplicationCost), m.Replicas)
		fmt.Fprintf(w, "  cdn_server_load:       %s\n", fnum(m.CDNServerLoad))
		fmt.Fprintf(w, "  degraded_rounds:       %d\n", m.DegradedRounds)
		fmt.Fprintf(w, "  stranded_requests:     %d\n", m.StrandedRequests)
		fmt.Fprintf(w, "  offline_hotspot_slots: %d\n", m.OfflineHotspotSlots)
	}
	if len(r.Results) > 0 {
		fmt.Fprintf(w, "\nassertions:\n")
		for _, res := range r.Results {
			switch {
			case res.Err != "":
				fmt.Fprintf(w, "  FAIL %-40s (error: %s)\n", res.Raw, res.Err)
			case res.Pass:
				fmt.Fprintf(w, "  PASS %-40s (value %s)\n", res.Raw, fnum(res.Value))
			default:
				fmt.Fprintf(w, "  FAIL %-40s (value %s)\n", res.Raw, fnum(res.Value))
			}
		}
	}
	if len(r.SlotResults) > 0 {
		fmt.Fprintf(w, "\nslot assertions:\n")
		for _, res := range r.SlotResults {
			if res.Pass {
				fmt.Fprintf(w, "  PASS %-40s (%s; %d slots checked)\n", res.Raw, res.window(), res.Checked)
			} else {
				fmt.Fprintf(w, "  FAIL %-40s (%s; %d of %d slots violated, first slot %d: %s)\n",
					res.Raw, res.window(), res.Violations, res.Checked, res.FirstSlot, fnum(res.FirstValue))
			}
		}
	}
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "\nresult: %s (%d assertions, %d slot assertions)\n",
		verdict, len(r.Results), len(r.SlotResults))
}

// fnum renders a float deterministically (shortest round-trip form).
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// point builds a geo point.
func point(x, y float64) geo.Point {
	return geo.Point{X: x, Y: y}
}
