package scenario

import (
	"strings"
	"testing"
)

// minDoc wraps an events/assert fragment into a parseable document.
func minDoc(body string) []byte {
	return []byte("name: t\n" + body)
}

func TestParseFullDocument(t *testing.T) {
	src := []byte(`name: full
description: exercises every section
world:
  seed: 5
  hotspots: 30
  videos: 500
  slots: 4
run:
  scheme: rbcaer
  churn: 0.1
  fail_fast: true
events:
  - at: slot 1
    action: regional_outage
    x: 2
    y: 3
    radius_km: 1.5
    for: 2
  - action: churn
    fail: 0.1
    recover: 0.5
stress:
  seed: 42
  outages:
    count: 2
    radius_km: [1, 2]
    start: [0, 2]
    duration: 1
assert:
  - StrandedRequests < 100
  - fault.cause.outage > 0
assert_slot:
  - degraded == false
  - expr: stranded < 50
    from: 1
    to: 3
`)
	doc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Name != "full" || doc.World.Hotspots != 30 || doc.World.Slots != 4 {
		t.Fatalf("doc header = %+v", doc)
	}
	if !doc.Spec.FailFast || doc.Spec.Churn != 0.1 {
		t.Fatalf("run spec = %+v", doc.Spec)
	}
	if len(doc.Events) != 2 || doc.Events[0].Kind != EventOutage || doc.Events[0].At != 1 || doc.Events[0].Until != 3 {
		t.Fatalf("events = %+v", doc.Events)
	}
	if doc.Stress == nil || !doc.Stress.SeedSet || doc.Stress.Seed != 42 || doc.Stress.Outages.Count != 2 {
		t.Fatalf("stress = %+v", doc.Stress)
	}
	if len(doc.Asserts) != 2 || doc.Asserts[1].Ident != "fault.cause.outage" {
		t.Fatalf("asserts = %+v", doc.Asserts)
	}
	if len(doc.SlotAsserts) != 2 {
		t.Fatalf("slot asserts = %+v", doc.SlotAsserts)
	}
	if w := doc.SlotAsserts[1]; w.From != 1 || w.To != 3 || w.Ident != "stranded" {
		t.Fatalf("windowed slot assert = %+v", w)
	}
	if !doc.SlotAsserts[0].IsBool || doc.SlotAsserts[0].BoolValue {
		t.Fatalf("degraded assert = %+v", doc.SlotAsserts[0])
	}
}

// TestParseErrors is the malformed-input table: every event family and
// assertion form has at least one rejection case, and each error names
// enough context to find the offending line.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"unknown top key", "bogus: 1\n", `unknown key "bogus"`},
		{"unknown world key", "world:\n  hotspot: 3\n", `unknown key "hotspot"`},
		{"bad world int", "world:\n  hotspots: many\n", "not an integer"},
		{"unknown scheme", "run:\n  scheme: dijkstra\n", `unknown run.scheme "dijkstra"`},
		{"churn out of range", "run:\n  churn: 1.5\n", "outside [0, 1]"},
		{"delta non-rbcaer", "run:\n  scheme: nearest\n  delta: true\n", "run.delta requires run.scheme rbcaer"},
		{"threshold without delta", "run:\n  delta_threshold: 0.5\n", "needs run.delta"},
		{"negative threshold", "run:\n  delta: true\n  delta_threshold: -1\n", "non-negative"},

		{"event no action", "events:\n  - at: 1\n    for: 2\n", `missing "action"`},
		{"event bad action", "events:\n  - action: meteor\n", "unknown action"},
		{"events not seq", "events:\n  action: churn\n", "must be a sequence"},
		{"outage no window", "events:\n  - action: regional_outage\n    radius_km: 1\n", `needs "for" (slots) or "until"`},
		{"outage both windows", "events:\n  - action: regional_outage\n    radius_km: 1\n    for: 2\n    until: 3\n", `"for" or "until", not both`},
		{"outage no radius", "events:\n  - action: regional_outage\n    for: 2\n", "radius_km >= 0"},
		{"bad at", "events:\n  - action: regional_outage\n    radius_km: 1\n    at: noon\n    for: 2\n", "not a slot number"},
		{"churn windowed", "events:\n  - action: churn\n    at: 3\n", "churn is whole-run"},
		{"stale windowed", "events:\n  - action: stale_reports\n    at: 2\n", "stale_reports is whole-run"},
		{"duplicate churn", "events:\n  - action: churn\n    fail: 0.1\n  - action: churn\n    fail: 0.2\n", "duplicate churn"},
		{"duplicate stale", "events:\n  - action: stale_reports\n    lag: 1\n  - action: stale_reports\n    lag: 2\n", "duplicate stale_reports"},
		{"event unknown key", "events:\n  - action: flash_crowd\n    top_videos: 2\n    multiplier: 3\n    for: 1\n    surprise: 1\n", `unknown key "surprise"`},
		{"sharding non-rbcaer", "run:\n  scheme: nearest\n  shards: 4\n", "sharding requires run.scheme rbcaer"},
		{"shards and cell", "run:\n  shards: 2\n  shard_cell_km: 3\n", "mutually exclusive"},
		{"negative shards", "run:\n  shards: -1\n", "negative"},
		{"negative shard cell", "run:\n  shard_cell_km: -2\n", "negative"},
		{"theta with shards", "run:\n  shards: 2\nevents:\n  - action: theta\n    at: 2\n", "incompatible with sharded"},

		{"theta non-rbcaer", "run:\n  scheme: lp\nevents:\n  - action: theta\n    at: 2\n    theta1: 1\n", "theta requires run.scheme rbcaer"},
		{"theta with delta", "run:\n  delta: true\nevents:\n  - action: theta\n    at: 2\n", "incompatible with delta"},
		{"theta order", "events:\n  - action: theta\n    at: 4\n  - action: theta\n    at: 2\n", "strictly increasing"},
		{"churn event and stress", "events:\n  - action: churn\n    fail: 0.1\nstress:\n  churn:\n    fail: 0.2\n", "keep one"},

		{"assert not seq", "assert: StrandedRequests < 5\n", "must be a sequence"},
		{"assert arity", "assert:\n  - StrandedRequests <\n", `must be "ident op value"`},
		{"assert bad op", "assert:\n  - StrandedRequests ~ 5\n", "unknown operator"},
		{"assert bad value", "assert:\n  - StrandedRequests < five\n", "not a number or bool"},
		{"assert unknown ident", "assert:\n  - Strandedness < 5\n", "unknown run metric"},
		{"assert run bool", "assert:\n  - StrandedRequests == true\n", "run-level assertions are numeric"},
		{"slot unknown ident", "assert_slot:\n  - latency < 5\n", "unknown slot metric"},
		{"slot bool ident", "assert_slot:\n  - stranded == true\n", `only "degraded" is boolean`},
		{"bool ordering op", "assert_slot:\n  - degraded < true\n", "only == and !="},
		{"slot window empty", "assert_slot:\n  - expr: stranded < 5\n    from: 3\n    to: 2\n", "bad slot window"},
		{"slot missing expr", "assert_slot:\n  - from: 1\n    to: 2\n", `missing "expr"`},
		{"stress unknown key", "stress:\n  quakes: 1\n", `unknown key "quakes"`},
		{"stress bad fleet weight", "stress:\n  fleet:\n    - name: a\n      weight: 0\n", "weight must be positive"},
		{"stress inverted range", "stress:\n  outages:\n    radius_km: [3, 1]\n", "hi < lo"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(minDoc(tc.body))
			if err == nil {
				t.Fatalf("Parse accepted malformed doc:\n%s", tc.body)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestParseMissingName(t *testing.T) {
	_, err := Parse([]byte("world:\n  seed: 1\n"))
	if err == nil || !strings.Contains(err.Error(), `missing required key "name"`) {
		t.Fatalf("error = %v, want missing-name rejection", err)
	}
}

func TestParseAtForms(t *testing.T) {
	for _, at := range []string{"3", `"slot 3"`} {
		src := minDoc("events:\n  - action: regional_outage\n    at: " + at + "\n    radius_km: 1\n    for: 2\n")
		doc, err := Parse(src)
		if err != nil {
			t.Fatalf("at: %s: %v", at, err)
		}
		if doc.Events[0].At != 3 || doc.Events[0].Until != 5 {
			t.Fatalf("at: %s: event = %+v", at, doc.Events[0])
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/scenario.yaml"); err == nil {
		t.Fatal("Load of missing file succeeded")
	}
}
