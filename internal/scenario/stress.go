package scenario

import (
	"fmt"
	"math/rand"

	"repro/internal/fault"
	"repro/internal/geo"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Range is a closed float interval [Lo, Hi] a stress parameter is drawn
// from. Lo == Hi pins the parameter.
type Range struct{ Lo, Hi float64 }

// IntRange is a closed integer interval [Lo, Hi].
type IntRange struct{ Lo, Hi int }

// sample draws uniformly from the range.
func (r Range) sample(rng *rand.Rand) float64 {
	if r.Hi <= r.Lo {
		return r.Lo
	}
	return r.Lo + rng.Float64()*(r.Hi-r.Lo)
}

// sample draws uniformly (inclusive) from the range.
func (r IntRange) sample(rng *rand.Rand) int {
	if r.Hi <= r.Lo {
		return r.Lo
	}
	return r.Lo + rng.Intn(r.Hi-r.Lo+1)
}

// Stress is the seeded stress-generation section: instead of spelling
// out each fault, the scenario gives weighted fleet templates and
// per-family parameter ranges, and the generator expands them into
// concrete fault.Scenario entries from independent stats.SplitRand
// streams. Equal seeds yield byte-identical expansions, so stress
// scenarios are exactly as reproducible as explicit ones.
type Stress struct {
	// Seed drives every stress stream (default: the world seed).
	Seed int64
	// SeedSet records whether the file pinned the seed.
	SeedSet bool

	// Fleet reshapes the generated world's capacities: each hotspot
	// draws a template by weight and takes its capacity fractions.
	Fleet []FleetTemplate

	Churn        *ChurnGen
	Outages      *OutageGen
	FlashCrowds  *FlashGen
	Degradations *DegradeGen
	Staleness    *StaleGen
}

// FleetTemplate is one weighted hotspot class.
type FleetTemplate struct {
	Name   string
	Weight float64
	// ServiceFrac sets service capacity to this fraction of the video
	// set (0 keeps the generated capacity).
	ServiceFrac float64
	// CacheFrac likewise for cache capacity.
	CacheFrac float64
}

// ChurnGen draws Markov churn parameters.
type ChurnGen struct {
	Fail    Range
	Recover Range
}

// OutageGen draws Count regional outages: centers uniform over the
// world bounds, radii/windows from the ranges.
type OutageGen struct {
	Count    int
	RadiusKm Range
	Start    IntRange
	Duration IntRange
}

// FlashGen draws Count flash crowds.
type FlashGen struct {
	Count      int
	TopVideos  IntRange
	Multiplier IntRange
	Start      IntRange
	Duration   IntRange
}

// DegradeGen draws Count capacity degradations.
type DegradeGen struct {
	Count         int
	Fraction      Range
	ServiceFactor Range
	CacheFactor   Range
	Start         IntRange
	Duration      IntRange
}

// StaleGen draws stale-report parameters.
type StaleGen struct {
	Lag          IntRange
	DropFraction Range
}

func (doc *Doc) decodeStress(n *node) error {
	d, err := newDec(n, "stress")
	if err != nil {
		return err
	}
	st := &Stress{}
	if c := d.get("seed"); c != nil {
		s, ok := d.scalarOf("seed", c)
		if ok {
			v, perr := parseInt64(s)
			if perr != nil {
				d.fail("line %d: stress.seed: %q is not an integer", c.line, s)
			} else {
				st.Seed, st.SeedSet = v, true
			}
		}
	}
	if f := d.get("fleet"); f != nil {
		if err := st.decodeFleet(f); err != nil {
			return err
		}
	}
	if c := d.get("churn"); c != nil {
		cd, err := newDec(c, "stress.churn")
		if err != nil {
			return err
		}
		st.Churn = &ChurnGen{
			Fail:    cd.floatRange("fail", Range{}),
			Recover: cd.floatRange("recover", Range{}),
		}
		if err := cd.finish(); err != nil {
			return err
		}
	}
	if c := d.get("outages"); c != nil {
		od, err := newDec(c, "stress.outages")
		if err != nil {
			return err
		}
		st.Outages = &OutageGen{
			Count:    od.integer("count", 1),
			RadiusKm: od.floatRange("radius_km", Range{}),
			Start:    od.intRange("start", IntRange{}),
			Duration: od.intRange("duration", IntRange{Lo: 1, Hi: 1}),
		}
		if err := od.finish(); err != nil {
			return err
		}
	}
	if c := d.get("flash_crowds"); c != nil {
		fd, err := newDec(c, "stress.flash_crowds")
		if err != nil {
			return err
		}
		st.FlashCrowds = &FlashGen{
			Count:      fd.integer("count", 1),
			TopVideos:  fd.intRange("top_videos", IntRange{Lo: 1, Hi: 1}),
			Multiplier: fd.intRange("multiplier", IntRange{Lo: 2, Hi: 2}),
			Start:      fd.intRange("start", IntRange{}),
			Duration:   fd.intRange("duration", IntRange{Lo: 1, Hi: 1}),
		}
		if err := fd.finish(); err != nil {
			return err
		}
	}
	if c := d.get("degradations"); c != nil {
		dd, err := newDec(c, "stress.degradations")
		if err != nil {
			return err
		}
		st.Degradations = &DegradeGen{
			Count:         dd.integer("count", 1),
			Fraction:      dd.floatRange("fraction", Range{Lo: 1, Hi: 1}),
			ServiceFactor: dd.floatRange("service_factor", Range{Lo: 1, Hi: 1}),
			CacheFactor:   dd.floatRange("cache_factor", Range{Lo: 1, Hi: 1}),
			Start:         dd.intRange("start", IntRange{}),
			Duration:      dd.intRange("duration", IntRange{Lo: 1, Hi: 1}),
		}
		if err := dd.finish(); err != nil {
			return err
		}
	}
	if c := d.get("stale_reports"); c != nil {
		sd, err := newDec(c, "stress.stale_reports")
		if err != nil {
			return err
		}
		st.Staleness = &StaleGen{
			Lag:          sd.intRange("lag", IntRange{}),
			DropFraction: sd.floatRange("drop_fraction", Range{}),
		}
		if err := sd.finish(); err != nil {
			return err
		}
	}
	if err := d.finish(); err != nil {
		return err
	}
	doc.Stress = st
	return nil
}

func (st *Stress) decodeFleet(n *node) error {
	if n.kind != seqNode {
		return fmt.Errorf("scenario: line %d: stress.fleet must be a sequence of templates", n.line)
	}
	for i, item := range n.items {
		ctx := fmt.Sprintf("stress.fleet[%d]", i)
		d, err := newDec(item, ctx)
		if err != nil {
			return err
		}
		t := FleetTemplate{
			Name:        d.str("name", fmt.Sprintf("template-%d", i)),
			Weight:      d.float("weight", 0),
			ServiceFrac: d.float("service_frac", 0),
			CacheFrac:   d.float("cache_frac", 0),
		}
		if t.Weight <= 0 {
			d.fail("line %d: %s: weight must be positive", item.line, ctx)
		}
		if t.ServiceFrac < 0 || t.CacheFrac < 0 {
			d.fail("line %d: %s: capacity fractions must be non-negative", item.line, ctx)
		}
		if err := d.finish(); err != nil {
			return err
		}
		st.Fleet = append(st.Fleet, t)
	}
	if len(st.Fleet) == 0 {
		return fmt.Errorf("scenario: line %d: stress.fleet must not be empty", n.line)
	}
	return nil
}

func parseInt64(s string) (int64, error) {
	var v int64
	_, err := fmt.Sscanf(s, "%d", &v)
	return v, err
}

// applyFleet reshapes the world's hotspot capacities from the weighted
// templates: one draw per hotspot, in hotspot order, from the
// "scenario/fleet" stream of the stress seed — equal seeds reshape
// identically.
func (st *Stress) applyFleet(world *trace.World, seed int64) {
	if len(st.Fleet) == 0 {
		return
	}
	var total float64
	for _, t := range st.Fleet {
		total += t.Weight
	}
	rng := stats.SplitRand(seed, "scenario/fleet")
	for h := range world.Hotspots {
		r := rng.Float64() * total
		pick := st.Fleet[len(st.Fleet)-1]
		for _, t := range st.Fleet {
			if r < t.Weight {
				pick = t
				break
			}
			r -= t.Weight
		}
		if pick.ServiceFrac > 0 {
			world.Hotspots[h].ServiceCapacity = int64(float64(world.NumVideos)*pick.ServiceFrac + 0.5)
		}
		if pick.CacheFrac > 0 {
			world.Hotspots[h].CacheCapacity = int(float64(world.NumVideos)*pick.CacheFrac + 0.5)
		}
	}
}

// expand draws the stress section's concrete fault entries and appends
// them to sc. Every family uses its own SplitRand stream with a fixed
// draw order, so equal (seed, world, slots) inputs yield byte-identical
// fault.Scenarios regardless of which other families are configured.
// It returns the number of generated entries.
func (st *Stress) expand(sc *fault.Scenario, world *trace.World, slots int, seed int64) int {
	n := 0
	if st.Churn != nil {
		rng := stats.SplitRand(seed, "scenario/stress/churn")
		sc.Churn = &fault.MarkovChurn{
			FailPerSlot:    st.Churn.Fail.sample(rng),
			RecoverPerSlot: st.Churn.Recover.sample(rng),
		}
		n++
	}
	if st.Outages != nil {
		rng := stats.SplitRand(seed, "scenario/stress/outage")
		for i := 0; i < st.Outages.Count; i++ {
			center := geo.Point{
				X: world.Bounds.MinX + rng.Float64()*world.Bounds.Width(),
				Y: world.Bounds.MinY + rng.Float64()*world.Bounds.Height(),
			}
			start := st.Outages.Start.sample(rng)
			sc.Outages = append(sc.Outages, fault.RegionalOutage{
				Center:    center,
				RadiusKm:  st.Outages.RadiusKm.sample(rng),
				StartSlot: start,
				EndSlot:   clampEnd(start+st.Outages.Duration.sample(rng), slots),
			})
			n++
		}
	}
	if st.Degradations != nil {
		rng := stats.SplitRand(seed, "scenario/stress/degrade")
		for i := 0; i < st.Degradations.Count; i++ {
			start := st.Degradations.Start.sample(rng)
			sc.Degradations = append(sc.Degradations, fault.CapacityDegradation{
				StartSlot:     start,
				EndSlot:       clampEnd(start+st.Degradations.Duration.sample(rng), slots),
				Fraction:      st.Degradations.Fraction.sample(rng),
				ServiceFactor: st.Degradations.ServiceFactor.sample(rng),
				CacheFactor:   st.Degradations.CacheFactor.sample(rng),
			})
			n++
		}
	}
	if st.FlashCrowds != nil {
		rng := stats.SplitRand(seed, "scenario/stress/flash")
		for i := 0; i < st.FlashCrowds.Count; i++ {
			start := st.FlashCrowds.Start.sample(rng)
			sc.FlashCrowds = append(sc.FlashCrowds, fault.FlashCrowd{
				StartSlot:  start,
				EndSlot:    clampEnd(start+st.FlashCrowds.Duration.sample(rng), slots),
				TopVideos:  st.FlashCrowds.TopVideos.sample(rng),
				Multiplier: st.FlashCrowds.Multiplier.sample(rng),
			})
			n++
		}
	}
	if st.Staleness != nil {
		rng := stats.SplitRand(seed, "scenario/stress/stale")
		sc.Staleness = &fault.StaleReports{
			LagSlots:     st.Staleness.Lag.sample(rng),
			DropFraction: st.Staleness.DropFraction.sample(rng),
		}
		n++
	}
	return n
}

// clampEnd bounds a generated window end to the run's slot count (the
// fault compiler clamps too; doing it here keeps reports honest about
// what was injected).
func clampEnd(end, slots int) int {
	if end > slots {
		return slots
	}
	return end
}
