package scenario

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/trace"
)

const stressDoc = `name: stress-det
world:
  seed: 3
  hotspots: 40
  videos: 600
  users: 500
  requests: 2000
  slots: 6
stress:
  seed: 77
  fleet:
    - name: strong
      weight: 1
      service_frac: 0.05
    - name: weak
      weight: 2
      service_frac: 0.01
      cache_frac: 0.01
  churn:
    fail: [0.05, 0.2]
    recover: [0.3, 0.8]
  outages:
    count: 3
    radius_km: [1, 4]
    start: [0, 4]
    duration: [1, 2]
  flash_crowds:
    count: 2
    top_videos: [2, 5]
    multiplier: [3, 6]
    start: [1, 3]
    duration: 1
  degradations:
    count: 2
    fraction: [0.2, 0.5]
    service_factor: [0.3, 0.7]
    start: [2, 4]
    duration: [1, 3]
  stale_reports:
    lag: [1, 2]
    drop_fraction: [0.1, 0.3]
`

func stressWorld(t *testing.T) *trace.World {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.Seed = 3
	cfg.NumHotspots = 40
	cfg.NumVideos = 600
	cfg.NumUsers = 500
	cfg.NumRequests = 2000
	cfg.Slots = 6
	world, _, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return world
}

// TestStressExpandDeterministic: equal (seed, world, slots) must expand
// to byte-identical fault scenarios — the DSL's reproducibility
// contract.
func TestStressExpandDeterministic(t *testing.T) {
	doc, err := Parse([]byte(stressDoc))
	if err != nil {
		t.Fatal(err)
	}
	world := stressWorld(t)
	expandOnce := func() (*fault.Scenario, int) {
		sc := &fault.Scenario{Name: "x"}
		n := doc.Stress.expand(sc, world, 6, doc.Stress.Seed)
		return sc, n
	}
	a, na := expandOnce()
	b, nb := expandOnce()
	if na != nb || na != 3+2+2+1+1 {
		t.Fatalf("generated counts differ or wrong: %d vs %d", na, nb)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("expansions differ:\n%+v\n%+v", a, b)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("expanded scenario invalid: %v", err)
	}
	if len(a.Outages) != 3 || len(a.FlashCrowds) != 2 || len(a.Degradations) != 2 {
		t.Fatalf("family counts = %d/%d/%d", len(a.Outages), len(a.FlashCrowds), len(a.Degradations))
	}
	if a.Churn == nil || a.Staleness == nil {
		t.Fatal("churn/staleness not generated")
	}
	for i, o := range a.Outages {
		if !world.Bounds.Contains(o.Center) {
			t.Fatalf("outage %d centre %v outside world bounds %v", i, o.Center, world.Bounds)
		}
		if o.EndSlot > 6 {
			t.Fatalf("outage %d end %d exceeds slot count", i, o.EndSlot)
		}
	}
}

// TestStressSeedChangesExpansion: a different seed must actually move
// the draws (guards against a stream accidentally ignoring the seed).
func TestStressSeedChangesExpansion(t *testing.T) {
	doc, err := Parse([]byte(stressDoc))
	if err != nil {
		t.Fatal(err)
	}
	world := stressWorld(t)
	a := &fault.Scenario{}
	b := &fault.Scenario{}
	doc.Stress.expand(a, world, 6, 77)
	doc.Stress.expand(b, world, 6, 78)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different stress seeds produced identical expansions")
	}
}

// TestApplyFleetDeterministic: fleet reshaping is one weighted draw per
// hotspot in order — equal seeds must reshape identically, and weak
// templates must actually appear.
func TestApplyFleetDeterministic(t *testing.T) {
	doc, err := Parse([]byte(stressDoc))
	if err != nil {
		t.Fatal(err)
	}
	w1 := stressWorld(t)
	w2 := stressWorld(t)
	doc.Stress.applyFleet(w1, 77)
	doc.Stress.applyFleet(w2, 77)
	if !reflect.DeepEqual(w1.Hotspots, w2.Hotspots) {
		t.Fatal("equal fleet seeds reshaped hotspots differently")
	}
	strong := int64(float64(w1.NumVideos)*0.05 + 0.5)
	weak := int64(float64(w1.NumVideos)*0.01 + 0.5)
	var sawStrong, sawWeak bool
	for _, h := range w1.Hotspots {
		switch h.ServiceCapacity {
		case strong:
			sawStrong = true
		case weak:
			sawWeak = true
		default:
			t.Fatalf("hotspot capacity %d matches no template (want %d or %d)", h.ServiceCapacity, strong, weak)
		}
	}
	if !sawStrong || !sawWeak {
		t.Fatalf("template mix degenerate: strong=%v weak=%v", sawStrong, sawWeak)
	}
}
