package scenario

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/scheme"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/trace"
)

// executeServe runs a serve-mode scenario: the trace is first scheduled
// offline (sim.Run, the reference), then driven slot by slot through a
// real WAL-backed multi-frontend serving tier over HTTP. At each crash
// event the tier is killed abruptly mid-slot — half the slot's requests
// accepted, no flush, no graceful drain — and restarted from the
// on-disk log. Every slot's online plan must be byte-identical to the
// offline one; the outcome is published as serve.* counters so
// run-level assertions can pin it.
func (doc *Doc) executeServe(opt ExecOptions) (*Report, error) {
	cfg := doc.traceConfig()
	world, tr, err := trace.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario: generating world: %w", err)
	}
	doc.applyCapacityOverrides(world)

	crash := make(map[int]bool)
	for i, ev := range doc.Events {
		if ev.At >= cfg.Slots {
			return nil, fmt.Errorf("scenario: events[%d]: crash.at %d outside the %d-slot run", i, ev.At, cfg.Slots)
		}
		crash[ev.At] = true
	}

	simSeed := doc.Spec.Seed
	if simSeed == 0 {
		simSeed = cfg.Seed
	}
	params := core.DefaultParams()
	offline := make(map[int]string)
	if _, err := sim.Run(world, tr, scheme.NewRBCAer(params), sim.Options{
		PlanSink: func(slot int, plan *core.Plan) {
			offline[slot] = hex.EncodeToString(plan.Canonical())
		},
	}); err != nil {
		return nil, fmt.Errorf("scenario: offline reference run: %w", err)
	}

	reg := obs.NewRegistry()
	crashes := reg.Counter("serve.crashes")
	matched := reg.Counter("serve.plans_match")
	mismatched := reg.Counter("serve.plans_mismatched")
	recovered := reg.Counter("serve.recovered_records")

	instances := doc.Spec.Instances
	if instances == 0 {
		instances = 2
	}
	fsync := doc.Spec.Fsync
	if fsync == "" {
		fsync = "always"
	}
	walDir, err := os.MkdirTemp("", "scenario-wal-")
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer os.RemoveAll(walDir)

	boot := func() (*server.Server, error) {
		srv, err := server.New(server.Config{
			World:           world,
			Params:          params,
			Instances:       instances,
			Registry:        obs.NewRegistry(),
			PlanHistory:     cfg.Slots + 1,
			QueueBound:      1 << 20,
			WALDir:          walDir,
			Fsync:           fsync,
			CheckpointEvery: doc.Spec.CheckpointEvery,
		})
		if err != nil {
			return nil, fmt.Errorf("scenario: serve tier: %w", err)
		}
		if err := srv.Start(); err != nil {
			return nil, fmt.Errorf("scenario: serve tier: %w", err)
		}
		return srv, nil
	}

	srv, err := boot()
	if err != nil {
		return nil, err
	}
	defer func() {
		if srv != nil {
			srv.Kill()
		}
	}()
	online := make(map[int]string)
	for slot, reqs := range tr.BySlot() {
		total := len(reqs)
		if crash[slot] {
			for i, r := range reqs[:len(reqs)/2] {
				if err := servePost(srv, i, r); err != nil {
					return nil, err
				}
			}
			srv.Kill()
			// Drop pooled conns to the dead tier (see serveAdvance's
			// client note): a stale keep-alive must not be replayed
			// against the restarted frontends' reused ports.
			http.DefaultClient.CloseIdleConnections()
			crashes.Inc()
			if srv, err = boot(); err != nil {
				return nil, fmt.Errorf("scenario: restart after crash at slot %d: %w", slot, err)
			}
			st := srv.WALState()
			if st == nil {
				return nil, fmt.Errorf("scenario: restart after crash at slot %d recovered no WAL state", slot)
			}
			if st.Slot != slot {
				return nil, fmt.Errorf("scenario: restart recovered slot %d, want %d", st.Slot, slot)
			}
			recovered.Add(int64(st.Records))
			reqs = reqs[len(reqs)/2:]
		}
		for i, r := range reqs {
			if err := servePost(srv, i, r); err != nil {
				return nil, err
			}
		}
		if err := serveAdvance(srv, total > 0, online); err != nil {
			return nil, err
		}
	}
	http.DefaultClient.CloseIdleConnections()
	if err := srv.Close(); err != nil {
		return nil, fmt.Errorf("scenario: serve tier shutdown: %w", err)
	}
	srv = nil

	for slot, want := range offline {
		if online[slot] == want {
			matched.Inc()
		} else {
			mismatched.Inc()
		}
	}
	for slot := range online {
		if _, ok := offline[slot]; !ok {
			mismatched.Inc()
		}
	}

	rep := &Report{
		Name:            doc.Name,
		Scheme:          doc.schemeName(),
		Hotspots:        len(world.Hotspots),
		Videos:          world.NumVideos,
		Slots:           cfg.Slots,
		Seed:            simSeed,
		Serve:           true,
		ServeInstances:  instances,
		ServeFsync:      fsync,
		Crashes:         int(crashes.Value()),
		PlansMatched:    int(matched.Value()),
		PlansMismatched: int(mismatched.Value()),
	}
	rep.Snapshot = reg.Snapshot(false)
	rep.Results = make([]AssertResult, len(doc.Asserts))
	pass := mismatched.Value() == 0 && len(online) == len(offline)
	for i, a := range doc.Asserts {
		r := AssertResult{Assertion: a}
		v, ok, err := a.evalRun(nil, rep.Snapshot)
		if err != nil {
			r.Err = err.Error()
			r.Pass = false
		} else {
			r.Value = v
			r.Pass = ok
		}
		if !r.Pass {
			pass = false
		}
		rep.Results[i] = r
	}
	rep.Pass = pass
	return rep, nil
}

// servePost posts one trace request by location to frontend i mod N,
// requiring a 202.
func servePost(srv *server.Server, i int, r trace.Request) error {
	body, err := json.Marshal(map[string]any{
		"user": int64(r.User), "video": int64(r.Video),
		"x": r.Location.X, "y": r.Location.Y,
	})
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	addr := srv.InstanceAddr(i % srv.NumInstances())
	resp, err := http.Post("http://"+addr+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("scenario: ingest: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("scenario: ingest status %d", resp.StatusCode)
	}
	return nil
}

// serveAdvance forces one slot boundary and records the published
// plan's canonical hex bytes into online. wantPlan marks slots that fed
// the scheduler demand and therefore must schedule.
func serveAdvance(srv *server.Server, wantPlan bool, online map[int]string) error {
	resp, err := http.Post("http://"+srv.Addr()+"/admin/advance", "application/json", nil)
	if err != nil {
		return fmt.Errorf("scenario: advance: %w", err)
	}
	defer resp.Body.Close()
	var adv struct {
		Slot      int  `json:"slot"`
		Scheduled bool `json:"scheduled"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&adv); err != nil {
		return fmt.Errorf("scenario: advance decode: %w", err)
	}
	if !adv.Scheduled {
		if wantPlan {
			return fmt.Errorf("scenario: slot %d did not schedule", adv.Slot)
		}
		return nil
	}
	for _, rec := range srv.Plans() {
		if rec.Slot == adv.Slot {
			online[adv.Slot] = rec.Canonical
		}
	}
	return nil
}
