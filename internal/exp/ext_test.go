package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestExtensionExperimentsRun(t *testing.T) {
	r := NewRunner(1, 0.05)
	for _, id := range ExtensionExperiments() {
		if id == "ext-hier" {
			continue // covered separately; it generates three worlds
		}
		t.Run(id, func(t *testing.T) {
			figs, err := r.Run(id)
			if err != nil {
				t.Fatalf("Run(%s): %v", id, err)
			}
			if len(figs) == 0 {
				t.Fatal("no figures")
			}
			var buf bytes.Buffer
			for _, fig := range figs {
				// Multi-figure experiments (resilience) emit one figure
				// per sub-scenario under an "<id>-<name>" ID.
				if !strings.HasPrefix(fig.ID, id) {
					t.Errorf("figure ID %q, want prefix %q", fig.ID, id)
				}
				if len(fig.Series) == 0 {
					t.Error("no series")
				}
				if err := fig.Render(&buf); err != nil {
					t.Fatalf("Render: %v", err)
				}
			}
		})
	}
}

func TestExtHierarchical(t *testing.T) {
	if testing.Short() {
		t.Skip("generates three worlds")
	}
	r := NewRunner(1, 0.05)
	fig, err := r.ExtHierarchical()
	if err != nil {
		t.Fatalf("ExtHierarchical: %v", err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("got %d series, want 4", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.X) != 3 {
			t.Errorf("%s has %d points, want 3 fleet sizes", s.Name, len(s.X))
		}
	}
}

func TestExtChurnMonotone(t *testing.T) {
	r := NewRunner(1, 0.05)
	fig, err := r.ExtChurn()
	if err != nil {
		t.Fatalf("ExtChurn: %v", err)
	}
	for _, s := range fig.Series {
		if len(s.Y) < 2 {
			t.Fatalf("%s too short", s.Name)
		}
		// Serving at max churn must be below serving with no churn.
		if s.Y[len(s.Y)-1] >= s.Y[0] {
			t.Errorf("%s: serving did not degrade under churn: %v", s.Name, s.Y)
		}
	}
}

func TestExtShardSweep(t *testing.T) {
	r := NewRunner(1, 0.05)
	fig, err := r.ExtShard()
	if err != nil {
		t.Fatalf("ExtShard: %v", err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("got %d series, want 4", len(fig.Series))
	}
	n := len(fig.Series[0].X)
	if n < 2 {
		t.Fatalf("sweep has %d shard counts, want at least the 1-shard and a multi-shard point", n)
	}
	for _, s := range fig.Series {
		if len(s.X) != n || len(s.Y) != n {
			t.Fatalf("%s has %d/%d points, want %d", s.Name, len(s.X), len(s.Y), n)
		}
	}
	// The coarsest cell yields a single shard, where no redirect can
	// cross a boundary: the communication cost must be exactly zero.
	if fig.Series[0].Name != "boundary-flow" {
		t.Fatalf("series[0] = %q, want boundary-flow", fig.Series[0].Name)
	}
	if fig.Series[0].X[0] != 1 || fig.Series[0].Y[0] != 0 {
		t.Errorf("1-shard point = (%v, %v), want (1, 0)", fig.Series[0].X[0], fig.Series[0].Y[0])
	}
}

func TestResilience(t *testing.T) {
	r := NewRunner(1, 0.05)
	figs, err := r.Resilience()
	if err != nil {
		t.Fatalf("Resilience: %v", err)
	}
	if len(figs) != 5 {
		t.Fatalf("got %d figures, want 5 failure families", len(figs))
	}
	byID := map[string]*Figure{}
	for _, fig := range figs {
		byID[fig.ID] = fig
		if len(fig.Series) != 3 {
			t.Errorf("%s has %d series, want RBCAer + 2 baselines", fig.ID, len(fig.Series))
		}
		for _, s := range fig.Series {
			if len(s.X) != 4 {
				t.Errorf("%s/%s has %d intensity levels, want 4", fig.ID, s.Name, len(s.X))
			}
		}
	}
	// The strongest outage blankets half the world's diagonal: every
	// scheme must lose serving ratio against its fault-free baseline.
	outage := byID["resilience-outage"]
	if outage == nil {
		t.Fatal("no resilience-outage figure")
	}
	for _, s := range outage.Series {
		if s.Y[len(s.Y)-1] >= s.Y[0] {
			t.Errorf("%s: serving did not degrade under a half-diagonal outage: %v", s.Name, s.Y)
		}
	}
}

func TestUnknownExtension(t *testing.T) {
	r := NewRunner(1, 0.05)
	if _, err := r.runExtension("ext-nope"); err == nil {
		t.Error("runExtension(unknown) succeeded")
	}
}
