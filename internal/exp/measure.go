package exp

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/similarity"
	"repro/internal/stats"
	"repro/internal/trace"
)

// cdfPointsPerSeries is how many points each CDF series is summarised
// to when rendered.
const cdfPointsPerSeries = 41

// maxCorrelationPairs caps how many nearby hotspot pairs the
// correlation and similarity analyses evaluate; beyond the cap a
// deterministic subsample is used.
const maxCorrelationPairs = 200000

// Fig2 reproduces the workload-distribution measurement (paper Fig. 2
// plus the Sec. II-A replication-cost observations) on the
// measurement-scale world.
func (r *Runner) Fig2() (*Figure, error) {
	world, tr, err := r.measureData()
	if err != nil {
		return nil, err
	}
	return WorkloadDistribution(world, tr, r.Seed)
}

// WorkloadDistribution computes the CDF of per-hotspot workload when
// requests are mapped to their nearest hotspot versus randomly within
// 1 km and 5 km (paper Fig. 2), with the Sec. II-A replication-cost
// comparison as notes.
func WorkloadDistribution(world *trace.World, tr *trace.Trace, seed int64) (*Figure, error) {
	index, err := world.Index()
	if err != nil {
		return nil, err
	}
	m := len(world.Hotspots)

	// Nearest hotspot per request, then per-hotspot neighbour lists for
	// the random mappings (requests are redirected from their
	// aggregation hotspot, as in the paper's formulation).
	nearest := make([]int, len(tr.Requests))
	for i, req := range tr.Requests {
		h, _, ok := index.Nearest(req.Location)
		if !ok {
			return nil, fmt.Errorf("exp: empty hotspot index")
		}
		nearest[i] = h
	}
	neighborList := func(radius float64) [][]int {
		out := make([][]int, m)
		for h := 0; h < m; h++ {
			nbrs := index.Within(world.Hotspots[h].Location, radius)
			ids := make([]int, 0, len(nbrs))
			for _, nb := range nbrs {
				ids = append(ids, nb.ID)
			}
			if len(ids) == 0 {
				ids = append(ids, h)
			}
			out[h] = ids
		}
		return out
	}

	fig := &Figure{
		ID:     "fig2",
		Title:  "Workload distribution of content hotspots",
		XLabel: "workload",
		YLabel: "CDF",
	}

	type mapping struct {
		name      string
		neighbors [][]int // nil means nearest
	}
	mappings := []mapping{
		{name: "Nearest"},
		{name: "Random(1km)", neighbors: neighborList(1.0)},
		{name: "Random(5km)", neighbors: neighborList(5.0)},
	}

	rng := stats.SplitRand(seed, "fig2-random")
	var nearestRepl int64
	for _, mp := range mappings {
		loads := make([]float64, m)
		distinct := make([]map[trace.VideoID]struct{}, m)
		for i := range distinct {
			distinct[i] = make(map[trace.VideoID]struct{})
		}
		for i, req := range tr.Requests {
			h := nearest[i]
			if mp.neighbors != nil {
				cands := mp.neighbors[h]
				h = cands[rng.Intn(len(cands))]
			}
			loads[h]++
			distinct[h][req.Video] = struct{}{}
		}
		var repl int64
		for _, dv := range distinct {
			repl += int64(len(dv))
		}
		ecdf, err := stats.NewECDF(loads)
		if err != nil {
			return nil, err
		}
		addCDF(fig, mp.name, ecdf)
		switch mp.name {
		case "Nearest":
			nearestRepl = repl
			med := ecdf.Quantile(0.5)
			p99 := ecdf.Quantile(0.99)
			ratio := math.Inf(1)
			if med > 0 {
				ratio = p99 / med
			}
			fig.Note("Nearest: median workload %.0f, 99th percentile %.0f (%.1fx median; paper reports 9x)",
				med, p99, ratio)
			if gini, err := stats.Gini(loads); err == nil {
				fig.Note("Nearest: workload Gini coefficient %.2f", gini)
			}
			// Verify the popularity skew the trace was generated with.
			videoCounts := make(map[trace.VideoID]float64)
			for _, req := range tr.Requests {
				videoCounts[req.Video]++
			}
			counts := make([]float64, 0, len(videoCounts))
			for _, c := range videoCounts {
				counts = append(counts, c)
			}
			if fit, err := stats.FitZipf(counts); err == nil {
				fig.Note("global video popularity fits Zipf alpha=%.2f (R^2=%.2f)", fit.Alpha, fit.R2)
			}
		default:
			extra := 100 * (float64(repl)/float64(nearestRepl) - 1)
			fig.Note("%s: content replication cost %+.1f%% vs Nearest (paper: +10%% at 1km, +23%% at 5km)",
				mp.name, extra)
		}
	}
	return fig, nil
}

// Fig3a reproduces the workload-correlation measurement (paper
// Fig. 3a) on the measurement-scale world.
func (r *Runner) Fig3a() (*Figure, error) {
	world, tr, err := r.measureData()
	if err != nil {
		return nil, err
	}
	return WorkloadCorrelation(world, tr, r.Seed)
}

// WorkloadCorrelation computes the CDF of Spearman correlation of
// per-slot workloads between hotspot pairs closer than 5 km under
// nearest routing (paper Fig. 3a).
func WorkloadCorrelation(world *trace.World, tr *trace.Trace, seed int64) (*Figure, error) {
	if tr.Slots < 2 {
		return nil, fmt.Errorf("exp: workload correlation needs >= 2 slots, trace has %d", tr.Slots)
	}
	index, err := world.Index()
	if err != nil {
		return nil, err
	}
	m := len(world.Hotspots)

	slotLoad := make([][]float64, m)
	for h := range slotLoad {
		slotLoad[h] = make([]float64, tr.Slots)
	}
	totals := make([]float64, m)
	for _, req := range tr.Requests {
		h, _, ok := index.Nearest(req.Location)
		if !ok {
			return nil, fmt.Errorf("exp: empty hotspot index")
		}
		slotLoad[h][req.Slot]++
		totals[h]++
	}

	pairs := index.Pairs(5.0)
	pairs = samplePairs(pairs, maxCorrelationPairs, seed)
	var corrs []float64
	for _, p := range pairs {
		if totals[p.A] == 0 || totals[p.B] == 0 {
			continue
		}
		rho, err := stats.Spearman(slotLoad[p.A], slotLoad[p.B])
		if err != nil || math.IsNaN(rho) {
			continue
		}
		corrs = append(corrs, rho)
	}
	if len(corrs) == 0 {
		return nil, fmt.Errorf("exp: no hotspot pairs within 5km produced a correlation")
	}
	ecdf, err := stats.NewECDF(corrs)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "fig3a",
		Title:  "Workload correlation between nearby hotspots (Spearman, 1h slots)",
		XLabel: "correlation",
		YLabel: "CDF",
	}
	addCDF(fig, "pairs<5km", ecdf)
	fig.Note("%d pairs; %.0f%% below 0.4 (paper reports ~70%%)", len(corrs), 100*ecdf.At(0.4))
	return fig, nil
}

// Fig3b reproduces the content-similarity measurement (paper Fig. 3b)
// on the measurement-scale world.
func (r *Runner) Fig3b() (*Figure, error) {
	world, tr, err := r.measureData()
	if err != nil {
		return nil, err
	}
	return ContentSimilarity(world, tr, r.Seed)
}

// ContentSimilarity computes CDFs of the Jaccard similarity of top-20%
// content sets between hotspot pairs closer than 5 km, for hotspot
// sample ratios 100%, 50%, 15%, and 3% (paper Fig. 3b).
func ContentSimilarity(world *trace.World, tr *trace.Trace, seed int64) (*Figure, error) {
	fig := &Figure{
		ID:     "fig3b",
		Title:  "Content similarity coefficient between nearby hotspots (top-20% sets)",
		XLabel: "jaccard",
		YLabel: "CDF",
	}
	ratios := []struct {
		name  string
		ratio float64
	}{
		{"Original", 1.0},
		{"Sample=50%", 0.50},
		{"Sample=15%", 0.15},
		{"Sample=3%", 0.03},
	}
	for _, rt := range ratios {
		if n := int(float64(len(world.Hotspots))*rt.ratio + 0.5); n < 2 {
			fig.Note("%s: skipped (%d hotspots sampled, need >= 2)", rt.name, n)
			continue
		}
		sims, n, err := contentSimilarities(world, tr, rt.ratio, seed)
		if err != nil {
			return nil, fmt.Errorf("exp: similarity at ratio %v: %w", rt.ratio, err)
		}
		if len(sims) == 0 {
			fig.Note("%s: no pairs within 5km", rt.name)
			continue
		}
		ecdf, err := stats.NewECDF(sims)
		if err != nil {
			return nil, err
		}
		addCDF(fig, rt.name, ecdf)
		fig.Note("%s: %d hotspots, median similarity %.2f, p10-p90 %.2f-%.2f",
			rt.name, n, ecdf.Quantile(0.5), ecdf.Quantile(0.1), ecdf.Quantile(0.9))
	}
	return fig, nil
}

// contentSimilarities samples ratio of the world's hotspots, remaps the
// trace to the sampled deployment, and returns the Jaccard similarity
// of top-20% content sets for sampled-hotspot pairs within 5 km.
func contentSimilarities(world *trace.World, tr *trace.Trace, ratio float64, seed int64) ([]float64, int, error) {
	m := len(world.Hotspots)
	n := int(float64(m)*ratio + 0.5)
	if n < 2 {
		return nil, 0, fmt.Errorf("exp: sample ratio %v leaves %d hotspots", ratio, n)
	}
	rng := stats.SplitRand(seed, fmt.Sprintf("fig3b-%v", ratio))
	perm := rng.Perm(m)[:n]

	grid, err := geo.NewGrid(world.Bounds, math.Max(0.05, math.Sqrt(world.Bounds.Area()/float64(n))))
	if err != nil {
		return nil, 0, err
	}
	for _, h := range perm {
		grid.Insert(h, world.Hotspots[h].Location)
	}

	demand := make(map[int]map[int]int64, n)
	for _, req := range tr.Requests {
		h, _, ok := grid.Nearest(req.Location)
		if !ok {
			return nil, 0, fmt.Errorf("exp: empty sampled index")
		}
		if demand[h] == nil {
			demand[h] = make(map[int]int64)
		}
		demand[h][int(req.Video)]++
	}

	sets := make(map[int]similarity.Set, len(demand))
	for h, counts := range demand {
		set, err := similarity.TopFraction(counts, 0.20)
		if err != nil {
			return nil, 0, err
		}
		sets[h] = set
	}

	pairs := grid.Pairs(5.0)
	pairs = samplePairs(pairs, maxCorrelationPairs, seed)
	var sims []float64
	for _, p := range pairs {
		sa, okA := sets[p.A]
		sb, okB := sets[p.B]
		if !okA || !okB || sa.Len() == 0 || sb.Len() == 0 {
			continue // hotspots with no demand have no signature
		}
		sims = append(sims, similarity.Jaccard(sa, sb))
	}
	return sims, n, nil
}

// addCDF appends an ECDF summary as a figure series.
func addCDF(fig *Figure, name string, ecdf *stats.ECDF) {
	pts := ecdf.Points(cdfPointsPerSeries)
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = p.X
		ys[i] = p.P
	}
	fig.AddSeries(name, xs, ys)
}

// samplePairs deterministically subsamples pairs beyond the limit.
func samplePairs(pairs []geo.Pair, limit int, seed int64) []geo.Pair {
	if len(pairs) <= limit {
		return pairs
	}
	rng := stats.SplitRand(seed, "pair-sample")
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	return pairs[:limit]
}
