package exp

import (
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/geo"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/trace"
)

// resilienceFamily is one failure mode swept over increasing intensity.
type resilienceFamily struct {
	name   string
	title  string
	xlabel string
	// levels are the x-axis intensity values; levels[0] must be the
	// fault-free baseline.
	levels []float64
	// scenario builds the fault scenario for level index li (nil for
	// the baseline).
	scenario func(li int) *fault.Scenario
}

// Resilience sweeps RBCAer and the baselines across five failure modes
// at increasing intensity: Markov session churn, geographically
// correlated regional outages, capacity degradation, flash-crowd
// demand spikes, and stale/partial load reports. Each family yields
// one figure (resilience-<name>) with the per-scheme serving ratio
// over intensity; the notes record the degraded-mode counters so the
// graceful-degradation machinery is visible in the output.
func (r *Runner) Resilience() ([]*Figure, error) {
	cfg := r.evalConfig()
	// Multi-slot replay so windows, sessions, and report lag have room
	// to act; per-slot capacity shrinks with the per-slot volume.
	cfg.Slots = 6
	cfg.NumRequests *= 2
	cfg.ServiceCapacityFrac /= 2
	world, tr, err := trace.Generate(cfg)
	if err != nil {
		return nil, err
	}
	center := geo.Point{
		X: (world.Bounds.MinX + world.Bounds.MaxX) / 2,
		Y: (world.Bounds.MinY + world.Bounds.MaxY) / 2,
	}
	diag := math.Hypot(world.Bounds.Width(), world.Bounds.Height())

	families := []resilienceFamily{
		{
			name:   "churn",
			title:  "Markov session churn (recover 0.4/slot)",
			xlabel: "fail probability per slot",
			levels: []float64{0, 0.05, 0.15, 0.3},
			scenario: func(li int) *fault.Scenario {
				if li == 0 {
					return nil
				}
				return &fault.Scenario{
					Name:  "churn",
					Churn: &fault.MarkovChurn{FailPerSlot: []float64{0, 0.05, 0.15, 0.3}[li], RecoverPerSlot: 0.4},
				}
			},
		},
		{
			name:   "outage",
			title:  "Correlated regional outage (slots 2-3)",
			xlabel: "outage radius (fraction of world diagonal)",
			levels: []float64{0, 0.1, 0.25, 0.5},
			scenario: func(li int) *fault.Scenario {
				if li == 0 {
					return nil
				}
				return &fault.Scenario{
					Name: "outage",
					Outages: []fault.RegionalOutage{
						{Center: center, RadiusKm: []float64{0, 0.1, 0.25, 0.5}[li] * diag, StartSlot: 2, EndSlot: 4},
					},
				}
			},
		},
		{
			name:   "degrade",
			title:  "Capacity degradation (60% of fleet, slots 1-4)",
			xlabel: "remaining capacity factor",
			levels: []float64{1, 0.7, 0.4, 0.2},
			scenario: func(li int) *fault.Scenario {
				if li == 0 {
					return nil
				}
				f := []float64{1, 0.7, 0.4, 0.2}[li]
				return &fault.Scenario{
					Name: "degrade",
					Degradations: []fault.CapacityDegradation{
						{StartSlot: 1, EndSlot: 5, Fraction: 0.6, ServiceFactor: f, CacheFactor: f},
					},
				}
			},
		},
		{
			name:   "flash",
			title:  "Flash crowds on the 5 hottest videos (slots 1-4)",
			xlabel: "demand multiplier",
			levels: []float64{1, 2, 4, 8},
			scenario: func(li int) *fault.Scenario {
				if li == 0 {
					return nil
				}
				return &fault.Scenario{
					Name: "flash",
					FlashCrowds: []fault.FlashCrowd{
						{StartSlot: 1, EndSlot: 5, TopVideos: 5, Multiplier: []int{1, 2, 4, 8}[li]},
					},
				}
			},
		},
		{
			name:   "stale",
			title:  "Stale and partial load reports",
			xlabel: "report lag (slots; drop fraction = 0.15 x lag)",
			levels: []float64{0, 1, 2, 3},
			scenario: func(li int) *fault.Scenario {
				if li == 0 {
					return nil
				}
				return &fault.Scenario{
					Name:      "stale",
					Staleness: &fault.StaleReports{LagSlots: li, DropFraction: 0.15 * float64(li)},
				}
			},
		},
	}

	policies := []struct {
		make func() sim.Scheduler
	}{
		{func() sim.Scheduler { return scheme.NewRBCAer(r.coreParams()) }},
		{func() sim.Scheduler { return scheme.Nearest{} }},
		{func() sim.Scheduler { return scheme.Random{RadiusKm: 1.5} }},
	}

	var figs []*Figure
	for _, fam := range families {
		fig := &Figure{
			ID:     "resilience-" + fam.name,
			Title:  "Serving ratio under failures: " + fam.title,
			XLabel: fam.xlabel,
			YLabel: "serving ratio",
		}
		names := make([]string, 0, len(policies))
		serving := make(map[string][]float64)
		var worst *sim.Metrics // RBCAer at the highest intensity
		for li := range fam.levels {
			opts := r.simOpts()
			opts.Faults = fam.scenario(li)
			for _, pol := range policies {
				m, err := r.runPolicy(world, tr, pol.make, true, opts)
				if err != nil {
					return nil, fmt.Errorf("exp: resilience-%s %s at level %v: %w",
						fam.name, pol.make().Name(), fam.levels[li], err)
				}
				if _, ok := serving[m.Scheme]; !ok {
					names = append(names, m.Scheme)
				}
				serving[m.Scheme] = append(serving[m.Scheme], m.HotspotServingRatio)
				if m.Scheme == "RBCAer" && li == len(fam.levels)-1 {
					worst = m
				}
			}
		}
		for _, name := range names {
			fig.AddSeries(name, fam.levels, serving[name])
		}
		if rb := serving["RBCAer"]; len(rb) == len(fam.levels) && rb[0] > 0 {
			last := len(rb) - 1
			fig.Note("RBCAer keeps %.0f%% of its fault-free serving ratio at the highest intensity",
				100*rb[last]/rb[0])
		}
		if worst != nil {
			var faultSlots int64
			for _, n := range worst.FaultOutageSlots {
				faultSlots += n
			}
			fig.Note("RBCAer at max intensity: %d degraded rounds, %d stranded requests, %d CDN-fallback serves, %d offline hotspot-slots (%d fault-attributed), %d flash-injected requests",
				worst.DegradedRounds, worst.StrandedRequests, worst.FallbackServedByCDN,
				worst.OfflineHotspotSlots, faultSlots, worst.FlashInjectedRequests)
		}
		figs = append(figs, fig)
	}
	return figs, nil
}
