package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteCSV emits the figure as CSV: one x column plus one column per
// series (blank cells where a series has no point on the union grid),
// preceded by comment lines (#) carrying the title and notes. The
// format round-trips the exact data behind every reproduced figure for
// external plotting.
func (f *Figure) WriteCSV(w io.Writer) error {
	for _, line := range append([]string{f.Title}, f.Notes...) {
		if _, err := fmt.Fprintf(w, "# %s\n", line); err != nil {
			return err
		}
	}

	xset := make(map[float64]struct{})
	for _, s := range f.Series {
		for _, x := range s.X {
			xset[x] = struct{}{}
		}
	}
	grid := make([]float64, 0, len(xset))
	for x := range xset {
		grid = append(grid, x)
	}
	sort.Float64s(grid)

	cw := csv.NewWriter(w)
	header := append([]string{f.XLabel}, seriesNames(f)...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, x := range grid {
		row[0] = strconv.FormatFloat(x, 'g', -1, 64)
		for si, s := range f.Series {
			row[si+1] = ""
			for i, sx := range s.X {
				if sx == x {
					row[si+1] = strconv.FormatFloat(s.Y[i], 'g', -1, 64)
					break
				}
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func seriesNames(f *Figure) []string {
	out := make([]string, len(f.Series))
	for i, s := range f.Series {
		out[i] = s.Name
	}
	return out
}
