package exp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/trace"
)

// testRunner uses a tiny scale so every experiment finishes quickly.
func testRunner() *Runner { return NewRunner(1, 0.05) }

func TestNewRunnerClampsScale(t *testing.T) {
	if r := NewRunner(1, 0); r.Scale != 1 {
		t.Errorf("scale 0 → %v, want clamp to 1", r.Scale)
	}
	if r := NewRunner(1, 2); r.Scale != 1 {
		t.Errorf("scale 2 → %v, want clamp to 1", r.Scale)
	}
	if r := NewRunner(1, 0.5); r.Scale != 0.5 {
		t.Errorf("scale 0.5 → %v", r.Scale)
	}
}

func TestScaleConfigPreservesLoadRatio(t *testing.T) {
	base := trace.EvalConfig()
	scaled := scaleConfig(base, 0.1, 7)
	if err := scaled.Validate(); err != nil {
		t.Fatalf("scaled config invalid: %v", err)
	}
	if scaled.Seed != 7 {
		t.Errorf("seed = %d, want 7", scaled.Seed)
	}
	baseRatio := float64(base.NumRequests) /
		(float64(base.NumHotspots) * float64(base.NumVideos) * base.ServiceCapacityFrac)
	scaledRatio := float64(scaled.NumRequests) /
		(float64(scaled.NumHotspots) * float64(scaled.NumVideos) * scaled.ServiceCapacityFrac)
	if rel := scaledRatio/baseRatio - 1; rel > 0.05 || rel < -0.05 {
		t.Errorf("load ratio drifted by %.1f%% under scaling", 100*rel)
	}
	// Scale 1 returns the config unchanged (apart from the seed).
	same := scaleConfig(base, 1, 0)
	if same.NumRequests != base.NumRequests || same.Bounds != base.Bounds {
		t.Error("scale 1 modified the config")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := testRunner().Run("fig42"); err == nil {
		t.Error("Run(unknown) succeeded")
	}
}

func TestExperimentsListMatchesRun(t *testing.T) {
	r := testRunner()
	for _, id := range Experiments() {
		figs, err := r.Run(id)
		if err != nil {
			t.Fatalf("Run(%s): %v", id, err)
		}
		if len(figs) == 0 {
			t.Fatalf("Run(%s) produced no figures", id)
		}
		for _, fig := range figs {
			if fig.ID == "" || fig.Title == "" {
				t.Errorf("%s: figure missing metadata: %+v", id, fig)
			}
			if len(fig.Series) == 0 {
				t.Errorf("%s/%s: no series", id, fig.ID)
			}
			for _, s := range fig.Series {
				if len(s.X) != len(s.Y) {
					t.Errorf("%s/%s/%s: x/y length mismatch", id, fig.ID, s.Name)
				}
				if len(s.X) == 0 {
					t.Errorf("%s/%s/%s: empty series", id, fig.ID, s.Name)
				}
			}
		}
	}
}

func TestFigureCounts(t *testing.T) {
	r := testRunner()
	figs6, err := r.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs6) != 4 {
		t.Fatalf("Fig6 produced %d figures, want 4 (a-d)", len(figs6))
	}
	wantIDs := []string{"fig6a", "fig6b", "fig6c", "fig6d"}
	for i, fig := range figs6 {
		if fig.ID != wantIDs[i] {
			t.Errorf("figure %d ID = %s, want %s", i, fig.ID, wantIDs[i])
		}
		if len(fig.Series) != 3 {
			t.Errorf("%s has %d series, want 3 schemes", fig.ID, len(fig.Series))
		}
		for _, s := range fig.Series {
			if len(s.X) != 6 {
				t.Errorf("%s/%s has %d points, want 6 capacities", fig.ID, s.Name, len(s.X))
			}
		}
	}
}

func TestFig2SeriesNames(t *testing.T) {
	fig, err := testRunner().Fig2()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"Nearest": true, "Random(1km)": true, "Random(5km)": true}
	for _, s := range fig.Series {
		delete(want, s.Name)
		// CDF values must be monotone in [0, 1].
		prev := 0.0
		for i, p := range s.Y {
			if p < prev-1e-9 || p < 0 || p > 1 {
				t.Fatalf("%s: CDF not monotone at %d", s.Name, i)
			}
			prev = p
		}
	}
	if len(want) != 0 {
		t.Errorf("missing series: %v", want)
	}
	if len(fig.Notes) < 3 {
		t.Errorf("Fig2 notes = %v, want the median/p99 and replication comparisons", fig.Notes)
	}
}

func TestFig9Fractions(t *testing.T) {
	fig, err := testRunner().Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		prev := -1.0
		for i, y := range s.Y {
			if y < prev-1e-9 {
				t.Fatalf("%s not monotone at index %d", s.Name, i)
			}
			if y < 0 || y > 1+1e-9 {
				t.Fatalf("%s value %v outside [0, 1]", s.Name, y)
			}
			prev = y
		}
	}
}

func TestFigureRender(t *testing.T) {
	fig := &Figure{ID: "test", Title: "A Test", XLabel: "x", YLabel: "y"}
	fig.AddSeries("alpha", []float64{1, 2}, []float64{0.5, 1})
	fig.AddSeries("beta", []float64{2, 3}, []float64{0.25, 0.75})
	fig.Note("hello %d", 42)
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"== test: A Test ==", "alpha", "beta", "hello 42", "0.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
	// Union grid: x=1 row has a blank beta cell, x=3 a blank alpha cell.
	lines := strings.Split(out, "\n")
	if len(lines) < 5 {
		t.Fatalf("Render produced too few lines:\n%s", out)
	}
}

func TestTrimFloat(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{1, "1"},
		{0.5, "0.5"},
		{0.25, "0.25"},
		{1.23456, "1.2346"},
		{100000, "100000"},
	}
	for _, tt := range tests {
		if got := trimFloat(tt.in); got != tt.want {
			t.Errorf("trimFloat(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestRunnerCachesWorlds(t *testing.T) {
	r := testRunner()
	w1, t1, err := r.evalData()
	if err != nil {
		t.Fatal(err)
	}
	w2, t2, err := r.evalData()
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 || t1 != t2 {
		t.Error("evalData() did not cache")
	}
}

func TestWithCapacities(t *testing.T) {
	cfg := scaleConfig(trace.EvalConfig(), 0.05, 1)
	world, _, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orig0 := world.Hotspots[0]
	mod := withCapacities(world, 0.10, 0)
	wantSvc := int64(float64(world.NumVideos)*0.10 + 0.5)
	if mod.Hotspots[0].ServiceCapacity != wantSvc {
		t.Errorf("capacity = %d, want %d", mod.Hotspots[0].ServiceCapacity, wantSvc)
	}
	if mod.Hotspots[0].CacheCapacity != orig0.CacheCapacity {
		t.Error("cache changed although frac was 0")
	}
	if world.Hotspots[0] != orig0 {
		t.Error("withCapacities mutated the base world")
	}
}

func TestFigureWriteCSV(t *testing.T) {
	fig := &Figure{ID: "csvtest", Title: "CSV Test", XLabel: "x", YLabel: "y"}
	fig.AddSeries("a", []float64{1, 2}, []float64{0.5, 1.5})
	fig.AddSeries("b", []float64{2, 3}, []float64{7, 8})
	fig.Note("a note")
	var buf bytes.Buffer
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"# CSV Test", "# a note", "x,a,b", "1,0.5,", "2,1.5,7", "3,,8"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}
