// Package exp is the benchmark harness that regenerates every table
// and figure of the paper's evaluation (Sec. II measurement figures 2,
// 3a, 3b; Sec. V figures 5, 6a-d, 7a-d, 8, 9), plus the ablation
// studies listed in DESIGN.md. Each experiment returns a Figure — a set
// of named numeric series with rendering helpers — so the cmd tools,
// the Go benchmarks, and EXPERIMENTS.md all share one source of truth.
package exp

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Series is one named line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is the data behind one paper figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Notes carries headline observations (e.g. "99th/median = 9.1x").
	Notes []string
}

// AddSeries appends a series, copying the slices.
func (f *Figure) AddSeries(name string, x, y []float64) {
	xs := make([]float64, len(x))
	ys := make([]float64, len(y))
	copy(xs, x)
	copy(ys, y)
	f.Series = append(f.Series, Series{Name: name, X: xs, Y: ys})
}

// Note appends a formatted observation.
func (f *Figure) Note(format string, args ...interface{}) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// Render writes the figure as an aligned text table: one x column and
// one column per series. Series with differing x grids are rendered on
// the union grid with blanks for missing points.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title); err != nil {
		return err
	}
	// Union x grid.
	xset := make(map[float64]struct{})
	for _, s := range f.Series {
		for _, x := range s.X {
			xset[x] = struct{}{}
		}
	}
	grid := make([]float64, 0, len(xset))
	for x := range xset {
		grid = append(grid, x)
	}
	sort.Float64s(grid)

	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for _, x := range grid {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = trimFloat(s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	if err := writeAligned(w, rows); err != nil {
		return err
	}
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", v), "0"), ".")
}

func writeAligned(w io.Writer, rows [][]string) error {
	if len(rows) == 0 {
		return nil
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for c, cell := range row {
			if c < len(widths) && len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for c, cell := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[c], cell)
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " ")); err != nil {
			return err
		}
	}
	return nil
}

// Runner executes the paper's experiments. Scale (in (0, 1]) shrinks
// the worlds proportionally so tests and quick runs stay fast; Scale=1
// reproduces the paper-scale setups.
type Runner struct {
	Seed  int64
	Scale float64
	// Workers bounds the experiments' scheduling parallelism: it is
	// forwarded to core.Params.Workers for every RBCAer instance, and
	// per-slot-independent policies on multi-slot traces schedule their
	// timeslots concurrently on this many goroutines (sim.RunParallel).
	// 0 selects runtime.GOMAXPROCS(0); 1 forces serial runs. Results
	// are identical for every value.
	Workers int
	// Obs, when set, receives every simulation's counters and the
	// cluster/balance/replicate/simulate phase timers across the
	// runner's experiments (RBCAer rounds publish their core.* counters
	// to it too).
	Obs *obs.Registry
	// Tracer, when set, records round and slot events from every
	// simulation the experiments run.
	Tracer *obs.Tracer

	evalWorld *trace.World
	evalTrace *trace.Trace
	measWorld *trace.World
	measTrace *trace.Trace
}

// coreParams returns the paper's default RBCAer parameters with the
// runner's parallelism and observability applied.
func (r *Runner) coreParams() core.Params {
	p := core.DefaultParams()
	p.Workers = r.Workers
	p.Obs = r.Obs
	p.RecordEvents = r.Tracer != nil
	return p
}

// simOpts returns the runner's base simulation options: its seed plus
// the shared observability backends.
func (r *Runner) simOpts() sim.Options {
	return sim.Options{Seed: r.Seed, Registry: r.Obs, Tracer: r.Tracer}
}

// runPolicy replays the trace under one policy instance from the
// factory. Per-slot-independent policies on multi-slot traces schedule
// their timeslots concurrently on the runner's workers (each worker
// gets its own instance); stateful policies must pass
// slotIndependent=false to keep the sequential slot order they depend
// on. Either path yields identical metrics for such policies.
func (r *Runner) runPolicy(world *trace.World, tr *trace.Trace, newPolicy func() sim.Scheduler, slotIndependent bool, opts sim.Options) (*sim.Metrics, error) {
	if slotIndependent && tr.Slots > 1 {
		return sim.RunParallel(world, tr, newPolicy, r.Workers, opts)
	}
	return sim.Run(world, tr, newPolicy(), opts)
}

// evalData generates (once) and returns the Sec. V world and trace.
func (r *Runner) evalData() (*trace.World, *trace.Trace, error) {
	if r.evalWorld == nil {
		world, tr, err := trace.Generate(r.evalConfig())
		if err != nil {
			return nil, nil, fmt.Errorf("exp: generating evaluation world: %w", err)
		}
		r.evalWorld, r.evalTrace = world, tr
	}
	return r.evalWorld, r.evalTrace, nil
}

// measureData generates (once) and returns the Sec. II world and trace.
func (r *Runner) measureData() (*trace.World, *trace.Trace, error) {
	if r.measWorld == nil {
		world, tr, err := trace.Generate(r.measurementConfig())
		if err != nil {
			return nil, nil, fmt.Errorf("exp: generating measurement world: %w", err)
		}
		r.measWorld, r.measTrace = world, tr
	}
	return r.measWorld, r.measTrace, nil
}

// NewRunner returns a runner at the given scale (clamped into (0, 1]).
func NewRunner(seed int64, scale float64) *Runner {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	return &Runner{Seed: seed, Scale: scale}
}

// evalConfig returns the Sec. V configuration scaled by r.Scale.
func (r *Runner) evalConfig() trace.Config {
	return scaleConfig(trace.EvalConfig(), r.Scale, r.Seed)
}

// measurementConfig returns the Sec. II configuration scaled by
// r.Scale.
func (r *Runner) measurementConfig() trace.Config {
	return scaleConfig(trace.MeasurementConfig(), r.Scale, r.Seed)
}

// scaleConfig shrinks a configuration's population counts by s, keeping
// densities comparable by also shrinking the region area by s (linear
// dimensions by sqrt(s)).
func scaleConfig(cfg trace.Config, s float64, seed int64) trace.Config {
	if seed != 0 {
		cfg.Seed = seed
	}
	if s >= 1 {
		return cfg
	}
	scaleInt := func(v int, lo int) int {
		n := int(float64(v)*s + 0.5)
		if n < lo {
			n = lo
		}
		return n
	}
	lin := math.Sqrt(s)
	cfg.Bounds.MaxX = cfg.Bounds.MinX + cfg.Bounds.Width()*lin
	cfg.Bounds.MaxY = cfg.Bounds.MinY + cfg.Bounds.Height()*lin
	origHotspots, origVideos := cfg.NumHotspots, cfg.NumVideos
	cfg.NumHotspots = scaleInt(cfg.NumHotspots, 12)
	cfg.NumVideos = scaleInt(cfg.NumVideos, 200)
	cfg.NumUsers = scaleInt(cfg.NumUsers, 500)
	cfg.NumRegions = scaleInt(cfg.NumRegions, 4)
	// Total service capacity scales with hotspots x videos; scale the
	// request volume by the same factor so the paper's ~1.1x
	// oversubscription ratio — the regime request balancing operates
	// in — is preserved at every scale.
	capScale := float64(cfg.NumHotspots) * float64(cfg.NumVideos) /
		(float64(origHotspots) * float64(origVideos))
	cfg.NumRequests = int(float64(cfg.NumRequests)*capScale + 0.5)
	if cfg.NumRequests < 2000 {
		cfg.NumRequests = 2000
	}
	return cfg
}

// Experiments lists the experiment IDs All runs, in order.
func Experiments() []string {
	return []string{"fig2", "fig3a", "fig3b", "fig5", "fig6", "fig7", "fig8", "fig9"}
}

// Run executes one experiment by ID and returns its figures (a sweep
// like fig6 yields one figure per metric).
func (r *Runner) Run(id string) ([]*Figure, error) {
	switch id {
	case "fig2":
		f, err := r.Fig2()
		return wrap(f, err)
	case "fig3a":
		f, err := r.Fig3a()
		return wrap(f, err)
	case "fig3b":
		f, err := r.Fig3b()
		return wrap(f, err)
	case "fig5":
		f, err := r.Fig5()
		return wrap(f, err)
	case "fig6":
		return r.Fig6()
	case "fig7":
		return r.Fig7()
	case "fig8":
		f, err := r.Fig8()
		return wrap(f, err)
	case "fig9":
		f, err := r.Fig9()
		return wrap(f, err)
	default:
		for _, ext := range ExtensionExperiments() {
			if id == ext {
				return r.runExtension(id)
			}
		}
		return nil, fmt.Errorf("exp: unknown experiment %q (want one of %s or %s)",
			id, strings.Join(Experiments(), ", "), strings.Join(ExtensionExperiments(), ", "))
	}
}

// All executes every paper experiment in order.
func (r *Runner) All() ([]*Figure, error) {
	var out []*Figure
	for _, id := range Experiments() {
		figs, err := r.Run(id)
		if err != nil {
			return nil, fmt.Errorf("exp: running %s: %w", id, err)
		}
		out = append(out, figs...)
	}
	return out, nil
}

func wrap(f *Figure, err error) ([]*Figure, error) {
	if err != nil {
		return nil, err
	}
	return []*Figure{f}, nil
}
