package exp

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mcmf"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/region"
	"repro/internal/scheme"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ExtensionExperiments lists the experiments this reproduction adds
// beyond the paper's figures: the cross-region hierarchical mode the
// paper proposes as future work, robustness to crowdsourced-device
// churn, a comparison against reactive edge caching and
// power-of-two-choices routing, the resilience sweep over injected
// failure scenarios (internal/fault), and the DESIGN.md ablations.
func ExtensionExperiments() []string {
	return []string{
		"ext-hier", "ext-churn", "ext-reactive", "ext-shard", "resilience",
		"abl-guides", "abl-theta", "abl-prediction", "abl-mcmf", "abl-cluster",
		"abl-workers",
	}
}

// runExtension dispatches an extension experiment by ID.
func (r *Runner) runExtension(id string) ([]*Figure, error) {
	switch id {
	case "ext-hier":
		f, err := r.ExtHierarchical()
		return wrap(f, err)
	case "ext-churn":
		f, err := r.ExtChurn()
		return wrap(f, err)
	case "ext-reactive":
		f, err := r.ExtReactive()
		return wrap(f, err)
	case "ext-shard":
		f, err := r.ExtShard()
		return wrap(f, err)
	case "resilience":
		return r.Resilience()
	case "abl-guides":
		return r.ablate("abl-guides", "guide-node construction", []ablVariant{
			{"avg-distance", func(p *core.Params) { p.GuideCost = core.GuideCostAvgDistance }},
			{"avg-capacity(literal)", func(p *core.Params) { p.GuideCost = core.GuideCostAvgCapacity }},
			{"no-guides", func(p *core.Params) { p.DisableGuides = true }},
		})
	case "abl-theta":
		return r.ablate("abl-theta", "θ schedule", []ablVariant{
			{"sweep", func(p *core.Params) {}},
			{"single-shot", func(p *core.Params) { p.SingleShotTheta = true }},
		})
	case "abl-mcmf":
		return r.ablate("abl-mcmf", "MCMF algorithm", []ablVariant{
			{"ssp-dijkstra", func(p *core.Params) { p.Algorithm = mcmf.SSPDijkstra }},
			{"bellman-ford", func(p *core.Params) { p.Algorithm = mcmf.BellmanFord }},
		})
	case "abl-cluster":
		return r.ablate("abl-cluster", "cluster cut threshold", []ablVariant{
			{"cut=0.5(paper)", func(p *core.Params) { p.ClusterCut = 0.5 }},
			{"cut=0.65", func(p *core.Params) { p.ClusterCut = 0.65 }},
			{"cut=0.75", func(p *core.Params) { p.ClusterCut = 0.75 }},
			{"cut=0.85", func(p *core.Params) { p.ClusterCut = 0.85 }},
		})
	case "abl-prediction":
		f, err := r.AblatePrediction()
		return wrap(f, err)
	case "abl-workers":
		f, err := r.AblWorkers()
		return wrap(f, err)
	default:
		return nil, fmt.Errorf("exp: unknown extension experiment %q", id)
	}
}

// ExtHierarchical compares flat RBCAer against the hierarchical
// cross-region mode (paper Sec. VI / reference [28]) as the deployment
// grows, reporting scheduling time and serving ratio.
func (r *Runner) ExtHierarchical() (*Figure, error) {
	base := r.evalConfig()
	fig := &Figure{
		ID:     "ext-hier",
		Title:  "Flat RBCAer vs hierarchical cross-region RBCAer (scalability)",
		XLabel: "hotspots",
		YLabel: "seconds / ratio",
	}
	sizes := []int{1, 2, 4}
	var xs, flatT, hierT, flatServe, hierServe []float64
	for _, mult := range sizes {
		cfg := base
		cfg.NumHotspots = base.NumHotspots * mult
		cfg.NumUsers = base.NumUsers * mult
		cfg.NumRequests = base.NumRequests * mult
		// Grow the area with the fleet so density stays constant.
		grow := math.Sqrt(float64(mult))
		cfg.Bounds.MaxX = cfg.Bounds.MinX + base.Bounds.Width()*grow
		cfg.Bounds.MaxY = cfg.Bounds.MinY + base.Bounds.Height()*grow
		cfg.NumRegions = base.NumRegions * mult
		world, tr, err := trace.Generate(cfg)
		if err != nil {
			return nil, err
		}
		flat, err := sim.Run(world, tr, scheme.NewRBCAer(r.coreParams()), r.simOpts())
		if err != nil {
			return nil, fmt.Errorf("exp: ext-hier flat at %dx: %w", mult, err)
		}
		hier, err := sim.Run(world, tr, region.NewPolicy(3.0), r.simOpts())
		if err != nil {
			return nil, fmt.Errorf("exp: ext-hier hierarchical at %dx: %w", mult, err)
		}
		xs = append(xs, float64(cfg.NumHotspots))
		flatT = append(flatT, flat.SchedulingTime.Seconds())
		hierT = append(hierT, hier.SchedulingTime.Seconds())
		flatServe = append(flatServe, flat.HotspotServingRatio)
		hierServe = append(hierServe, hier.HotspotServingRatio)
	}
	fig.AddSeries("flat-time(s)", xs, flatT)
	fig.AddSeries("hier-time(s)", xs, hierT)
	fig.AddSeries("flat-serving", xs, flatServe)
	fig.AddSeries("hier-serving", xs, hierServe)
	last := len(xs) - 1
	if hierT[last] > 0 {
		fig.Note("at %d hotspots the hierarchical mode schedules %.1fx faster with %.1f%% of flat serving ratio",
			int(xs[last]), flatT[last]/hierT[last], 100*hierServe[last]/flatServe[last])
	}
	return fig, nil
}

// ExtChurn measures robustness to crowdsourced-device churn: serving
// ratio of the schemes as hotspots go offline per slot.
func (r *Runner) ExtChurn() (*Figure, error) {
	world, tr, err := r.evalData()
	if err != nil {
		return nil, err
	}
	churns := []float64{0, 0.05, 0.1, 0.2, 0.4}
	policies := func() []sim.Scheduler {
		return []sim.Scheduler{
			scheme.NewRBCAer(r.coreParams()),
			scheme.Nearest{},
			scheme.Random{RadiusKm: 1.5},
		}
	}
	fig := &Figure{
		ID:     "ext-churn",
		Title:  "Hotspot serving ratio under device churn",
		XLabel: "churn",
		YLabel: "serving ratio",
	}
	names := make([]string, 0, 3)
	series := make(map[string][]float64)
	for _, churn := range churns {
		for _, policy := range policies() {
			opts := r.simOpts()
			opts.HotspotChurn = churn
			m, err := sim.Run(world, tr, policy, opts)
			if err != nil {
				return nil, fmt.Errorf("exp: ext-churn %s at %v: %w", policy.Name(), churn, err)
			}
			if _, ok := series[m.Scheme]; !ok {
				names = append(names, m.Scheme)
			}
			series[m.Scheme] = append(series[m.Scheme], m.HotspotServingRatio)
		}
	}
	for _, name := range names {
		fig.AddSeries(name, churns, series[name])
	}
	if rb := series["RBCAer"]; len(rb) == len(churns) && rb[0] > 0 {
		fig.Note("RBCAer keeps %.0f%% of its churn-free serving ratio at 20%% churn",
			100*rb[3]/rb[0])
	}
	return fig, nil
}

// ExtReactive compares the paper's proactive prefetch-and-balance
// designs against reactive edge caching (LRU/LFU) and
// power-of-two-choices routing over a day of hourly slots.
func (r *Runner) ExtReactive() (*Figure, error) {
	cfg := r.evalConfig()
	cfg.Slots = 24
	cfg.NumRequests *= 2 // a day's volume spread over hourly rounds
	// Per-slot demand is ~1/12 of the single-round setup; shrink the
	// per-slot service capacity accordingly so balancing still matters.
	cfg.ServiceCapacityFrac /= 8
	world, tr, err := trace.Generate(cfg)
	if err != nil {
		return nil, err
	}
	// Proactive policies are per-slot independent and schedule their 24
	// slots concurrently; the reactive caches carry state across slots
	// and must replay sequentially.
	policies := []struct {
		independent bool
		make        func() sim.Scheduler
	}{
		{true, func() sim.Scheduler { return scheme.NewRBCAer(r.coreParams()) }},
		{true, func() sim.Scheduler { return scheme.Nearest{} }},
		{true, func() sim.Scheduler { return scheme.PowerOfTwo{RadiusKm: 1.5} }},
		{false, func() sim.Scheduler { return scheme.NewReactiveLRU() }},
		{false, func() sim.Scheduler { return scheme.NewReactiveLFU() }},
	}
	fig := &Figure{
		ID:     "ext-reactive",
		Title:  "Proactive prefetch vs reactive edge caching (24 hourly slots)",
		XLabel: "metric",
		YLabel: "value",
	}
	for _, policy := range policies {
		m, err := r.runPolicy(world, tr, policy.make, policy.independent, r.simOpts())
		if err != nil {
			return nil, fmt.Errorf("exp: ext-reactive %s: %w", policy.make().Name(), err)
		}
		fig.AddSeries(m.Scheme,
			[]float64{0, 1, 2},
			[]float64{m.HotspotServingRatio, m.ReplicationCost, m.CDNServerLoad})
		fig.Note("%s: serving %.3f, replication %.2fx, CDN load %.3f",
			m.Scheme, m.HotspotServingRatio, m.ReplicationCost, m.CDNServerLoad)
	}
	fig.Note("metric axis: 0 = hotspot serving ratio, 1 = replication cost, 2 = CDN server load")
	return fig, nil
}

// ExtShard sweeps the shard size of the sharded scheduler (DESIGN.md
// §14) over the evaluation workload, measuring the communication-cost
// vs load-balancing tradeoff: smaller cells mean more shards and more
// intra-shard parallelism, but more residual overload must cross shard
// boundaries in the reconciliation pass (the explicit communication
// cost), and boundary moves are coarser than a global round's.
func (r *Runner) ExtShard() (*Figure, error) {
	world, tr, err := r.evalData()
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "ext-shard",
		Title:  "Sharded RBCAer: shard size vs boundary communication and balance",
		XLabel: "shards",
		YLabel: "value",
	}
	// Cell sizes from "one shard" (cell covers the whole region) down
	// to fine-grained sharding. Duplicate shard counts (tiny scaled
	// worlds collapse several sizes onto one grid) are skipped.
	cells := []float64{1000, 8, 6, 4, 3, 2}
	seen := make(map[int]bool)
	var xs, boundary, serving, distance, schedT []float64
	for _, cell := range cells {
		part, err := region.GridPartition(world, cell)
		if err != nil {
			return nil, fmt.Errorf("exp: ext-shard partition at %.1fkm: %w", cell, err)
		}
		n := part.NumRegions()
		if seen[n] {
			continue
		}
		seen[n] = true
		// A fresh registry per configuration isolates the boundary
		// counters; the runner's shared registry still receives the
		// slot-level sim counters via simOpts.
		reg := obs.NewRegistry()
		m, err := sim.Run(world, tr, shard.NewPolicy(shard.Params{
			CellKm:  cell,
			Workers: r.Workers,
			Obs:     reg,
		}), r.simOpts())
		if err != nil {
			return nil, fmt.Errorf("exp: ext-shard at %.1fkm (%d shards): %w", cell, n, err)
		}
		moved := reg.Counter("shard.boundary.moved_flow").Value()
		xs = append(xs, float64(n))
		boundary = append(boundary, float64(moved))
		serving = append(serving, m.HotspotServingRatio)
		distance = append(distance, m.AvgAccessDistanceKm)
		schedT = append(schedT, m.SchedulingTime.Seconds())
		fig.Note("%d shards (cell %.0fkm): boundary flow %d, serving %.3f, distance %.2fkm, scheduling %v",
			n, cell, moved, m.HotspotServingRatio, m.AvgAccessDistanceKm, m.SchedulingTime)
	}
	fig.AddSeries("boundary-flow", xs, boundary)
	fig.AddSeries("serving-ratio", xs, serving)
	fig.AddSeries("avg-distance(km)", xs, distance)
	fig.AddSeries("scheduling-time(s)", xs, schedT)
	return fig, nil
}

// ablVariant is one parameter mutation of an RBCAer ablation.
type ablVariant struct {
	name string
	mut  func(*core.Params)
}

// ablate runs RBCAer variants over the evaluation workload and reports
// the paper's four metrics per variant.
func (r *Runner) ablate(id, what string, variants []ablVariant) ([]*Figure, error) {
	world, tr, err := r.evalData()
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("RBCAer ablation: %s", what),
		XLabel: "metric",
		YLabel: "value",
	}
	for _, v := range variants {
		params := r.coreParams()
		v.mut(&params)
		m, err := sim.Run(world, tr, scheme.NewRBCAer(params), r.simOpts())
		if err != nil {
			return nil, fmt.Errorf("exp: %s variant %s: %w", id, v.name, err)
		}
		fig.AddSeries(v.name,
			[]float64{0, 1, 2, 3},
			[]float64{m.HotspotServingRatio, m.AvgAccessDistanceKm, m.ReplicationCost, m.CDNServerLoad})
		fig.Note("%s: serving %.3f, distance %.2fkm, replication %.2fx, CDN load %.3f (scheduling %v)",
			v.name, m.HotspotServingRatio, m.AvgAccessDistanceKm, m.ReplicationCost,
			m.CDNServerLoad, m.SchedulingTime)
	}
	fig.Note("metric axis: 0 = serving ratio, 1 = avg distance (km), 2 = replication cost, 3 = CDN load")
	return []*Figure{fig}, nil
}

// AblatePrediction compares oracle per-slot demand against learned
// demand (EWMA / AR(2) / last-value) over a day of hourly rounds.
func (r *Runner) AblatePrediction() (*Figure, error) {
	cfg := r.evalConfig()
	// Two diurnal cycles (so the seasonal and factored methods have a
	// day of history), with enough volume that each hotspot sees a few
	// hundred requests per slot — the granularity the paper's single
	// scheduling round operates at — and per-slot capacity pressure
	// matching the Sec. V regime.
	cfg.Slots = 48
	cfg.NumRequests *= 28
	cfg.NumUsers *= 2
	cfg.ServiceCapacityFrac *= 0.6
	world, tr, err := trace.Generate(cfg)
	if err != nil {
		return nil, err
	}
	// Only the oracle is per-slot independent; every predictor learns
	// from earlier slots and must observe them in order.
	variants := []struct {
		name        string
		independent bool
		policy      func() sim.Scheduler
	}{
		{"oracle", true, func() sim.Scheduler { return scheme.NewRBCAer(r.coreParams()) }},
		{"factored(seasonal)", false, func() sim.Scheduler { return scheme.NewFactoredPredicted(scheme.NewRBCAer(r.coreParams())) }},
		{"factored+overprov(4x)", false, func() sim.Scheduler { return scheme.NewFactoredPredicted(scheme.NewRBCAer(overprovisionParams(r.coreParams(), 4))) }},
		{"seasonal(24)", false, func() sim.Scheduler {
			return &scheme.Predicted{Inner: scheme.NewRBCAer(r.coreParams()), Method: predict.Seasonal{Period: 24}}
		}},
		{"ewma(0.5)", false, func() sim.Scheduler {
			return &scheme.Predicted{Inner: scheme.NewRBCAer(r.coreParams()), Method: predict.EWMA{Alpha: 0.5}}
		}},
		{"ar(2)", false, func() sim.Scheduler {
			return &scheme.Predicted{Inner: scheme.NewRBCAer(r.coreParams()), Method: predict.AR{Order: 2}}
		}},
		{"last-value", false, func() sim.Scheduler {
			return &scheme.Predicted{Inner: scheme.NewRBCAer(r.coreParams()), Method: predict.LastValue{}}
		}},
	}
	fig := &Figure{
		ID:     "abl-prediction",
		Title:  "RBCAer on oracle vs learned demand (48 hourly slots, 2 days)",
		XLabel: "metric",
		YLabel: "value",
	}
	for _, v := range variants {
		m, err := r.runPolicy(world, tr, v.policy, v.independent, r.simOpts())
		if err != nil {
			return nil, fmt.Errorf("exp: abl-prediction %s: %w", v.name, err)
		}
		fig.AddSeries(v.name,
			[]float64{0, 1, 2},
			[]float64{m.HotspotServingRatio, m.ReplicationCost, m.CDNServerLoad})
		fig.Note("%s: serving %.3f, replication %.2fx, CDN load %.3f",
			v.name, m.HotspotServingRatio, m.ReplicationCost, m.CDNServerLoad)
	}
	fig.Note("metric axis: 0 = serving ratio, 1 = replication cost, 2 = CDN load")
	return fig, nil
}

// overprovisionParams returns the base parameters with the cache-fill
// budget scaled by mult.
func overprovisionParams(base core.Params, mult float64) core.Params {
	base.FillOverprovision = mult
	return base
}
