package exp

import (
	"fmt"

	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Fig5 summarises the evaluation deployment (paper Fig. 5): the
// geo-distribution of requests and hotspots over the rectangular
// region. The scatter is summarised as longitude-axis (x) density
// histograms for requests and hotspots plus headline counts.
func (r *Runner) Fig5() (*Figure, error) {
	world, tr, err := r.evalData()
	if err != nil {
		return nil, err
	}

	const bins = 20
	hotspotX := make([]float64, 0, len(world.Hotspots))
	for _, h := range world.Hotspots {
		hotspotX = append(hotspotX, h.Location.X)
	}
	requestX := make([]float64, 0, len(tr.Requests))
	for _, req := range tr.Requests {
		requestX = append(requestX, req.Location.X)
	}
	hHist, err := stats.Histogram(hotspotX, world.Bounds.MinX, world.Bounds.MaxX, bins)
	if err != nil {
		return nil, err
	}
	rHist, err := stats.Histogram(requestX, world.Bounds.MinX, world.Bounds.MaxX, bins)
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		ID:     "fig5",
		Title:  "Geo-distribution of video requests and content hotspots (x-axis density)",
		XLabel: "x(km)",
		YLabel: "fraction",
	}
	xs := make([]float64, bins)
	hy := make([]float64, bins)
	ry := make([]float64, bins)
	w := world.Bounds.Width() / bins
	for b := 0; b < bins; b++ {
		xs[b] = world.Bounds.MinX + (float64(b)+0.5)*w
		hy[b] = float64(hHist[b]) / float64(len(hotspotX))
		ry[b] = float64(rHist[b]) / float64(len(requestX))
	}
	fig.AddSeries("hotspots", xs, hy)
	fig.AddSeries("requests", xs, ry)

	distinct := make(map[trace.VideoID]struct{})
	for _, req := range tr.Requests {
		distinct[req.Video] = struct{}{}
	}
	fig.Note("region %.0fkm x %.0fkm, %d requests, %d distinct videos (catalogue %d), %d content hotspots (paper: 17x11km, 212,472 requests, 15,190 videos, 310 hotspots)",
		world.Bounds.Width(), world.Bounds.Height(), len(tr.Requests), len(distinct),
		world.NumVideos, len(world.Hotspots))
	return fig, nil
}

// evalMetricFigures names and extracts the four metrics of Figs. 6/7.
var evalMetricFigures = []struct {
	suffix string
	title  string
	yLabel string
	get    func(*sim.Metrics) float64
}{
	{"a", "Hotspot serving ratio", "ratio", func(m *sim.Metrics) float64 { return m.HotspotServingRatio }},
	{"b", "Average redirection distance", "km", func(m *sim.Metrics) float64 { return m.AvgAccessDistanceKm }},
	{"c", "Content replication cost", "x video set", func(m *sim.Metrics) float64 { return m.ReplicationCost }},
	{"d", "CDN server workload", "normalized", func(m *sim.Metrics) float64 { return m.CDNServerLoad }},
}

// evalPolicies builds the three compared policies.
func (r *Runner) evalPolicies() []sim.Scheduler {
	return []sim.Scheduler{
		scheme.NewRBCAer(r.coreParams()),
		scheme.Nearest{},
		scheme.Random{RadiusKm: 1.5},
	}
}

// sweep runs the compared policies over worlds produced by configure
// (one per x value) and returns the four metric figures.
func (r *Runner) sweep(idPrefix, sweepName, xLabel string, xs []float64,
	configure func(base *trace.World, x float64) *trace.World) ([]*Figure, error) {

	baseWorld, tr, err := r.evalData()
	if err != nil {
		return nil, err
	}

	policies := r.evalPolicies()
	// results[policy][metric] aligned with xs.
	results := make([][][]float64, len(policies))
	for p := range results {
		results[p] = make([][]float64, len(evalMetricFigures))
	}
	for _, x := range xs {
		world := configure(baseWorld, x)
		for p, policy := range policies {
			m, err := sim.Run(world, tr, policy, r.simOpts())
			if err != nil {
				return nil, fmt.Errorf("exp: %s at %s=%v with %s: %w",
					sweepName, xLabel, x, policy.Name(), err)
			}
			for mi, mf := range evalMetricFigures {
				results[p][mi] = append(results[p][mi], mf.get(m))
			}
		}
	}

	figs := make([]*Figure, 0, len(evalMetricFigures))
	for mi, mf := range evalMetricFigures {
		fig := &Figure{
			ID:     idPrefix + mf.suffix,
			Title:  fmt.Sprintf("%s vs %s", mf.title, sweepName),
			XLabel: xLabel,
			YLabel: mf.yLabel,
		}
		for p, policy := range policies {
			fig.AddSeries(policy.Name(), xs, results[p][mi])
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// withCapacities clones the world overriding every hotspot's service
// and cache capacity as fractions of the video-set size (<= 0 keeps the
// original value).
func withCapacities(world *trace.World, svcFrac, cacheFrac float64) *trace.World {
	out := *world
	out.Hotspots = make([]trace.Hotspot, len(world.Hotspots))
	copy(out.Hotspots, world.Hotspots)
	for i := range out.Hotspots {
		if svcFrac > 0 {
			out.Hotspots[i].ServiceCapacity = int64(float64(world.NumVideos)*svcFrac + 0.5)
		}
		if cacheFrac > 0 {
			out.Hotspots[i].CacheCapacity = int(float64(world.NumVideos)*cacheFrac + 0.5)
		}
	}
	return &out
}

// Fig6 reproduces the service-capacity sweep (paper Fig. 6a-d):
// capacity 2%..7% of the video set with cache fixed at 3%.
func (r *Runner) Fig6() ([]*Figure, error) {
	xs := []float64{0.02, 0.03, 0.04, 0.05, 0.06, 0.07}
	figs, err := r.sweep("fig6", "service capacity", "capacity", xs,
		func(base *trace.World, x float64) *trace.World {
			return withCapacities(base, x, 0.03)
		})
	if err != nil {
		return nil, err
	}
	annotateSweep(figs, "capacity")
	return figs, nil
}

// Fig7 reproduces the cache-size sweep (paper Fig. 7a-d): cache
// 0.5%..5% of the video set with capacity fixed at 5%. The paper's
// x ticks are uneven; the same ticks are used here.
func (r *Runner) Fig7() ([]*Figure, error) {
	xs := []float64{0.005, 0.007, 0.009, 0.01, 0.03, 0.05}
	figs, err := r.sweep("fig7", "cache size", "cache", xs,
		func(base *trace.World, x float64) *trace.World {
			return withCapacities(base, 0.05, x)
		})
	if err != nil {
		return nil, err
	}
	annotateSweep(figs, "cache")
	return figs, nil
}

// annotateSweep adds headline RBCAer-vs-baseline comparisons to the
// four metric figures of a sweep.
func annotateSweep(figs []*Figure, what string) {
	for _, fig := range figs {
		var rb, near *Series
		for i := range fig.Series {
			switch fig.Series[i].Name {
			case "RBCAer":
				rb = &fig.Series[i]
			case "Nearest":
				near = &fig.Series[i]
			}
		}
		if rb == nil || near == nil || len(rb.Y) == 0 || len(rb.Y) != len(near.Y) {
			continue
		}
		// Report the comparison at the midpoint of the sweep.
		mid := len(rb.Y) / 2
		if near.Y[mid] != 0 {
			delta := 100 * (rb.Y[mid] - near.Y[mid]) / near.Y[mid]
			fig.Note("RBCAer vs Nearest at %s=%s: %+.1f%%", what, trimFloat(rb.X[mid]), delta)
		}
	}
}
