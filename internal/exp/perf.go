package exp

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Fig8 reproduces the running-time comparison (paper Fig. 8): total
// scheduling time of the LP-based scheme, RBCAer, Random, and Nearest
// on the evaluation workload. As in the paper — which could only feed
// GLPK a 10K-request sample of its 212K requests and still measured
// 2.4 hours — the LP-based scheme runs on a bounded sample of the
// demand; see scheme.LPBased.
func (r *Runner) Fig8() (*Figure, error) {
	world, tr, err := r.evalData()
	if err != nil {
		return nil, err
	}
	// The LP baseline runs at several sample sizes to exhibit its
	// superlinear scaling — the paper's point is that exact
	// optimisation cannot keep up, not the absolute seconds.
	lpSamples := []int{100, 250, 500}
	if r.Scale < 1 {
		lpSamples = []int{50, 100, 200}
	}
	type entry struct {
		label  string
		policy sim.Scheduler
	}
	entries := make([]entry, 0, len(lpSamples)+3)
	for _, g := range lpSamples {
		entries = append(entries, entry{
			label:  fmt.Sprintf("LP-based(%d groups)", g),
			policy: scheme.LPBased{MaxGroups: g},
		})
	}
	entries = append(entries,
		entry{label: "RBCAer", policy: scheme.NewRBCAer(r.coreParams())},
		entry{label: "Random(1.5km)", policy: scheme.Random{RadiusKm: 1.5}},
		entry{label: "Nearest", policy: scheme.Nearest{}},
	)

	fig := &Figure{
		ID:     "fig8",
		Title:  "Efficiency comparison of scheduling algorithms",
		XLabel: "scheme",
		YLabel: "seconds",
	}
	var lpTimes []float64
	for i, e := range entries {
		// Level the playing field: the LP's large tableaux would
		// otherwise tax later schemes' timings through GC pressure.
		runtime.GC()
		m, err := sim.Run(world, tr, e.policy, r.simOpts())
		if err != nil {
			return nil, fmt.Errorf("exp: fig8 with %s: %w", e.label, err)
		}
		secs := m.SchedulingTime.Seconds()
		fig.AddSeries(e.label, []float64{float64(i)}, []float64{secs})
		fig.Note("%s: %.4fs scheduling time", e.label, secs)
		if len(lpTimes) < len(lpSamples) {
			lpTimes = append(lpTimes, secs)
		}
	}
	if n := len(lpTimes); n >= 2 && lpTimes[0] > 0 {
		growth := lpTimes[n-1] / lpTimes[0]
		sample := float64(lpSamples[n-1]) / float64(lpSamples[0])
		fig.Note("LP-based grows %.0fx in time for a %.0fx larger sample (superlinear); "+
			"the paper's GLPK run on a 10K-request sample took >2.4h vs RBCAer's 35s", growth, sample)
	}
	return fig, nil
}

// AblWorkers quantifies the scheduling-parallelism knob: one RBCAer
// round on the evaluation workload with the serial path versus the
// full worker pool (intra-round parallelism: distance cache, Jaccard
// matrix, candidate generation), and a multi-slot replay comparing
// sequential slot scheduling against concurrent slots
// (sim.RunParallel). Plans and metrics are identical across worker
// counts by construction; the figure reports only time.
func (r *Runner) AblWorkers() (*Figure, error) {
	world, tr, err := r.evalData()
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "abl-workers",
		Title:  "Scheduling-time ablation: Workers knob (serial vs parallel)",
		XLabel: "workers",
		YLabel: "seconds",
	}

	full := par.Workers(0)
	var baseline *sim.Metrics
	var xs, ys []float64
	for _, w := range []int{1, full} {
		p := core.DefaultParams()
		p.Workers = w
		m, err := sim.Run(world, tr, scheme.NewRBCAer(p), r.simOpts())
		if err != nil {
			return nil, fmt.Errorf("exp: abl-workers at %d workers: %w", w, err)
		}
		xs = append(xs, float64(w))
		ys = append(ys, m.SchedulingTime.Seconds())
		fig.Note("round: workers=%d schedules in %v (serving %.3f)", w, m.SchedulingTime, m.HotspotServingRatio)
		if baseline == nil {
			baseline = m
		} else if m.HotspotServingRatio != baseline.HotspotServingRatio ||
			m.ReplicationCost != baseline.ReplicationCost {
			return nil, fmt.Errorf("exp: abl-workers metrics diverged between worker counts")
		}
	}
	fig.AddSeries("round-time(s)", xs, ys)
	if ys[1] > 0 {
		fig.Note("round: %d workers run %.2fx the serial speed", full, ys[0]/ys[1])
	}

	// Slot-level parallelism on a multi-slot replay of the same
	// configuration (per-slot demand shrinks with the slot count, so
	// absolute times are smaller; the comparison is serial vs parallel
	// wall clock over identical work).
	cfg := r.evalConfig()
	cfg.Slots = 8
	mw, mtr, err := trace.Generate(cfg)
	if err != nil {
		return nil, err
	}
	newPolicy := func() sim.Scheduler { return scheme.NewRBCAer(r.coreParams()) }
	start := time.Now()
	serial, err := sim.Run(mw, mtr, newPolicy(), r.simOpts())
	if err != nil {
		return nil, fmt.Errorf("exp: abl-workers sequential slots: %w", err)
	}
	serialWall := time.Since(start)
	start = time.Now()
	parallel, err := sim.RunParallel(mw, mtr, newPolicy, full, r.simOpts())
	if err != nil {
		return nil, fmt.Errorf("exp: abl-workers concurrent slots: %w", err)
	}
	parallelWall := time.Since(start)
	if parallel.HotspotServingRatio != serial.HotspotServingRatio ||
		parallel.Replicas != serial.Replicas {
		return nil, fmt.Errorf("exp: abl-workers slot metrics diverged between Run and RunParallel")
	}
	fig.AddSeries("slots-wall(s)", []float64{1, float64(full)},
		[]float64{serialWall.Seconds(), parallelWall.Seconds()})
	fig.Note("8 slots: sequential %.3fs vs %d-way concurrent %.3fs wall clock, identical metrics",
		serialWall.Seconds(), full, parallelWall.Seconds())
	return fig, nil
}

// Fig9 reproduces the θ influence analysis (paper Fig. 9): as the edge
// threshold θ grows, the fraction of the |V|^2 possible edges kept in
// Gd and the fraction of the movable workload (maxflow) those edges
// can carry.
func (r *Runner) Fig9() (*Figure, error) {
	world, tr, err := r.evalData()
	if err != nil {
		return nil, err
	}
	index, err := world.Index()
	if err != nil {
		return nil, err
	}
	ctx, err := sim.BuildSlotContext(world, index, 0, tr.Requests, stats.SplitRand(r.Seed, "fig9"))
	if err != nil {
		return nil, err
	}
	sched, err := core.New(world, r.coreParams())
	if err != nil {
		return nil, err
	}

	thetas := []float64{0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.5, 6.0, 7.5}
	fig := &Figure{
		ID:     "fig9",
		Title:  "Influence of θ on Gd size and achievable flow",
		XLabel: "theta(km)",
		YLabel: "fraction",
	}
	edgeFrac := make([]float64, len(thetas))
	flowFrac := make([]float64, len(thetas))
	for i, th := range thetas {
		ta, err := sched.AnalyzeTheta(ctx.Demand, th)
		if err != nil {
			return nil, fmt.Errorf("exp: fig9 at θ=%v: %w", th, err)
		}
		edgeFrac[i] = ta.EdgeFraction
		flowFrac[i] = ta.FlowFraction
	}
	fig.AddSeries("%of|V|^2", thetas, edgeFrac)
	fig.AddSeries("%ofMaxflow", thetas, flowFrac)
	for i, th := range thetas {
		if th == 1.5 || th == 7.5 {
			fig.Note("θ=%.1fkm: %.1f%% of |V|^2 edges, %.0f%% of maxflow (paper: θ=1.5 → ~50%% of maxflow; θ=7.5 → 11%% of |V|^2, 100%% of maxflow)",
				th, 100*edgeFrac[i], 100*flowFrac[i])
		}
	}
	return fig, nil
}
