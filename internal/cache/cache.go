// Package cache provides fixed-capacity cache replacement policies
// (LRU, LFU, FIFO) for the reactive-caching baseline: the paper's
// crowdsourced CDN *prefetches* content per scheduling round, and the
// extension benches compare that against hotspots that instead cache
// reactively on miss, the behaviour of an unmanaged edge cache.
package cache

import (
	"container/list"
	"fmt"
)

// Cache is a fixed-capacity set of integer ids with an eviction policy.
// Implementations are not safe for concurrent use.
type Cache interface {
	// Name identifies the policy ("lru", "lfu", "fifo").
	Name() string
	// Contains reports whether id is cached, without touching
	// recency/frequency state.
	Contains(id int) bool
	// Access records a request for id. On a hit it updates the
	// policy's bookkeeping and returns hit=true. On a miss it admits
	// id, evicting a victim when full; evicted reports the victim and
	// wasEvicted whether there was one.
	Access(id int) (hit bool, evicted int, wasEvicted bool)
	// Len returns the current number of cached ids.
	Len() int
	// Capacity returns the maximum number of cached ids.
	Capacity() int
	// Items returns the cached ids in unspecified order.
	Items() []int
}

// Constructor builds a cache of the given capacity.
type Constructor func(capacity int) (Cache, error)

// --- LRU ---

// LRU evicts the least recently used id.
type LRU struct {
	capacity int
	order    *list.List // front = most recent
	byID     map[int]*list.Element
}

var _ Cache = (*LRU)(nil)

// NewLRU returns an LRU cache; capacity must be positive.
func NewLRU(capacity int) (*LRU, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("cache: non-positive capacity %d", capacity)
	}
	return &LRU{
		capacity: capacity,
		order:    list.New(),
		byID:     make(map[int]*list.Element, capacity),
	}, nil
}

// Name implements Cache.
func (c *LRU) Name() string { return "lru" }

// Contains implements Cache.
func (c *LRU) Contains(id int) bool {
	_, ok := c.byID[id]
	return ok
}

// Access implements Cache.
func (c *LRU) Access(id int) (hit bool, evicted int, wasEvicted bool) {
	if el, ok := c.byID[id]; ok {
		c.order.MoveToFront(el)
		return true, 0, false
	}
	if c.order.Len() >= c.capacity {
		back := c.order.Back()
		victim := back.Value.(int)
		c.order.Remove(back)
		delete(c.byID, victim)
		evicted, wasEvicted = victim, true
	}
	c.byID[id] = c.order.PushFront(id)
	return false, evicted, wasEvicted
}

// Len implements Cache.
func (c *LRU) Len() int { return c.order.Len() }

// Capacity implements Cache.
func (c *LRU) Capacity() int { return c.capacity }

// Items implements Cache.
func (c *LRU) Items() []int {
	out := make([]int, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(int))
	}
	return out
}

// --- LFU ---

// LFU evicts the least frequently used id, breaking frequency ties by
// least recent insertion into the current frequency class (the classic
// O(1) LFU of Shah, Mitra, and Matani).
type LFU struct {
	capacity int
	byID     map[int]*lfuEntry
	freqs    *list.List // ascending frequency classes
}

type lfuClass struct {
	freq    int64
	entries *list.List // *lfuEntry, front = most recent
}

type lfuEntry struct {
	id    int
	class *list.Element // into LFU.freqs
	self  *list.Element // into class.entries
}

var _ Cache = (*LFU)(nil)

// NewLFU returns an LFU cache; capacity must be positive.
func NewLFU(capacity int) (*LFU, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("cache: non-positive capacity %d", capacity)
	}
	return &LFU{
		capacity: capacity,
		byID:     make(map[int]*lfuEntry, capacity),
		freqs:    list.New(),
	}, nil
}

// Name implements Cache.
func (c *LFU) Name() string { return "lfu" }

// Contains implements Cache.
func (c *LFU) Contains(id int) bool {
	_, ok := c.byID[id]
	return ok
}

// Access implements Cache.
func (c *LFU) Access(id int) (hit bool, evicted int, wasEvicted bool) {
	if e, ok := c.byID[id]; ok {
		c.promote(e)
		return true, 0, false
	}
	if len(c.byID) >= c.capacity {
		victim := c.evictOne()
		evicted, wasEvicted = victim, true
	}
	// Insert at frequency 1.
	classEl := c.freqs.Front()
	if classEl == nil || classEl.Value.(*lfuClass).freq != 1 {
		classEl = c.freqs.PushFront(&lfuClass{freq: 1, entries: list.New()})
	}
	entry := &lfuEntry{id: id, class: classEl}
	entry.self = classEl.Value.(*lfuClass).entries.PushFront(entry)
	c.byID[id] = entry
	return false, evicted, wasEvicted
}

// promote moves an entry to the next frequency class.
func (c *LFU) promote(e *lfuEntry) {
	cls := e.class.Value.(*lfuClass)
	next := e.class.Next()
	var target *list.Element
	if next != nil && next.Value.(*lfuClass).freq == cls.freq+1 {
		target = next
	} else {
		target = c.freqs.InsertAfter(&lfuClass{freq: cls.freq + 1, entries: list.New()}, e.class)
	}
	cls.entries.Remove(e.self)
	if cls.entries.Len() == 0 {
		c.freqs.Remove(e.class)
	}
	e.class = target
	e.self = target.Value.(*lfuClass).entries.PushFront(e)
}

// evictOne removes the least-frequent, least-recent entry.
func (c *LFU) evictOne() int {
	classEl := c.freqs.Front()
	cls := classEl.Value.(*lfuClass)
	victimEl := cls.entries.Back()
	victim := victimEl.Value.(*lfuEntry)
	cls.entries.Remove(victimEl)
	if cls.entries.Len() == 0 {
		c.freqs.Remove(classEl)
	}
	delete(c.byID, victim.id)
	return victim.id
}

// Len implements Cache.
func (c *LFU) Len() int { return len(c.byID) }

// Capacity implements Cache.
func (c *LFU) Capacity() int { return c.capacity }

// Items implements Cache.
func (c *LFU) Items() []int {
	out := make([]int, 0, len(c.byID))
	for id := range c.byID {
		out = append(out, id)
	}
	return out
}

// --- FIFO ---

// FIFO evicts in insertion order, ignoring access recency.
type FIFO struct {
	capacity int
	order    *list.List // front = newest
	byID     map[int]struct{}
}

var _ Cache = (*FIFO)(nil)

// NewFIFO returns a FIFO cache; capacity must be positive.
func NewFIFO(capacity int) (*FIFO, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("cache: non-positive capacity %d", capacity)
	}
	return &FIFO{
		capacity: capacity,
		order:    list.New(),
		byID:     make(map[int]struct{}, capacity),
	}, nil
}

// Name implements Cache.
func (c *FIFO) Name() string { return "fifo" }

// Contains implements Cache.
func (c *FIFO) Contains(id int) bool {
	_, ok := c.byID[id]
	return ok
}

// Access implements Cache.
func (c *FIFO) Access(id int) (hit bool, evicted int, wasEvicted bool) {
	if _, ok := c.byID[id]; ok {
		return true, 0, false
	}
	if c.order.Len() >= c.capacity {
		back := c.order.Back()
		victim := back.Value.(int)
		c.order.Remove(back)
		delete(c.byID, victim)
		evicted, wasEvicted = victim, true
	}
	c.order.PushFront(id)
	c.byID[id] = struct{}{}
	return false, evicted, wasEvicted
}

// Len implements Cache.
func (c *FIFO) Len() int { return c.order.Len() }

// Capacity implements Cache.
func (c *FIFO) Capacity() int { return c.capacity }

// Items implements Cache.
func (c *FIFO) Items() []int {
	out := make([]int, 0, len(c.byID))
	for id := range c.byID {
		out = append(out, id)
	}
	return out
}
