package cache

import (
	"math/rand"
	"sort"
	"testing"
)

// constructors enumerates every policy for shared behaviour tests.
var constructors = map[string]Constructor{
	"lru":  func(c int) (Cache, error) { return NewLRU(c) },
	"lfu":  func(c int) (Cache, error) { return NewLFU(c) },
	"fifo": func(c int) (Cache, error) { return NewFIFO(c) },
}

func TestConstructorsRejectBadCapacity(t *testing.T) {
	for name, ctor := range constructors {
		t.Run(name, func(t *testing.T) {
			if _, err := ctor(0); err == nil {
				t.Error("capacity 0 accepted")
			}
			if _, err := ctor(-1); err == nil {
				t.Error("negative capacity accepted")
			}
		})
	}
}

func TestSharedBehaviour(t *testing.T) {
	for name, ctor := range constructors {
		t.Run(name, func(t *testing.T) {
			c, err := ctor(3)
			if err != nil {
				t.Fatal(err)
			}
			if c.Name() != name {
				t.Errorf("Name() = %q, want %q", c.Name(), name)
			}
			if c.Capacity() != 3 {
				t.Errorf("Capacity() = %d, want 3", c.Capacity())
			}
			// Misses admit.
			for i, id := range []int{1, 2, 3} {
				hit, _, evicted := c.Access(id)
				if hit {
					t.Fatalf("access %d: unexpected hit", id)
				}
				if evicted {
					t.Fatalf("access %d: eviction before full", id)
				}
				if c.Len() != i+1 {
					t.Fatalf("Len() = %d after %d inserts", c.Len(), i+1)
				}
			}
			// Hits report hits and never evict.
			hit, _, evicted := c.Access(2)
			if !hit || evicted {
				t.Fatalf("re-access: hit=%v evicted=%v", hit, evicted)
			}
			// Overflow evicts exactly one.
			hit, victim, evicted := c.Access(4)
			if hit || !evicted {
				t.Fatalf("overflow access: hit=%v evicted=%v", hit, evicted)
			}
			if c.Len() != 3 {
				t.Fatalf("Len() = %d after eviction, want 3", c.Len())
			}
			if c.Contains(victim) {
				t.Fatalf("victim %d still cached", victim)
			}
			if !c.Contains(4) {
				t.Fatal("admitted id missing")
			}
			items := c.Items()
			sort.Ints(items)
			if len(items) != 3 {
				t.Fatalf("Items() = %v", items)
			}
		})
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c, err := NewLRU(2)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(1)
	c.Access(2)
	c.Access(1) // 1 becomes most recent
	_, victim, evicted := c.Access(3)
	if !evicted || victim != 2 {
		t.Errorf("evicted %d (%v), want 2", victim, evicted)
	}
	if !c.Contains(1) || !c.Contains(3) {
		t.Errorf("contents = %v, want {1, 3}", c.Items())
	}
}

func TestLFUEvictionOrder(t *testing.T) {
	c, err := NewLFU(2)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(1)
	c.Access(1) // freq 2
	c.Access(2) // freq 1
	_, victim, evicted := c.Access(3)
	if !evicted || victim != 2 {
		t.Errorf("evicted %d (%v), want least-frequent 2", victim, evicted)
	}
	// Now 1 has freq 2, 3 has freq 1: adding 4 evicts 3.
	_, victim, evicted = c.Access(4)
	if !evicted || victim != 3 {
		t.Errorf("evicted %d (%v), want 3", victim, evicted)
	}
	if !c.Contains(1) {
		t.Error("frequent id 1 evicted")
	}
}

func TestLFUTieBreaksLeastRecent(t *testing.T) {
	c, err := NewLFU(2)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(1)
	c.Access(2) // both freq 1; 1 older
	_, victim, evicted := c.Access(3)
	if !evicted || victim != 1 {
		t.Errorf("evicted %d (%v), want oldest tie 1", victim, evicted)
	}
}

func TestFIFOIgnoresRecency(t *testing.T) {
	c, err := NewFIFO(2)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(1)
	c.Access(2)
	c.Access(1) // hit; does not refresh insertion order
	_, victim, evicted := c.Access(3)
	if !evicted || victim != 1 {
		t.Errorf("evicted %d (%v), want first-in 1", victim, evicted)
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for name, ctor := range constructors {
		t.Run(name, func(t *testing.T) {
			c, err := ctor(8)
			if err != nil {
				t.Fatal(err)
			}
			present := make(map[int]bool)
			for i := 0; i < 5000; i++ {
				id := rng.Intn(40)
				hit, victim, evicted := c.Access(id)
				if hit != present[id] {
					t.Fatalf("step %d: hit=%v but present=%v for %d", i, hit, present[id], id)
				}
				if evicted {
					if !present[victim] {
						t.Fatalf("step %d: evicted absent id %d", i, victim)
					}
					delete(present, victim)
				}
				present[id] = true
				if c.Len() > 8 {
					t.Fatalf("step %d: Len() = %d exceeds capacity", i, c.Len())
				}
				if len(present) != c.Len() {
					t.Fatalf("step %d: model has %d, cache has %d", i, len(present), c.Len())
				}
			}
		})
	}
}

func TestLRUMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c, err := NewLRU(5)
	if err != nil {
		t.Fatal(err)
	}
	var order []int // reference: most recent first
	touch := func(id int) {
		for i, v := range order {
			if v == id {
				order = append(order[:i], order[i+1:]...)
				break
			}
		}
		order = append([]int{id}, order...)
		if len(order) > 5 {
			order = order[:5]
		}
	}
	for i := 0; i < 2000; i++ {
		id := rng.Intn(15)
		c.Access(id)
		touch(id)
		got := c.Items()
		if len(got) != len(order) {
			t.Fatalf("step %d: size mismatch", i)
		}
		for j := range order {
			if got[j] != order[j] {
				t.Fatalf("step %d: order %v, want %v", i, got, order)
			}
		}
	}
}
