package fault

import (
	"reflect"
	"testing"

	"repro/internal/geo"
	"repro/internal/trace"
)

// lineWorld returns m hotspots spaced 1 km apart on the x axis.
func lineWorld(m int) *trace.World {
	w := &trace.World{
		Bounds:        geo.Rect{MinX: -1, MinY: -1, MaxX: float64(m), MaxY: 1},
		NumVideos:     50,
		CDNDistanceKm: 20,
	}
	for h := 0; h < m; h++ {
		w.Hotspots = append(w.Hotspots, trace.Hotspot{
			ID:              trace.HotspotID(h),
			Location:        geo.Point{X: float64(h), Y: 0},
			ServiceCapacity: 10,
			CacheCapacity:   8,
		})
	}
	return w
}

func fullScenario() *Scenario {
	return &Scenario{
		Name:  "everything",
		Churn: &MarkovChurn{FailPerSlot: 0.2, RecoverPerSlot: 0.4},
		Outages: []RegionalOutage{
			{Center: geo.Point{X: 1, Y: 0}, RadiusKm: 1.5, StartSlot: 2, EndSlot: 4},
		},
		Degradations: []CapacityDegradation{
			{StartSlot: 1, EndSlot: 5, Fraction: 0.5, ServiceFactor: 0.5, CacheFactor: 0.5},
		},
		FlashCrowds: []FlashCrowd{
			{StartSlot: 2, EndSlot: 4, TopVideos: 2, Multiplier: 3},
		},
		Staleness: &StaleReports{LagSlots: 1, DropFraction: 0.25},
	}
}

func TestScenarioValidate(t *testing.T) {
	cases := []struct {
		name string
		sc   *Scenario
		ok   bool
	}{
		{"nil scenario", nil, true},
		{"empty scenario", &Scenario{}, true},
		{"full scenario", fullScenario(), true},
		{"bad fail prob", &Scenario{Churn: &MarkovChurn{FailPerSlot: 1.5, RecoverPerSlot: 0.5}}, false},
		{"absorbing churn", &Scenario{Churn: &MarkovChurn{FailPerSlot: 0.5}}, false},
		{"negative radius", &Scenario{Outages: []RegionalOutage{{RadiusKm: -1}}}, false},
		{"inverted outage window", &Scenario{Outages: []RegionalOutage{{RadiusKm: 1, StartSlot: 3, EndSlot: 1}}}, false},
		{"bad degradation fraction", &Scenario{Degradations: []CapacityDegradation{{EndSlot: 1, Fraction: 2, ServiceFactor: 1, CacheFactor: 1}}}, false},
		{"bad service factor", &Scenario{Degradations: []CapacityDegradation{{EndSlot: 1, Fraction: 0.5, ServiceFactor: -0.1, CacheFactor: 1}}}, false},
		{"zero multiplier", &Scenario{FlashCrowds: []FlashCrowd{{EndSlot: 1, TopVideos: 1, Multiplier: 0}}}, false},
		{"negative lag", &Scenario{Staleness: &StaleReports{LagSlots: -1}}, false},
		{"bad drop fraction", &Scenario{Staleness: &StaleReports{DropFraction: 1.5}}, false},
	}
	for _, tc := range cases {
		err := tc.sc.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid scenario accepted", tc.name)
		}
	}
}

func TestCompileDeterministic(t *testing.T) {
	world := lineWorld(12)
	a, err := Compile(world, 10, 7, fullScenario())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	b, err := Compile(world, 10, 7, fullScenario())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same inputs compiled to different timelines")
	}
	c, err := Compile(world, 10, 8, fullScenario())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if reflect.DeepEqual(a.causes, c.causes) && reflect.DeepEqual(a.drops, c.drops) {
		t.Error("different seeds produced identical randomized draws (suspicious)")
	}
}

func TestCompileValidation(t *testing.T) {
	world := lineWorld(3)
	if _, err := Compile(nil, 5, 1, &Scenario{}); err == nil {
		t.Error("nil world accepted")
	}
	if _, err := Compile(world, 0, 1, &Scenario{}); err == nil {
		t.Error("zero slots accepted")
	}
	if _, err := Compile(world, 5, 1, &Scenario{Churn: &MarkovChurn{FailPerSlot: -1}}); err == nil {
		t.Error("invalid scenario accepted")
	}
}

func TestCompileEmptyScenario(t *testing.T) {
	tl, err := Compile(lineWorld(3), 5, 1, nil)
	if err != nil {
		t.Fatalf("Compile(nil scenario): %v", err)
	}
	for s := 0; s < 5; s++ {
		if tl.Causes(s) != nil || tl.ServiceCapacities(s) != nil ||
			tl.CacheCapacities(s) != nil || tl.DroppedReports(s) != nil {
			t.Fatalf("empty scenario injected something at slot %d", s)
		}
	}
	if tl.Stale() {
		t.Error("empty scenario reports stale")
	}
	if tl.ReportSlot(3) != 3 {
		t.Errorf("ReportSlot(3) = %d without lag", tl.ReportSlot(3))
	}
}

func TestRegionalOutageGeometry(t *testing.T) {
	world := lineWorld(6) // hotspots at x = 0..5
	sc := &Scenario{Outages: []RegionalOutage{
		{Center: geo.Point{X: 1, Y: 0}, RadiusKm: 1.25, StartSlot: 1, EndSlot: 3},
	}}
	tl, err := Compile(world, 4, 1, sc)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for _, slot := range []int{0, 3} {
		if tl.Causes(slot) != nil {
			t.Errorf("slot %d outside window has causes %v", slot, tl.Causes(slot))
		}
	}
	for _, slot := range []int{1, 2} {
		causes := tl.Causes(slot)
		if causes == nil {
			t.Fatalf("slot %d inside window has no causes", slot)
		}
		for h := 0; h < 6; h++ {
			wantDown := h <= 2 // x=0,1,2 within 1.25 km of x=1
			if gotDown := causes[h] == CauseOutage; gotDown != wantDown {
				t.Errorf("slot %d hotspot %d: cause %v, want down=%v", slot, h, causes[h], wantDown)
			}
		}
	}
}

func TestMarkovChurnIsBursty(t *testing.T) {
	world := lineWorld(20)
	slots := 200
	sc := &Scenario{Churn: &MarkovChurn{FailPerSlot: 0.05, RecoverPerSlot: 0.25}}
	tl, err := Compile(world, slots, 3, sc)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// Count outage sessions and offline slots; mean session length
	// should approach 1/RecoverPerSlot = 4 slots, far above the 1-ish
	// of i.i.d. churn at the same offline fraction.
	var offlineSlots, sessions int
	for h := 0; h < 20; h++ {
		down := false
		for s := 0; s < slots; s++ {
			causes := tl.Causes(s)
			now := causes != nil && causes[h] == CauseChurn
			if now {
				offlineSlots++
				if !down {
					sessions++
				}
			}
			down = now
		}
	}
	if sessions == 0 {
		t.Fatal("no churn sessions drawn")
	}
	mean := float64(offlineSlots) / float64(sessions)
	if mean < 2 {
		t.Errorf("mean outage session %.2f slots; Markov churn should be bursty (want >= 2)", mean)
	}
}

func TestCapacityDegradationScales(t *testing.T) {
	world := lineWorld(10)
	sc := &Scenario{Degradations: []CapacityDegradation{
		{StartSlot: 0, EndSlot: 2, Fraction: 1, ServiceFactor: 0.5, CacheFactor: 0.25},
	}}
	tl, err := Compile(world, 3, 1, sc)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	svc := tl.ServiceCapacities(0)
	cache := tl.CacheCapacities(1)
	if svc == nil || cache == nil {
		t.Fatal("degraded slots report nominal capacities")
	}
	for h := range world.Hotspots {
		if svc[h] != 5 { // floor(10 * 0.5)
			t.Errorf("hotspot %d service %d, want 5", h, svc[h])
		}
		if cache[h] != 2 { // floor(8 * 0.25)
			t.Errorf("hotspot %d cache %d, want 2", h, cache[h])
		}
	}
	if tl.ServiceCapacities(2) != nil || tl.CacheCapacities(2) != nil {
		t.Error("slot outside degradation window degraded")
	}
}

func TestInjectFlashCrowds(t *testing.T) {
	reqs := []trace.Request{
		{ID: 0, Video: 1, Slot: 0},
		{ID: 1, Video: 1, Slot: 1},
		{ID: 2, Video: 1, Slot: 1},
		{ID: 3, Video: 2, Slot: 1},
		{ID: 4, Video: 3, Slot: 2},
	}
	tr := &trace.Trace{Slots: 3, Requests: reqs}
	sc := &Scenario{FlashCrowds: []FlashCrowd{
		{StartSlot: 1, EndSlot: 2, TopVideos: 1, Multiplier: 3},
	}}
	out, injected, err := InjectFlashCrowds(tr, sc)
	if err != nil {
		t.Fatalf("InjectFlashCrowds: %v", err)
	}
	// Video 1 is the window's hottest (2 requests); each request gains
	// 2 duplicates.
	if injected != 4 {
		t.Fatalf("injected %d requests, want 4", injected)
	}
	if len(out.Requests) != len(reqs)+4 {
		t.Fatalf("trace has %d requests, want %d", len(out.Requests), len(reqs)+4)
	}
	// Slot-0 and slot-2 requests are untouched; duplicates sit inside
	// slot 1 adjacent to their originals and carry fresh ids.
	if out.Requests[0] != reqs[0] {
		t.Errorf("slot-0 request perturbed: %+v", out.Requests[0])
	}
	seen := map[int]bool{}
	for _, r := range out.Requests {
		if seen[r.ID] {
			t.Fatalf("duplicate request id %d", r.ID)
		}
		seen[r.ID] = true
	}
	if err := out.Validate(&trace.World{Bounds: geo.Rect{MaxX: 1, MaxY: 1}, NumVideos: 50, CDNDistanceKm: 1, Hotspots: []trace.Hotspot{{}}}); err != nil {
		t.Errorf("injected trace invalid: %v", err)
	}
	// Determinism: same inputs, same output.
	out2, _, err := InjectFlashCrowds(tr, sc)
	if err != nil {
		t.Fatalf("InjectFlashCrowds: %v", err)
	}
	if !reflect.DeepEqual(out, out2) {
		t.Error("flash-crowd injection not deterministic")
	}
	// No flash crowds: the very same trace pointer comes back.
	same, n, err := InjectFlashCrowds(tr, &Scenario{})
	if err != nil || same != tr || n != 0 {
		t.Errorf("no-op injection returned (%p, %d, %v), want (%p, 0, nil)", same, n, err, tr)
	}
}

func TestReportSlotClamps(t *testing.T) {
	tl, err := Compile(lineWorld(2), 5, 1, &Scenario{Staleness: &StaleReports{LagSlots: 2}})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if !tl.Stale() {
		t.Fatal("lagged timeline not stale")
	}
	for slot, want := range map[int]int{0: 0, 1: 0, 2: 0, 3: 1, 4: 2} {
		if got := tl.ReportSlot(slot); got != want {
			t.Errorf("ReportSlot(%d) = %d, want %d", slot, got, want)
		}
	}
}
