package fault

import (
	"testing"

	"repro/internal/obs"
)

func TestTimelineCounts(t *testing.T) {
	world := lineWorld(12)
	tl, err := Compile(world, 10, 7, fullScenario())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	c := tl.Counts()
	if c.OutageSlots <= 0 {
		t.Errorf("OutageSlots = %d, want > 0 (outage covers slots [2, 4))", c.OutageSlots)
	}
	if c.DegradedSlots <= 0 {
		t.Errorf("DegradedSlots = %d, want > 0 (degradation covers slots [1, 5))", c.DegradedSlots)
	}
	if c.DroppedReports <= 0 {
		t.Errorf("DroppedReports = %d, want > 0 (25%% drop fraction)", c.DroppedReports)
	}
	// Churn with fail 0.2 over 12 hotspots x 10 slots flips some slots
	// offline with overwhelming probability on this seed.
	if c.ChurnSlots <= 0 {
		t.Errorf("ChurnSlots = %d, want > 0", c.ChurnSlots)
	}
	// The outage region [x=1 ± 1.5 km] covers hotspots 0..2 for 2
	// slots: outage-cause offline pairs can't exceed 3*2 plus nothing.
	if c.OutageSlots > 6 {
		t.Errorf("OutageSlots = %d, want <= 6 (3 hotspots x 2 slots)", c.OutageSlots)
	}
}

func TestTimelineCountsEmpty(t *testing.T) {
	world := lineWorld(4)
	tl, err := Compile(world, 5, 1, &Scenario{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if got := tl.Counts(); got != (CauseCounts{}) {
		t.Fatalf("empty scenario Counts() = %+v, want zero", got)
	}
	// Nil-safety: accessors on a nil timeline must not panic.
	var nilTL *Timeline
	if got := nilTL.Counts(); got != (CauseCounts{}) {
		t.Fatalf("nil timeline Counts() = %+v, want zero", got)
	}
	nilTL.Publish(obs.NewRegistry())
}

func TestTimelinePublish(t *testing.T) {
	world := lineWorld(12)
	tl, err := Compile(world, 10, 7, fullScenario())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	reg := obs.NewRegistry()
	tl.Publish(reg)
	tl.Publish(nil) // nil registry is a no-op, not a panic

	snap := reg.Snapshot(false)
	want := map[string]bool{
		"fault.cause.churn":       false,
		"fault.cause.outage":      false,
		"fault.cause.degradation": false,
		"fault.cause.stale_drops": false,
	}
	for _, c := range snap.Counters {
		if _, ok := want[c.Name]; ok {
			want[c.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("counter %s not published", name)
		}
	}
	counts := tl.Counts()
	for _, c := range snap.Counters {
		switch c.Name {
		case "fault.cause.outage":
			if c.Value != counts.OutageSlots {
				t.Errorf("%s = %d, want %d", c.Name, c.Value, counts.OutageSlots)
			}
		case "fault.cause.stale_drops":
			if c.Value != counts.DroppedReports {
				t.Errorf("%s = %d, want %d", c.Name, c.Value, counts.DroppedReports)
			}
		}
	}
}
