package fault

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Timeline is a scenario compiled against a concrete world and slot
// count: for every slot it answers which hotspots are offline (and
// why), what the effective service/cache capacities are, and how the
// scheduler's load reports are delayed or dropped. It is a pure
// function of (world, slots, seed, scenario), so consumers may query
// it from any number of goroutines (it is immutable after Compile) and
// in any slot order without perturbing determinism.
type Timeline struct {
	slots int
	m     int

	// causes[slot][h] is the outage cause for hotspot h at slot, or
	// CauseNone; a nil row means the whole fleet is online.
	causes [][]Cause
	// service[slot] is the effective per-hotspot service capacity; a
	// nil row means nominal.
	service [][]int64
	// cache[slot] is the effective per-hotspot cache capacity; a nil
	// row means nominal.
	cache [][]int
	// drops[slot][h] marks load reports lost in flight; nil = none.
	drops [][]bool

	lag int

	counts CauseCounts
}

// CauseCounts breaks a compiled timeline's injected faults down by
// family: how many (hotspot, slot) pairs each family touches over the
// whole run. The counts are fixed at Compile time — a pure function of
// (world, slots, seed, scenario) — so they are identical however the
// slots are later scheduled.
type CauseCounts struct {
	// ChurnSlots counts (hotspot, slot) pairs offline due to Markov
	// session churn (after regional outages claim their overlap).
	ChurnSlots int64
	// OutageSlots counts (hotspot, slot) pairs inside a regional outage.
	OutageSlots int64
	// DegradedSlots counts (hotspot, slot) pairs whose service or cache
	// capacity is scaled below nominal (each pair counted once even when
	// both resources degrade).
	DegradedSlots int64
	// DroppedReports counts (hotspot, slot) load reports lost in flight.
	DroppedReports int64
}

// Compile expands the scenario into a per-slot fault timeline. All
// randomness derives from seed via independent split streams, drawn in
// a fixed slot-major order, so equal inputs always yield equal
// timelines.
func Compile(world *trace.World, slots int, seed int64, sc *Scenario) (*Timeline, error) {
	if world == nil {
		return nil, fmt.Errorf("fault: nil world")
	}
	if slots <= 0 {
		return nil, fmt.Errorf("fault: non-positive slot count %d", slots)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	m := len(world.Hotspots)
	tl := &Timeline{slots: slots, m: m}
	if sc.Empty() {
		return tl, nil
	}

	tl.causes = make([][]Cause, slots)

	// Markov session churn: evolve every hotspot's chain slot by slot,
	// one draw per (slot, hotspot) regardless of state so the stream
	// never shifts when parameters change.
	if sc.Churn != nil && sc.Churn.FailPerSlot > 0 {
		rng := stats.SplitRand(seed, "fault/markov")
		offline := make([]bool, m)
		for t := 0; t < slots; t++ {
			for h := 0; h < m; h++ {
				r := rng.Float64()
				if offline[h] {
					if r < sc.Churn.RecoverPerSlot {
						offline[h] = false
					}
				} else if r < sc.Churn.FailPerSlot {
					offline[h] = true
				}
				if offline[h] {
					tl.setCause(t, h, CauseChurn)
				}
			}
		}
	}

	// Regional outages: deterministic geometry, no randomness.
	// CauseOutage overrides CauseChurn so correlated failures are
	// attributed to their correlated cause.
	for i := range sc.Outages {
		o := &sc.Outages[i]
		hit := hotspotsWithin(world, o.Center, o.RadiusKm)
		if len(hit) == 0 {
			continue
		}
		end := o.EndSlot
		if end > slots {
			end = slots
		}
		for t := o.StartSlot; t < end; t++ {
			for _, h := range hit {
				tl.setCause(t, h, CauseOutage)
			}
		}
	}

	// Capacity degradation: each window draws its affected set once
	// (one draw per hotspot), then scales capacities for its slots.
	for i := range sc.Degradations {
		d := &sc.Degradations[i]
		rng := stats.SplitRand(seed, fmt.Sprintf("fault/degrade/%d", i))
		affected := make([]bool, m)
		for h := 0; h < m; h++ {
			affected[h] = rng.Float64() < d.Fraction
		}
		end := d.EndSlot
		if end > slots {
			end = slots
		}
		for t := d.StartSlot; t < end; t++ {
			for h := 0; h < m; h++ {
				if !affected[h] {
					continue
				}
				if d.ServiceFactor < 1 {
					tl.serviceRow(t, world)
					tl.service[t][h] = scaleCapacity(world.Hotspots[h].ServiceCapacity, d.ServiceFactor)
				}
				if d.CacheFactor < 1 {
					tl.cacheRow(t, world)
					tl.cache[t][h] = int(scaleCapacity(int64(world.Hotspots[h].CacheCapacity), d.CacheFactor))
				}
			}
		}
	}

	// Stale/partial load reports.
	if sc.Staleness != nil {
		tl.lag = sc.Staleness.LagSlots
		if f := sc.Staleness.DropFraction; f > 0 {
			rng := stats.SplitRand(seed, "fault/drops")
			tl.drops = make([][]bool, slots)
			for t := 0; t < slots; t++ {
				row := make([]bool, m)
				any := false
				for h := 0; h < m; h++ {
					if rng.Float64() < f {
						row[h] = true
						any = true
					}
				}
				if any {
					tl.drops[t] = row
				}
			}
		}
	}
	tl.counts = countCauses(tl, world)
	return tl, nil
}

// countCauses tallies the compiled timeline's per-family fault counts.
func countCauses(tl *Timeline, world *trace.World) CauseCounts {
	var c CauseCounts
	for t := 0; t < tl.slots; t++ {
		if row := tl.Causes(t); row != nil {
			for _, cause := range row {
				switch cause {
				case CauseChurn:
					c.ChurnSlots++
				case CauseOutage:
					c.OutageSlots++
				}
			}
		}
		svc := tl.ServiceCapacities(t)
		cache := tl.CacheCapacities(t)
		if svc != nil || cache != nil {
			for h := range world.Hotspots {
				degraded := svc != nil && svc[h] < world.Hotspots[h].ServiceCapacity
				degraded = degraded || (cache != nil && cache[h] < world.Hotspots[h].CacheCapacity)
				if degraded {
					c.DegradedSlots++
				}
			}
		}
		if drops := tl.DroppedReports(t); drops != nil {
			for _, d := range drops {
				if d {
					c.DroppedReports++
				}
			}
		}
	}
	return c
}

// Counts returns the timeline's per-family fault counts. A nil timeline
// has zero counts.
func (tl *Timeline) Counts() CauseCounts {
	if tl == nil {
		return CauseCounts{}
	}
	return tl.counts
}

// Publish exports the timeline's per-family fault counts as
// fault.cause.* counters, so scenario assertions and the debug server
// can target them. All four family counters are published — zero-valued
// when the family injects nothing — whenever a timeline exists, keeping
// the counter set (and the deterministic registry snapshot) independent
// of which families happen to fire. A nil registry is a no-op.
func (tl *Timeline) Publish(reg *obs.Registry) {
	if tl == nil || reg == nil {
		return
	}
	reg.Counter("fault.cause.churn").Add(tl.counts.ChurnSlots)
	reg.Counter("fault.cause.outage").Add(tl.counts.OutageSlots)
	reg.Counter("fault.cause.degradation").Add(tl.counts.DegradedSlots)
	reg.Counter("fault.cause.stale_drops").Add(tl.counts.DroppedReports)
}

// setCause records an outage cause, letting CauseOutage override
// CauseChurn (the reverse never downgrades).
func (tl *Timeline) setCause(slot, h int, c Cause) {
	if tl.causes[slot] == nil {
		tl.causes[slot] = make([]Cause, tl.m)
	}
	if tl.causes[slot][h] == CauseOutage {
		return
	}
	tl.causes[slot][h] = c
}

// serviceRow lazily materialises the slot's effective service row from
// the nominal capacities.
func (tl *Timeline) serviceRow(slot int, world *trace.World) {
	if tl.service == nil {
		tl.service = make([][]int64, tl.slots)
	}
	if tl.service[slot] == nil {
		row := make([]int64, tl.m)
		for h := range world.Hotspots {
			row[h] = world.Hotspots[h].ServiceCapacity
		}
		tl.service[slot] = row
	}
}

// cacheRow lazily materialises the slot's effective cache row.
func (tl *Timeline) cacheRow(slot int, world *trace.World) {
	if tl.cache == nil {
		tl.cache = make([][]int, tl.slots)
	}
	if tl.cache[slot] == nil {
		row := make([]int, tl.m)
		for h := range world.Hotspots {
			row[h] = world.Hotspots[h].CacheCapacity
		}
		tl.cache[slot] = row
	}
}

// Slots returns the number of slots the timeline covers.
func (tl *Timeline) Slots() int { return tl.slots }

// Causes returns the slot's per-hotspot outage causes, or nil when the
// whole fleet is online. The returned slice is shared; do not mutate.
func (tl *Timeline) Causes(slot int) []Cause {
	if tl.causes == nil || slot < 0 || slot >= tl.slots {
		return nil
	}
	return tl.causes[slot]
}

// ServiceCapacities returns the slot's effective per-hotspot service
// capacities, or nil when nominal. Shared; do not mutate.
func (tl *Timeline) ServiceCapacities(slot int) []int64 {
	if tl.service == nil || slot < 0 || slot >= tl.slots {
		return nil
	}
	return tl.service[slot]
}

// CacheCapacities returns the slot's effective per-hotspot cache
// capacities, or nil when nominal. Shared; do not mutate.
func (tl *Timeline) CacheCapacities(slot int) []int {
	if tl.cache == nil || slot < 0 || slot >= tl.slots {
		return nil
	}
	return tl.cache[slot]
}

// ReportSlot returns the slot whose requests the scheduler's load
// report for slot actually describes (slot minus the report lag,
// clamped to 0).
func (tl *Timeline) ReportSlot(slot int) int {
	s := slot - tl.lag
	if s < 0 {
		s = 0
	}
	return s
}

// DroppedReports returns the slot's lost-report mask, or nil when every
// report arrived. Shared; do not mutate.
func (tl *Timeline) DroppedReports(slot int) []bool {
	if tl.drops == nil || slot < 0 || slot >= tl.slots {
		return nil
	}
	return tl.drops[slot]
}

// Stale reports whether the scheduler's demand view ever differs from
// the true demand (report lag or dropped reports).
func (tl *Timeline) Stale() bool { return tl.lag > 0 || tl.drops != nil }

// InjectFlashCrowds applies the scenario's flash crowds to the trace:
// within each crowd's window the TopVideos most-requested videos (ties
// broken by video id) have every request repeated Multiplier times,
// duplicates adjacent to the original so per-slot order stays
// deterministic. It returns the (possibly new) trace and the number of
// injected requests; a scenario without flash crowds returns the input
// trace untouched.
func InjectFlashCrowds(tr *trace.Trace, sc *Scenario) (*trace.Trace, int64, error) {
	if sc == nil || len(sc.FlashCrowds) == 0 {
		return tr, 0, nil
	}
	if err := sc.Validate(); err != nil {
		return nil, 0, err
	}
	var injected int64
	cur := tr
	for i := range sc.FlashCrowds {
		fc := &sc.FlashCrowds[i]
		if fc.Multiplier <= 1 || fc.TopVideos == 0 {
			continue
		}
		spiked := hottestVideos(cur, fc)
		if len(spiked) == 0 {
			continue
		}
		out := make([]trace.Request, 0, len(cur.Requests))
		nextID := maxRequestID(cur) + 1
		for _, req := range cur.Requests {
			out = append(out, req)
			if !windowContains(fc.StartSlot, fc.EndSlot, req.Slot) {
				continue
			}
			if _, hot := spiked[req.Video]; !hot {
				continue
			}
			for k := 1; k < fc.Multiplier; k++ {
				dup := req
				dup.ID = nextID
				nextID++
				out = append(out, dup)
				injected++
			}
		}
		cur = &trace.Trace{Slots: cur.Slots, Requests: out}
	}
	return cur, injected, nil
}

// hottestVideos returns the crowd window's TopVideos most-requested
// videos as a set.
func hottestVideos(tr *trace.Trace, fc *FlashCrowd) map[trace.VideoID]struct{} {
	counts := make(map[trace.VideoID]int64)
	for _, req := range tr.Requests {
		if windowContains(fc.StartSlot, fc.EndSlot, req.Slot) {
			counts[req.Video]++
		}
	}
	if len(counts) == 0 {
		return nil
	}
	type vc struct {
		v trace.VideoID
		n int64
	}
	ranked := make([]vc, 0, len(counts))
	for v, n := range counts {
		ranked = append(ranked, vc{v, n})
	}
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].n != ranked[b].n {
			return ranked[a].n > ranked[b].n
		}
		return ranked[a].v < ranked[b].v
	})
	if len(ranked) > fc.TopVideos {
		ranked = ranked[:fc.TopVideos]
	}
	out := make(map[trace.VideoID]struct{}, len(ranked))
	for _, e := range ranked {
		out[e.v] = struct{}{}
	}
	return out
}

// maxRequestID returns the largest request id in the trace (or -1).
func maxRequestID(tr *trace.Trace) int {
	maxID := -1
	for _, req := range tr.Requests {
		if req.ID > maxID {
			maxID = req.ID
		}
	}
	return maxID
}
