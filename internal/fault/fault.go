// Package fault is a deterministic fault-injection layer for the
// crowdsourced-CDN simulator. The paper's premise is that hotspots are
// unreliable consumer edge devices, yet i.i.d. per-slot churn misses
// the regimes where naive policies collapse: correlated outages, bursty
// device sessions, flash crowds, and schedulers acting on stale state.
// This package composes those failure modes on top of any world/trace
// pair:
//
//   - MarkovChurn: per-hotspot on/off Markov sessions (bursty
//     multi-slot outages rather than independent coin flips),
//   - RegionalOutage: geographically correlated failures — every
//     hotspot within a radius goes dark for a slot window,
//   - CapacityDegradation: service and/or cache capacity scaled down
//     (an overloaded or throttled device, not a dead one),
//   - FlashCrowd: demand spikes — the window's hottest videos have
//     their requests multiplied,
//   - StaleReports: the scheduler sees load reports from k slots ago
//     and/or with a fraction of hotspots' reports missing, while the
//     simulator still serves the true demand.
//
// Everything is compiled up front into a Timeline — a pure function of
// (world, slots, seed, scenario) — so injection is byte-for-byte
// deterministic and independent of how, or how concurrently, the slots
// are later scheduled. sim.Run and sim.RunParallel therefore produce
// identical metrics under any worker count for the same scenario.
package fault

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/trace"
)

// Cause labels why an injected fault took a hotspot offline for a slot.
type Cause uint8

const (
	// CauseNone means the hotspot is online (no injected outage).
	CauseNone Cause = iota
	// CauseChurn is a Markov session outage (the device left).
	CauseChurn
	// CauseOutage is a correlated regional outage.
	CauseOutage
)

// String implements fmt.Stringer.
func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseChurn:
		return "markov-churn"
	case CauseOutage:
		return "regional-outage"
	default:
		return fmt.Sprintf("cause(%d)", uint8(c))
	}
}

// MarkovChurn models bursty hotspot sessions as a per-hotspot two-state
// Markov chain evolved once per slot: an online hotspot fails with
// probability FailPerSlot, an offline one recovers with probability
// RecoverPerSlot. The steady-state offline fraction is
// Fail/(Fail+Recover), and mean outage length is 1/RecoverPerSlot slots
// — unlike i.i.d. churn, outages persist across slots.
type MarkovChurn struct {
	FailPerSlot    float64
	RecoverPerSlot float64
}

// Validate checks the chain's probabilities.
func (c *MarkovChurn) Validate() error {
	if c.FailPerSlot < 0 || c.FailPerSlot > 1 {
		return fmt.Errorf("fault: FailPerSlot %v outside [0, 1]", c.FailPerSlot)
	}
	if c.RecoverPerSlot < 0 || c.RecoverPerSlot > 1 {
		return fmt.Errorf("fault: RecoverPerSlot %v outside [0, 1]", c.RecoverPerSlot)
	}
	if c.FailPerSlot > 0 && c.RecoverPerSlot == 0 {
		return fmt.Errorf("fault: FailPerSlot %v with RecoverPerSlot 0 permanently absorbs the fleet", c.FailPerSlot)
	}
	return nil
}

// RegionalOutage takes every hotspot within RadiusKm of Center offline
// for slots in [StartSlot, EndSlot) — a neighbourhood power cut or
// backhaul failure, the correlated regime where per-device redundancy
// assumptions break.
type RegionalOutage struct {
	Center    geo.Point
	RadiusKm  float64
	StartSlot int
	EndSlot   int
}

// Validate checks the outage window and radius.
func (o *RegionalOutage) Validate() error {
	if o.RadiusKm < 0 {
		return fmt.Errorf("fault: negative outage radius %v", o.RadiusKm)
	}
	if o.StartSlot < 0 || o.EndSlot < o.StartSlot {
		return fmt.Errorf("fault: outage window [%d, %d) invalid", o.StartSlot, o.EndSlot)
	}
	return nil
}

// CapacityDegradation scales down a random Fraction of the fleet's
// capacities during [StartSlot, EndSlot): effective service capacity is
// floor(nominal*ServiceFactor) and cache capacity
// floor(nominal*CacheFactor). Factors of 1 leave the resource intact;
// 0 zeroes it while the hotspot stays "online" (it still aggregates
// demand and appears in the index, unlike an outage).
type CapacityDegradation struct {
	StartSlot     int
	EndSlot       int
	Fraction      float64
	ServiceFactor float64
	CacheFactor   float64
}

// Validate checks the degradation window, fraction, and factors.
func (d *CapacityDegradation) Validate() error {
	if d.StartSlot < 0 || d.EndSlot < d.StartSlot {
		return fmt.Errorf("fault: degradation window [%d, %d) invalid", d.StartSlot, d.EndSlot)
	}
	if d.Fraction < 0 || d.Fraction > 1 {
		return fmt.Errorf("fault: degradation fraction %v outside [0, 1]", d.Fraction)
	}
	if d.ServiceFactor < 0 || d.ServiceFactor > 1 {
		return fmt.Errorf("fault: service factor %v outside [0, 1]", d.ServiceFactor)
	}
	if d.CacheFactor < 0 || d.CacheFactor > 1 {
		return fmt.Errorf("fault: cache factor %v outside [0, 1]", d.CacheFactor)
	}
	return nil
}

// FlashCrowd multiplies demand for the hottest content of a slot
// window: the TopVideos most-requested videos within
// [StartSlot, EndSlot) have each of their requests appear Multiplier
// times in total (duplicates are inserted adjacent to the original, so
// per-slot request order stays deterministic). A viral-video spike on
// top of the trace's organic demand.
type FlashCrowd struct {
	StartSlot  int
	EndSlot    int
	TopVideos  int
	Multiplier int
}

// Validate checks the spike window and magnitude.
func (f *FlashCrowd) Validate() error {
	if f.StartSlot < 0 || f.EndSlot < f.StartSlot {
		return fmt.Errorf("fault: flash-crowd window [%d, %d) invalid", f.StartSlot, f.EndSlot)
	}
	if f.TopVideos < 0 {
		return fmt.Errorf("fault: negative TopVideos %d", f.TopVideos)
	}
	if f.Multiplier < 1 {
		return fmt.Errorf("fault: flash-crowd multiplier %d below 1", f.Multiplier)
	}
	return nil
}

// StaleReports degrades the scheduler's view of the world without
// touching the world itself: the per-slot demand handed to the policy
// is aggregated from the requests of LagSlots slots earlier (clamped to
// slot 0), and each (slot, hotspot) report is independently missing
// with probability DropFraction (the policy sees zero demand there).
// Requests are still served — and metrics accounted — against the true
// demand.
type StaleReports struct {
	LagSlots     int
	DropFraction float64
}

// Validate checks the staleness parameters.
func (s *StaleReports) Validate() error {
	if s.LagSlots < 0 {
		return fmt.Errorf("fault: negative report lag %d", s.LagSlots)
	}
	if s.DropFraction < 0 || s.DropFraction > 1 {
		return fmt.Errorf("fault: drop fraction %v outside [0, 1]", s.DropFraction)
	}
	return nil
}

// Scenario composes any subset of the failure modes. The zero value
// (and nil) injects nothing.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string

	Churn        *MarkovChurn
	Outages      []RegionalOutage
	Degradations []CapacityDegradation
	FlashCrowds  []FlashCrowd
	Staleness    *StaleReports
}

// Validate checks every component of the scenario.
func (s *Scenario) Validate() error {
	if s == nil {
		return nil
	}
	if s.Churn != nil {
		if err := s.Churn.Validate(); err != nil {
			return fmt.Errorf("churn: %w", err)
		}
	}
	for i := range s.Outages {
		if err := s.Outages[i].Validate(); err != nil {
			return fmt.Errorf("outage %d: %w", i, err)
		}
	}
	for i := range s.Degradations {
		if err := s.Degradations[i].Validate(); err != nil {
			return fmt.Errorf("degradation %d: %w", i, err)
		}
	}
	for i := range s.FlashCrowds {
		if err := s.FlashCrowds[i].Validate(); err != nil {
			return fmt.Errorf("flash crowd %d: %w", i, err)
		}
	}
	if s.Staleness != nil {
		if err := s.Staleness.Validate(); err != nil {
			return fmt.Errorf("staleness: %w", err)
		}
	}
	return nil
}

// Empty reports whether the scenario injects anything at all.
func (s *Scenario) Empty() bool {
	return s == nil || (s.Churn == nil && len(s.Outages) == 0 &&
		len(s.Degradations) == 0 && len(s.FlashCrowds) == 0 && s.Staleness == nil)
}

// scaleCapacity is the shared floor(nominal*factor) rule for degraded
// capacities.
func scaleCapacity(nominal int64, factor float64) int64 {
	if factor >= 1 {
		return nominal
	}
	if factor <= 0 {
		return 0
	}
	return int64(math.Floor(float64(nominal) * factor))
}

// windowContains reports whether slot lies in [start, end).
func windowContains(start, end, slot int) bool {
	return slot >= start && slot < end
}

// hotspotsWithin returns the (sorted) hotspot ids within radius of
// center.
func hotspotsWithin(world *trace.World, center geo.Point, radiusKm float64) []int {
	var out []int
	for h := range world.Hotspots {
		if world.Hotspots[h].Location.DistanceTo(center) <= radiusKm {
			out = append(out, h)
		}
	}
	return out
}
