package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-5); got != want {
		t.Errorf("Workers(-5) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestChunksCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 64} {
		for _, n := range []int{0, 1, 2, 5, 17, 100} {
			hits := make([]int32, n)
			Chunks(n, workers, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("workers=%d n=%d: bad range [%d, %d)", workers, n, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestStridedCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 64} {
		for _, n := range []int{0, 1, 2, 5, 17, 100} {
			hits := make([]int32, n)
			Strided(n, workers, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestChunksDisjointWrites(t *testing.T) {
	const n = 1000
	out := make([]int, n)
	Chunks(n, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = i * i
		}
	})
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}
