package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	min := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	// Positive requests are honoured up to GOMAXPROCS and clamped there:
	// extra goroutines beyond the Ps only oversubscribe the scheduler.
	for _, req := range []int{1, 2, 3, 8, 64} {
		if got, want := Workers(req), min(req, procs); got != want {
			t.Errorf("Workers(%d) = %d, want %d (GOMAXPROCS %d)", req, got, want, procs)
		}
	}
	if got := Workers(0); got != procs {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, procs)
	}
	if got := Workers(-5); got != procs {
		t.Errorf("Workers(-5) = %d, want GOMAXPROCS %d", got, procs)
	}
}

func TestChunksCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 64} {
		for _, n := range []int{0, 1, 2, 5, 17, 100} {
			hits := make([]int32, n)
			Chunks(n, workers, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("workers=%d n=%d: bad range [%d, %d)", workers, n, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestStridedCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 64} {
		for _, n := range []int{0, 1, 2, 5, 17, 100} {
			hits := make([]int32, n)
			Strided(n, workers, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestChunksDisjointWrites(t *testing.T) {
	const n = 1000
	out := make([]int, n)
	Chunks(n, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = i * i
		}
	})
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}
