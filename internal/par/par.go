// Package par provides the minimal fan-out helpers used by the
// scheduler's O(n²) hot loops. The partitions are fixed functions of
// (n, workers) — no channels, no work stealing, no locks — so every
// index is processed exactly once by exactly one goroutine and results
// written into preallocated, disjoint slice ranges are bit-identical to
// the serial path regardless of the worker count.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: positive requests are
// capped at runtime.GOMAXPROCS(0) — CPU-bound fan-out gains nothing
// from goroutines beyond the Ps available, and oversubscription
// measurably slows the scheduler's hot loops (the BENCH_7
// Schedule/workers=8 regression on smaller hosts) — and anything else
// (the zero value of a knob) selects GOMAXPROCS outright. Results
// never depend on the effective count (see the package comment), so
// the clamp cannot change a plan.
func Workers(requested int) int {
	procs := runtime.GOMAXPROCS(0)
	if requested > 0 && requested < procs {
		return requested
	}
	return procs
}

// chunksPerWorker oversplits Chunks' range so workers that draw cheap
// blocks pick up more instead of idling at the barrier: blocks are
// claimed dynamically off an atomic cursor. A small factor keeps the
// per-block claim overhead negligible while evening out systematic
// cost skew across the range.
const chunksPerWorker = 4

// Chunks partitions [0, n) into contiguous blocks (about
// chunksPerWorker per worker) and invokes fn(lo, hi) for each,
// concurrently when workers > 1. Blocks are claimed dynamically, but
// the block boundaries are a fixed function of (n, workers) and every
// index appears in exactly one block, so results written into
// preallocated disjoint ranges stay bit-identical to the serial path.
// fn must only write state disjoint across ranges (e.g. out[lo:hi]).
func Chunks(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	blocks := workers * chunksPerWorker
	if blocks > n {
		blocks = n
	}
	chunk := (n + blocks - 1) / blocks
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// Strided assigns index i to goroutine i%workers and invokes fn(i) for
// every i in [0, n), concurrently when workers > 1. Use it when the
// per-index cost varies systematically with i (e.g. triangular matrix
// rows), where contiguous chunks would load-balance badly.
func Strided(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				fn(i)
			}
		}(w)
	}
	wg.Wait()
}
