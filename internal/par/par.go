// Package par provides the minimal fan-out helpers used by the
// scheduler's O(n²) hot loops. The partitions are fixed functions of
// (n, workers) — no channels, no work stealing, no locks — so every
// index is processed exactly once by exactly one goroutine and results
// written into preallocated, disjoint slice ranges are bit-identical to
// the serial path regardless of the worker count.
package par

import (
	"runtime"
	"sync"
)

// Workers resolves a requested worker count: values > 0 are returned
// as-is, anything else (the zero value of a knob) selects
// runtime.GOMAXPROCS(0).
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// Chunks partitions [0, n) into at most workers contiguous ranges and
// invokes fn(lo, hi) for each, concurrently when workers > 1. fn must
// only write state disjoint across ranges (e.g. out[lo:hi]).
func Chunks(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Strided assigns index i to goroutine i%workers and invokes fn(i) for
// every i in [0, n), concurrently when workers > 1. Use it when the
// per-index cost varies systematically with i (e.g. triangular matrix
// rows), where contiguous chunks would load-balance badly.
func Strided(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				fn(i)
			}
		}(w)
	}
	wg.Wait()
}
