package cluster

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// matrixDist adapts a symmetric matrix to a DistFunc.
func matrixDist(m [][]float64) DistFunc {
	return func(i, j int) float64 { return m[i][j] }
}

func TestAgglomerativeErrors(t *testing.T) {
	if _, err := Agglomerative(0, func(i, j int) float64 { return 1 }, Complete); err == nil {
		t.Error("Agglomerative(n=0) succeeded")
	}
	if _, err := Agglomerative(3, func(i, j int) float64 { return 1 }, Linkage(9)); err == nil {
		t.Error("Agglomerative(bad linkage) succeeded")
	}
	if _, err := Agglomerative(2, func(i, j int) float64 { return -1 }, Complete); err == nil {
		t.Error("Agglomerative(negative distance) succeeded")
	}
	if _, err := Agglomerative(2, func(i, j int) float64 { return math.NaN() }, Complete); err == nil {
		t.Error("Agglomerative(NaN distance) succeeded")
	}
}

func TestSingleItem(t *testing.T) {
	d, err := Agglomerative(1, nil, Complete)
	if err != nil {
		t.Fatalf("Agglomerative: %v", err)
	}
	if d.NumLeaves() != 1 || len(d.Merges()) != 0 {
		t.Fatalf("unexpected dendrogram for single item: %+v", d)
	}
	groups := d.Cut(0.5)
	if len(groups) != 1 || len(groups[0]) != 1 || groups[0][0] != 0 {
		t.Errorf("Cut() = %v, want [[0]]", groups)
	}
}

func TestTwoGroupsAllLinkages(t *testing.T) {
	// Items 0,1,2 are mutually close (0.1); items 3,4 are close (0.1);
	// across groups everything is far (0.9).
	n := 5
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	set := func(i, j int, v float64) { m[i][j] = v; m[j][i] = v }
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			set(i, j, 0.9)
		}
	}
	set(0, 1, 0.1)
	set(0, 2, 0.1)
	set(1, 2, 0.1)
	set(3, 4, 0.1)

	for _, link := range []Linkage{Single, Complete, Average} {
		t.Run(link.String(), func(t *testing.T) {
			d, err := Agglomerative(n, matrixDist(m), link)
			if err != nil {
				t.Fatalf("Agglomerative: %v", err)
			}
			groups := d.Cut(0.5)
			if len(groups) != 2 {
				t.Fatalf("Cut(0.5) produced %d groups %v, want 2", len(groups), groups)
			}
			wantA := []int{0, 1, 2}
			wantB := []int{3, 4}
			if !equalIntSlices(groups[0], wantA) || !equalIntSlices(groups[1], wantB) {
				t.Errorf("Cut(0.5) = %v, want [%v %v]", groups, wantA, wantB)
			}
			// Cutting below every distance isolates all leaves.
			if got := d.Cut(0.05); len(got) != n {
				t.Errorf("Cut(0.05) produced %d groups, want %d", len(got), n)
			}
			// Cutting above every distance merges everything.
			if got := d.Cut(1.0); len(got) != 1 {
				t.Errorf("Cut(1.0) produced %d groups, want 1", len(got))
			}
		})
	}
}

func TestLinkageDifference(t *testing.T) {
	// A chain 0-1-2 with d(0,1)=d(1,2)=0.3 and d(0,2)=0.8.
	m := [][]float64{
		{0, 0.3, 0.8},
		{0.3, 0, 0.3},
		{0.8, 0.3, 0},
	}
	// Single linkage chains everything below 0.5.
	dSingle, err := Agglomerative(3, matrixDist(m), Single)
	if err != nil {
		t.Fatal(err)
	}
	if got := dSingle.Cut(0.5); len(got) != 1 {
		t.Errorf("single-linkage Cut(0.5) = %v, want one chained cluster", got)
	}
	// Complete linkage refuses to put 0 and 2 together below 0.8.
	dComplete, err := Agglomerative(3, matrixDist(m), Complete)
	if err != nil {
		t.Fatal(err)
	}
	if got := dComplete.Cut(0.5); len(got) != 2 {
		t.Errorf("complete-linkage Cut(0.5) = %v, want two clusters", got)
	}
}

func TestMergesSortedByHeight(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(20)
		m := randomMatrix(n, rng)
		for _, link := range []Linkage{Single, Complete, Average} {
			d, err := Agglomerative(n, matrixDist(m), link)
			if err != nil {
				t.Fatalf("Agglomerative: %v", err)
			}
			merges := d.Merges()
			if len(merges) != n-1 {
				t.Fatalf("%v: %d merges, want %d", link, len(merges), n-1)
			}
			for i := 1; i < len(merges); i++ {
				if merges[i].Height < merges[i-1].Height {
					t.Fatalf("%v: merges not sorted by height: %v", link, merges)
				}
			}
			if last := merges[len(merges)-1]; last.Size != n {
				t.Fatalf("%v: final merge size %d, want %d", link, last.Size, n)
			}
		}
	}
}

func TestCompleteLinkageCutProperty(t *testing.T) {
	// With complete linkage, every pair inside a threshold-cut cluster
	// is closer than the threshold — the property the paper relies on
	// ("restrict Jd between any two hotspots in the same cluster lower
	// than 0.5").
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(25)
		m := randomMatrix(n, rng)
		d, err := Agglomerative(n, matrixDist(m), Complete)
		if err != nil {
			t.Fatalf("Agglomerative: %v", err)
		}
		threshold := rng.Float64()
		for _, group := range d.Cut(threshold) {
			for a := 0; a < len(group); a++ {
				for b := a + 1; b < len(group); b++ {
					if m[group[a]][group[b]] > threshold {
						t.Fatalf("trial %d: items %d,%d at distance %v share a cluster cut at %v",
							trial, group[a], group[b], m[group[a]][group[b]], threshold)
					}
				}
			}
		}
	}
}

func TestCutPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(30)
		m := randomMatrix(n, rng)
		for _, link := range []Linkage{Single, Complete, Average} {
			d, err := Agglomerative(n, matrixDist(m), link)
			if err != nil {
				t.Fatal(err)
			}
			seen := make(map[int]bool)
			for _, g := range d.Cut(rng.Float64()) {
				for _, leaf := range g {
					if seen[leaf] {
						t.Fatalf("leaf %d appears in two clusters", leaf)
					}
					seen[leaf] = true
				}
			}
			if len(seen) != n {
				t.Fatalf("cut covers %d leaves, want %d", len(seen), n)
			}
		}
	}
}

func TestCutK(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 12
	m := randomMatrix(n, rng)
	d, err := Agglomerative(n, matrixDist(m), Average)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= n; k++ {
		groups, err := d.CutK(k)
		if err != nil {
			t.Fatalf("CutK(%d): %v", k, err)
		}
		if len(groups) != k {
			t.Errorf("CutK(%d) produced %d groups", k, len(groups))
		}
	}
	if _, err := d.CutK(0); err == nil {
		t.Error("CutK(0) succeeded")
	}
	if _, err := d.CutK(n + 1); err == nil {
		t.Error("CutK(n+1) succeeded")
	}
}

func TestLinkageString(t *testing.T) {
	if Single.String() != "single" || Complete.String() != "complete" || Average.String() != "average" {
		t.Error("Linkage.String() unexpected values")
	}
	if Linkage(42).String() == "" {
		t.Error("unknown Linkage.String() empty")
	}
}

func randomMatrix(n int, rng *rand.Rand) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := rng.Float64()
			m[i][j] = v
			m[j][i] = v
		}
	}
	return m
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAgglomerativeMatrixMatchesAgglomerative asserts the precomputed-
// matrix entry point is a drop-in: same distances, same dendrogram,
// for every linkage — and that the caller's matrix is not mutated.
func TestAgglomerativeMatrixMatchesAgglomerative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 20
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := rng.Float64()
			m[i][j] = v
			m[j][i] = v
		}
	}
	orig := make([][]float64, n)
	for i := range m {
		orig[i] = append([]float64(nil), m[i]...)
	}

	for _, link := range []Linkage{Single, Complete, Average} {
		want, err := Agglomerative(n, matrixDist(m), link)
		if err != nil {
			t.Fatalf("%v: Agglomerative: %v", link, err)
		}
		got, err := AgglomerativeMatrix(m, link)
		if err != nil {
			t.Fatalf("%v: AgglomerativeMatrix: %v", link, err)
		}
		if !reflect.DeepEqual(want.Merges(), got.Merges()) {
			t.Errorf("%v: dendrograms differ:\n%+v\nvs\n%+v", link, want.Merges(), got.Merges())
		}
	}
	if !reflect.DeepEqual(m, orig) {
		t.Error("AgglomerativeMatrix mutated the caller's matrix")
	}
}

func TestAgglomerativeMatrixErrors(t *testing.T) {
	if _, err := AgglomerativeMatrix(nil, Complete); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := AgglomerativeMatrix([][]float64{{0, 1}, {1}}, Complete); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := AgglomerativeMatrix([][]float64{{0, -1}, {-1, 0}}, Complete); err == nil {
		t.Error("negative distance accepted")
	}
	if _, err := AgglomerativeMatrix([][]float64{{0, math.NaN()}, {math.NaN(), 0}}, Complete); err == nil {
		t.Error("NaN distance accepted")
	}
	if _, err := AgglomerativeMatrix([][]float64{{0, 1}, {1, 0}}, Linkage(9)); err == nil {
		t.Error("bad linkage accepted")
	}
	d, err := AgglomerativeMatrix([][]float64{{0}}, Complete)
	if err != nil || d.NumLeaves() != 1 {
		t.Errorf("single-item matrix: %v, %v", d, err)
	}
}
