// Package cluster implements agglomerative hierarchical clustering
// (Johnson 1967, the paper's reference [18]) with single, complete, and
// average linkage, using the nearest-neighbour-chain algorithm for
// O(n^2) time on reducible linkages.
//
// RBCAer clusters content hotspots by the content-aware distance
// Jd(i,j) = 1 - Jaccard(top-20% sets) and cuts the dendrogram at 0.5 so
// that hotspots in one cluster request similar content (paper
// Sec. IV-B).
package cluster

import (
	"fmt"
	"math"
	"sort"
)

// Linkage selects how inter-cluster distance is derived when clusters
// merge.
type Linkage int

const (
	// Single linkage: distance between clusters is the minimum pairwise
	// distance.
	Single Linkage = iota + 1
	// Complete linkage: maximum pairwise distance. With a threshold cut
	// at h, every intra-cluster pair is guaranteed closer than h — the
	// property the paper requires ("restrict Jd between any two
	// hotspots in the same cluster lower than 0.5").
	Complete
	// Average linkage (UPGMA): size-weighted mean pairwise distance.
	Average
)

// String implements fmt.Stringer.
func (l Linkage) String() string {
	switch l {
	case Single:
		return "single"
	case Complete:
		return "complete"
	case Average:
		return "average"
	default:
		return fmt.Sprintf("linkage(%d)", int(l))
	}
}

// Merge records one dendrogram join. Cluster identifiers are 0..n-1 for
// leaves and n+k for the cluster created by the k-th merge.
type Merge struct {
	A, B   int     // clusters joined (A < B)
	Height float64 // linkage distance at which they joined
	Size   int     // total leaves in the merged cluster
}

// Dendrogram is the result of hierarchical clustering over n items.
type Dendrogram struct {
	n      int
	merges []Merge
}

// NumLeaves returns the number of clustered items.
func (d *Dendrogram) NumLeaves() int { return d.n }

// Merges returns the merge sequence, ordered by ascending height.
func (d *Dendrogram) Merges() []Merge {
	out := make([]Merge, len(d.merges))
	copy(out, d.merges)
	return out
}

// DistFunc returns the dissimilarity between items i and j. It must be
// symmetric and non-negative; it is called once per unordered pair.
type DistFunc func(i, j int) float64

// Agglomerative clusters n items under the given linkage using the
// nearest-neighbour-chain algorithm. n must be positive; distances must
// be finite and non-negative.
func Agglomerative(n int, dist DistFunc, link Linkage) (*Dendrogram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: non-positive item count %d", n)
	}
	switch link {
	case Single, Complete, Average:
	default:
		return nil, fmt.Errorf("cluster: unknown linkage %v", link)
	}
	if n == 1 {
		return &Dendrogram{n: 1}, nil
	}

	// Condensed distance matrix between active clusters, indexed by
	// slot (0..n-1 initially; merged clusters reuse a slot).
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := dist(i, j)
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return nil, fmt.Errorf("cluster: invalid distance %v between %d and %d", v, i, j)
			}
			d[i][j] = v
			d[j][i] = v
		}
	}
	return agglomerate(n, d, link)
}

// AgglomerativeMatrix clusters the n items whose pairwise distances
// were precomputed into the n×n matrix dist — typically filled in
// parallel (similarity.DistanceMatrix) so the O(n²) distance
// evaluations come off the clustering hot path. The matrix must be
// symmetric with finite, non-negative entries; only the upper triangle
// is read and dist is left unmodified. The result is identical to
// Agglomerative over the same distances.
func AgglomerativeMatrix(dist [][]float64, link Linkage) (*Dendrogram, error) {
	n := len(dist)
	if n == 0 {
		return nil, fmt.Errorf("cluster: empty distance matrix")
	}
	switch link {
	case Single, Complete, Average:
	default:
		return nil, fmt.Errorf("cluster: unknown linkage %v", link)
	}
	if n == 1 {
		return &Dendrogram{n: 1}, nil
	}
	d := make([][]float64, n)
	for i := range d {
		if len(dist[i]) != n {
			return nil, fmt.Errorf("cluster: distance matrix row %d has %d entries, want %d", i, len(dist[i]), n)
		}
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := dist[i][j]
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return nil, fmt.Errorf("cluster: invalid distance %v between %d and %d", v, i, j)
			}
			d[i][j] = v
			d[j][i] = v
		}
	}
	return agglomerate(n, d, link)
}

// agglomerate runs the nearest-neighbour-chain algorithm over a
// symmetric distance matrix it may freely mutate.
func agglomerate(n int, d [][]float64, link Linkage) (*Dendrogram, error) {
	active := make([]bool, n)
	size := make([]int, n)
	clusterID := make([]int, n) // slot -> current dendrogram cluster id
	for i := 0; i < n; i++ {
		active[i] = true
		size[i] = 1
		clusterID[i] = i
	}

	merges := make([]Merge, 0, n-1)
	nextID := n
	chain := make([]int, 0, n)
	remaining := n

	for remaining > 1 {
		if len(chain) == 0 {
			for s := 0; s < n; s++ {
				if active[s] {
					chain = append(chain, s)
					break
				}
			}
		}
		top := chain[len(chain)-1]
		// Nearest active neighbour of top (smallest slot on ties, but
		// prefer the chain predecessor so reciprocal pairs terminate).
		var prev = -1
		if len(chain) >= 2 {
			prev = chain[len(chain)-2]
		}
		nn := -1
		best := math.Inf(1)
		for s := 0; s < n; s++ {
			if !active[s] || s == top {
				continue
			}
			v := d[top][s]
			if v < best || (v == best && s == prev) {
				best = v
				nn = s
			}
		}
		if nn == prev && prev >= 0 {
			// Reciprocal nearest neighbours: merge top and prev.
			chain = chain[:len(chain)-2]
			a, b := prev, top
			mergeHeight := best
			// Lance-Williams update into slot a.
			for s := 0; s < n; s++ {
				if !active[s] || s == a || s == b {
					continue
				}
				var nv float64
				switch link {
				case Single:
					nv = math.Min(d[a][s], d[b][s])
				case Complete:
					nv = math.Max(d[a][s], d[b][s])
				case Average:
					na, nb := float64(size[a]), float64(size[b])
					nv = (na*d[a][s] + nb*d[b][s]) / (na + nb)
				}
				d[a][s] = nv
				d[s][a] = nv
			}
			idA, idB := clusterID[a], clusterID[b]
			if idA > idB {
				idA, idB = idB, idA
			}
			merges = append(merges, Merge{
				A:      idA,
				B:      idB,
				Height: mergeHeight,
				Size:   size[a] + size[b],
			})
			size[a] += size[b]
			active[b] = false
			clusterID[a] = nextID
			nextID++
			remaining--
		} else {
			chain = append(chain, nn)
		}
	}

	// NN-chain emits merges in chain order, not height order. Re-sort
	// by height so threshold cuts are well-defined, then renumber
	// internal cluster ids to match the new order. For the monotone
	// linkages supported here a child merge never has greater height
	// than its parent, so a stable sort keeps children before parents.
	order := make([]int, len(merges))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return merges[order[i]].Height < merges[order[j]].Height
	})
	remap := make(map[int]int, len(merges))
	sorted := make([]Merge, len(merges))
	for newIdx, origIdx := range order {
		remap[n+origIdx] = n + newIdx
	}
	mapID := func(id int) int {
		if id < n {
			return id
		}
		return remap[id]
	}
	for newIdx, origIdx := range order {
		m := merges[origIdx]
		a, b := mapID(m.A), mapID(m.B)
		if a > b {
			a, b = b, a
		}
		sorted[newIdx] = Merge{A: a, B: b, Height: m.Height, Size: m.Size}
	}
	return &Dendrogram{n: n, merges: sorted}, nil
}

// Cut returns the clusters obtained by applying every merge with
// height <= threshold, as slices of leaf indexes. Each leaf appears in
// exactly one cluster; clusters are ordered by their smallest leaf and
// leaves within a cluster are ascending.
func (d *Dendrogram) Cut(threshold float64) [][]int {
	uf := newUnionFind(d.n)
	// Merge identifiers above n refer to previous merges; with merges
	// sorted by height, union the two leaf-set representatives.
	leafOf := make(map[int]int, d.n+len(d.merges)) // cluster id -> any leaf
	for i := 0; i < d.n; i++ {
		leafOf[i] = i
	}
	nextID := d.n
	for _, m := range d.merges {
		la, okA := leafOf[m.A]
		lb, okB := leafOf[m.B]
		if !okA || !okB {
			// Height-sorted order can reference a merge that sorted
			// later; fall back to scanning (cannot happen for
			// monotone linkages, defensive for exotic inputs).
			continue
		}
		id := nextID
		nextID++
		leafOf[id] = la
		if m.Height <= threshold {
			uf.union(la, lb)
		} else {
			// Still track representative for parents; use la.
			_ = lb
		}
	}
	return uf.groups()
}

// CutK returns exactly k clusters (1 <= k <= n) by applying the n-k
// lowest merges.
func (d *Dendrogram) CutK(k int) ([][]int, error) {
	if k < 1 || k > d.n {
		return nil, fmt.Errorf("cluster: k %d outside [1, %d]", k, d.n)
	}
	uf := newUnionFind(d.n)
	leafOf := make(map[int]int, d.n+len(d.merges))
	for i := 0; i < d.n; i++ {
		leafOf[i] = i
	}
	nextID := d.n
	applied := 0
	for _, m := range d.merges {
		la := leafOf[m.A]
		lb := leafOf[m.B]
		id := nextID
		nextID++
		leafOf[id] = la
		if applied < d.n-k {
			uf.union(la, lb)
			applied++
		}
	}
	return uf.groups(), nil
}

type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
}

func (uf *unionFind) groups() [][]int {
	byRoot := make(map[int][]int)
	for i := range uf.parent {
		r := uf.find(i)
		byRoot[r] = append(byRoot[r], i)
	}
	out := make([][]int, 0, len(byRoot))
	for _, g := range byRoot {
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
