package scheme

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// RBCAer adapts the core scheduler (Algorithm 1 + Procedure 1) to the
// simulator: it runs a scheduling round on the slot's aggregated
// demand, then materialises the plan's per-video redirects into
// per-request targets.
type RBCAer struct {
	// Params are forwarded to core.New; the zero value selects
	// core.DefaultParams.
	Params core.Params

	// sched caches the core scheduler across slots for one world.
	sched *core.Scheduler
}

var _ sim.Scheduler = (*RBCAer)(nil)

// NewRBCAer returns the policy with the given parameters.
func NewRBCAer(params core.Params) *RBCAer {
	return &RBCAer{Params: params}
}

// Name implements sim.Scheduler.
func (p *RBCAer) Name() string { return "RBCAer" }

// Schedule implements sim.Scheduler.
func (p *RBCAer) Schedule(ctx *sim.SlotContext) (*sim.Assignment, error) {
	if ctx == nil {
		return nil, fmt.Errorf("scheme: nil context")
	}
	if p.Params == (core.Params{}) {
		p.Params = core.DefaultParams()
	}
	if p.sched == nil || p.sched.World() != ctx.World {
		sched, err := core.New(ctx.World, p.Params)
		if err != nil {
			return nil, fmt.Errorf("scheme: building RBCAer: %w", err)
		}
		p.sched = sched
	}

	plan, err := p.sched.ScheduleRound(ctx.Demand, core.Constraints{
		Service: ctx.EffectiveCapacity(),
		Cache:   ctx.EffectiveCacheCapacity(),
	})
	if err != nil {
		return nil, fmt.Errorf("scheme: RBCAer scheduling: %w", err)
	}
	asg, err := MaterializePlan(ctx, plan)
	if err != nil {
		return nil, err
	}
	asg.Degraded = plan.Degraded
	asg.StrandedDemand = plan.Stats.StrandedToCDN
	asg.Phases = plan.Stats.Phases
	asg.Events = plan.Events
	asg.Plan = plan
	return asg, nil
}

// MaterializePlan converts a core.Plan into per-request targets:
// redirected (hotspot, video) demand is sent to the plan's targets, the
// rest is served locally while the local service budget (capacity minus
// reserved inflow) lasts, and everything else goes to the CDN. It is
// exported so experiments can route a plan produced outside the policy
// (e.g. from predicted demand).
func MaterializePlan(ctx *sim.SlotContext, plan *core.Plan) (*sim.Assignment, error) {
	m := len(ctx.World.Hotspots)

	// Redirect queues keyed by (source hotspot, video), and the inflow
	// each target must reserve capacity for.
	type redirectQueue struct {
		targets []int
		counts  []int64
	}
	queues := make(map[int64]*redirectQueue)
	inflow := make([]int64, m)
	key := func(h int, v trace.VideoID) int64 {
		return int64(h)*int64(ctx.World.NumVideos) + int64(v)
	}
	for _, rd := range plan.Redirects {
		k := key(int(rd.From), rd.Video)
		q := queues[k]
		if q == nil {
			q = &redirectQueue{}
			queues[k] = q
		}
		q.targets = append(q.targets, int(rd.To))
		q.counts = append(q.counts, rd.Count)
		inflow[rd.To] += rd.Count
	}

	capacity := ctx.EffectiveCapacity()
	localBudget := make([]int64, m)
	for h := 0; h < m; h++ {
		localBudget[h] = capacity[h] - inflow[h]
		if localBudget[h] < 0 {
			return nil, fmt.Errorf("scheme: plan reserves %d inflow at hotspot %d beyond capacity %d",
				inflow[h], h, capacity[h])
		}
	}

	targets := make([]int, len(ctx.Requests))
	for r, req := range ctx.Requests {
		h := ctx.Nearest[r]
		if q, ok := queues[key(h, req.Video)]; ok && len(q.targets) > 0 {
			j := q.targets[0]
			targets[r] = j
			q.counts[0]--
			if q.counts[0] == 0 {
				q.targets = q.targets[1:]
				q.counts = q.counts[1:]
			}
			continue
		}
		if localBudget[h] > 0 && plan.Placement[h].Contains(int(req.Video)) {
			targets[r] = h
			localBudget[h]--
			continue
		}
		targets[r] = sim.CDN
	}
	return &sim.Assignment{Placement: plan.Placement, Target: targets}, nil
}
