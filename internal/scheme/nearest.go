// Package scheme implements the request-redirection policies compared
// in the paper's evaluation: the Nearest and (local) Random baselines,
// the RBCAer policy built on internal/core, and the LP-relaxation
// scheme used in the running-time comparison. All satisfy
// sim.Scheduler.
package scheme

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/similarity"
)

// Nearest routes every request to its nearest hotspot; each hotspot
// independently caches its most locally popular videos up to its cache
// capacity (the paper's Nearest scheme).
type Nearest struct{}

var _ sim.Scheduler = Nearest{}

// Name implements sim.Scheduler.
func (Nearest) Name() string { return "Nearest" }

// Schedule implements sim.Scheduler.
func (Nearest) Schedule(ctx *sim.SlotContext) (*sim.Assignment, error) {
	if ctx == nil {
		return nil, fmt.Errorf("scheme: nil context")
	}
	m := len(ctx.World.Hotspots)
	cache := ctx.EffectiveCacheCapacity()
	placement := make([]similarity.Set, m)
	for h := 0; h < m; h++ {
		placement[h] = topLocal(ctx.Demand.VideoCounts(h), cache[h])
	}
	targets := make([]int, len(ctx.Requests))
	copy(targets, ctx.Nearest)
	return &sim.Assignment{Placement: placement, Target: targets}, nil
}

// topLocal returns the up-to-limit most demanded videos.
func topLocal(counts map[int]int64, limit int) similarity.Set {
	if limit <= 0 || len(counts) == 0 {
		return similarity.Set{}
	}
	ranked := similarity.RankedIDs(counts)
	if len(ranked) > limit {
		ranked = ranked[:limit]
	}
	return similarity.NewSet(ranked...)
}

// videoCount pairs a video id with a demand count.
type videoCount struct {
	id int
	n  int64
}

// topLocalPairs is topLocal over a pair slice, avoiding map overhead on
// hot paths. The input slice is reordered.
func topLocalPairs(pairs []videoCount, limit int) similarity.Set {
	if limit <= 0 || len(pairs) == 0 {
		return similarity.Set{}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].n != pairs[b].n {
			return pairs[a].n > pairs[b].n
		}
		return pairs[a].id < pairs[b].id
	})
	if len(pairs) > limit {
		pairs = pairs[:limit]
	}
	out := make(similarity.Set, len(pairs))
	for _, p := range pairs {
		out.Add(p.id)
	}
	return out
}
