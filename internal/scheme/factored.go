package scheme

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/trace"
)

// FactoredPredicted schedules on factored forecast demand: per-hotspot
// *total* volume is forecast as a dense time series (diurnal, hence
// predictable), and spread over videos according to the hotspot's
// exponentially-smoothed popularity distribution. This fixes the
// failure mode of direct per-(hotspot, video) forecasting — those
// series are so sparse that EWMA/AR/seasonal methods all collapse (see
// the abl-prediction experiment) — and is how the paper's "popularity
// changes slowly and can be learned" assumption becomes operational.
type FactoredPredicted struct {
	// Inner is the wrapped policy (typically *RBCAer).
	Inner sim.Scheduler
	// TotalMethod forecasts per-hotspot totals; nil selects
	// predict.Seasonal{Period: 24}.
	TotalMethod predict.Method
	// ShareDecay is the exponential-smoothing factor of the per-hotspot
	// video-share distribution in (0, 1]; 0 selects 0.3.
	ShareDecay float64

	world  *trace.World
	totals *predict.Forecaster
	shares []map[trace.VideoID]float64
}

var _ sim.Scheduler = (*FactoredPredicted)(nil)

// NewFactoredPredicted wraps inner with factored demand forecasting.
func NewFactoredPredicted(inner sim.Scheduler) *FactoredPredicted {
	return &FactoredPredicted{Inner: inner}
}

// Name implements sim.Scheduler.
func (p *FactoredPredicted) Name() string {
	method := p.TotalMethod
	if method == nil {
		method = predict.Seasonal{Period: 24}
	}
	return fmt.Sprintf("%s+factored(%s)", p.Inner.Name(), method.Name())
}

// Schedule implements sim.Scheduler.
func (p *FactoredPredicted) Schedule(ctx *sim.SlotContext) (*sim.Assignment, error) {
	if ctx == nil {
		return nil, fmt.Errorf("scheme: nil context")
	}
	if p.Inner == nil {
		return nil, fmt.Errorf("scheme: FactoredPredicted needs an inner policy")
	}
	if p.world != ctx.World {
		method := p.TotalMethod
		if method == nil {
			method = predict.Seasonal{Period: 24}
		}
		totals, err := predict.NewForecaster(method, 0)
		if err != nil {
			return nil, fmt.Errorf("scheme: building total forecaster: %w", err)
		}
		p.totals = totals
		p.shares = make([]map[trace.VideoID]float64, len(ctx.World.Hotspots))
		p.world = ctx.World
	}
	decay := p.ShareDecay
	if decay <= 0 || decay > 1 {
		decay = 0.3
	}
	m := len(ctx.World.Hotspots)

	// Forecast this slot from past slots; the cold-start slot falls
	// back to the oracle demand.
	predictedTotals := p.totals.Forecast()
	predicted := ctx.Demand
	if len(predictedTotals) > 0 {
		predicted = core.NewDemand(m)
		for h := 0; h < m; h++ {
			total := predictedTotals[h]
			if total <= 0 || len(p.shares[h]) == 0 {
				continue
			}
			spreadDemand(predicted, h, total, p.shares[h])
		}
	}

	// Learn from the true demand for future slots.
	observedTotals := make(map[int]int64, m)
	for h := 0; h < m; h++ {
		observedTotals[h] = ctx.Demand.Totals[h]
		if p.shares[h] == nil {
			p.shares[h] = make(map[trace.VideoID]float64)
		}
		// Exponential smoothing of the share distribution: decay old
		// mass, add this slot's counts.
		for v := range p.shares[h] {
			p.shares[h][v] *= 1 - decay
			if p.shares[h][v] < 1e-3 {
				delete(p.shares[h], v)
			}
		}
		for v, n := range ctx.Demand.PerVideo[h] {
			p.shares[h][v] += decay * float64(n)
		}
	}
	p.totals.Observe(observedTotals)

	innerCtx := *ctx
	innerCtx.Demand = predicted
	return p.Inner.Schedule(&innerCtx)
}

// spreadDemand distributes `total` units over videos proportionally to
// their smoothed shares, largest-remainder style: whole units by floor,
// leftovers to the largest fractional parts.
func spreadDemand(d *core.Demand, h int, total int64, shares map[trace.VideoID]float64) {
	var sum float64
	for _, w := range shares {
		sum += w
	}
	if sum <= 0 {
		return
	}
	type alloc struct {
		v     trace.VideoID
		whole int64
		frac  float64
	}
	allocs := make([]alloc, 0, len(shares))
	var assigned int64
	for v, w := range shares {
		exact := float64(total) * w / sum
		whole := int64(exact)
		allocs = append(allocs, alloc{v: v, whole: whole, frac: exact - float64(whole)})
		assigned += whole
	}
	sort.Slice(allocs, func(a, b int) bool {
		if allocs[a].frac != allocs[b].frac {
			return allocs[a].frac > allocs[b].frac
		}
		return allocs[a].v < allocs[b].v
	})
	leftover := total - assigned
	for i := range allocs {
		n := allocs[i].whole
		if leftover > 0 {
			n++
			leftover--
		}
		if n > 0 {
			d.Add(trace.HotspotID(h), allocs[i].v, n)
		}
	}
}
