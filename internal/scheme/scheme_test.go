package scheme

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// buildContext generates a small calibrated world and packages slot 0
// as a scheduling context.
func buildContext(t *testing.T, mutate func(*trace.Config)) (*sim.SlotContext, *trace.World, *trace.Trace) {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.NumHotspots = 40
	cfg.NumVideos = 1500
	cfg.NumUsers = 2500
	cfg.NumRequests = 2600
	cfg.NumRegions = 6
	if mutate != nil {
		mutate(&cfg)
	}
	world, tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	index, err := world.Index()
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := sim.BuildSlotContext(world, index, 0, tr.BySlot()[0], stats.SplitRand(1, "scheme-test"))
	if err != nil {
		t.Fatal(err)
	}
	return ctx, world, tr
}

func TestNearestTargetsAndPlacement(t *testing.T) {
	ctx, world, _ := buildContext(t, nil)
	asg, err := (Nearest{}).Schedule(ctx)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	for r, target := range asg.Target {
		if target != ctx.Nearest[r] {
			t.Fatalf("request %d targeted %d, want nearest %d", r, target, ctx.Nearest[r])
		}
	}
	for h, placement := range asg.Placement {
		if placement.Len() > world.Hotspots[h].CacheCapacity {
			t.Fatalf("hotspot %d placement %d exceeds cache", h, placement.Len())
		}
		// Every placed video must have local demand.
		for v := range placement {
			if ctx.Demand.PerVideo[h][trace.VideoID(v)] == 0 {
				t.Fatalf("hotspot %d cached video %d with no local demand", h, v)
			}
		}
	}
	if (Nearest{}).Name() != "Nearest" {
		t.Error("Name() wrong")
	}
}

func TestNearestNilContext(t *testing.T) {
	if _, err := (Nearest{}).Schedule(nil); err == nil {
		t.Error("Schedule(nil) succeeded")
	}
}

func TestRandomTargetsHoldVideoWithinRadius(t *testing.T) {
	ctx, world, _ := buildContext(t, nil)
	policy := Random{RadiusKm: 1.5}
	asg, err := policy.Schedule(ctx)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	for r, target := range asg.Target {
		if target == sim.CDN {
			continue
		}
		if !asg.Placement[target].Contains(int(ctx.Requests[r].Video)) {
			t.Fatalf("request %d routed to hotspot %d lacking its video", r, target)
		}
		agg := world.Hotspots[ctx.Nearest[r]].Location
		if d := agg.DistanceTo(world.Hotspots[target].Location); d > 1.5 {
			t.Fatalf("request %d routed %.2f km from its aggregation hotspot (> radius)", r, d)
		}
	}
	if policy.Name() != "Random(1.5km)" {
		t.Errorf("Name() = %q", policy.Name())
	}
}

func TestRandomInvalidRadius(t *testing.T) {
	ctx, _, _ := buildContext(t, nil)
	if _, err := (Random{}).Schedule(ctx); err == nil {
		t.Error("Schedule with zero radius succeeded")
	}
	if _, err := (Random{RadiusKm: 1}).Schedule(nil); err == nil {
		t.Error("Schedule(nil) succeeded")
	}
}

func TestRBCAerFeasibleAndBetterThanNearest(t *testing.T) {
	_, world, tr := buildContext(t, nil)
	rb, err := sim.Run(world, tr, NewRBCAer(core.DefaultParams()), sim.Options{Seed: 1})
	if err != nil {
		t.Fatalf("Run(RBCAer): %v", err)
	}
	// RBCAer plans must be exactly feasible: the simulator never bounces
	// one of its targets.
	if rb.Infeasible != 0 {
		t.Errorf("RBCAer produced %d infeasible targets", rb.Infeasible)
	}
	near, err := sim.Run(world, tr, Nearest{}, sim.Options{Seed: 1})
	if err != nil {
		t.Fatalf("Run(Nearest): %v", err)
	}
	if rb.HotspotServingRatio < near.HotspotServingRatio {
		t.Errorf("RBCAer serving ratio %.3f below Nearest %.3f",
			rb.HotspotServingRatio, near.HotspotServingRatio)
	}
	if rb.AvgAccessDistanceKm > near.AvgAccessDistanceKm {
		t.Errorf("RBCAer distance %.3f above Nearest %.3f",
			rb.AvgAccessDistanceKm, near.AvgAccessDistanceKm)
	}
}

func TestRBCAerZeroParamsDefaulted(t *testing.T) {
	ctx, _, _ := buildContext(t, nil)
	policy := &RBCAer{}
	if _, err := policy.Schedule(ctx); err != nil {
		t.Fatalf("Schedule with zero params: %v", err)
	}
	if policy.Name() != "RBCAer" {
		t.Error("Name() wrong")
	}
	if _, err := policy.Schedule(nil); err == nil {
		t.Error("Schedule(nil) succeeded")
	}
}

func TestLPBasedProducesValidAssignment(t *testing.T) {
	ctx, world, tr := buildContext(t, func(c *trace.Config) {
		c.NumHotspots = 20
		c.NumVideos = 400
		c.NumUsers = 800
		c.NumRequests = 700
	})
	_ = ctx
	m, err := sim.Run(world, tr, LPBased{MaxGroups: 25, MaxCandidates: 4}, sim.Options{Seed: 1})
	if err != nil {
		t.Fatalf("Run(LPBased): %v", err)
	}
	if m.TotalRequests == 0 || m.HotspotServingRatio < 0 || m.HotspotServingRatio > 1 {
		t.Errorf("implausible metrics: %+v", m)
	}
	if (LPBased{}).Name() != "LP-based" {
		t.Error("Name() wrong")
	}
	if _, err := (LPBased{}).Schedule(nil); err == nil {
		t.Error("Schedule(nil) succeeded")
	}
	bad := LPBased{MaxGroups: -1}
	if _, err := bad.Schedule(ctx); err == nil {
		t.Error("Schedule with negative MaxGroups succeeded")
	}
}

func TestPredictedWrapsInner(t *testing.T) {
	_, world, tr := buildContext(t, func(c *trace.Config) {
		c.Slots = 6
		c.NumRequests = 6000
	})
	inner := NewRBCAer(core.DefaultParams())
	policy := &Predicted{Inner: inner}
	m, err := sim.Run(world, tr, policy, sim.Options{Seed: 1})
	if err != nil {
		t.Fatalf("Run(Predicted): %v", err)
	}
	if m.TotalRequests == 0 {
		t.Error("nothing simulated")
	}
	if policy.Name() != "RBCAer+ewma(0.50)" {
		t.Errorf("Name() = %q", policy.Name())
	}
	if _, err := (&Predicted{}).Schedule(nil); err == nil {
		t.Error("Schedule(nil) succeeded")
	}
	ctx, _, _ := buildContext(t, nil)
	if _, err := (&Predicted{}).Schedule(ctx); err == nil {
		t.Error("Schedule without inner succeeded")
	}
}

func TestMaterializePlanHonoursRedirects(t *testing.T) {
	ctx, world, _ := buildContext(t, nil)
	sched, err := core.New(world, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sched.Schedule(ctx.Demand)
	if err != nil {
		t.Fatal(err)
	}
	asg, err := MaterializePlan(ctx, plan)
	if err != nil {
		t.Fatalf("MaterializePlan: %v", err)
	}
	// Count materialised redirects: requests whose target differs from
	// their aggregation hotspot (and is not the CDN).
	var redirected int64
	for r, target := range asg.Target {
		if target != sim.CDN && target != ctx.Nearest[r] {
			redirected++
		}
	}
	var planned int64
	for _, rd := range plan.Redirects {
		planned += rd.Count
	}
	if redirected != planned {
		t.Errorf("materialised %d redirects, plan has %d", redirected, planned)
	}
}

func TestLPBasedDantzigPricing(t *testing.T) {
	ctx, _, _ := buildContext(t, func(c *trace.Config) {
		c.NumHotspots = 20
		c.NumVideos = 400
		c.NumUsers = 800
		c.NumRequests = 700
	})
	bland, err := (LPBased{MaxGroups: 25, MaxCandidates: 4}).Schedule(ctx)
	if err != nil {
		t.Fatalf("bland: %v", err)
	}
	dantzig, err := (LPBased{MaxGroups: 25, MaxCandidates: 4, Dantzig: true}).Schedule(ctx)
	if err != nil {
		t.Fatalf("dantzig: %v", err)
	}
	// Both pricings solve the same LP; the resulting assignments must
	// serve the same requests from hotspots (degenerate optima may
	// differ in which hotspot, not in whether).
	if len(bland.Target) != len(dantzig.Target) {
		t.Fatal("assignment sizes differ")
	}
}
