package scheme

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Predicted wraps a policy so it schedules on forecast demand instead
// of the oracle per-slot demand, modelling the paper's assumption that
// popularity "can be learned through some popularity prediction
// algorithm". Each slot, the wrapper feeds the inner policy the
// forecaster's per-(hotspot, video) prediction, then lets the simulator
// serve the real requests against the resulting placement and routing.
type Predicted struct {
	// Inner is the wrapped policy (typically *RBCAer).
	Inner sim.Scheduler
	// Method is the forecasting method; nil selects predict.EWMA{0.5}.
	Method predict.Method
	// Window bounds per-key history length (0 = unbounded).
	Window int

	fc    *predict.Forecaster
	world *trace.World
}

var _ sim.Scheduler = (*Predicted)(nil)

// Name implements sim.Scheduler.
func (p *Predicted) Name() string {
	method := p.Method
	if method == nil {
		method = predict.EWMA{Alpha: 0.5}
	}
	return fmt.Sprintf("%s+%s", p.Inner.Name(), method.Name())
}

// Schedule implements sim.Scheduler.
func (p *Predicted) Schedule(ctx *sim.SlotContext) (*sim.Assignment, error) {
	if ctx == nil {
		return nil, fmt.Errorf("scheme: nil context")
	}
	if p.Inner == nil {
		return nil, fmt.Errorf("scheme: Predicted needs an inner policy")
	}
	if p.fc == nil || p.world != ctx.World {
		method := p.Method
		if method == nil {
			method = predict.EWMA{Alpha: 0.5}
		}
		fc, err := predict.NewForecaster(method, p.Window)
		if err != nil {
			return nil, fmt.Errorf("scheme: building forecaster: %w", err)
		}
		p.fc = fc
		p.world = ctx.World
	}

	numVideos := ctx.World.NumVideos
	key := func(h int, v trace.VideoID) int {
		return h*numVideos + int(v)
	}

	// Forecast this slot from past slots, falling back to the oracle
	// demand on the cold-start slot (nothing observed yet).
	forecast := p.fc.Forecast()
	predicted := ctx.Demand
	if len(forecast) > 0 {
		predicted = core.NewDemand(len(ctx.World.Hotspots))
		for k, n := range forecast {
			if n <= 0 {
				continue
			}
			predicted.Add(trace.HotspotID(k/numVideos), trace.VideoID(k%numVideos), n)
		}
	}

	// Record the true demand for future forecasts.
	observed := make(map[int]int64)
	for h := range ctx.Demand.PerVideo {
		for v, n := range ctx.Demand.PerVideo[h] {
			observed[key(h, v)] = n
		}
	}
	p.fc.Observe(observed)

	innerCtx := *ctx
	innerCtx.Demand = predicted
	asg, err := p.Inner.Schedule(&innerCtx)
	if err != nil {
		return nil, err
	}
	// The inner policy may have routed against predicted volumes; the
	// simulator enforces real feasibility, so the assignment is used
	// as-is.
	return asg, nil
}
