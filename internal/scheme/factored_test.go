package scheme

import (
	"testing"

	"repro/internal/core"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestFactoredPredictedRunsAndBeatsDirect(t *testing.T) {
	cfg := trace.DefaultConfig()
	cfg.NumHotspots = 40
	cfg.NumVideos = 1500
	cfg.NumUsers = 3000
	cfg.NumRequests = 40000
	cfg.NumRegions = 6
	cfg.Slots = 48
	cfg.ServiceCapacityFrac *= 0.6
	world, tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	factored, err := sim.Run(world, tr,
		NewFactoredPredicted(NewRBCAer(core.DefaultParams())), sim.Options{Seed: 1})
	if err != nil {
		t.Fatalf("Run(factored): %v", err)
	}
	if factored.Infeasible != 0 {
		t.Errorf("factored produced %d infeasible targets", factored.Infeasible)
	}
	direct, err := sim.Run(world, tr,
		&Predicted{Inner: NewRBCAer(core.DefaultParams()), Method: predict.Seasonal{Period: 24}},
		sim.Options{Seed: 1})
	if err != nil {
		t.Fatalf("Run(direct seasonal): %v", err)
	}
	// The factored forecaster's whole point: it must not be worse than
	// direct per-(hotspot, video) forecasting.
	if factored.HotspotServingRatio < direct.HotspotServingRatio-0.02 {
		t.Errorf("factored serving %.3f clearly below direct seasonal %.3f",
			factored.HotspotServingRatio, direct.HotspotServingRatio)
	}
}

func TestFactoredPredictedValidation(t *testing.T) {
	if _, err := NewFactoredPredicted(NewRBCAer(core.DefaultParams())).Schedule(nil); err == nil {
		t.Error("Schedule(nil) succeeded")
	}
	ctx, _, _ := buildContext(t, nil)
	if _, err := (&FactoredPredicted{}).Schedule(ctx); err == nil {
		t.Error("Schedule without inner succeeded")
	}
	name := NewFactoredPredicted(NewRBCAer(core.DefaultParams())).Name()
	if name != "RBCAer+factored(seasonal(24))" {
		t.Errorf("Name() = %q", name)
	}
}

func TestSpreadDemandConservesTotal(t *testing.T) {
	shares := map[trace.VideoID]float64{1: 5, 2: 3, 3: 2}
	d := core.NewDemand(1)
	spreadDemand(d, 0, 100, shares)
	if d.Totals[0] != 100 {
		t.Fatalf("spread total = %d, want 100", d.Totals[0])
	}
	// Proportional: video 1 gets half.
	if d.PerVideo[0][1] != 50 || d.PerVideo[0][2] != 30 || d.PerVideo[0][3] != 20 {
		t.Errorf("allocation = %v, want 50/30/20", d.PerVideo[0])
	}
	// Largest-remainder handling with a non-divisible total.
	d2 := core.NewDemand(1)
	spreadDemand(d2, 0, 10, map[trace.VideoID]float64{1: 1, 2: 1, 3: 1})
	if d2.Totals[0] != 10 {
		t.Fatalf("spread total = %d, want 10", d2.Totals[0])
	}
	// Zero shares allocate nothing.
	d3 := core.NewDemand(1)
	spreadDemand(d3, 0, 10, map[trace.VideoID]float64{})
	if d3.Totals[0] != 0 {
		t.Errorf("empty shares allocated %d", d3.Totals[0])
	}
}

func TestFillOverprovisionPlacesMore(t *testing.T) {
	ctx, world, _ := buildContext(t, nil)
	base, err := core.New(world, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	over := core.DefaultParams()
	over.FillOverprovision = 5
	generous, err := core.New(world, over)
	if err != nil {
		t.Fatal(err)
	}
	basePlan, err := base.Schedule(ctx.Demand)
	if err != nil {
		t.Fatal(err)
	}
	generousPlan, err := generous.Schedule(ctx.Demand)
	if err != nil {
		t.Fatal(err)
	}
	if generousPlan.Stats.Replicas < basePlan.Stats.Replicas {
		t.Errorf("overprovisioned fill placed fewer replicas: %d < %d",
			generousPlan.Stats.Replicas, basePlan.Stats.Replicas)
	}
	bad := core.DefaultParams()
	bad.FillOverprovision = -1
	if _, err := core.New(world, bad); err == nil {
		t.Error("negative FillOverprovision accepted")
	}
}
