package scheme

import (
	"fmt"
	"sort"

	"repro/internal/lp"
	"repro/internal/sim"
	"repro/internal/similarity"
	"repro/internal/trace"
)

// LPBased is the paper's LP-relaxation baseline (Fig. 8): it relaxes
// the joint request-redirection / content-placement ILP (problem U) on
// a sample of the demand, solves the relaxation with the internal
// simplex solver, and rounds the fractional solution. Unsampled demand
// falls back to Nearest behaviour so the policy remains a complete
// scheduler.
//
// Like the paper — which could only solve a 10K-request sample with
// GLPK and still measured hours of runtime — this scheme exists to
// quantify how impractical exact-optimisation scheduling is; its
// quality is not the point. MaxGroups bounds the LP size so the demo
// completes in seconds rather than hours.
type LPBased struct {
	// MaxGroups caps how many (hotspot, video) demand groups enter the
	// LP (largest first). 0 selects the default of 500.
	MaxGroups int
	// MaxCandidates caps serving candidates per group (nearest first,
	// always including the aggregation hotspot). 0 selects 6.
	MaxCandidates int
	// CandidateRadiusKm bounds candidate distance. 0 selects 1.5.
	CandidateRadiusKm float64
	// Beta weights the replication-cost term of the objective
	// (α is fixed to 1). 0 selects 1.0.
	Beta float64
	// Dantzig switches the simplex to most-negative-reduced-cost
	// pricing (usually far fewer iterations than the default Bland
	// rule; falls back to Bland on stalls).
	Dantzig bool
}

var _ sim.Scheduler = LPBased{}

// Name implements sim.Scheduler.
func (LPBased) Name() string { return "LP-based" }

func (s LPBased) defaults() LPBased {
	if s.MaxGroups == 0 {
		s.MaxGroups = 500
	}
	if s.MaxCandidates == 0 {
		s.MaxCandidates = 6
	}
	if s.CandidateRadiusKm == 0 {
		s.CandidateRadiusKm = 1.5
	}
	if s.Beta == 0 {
		s.Beta = 1.0
	}
	return s
}

// Schedule implements sim.Scheduler.
func (s LPBased) Schedule(ctx *sim.SlotContext) (*sim.Assignment, error) {
	if ctx == nil {
		return nil, fmt.Errorf("scheme: nil context")
	}
	s = s.defaults()
	if s.MaxGroups < 0 || s.MaxCandidates < 1 || s.CandidateRadiusKm < 0 || s.Beta < 0 {
		return nil, fmt.Errorf("scheme: invalid LP-based configuration %+v", s)
	}
	m := len(ctx.World.Hotspots)

	// Demand groups (aggregation hotspot, video, count), largest first.
	type group struct {
		hotspot int
		video   trace.VideoID
		count   int64
	}
	var groups []group
	for h := 0; h < m; h++ {
		for v, n := range ctx.Demand.PerVideo[h] {
			if n > 0 {
				groups = append(groups, group{hotspot: h, video: v, count: n})
			}
		}
	}
	sort.Slice(groups, func(a, b int) bool {
		if groups[a].count != groups[b].count {
			return groups[a].count > groups[b].count
		}
		if groups[a].hotspot != groups[b].hotspot {
			return groups[a].hotspot < groups[b].hotspot
		}
		return groups[a].video < groups[b].video
	})
	if len(groups) > s.MaxGroups {
		groups = groups[:s.MaxGroups]
	}

	// Build the LP relaxation of problem (U) over the sample.
	var prob lp.Problem
	if s.Dantzig {
		prob.Pricing = lp.DantzigPricing
	}
	type xKey struct {
		g int
		j int
	}
	xVar := make(map[xKey]lp.Var)
	yVar := make(map[int64]lp.Var) // (video, hotspot) -> y
	yKey := func(v trace.VideoID, j int) int64 {
		return int64(v)*int64(m) + int64(j)
	}
	candsOf := make([][]int, len(groups))
	xCDN := make([]lp.Var, len(groups))

	for gi, g := range groups {
		loc := ctx.World.Hotspots[g.hotspot].Location
		nbrs := ctx.Index.Within(loc, s.CandidateRadiusKm)
		cands := make([]int, 0, s.MaxCandidates)
		for _, nb := range nbrs {
			cands = append(cands, nb.ID)
			if len(cands) >= s.MaxCandidates {
				break
			}
		}
		if len(cands) == 0 {
			cands = append(cands, g.hotspot)
		}
		candsOf[gi] = cands
		for _, j := range cands {
			d := loc.DistanceTo(ctx.World.Hotspots[j].Location)
			xVar[xKey{g: gi, j: j}] = prob.AddVariable(float64(g.count) * d)
			if _, ok := yVar[yKey(g.video, j)]; !ok {
				yVar[yKey(g.video, j)] = prob.AddVariable(s.Beta)
			}
		}
		xCDN[gi] = prob.AddVariable(float64(g.count) * ctx.World.CDNDistanceKm)
	}

	// Each group is fully assigned (Eq. 4).
	for gi := range groups {
		row := map[lp.Var]float64{xCDN[gi]: 1}
		for _, j := range candsOf[gi] {
			row[xVar[xKey{g: gi, j: j}]] = 1
		}
		if err := prob.AddConstraint(row, lp.EQ, 1); err != nil {
			return nil, fmt.Errorf("scheme: LP assignment row: %w", err)
		}
	}
	// Serving requires placement: x_gj <= y_vj (Eq. 5).
	for gi, g := range groups {
		for _, j := range candsOf[gi] {
			row := map[lp.Var]float64{
				xVar[xKey{g: gi, j: j}]: 1,
				yVar[yKey(g.video, j)]:  -1,
			}
			if err := prob.AddConstraint(row, lp.LE, 0); err != nil {
				return nil, fmt.Errorf("scheme: LP coupling row: %w", err)
			}
		}
	}
	// Service capacity (Eq. 6).
	perServer := make(map[int]map[lp.Var]float64)
	for gi, g := range groups {
		for _, j := range candsOf[gi] {
			if perServer[j] == nil {
				perServer[j] = make(map[lp.Var]float64)
			}
			perServer[j][xVar[xKey{g: gi, j: j}]] = float64(g.count)
		}
	}
	capacity := ctx.EffectiveCapacity()
	cache := ctx.EffectiveCacheCapacity()
	for j, row := range perServer {
		if err := prob.AddConstraint(row, lp.LE, float64(capacity[j])); err != nil {
			return nil, fmt.Errorf("scheme: LP capacity row: %w", err)
		}
	}
	// Cache capacity (Eq. 7). Explicit y <= 1 rows are redundant: y is
	// only pushed up by x <= y with Σx = 1, and the objective minimises
	// y, so y never exceeds 1 at an optimum.
	perCache := make(map[int]map[lp.Var]float64)
	for k, v := range yVar {
		j := int(k % int64(m))
		if perCache[j] == nil {
			perCache[j] = make(map[lp.Var]float64)
		}
		perCache[j][v] = 1
	}
	for j, row := range perCache {
		if err := prob.AddConstraint(row, lp.LE, float64(cache[j])); err != nil {
			return nil, fmt.Errorf("scheme: LP cache row: %w", err)
		}
	}

	sol, err := prob.Solve()
	if err != nil {
		return nil, fmt.Errorf("scheme: solving LP relaxation: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("scheme: LP relaxation %v", sol.Status)
	}

	// Round: start from Nearest placement, force-in replicas for the
	// groups' chosen servers, then route sampled demand accordingly.
	placement := make([]similarity.Set, m)
	cacheUsed := make([]int, m)
	for h := 0; h < m; h++ {
		placement[h] = topLocal(ctx.Demand.VideoCounts(h), cache[h])
		cacheUsed[h] = placement[h].Len()
	}

	type route struct {
		target int
		budget int64
	}
	routesOf := make(map[int64][]*route) // (hotspot, video) -> ordered targets
	gKey := func(h int, v trace.VideoID) int64 {
		return int64(h)*int64(ctx.World.NumVideos) + int64(v)
	}
	for gi, g := range groups {
		// Distribute the group's demand across candidates by the
		// fractional x, largest share first.
		type share struct {
			j    int
			frac float64
		}
		var shares []share
		for _, j := range candsOf[gi] {
			f := sol.Value(xVar[xKey{g: gi, j: j}])
			if f > 1e-6 {
				shares = append(shares, share{j: j, frac: f})
			}
		}
		sort.Slice(shares, func(a, b int) bool {
			if shares[a].frac != shares[b].frac {
				return shares[a].frac > shares[b].frac
			}
			return shares[a].j < shares[b].j
		})
		remaining := g.count
		for _, sh := range shares {
			if remaining <= 0 {
				break
			}
			amt := int64(float64(g.count)*sh.frac + 0.5)
			if amt > remaining {
				amt = remaining
			}
			if amt <= 0 {
				continue
			}
			if !placement[sh.j].Contains(int(g.video)) {
				if cacheUsed[sh.j] >= cache[sh.j] {
					continue
				}
				placement[sh.j].Add(int(g.video))
				cacheUsed[sh.j]++
			}
			routesOf[gKey(g.hotspot, g.video)] = append(routesOf[gKey(g.hotspot, g.video)],
				&route{target: sh.j, budget: amt})
			remaining -= amt
		}
		// Whatever share remains follows the CDN variable implicitly
		// (no route entry → Nearest fallback below).
	}

	// Route requests: sampled groups follow the LP rounding, everything
	// else behaves like Nearest.
	targets := make([]int, len(ctx.Requests))
	for r, req := range ctx.Requests {
		h := ctx.Nearest[r]
		targets[r] = h
		if routes, ok := routesOf[gKey(h, req.Video)]; ok {
			for _, rt := range routes {
				if rt.budget > 0 {
					rt.budget--
					targets[r] = rt.target
					break
				}
			}
		}
	}
	return &sim.Assignment{Placement: placement, Target: targets}, nil
}
