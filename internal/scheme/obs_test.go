package scheme

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestRBCAerObsDeterminism drives the whole observability pipeline —
// core round events and counters through RBCAer into the simulator's
// registry and tracer — and asserts the deterministic outputs are
// byte-identical for sequential Run and RunParallel at Workers ∈
// {1, 4, 8}, on a clean run and under a fault timeline.
func TestRBCAerObsDeterminism(t *testing.T) {
	cfg := trace.DefaultConfig()
	cfg.NumHotspots = 24
	cfg.NumVideos = 400
	cfg.NumUsers = 600
	cfg.NumRequests = 3000
	cfg.NumRegions = 4
	cfg.Slots = 4
	world, tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}

	run := func(workers int, faults *fault.Scenario) (snapshot, events []byte) {
		t.Helper()
		reg := obs.NewRegistry()
		tracer := obs.NewTracer(1<<16, true)
		params := core.DefaultParams()
		params.Obs = reg
		params.RecordEvents = true
		opts := sim.Options{Seed: 7, Faults: faults, Registry: reg, Tracer: tracer}
		var rerr error
		if workers == 0 {
			_, rerr = sim.Run(world, tr, NewRBCAer(params), opts)
		} else {
			_, rerr = sim.RunParallel(world, tr, func() sim.Scheduler { return NewRBCAer(params) }, workers, opts)
		}
		if rerr != nil {
			t.Fatalf("run(workers=%d): %v", workers, rerr)
		}
		var snap, evs bytes.Buffer
		if err := reg.Snapshot(false).WriteJSON(&snap); err != nil {
			t.Fatal(err)
		}
		if err := tracer.WriteJSONL(&evs); err != nil {
			t.Fatal(err)
		}
		return snap.Bytes(), evs.Bytes()
	}

	scenarios := map[string]*fault.Scenario{
		"clean": nil,
		"faults": {
			Name:  "obs-stress",
			Churn: &fault.MarkovChurn{FailPerSlot: 0.1, RecoverPerSlot: 0.4},
			Degradations: []fault.CapacityDegradation{
				{StartSlot: 1, EndSlot: 3, Fraction: 0.5, ServiceFactor: 0.5, CacheFactor: 0.5},
			},
		},
	}
	for name, sc := range scenarios {
		t.Run(name, func(t *testing.T) {
			refSnap, refEvents := run(0, sc)
			// The instrumented round must actually have reported: core
			// counters in the snapshot, θ-sweep and round events in the
			// trace, and no wall-clock leakage in either.
			for _, want := range []string{"core.rounds", "core.moved_flow", "core.mcmf_paths", "sim.requests_total"} {
				if !bytes.Contains(refSnap, []byte(want)) {
					t.Fatalf("snapshot missing %q:\n%s", want, refSnap)
				}
			}
			for _, want := range []string{`"type":"theta-iter"`, `"type":"round"`, `"type":"cluster"`, `"type":"slot"`} {
				if !bytes.Contains(refEvents, []byte(want)) {
					t.Fatalf("trace missing %q", want)
				}
			}
			for _, leak := range []string{"timers", "_dur", "dur\":"} {
				if bytes.Contains(refSnap, []byte(leak)) {
					t.Fatalf("deterministic snapshot leaked %q", leak)
				}
				if bytes.Contains(refEvents, []byte(leak)) {
					t.Fatalf("deterministic trace leaked %q", leak)
				}
			}
			for _, workers := range []int{1, 4, 8} {
				snap, events := run(workers, sc)
				if !bytes.Equal(refSnap, snap) {
					t.Errorf("workers=%d: metric snapshot diverges", workers)
				}
				if !bytes.Equal(refEvents, events) {
					t.Errorf("workers=%d: trace event stream diverges", workers)
				}
			}
		})
	}
}
