package scheme

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestPowerOfTwoValidAndBalanced(t *testing.T) {
	ctx, world, tr := buildContext(t, nil)
	policy := PowerOfTwo{RadiusKm: 1.5}
	asg, err := policy.Schedule(ctx)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	for r, target := range asg.Target {
		if target == sim.CDN {
			continue
		}
		if !asg.Placement[target].Contains(int(ctx.Requests[r].Video)) {
			t.Fatalf("request %d routed to non-holder %d", r, target)
		}
	}
	if policy.Name() != "PowerOfTwo(1.5km)" {
		t.Errorf("Name() = %q", policy.Name())
	}

	// Full run: feasible, and better load spread than single-choice
	// Random (its defining property).
	p2, err := sim.Run(world, tr, policy, sim.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Infeasible != 0 {
		t.Errorf("PowerOfTwo produced %d infeasible targets", p2.Infeasible)
	}
	rnd, err := sim.Run(world, tr, Random{RadiusKm: 1.5}, sim.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p2.HotspotServingRatio < rnd.HotspotServingRatio-0.03 {
		t.Errorf("PowerOfTwo serving %.3f clearly below Random %.3f",
			p2.HotspotServingRatio, rnd.HotspotServingRatio)
	}
}

func TestPowerOfTwoErrors(t *testing.T) {
	if _, err := (PowerOfTwo{RadiusKm: 1}).Schedule(nil); err == nil {
		t.Error("Schedule(nil) succeeded")
	}
	ctx, _, _ := buildContext(t, nil)
	if _, err := (PowerOfTwo{}).Schedule(ctx); err == nil {
		t.Error("Schedule with zero radius succeeded")
	}
}

func TestReactiveLRUAcrossSlots(t *testing.T) {
	_, world, tr := buildContext(t, func(c *trace.Config) {
		c.Slots = 6
		c.NumRequests = 6000
	})
	policy := NewReactiveLRU()
	m, err := sim.Run(world, tr, policy, sim.Options{Seed: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Infeasible != 0 {
		t.Errorf("reactive produced %d infeasible targets", m.Infeasible)
	}
	if m.HotspotServingRatio <= 0 {
		t.Error("reactive never served anything from the edge")
	}
	// Reactive fetches at least one replica per distinct (hotspot,
	// video) it ever serves — replication accounting must be positive.
	if m.Replicas <= 0 {
		t.Error("reactive reported no replicas")
	}
	if policy.Name() != "Reactive(lru)" {
		t.Errorf("Name() = %q", policy.Name())
	}
}

func TestReactiveLFUAndProactiveComparison(t *testing.T) {
	_, world, tr := buildContext(t, func(c *trace.Config) {
		c.Slots = 6
		c.NumRequests = 6000
	})
	reactive, err := sim.Run(world, tr, NewReactiveLFU(), sim.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	proactive, err := sim.Run(world, tr, NewRBCAer(core.DefaultParams()), sim.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's proactive push-and-balance should beat an unmanaged
	// reactive edge on serving ratio.
	if proactive.HotspotServingRatio <= reactive.HotspotServingRatio {
		t.Errorf("RBCAer serving %.3f not above reactive %.3f",
			proactive.HotspotServingRatio, reactive.HotspotServingRatio)
	}
}

func TestReactiveNilContext(t *testing.T) {
	if _, err := NewReactiveLRU().Schedule(nil); err == nil {
		t.Error("Schedule(nil) succeeded")
	}
}

func TestChurnDegradesServingGracefully(t *testing.T) {
	_, world, tr := buildContext(t, nil)
	baseline, err := sim.Run(world, tr, NewRBCAer(core.DefaultParams()), sim.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	churned, err := sim.Run(world, tr, NewRBCAer(core.DefaultParams()),
		sim.Options{Seed: 1, HotspotChurn: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if churned.OfflineHotspotSlots == 0 {
		t.Fatal("churn configured but no hotspot went offline")
	}
	if churned.Infeasible != 0 {
		t.Errorf("churned run produced %d infeasible targets (policies see only online hotspots)",
			churned.Infeasible)
	}
	if churned.HotspotServingRatio >= baseline.HotspotServingRatio {
		t.Errorf("30%% churn did not reduce serving: %.3f vs %.3f",
			churned.HotspotServingRatio, baseline.HotspotServingRatio)
	}
	// Even at heavy churn most requests should still find edge service
	// by re-aggregating to online hotspots.
	if churned.HotspotServingRatio < 0.3*baseline.HotspotServingRatio {
		t.Errorf("churned serving %.3f collapsed vs %.3f", churned.HotspotServingRatio,
			baseline.HotspotServingRatio)
	}
}

func TestChurnOptionValidation(t *testing.T) {
	_, world, tr := buildContext(t, nil)
	if _, err := sim.Run(world, tr, Nearest{}, sim.Options{HotspotChurn: -0.1}); err == nil {
		t.Error("negative churn accepted")
	}
	if _, err := sim.Run(world, tr, Nearest{}, sim.Options{HotspotChurn: 1.1}); err == nil {
		t.Error("churn above 1 accepted")
	}
	// Churn of exactly 1 is valid: the whole fleet is offline every
	// slot and everything is served by the CDN.
	m, err := sim.Run(world, tr, Nearest{}, sim.Options{HotspotChurn: 1.0})
	if err != nil {
		t.Fatalf("churn of 1.0 rejected: %v", err)
	}
	if m.ServedByHotspot != 0 || m.ServedByCDN != m.TotalRequests {
		t.Errorf("churn 1.0: served %d by hotspot, %d/%d by CDN",
			m.ServedByHotspot, m.ServedByCDN, m.TotalRequests)
	}
}
