package scheme

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/similarity"
)

// PowerOfTwo is a load-balancing baseline from the DHT line of related
// work (Xia et al., the paper's [20]): caching is identical to the
// Random scheme (each hotspot caches its radius-neighbourhood's most
// popular videos), but each request samples two random in-radius
// holders and picks the one with more remaining service capacity —
// the classic "power of two choices" that exponentially improves load
// balance over a single random choice.
type PowerOfTwo struct {
	// RadiusKm is the routing/caching radius (1.5 km by convention).
	RadiusKm float64
}

var _ sim.Scheduler = PowerOfTwo{}

// Name implements sim.Scheduler.
func (p PowerOfTwo) Name() string { return fmt.Sprintf("PowerOfTwo(%.1fkm)", p.RadiusKm) }

// Schedule implements sim.Scheduler.
func (p PowerOfTwo) Schedule(ctx *sim.SlotContext) (*sim.Assignment, error) {
	if ctx == nil {
		return nil, fmt.Errorf("scheme: nil context")
	}
	if p.RadiusKm <= 0 {
		return nil, fmt.Errorf("scheme: PowerOfTwo radius must be positive, got %v", p.RadiusKm)
	}
	placement, neighborsOf := neighborhoodPlacement(ctx, p.RadiusKm)

	capLeft := append([]int64(nil), ctx.EffectiveCapacity()...)
	targets := make([]int, len(ctx.Requests))
	var holders []int
	for i, req := range ctx.Requests {
		holders = holders[:0]
		for _, nb := range neighborsOf[ctx.Nearest[i]] {
			if capLeft[nb] > 0 && placement[nb].Contains(int(req.Video)) {
				holders = append(holders, nb)
			}
		}
		switch len(holders) {
		case 0:
			targets[i] = sim.CDN
			continue
		case 1:
			targets[i] = holders[0]
		default:
			a := holders[ctx.Rand.Intn(len(holders))]
			b := holders[ctx.Rand.Intn(len(holders))]
			// Pick the less-loaded of the two samples.
			if capLeft[b] > capLeft[a] {
				a = b
			}
			targets[i] = a
		}
		capLeft[targets[i]]--
	}
	return &sim.Assignment{Placement: placement, Target: targets}, nil
}

// neighborhoodPlacement computes the Random/PowerOfTwo cache policy:
// each hotspot caches the most popular videos among the demand of
// hotspots within the radius, and returns the per-hotspot neighbour
// lists used for routing.
func neighborhoodPlacement(ctx *sim.SlotContext, radiusKm float64) ([]similarity.Set, [][]int) {
	m := len(ctx.World.Hotspots)
	cache := ctx.EffectiveCacheCapacity()
	placement := make([]similarity.Set, m)
	neighborsOf := make([][]int, m)
	buf := make([]int64, ctx.World.NumVideos)
	touched := make([]int, 0, 1024)
	for h := 0; h < m; h++ {
		nbrs := ctx.Index.Within(ctx.World.Hotspots[h].Location, radiusKm)
		touched = touched[:0]
		for _, nb := range nbrs {
			neighborsOf[h] = append(neighborsOf[h], nb.ID)
			for v, n := range ctx.Demand.PerVideo[nb.ID] {
				if buf[v] == 0 {
					touched = append(touched, int(v))
				}
				buf[v] += n
			}
		}
		pairs := make([]videoCount, len(touched))
		for i, v := range touched {
			pairs[i] = videoCount{id: v, n: buf[v]}
			buf[v] = 0
		}
		placement[h] = topLocalPairs(pairs, cache[h])
	}
	return placement, neighborsOf
}
