package scheme

import (
	"fmt"

	"repro/internal/sim"
)

// Random is the paper's local-random scheme: each hotspot caches the
// most popular videos of its radius-neighbourhood, and a request is
// routed uniformly at random to a hotspot within the radius that has
// the video cached and service capacity left, falling back to the CDN.
type Random struct {
	// RadiusKm is the routing/caching radius (the paper's 1.5 km).
	RadiusKm float64
}

var _ sim.Scheduler = Random{}

// Name implements sim.Scheduler.
func (r Random) Name() string { return fmt.Sprintf("Random(%.1fkm)", r.RadiusKm) }

// Schedule implements sim.Scheduler.
func (r Random) Schedule(ctx *sim.SlotContext) (*sim.Assignment, error) {
	if ctx == nil {
		return nil, fmt.Errorf("scheme: nil context")
	}
	if r.RadiusKm <= 0 {
		return nil, fmt.Errorf("scheme: Random radius must be positive, got %v", r.RadiusKm)
	}

	// Cache the most popular videos of each hotspot's neighbourhood.
	placement, neighborsOf := neighborhoodPlacement(ctx, r.RadiusKm)

	// Route each request to a random in-radius holder with remaining
	// capacity. The candidate set is the radius-neighbourhood of the
	// request's aggregation (nearest) hotspot, matching the paper's
	// formulation where redirection happens between hotspots.
	capLeft := append([]int64(nil), ctx.EffectiveCapacity()...)
	targets := make([]int, len(ctx.Requests))
	var holders []int
	for i, req := range ctx.Requests {
		holders = holders[:0]
		for _, nb := range neighborsOf[ctx.Nearest[i]] {
			if capLeft[nb] > 0 && placement[nb].Contains(int(req.Video)) {
				holders = append(holders, nb)
			}
		}
		if len(holders) == 0 {
			targets[i] = sim.CDN
			continue
		}
		h := holders[ctx.Rand.Intn(len(holders))]
		capLeft[h]--
		targets[i] = h
	}
	return &sim.Assignment{Placement: placement, Target: targets}, nil
}
