package scheme

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/similarity"
	"repro/internal/trace"
)

// Reactive is the unmanaged-edge baseline: no prefetching and no
// redirection. Each hotspot keeps a reactive cache (LRU/LFU/FIFO) that
// persists across timeslots; a request is served locally on a cache
// hit (within service capacity) and by the origin otherwise, with the
// miss admitting the video into the cache. It quantifies what the
// paper's proactive push-and-balance design buys over letting edge
// caches fend for themselves.
//
// Within a slot the cache is evolved over the slot's requests first and
// requests are then served against the end-of-slot contents (the
// simulator models placement per slot); fetches for videos that were
// admitted and evicted again inside the slot are accounted through
// Assignment.ExtraReplicas.
type Reactive struct {
	// NewCache builds each hotspot's cache; nil selects cache.NewLRU.
	NewCache cache.Constructor
	// Label names the eviction policy in reports; empty selects "lru".
	Label string

	world  *trace.World
	caches []cache.Cache
	prev   []similarity.Set
}

var _ sim.Scheduler = (*Reactive)(nil)

// NewReactiveLRU returns the reactive baseline with LRU caches.
func NewReactiveLRU() *Reactive {
	return &Reactive{
		NewCache: func(c int) (cache.Cache, error) { return cache.NewLRU(c) },
		Label:    "lru",
	}
}

// NewReactiveLFU returns the reactive baseline with LFU caches.
func NewReactiveLFU() *Reactive {
	return &Reactive{
		NewCache: func(c int) (cache.Cache, error) { return cache.NewLFU(c) },
		Label:    "lfu",
	}
}

// Name implements sim.Scheduler.
func (p *Reactive) Name() string {
	label := p.Label
	if label == "" {
		label = "lru"
	}
	return fmt.Sprintf("Reactive(%s)", label)
}

// Schedule implements sim.Scheduler.
func (p *Reactive) Schedule(ctx *sim.SlotContext) (*sim.Assignment, error) {
	if ctx == nil {
		return nil, fmt.Errorf("scheme: nil context")
	}
	if p.world != ctx.World {
		ctor := p.NewCache
		if ctor == nil {
			ctor = func(c int) (cache.Cache, error) { return cache.NewLRU(c) }
		}
		m := len(ctx.World.Hotspots)
		p.caches = make([]cache.Cache, m)
		p.prev = make([]similarity.Set, m)
		for h := 0; h < m; h++ {
			capacity := ctx.World.Hotspots[h].CacheCapacity
			if capacity < 1 {
				capacity = 1
			}
			c, err := ctor(capacity)
			if err != nil {
				return nil, fmt.Errorf("scheme: building cache for hotspot %d: %w", h, err)
			}
			p.caches[h] = c
			p.prev[h] = similarity.Set{}
		}
		p.world = ctx.World
	}
	m := len(ctx.World.Hotspots)

	// Pass 1: evolve each hotspot's cache over its aggregated requests,
	// counting origin fetches (misses).
	var fetches int64
	for i := range ctx.Requests {
		h := ctx.Nearest[i]
		if hit, _, _ := p.caches[h].Access(int(ctx.Requests[i].Video)); !hit {
			fetches++
		}
	}

	// End-of-slot contents become the slot's placement. The fetch
	// accounting below compares physical contents slot over slot, so it
	// stays consistent even when degraded cache capacity hides part of
	// the cache from the reported placement.
	placement := make([]similarity.Set, m)
	var newlyPlaced int64
	for h := 0; h < m; h++ {
		placement[h] = similarity.NewSet(p.caches[h].Items()...)
		for v := range placement[h] {
			if !p.prev[h].Contains(v) {
				newlyPlaced++
			}
		}
	}

	// Under cache degradation the device has lost cache space: only an
	// effective-capacity-sized slice of the contents is usable (and
	// reported) this slot. The physical LRU state is untouched and
	// resurfaces when the fault clears.
	reported := placement
	if cache := ctx.CacheCapacity; cache != nil {
		reported = make([]similarity.Set, m)
		for h := 0; h < m; h++ {
			reported[h] = trimSet(placement[h], cache[h])
		}
	}

	// Pass 2: serve against the final contents within capacity.
	capLeft := append([]int64(nil), ctx.EffectiveCapacity()...)
	targets := make([]int, len(ctx.Requests))
	for i, req := range ctx.Requests {
		h := ctx.Nearest[i]
		if capLeft[h] > 0 && reported[h].Contains(int(req.Video)) {
			targets[i] = h
			capLeft[h]--
		} else {
			targets[i] = sim.CDN
		}
	}

	// Fetches beyond the placement delta (admit-then-evict within the
	// slot) are reported separately; the simulator accounts the delta.
	extra := fetches - newlyPlaced
	if extra < 0 {
		return nil, fmt.Errorf("scheme: reactive accounting underflow (%d fetches, %d new placements)",
			fetches, newlyPlaced)
	}
	p.prev = placement
	return &sim.Assignment{Placement: reported, Target: targets, ExtraReplicas: extra}, nil
}

// trimSet returns s when it fits limit, otherwise a deterministic
// limit-sized subset (smallest ids kept).
func trimSet(s similarity.Set, limit int) similarity.Set {
	if s.Len() <= limit {
		return s
	}
	if limit <= 0 {
		return similarity.Set{}
	}
	ids := make([]int, 0, s.Len())
	for v := range s {
		ids = append(ids, v)
	}
	sort.Ints(ids)
	return similarity.NewSet(ids[:limit]...)
}
