package server

import (
	"strings"
	"testing"
)

// FuzzIngest holds the ingestion decoder to its no-panic contract:
// whatever bytes arrive — malformed JSON, unknown fields, negative or
// out-of-range ids, non-finite locations, oversized payloads — decoding
// and resolution must return an error or a valid aggregation point,
// never panic. Any (hotspot, video) pair it does accept must be in
// range, since it is used to index demand accumulators directly.
func FuzzIngest(f *testing.F) {
	seeds := []string{
		`{"user":1,"video":2,"hotspot":3}`,
		`{"user":1,"video":2,"x":1.5,"y":-0.25}`,
		`{"user":-9223372036854775808,"video":9223372036854775807}`,
		`{"video":-1,"hotspot":-1}`,
		`{"user":1,"video":2,"x":1e999,"y":0}`,
		`{"user":1,"video":2,"hotspot":0}{"user":2}`,
		`{"user":1,"video":2,"hotspot":0,"extra":true}`,
		`{"user":`,
		`[]`,
		`null`,
		`"string"`,
		``,
		"\x00\xff\xfe",
		`{"user":1,"video":2,"hotspot":0,"pad":"` + strings.Repeat("a", 1<<12) + `"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	world := testWorld(4, 5, 5)
	index, err := world.Index()
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeIngest(data)
		if err != nil {
			return
		}
		h, v, err := resolveIngest(world, index, req)
		if err != nil {
			return
		}
		if h < 0 || h >= len(world.Hotspots) {
			t.Fatalf("resolved hotspot %d outside [0, %d)", h, len(world.Hotspots))
		}
		if int(v) < 0 || int(v) >= world.NumVideos {
			t.Fatalf("resolved video %d outside [0, %d)", v, world.NumVideos)
		}
	})
}
