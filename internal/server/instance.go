package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

// instance is one frontend of the serving tier. Each instance owns a
// private array of lock-striped demand accumulators (the
// consistent-hash ring decides which instance a hotspot's ingestion
// lands in, and within the instance hotspot h belongs to stripe
// h mod Shards), its own HTTP listener, and its own atomically
// swapped serving plan, rebuilt from the distributed canonical bytes
// at every epoch. All instances answer the full API; lookups are
// served from the instance's local plan, which install verifies is
// the exact plan the scheduler published.
type instance struct {
	id     int
	srv    *Server
	shards []*demandShard

	// current is this frontend's serving plan, swapped atomically by
	// install. Lookups only ever Load it.
	current atomic.Pointer[servingPlan]

	// seq numbers this instance's accepted ingests for the WAL.
	// Incremented under the accepting stripe's lock, so holding every
	// stripe lock reads it as an exact applied-and-logged watermark
	// (see Server.writeCheckpoint).
	seq atomic.Uint64

	httpSrv *http.Server
	ln      net.Listener

	// cached per-instance counters (server.shard.<id>.*): registry
	// lookups are off the request hot path.
	accepted  *obs.Counter // requests accumulated into this instance's stripes
	forwarded *obs.Counter // arrived here, owned by (and routed to) another instance
	swaps     *obs.Counter // verified plan installs
	rejects   *obs.Counter // plan installs refused by verification
	lookups   *obs.Counter // redirect lookups answered by this frontend
}

// newInstance builds frontend id with its own stripes and counters.
func newInstance(s *Server, id int) *instance {
	in := &instance{id: id, srv: s}
	in.shards = make([]*demandShard, s.cfg.Shards)
	for i := range in.shards {
		in.shards[i] = &demandShard{}
	}
	pfx := "server.shard." + strconv.Itoa(id) + "."
	in.accepted = s.reg.Counter(pfx + "accepted")
	in.forwarded = s.reg.Counter(pfx + "forwarded")
	in.swaps = s.reg.Counter(pfx + "swaps")
	in.rejects = s.reg.Counter(pfx + "plan_rejects")
	in.lookups = s.reg.Counter(pfx + "lookups")
	return in
}

// listen starts this frontend's HTTP server on addr.
func (in *instance) listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: instance %d: %w", in.id, err)
	}
	in.ln = ln
	in.httpSrv = &http.Server{Handler: in.handler(), ReadHeaderTimeout: 5 * time.Second}
	in.srv.wg.Add(1)
	go func() {
		defer in.srv.wg.Done()
		if err := in.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			in.srv.reg.Counter("server.http.errors").Inc()
		}
	}()
	return nil
}

// shutdown stops this frontend's HTTP server, bounded by ctx.
func (in *instance) shutdown(ctx context.Context) error {
	if in.httpSrv == nil {
		return nil
	}
	return in.httpSrv.Shutdown(ctx)
}

// handler builds this frontend's HTTP API (every instance serves the
// same routes; ingest and redirect act on instance-local state, the
// admin and history routes on the shared scheduler).
func (in *instance) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", in.handleIngest)
	mux.HandleFunc("GET /redirect", in.handleRedirect)
	mux.HandleFunc("GET /plans", in.srv.handlePlans)
	mux.HandleFunc("GET /healthz", in.handleHealthz)
	mux.HandleFunc("POST /admin/advance", in.srv.handleAdvance)
	return mux
}

// install is the receive side of the plan-distribution channel: the
// frontend rebuilds its serving plan from the canonical bytes the
// scheduler published and verifies it is exactly the advertised plan —
// the received bytes must hash to the advertised digest, must parse,
// and must re-encode to the identical bytes. Any mismatch rejects the
// swap (the frontend keeps serving its previous plan) and is counted
// loudly; install never tears a plan, because publication is a single
// atomic pointer store of a fully built plan.
func (in *instance) install(epoch int64, slot int, requests int64, canonical []byte, digest uint64) error {
	if got := core.DigestOf(canonical); got != digest {
		in.rejects.Inc()
		return fmt.Errorf("server: instance %d: plan digest %016x, advertised %016x", in.id, got, digest)
	}
	plan, err := core.ParseCanonical(canonical)
	if err != nil {
		in.rejects.Inc()
		return fmt.Errorf("server: instance %d: %w", in.id, err)
	}
	sp := newServingPlan(epoch, slot, requests, plan, in.srv.world.NumVideos)
	if !bytes.Equal(sp.canonical, canonical) {
		in.rejects.Inc()
		return fmt.Errorf("server: instance %d: plan bytes did not round-trip", in.id)
	}
	in.current.Store(sp)
	in.swaps.Inc()
	return nil
}

func (in *instance) handleIngest(w http.ResponseWriter, r *http.Request) {
	s := in.srv
	sc := getScratch()
	defer putScratch(sc)
	body, err := readBody(w, r, s.cfg.MaxBodyBytes, sc.body[:0])
	sc.body = body
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.reg.Counter("server.ingest.oversized").Inc()
			writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: "body too large"})
			return
		}
		s.ingestMalformed.Inc()
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "reading body"})
		return
	}
	req, err := decodeIngest(body)
	if err != nil {
		s.ingestMalformed.Inc()
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	h, v, err := resolveIngest(s.world, s.index, req)
	if err != nil {
		s.ingestMalformed.Inc()
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	// The ring owns the hotspot → instance mapping; a request may
	// arrive at any frontend and is accumulated at the owner.
	owner := in
	if n := len(s.instances); n > 1 {
		owner = s.instances[s.ring.OwnerOfHotspot(h)]
	}
	sh := owner.shards[h%len(owner.shards)]
	ok, werr := s.acceptDemand(owner, sh, trace.HotspotID(h), v)
	if werr != nil {
		// Durability failure: the request must not be acknowledged as
		// accepted, because a crash could lose it.
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "durability failure, retry"})
		return
	}
	if !ok {
		// Backpressure: the stripe is at its bound until the next slot
		// snapshot drains it. The rejection is visible (429 + counter),
		// never a silent drop.
		s.ingestRejected.Inc()
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "ingest queue full, retry next slot"})
		return
	}
	s.ingestAccepted.Inc()
	owner.accepted.Inc()
	if owner != in {
		in.forwarded.Inc()
	}
	sc.resp = append(sc.resp[:0], `{"hotspot":`...)
	sc.resp = strconv.AppendInt(sc.resp, int64(h), 10)
	sc.resp = append(sc.resp, '}', '\n')
	writeRawJSON(w, http.StatusAccepted, sc.resp)
}

func (in *instance) handleRedirect(w http.ResponseWriter, r *http.Request) {
	s := in.srv
	q := r.URL.Query()
	video, err := strconv.Atoi(q.Get("video"))
	if err != nil || video < 0 || video >= s.world.NumVideos {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "video outside the catalogue"})
		return
	}
	hotspot, err := strconv.Atoi(q.Get("hotspot"))
	if err != nil || hotspot < 0 || hotspot >= len(s.world.Hotspots) {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "hotspot outside the fleet"})
		return
	}
	sp := in.current.Load()
	res := sp.lookup(hotspot, video)
	s.lookupTotal.Inc()
	in.lookups.Inc()
	switch {
	case res.target == CDN:
		s.lookupCDN.Inc()
	case res.redirected:
		s.lookupRedirect.Inc()
	default:
		s.lookupLocal.Inc()
	}
	sc := getScratch()
	defer putScratch(sc)
	b := append(sc.resp[:0], `{"target":`...)
	b = strconv.AppendInt(b, int64(res.target), 10)
	if sp != nil {
		b = append(b, `,"epoch":`...)
		b = strconv.AppendInt(b, sp.epoch, 10)
		b = append(b, `,"slot":`...)
		b = strconv.AppendInt(b, int64(sp.slot), 10)
		b = append(b, `,"digest":"`...)
		b = appendDigest(b, sp.digest)
		b = append(b, '"')
	}
	b = append(b, '}', '\n')
	sc.resp = b
	writeRawJSON(w, http.StatusOK, b)
}

func (in *instance) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s := in.srv
	s.mu.Lock()
	slot, epoch := s.slot, s.epoch
	s.mu.Unlock()
	mode := "full"
	if s.cfg.Params.DeltaThreshold > 0 {
		mode = "delta"
	}
	resp := map[string]any{
		"status":    "ok",
		"slot":      slot,
		"epoch":     epoch,
		"mode":      mode,
		"instance":  in.id,
		"instances": len(s.instances),
	}
	if sp := in.current.Load(); sp != nil {
		resp["serving_epoch"] = sp.epoch
		resp["digest"] = digestString(sp.digest)
	}
	if s.wal != nil {
		walResp := map[string]any{
			"policy":         s.wal.Policy().String(),
			"appended_lsn":   s.wal.LastLSN(),
			"durable_lsn":    s.wal.DurableLSN(),
			"checkpoint_seq": s.wal.CheckpointSeq(),
		}
		if st := s.walState; st != nil {
			walResp["recovered_records"] = st.Records
			walResp["recovered_slot"] = st.Slot
			walResp["truncated_bytes"] = st.TruncatedBytes
		}
		resp["wal"] = walResp
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeJSON writes one JSON response (cold paths; the hot paths build
// their bytes into pooled scratch and use writeRawJSON).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeRawJSON writes pre-encoded JSON bytes.
func writeRawJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}
