package server

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/similarity"
)

// CDN is the lookup answer meaning "fetch from the origin CDN server"
// (the same sentinel as sim.CDN).
const CDN = -1

// servingPlan is one immutable, fully materialised scheduling plan plus
// the lookup structures derived from it. It is built off to the side by
// the recompute worker and published with a single atomic pointer swap,
// so a concurrent lookup either sees the complete previous plan or the
// complete new one — never a partial mix. Only the per-entry
// round-robin cursors mutate after publication, and those are atomics
// that never affect the plan's content.
type servingPlan struct {
	// epoch is the swap sequence number (1 for the first plan).
	epoch int64
	// slot is the timeslot whose demand produced the plan.
	slot int
	// requests is the demand volume the plan was computed from.
	requests int64
	// digest fingerprints canonical (core.Plan.Digest).
	digest uint64
	// canonical is the plan's deterministic byte encoding, kept for
	// /plans and the e2e byte-identity certification.
	canonical []byte
	// placement[h] is the video set hotspot h prefetches.
	placement []similarity.Set
	// redirect routes (hotspot, video) pairs the plan moves elsewhere.
	redirect map[int64]*redirectEntry
	// numVideos is the redirect key stride.
	numVideos int64
	// degraded mirrors core.Plan.Degraded.
	degraded bool
	// redirects is len(core.Plan.Redirects), kept for reporting.
	redirects int
	// stats is retained for /plans reporting.
	stats core.Stats
}

// redirectEntry fans one (source hotspot, video) pair's lookups out
// over the plan's redirect targets, proportionally to the planned
// per-target counts. The targets and cumulative weights are immutable;
// only the round-robin cursor advances.
type redirectEntry struct {
	targets []int32
	// cum[i] is the cumulative planned count through targets[i];
	// total == cum[len-1].
	cum    []int64
	total  int64
	cursor atomic.Int64
}

// next returns the entry's next target, cycling deterministically
// through the planned counts (first `cum[0]` lookups to targets[0],
// and so on, modulo total).
func (e *redirectEntry) next() int {
	i := e.cursor.Add(1) - 1
	// Reduce modulo total in unsigned space: the int64 cursor
	// eventually wraps negative, and a signed % would then yield a
	// negative pos, pinning every lookup to targets[0] forever. The
	// uint64 view of the counter stays continuous across the wrap.
	pos := int64(uint64(i) % uint64(e.total))
	j := sort.Search(len(e.cum), func(k int) bool { return e.cum[k] > pos })
	return int(e.targets[j])
}

// newServingPlan materialises a core plan for serving.
func newServingPlan(epoch int64, slot int, requests int64, plan *core.Plan, numVideos int) *servingPlan {
	sp := &servingPlan{
		epoch:     epoch,
		slot:      slot,
		requests:  requests,
		canonical: plan.Canonical(),
		digest:    plan.Digest(),
		placement: plan.Placement,
		redirect:  make(map[int64]*redirectEntry),
		numVideos: int64(numVideos),
		degraded:  plan.Degraded,
		redirects: len(plan.Redirects),
		stats:     plan.Stats,
	}
	for _, rd := range plan.Redirects {
		if rd.Count <= 0 {
			continue
		}
		k := int64(rd.From)*sp.numVideos + int64(rd.Video)
		e := sp.redirect[k]
		if e == nil {
			e = &redirectEntry{}
			sp.redirect[k] = e
		}
		e.total += rd.Count
		e.targets = append(e.targets, int32(rd.To))
		e.cum = append(e.cum, e.total)
	}
	return sp
}

// lookupResult is one routing decision.
type lookupResult struct {
	// target is the serving hotspot, or CDN.
	target int
	// redirected reports the request followed a plan redirect edge
	// (target differs from its aggregation hotspot by plan, not by
	// cache miss).
	redirected bool
}

// lookup routes one request aggregated at hotspot h for video v:
// planned redirects first (cycling through targets proportionally to
// the planned counts), then the local cache placement, then the CDN.
// A nil plan (before the first swap) routes everything to the CDN.
func (sp *servingPlan) lookup(h int, v int) lookupResult {
	if sp == nil || sp.placement == nil {
		return lookupResult{target: CDN}
	}
	if e, ok := sp.redirect[int64(h)*sp.numVideos+int64(v)]; ok {
		return lookupResult{target: e.next(), redirected: true}
	}
	if sp.placement[h].Contains(v) {
		return lookupResult{target: h}
	}
	return lookupResult{target: CDN}
}

// PlanRecord is the public per-slot plan summary served by /plans and
// returned from AdvanceSlot.
type PlanRecord struct {
	Slot     int    `json:"slot"`
	Epoch    int64  `json:"epoch"`
	Requests int64  `json:"requests"`
	Digest   string `json:"digest"`
	// Canonical is the hex encoding of the plan's canonical bytes (the
	// e2e harness compares it against the offline simulator's plans).
	Canonical string `json:"canonical,omitempty"`
	Degraded  bool   `json:"degraded"`
	Replicas  int64  `json:"replicas"`
	Redirects int    `json:"redirects"`
	MovedFlow int64  `json:"moved_flow"`
	Stranded  int64  `json:"stranded_to_cdn"`
}

// digestString renders a plan digest the way PlanRecord reports it.
func digestString(d uint64) string { return fmt.Sprintf("%016x", d) }

// appendDigest appends the same 16-hex-digit rendering without
// formatting allocations (hot lookup path).
func appendDigest(b []byte, d uint64) []byte {
	const hexdigits = "0123456789abcdef"
	for shift := 60; shift >= 0; shift -= 4 {
		b = append(b, hexdigits[(d>>uint(shift))&0xf])
	}
	return b
}
