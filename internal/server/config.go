package server

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Default configuration values, applied by New for zero-valued fields.
const (
	DefaultShards       = 16
	DefaultQueueBound   = 1 << 16
	DefaultPlanHistory  = 64
	DefaultMaxBodyBytes = 1 << 16
	DefaultDrainTimeout = 5 * time.Second
	// DefaultCheckpointEvery is how many scheduled slots elapse between
	// WAL checkpoints when WALDir is set.
	DefaultCheckpointEvery = 8

	// maxShards bounds the lock-stripe count: beyond this the stripes
	// stop reducing contention and only waste memory.
	maxShards = 1 << 12
	// maxInstances bounds the in-process frontend fleet: each instance
	// carries its own stripe array, listener, and serving plan.
	maxInstances = 64
	// maxSnapshotQueue bounds the number of slot snapshots awaiting
	// recomputation. When the scheduler falls this far behind the slot
	// ticker, newer snapshots are coalesced into the newest queued one
	// (demand counts commute) instead of growing the queue without
	// bound or blocking the ticker; coalesced ticks surface as the
	// server.slots.coalesced counter.
	maxSnapshotQueue = 4
)

// Config configures an online scheduling server.
type Config struct {
	// World is the deployment the server schedules for. Required.
	World *trace.World
	// Params are RBCAer's parameters; the zero value selects
	// core.DefaultParams. Params.Deadline bounds each slot's
	// recomputation wall clock (the PR-2 degradation path): an
	// overrunning round still swaps in its best partial plan.
	Params core.Params
	// Addr is the listen address ("host:port"; port 0 picks an
	// ephemeral port). Empty selects "127.0.0.1:0".
	Addr string
	// Instances is the number of frontend instances the serving tier
	// runs in-process. A consistent-hash ring shards hotspot
	// ingestion across them (each instance has its own lock-striped
	// accumulators and its own listener), every slot's plan fans out
	// to all of them digest-verified, and each serves redirect
	// lookups from its own copy of the plan. 0 selects 1 (the
	// single-instance server).
	Instances int
	// Shards is the number of lock stripes each instance's per-hotspot
	// demand accumulators are spread over. Within an instance, hotspot
	// h is owned by stripe h mod Shards, so concurrent ingests for
	// different stripes never contend. 0 selects DefaultShards.
	Shards int
	// QueueBound caps the accepted-but-not-yet-snapshotted requests
	// per stripe. An ingest that would exceed its stripe's bound is
	// rejected with 429 (backpressure); accepted requests are never
	// dropped. 0 selects DefaultQueueBound.
	QueueBound int
	// SlotDuration is the timeslot length: every SlotDuration the
	// ticker snapshots accumulated demand and hands it to the
	// asynchronous recompute worker. 0 disables the ticker — slots
	// then advance only through AdvanceSlot / POST /admin/advance,
	// the deterministic mode the e2e harness replays traces in.
	SlotDuration time.Duration
	// PlanHistory is the number of per-slot plan records (canonical
	// bytes + digest) retained for /plans. 0 selects
	// DefaultPlanHistory.
	PlanHistory int
	// MaxBodyBytes caps an ingest request body. 0 selects
	// DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// DrainTimeout bounds graceful shutdown: how long Close waits for
	// in-flight HTTP requests before cutting them off. 0 selects
	// DefaultDrainTimeout.
	DrainTimeout time.Duration
	// WALDir, when non-empty, enables the durability subsystem
	// (internal/wal): every accepted ingest, slot boundary, and
	// scheduled plan is logged there before being acknowledged, New
	// recovers the durable state on boot, and slot-boundary checkpoints
	// bound replay time. Empty disables durability (the pre-WAL
	// in-memory server).
	WALDir string
	// Fsync selects the WAL fsync policy: "always" (group commit,
	// every acknowledgment durable), "interval" (timer flush), or
	// "none". Empty selects "always". Only meaningful with WALDir.
	Fsync string
	// FsyncInterval is the "interval" policy's flush cadence. 0
	// selects wal.DefaultInterval. Only meaningful with WALDir.
	FsyncInterval time.Duration
	// CheckpointEvery writes a WAL checkpoint every this many
	// scheduled slots. 0 selects DefaultCheckpointEvery. Only
	// meaningful with WALDir.
	CheckpointEvery int
	// Registry, when non-nil, receives the server's metrics
	// (server.ingest.*, server.lookup.*, server.slots*, server.plan.*,
	// and the server.slot.latency_us histogram). Nil allocates a
	// private registry so counters still work internally.
	Registry *obs.Registry
	// Tracer, when non-nil, receives one "swap" event per recomputed
	// slot.
	Tracer *obs.Tracer
}

// Validate checks the configuration. Zero values are valid wherever a
// default exists; only actively inconsistent settings are rejected.
func (c Config) Validate() error {
	if c.World == nil {
		return fmt.Errorf("server: nil world")
	}
	if err := c.World.Validate(); err != nil {
		return fmt.Errorf("server: invalid world: %w", err)
	}
	if c.Params != (core.Params{}) {
		if err := c.Params.Validate(); err != nil {
			return fmt.Errorf("server: invalid params: %w", err)
		}
	}
	if c.Instances < 0 {
		return fmt.Errorf("server: negative Instances %d", c.Instances)
	}
	if c.Instances > maxInstances {
		return fmt.Errorf("server: Instances %d above the %d instance cap", c.Instances, maxInstances)
	}
	if c.Shards < 0 {
		return fmt.Errorf("server: negative Shards %d", c.Shards)
	}
	if c.Shards > maxShards {
		return fmt.Errorf("server: Shards %d above the %d stripe cap", c.Shards, maxShards)
	}
	if c.QueueBound < 0 {
		return fmt.Errorf("server: negative QueueBound %d", c.QueueBound)
	}
	if c.SlotDuration < 0 {
		return fmt.Errorf("server: negative SlotDuration %v", c.SlotDuration)
	}
	if c.PlanHistory < 0 {
		return fmt.Errorf("server: negative PlanHistory %d", c.PlanHistory)
	}
	if c.MaxBodyBytes < 0 {
		return fmt.Errorf("server: negative MaxBodyBytes %d", c.MaxBodyBytes)
	}
	if c.DrainTimeout < 0 {
		return fmt.Errorf("server: negative DrainTimeout %v", c.DrainTimeout)
	}
	if c.WALDir == "" {
		if c.Fsync != "" {
			return fmt.Errorf("server: Fsync %q without WALDir", c.Fsync)
		}
		if c.FsyncInterval != 0 {
			return fmt.Errorf("server: FsyncInterval %v without WALDir", c.FsyncInterval)
		}
		if c.CheckpointEvery != 0 {
			return fmt.Errorf("server: CheckpointEvery %d without WALDir", c.CheckpointEvery)
		}
		return nil
	}
	if _, err := wal.ParsePolicy(c.Fsync); err != nil {
		return fmt.Errorf("server: Fsync: %w", err)
	}
	if c.FsyncInterval < 0 {
		return fmt.Errorf("server: negative FsyncInterval %v", c.FsyncInterval)
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("server: negative CheckpointEvery %d", c.CheckpointEvery)
	}
	if fi, err := os.Stat(c.WALDir); err == nil && !fi.IsDir() {
		return fmt.Errorf("server: WALDir %q is not a directory", c.WALDir)
	}
	return nil
}

// withDefaults returns the config with every zero-valued knob replaced
// by its default.
func (c Config) withDefaults() Config {
	if c.Params == (core.Params{}) {
		c.Params = core.DefaultParams()
	}
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Instances == 0 {
		c.Instances = 1
	}
	if c.Shards == 0 {
		c.Shards = DefaultShards
	}
	if c.QueueBound == 0 {
		c.QueueBound = DefaultQueueBound
	}
	if c.PlanHistory == 0 {
		c.PlanHistory = DefaultPlanHistory
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.WALDir != "" {
		if c.FsyncInterval == 0 {
			c.FsyncInterval = wal.DefaultInterval
		}
		if c.CheckpointEvery == 0 {
			c.CheckpointEvery = DefaultCheckpointEvery
		}
	}
	return c
}
