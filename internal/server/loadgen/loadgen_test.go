package loadgen

import (
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/server"
	"repro/internal/trace"
)

// replayWorld is a 4-hotspot line world with a 3-slot trace hitting
// every hotspot.
func replayWorld(t *testing.T) (*trace.World, *trace.Trace) {
	t.Helper()
	w := &trace.World{
		Bounds:        geo.Rect{MinX: -1, MinY: -1, MaxX: 4, MaxY: 1},
		NumVideos:     50,
		CDNDistanceKm: 20,
	}
	for h := 0; h < 4; h++ {
		w.Hotspots = append(w.Hotspots, trace.Hotspot{
			ID:              trace.HotspotID(h),
			Location:        geo.Point{X: float64(h), Y: 0},
			ServiceCapacity: 40,
			CacheCapacity:   20,
		})
	}
	tr := &trace.Trace{Slots: 3}
	id := 0
	for slot := 0; slot < 3; slot++ {
		for h := 0; h < 4; h++ {
			for v := 0; v < 5; v++ {
				tr.Requests = append(tr.Requests, trace.Request{
					ID:       id,
					User:     trace.UserID(id % 7),
					Video:    trace.VideoID((h*5 + v) % w.NumVideos),
					Location: geo.Point{X: float64(h) + 0.1, Y: 0.1},
					Slot:     slot,
				})
				id++
			}
		}
	}
	return w, tr
}

func startServer(t *testing.T, world *trace.World) *server.Server {
	t.Helper()
	srv, err := server.New(server.Config{World: world, PlanHistory: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestReplay(t *testing.T) {
	world, tr := replayWorld(t)
	srv := startServer(t, world)
	report, err := Replay("http://"+srv.Addr(), world, tr, Options{Workers: 3})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if report.Sent != len(tr.Requests) || report.Accepted != int64(len(tr.Requests)) || report.Rejected != 0 {
		t.Fatalf("report %+v, want %d sent/accepted", report, len(tr.Requests))
	}
	if len(report.Slots) != tr.Slots {
		t.Fatalf("%d slot reports, want %d", len(report.Slots), tr.Slots)
	}
	for _, sr := range report.Slots {
		if !sr.Scheduled || sr.Epoch == 0 || sr.Digest == "" {
			t.Errorf("slot %d not scheduled: %+v", sr.Slot, sr)
		}
	}
	if len(srv.Plans()) != tr.Slots {
		t.Fatalf("server retained %d plans, want %d", len(srv.Plans()), tr.Slots)
	}
}

func TestReplayByHotspotMode(t *testing.T) {
	world, tr := replayWorld(t)
	srv := startServer(t, world)
	report, err := Replay("http://"+srv.Addr(), world, tr, Options{Workers: 2, ByHotspot: true})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if report.Accepted != int64(len(tr.Requests)) {
		t.Fatalf("accepted %d of %d", report.Accepted, len(tr.Requests))
	}
}

func TestReplayInvalidTrace(t *testing.T) {
	world, tr := replayWorld(t)
	tr.Requests[0].Video = trace.VideoID(world.NumVideos)
	if _, err := Replay("http://127.0.0.1:0", world, tr, Options{}); err == nil {
		t.Fatal("invalid trace accepted")
	}
}

func TestReplayUnreachableServer(t *testing.T) {
	world, tr := replayWorld(t)
	_, err := Replay("http://127.0.0.1:1", world, tr, Options{Workers: 1})
	if err == nil || !strings.Contains(err.Error(), "loadgen") {
		t.Fatalf("unreachable server: err = %v", err)
	}
}

// TestReplayCountsRejections bounds the queue so part of a slot is
// rejected with 429; Replay must report the split, not fail.
func TestReplayCountsRejections(t *testing.T) {
	world, tr := replayWorld(t)
	srv, err := server.New(server.Config{World: world, Shards: 1, QueueBound: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	report, err := Replay("http://"+srv.Addr(), world, tr, Options{Workers: 2})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if report.Rejected == 0 {
		t.Fatalf("expected rejections with QueueBound 7, report %+v", report)
	}
	if report.Accepted+report.Rejected != int64(report.Sent) {
		t.Fatalf("accepted %d + rejected %d != sent %d", report.Accepted, report.Rejected, report.Sent)
	}
}
