// Package loadgen replays an offline trace against a running online
// scheduling server (internal/server) deterministically: each
// timeslot's requests are POSTed to /ingest (concurrently — per-slot
// demand counts commute, so posting order cannot change the resulting
// plan), then the slot boundary is forced with POST /admin/advance,
// which blocks until the slot's plan is live. The per-slot report
// carries the served plan's epoch and digest so harnesses can compare
// the replay against an offline sim.Run of the same trace byte for
// byte.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/geo"
	"repro/internal/trace"
)

// Options tunes a replay.
type Options struct {
	// Workers is the number of concurrent ingest posters per slot.
	// 0 selects 4.
	Workers int
	// Client issues the HTTP requests. Nil selects a default client.
	Client *http.Client
	// ByHotspot posts {"hotspot":h} aggregation instead of the request
	// location. Off by default: posting x/y exercises the server's
	// nearest-hotspot resolution (the same code path the simulator
	// aggregates with).
	ByHotspot bool
	// Targets, when non-empty, is the full list of frontend base URLs
	// ingest posts rotate across round-robin (a multi-instance serving
	// tier accepts any request at any frontend). Slot boundaries are
	// still forced through baseURL. Empty selects baseURL alone.
	Targets []string
	// Pace, when positive, makes DriveOpenLoopContext post each
	// generated request on its arrival schedule, sleeping until
	// At/Pace from the drive's start (Pace 1 replays in real time,
	// Pace 10 ten times faster). 0 posts as fast as the workers go.
	// Only open-loop drives honour it.
	Pace float64
}

// SlotReport is the outcome of replaying one timeslot.
type SlotReport struct {
	Slot     int   `json:"slot"`
	Sent     int   `json:"sent"`
	Accepted int64 `json:"accepted"`
	Rejected int64 `json:"rejected"`
	// Scheduled reports whether the advance produced a plan for this
	// slot (false for slots with no accepted requests).
	Scheduled bool   `json:"scheduled"`
	Epoch     int64  `json:"epoch"`
	Digest    string `json:"digest"`
}

// Report is the outcome of a full replay.
type Report struct {
	Slots    []SlotReport `json:"slots"`
	Sent     int          `json:"sent"`
	Accepted int64        `json:"accepted"`
	Rejected int64        `json:"rejected"`
}

// ingestBody mirrors the server's wire form.
type ingestBody struct {
	User    int64    `json:"user"`
	Video   int64    `json:"video"`
	Hotspot *int64   `json:"hotspot,omitempty"`
	X       *float64 `json:"x,omitempty"`
	Y       *float64 `json:"y,omitempty"`
}

// Replay drives the full trace through the server at baseURL
// ("http://host:port"), slot by slot. Any HTTP or transport failure
// aborts the replay; 429 rejections are counted, not retried, so a
// harness asserting byte-identity should size the server's QueueBound
// above the largest slot.
func Replay(baseURL string, world *trace.World, tr *trace.Trace, opts Options) (*Report, error) {
	if err := tr.Validate(world); err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 4
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	// Drop the keep-alive pool once the drive completes: conns left
	// behind (including spare dials that never carried a request) keep
	// the tier's graceful Shutdown waiting out its drain deadline.
	defer client.CloseIdleConnections()

	targets := opts.Targets
	if len(targets) == 0 {
		targets = []string{baseURL}
	}

	report := &Report{}
	for slot, reqs := range tr.BySlot() {
		sr, err := replaySlot(client, baseURL, targets, slot, reqs, workers, opts.ByHotspot, world)
		if err != nil {
			return report, err
		}
		report.Slots = append(report.Slots, sr)
		report.Sent += sr.Sent
		report.Accepted += sr.Accepted
		report.Rejected += sr.Rejected
	}
	return report, nil
}

// replaySlot encodes one slot's requests and drives them through the
// tier.
func replaySlot(client *http.Client, baseURL string, targets []string, slot int, reqs []trace.Request, workers int, byHotspot bool, world *trace.World) (SlotReport, error) {
	var index *geo.Grid
	if byHotspot {
		g, err := world.Index()
		if err != nil {
			return SlotReport{Slot: slot, Sent: len(reqs)}, fmt.Errorf("loadgen: %w", err)
		}
		index = g
	}
	bodies := make([][]byte, len(reqs))
	for i, req := range reqs {
		body := ingestBody{User: int64(req.User), Video: int64(req.Video)}
		if index != nil {
			h, _, ok := index.Nearest(req.Location)
			if !ok {
				return SlotReport{Slot: slot, Sent: len(reqs)}, fmt.Errorf("loadgen: no hotspot for request %d", req.ID)
			}
			hh := int64(h)
			body.Hotspot = &hh
		} else {
			x, y := req.Location.X, req.Location.Y
			body.X, body.Y = &x, &y
		}
		data, err := json.Marshal(body)
		if err != nil {
			return SlotReport{Slot: slot, Sent: len(reqs)}, fmt.Errorf("loadgen: %w", err)
		}
		bodies[i] = data
	}
	return driveSlot(client, baseURL, targets, slot, bodies, workers)
}

// driveSlot posts one slot's pre-encoded ingest bodies (rotating across
// targets) and forces the slot boundary through baseURL.
func driveSlot(client *http.Client, baseURL string, targets []string, slot int, bodies [][]byte, workers int) (SlotReport, error) {
	sr := SlotReport{Slot: slot, Sent: len(bodies)}
	var accepted, rejected, rr atomic.Int64
	errs := make(chan error, workers)
	work := make(chan []byte)
	var wg sync.WaitGroup
	// failed makes workers drain the channel without posting once any
	// of them errors, so the feeding loop below never blocks.
	var failed atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for body := range work {
				if failed.Load() {
					continue
				}
				target := targets[int(uint64(rr.Add(1)-1)%uint64(len(targets)))]
				status, err := postIngest(client, target, body)
				if err != nil {
					failed.Store(true)
					select {
					case errs <- err:
					default:
					}
					continue
				}
				switch status {
				case http.StatusAccepted:
					accepted.Add(1)
				case http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					failed.Store(true)
					select {
					case errs <- fmt.Errorf("loadgen: ingest status %d", status):
					default:
					}
				}
			}
		}()
	}
	for _, body := range bodies {
		work <- body
	}
	close(work)
	wg.Wait()
	select {
	case err := <-errs:
		return sr, err
	default:
	}
	sr.Accepted = accepted.Load()
	sr.Rejected = rejected.Load()

	adv, err := advance(client, baseURL)
	if err != nil {
		return sr, err
	}
	sr.Scheduled = adv.Scheduled
	sr.Epoch = adv.Epoch
	sr.Digest = adv.Digest
	return sr, nil
}

// postIngest sends one pre-encoded body and returns the HTTP status.
func postIngest(client *http.Client, target string, body []byte) (int, error) {
	resp, err := client.Post(target+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, fmt.Errorf("loadgen: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// advanceResponse is POST /admin/advance's reply.
type advanceResponse struct {
	Slot      int    `json:"slot"`
	Scheduled bool   `json:"scheduled"`
	Epoch     int64  `json:"epoch"`
	Digest    string `json:"digest"`
}

// advance forces one slot boundary.
func advance(client *http.Client, baseURL string) (advanceResponse, error) {
	var out advanceResponse
	resp, err := client.Post(baseURL+"/admin/advance", "application/json", nil)
	if err != nil {
		return out, fmt.Errorf("loadgen: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("loadgen: advance status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, fmt.Errorf("loadgen: decoding advance reply: %w", err)
	}
	return out, nil
}
