package loadgen

import (
	"reflect"
	"testing"
)

// FuzzWorkloadSpec holds the workload-spec parser to its contracts:
// never panic on arbitrary input, and for every spec it does accept,
// (1) the parsed classes are internally consistent (positive clients
// and rate, shape agreeing with the arrival distribution) and (2) the
// grammar round-trips — rendering the spec and re-parsing it yields
// the identical spec, so a stored spec always regenerates the same
// workload.
func FuzzWorkloadSpec(f *testing.F) {
	seeds := []string{
		"class a clients=1 arrival=poisson rate=1",
		"class steady clients=20 arrival=poisson rate=5 videos=zipf:0.8",
		"class bursty clients=8 arrival=gamma rate=10 shape=0.5 videos=zipf:1.1",
		"class smooth clients=4 arrival=weibull rate=2 shape=2 videos=uniform",
		"# comment\n\nclass a clients=1 arrival=poisson rate=0.25\n",
		"class a clients=1 arrival=poisson rate=1e-3",
		"class a clients=1 arrival=poisson rate=1 shape=2",
		"class a clients=0 arrival=poisson rate=1",
		"class a clients=99999999999999999999 arrival=poisson rate=1",
		"class a rate=NaN arrival=poisson clients=1",
		"class a=b",
		"class",
		"server x=1",
		"class a clients=1 arrival=gamma rate=1 shape=Inf",
		"class a clients=1 arrival=poisson rate=1 videos=zipf:",
		"\x00\xff",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		spec, err := ParseSpec(text)
		if err != nil {
			return
		}
		if len(spec.Classes) == 0 {
			t.Fatal("accepted a spec with no classes")
		}
		for _, c := range spec.Classes {
			if c.Clients <= 0 || c.Clients > maxSpecClients {
				t.Fatalf("class %s: accepted clients=%d", c.Name, c.Clients)
			}
			if !(c.Rate > 0) {
				t.Fatalf("class %s: accepted rate=%v", c.Name, c.Rate)
			}
			switch c.Arrival {
			case ArrivalPoisson:
				if c.Shape != 0 {
					t.Fatalf("class %s: poisson with shape %v", c.Name, c.Shape)
				}
			case ArrivalGamma, ArrivalWeibull:
				if !(c.Shape > 0) {
					t.Fatalf("class %s: %s with shape %v", c.Name, c.Arrival, c.Shape)
				}
			default:
				t.Fatalf("class %s: accepted arrival %q", c.Name, c.Arrival)
			}
			if c.Uniform && c.ZipfAlpha != 0 {
				t.Fatalf("class %s: uniform with zipf alpha %v", c.Name, c.ZipfAlpha)
			}
		}
		again, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("rendered spec %q does not re-parse: %v", spec.String(), err)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Fatalf("grammar round trip changed the spec:\n%+v\n%+v", spec, again)
		}
	})
}
