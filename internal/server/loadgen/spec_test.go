package loadgen

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

const sampleSpec = `
# ServeGen-style mixed workload.
class steady  clients=20 arrival=poisson rate=5
class bursty  clients=8  arrival=gamma   rate=10 shape=0.5 videos=zipf:1.1
class smooth  clients=4  arrival=weibull rate=2  shape=2   videos=uniform
`

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec(sampleSpec)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	want := []ClassSpec{
		{Name: "steady", Clients: 20, Arrival: ArrivalPoisson, Rate: 5, ZipfAlpha: 0.8},
		{Name: "bursty", Clients: 8, Arrival: ArrivalGamma, Rate: 10, Shape: 0.5, ZipfAlpha: 1.1},
		{Name: "smooth", Clients: 4, Arrival: ArrivalWeibull, Rate: 2, Shape: 2, Uniform: true},
	}
	if !reflect.DeepEqual(spec.Classes, want) {
		t.Fatalf("parsed %+v\nwant %+v", spec.Classes, want)
	}
	if got := spec.Clients(); got != 32 {
		t.Errorf("Clients() = %d, want 32", got)
	}
	if got := spec.OfferedLoad(); math.Abs(got-188) > 1e-9 {
		t.Errorf("OfferedLoad() = %v, want 188", got)
	}
}

// TestSpecStringRoundTrip: the rendered grammar re-parses to the same
// spec (the fuzz target extends this to arbitrary parsed inputs).
func TestSpecStringRoundTrip(t *testing.T) {
	spec, err := ParseSpec(sampleSpec)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	again, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", spec.String(), err)
	}
	if !reflect.DeepEqual(spec, again) {
		t.Fatalf("round trip changed the spec:\n%+v\n%+v", spec, again)
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := []struct{ name, text string }{
		{"empty", ""},
		{"comments only", "# nothing\n\n"},
		{"not a class", "server x=1"},
		{"missing name", "class"},
		{"name with equals", "class a=b clients=1 arrival=poisson rate=1"},
		{"duplicate class", "class a clients=1 arrival=poisson rate=1\nclass a clients=1 arrival=poisson rate=1"},
		{"no clients", "class a arrival=poisson rate=1"},
		{"zero clients", "class a clients=0 arrival=poisson rate=1"},
		{"clients above cap", "class a clients=99999999 arrival=poisson rate=1"},
		{"no arrival", "class a clients=1 rate=1"},
		{"bad arrival", "class a clients=1 arrival=pareto rate=1"},
		{"no rate", "class a clients=1 arrival=poisson"},
		{"zero rate", "class a clients=1 arrival=poisson rate=0"},
		{"nan rate", "class a clients=1 arrival=poisson rate=NaN"},
		{"poisson with shape", "class a clients=1 arrival=poisson rate=1 shape=2"},
		{"gamma without shape", "class a clients=1 arrival=gamma rate=1"},
		{"weibull zero shape", "class a clients=1 arrival=weibull rate=1 shape=0"},
		{"bad videos", "class a clients=1 arrival=poisson rate=1 videos=pareto"},
		{"negative zipf", "class a clients=1 arrival=poisson rate=1 videos=zipf:-1"},
		{"duplicate key", "class a clients=1 clients=2 arrival=poisson rate=1"},
		{"unknown key", "class a clients=1 arrival=poisson rate=1 color=red"},
		{"bare key", "class a clients=1 arrival=poisson rate=1 shape"},
	}
	for _, tc := range cases {
		if _, err := ParseSpec(tc.text); err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.text)
		}
	}
}

// TestGenerateReproducible: same spec, seed, and horizon → the
// identical stream; a different seed → a different stream.
func TestGenerateReproducible(t *testing.T) {
	spec, err := ParseSpec(sampleSpec)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	a, err := spec.Generate(11, 4, 1.0, 12, 200)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := spec.Generate(11, 4, 1.0, 12, 200)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different streams")
	}
	c, err := spec.Generate(12, 4, 1.0, 12, 200)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical streams")
	}
	if len(a.Slots) != 4 {
		t.Fatalf("got %d slots, want 4", len(a.Slots))
	}
	// Offered load 188 req/s over 4 s: the open-loop total should land
	// near 752 (loose 3-sigma-ish band; the draw is seeded, so this
	// cannot flake).
	if a.Total < 500 || a.Total > 1000 {
		t.Errorf("generated %d requests, expected ≈752", a.Total)
	}
	count := 0
	for s, reqs := range a.Slots {
		count += len(reqs)
		for _, r := range reqs {
			if r.Hotspot < 0 || r.Hotspot >= 12 {
				t.Fatalf("slot %d: hotspot %d outside [0, 12)", s, r.Hotspot)
			}
			if r.Video < 0 || r.Video >= 200 {
				t.Fatalf("slot %d: video %d outside [0, 200)", s, r.Video)
			}
			if r.User < 0 || r.User >= 32 {
				t.Fatalf("slot %d: user %d outside the 32-client population", s, r.User)
			}
		}
	}
	if count != a.Total {
		t.Errorf("Total %d, slots sum to %d", a.Total, count)
	}
}

// TestGenerateClassIndependence: editing one class leaves every other
// class's requests byte-identical (the split-stream contract).
func TestGenerateClassIndependence(t *testing.T) {
	one, err := ParseSpec("class a clients=6 arrival=poisson rate=20\nclass b clients=3 arrival=gamma rate=10 shape=0.7")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	two, err := ParseSpec("class a clients=6 arrival=poisson rate=20\nclass b clients=3 arrival=weibull rate=30 shape=2")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	sa, err := one.Generate(5, 3, 1.0, 8, 50)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	sb, err := two.Generate(5, 3, 1.0, 8, 50)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// Class a is users [0, 6); its requests must be identical in both.
	filter := func(st *Stream) [][]GenRequest {
		out := make([][]GenRequest, len(st.Slots))
		for s, reqs := range st.Slots {
			for _, r := range reqs {
				if r.User < 6 {
					out[s] = append(out[s], r)
				}
			}
		}
		return out
	}
	if !reflect.DeepEqual(filter(sa), filter(sb)) {
		t.Fatal("editing class b perturbed class a's stream")
	}
}

func TestGenerateValidation(t *testing.T) {
	spec, err := ParseSpec("class a clients=1 arrival=poisson rate=1")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if _, err := spec.Generate(1, 0, 1, 4, 10); err == nil {
		t.Error("accepted zero slots")
	}
	if _, err := spec.Generate(1, 2, 0, 4, 10); err == nil {
		t.Error("accepted zero slot duration")
	}
	if _, err := spec.Generate(1, 2, 1, 0, 10); err == nil {
		t.Error("accepted zero hotspots")
	}
	if _, err := spec.Generate(1, 2, 1, 4, 0); err == nil {
		t.Error("accepted zero videos")
	}
	huge, err := ParseSpec("class a clients=1000000 arrival=poisson rate=1000")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if _, err := huge.Generate(1, 1000, 1, 4, 10); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Errorf("oversized horizon not rejected: %v", err)
	}
}

func TestGenRequestAppendJSON(t *testing.T) {
	got := string(GenRequest{User: 7, Video: 42, Hotspot: 3}.AppendJSON(nil))
	want := `{"user":7,"video":42,"hotspot":3}`
	if got != want {
		t.Fatalf("AppendJSON = %s, want %s", got, want)
	}
}
