package loadgen

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// The ServeGen-style workload specification: a line-based grammar
// declaring client classes, each an open-loop population of independent
// clients with its own inter-arrival process and video-popularity
// skew. Blank lines and '#' comments are ignored; every other line is
//
//	class <name> clients=N arrival=<dist> rate=R [shape=S] [videos=zipf:A|uniform]
//
// where <dist> is poisson, gamma, or weibull; rate R is each client's
// mean request rate in requests/second (so whatever the distribution
// and shape, the class's offered load is clients·rate req/s); shape S
// is required for gamma and weibull (burstiness: shape < 1 is burstier
// than Poisson, shape > 1 smoother) and forbidden for poisson; videos
// selects the per-request popularity distribution (default zipf:0.8).
// Parsing is strict: unknown keys, duplicate keys, duplicate class
// names, and out-of-range values are all errors.

// Arrival distributions.
const (
	ArrivalPoisson = "poisson"
	ArrivalGamma   = "gamma"
	ArrivalWeibull = "weibull"
)

// ClassSpec is one declared client class.
type ClassSpec struct {
	// Name labels the class (unique within a Spec; it seeds the class's
	// random streams, so renaming a class changes its draws but leaves
	// every other class byte-identical).
	Name string
	// Clients is the number of independent open-loop clients.
	Clients int
	// Arrival is the inter-arrival distribution (Arrival* constants).
	Arrival string
	// Rate is each client's mean request rate, requests/second.
	Rate float64
	// Shape is the gamma/weibull shape parameter (0 for poisson).
	Shape float64
	// ZipfAlpha is the video-popularity Zipf exponent; Uniform selects
	// the uniform catalogue instead.
	ZipfAlpha float64
	Uniform   bool
}

// Spec is a parsed workload specification.
type Spec struct {
	Classes []ClassSpec
}

// Clients returns the total client population.
func (s *Spec) Clients() int {
	n := 0
	for _, c := range s.Classes {
		n += c.Clients
	}
	return n
}

// OfferedLoad returns the aggregate mean request rate, requests/second.
func (s *Spec) OfferedLoad() float64 {
	var r float64
	for _, c := range s.Classes {
		r += float64(c.Clients) * c.Rate
	}
	return r
}

// String renders the spec back in the grammar (ParseSpec(s.String())
// reproduces s — the fuzz target holds the round trip).
func (s *Spec) String() string {
	var b strings.Builder
	for _, c := range s.Classes {
		fmt.Fprintf(&b, "class %s clients=%d arrival=%s rate=%s", c.Name, c.Clients, c.Arrival,
			strconv.FormatFloat(c.Rate, 'g', -1, 64))
		if c.Arrival != ArrivalPoisson {
			fmt.Fprintf(&b, " shape=%s", strconv.FormatFloat(c.Shape, 'g', -1, 64))
		}
		if c.Uniform {
			b.WriteString(" videos=uniform")
		} else {
			fmt.Fprintf(&b, " videos=zipf:%s", strconv.FormatFloat(c.ZipfAlpha, 'g', -1, 64))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// maxSpecClients bounds the declared population so a malformed or
// adversarial spec cannot demand gigabytes of generation state.
const maxSpecClients = 1 << 20

// ParseSpec parses the workload grammar above.
func ParseSpec(text string) (*Spec, error) {
	spec := &Spec{}
	seen := make(map[string]bool)
	for ln, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if fields[0] != "class" || len(fields) < 2 {
			return nil, fmt.Errorf("loadgen: line %d: expected \"class <name> key=value...\"", ln+1)
		}
		c := ClassSpec{Name: fields[1], ZipfAlpha: 0.8}
		if strings.ContainsRune(c.Name, '=') {
			return nil, fmt.Errorf("loadgen: line %d: class name missing", ln+1)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("loadgen: line %d: duplicate class %q", ln+1, c.Name)
		}
		seen[c.Name] = true
		keys := make(map[string]bool)
		for _, kv := range fields[2:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok || val == "" {
				return nil, fmt.Errorf("loadgen: line %d: %q is not key=value", ln+1, kv)
			}
			if keys[key] {
				return nil, fmt.Errorf("loadgen: line %d: duplicate key %q", ln+1, key)
			}
			keys[key] = true
			var err error
			switch key {
			case "clients":
				c.Clients, err = strconv.Atoi(val)
			case "arrival":
				switch val {
				case ArrivalPoisson, ArrivalGamma, ArrivalWeibull:
					c.Arrival = val
				default:
					err = fmt.Errorf("unknown arrival distribution %q", val)
				}
			case "rate":
				c.Rate, err = parsePositive(val)
			case "shape":
				c.Shape, err = parsePositive(val)
			case "videos":
				if val == "uniform" {
					c.Uniform = true
					c.ZipfAlpha = 0
				} else if alpha, okZ := strings.CutPrefix(val, "zipf:"); okZ {
					c.ZipfAlpha, err = strconv.ParseFloat(alpha, 64)
					if err == nil && (c.ZipfAlpha < 0 || math.IsNaN(c.ZipfAlpha) || math.IsInf(c.ZipfAlpha, 0)) {
						err = fmt.Errorf("zipf exponent %v out of range", c.ZipfAlpha)
					}
				} else {
					err = fmt.Errorf("videos must be uniform or zipf:<alpha>, got %q", val)
				}
			default:
				err = fmt.Errorf("unknown key %q", key)
			}
			if err != nil {
				return nil, fmt.Errorf("loadgen: line %d: %s: %w", ln+1, key, err)
			}
		}
		switch {
		case c.Clients <= 0:
			return nil, fmt.Errorf("loadgen: line %d: class %s needs clients >= 1", ln+1, c.Name)
		case c.Clients > maxSpecClients:
			return nil, fmt.Errorf("loadgen: line %d: class %s: %d clients above the %d cap", ln+1, c.Name, c.Clients, maxSpecClients)
		case c.Arrival == "":
			return nil, fmt.Errorf("loadgen: line %d: class %s needs arrival=", ln+1, c.Name)
		case c.Rate <= 0:
			return nil, fmt.Errorf("loadgen: line %d: class %s needs rate > 0", ln+1, c.Name)
		case c.Arrival == ArrivalPoisson && keys["shape"]:
			return nil, fmt.Errorf("loadgen: line %d: class %s: poisson takes no shape", ln+1, c.Name)
		case c.Arrival != ArrivalPoisson && c.Shape <= 0:
			return nil, fmt.Errorf("loadgen: line %d: class %s: %s needs shape > 0", ln+1, c.Name, c.Arrival)
		}
		spec.Classes = append(spec.Classes, c)
	}
	if len(spec.Classes) == 0 {
		return nil, fmt.Errorf("loadgen: spec declares no classes")
	}
	return spec, nil
}

// parsePositive parses a strictly positive finite float.
func parsePositive(val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if !(f > 0) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("%v is not positive and finite", f)
	}
	return f, nil
}
