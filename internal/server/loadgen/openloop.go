package loadgen

import (
	"fmt"
	"math"
	"net/http"
	"strconv"

	"repro/internal/stats"
)

// Open-loop generation: every client injects requests on its own
// arrival process's schedule, independent of how fast the server
// answers — the ServeGen discipline, where load does not degrade
// gracefully just because the system under test slowed down. The
// schedule is materialised up front (Generate) so the same spec, seed,
// and horizon always produce the byte-identical request stream,
// whatever the transport later does with it.

// GenRequest is one generated request, pre-resolved to its aggregation
// hotspot (open-loop clients are stationary: each client draws its
// hotspot once).
type GenRequest struct {
	User    int64
	Video   int64
	Hotspot int64
}

// AppendJSON appends the request's ingest wire form to b.
func (r GenRequest) AppendJSON(b []byte) []byte {
	b = append(b, `{"user":`...)
	b = strconv.AppendInt(b, r.User, 10)
	b = append(b, `,"video":`...)
	b = strconv.AppendInt(b, r.Video, 10)
	b = append(b, `,"hotspot":`...)
	b = strconv.AppendInt(b, r.Hotspot, 10)
	b = append(b, '}')
	return b
}

// Stream is a materialised open-loop request schedule, bucketed by
// timeslot.
type Stream struct {
	// Slots[s] holds slot s's requests, ordered by (class, client,
	// arrival time) — deterministic, and demand counts commute so the
	// order never affects plans.
	Slots [][]GenRequest
	// Total is the request count across all slots.
	Total int
}

// maxStreamRequests bounds a single generated stream (expected count;
// guards against a spec whose offered load times horizon would not fit
// in memory).
const maxStreamRequests = 1 << 26

// Generate materialises the spec's request stream: slots timeslots of
// slotSeconds each, clients pinned to hotspots in [0, numHotspots),
// videos drawn from each class's popularity distribution over
// [0, numVideos). Every random draw comes from a per-(class, client)
// stats.SplitRand stream derived from seed, so the stream is
// byte-reproducible and editing one class never perturbs another.
func (s *Spec) Generate(seed int64, slots int, slotSeconds float64, numHotspots, numVideos int) (*Stream, error) {
	if slots <= 0 {
		return nil, fmt.Errorf("loadgen: non-positive slot count %d", slots)
	}
	if !(slotSeconds > 0) || math.IsInf(slotSeconds, 0) {
		return nil, fmt.Errorf("loadgen: slot duration %v is not positive and finite", slotSeconds)
	}
	if numHotspots <= 0 || numVideos <= 0 {
		return nil, fmt.Errorf("loadgen: need hotspots and videos (got %d, %d)", numHotspots, numVideos)
	}
	horizon := float64(slots) * slotSeconds
	if expected := s.OfferedLoad() * horizon; expected > maxStreamRequests {
		return nil, fmt.Errorf("loadgen: spec offers %.0f requests over the horizon, above the %d cap", expected, maxStreamRequests)
	}

	out := &Stream{Slots: make([][]GenRequest, slots)}
	var user int64
	for _, c := range s.Classes {
		var videos *stats.Alias
		if !c.Uniform {
			v, err := stats.NewZipf(numVideos, c.ZipfAlpha)
			if err != nil {
				return nil, fmt.Errorf("loadgen: class %s: %w", c.Name, err)
			}
			videos = v
		}
		// Normalise each distribution to mean inter-arrival 1/rate so a
		// class's offered load is clients·rate regardless of shape.
		gammaScale := 1.0 / (c.Shape * c.Rate)
		weibullScale := 1.0 / (c.Rate * math.Gamma(1+1/c.Shape))
		for i := 0; i < c.Clients; i++ {
			rng := stats.SplitRand(seed, "loadgen/"+c.Name+"/"+strconv.Itoa(i))
			hotspot := rng.Int63n(int64(numHotspots))
			id := user
			user++
			for t := 0.0; ; {
				switch c.Arrival {
				case ArrivalPoisson:
					t += stats.SampleExp(rng, c.Rate)
				case ArrivalGamma:
					t += stats.SampleGamma(rng, c.Shape, gammaScale)
				default:
					t += stats.SampleWeibull(rng, c.Shape, weibullScale)
				}
				if t >= horizon {
					break
				}
				video := int64(0)
				if videos != nil {
					video = int64(videos.Sample(rng))
				} else {
					video = rng.Int63n(int64(numVideos))
				}
				slot := int(t / slotSeconds)
				out.Slots[slot] = append(out.Slots[slot], GenRequest{User: id, Video: video, Hotspot: hotspot})
				out.Total++
			}
		}
	}
	return out, nil
}

// DriveOpenLoop posts a generated stream through a serving tier slot by
// slot: each slot's requests fan out across opts.Targets (defaulting to
// baseURL alone), then the slot boundary is forced through baseURL.
// Reporting matches Replay's.
func DriveOpenLoop(baseURL string, stream *Stream, opts Options) (*Report, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = 4
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	targets := opts.Targets
	if len(targets) == 0 {
		targets = []string{baseURL}
	}
	report := &Report{}
	var scratch []byte
	for slot, reqs := range stream.Slots {
		bodies := make([][]byte, len(reqs))
		for i, r := range reqs {
			scratch = r.AppendJSON(scratch[:0])
			bodies[i] = append([]byte(nil), scratch...)
		}
		sr, err := driveSlot(client, baseURL, targets, slot, bodies, workers)
		report.Slots = append(report.Slots, sr)
		report.Sent += sr.Sent
		report.Accepted += sr.Accepted
		report.Rejected += sr.Rejected
		if err != nil {
			return report, err
		}
	}
	return report, nil
}
