package loadgen

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/stats"
)

// Open-loop generation: every client injects requests on its own
// arrival process's schedule, independent of how fast the server
// answers — the ServeGen discipline, where load does not degrade
// gracefully just because the system under test slowed down. The
// schedule is materialised up front (Generate) so the same spec, seed,
// and horizon always produce the byte-identical request stream,
// whatever the transport later does with it.

// GenRequest is one generated request, pre-resolved to its aggregation
// hotspot (open-loop clients are stationary: each client draws its
// hotspot once).
type GenRequest struct {
	User    int64
	Video   int64
	Hotspot int64
	// At is the arrival offset in seconds from the stream's start
	// (paced drives sleep until it; the unpaced drive ignores it).
	At float64
}

// AppendJSON appends the request's ingest wire form to b.
func (r GenRequest) AppendJSON(b []byte) []byte {
	b = append(b, `{"user":`...)
	b = strconv.AppendInt(b, r.User, 10)
	b = append(b, `,"video":`...)
	b = strconv.AppendInt(b, r.Video, 10)
	b = append(b, `,"hotspot":`...)
	b = strconv.AppendInt(b, r.Hotspot, 10)
	b = append(b, '}')
	return b
}

// Stream is a materialised open-loop request schedule, bucketed by
// timeslot.
type Stream struct {
	// Slots[s] holds slot s's requests, ordered by (class, client,
	// arrival time) — deterministic, and demand counts commute so the
	// order never affects plans.
	Slots [][]GenRequest
	// Total is the request count across all slots.
	Total int
}

// maxStreamRequests bounds a single generated stream (expected count;
// guards against a spec whose offered load times horizon would not fit
// in memory).
const maxStreamRequests = 1 << 26

// Generate materialises the spec's request stream: slots timeslots of
// slotSeconds each, clients pinned to hotspots in [0, numHotspots),
// videos drawn from each class's popularity distribution over
// [0, numVideos). Every random draw comes from a per-(class, client)
// stats.SplitRand stream derived from seed, so the stream is
// byte-reproducible and editing one class never perturbs another.
func (s *Spec) Generate(seed int64, slots int, slotSeconds float64, numHotspots, numVideos int) (*Stream, error) {
	if slots <= 0 {
		return nil, fmt.Errorf("loadgen: non-positive slot count %d", slots)
	}
	if !(slotSeconds > 0) || math.IsInf(slotSeconds, 0) {
		return nil, fmt.Errorf("loadgen: slot duration %v is not positive and finite", slotSeconds)
	}
	if numHotspots <= 0 || numVideos <= 0 {
		return nil, fmt.Errorf("loadgen: need hotspots and videos (got %d, %d)", numHotspots, numVideos)
	}
	horizon := float64(slots) * slotSeconds
	if expected := s.OfferedLoad() * horizon; expected > maxStreamRequests {
		return nil, fmt.Errorf("loadgen: spec offers %.0f requests over the horizon, above the %d cap", expected, maxStreamRequests)
	}

	out := &Stream{Slots: make([][]GenRequest, slots)}
	var user int64
	for _, c := range s.Classes {
		var videos *stats.Alias
		if !c.Uniform {
			v, err := stats.NewZipf(numVideos, c.ZipfAlpha)
			if err != nil {
				return nil, fmt.Errorf("loadgen: class %s: %w", c.Name, err)
			}
			videos = v
		}
		// Normalise each distribution to mean inter-arrival 1/rate so a
		// class's offered load is clients·rate regardless of shape.
		gammaScale := 1.0 / (c.Shape * c.Rate)
		weibullScale := 1.0 / (c.Rate * math.Gamma(1+1/c.Shape))
		for i := 0; i < c.Clients; i++ {
			rng := stats.SplitRand(seed, "loadgen/"+c.Name+"/"+strconv.Itoa(i))
			hotspot := rng.Int63n(int64(numHotspots))
			id := user
			user++
			for t := 0.0; ; {
				switch c.Arrival {
				case ArrivalPoisson:
					t += stats.SampleExp(rng, c.Rate)
				case ArrivalGamma:
					t += stats.SampleGamma(rng, c.Shape, gammaScale)
				default:
					t += stats.SampleWeibull(rng, c.Shape, weibullScale)
				}
				if t >= horizon {
					break
				}
				video := int64(0)
				if videos != nil {
					video = int64(videos.Sample(rng))
				} else {
					video = rng.Int63n(int64(numVideos))
				}
				slot := int(t / slotSeconds)
				out.Slots[slot] = append(out.Slots[slot], GenRequest{User: id, Video: video, Hotspot: hotspot, At: t})
				out.Total++
			}
		}
	}
	return out, nil
}

// DriveOpenLoop posts a generated stream through a serving tier slot by
// slot: each slot's requests fan out across opts.Targets (defaulting to
// baseURL alone), then the slot boundary is forced through baseURL.
// Reporting matches Replay's.
func DriveOpenLoop(baseURL string, stream *Stream, opts Options) (*Report, error) {
	return DriveOpenLoopContext(context.Background(), baseURL, stream, opts)
}

// DriveOpenLoopContext is DriveOpenLoop bounded by ctx: cancellation
// is honoured between slots, between posts, and — in paced mode —
// during the inter-arrival sleeps themselves, so a paced drive never
// outlives its caller by a sleep. With opts.Pace > 0 each request is
// posted on its generated arrival time (sleeping At/Pace from the
// drive's start, single in-order poster — the open-loop discipline);
// with Pace 0 requests are fanned out as fast as the workers go.
func DriveOpenLoopContext(ctx context.Context, baseURL string, stream *Stream, opts Options) (*Report, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = 4
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	// See Replay: lingering keep-alives stall the tier's Shutdown.
	defer client.CloseIdleConnections()
	targets := opts.Targets
	if len(targets) == 0 {
		targets = []string{baseURL}
	}
	report := &Report{}
	var scratch []byte
	start := time.Now()
	for slot, reqs := range stream.Slots {
		if err := ctx.Err(); err != nil {
			return report, err
		}
		var sr SlotReport
		var err error
		if opts.Pace > 0 {
			sr, err = drivePacedSlot(ctx, client, baseURL, targets, slot, reqs, opts.Pace, start)
		} else {
			bodies := make([][]byte, len(reqs))
			for i, r := range reqs {
				scratch = r.AppendJSON(scratch[:0])
				bodies[i] = append([]byte(nil), scratch...)
			}
			sr, err = driveSlot(client, baseURL, targets, slot, bodies, workers)
		}
		report.Slots = append(report.Slots, sr)
		report.Sent += sr.Sent
		report.Accepted += sr.Accepted
		report.Rejected += sr.Rejected
		if err != nil {
			return report, err
		}
	}
	return report, nil
}

// drivePacedSlot posts one slot's requests in arrival order, sleeping
// until each request's scaled arrival offset. Every sleep selects on
// ctx, so cancellation interrupts the drive mid-sleep.
func drivePacedSlot(ctx context.Context, client *http.Client, baseURL string, targets []string, slot int, reqs []GenRequest, pace float64, start time.Time) (SlotReport, error) {
	sorted := append([]GenRequest(nil), reqs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	sr := SlotReport{Slot: slot, Sent: len(reqs)}
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	var scratch []byte
	for i, r := range sorted {
		d := time.Duration(r.At/pace*float64(time.Second)) - time.Since(start)
		if d > 0 {
			timer.Reset(d)
			select {
			case <-timer.C:
			case <-ctx.Done():
				return sr, ctx.Err()
			}
		} else if err := ctx.Err(); err != nil {
			// Behind schedule: no sleep to interrupt, but cancellation
			// still stops the burst.
			return sr, err
		}
		scratch = r.AppendJSON(scratch[:0])
		status, err := postIngest(client, targets[i%len(targets)], scratch)
		if err != nil {
			return sr, err
		}
		switch status {
		case http.StatusAccepted:
			sr.Accepted++
		case http.StatusTooManyRequests:
			sr.Rejected++
		default:
			return sr, fmt.Errorf("loadgen: ingest status %d", status)
		}
	}
	adv, err := advance(client, baseURL)
	if err != nil {
		return sr, err
	}
	sr.Scheduled = adv.Scheduled
	sr.Epoch = adv.Epoch
	sr.Digest = adv.Digest
	return sr, nil
}
