package loadgen_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/server/loadgen"
	"repro/internal/trace"
)

// openLoopWorld is a small uniform world for driver tests.
func openLoopWorld(m int) *trace.World {
	w := &trace.World{
		Bounds:        geo.Rect{MinX: -1, MinY: -1, MaxX: float64(m), MaxY: 1},
		NumVideos:     120,
		CDNDistanceKm: 20,
	}
	for h := 0; h < m; h++ {
		w.Hotspots = append(w.Hotspots, trace.Hotspot{
			ID:              trace.HotspotID(h),
			Location:        geo.Point{X: float64(h), Y: 0},
			ServiceCapacity: 50,
			CacheCapacity:   20,
		})
	}
	return w
}

// TestDriveOpenLoop drives a generated open-loop stream through a
// two-frontend serving tier over real HTTP: every generated request is
// accepted, every non-empty slot schedules, and both frontends see
// ingest traffic.
func TestDriveOpenLoop(t *testing.T) {
	spec, err := loadgen.ParseSpec(`
class steady clients=10 arrival=poisson rate=30 videos=zipf:1.0
class bursty clients=5  arrival=gamma   rate=20 shape=0.5
`)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	world := openLoopWorld(8)
	stream, err := spec.Generate(3, 4, 0.5, len(world.Hotspots), world.NumVideos)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if stream.Total == 0 {
		t.Fatal("empty stream")
	}

	reg := obs.NewRegistry()
	srv, err := server.New(server.Config{
		World:      world,
		Registry:   reg,
		Instances:  2,
		QueueBound: 1 << 20,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close()

	targets := make([]string, srv.NumInstances())
	for i := range targets {
		targets[i] = "http://" + srv.InstanceAddr(i)
	}
	report, err := loadgen.DriveOpenLoop(targets[0], stream, loadgen.Options{Workers: 4, Targets: targets})
	if err != nil {
		t.Fatalf("DriveOpenLoop: %v", err)
	}
	if report.Accepted != int64(stream.Total) || report.Rejected != 0 {
		t.Fatalf("accepted %d rejected %d of %d generated", report.Accepted, report.Rejected, stream.Total)
	}
	for _, sr := range report.Slots {
		if sr.Sent > 0 && !sr.Scheduled {
			t.Errorf("slot %d: %d requests sent but not scheduled", sr.Slot, sr.Sent)
		}
	}
	for i := 0; i < 2; i++ {
		epoch, digest := srv.InstanceEpochDigest(i)
		if epoch == 0 || digest == "" {
			t.Errorf("instance %d never installed a plan", i)
		}
	}
	if reg.Counter("server.shard.0.lookups").Value() != 0 {
		t.Error("driver should not have issued lookups")
	}
}

// TestDriveOpenLoopCancellation: a paced drive sleeping toward a far
// future arrival must return promptly — with ctx's error — when the
// context is cancelled mid-sleep, and a drive handed an
// already-cancelled context must not post anything at all.
func TestDriveOpenLoopCancellation(t *testing.T) {
	world := openLoopWorld(4)
	srv, err := server.New(server.Config{
		World:      world,
		Registry:   obs.NewRegistry(),
		QueueBound: 1 << 20,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// One slot, two arrivals: the first fires immediately, the second
	// is hours away at Pace 1 — the drive can only finish early via
	// cancellation.
	stream := &loadgen.Stream{
		Slots: [][]loadgen.GenRequest{{
			{User: 0, Video: 1, Hotspot: 0, At: 0},
			{User: 1, Video: 2, Hotspot: 1, At: 3600},
		}},
		Total: 2,
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	startAt := time.Now()
	report, err := loadgen.DriveOpenLoopContext(ctx, base, stream, loadgen.Options{Pace: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("paced drive returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(startAt); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, sleep was not interrupted", elapsed)
	}
	if report == nil || report.Accepted != 1 {
		t.Fatalf("report %+v, want exactly the pre-cancel request accepted", report)
	}

	// Already-cancelled context: nothing is posted, the error surfaces
	// before the first slot.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	report, err = loadgen.DriveOpenLoopContext(done, base, stream, loadgen.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled drive returned %v, want context.Canceled", err)
	}
	if report.Sent != 0 {
		t.Fatalf("pre-cancelled drive sent %d requests, want 0", report.Sent)
	}
}

// TestDriveOpenLoopErrorPaths drives the paced loop against stub
// servers that reject, error, and garble the protocol, covering the
// 429 accounting and both failure branches.
func TestDriveOpenLoopErrorPaths(t *testing.T) {
	stream := &loadgen.Stream{
		Slots: [][]loadgen.GenRequest{{
			{User: 0, Video: 1, Hotspot: 0, At: 0},
			{User: 1, Video: 2, Hotspot: 1, At: 0.001},
		}},
		Total: 2,
	}

	t.Run("ingest server error", func(t *testing.T) {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusInternalServerError)
		}))
		defer srv.Close()
		_, err := loadgen.DriveOpenLoop(srv.URL, stream, loadgen.Options{Pace: 1000})
		if err == nil || !strings.Contains(err.Error(), "ingest status 500") {
			t.Fatalf("err = %v, want ingest status 500", err)
		}
	})

	t.Run("rejections counted, advance garbled", func(t *testing.T) {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/ingest" {
				w.WriteHeader(http.StatusTooManyRequests)
				return
			}
			w.Write([]byte("{not json"))
		}))
		defer srv.Close()
		report, err := loadgen.DriveOpenLoop(srv.URL, stream, loadgen.Options{Pace: 1000})
		if err == nil || !strings.Contains(err.Error(), "decoding advance reply") {
			t.Fatalf("err = %v, want advance decode failure", err)
		}
		if report.Rejected != 2 {
			t.Fatalf("Rejected = %d, want 2", report.Rejected)
		}
	})

	t.Run("advance server error", func(t *testing.T) {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/ingest" {
				w.WriteHeader(http.StatusAccepted)
				return
			}
			w.WriteHeader(http.StatusBadGateway)
		}))
		defer srv.Close()
		_, err := loadgen.DriveOpenLoop(srv.URL, stream, loadgen.Options{Pace: 1000})
		if err == nil || !strings.Contains(err.Error(), "advance status 502") {
			t.Fatalf("err = %v, want advance status 502", err)
		}
	})
}
