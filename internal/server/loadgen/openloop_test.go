package loadgen_test

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/server/loadgen"
	"repro/internal/trace"
)

// openLoopWorld is a small uniform world for driver tests.
func openLoopWorld(m int) *trace.World {
	w := &trace.World{
		Bounds:        geo.Rect{MinX: -1, MinY: -1, MaxX: float64(m), MaxY: 1},
		NumVideos:     120,
		CDNDistanceKm: 20,
	}
	for h := 0; h < m; h++ {
		w.Hotspots = append(w.Hotspots, trace.Hotspot{
			ID:              trace.HotspotID(h),
			Location:        geo.Point{X: float64(h), Y: 0},
			ServiceCapacity: 50,
			CacheCapacity:   20,
		})
	}
	return w
}

// TestDriveOpenLoop drives a generated open-loop stream through a
// two-frontend serving tier over real HTTP: every generated request is
// accepted, every non-empty slot schedules, and both frontends see
// ingest traffic.
func TestDriveOpenLoop(t *testing.T) {
	spec, err := loadgen.ParseSpec(`
class steady clients=10 arrival=poisson rate=30 videos=zipf:1.0
class bursty clients=5  arrival=gamma   rate=20 shape=0.5
`)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	world := openLoopWorld(8)
	stream, err := spec.Generate(3, 4, 0.5, len(world.Hotspots), world.NumVideos)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if stream.Total == 0 {
		t.Fatal("empty stream")
	}

	reg := obs.NewRegistry()
	srv, err := server.New(server.Config{
		World:      world,
		Registry:   reg,
		Instances:  2,
		QueueBound: 1 << 20,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close()

	targets := make([]string, srv.NumInstances())
	for i := range targets {
		targets[i] = "http://" + srv.InstanceAddr(i)
	}
	report, err := loadgen.DriveOpenLoop(targets[0], stream, loadgen.Options{Workers: 4, Targets: targets})
	if err != nil {
		t.Fatalf("DriveOpenLoop: %v", err)
	}
	if report.Accepted != int64(stream.Total) || report.Rejected != 0 {
		t.Fatalf("accepted %d rejected %d of %d generated", report.Accepted, report.Rejected, stream.Total)
	}
	for _, sr := range report.Slots {
		if sr.Sent > 0 && !sr.Scheduled {
			t.Errorf("slot %d: %d requests sent but not scheduled", sr.Slot, sr.Sent)
		}
	}
	for i := 0; i < 2; i++ {
		epoch, digest := srv.InstanceEpochDigest(i)
		if epoch == 0 || digest == "" {
			t.Errorf("instance %d never installed a plan", i)
		}
	}
	if reg.Counter("server.shard.0.lookups").Value() != 0 {
		t.Error("driver should not have issued lookups")
	}
}
