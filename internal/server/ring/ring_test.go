package ring

import (
	"testing"
)

// ownersOf maps every key in [0, n) to its owner.
func ownersOf(r *Ring, n int) []int {
	out := make([]int, n)
	for k := 0; k < n; k++ {
		out[k] = r.Owner(uint64(k))
	}
	return out
}

// TestRingValidation pins the constructor and membership error paths.
func TestRingValidation(t *testing.T) {
	if _, err := New(0, 8); err == nil {
		t.Error("New(0, 8) accepted zero instances")
	}
	if _, err := New(-1, 8); err == nil {
		t.Error("New(-1, 8) accepted negative instances")
	}
	if _, err := New(2, -1); err == nil {
		t.Error("New(2, -1) accepted negative replicas")
	}
	r, err := New(2, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if r.replicas != DefaultReplicas {
		t.Errorf("replicas = %d, want default %d", r.replicas, DefaultReplicas)
	}
	if err := r.Add(1); err == nil {
		t.Error("Add(1) accepted a duplicate member")
	}
	if err := r.Add(-3); err == nil {
		t.Error("Add(-3) accepted a negative id")
	}
	if err := r.Remove(7); err == nil {
		t.Error("Remove(7) removed an absent member")
	}
	if err := r.Remove(0); err != nil {
		t.Fatalf("Remove(0): %v", err)
	}
	if err := r.Remove(1); err == nil {
		t.Error("Remove removed the last member")
	}
}

// TestRingDeterminism: two independently built rings agree on every
// ownership decision, and repeated lookups of the same key agree.
func TestRingDeterminism(t *testing.T) {
	a, err := New(8, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(8, 64)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 1000; k++ {
		if ao, bo := a.Owner(uint64(k)), b.Owner(uint64(k)); ao != bo {
			t.Fatalf("key %d: ring A owner %d, ring B owner %d", k, ao, bo)
		}
		if first, again := a.Owner(uint64(k)), a.Owner(uint64(k)); first != again {
			t.Fatalf("key %d: owner changed between lookups (%d, %d)", k, first, again)
		}
	}
	// A ring grown member by member matches one built whole.
	g, err := New(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	for id := 1; id < 8; id++ {
		if err := g.Add(id); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 1000; k++ {
		if ao, gown := a.Owner(uint64(k)), g.Owner(uint64(k)); ao != gown {
			t.Fatalf("key %d: whole-built owner %d, grown owner %d", k, ao, gown)
		}
	}
}

// TestRingBalance bounds the key-load imbalance: across 1k keys and
// the serving tier's fleet sizes, every instance owns some keys and
// the most-loaded instance stays under 2x the mean.
func TestRingBalance(t *testing.T) {
	const keys = 1000
	for _, n := range []int{2, 4, 8} {
		r, err := New(n, DefaultReplicas)
		if err != nil {
			t.Fatal(err)
		}
		load := make([]int, n)
		for k := 0; k < keys; k++ {
			o := r.Owner(uint64(k))
			if o < 0 || o >= n {
				t.Fatalf("n=%d: key %d owned by out-of-range instance %d", n, k, o)
			}
			load[o]++
		}
		mean := float64(keys) / float64(n)
		for id, l := range load {
			if l == 0 {
				t.Errorf("n=%d: instance %d owns no keys", n, id)
			}
			if float64(l) > 2*mean {
				t.Errorf("n=%d: instance %d owns %d keys, above 2x the mean %.0f", n, id, l, mean)
			}
		}
	}
}

// TestRingMinimalMovementOnJoin: when an instance joins, the only keys
// that change owner are those the new instance takes — no key moves
// between two instances present both before and after.
func TestRingMinimalMovementOnJoin(t *testing.T) {
	const keys = 1000
	for _, n := range []int{1, 2, 4, 7} {
		before, err := New(n, DefaultReplicas)
		if err != nil {
			t.Fatal(err)
		}
		after, err := New(n, DefaultReplicas)
		if err != nil {
			t.Fatal(err)
		}
		if err := after.Add(n); err != nil {
			t.Fatal(err)
		}
		ob, oa := ownersOf(before, keys), ownersOf(after, keys)
		moved := 0
		for k := 0; k < keys; k++ {
			if ob[k] == oa[k] {
				continue
			}
			moved++
			if oa[k] != n {
				t.Fatalf("n=%d: key %d moved %d -> %d, not to the joining instance %d",
					n, k, ob[k], oa[k], n)
			}
		}
		// The joiner should take roughly keys/(n+1); allow a wide
		// deterministic band but reject wholesale reshuffles.
		if max := 2 * keys / (n + 1); moved > max {
			t.Errorf("n=%d: join moved %d of %d keys, above the %d bound", n, moved, keys, max)
		}
		if moved == 0 {
			t.Errorf("n=%d: join moved no keys", n)
		}
	}
}

// TestRingMinimalMovementOnLeave: when an instance leaves, only its
// own keys are redistributed.
func TestRingMinimalMovementOnLeave(t *testing.T) {
	const keys = 1000
	for _, n := range []int{2, 4, 8} {
		before, err := New(n, DefaultReplicas)
		if err != nil {
			t.Fatal(err)
		}
		leaving := n - 1
		after, err := New(n, DefaultReplicas)
		if err != nil {
			t.Fatal(err)
		}
		if err := after.Remove(leaving); err != nil {
			t.Fatal(err)
		}
		ob, oa := ownersOf(before, keys), ownersOf(after, keys)
		for k := 0; k < keys; k++ {
			if ob[k] != leaving && ob[k] != oa[k] {
				t.Fatalf("n=%d: key %d moved %d -> %d though instance %d left",
					n, k, ob[k], oa[k], leaving)
			}
			if oa[k] == leaving {
				t.Fatalf("n=%d: key %d still owned by departed instance %d", n, k, leaving)
			}
		}
	}
}

// TestRingAccessors covers the hotspot convenience wrapper and the
// defensive Members copy.
func TestRingAccessors(t *testing.T) {
	r, err := New(3, 16)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 32; h++ {
		if got, want := r.OwnerOfHotspot(h), r.Owner(uint64(h)); got != want {
			t.Fatalf("OwnerOfHotspot(%d) = %d, want %d", h, got, want)
		}
	}
	m := r.Members()
	if len(m) != 3 || m[0] != 0 || m[1] != 1 || m[2] != 2 {
		t.Fatalf("Members() = %v", m)
	}
	m[0] = 99 // mutating the copy must not touch the ring
	if r.Members()[0] != 0 {
		t.Fatal("Members() returned internal slice")
	}
}
