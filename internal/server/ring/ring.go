// Package ring is the consistent-hash ring that shards hotspot
// ingestion across the serving tier's frontend instances. Each
// instance owns a fixed number of virtual nodes placed on a 64-bit
// hash circle; a hotspot is owned by the instance whose virtual node
// is the first at or clockwise of the hotspot's hash. The placement
// is a pure function of (instance id, replica index), so every
// process — and every run — computes the identical ownership map, and
// adding or removing an instance moves only the keys that land on the
// joining (or leaving) instance's virtual nodes: no key ever moves
// between two instances that are present both before and after the
// change (certified in ring_test.go).
package ring

import (
	"fmt"
	"sort"
)

// DefaultReplicas is the virtual-node count per instance. 128 vnodes
// keep the max/mean key-load ratio under ~1.5 for the fleet sizes the
// serving tier runs (see TestRingBalance).
const DefaultReplicas = 128

// Ring maps 64-bit keys to instance indices.
type Ring struct {
	replicas int
	// vnodes is sorted by hash; owners[i] is the instance owning
	// vnodes[i].
	vnodes []uint64
	owners []int32
	// members are the current instance ids, sorted.
	members []int
}

// mix is the splitmix64 finaliser: a cheap, well-avalanched 64-bit
// mixer, deterministic everywhere by construction.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// vnodeHash places virtual node r of instance id on the circle. The
// two stream constants keep instance bits and replica bits from
// cancelling for adjacent ids.
func vnodeHash(id, r int) uint64 {
	return mix(uint64(id)*0x9e3779b97f4a7c15 + uint64(r)*0xd1b54a32d192ed03 + 1)
}

// KeyHash places a key (e.g. a hotspot id) on the circle.
func KeyHash(key uint64) uint64 { return mix(key + 0xa0761d6478bd642f) }

// New builds a ring over instances 0..n-1 with the given virtual-node
// count per instance (0 selects DefaultReplicas).
func New(n, replicas int) (*Ring, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ring: non-positive instance count %d", n)
	}
	if replicas < 0 {
		return nil, fmt.Errorf("ring: negative replicas %d", replicas)
	}
	if replicas == 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{replicas: replicas}
	for id := 0; id < n; id++ {
		r.members = append(r.members, id)
	}
	r.rebuild()
	return r, nil
}

// rebuild recomputes the sorted vnode table from the member set.
func (r *Ring) rebuild() {
	n := len(r.members) * r.replicas
	r.vnodes = make([]uint64, 0, n)
	r.owners = make([]int32, 0, n)
	type vn struct {
		h  uint64
		id int32
	}
	all := make([]vn, 0, n)
	for _, id := range r.members {
		for k := 0; k < r.replicas; k++ {
			all = append(all, vn{vnodeHash(id, k), int32(id)})
		}
	}
	// Ties (astronomically unlikely with 64-bit hashes) break by
	// instance id so the ownership map stays a pure function of the
	// member set.
	sort.Slice(all, func(i, j int) bool {
		if all[i].h != all[j].h {
			return all[i].h < all[j].h
		}
		return all[i].id < all[j].id
	})
	for _, v := range all {
		r.vnodes = append(r.vnodes, v.h)
		r.owners = append(r.owners, v.id)
	}
}

// Owner returns the instance owning key.
func (r *Ring) Owner(key uint64) int {
	h := KeyHash(key)
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i] >= h })
	if i == len(r.vnodes) {
		i = 0 // wrap past the highest vnode to the lowest
	}
	return int(r.owners[i])
}

// OwnerOfHotspot returns the instance owning hotspot h's ingestion.
func (r *Ring) OwnerOfHotspot(h int) int { return r.Owner(uint64(h)) }

// Members returns the current instance ids, sorted ascending.
func (r *Ring) Members() []int {
	out := make([]int, len(r.members))
	copy(out, r.members)
	return out
}

// Add joins instance id to the ring. Adding a present member is an
// error.
func (r *Ring) Add(id int) error {
	if id < 0 {
		return fmt.Errorf("ring: negative instance id %d", id)
	}
	i := sort.SearchInts(r.members, id)
	if i < len(r.members) && r.members[i] == id {
		return fmt.Errorf("ring: instance %d already a member", id)
	}
	r.members = append(r.members, 0)
	copy(r.members[i+1:], r.members[i:])
	r.members[i] = id
	r.rebuild()
	return nil
}

// Remove leaves instance id from the ring. Removing the last member
// or an absent one is an error.
func (r *Ring) Remove(id int) error {
	i := sort.SearchInts(r.members, id)
	if i == len(r.members) || r.members[i] != id {
		return fmt.Errorf("ring: instance %d not a member", id)
	}
	if len(r.members) == 1 {
		return fmt.Errorf("ring: cannot remove the last instance")
	}
	r.members = append(r.members[:i], r.members[i+1:]...)
	r.rebuild()
	return nil
}
