package server_test

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/scheme"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/trace"
)

// durabilityWorldAndTrace is a multi-slot deployment sized so every
// slot actually schedules (redirects, placement) but a full
// kill/restart sweep stays fast.
func durabilityWorldAndTrace(t *testing.T) (*trace.World, *trace.Trace) {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.Seed = 11
	cfg.NumHotspots = 16
	cfg.NumVideos = 400
	cfg.NumUsers = 600
	cfg.NumRequests = 2000
	cfg.Slots = 5
	cfg.NumRegions = 3
	world, tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return world, tr
}

// postIngest posts one trace request by location, requiring a 202.
func postIngest(t *testing.T, addr string, r trace.Request) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"user": int64(r.User), "video": int64(r.Video),
		"x": r.Location.X, "y": r.Location.Y,
	})
	resp, err := http.Post("http://"+addr+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}
}

// advanceSlot forces a slot boundary and records the newly published
// plan's canonical bytes into online.
func advanceSlot(t *testing.T, srv *server.Server, online map[int]string) {
	t.Helper()
	resp, err := http.Post("http://"+srv.Addr()+"/admin/advance", "application/json", nil)
	if err != nil {
		t.Fatalf("advance: %v", err)
	}
	var adv struct {
		Slot      int    `json:"slot"`
		Scheduled bool   `json:"scheduled"`
		Digest    string `json:"digest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&adv); err != nil {
		t.Fatalf("advance decode: %v", err)
	}
	resp.Body.Close()
	if !adv.Scheduled {
		t.Fatalf("slot %d did not schedule", adv.Slot)
	}
	for _, rec := range srv.Plans() {
		if rec.Slot == adv.Slot {
			online[adv.Slot] = rec.Canonical
		}
	}
}

// TestCrashRecoveryMatchesOfflineSim is the durability centerpiece: a
// three-frontend serving tier with the WAL on is killed abruptly twice
// while replaying a trace — once mid-slot (half the slot's requests
// accepted) and once right after a slot boundary — restarted from disk
// each time, and must still finish the trace with every slot's plan
// byte-identical to an uninterrupted offline sim.Run.
func TestCrashRecoveryMatchesOfflineSim(t *testing.T) {
	world, tr := durabilityWorldAndTrace(t)
	params := core.DefaultParams()

	offline := make(map[int]string)
	if _, err := sim.Run(world, tr, scheme.NewRBCAer(params), sim.Options{
		PlanSink: func(slot int, plan *core.Plan) {
			offline[slot] = hex.EncodeToString(plan.Canonical())
		},
	}); err != nil {
		t.Fatalf("sim.Run: %v", err)
	}

	walDir := t.TempDir()
	boot := func() *server.Server {
		srv, err := server.New(server.Config{
			World:           world,
			Params:          params,
			Instances:       3,
			Registry:        obs.NewRegistry(),
			PlanHistory:     tr.Slots + 1,
			QueueBound:      1 << 20,
			WALDir:          walDir,
			Fsync:           "always",
			CheckpointEvery: 2,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := srv.Start(); err != nil {
			t.Fatalf("Start: %v", err)
		}
		return srv
	}

	srv := boot()
	online := make(map[int]string)
	bySlot := tr.BySlot()
	target := func(i int) string { return srv.InstanceAddr(i % srv.NumInstances()) }

	for slot, reqs := range bySlot {
		switch slot {
		case 2:
			// Crash mid-slot: half the slot's requests are accepted and
			// durable, then the process dies without any graceful work.
			for i, r := range reqs[:len(reqs)/2] {
				postIngest(t, target(i), r)
			}
			srv.Kill()
			srv = boot()
			st := srv.WALState()
			if st == nil || st.Records == 0 {
				t.Fatalf("restart recovered no WAL records: %+v", st)
			}
			if st.Slot != 2 {
				t.Fatalf("restart recovered slot %d, want 2", st.Slot)
			}
			for i, r := range reqs[len(reqs)/2:] {
				postIngest(t, target(i), r)
			}
			advanceSlot(t, srv, online)
		case 3:
			// Crash on a slot boundary: the plan published and became
			// durable, then the process dies before the next slot.
			for i, r := range reqs {
				postIngest(t, target(i), r)
			}
			advanceSlot(t, srv, online)
			srv.Kill()
			srv = boot()
			if st := srv.WALState(); st == nil || st.Plan == nil {
				t.Fatalf("restart after boundary crash recovered no plan")
			}
		default:
			for i, r := range reqs {
				postIngest(t, target(i), r)
			}
			advanceSlot(t, srv, online)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	if len(online) != len(offline) {
		t.Fatalf("online scheduled %d slots, offline %d", len(online), len(offline))
	}
	for slot, want := range offline {
		got, ok := online[slot]
		if !ok {
			t.Errorf("slot %d: no online plan", slot)
			continue
		}
		if got != want {
			t.Errorf("slot %d: plan after kill/restart differs from offline (%d vs %d hex bytes)",
				slot, len(got), len(want))
		}
	}
}

// TestRecoveryServesLastDurablePlan certifies the restart boot path:
// after a crash, every frontend immediately serves the last durable
// plan (same epoch, same digest) before any new slot is scheduled,
// and /healthz reports the durability state.
func TestRecoveryServesLastDurablePlan(t *testing.T) {
	world, tr := durabilityWorldAndTrace(t)
	walDir := t.TempDir()
	cfg := server.Config{
		World:       world,
		Instances:   2,
		Registry:    obs.NewRegistry(),
		PlanHistory: 8,
		QueueBound:  1 << 20,
		WALDir:      walDir,
		Fsync:       "always",
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	online := make(map[int]string)
	for i, r := range tr.BySlot()[0] {
		postIngest(t, srv.InstanceAddr(i%2), r)
	}
	advanceSlot(t, srv, online)
	wantEpoch, wantDigest := srv.InstanceEpochDigest(0)
	srv.Kill()

	cfg.Registry = obs.NewRegistry()
	srv2, err := server.New(cfg)
	if err != nil {
		t.Fatalf("New after crash: %v", err)
	}
	if err := srv2.Start(); err != nil {
		t.Fatalf("Start after crash: %v", err)
	}
	defer srv2.Close()
	for i := 0; i < srv2.NumInstances(); i++ {
		epoch, digest := srv2.InstanceEpochDigest(i)
		if epoch != wantEpoch || digest != wantDigest {
			t.Errorf("instance %d recovered (epoch %d, %s), want (epoch %d, %s)",
				i, epoch, digest, wantEpoch, wantDigest)
		}
	}
	if got := cfg.Registry.Counter("wal.recovered_records").Value(); got == 0 {
		t.Error("wal.recovered_records is 0 after replaying a non-empty log")
	}

	resp, err := http.Get("http://" + srv2.Addr() + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	var hz struct {
		WAL *struct {
			Policy           string `json:"policy"`
			RecoveredRecords int    `json:"recovered_records"`
			RecoveredSlot    int    `json:"recovered_slot"`
		} `json:"wal"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	if hz.WAL == nil {
		t.Fatal("healthz has no wal section with durability on")
	}
	if hz.WAL.Policy != "always" {
		t.Errorf("healthz wal policy %q, want always", hz.WAL.Policy)
	}
	if hz.WAL.RecoveredRecords == 0 {
		t.Error("healthz reports 0 recovered records")
	}
	if hz.WAL.RecoveredSlot != 1 {
		t.Errorf("healthz recovered slot %d, want 1", hz.WAL.RecoveredSlot)
	}
}

// TestKillIdempotence: Kill after Kill and Close after Kill are both
// no-ops, and a killed server rejects further advances.
func TestKillIdempotence(t *testing.T) {
	world, _ := durabilityWorldAndTrace(t)
	srv, err := server.New(server.Config{
		World:    world,
		Registry: obs.NewRegistry(),
		WALDir:   t.TempDir(),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	srv.Kill()
	srv.Kill()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close after Kill: %v", err)
	}
	resp, err := http.Post(fmt.Sprintf("http://%s/admin/advance", srv.Addr()), "application/json", nil)
	if err == nil {
		resp.Body.Close()
		t.Fatal("advance succeeded against a killed server")
	}
}
