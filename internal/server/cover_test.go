package server

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/wal"
)

// TestQueuedFromSnapshot pins the snapshot → durable form rendering:
// entries come out (hotspot, video)-sorted whatever the map order, so
// checkpoint bytes are deterministic.
func TestQueuedFromSnapshot(t *testing.T) {
	d := core.NewDemand(3)
	d.PerVideo[2] = map[trace.VideoID]int64{7: 4, 1: 2}
	d.PerVideo[0] = map[trace.VideoID]int64{5: 1}
	snap := &slotSnapshot{slot: 6, demand: d, requests: 7}
	got := queuedFromSnapshot(snap)
	want := wal.QueuedSlot{Slot: 6, Requests: 7, Entries: []wal.Entry{
		{Hotspot: 0, Video: 5, Count: 1},
		{Hotspot: 2, Video: 1, Count: 2},
		{Hotspot: 2, Video: 7, Count: 4},
	}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("queuedFromSnapshot = %+v, want %+v", got, want)
	}
	if got := entriesFromMap(nil); len(got) != 0 {
		t.Fatalf("entriesFromMap(nil) = %v", got)
	}
}

// TestInstanceAddrs: "" before Start, real listen addresses after.
func TestInstanceAddrs(t *testing.T) {
	s := newTestServer(t, Config{World: testWorld(4, 100, 2), Instances: 2})
	if got := s.InstanceAddrs(); len(got) != 2 || got[0] != "" || got[1] != "" {
		t.Fatalf("InstanceAddrs before Start = %q", got)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addrs := s.InstanceAddrs()
	if len(addrs) != 2 || addrs[0] == "" || addrs[1] == "" || addrs[0] == addrs[1] {
		t.Fatalf("InstanceAddrs after Start = %q", addrs)
	}
	if addrs[0] != s.Addr() {
		t.Fatalf("Addr() = %q, want first instance %q", s.Addr(), addrs[0])
	}
}

// TestBoolAttr covers both arms of the event-attribute rendering.
func TestBoolAttr(t *testing.T) {
	if boolAttr(true) != 1 || boolAttr(false) != 0 {
		t.Fatal("boolAttr mapping wrong")
	}
}
