// Package server is the online scheduling service: the deployable
// counterpart of the offline trace-driven simulator. User requests
// arrive continuously over HTTP/JSON at one or more frontend
// instances and are aggregated per hotspot into lock-striped demand
// accumulators with bounded queues (overload answers 429, and
// accepted requests are never dropped); a slot ticker snapshots the
// accumulated demand each timeslot, runs one RBCAer round
// (core.ScheduleRound, including the deadline/degradation path) on a
// dedicated worker, and publishes the result by atomically swapping a
// double-buffered immutable plan — lookups never observe a partially
// applied plan and keep serving the previous plan while the next one
// is computed. Fed the same trace, the server produces plans
// byte-identical to the offline simulator's (certified end to end in
// e2e_test.go via core.Plan.Canonical).
//
// Multi-instance mode (Config.Instances > 1) scales the serving tier
// out in-process: a consistent-hash ring (internal/server/ring)
// shards hotspot ingestion across N frontend instances, each with its
// own lock-striped accumulators and its own HTTP listener. A request
// may arrive at any frontend; the ring routes its hotspot's
// accumulation to the owning instance (cross-instance arrivals are
// counted as forwards). Each slot merges every instance's drained
// demand into the single scheduler round, and the resulting plan fans
// out to every frontend over the plan-distribution channel: the
// canonical plan bytes plus their digest. Every instance
// independently re-parses the bytes, re-encodes them, and verifies
// both digest and byte identity before swapping — a frontend either
// serves the exact (epoch, digest) the scheduler published or loudly
// rejects the swap (server.shard.<i>.plan_rejects) and keeps its
// previous plan. See DESIGN.md §15.
//
// The package is dependency-free: stdlib net/http plus this
// repository's internal packages.
package server

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/server/ring"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Server is one online scheduling service deployment: one scheduler
// plus Config.Instances frontend instances. Create it with New, start
// it with Start, stop it with Close.
type Server struct {
	cfg   Config
	world *trace.World
	index *geo.Grid
	reg   *obs.Registry

	// ring owns the hotspot → instance ingestion mapping; instances
	// are the frontends. allShards is every instance's stripes in
	// instance order, drained together at each slot boundary.
	ring      *ring.Ring
	instances []*instance
	allShards []*demandShard

	// mu guards the snapshot queue, slot counter, plan history, the
	// closed flag, and the checkpoint cadence state.
	mu      sync.Mutex
	queue   []*slotSnapshot
	slot    int
	epoch   int64
	history []PlanRecord
	closed  bool

	// Durability (nil / zero when Config.WALDir is empty). lastPlan is
	// the most recently published plan in checkpoint form; sinceCkpt
	// counts scheduled slots since the last checkpoint; killed marks a
	// simulated crash (Kill), which must skip all graceful-shutdown
	// work.
	wal       *wal.Log
	walState  *wal.State
	lastPlan  *wal.PlanState
	sinceCkpt int
	killed    atomic.Bool
	walErrors *obs.Counter

	// kick wakes the recompute worker (capacity 1: a pending kick
	// covers any number of queued snapshots).
	kick chan struct{}
	// stop ends the ticker and, after the queue drains, the worker.
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// sched is owned by the recompute worker goroutine; svcCaps and
	// cacheCaps are the nominal capacity rows it passes each round
	// (copied per round, mirroring the offline policy's fresh slices).
	sched     *core.Scheduler
	svcCaps   []int64
	cacheCaps []int

	// cached hot-path counters (a registry lookup per request would
	// cost a map access under lock on the ingest fast path).
	ingestAccepted  *obs.Counter
	ingestRejected  *obs.Counter
	lookupTotal     *obs.Counter
	lookupCDN       *obs.Counter
	lookupRedirect  *obs.Counter
	lookupLocal     *obs.Counter
	ingestMalformed *obs.Counter
}

// slotSnapshot is one timeslot's drained demand awaiting recomputation.
type slotSnapshot struct {
	slot     int
	demand   *core.Demand
	requests int64
	start    time.Time
	// done channels are closed once this snapshot's plan is live (or
	// the snapshot turned out empty); AdvanceSlot waits on one.
	done []chan struct{}
}

// New validates the configuration and builds a server (not yet
// listening).
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	index, err := cfg.World.Index()
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	sched, err := core.New(cfg.World, cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	rg, err := ring.New(cfg.Instances, 0)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	m := len(cfg.World.Hotspots)
	s := &Server{
		cfg:       cfg,
		world:     cfg.World,
		index:     index,
		reg:       cfg.Registry,
		ring:      rg,
		kick:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		sched:     sched,
		svcCaps:   make([]int64, m),
		cacheCaps: make([]int, m),
	}
	s.ingestAccepted = s.reg.Counter("server.ingest.accepted")
	s.ingestRejected = s.reg.Counter("server.ingest.rejected")
	s.ingestMalformed = s.reg.Counter("server.ingest.malformed")
	s.lookupTotal = s.reg.Counter("server.lookup.total")
	s.lookupCDN = s.reg.Counter("server.lookup.cdn")
	s.lookupRedirect = s.reg.Counter("server.lookup.redirected")
	s.lookupLocal = s.reg.Counter("server.lookup.local")
	for i := 0; i < cfg.Instances; i++ {
		in := newInstance(s, i)
		s.instances = append(s.instances, in)
		s.allShards = append(s.allShards, in.shards...)
	}
	for h, hs := range cfg.World.Hotspots {
		s.svcCaps[h] = hs.ServiceCapacity
		s.cacheCaps[h] = hs.CacheCapacity
	}
	s.walErrors = s.reg.Counter("server.wal.errors")
	if cfg.WALDir != "" {
		if err := s.openWAL(); err != nil {
			return nil, fmt.Errorf("server: wal: %w", err)
		}
	}
	return s, nil
}

// Start launches the recompute worker, every frontend instance's HTTP
// listener (instance 0 on cfg.Addr, the rest on ephemeral local
// ports), and, when SlotDuration is set, the slot ticker.
func (s *Server) Start() error {
	for _, in := range s.instances {
		addr := s.cfg.Addr
		if in.id > 0 {
			addr = "127.0.0.1:0"
		}
		if err := in.listen(addr); err != nil {
			for _, started := range s.instances[:in.id] {
				started.shutdown(context.Background())
			}
			return err
		}
	}
	s.wg.Add(1)
	go s.recomputeLoop()
	// Recovery may have re-enqueued drained-but-unplanned slots; get
	// the worker onto them immediately.
	s.mu.Lock()
	pending := len(s.queue) > 0
	s.mu.Unlock()
	if pending {
		select {
		case s.kick <- struct{}{}:
		default:
		}
	}
	if s.cfg.SlotDuration > 0 {
		s.wg.Add(1)
		go s.tickLoop()
	}
	return nil
}

// Addr returns the first frontend's listen address (useful with
// port 0).
func (s *Server) Addr() string {
	return s.InstanceAddr(0)
}

// NumInstances returns the frontend instance count.
func (s *Server) NumInstances() int { return len(s.instances) }

// InstanceAddr returns frontend i's listen address ("" before Start).
func (s *Server) InstanceAddr(i int) string {
	in := s.instances[i]
	if in.ln == nil {
		return ""
	}
	return in.ln.Addr().String()
}

// InstanceAddrs returns every frontend's listen address.
func (s *Server) InstanceAddrs() []string {
	out := make([]string, len(s.instances))
	for i := range s.instances {
		out[i] = s.InstanceAddr(i)
	}
	return out
}

// InstanceHandler returns frontend i's HTTP API without a socket (for
// tests and benchmarks).
func (s *Server) InstanceHandler(i int) http.Handler {
	return s.instances[i].handler()
}

// InstanceEpochDigest reports the (epoch, digest) frontend i is
// currently serving (0, "" before the first swap).
func (s *Server) InstanceEpochDigest(i int) (int64, string) {
	sp := s.instances[i].current.Load()
	if sp == nil {
		return 0, ""
	}
	return sp.epoch, digestString(sp.digest)
}

// Close shuts the server down gracefully: stop accepting requests on
// every frontend (bounded by DrainTimeout), flush still-accumulated
// demand through one final scheduling round so no accepted request is
// silently dropped, and wait for the ticker and worker to exit. Close
// is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	var err error
	for _, in := range s.instances {
		if e := in.shutdown(ctx); e != nil && err == nil {
			err = e
		}
	}
	// Final flush: anything accepted before shutdown still gets
	// scheduled and recorded.
	s.advance(nil, true)
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	if s.wal != nil {
		// Seal the run: a final checkpoint makes the next boot's replay
		// trivial, then the log closes cleanly (flush + fsync).
		s.maybeCheckpoint(true)
		if e := s.wal.Close(); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// tickLoop drives timed slots. The tick itself only drains the stripes
// and enqueues a snapshot — recomputation happens on the worker — so a
// slow scheduling round can never block the ticker.
func (s *Server) tickLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.SlotDuration)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.advance(nil, false)
		case <-s.stop:
			return
		}
	}
}

// advance closes out the current timeslot: it drains every instance's
// stripes into one merged snapshot, enqueues it for the recompute
// worker, and returns the slot number. An empty slot (nothing
// accepted) advances the slot counter without queueing work. done,
// when non-nil, is closed once the snapshot's plan is live
// (immediately for empty slots).
//
// After Close has marked the server closed, only Close's own final
// flush (final=true) may still advance: a tick or AdvanceSlot racing
// Close could otherwise enqueue a snapshot after the worker drained the
// queue for the last time, stranding accepted demand unscheduled and
// leaving AdvanceSlot waiters hanging. Late advances are rejected
// (ok=false, done left open) and counted as server.slots.rejected.
func (s *Server) advance(done chan struct{}, final bool) (slot int, ok bool) {
	s.mu.Lock()
	if s.closed && !final {
		s.mu.Unlock()
		s.reg.Counter("server.slots.rejected").Inc()
		return 0, false
	}
	slot = s.slot
	s.slot++
	// Durability ordering: the advance record is appended *before* the
	// drain re-stamps the stripes' slot tags, so in WAL order an ingest
	// tagged with the new slot can never precede this boundary (the
	// tag is read and the ingest appended under the stripe lock, which
	// the drain also takes).
	var advLSN uint64
	var advErr error
	if s.wal != nil {
		advLSN, advErr = s.wal.AppendAdvance(slot)
	}
	demand, n := drainDemand(s.allShards, len(s.world.Hotspots), s.slot)
	s.reg.Counter("server.slots").Inc()
	if demand == nil {
		s.reg.Counter("server.slots.empty").Inc()
		s.mu.Unlock()
		s.syncWAL(advLSN, advErr)
		if done != nil {
			close(done)
		}
		return slot, true
	}
	s.reg.Histogram("server.slot.requests", obs.PowersOf2Buckets(24)).Observe(n)
	snap := &slotSnapshot{slot: slot, demand: demand, requests: n, start: time.Now()}
	if done != nil {
		snap.done = append(snap.done, done)
	}
	if len(s.queue) >= maxSnapshotQueue {
		// The worker is lagging: coalesce into the newest queued
		// snapshot instead of growing the queue or blocking. The
		// merged demand schedules under the newer slot number; no
		// accepted request is lost.
		last := s.queue[len(s.queue)-1]
		mergeDemand(last.demand, demand)
		last.requests += n
		last.slot = slot
		last.done = append(last.done, snap.done...)
		s.reg.Counter("server.slots.coalesced").Inc()
	} else {
		s.queue = append(s.queue, snap)
	}
	s.mu.Unlock()
	s.syncWAL(advLSN, advErr)
	select {
	case s.kick <- struct{}{}:
	default:
	}
	return slot, true
}

// AdvanceSlot forces a slot boundary and blocks until the slot's plan
// (if any demand accumulated) is live, returning the slot number and
// the plan record now serving. This is the deterministic drive used by
// the load generator, tests, and manual-slot deployments
// (SlotDuration 0); it also works alongside a running ticker.
func (s *Server) AdvanceSlot(ctx context.Context) (int, PlanRecord, error) {
	done := make(chan struct{})
	slot, ok := s.advance(done, false)
	if !ok {
		return 0, PlanRecord{}, errors.New("server: closed")
	}
	select {
	case <-done:
	case <-s.stop:
		return slot, PlanRecord{}, errors.New("server: shutting down")
	case <-ctx.Done():
		return slot, PlanRecord{}, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var rec PlanRecord
	if len(s.history) > 0 {
		rec = s.history[len(s.history)-1]
		rec.Canonical = ""
	}
	return slot, rec, nil
}

// recomputeLoop is the single scheduling worker: it owns the core
// scheduler (which is not safe for concurrent use) and processes
// queued snapshots in order, fanning each resulting plan out to every
// frontend.
func (s *Server) recomputeLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.kick:
			s.drainQueue()
		case <-s.stop:
			// Process whatever Close's final flush queued, then exit.
			s.drainQueue()
			return
		}
	}
}

// drainQueue schedules every queued snapshot. After Kill, nothing is
// scheduled: a simulated crash must leave only the durable prefix
// behind.
func (s *Server) drainQueue() {
	for {
		if s.killed.Load() {
			return
		}
		s.mu.Lock()
		if len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		snap := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		s.runSlot(snap)
	}
}

// runSlot runs one scheduling round and distributes the plan to every
// frontend. The round sees the same inputs the offline policy hands
// core.ScheduleRound — nominal service and cache capacity rows,
// freshly copied — so a replayed trace produces byte-identical plans
// (see e2e_test.go). Distribution ships the canonical plan bytes plus
// their digest; each instance independently decodes and verifies
// before swapping (see instance.install).
func (s *Server) runSlot(snap *slotSnapshot) {
	defer func() {
		for _, d := range snap.done {
			close(d)
		}
	}()
	svc := make([]int64, len(s.svcCaps))
	copy(svc, s.svcCaps)
	cache := make([]int, len(s.cacheCaps))
	copy(cache, s.cacheCaps)
	plan, err := s.sched.ScheduleRound(snap.demand, core.Constraints{Service: svc, Cache: cache})
	if err != nil {
		// Contract violations only (ScheduleRound degrades instead of
		// failing on solver trouble): keep serving the previous plan.
		// The drop is made durable (roundErr record) so recovery does
		// not resurrect and reschedule the slot's demand.
		s.reg.Counter("server.plan.errors").Inc()
		if s.wal != nil {
			lsn, aerr := s.wal.AppendRoundErr(snap.slot)
			s.syncWAL(lsn, aerr)
		}
		return
	}

	s.mu.Lock()
	s.epoch++
	epoch := s.epoch
	s.mu.Unlock()

	// Plan distribution: every frontend receives the same canonical
	// bytes and digest, decodes its own serving plan from them, and
	// verifies the round trip before swapping. With durability on, the
	// plan is logged and synced first — a plan is never served unless
	// it is part of the durable prefix.
	canonical := plan.Canonical()
	digest := core.DigestOf(canonical)
	if s.wal != nil {
		lsn, aerr := s.wal.AppendPlan(snap.slot, epoch, digest, canonical)
		s.syncWAL(lsn, aerr)
	}
	for _, in := range s.instances {
		if err := in.install(epoch, snap.slot, snap.requests, canonical, digest); err != nil {
			s.reg.Counter("server.plan.rejects").Inc()
			if s.cfg.Tracer != nil {
				s.cfg.Tracer.Emit(obs.Event{Type: "swap-reject", Slot: snap.slot, Attrs: []obs.Attr{
					obs.I("epoch", epoch),
					obs.I("instance", int64(in.id)),
				}})
			}
		}
	}

	s.reg.Counter("server.plan.swaps").Inc()
	if plan.Degraded {
		s.reg.Counter("server.plan.degraded").Inc()
	}
	if plan.Stats.DeltaRound {
		s.reg.Counter("server.plan.delta_rounds").Inc()
	}
	if plan.Stats.DeltaFallback {
		s.reg.Counter("server.plan.delta_fallbacks").Inc()
	}
	latency := time.Since(snap.start)
	// Microsecond buckets: scheduling rounds routinely finish in well
	// under a millisecond (delta rounds especially), where millisecond
	// buckets collapsed everything into bucket zero. 2^24 µs ≈ 16.8 s
	// comfortably covers the slowest degraded round.
	s.reg.Histogram("server.slot.latency_us", obs.PowersOf2Buckets(24)).Observe(latency.Microseconds())
	s.reg.Timer("server.slot.schedule").Observe(latency)
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Emit(obs.Event{Type: "swap", Slot: snap.slot, Attrs: []obs.Attr{
			obs.I("epoch", epoch),
			obs.I("requests", snap.requests),
			obs.I("replicas", plan.Stats.Replicas),
			obs.I("degraded", boolAttr(plan.Degraded)),
			obs.D("latency", latency),
		}})
	}

	rec := PlanRecord{
		Slot:      snap.slot,
		Epoch:     epoch,
		Requests:  snap.requests,
		Digest:    digestString(digest),
		Canonical: hex.EncodeToString(canonical),
		Degraded:  plan.Degraded,
		Replicas:  plan.Stats.Replicas,
		Redirects: len(plan.Redirects),
		MovedFlow: plan.Stats.MovedFlow,
		Stranded:  plan.Stats.StrandedToCDN,
	}
	s.mu.Lock()
	s.history = append(s.history, rec)
	if len(s.history) > s.cfg.PlanHistory {
		s.history = s.history[len(s.history)-s.cfg.PlanHistory:]
	}
	if s.wal != nil {
		s.lastPlan = &wal.PlanState{Slot: snap.slot, Epoch: epoch, Digest: digest, Canonical: canonical}
	}
	s.mu.Unlock()
	s.maybeCheckpoint(false)
}

// Plans returns the retained per-slot plan records, oldest first.
func (s *Server) Plans() []PlanRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PlanRecord, len(s.history))
	copy(out, s.history)
	return out
}

// Handler returns the first frontend's HTTP API:
//
//	POST /ingest         accept one request ({"user","video","x","y"}
//	                     or {"user","video","hotspot"}) — 202 accepted,
//	                     429 overloaded (stripe queue full), 400 malformed
//	GET  /redirect       ?video=V&hotspot=H → serving target for one
//	                     request aggregated at H ({"target":-1} = CDN)
//	GET  /plans          retained per-slot plan records (canonical bytes)
//	GET  /healthz        liveness + slot/epoch counters + this
//	                     frontend's serving (epoch, digest)
//	POST /admin/advance  force a slot boundary; returns the new record
//
// Every frontend instance serves the same API (see InstanceHandler).
// It is exported so tests and benchmarks can drive the mux without a
// socket.
func (s *Server) Handler() http.Handler {
	return s.instances[0].handler()
}

func (s *Server) handlePlans(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Plans())
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	slot, rec, err := s.AdvanceSlot(r.Context())
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}
	scheduled := rec.Epoch != 0 && rec.Slot == slot
	writeJSON(w, http.StatusOK, map[string]any{
		"slot":      slot,
		"scheduled": scheduled,
		"epoch":     rec.Epoch,
		"digest":    rec.Digest,
	})
}

// boolAttr renders a bool as a 0/1 event attribute value.
func boolAttr(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
