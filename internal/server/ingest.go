package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/trace"
)

// ingestScratch is the per-request reusable buffer pair the hot HTTP
// paths decode into and encode responses from. Pooling it keeps the
// steady-state ingest path free of body-buffer growth and response
// marshalling allocations (measured by the ServerIngest and
// ServerIngestParallel benchmarks).
type ingestScratch struct {
	body []byte
	resp []byte
}

var scratchPool = sync.Pool{New: func() any {
	return &ingestScratch{body: make([]byte, 0, 512), resp: make([]byte, 0, 96)}
}}

func getScratch() *ingestScratch   { return scratchPool.Get().(*ingestScratch) }
func putScratch(sc *ingestScratch) { scratchPool.Put(sc) }

// readBody reads a request body into buf (reusing its capacity),
// enforcing the configured size cap via http.MaxBytesReader so
// oversized bodies still surface as *http.MaxBytesError.
func readBody(w http.ResponseWriter, r *http.Request, limit int64, buf []byte) ([]byte, error) {
	rd := http.MaxBytesReader(w, r.Body, limit)
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := rd.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// ingestRequest is the wire form of one POST /ingest body. The request
// names its aggregation point either explicitly ("hotspot") or by user
// location ("x"/"y" in km), in which case the server resolves the
// nearest hotspot exactly as the offline simulator does.
type ingestRequest struct {
	User    int64    `json:"user"`
	Video   int64    `json:"video"`
	Hotspot *int64   `json:"hotspot"`
	X       *float64 `json:"x"`
	Y       *float64 `json:"y"`
}

// decodeIngest parses one ingest body. It is strict — unknown fields
// and trailing data are rejected — and must never panic, whatever the
// bytes (FuzzIngest holds it to that).
func decodeIngest(data []byte) (ingestRequest, error) {
	var req ingestRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return ingestRequest{}, fmt.Errorf("malformed body: %w", err)
	}
	if dec.More() {
		return ingestRequest{}, fmt.Errorf("trailing data after request object")
	}
	return req, nil
}

// resolveIngest validates the request against the world and returns the
// aggregation hotspot and video. Nearest-hotspot resolution uses the
// same spatial index as sim.BuildSlotContext, so a replayed trace
// aggregates identically online and offline.
func resolveIngest(world *trace.World, index *geo.Grid, req ingestRequest) (hotspot int, video trace.VideoID, err error) {
	if req.Video < 0 || req.Video >= int64(world.NumVideos) {
		return 0, 0, fmt.Errorf("video %d outside [0, %d)", req.Video, world.NumVideos)
	}
	if req.Hotspot != nil {
		h := *req.Hotspot
		if h < 0 || h >= int64(len(world.Hotspots)) {
			return 0, 0, fmt.Errorf("hotspot %d outside [0, %d)", h, len(world.Hotspots))
		}
		return int(h), trace.VideoID(req.Video), nil
	}
	if req.X == nil || req.Y == nil {
		return 0, 0, fmt.Errorf("need either hotspot or both x and y")
	}
	x, y := *req.X, *req.Y
	if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
		return 0, 0, fmt.Errorf("non-finite location (%v, %v)", x, y)
	}
	h, _, ok := index.Nearest(geo.Point{X: x, Y: y})
	if !ok {
		return 0, 0, fmt.Errorf("no hotspot indexed")
	}
	return h, trace.VideoID(req.Video), nil
}

// demandShard is one lock stripe of the per-hotspot demand
// accumulators. Hotspot h belongs to stripe h mod Shards, so its
// counters are only ever touched under this stripe's lock.
type demandShard struct {
	mu sync.Mutex
	// slot tags the timeslot this stripe is currently accumulating
	// for; the drain re-stamps it at every boundary. WAL ingest
	// records carry it so recovery can place each accepted request in
	// the right slot.
	slot int
	// pending is the number of accepted requests not yet snapshotted;
	// the backpressure bound applies to it.
	pending int64
	// perVideo[h][v] counts accepted requests for video v aggregated
	// at hotspot h (only hotspots owned by this stripe appear).
	perVideo map[trace.HotspotID]map[trace.VideoID]int64
}

// applyLocked folds n requests for (h, v) into the stripe. Callers
// hold sh.mu.
func (sh *demandShard) applyLocked(h trace.HotspotID, v trace.VideoID, n int64) {
	if sh.perVideo == nil {
		sh.perVideo = make(map[trace.HotspotID]map[trace.VideoID]int64)
	}
	m := sh.perVideo[h]
	if m == nil {
		m = make(map[trace.VideoID]int64)
		sh.perVideo[h] = m
	}
	m[v] += n
	sh.pending += n
}

// add records one accepted request, or reports false when the stripe is
// at its bound (the caller answers 429).
func (sh *demandShard) add(h trace.HotspotID, v trace.VideoID, bound int64) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.pending >= bound {
		return false
	}
	sh.applyLocked(h, v, 1)
	return true
}

// acceptDemand is the accepted-ingest path behind POST /ingest: bound
// check, stripe accumulation, and — when durability is on — WAL
// logging. The ingest record is appended under the stripe lock (so
// the owning instance's sequence counter is an exact watermark of
// applied-and-logged requests) and group-committed after the lock is
// released, before the 202 acknowledgment. A Sync failure refuses the
// acknowledgment: the request may be double-counted on retry, but an
// acknowledged request is always part of the durable prefix.
func (s *Server) acceptDemand(owner *instance, sh *demandShard, h trace.HotspotID, v trace.VideoID) (bool, error) {
	if s.wal == nil {
		return sh.add(h, v, int64(s.cfg.QueueBound)), nil
	}
	sh.mu.Lock()
	if sh.pending >= int64(s.cfg.QueueBound) {
		sh.mu.Unlock()
		return false, nil
	}
	seq := owner.seq.Add(1)
	lsn, err := s.wal.AppendIngest(sh.slot, owner.id, seq, int(h), int(v), 1)
	if err != nil {
		sh.mu.Unlock()
		s.walErrors.Inc()
		return false, err
	}
	sh.applyLocked(h, v, 1)
	sh.mu.Unlock()
	if err := s.wal.Sync(lsn); err != nil {
		s.walErrors.Inc()
		return false, err
	}
	return true, nil
}

// drain atomically takes the stripe's accumulated demand, leaving it
// empty and accumulating for newSlot. The snapshot owns the returned
// maps outright.
func (sh *demandShard) drain(newSlot int) (map[trace.HotspotID]map[trace.VideoID]int64, int64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out, n := sh.perVideo, sh.pending
	sh.perVideo = nil
	sh.pending = 0
	sh.slot = newSlot
	return out, n
}

// drainDemand collects every stripe into one core.Demand, returning nil
// when nothing was accepted since the last snapshot. Each stripe is
// locked only for the O(1) map handoff; merging happens outside the
// locks.
func drainDemand(shards []*demandShard, numHotspots, newSlot int) (*core.Demand, int64) {
	var total int64
	parts := make([]map[trace.HotspotID]map[trace.VideoID]int64, 0, len(shards))
	for _, sh := range shards {
		part, n := sh.drain(newSlot)
		if n > 0 {
			parts = append(parts, part)
			total += n
		}
	}
	if total == 0 {
		return nil, 0
	}
	d := core.NewDemand(numHotspots)
	for _, part := range parts {
		for h, videos := range part {
			for v, n := range videos {
				d.Add(h, v, n)
			}
		}
	}
	return d, total
}

// mergeDemand folds src into dst (used when a lagging recompute worker
// forces snapshot coalescing; demand counts commute, so no accepted
// request is ever lost).
func mergeDemand(dst, src *core.Demand) {
	for h := range src.PerVideo {
		for v, n := range src.PerVideo[h] {
			dst.Add(trace.HotspotID(h), v, n)
		}
	}
}
