package server

import (
	"context"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// doAt runs one request against a specific frontend instance's mux.
func doAt(t *testing.T, s *Server, inst int, method, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, target, nil)
	} else {
		req = httptest.NewRequest(method, target, strings.NewReader(body))
	}
	rr := httptest.NewRecorder()
	s.InstanceHandler(inst).ServeHTTP(rr, req)
	return rr
}

// TestInstallVerification pins the receive side of the plan-distribution
// channel: an instance only swaps a plan whose bytes hash to the
// advertised digest, parse, and re-encode to the identical bytes. Every
// corruption is rejected loudly and leaves the previous plan serving.
func TestInstallVerification(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{World: testWorld(4, 10, 10), Registry: reg, QueueBound: 1 << 16})
	s.wg.Add(1)
	go s.recomputeLoop()
	defer func() {
		s.stopOnce.Do(func() { close(s.stop) })
		s.wg.Wait()
	}()

	for i := 0; i < 12; i++ {
		rr := do(t, s, http.MethodPost, "/ingest", fmt.Sprintf(`{"user":%d,"video":%d,"hotspot":%d}`, i, i%7, i%4))
		if rr.Code != http.StatusAccepted {
			t.Fatalf("ingest %d: status %d", i, rr.Code)
		}
	}
	if _, _, err := s.AdvanceSlot(context.Background()); err != nil {
		t.Fatalf("AdvanceSlot: %v", err)
	}
	recs := s.Plans()
	if len(recs) != 1 {
		t.Fatalf("got %d plan records, want 1", len(recs))
	}
	canonical, err := hex.DecodeString(recs[0].Canonical)
	if err != nil {
		t.Fatalf("decoding canonical hex: %v", err)
	}
	digest := core.DigestOf(canonical)
	in := s.instances[0]
	base := in.current.Load()
	if base == nil {
		t.Fatalf("no plan serving after advance")
	}
	swaps, rejects := in.swaps.Value(), in.rejects.Value()

	// Digest mismatch: advertised digest does not match the bytes.
	if err := in.install(99, 9, 1, canonical, digest+1); err == nil {
		t.Error("install accepted a digest mismatch")
	}
	// Corrupted bytes with a matching (recomputed) digest: the parse or
	// round-trip must catch it.
	corrupt := append([]byte(nil), canonical...)
	corrupt[len(corrupt)/2] ^= 0x40
	if err := in.install(99, 9, 1, corrupt, core.DigestOf(corrupt)); err == nil {
		t.Error("install accepted corrupted plan bytes")
	}
	// Truncated bytes.
	if err := in.install(99, 9, 1, canonical[:len(canonical)-3], core.DigestOf(canonical[:len(canonical)-3])); err == nil {
		t.Error("install accepted truncated plan bytes")
	}
	if got := in.current.Load(); got != base {
		t.Error("a rejected install replaced the serving plan")
	}
	if got := in.rejects.Value() - rejects; got != 3 {
		t.Errorf("plan_rejects grew by %d, want 3", got)
	}

	// The genuine bytes install fine at a new epoch.
	if err := in.install(base.epoch+1, 9, 1, canonical, digest); err != nil {
		t.Errorf("install rejected genuine plan bytes: %v", err)
	}
	if got := in.swaps.Value() - swaps; got != 1 {
		t.Errorf("swaps grew by %d, want 1", got)
	}
	if got := in.current.Load(); got.epoch != base.epoch+1 {
		t.Errorf("serving epoch %d after install, want %d", got.epoch, base.epoch+1)
	}
}

// TestMultiInstanceIngestRouting pins the ring routing: a request may
// arrive at any frontend, but its demand is accumulated at the
// ring-designated owner, with cross-instance arrivals counted as
// forwards.
func TestMultiInstanceIngestRouting(t *testing.T) {
	reg := obs.NewRegistry()
	const instances, hotspots = 4, 16
	s := newTestServer(t, Config{World: testWorld(hotspots, 10, 10), Registry: reg, Instances: instances})

	// Post every hotspot's request to frontend 0.
	for h := 0; h < hotspots; h++ {
		rr := doAt(t, s, 0, http.MethodPost, "/ingest", fmt.Sprintf(`{"user":1,"video":0,"hotspot":%d}`, h))
		if rr.Code != http.StatusAccepted {
			t.Fatalf("hotspot %d: status %d", h, rr.Code)
		}
	}

	// Demand must sit in the ring owner's stripes.
	wantPerInstance := make([]int64, instances)
	var wantForwarded int64
	for h := 0; h < hotspots; h++ {
		owner := s.ring.OwnerOfHotspot(h)
		wantPerInstance[owner]++
		if owner != 0 {
			wantForwarded++
		}
	}
	if wantForwarded == 0 {
		t.Fatalf("ring assigned all %d hotspots to instance 0 — test world too small", hotspots)
	}
	for i, in := range s.instances {
		d, n := drainDemand(in.shards, hotspots, 1)
		if n != wantPerInstance[i] {
			t.Errorf("instance %d holds %d requests, want %d", i, n, wantPerInstance[i])
		}
		if in.accepted.Value() != wantPerInstance[i] {
			t.Errorf("instance %d accepted counter %d, want %d", i, in.accepted.Value(), wantPerInstance[i])
		}
		if d == nil {
			continue
		}
		for h, m := range d.PerVideo {
			if len(m) == 0 {
				continue
			}
			if got := s.ring.OwnerOfHotspot(h); got != i {
				t.Errorf("hotspot %d accumulated at instance %d, ring owner is %d", h, i, got)
			}
		}
	}
	if got := s.instances[0].forwarded.Value(); got != wantForwarded {
		t.Errorf("instance 0 forwarded %d, want %d", got, wantForwarded)
	}
	if got := reg.Counter("server.ingest.accepted").Value(); got != hotspots {
		t.Errorf("accepted %d, want %d", got, hotspots)
	}
}

// TestMultiInstancePlanFanout drives one scheduled slot on a
// three-frontend tier and checks every frontend swapped in the exact
// same (epoch, digest) — the fan-out path end to end, socketless.
func TestMultiInstancePlanFanout(t *testing.T) {
	reg := obs.NewRegistry()
	const instances = 3
	s := newTestServer(t, Config{World: testWorld(6, 10, 10), Registry: reg, Instances: instances, QueueBound: 1 << 16})
	s.wg.Add(1)
	go s.recomputeLoop()
	defer func() {
		s.stopOnce.Do(func() { close(s.stop) })
		s.wg.Wait()
	}()

	// Spread ingest across all frontends.
	for i := 0; i < 30; i++ {
		rr := doAt(t, s, i%instances, http.MethodPost, "/ingest", fmt.Sprintf(`{"user":%d,"video":%d,"hotspot":%d}`, i, i%9, i%6))
		if rr.Code != http.StatusAccepted {
			t.Fatalf("ingest %d: status %d", i, rr.Code)
		}
	}
	if _, _, err := s.AdvanceSlot(context.Background()); err != nil {
		t.Fatalf("AdvanceSlot: %v", err)
	}

	epoch0, digest0 := s.InstanceEpochDigest(0)
	if epoch0 != 1 || digest0 == "" {
		t.Fatalf("instance 0 serving (epoch %d, digest %q), want epoch 1", epoch0, digest0)
	}
	recs := s.Plans()
	if len(recs) != 1 || recs[0].Digest != digest0 {
		t.Fatalf("plan record digest %q, instance 0 serving %q", recs[0].Digest, digest0)
	}
	for i := 1; i < instances; i++ {
		epoch, digest := s.InstanceEpochDigest(i)
		if epoch != epoch0 || digest != digest0 {
			t.Errorf("instance %d serving (epoch %d, %s), instance 0 (epoch %d, %s)",
				i, epoch, digest, epoch0, digest0)
		}
	}
	for i, in := range s.instances {
		if got := in.swaps.Value(); got != 1 {
			t.Errorf("instance %d swaps %d, want 1", i, got)
		}
		if got := in.rejects.Value(); got != 0 {
			t.Errorf("instance %d plan_rejects %d, want 0", i, got)
		}
	}
	// Every frontend answers redirect lookups with the same digest.
	for i := 0; i < instances; i++ {
		rr := doAt(t, s, i, http.MethodGet, "/redirect?video=0&hotspot=0", "")
		if rr.Code != http.StatusOK {
			t.Fatalf("instance %d redirect: status %d", i, rr.Code)
		}
		if !strings.Contains(rr.Body.String(), `"digest":"`+digest0+`"`) {
			t.Errorf("instance %d redirect reply %s lacks serving digest %s", i, rr.Body.String(), digest0)
		}
	}
}
