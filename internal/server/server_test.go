package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/similarity"
	"repro/internal/trace"
)

// testWorld is a small line world: m hotspots 1 km apart with uniform
// capacities.
func testWorld(m int, svc int64, cache int) *trace.World {
	w := &trace.World{
		Bounds:        geo.Rect{MinX: -1, MinY: -1, MaxX: float64(m), MaxY: 1},
		NumVideos:     100,
		CDNDistanceKm: 20,
	}
	for h := 0; h < m; h++ {
		w.Hotspots = append(w.Hotspots, trace.Hotspot{
			ID:              trace.HotspotID(h),
			Location:        geo.Point{X: float64(h), Y: 0},
			ServiceCapacity: svc,
			CacheCapacity:   cache,
		})
	}
	return w
}

// TestConfigValidate is the table-driven validation contract for every
// Config field, mirroring sim.Options' TestOptionsValidate.
func TestConfigValidate(t *testing.T) {
	world := testWorld(4, 5, 5)
	badWorld := testWorld(4, 5, 5)
	badWorld.NumVideos = 0
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"world only", Config{World: world}, true},
		{"nil world", Config{}, false},
		{"invalid world", Config{World: badWorld}, false},
		{"explicit params", Config{World: world, Params: core.DefaultParams()}, true},
		{"invalid params", Config{World: world, Params: core.Params{Theta1: -1, Theta2: 1, DeltaD: 0.5}}, false},
		{"addr", Config{World: world, Addr: "127.0.0.1:0"}, true},
		{"instances", Config{World: world, Instances: 4}, true},
		{"negative instances", Config{World: world, Instances: -1}, false},
		{"instances above cap", Config{World: world, Instances: maxInstances + 1}, false},
		{"shards", Config{World: world, Shards: 4}, true},
		{"negative shards", Config{World: world, Shards: -1}, false},
		{"shards above cap", Config{World: world, Shards: maxShards + 1}, false},
		{"queue bound", Config{World: world, QueueBound: 10}, true},
		{"negative queue bound", Config{World: world, QueueBound: -1}, false},
		{"slot duration", Config{World: world, SlotDuration: time.Second}, true},
		{"manual slots", Config{World: world, SlotDuration: 0}, true},
		{"negative slot duration", Config{World: world, SlotDuration: -time.Second}, false},
		{"plan history", Config{World: world, PlanHistory: 8}, true},
		{"negative plan history", Config{World: world, PlanHistory: -1}, false},
		{"max body", Config{World: world, MaxBodyBytes: 1 << 10}, true},
		{"negative max body", Config{World: world, MaxBodyBytes: -1}, false},
		{"drain timeout", Config{World: world, DrainTimeout: time.Second}, true},
		{"negative drain timeout", Config{World: world, DrainTimeout: -time.Second}, false},
		{"wal dir", Config{World: world, WALDir: t.TempDir()}, true},
		{"wal dir not yet created", Config{World: world, WALDir: t.TempDir() + "/sub/wal"}, true},
		{"wal full config", Config{World: world, WALDir: t.TempDir(), Fsync: "interval",
			FsyncInterval: time.Second, CheckpointEvery: 4}, true},
		{"fsync none", Config{World: world, WALDir: t.TempDir(), Fsync: "none"}, true},
		{"unknown fsync policy", Config{World: world, WALDir: t.TempDir(), Fsync: "sometimes"}, false},
		{"fsync without wal dir", Config{World: world, Fsync: "always"}, false},
		{"fsync interval without wal dir", Config{World: world, FsyncInterval: time.Second}, false},
		{"checkpoint every without wal dir", Config{World: world, CheckpointEvery: 4}, false},
		{"negative fsync interval", Config{World: world, WALDir: t.TempDir(), FsyncInterval: -time.Second}, false},
		{"negative checkpoint every", Config{World: world, WALDir: t.TempDir(), CheckpointEvery: -1}, false},
		{"wal dir is a file", Config{World: world, WALDir: walFilePath(t)}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
		if err != nil && !strings.HasPrefix(err.Error(), "server:") {
			t.Errorf("%s: error lacks field context: %v", tc.name, err)
		}
	}
}

// walFilePath creates a regular file where a WAL directory would go.
func walFilePath(t *testing.T) string {
	t.Helper()
	p := t.TempDir() + "/not-a-dir"
	if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// newTestServer builds an unstarted server plus its handler for direct
// (socketless) HTTP exercise.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// do runs one request against the server's mux.
func do(t *testing.T, s *Server, method, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, target, nil)
	} else {
		req = httptest.NewRequest(method, target, strings.NewReader(body))
	}
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	return rr
}

func TestIngestValidation(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{World: testWorld(4, 5, 5), Registry: reg, MaxBodyBytes: 256})
	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"by location", `{"user":1,"video":2,"x":1.2,"y":0.1}`, http.StatusAccepted},
		{"by hotspot", `{"user":1,"video":2,"hotspot":3}`, http.StatusAccepted},
		{"malformed json", `{"user":`, http.StatusBadRequest},
		{"unknown field", `{"user":1,"video":2,"x":0,"y":0,"zz":1}`, http.StatusBadRequest},
		{"trailing data", `{"user":1,"video":2,"hotspot":0}{"again":true}`, http.StatusBadRequest},
		{"negative video", `{"user":1,"video":-3,"hotspot":0}`, http.StatusBadRequest},
		{"video beyond catalogue", `{"user":1,"video":100,"hotspot":0}`, http.StatusBadRequest},
		{"negative hotspot", `{"user":1,"video":2,"hotspot":-1}`, http.StatusBadRequest},
		{"hotspot beyond fleet", `{"user":1,"video":2,"hotspot":4}`, http.StatusBadRequest},
		{"no aggregation point", `{"user":1,"video":2}`, http.StatusBadRequest},
		{"missing y", `{"user":1,"video":2,"x":0}`, http.StatusBadRequest},
		{"nan location", `{"user":1,"video":2,"x":1e999,"y":0}`, http.StatusBadRequest},
		{"oversized body", `{"user":1,"video":2,"hotspot":0,"pad":"` + strings.Repeat("a", 600) + `"}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		rr := do(t, s, http.MethodPost, "/ingest", tc.body)
		if rr.Code != tc.status {
			t.Errorf("%s: status %d, want %d (body %s)", tc.name, rr.Code, tc.status, rr.Body.String())
		}
	}
	if got := reg.Counter("server.ingest.accepted").Value(); got != 2 {
		t.Errorf("accepted counter = %d, want 2", got)
	}
	if got := reg.Counter("server.ingest.malformed").Value(); got != 10 {
		t.Errorf("malformed counter = %d, want 10", got)
	}
	if got := reg.Counter("server.ingest.oversized").Value(); got != 1 {
		t.Errorf("oversized counter = %d, want 1", got)
	}
	if rr := do(t, s, http.MethodGet, "/ingest", ""); rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /ingest status %d, want 405", rr.Code)
	}
}

// TestBackpressure fills one stripe to its bound and checks the 429
// path: rejections are visible in the counter, accepted requests all
// survive into the slot's demand, and draining reopens the stripe.
func TestBackpressure(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{World: testWorld(2, 50, 50), Shards: 1, QueueBound: 3, Registry: reg})
	body := `{"user":1,"video":2,"hotspot":0}`
	for i := 0; i < 3; i++ {
		if rr := do(t, s, http.MethodPost, "/ingest", body); rr.Code != http.StatusAccepted {
			t.Fatalf("ingest %d: status %d", i, rr.Code)
		}
	}
	for i := 0; i < 2; i++ {
		if rr := do(t, s, http.MethodPost, "/ingest", body); rr.Code != http.StatusTooManyRequests {
			t.Fatalf("over-bound ingest: status %d, want 429", rr.Code)
		}
	}
	if got := reg.Counter("server.ingest.rejected").Value(); got != 2 {
		t.Errorf("rejected counter = %d, want 2", got)
	}
	demand, n := drainDemand(s.instances[0].shards, 2, 1)
	if n != 3 || demand.Totals[0] != 3 {
		t.Fatalf("drained %d requests (hotspot0 %d), want 3 accepted", n, demand.Totals[0])
	}
	// The stripe reopened after the drain.
	if rr := do(t, s, http.MethodPost, "/ingest", body); rr.Code != http.StatusAccepted {
		t.Fatalf("post-drain ingest rejected: %d", rr.Code)
	}
}

// TestMergeDemand: coalescing folds one snapshot's counts into another
// without losing any.
func TestMergeDemand(t *testing.T) {
	dst := core.NewDemand(3)
	dst.Add(0, 1, 2)
	dst.Add(2, 5, 1)
	src := core.NewDemand(3)
	src.Add(0, 1, 3)
	src.Add(1, 4, 7)
	mergeDemand(dst, src)
	if dst.PerVideo[0][1] != 5 || dst.PerVideo[1][4] != 7 || dst.PerVideo[2][5] != 1 {
		t.Fatalf("merged demand %+v", dst.PerVideo)
	}
	if dst.Totals[0] != 5 || dst.Totals[1] != 7 || dst.Totals[2] != 1 {
		t.Fatalf("merged totals %v", dst.Totals)
	}
}

// TestLookupBeforeFirstPlan: with no plan swapped in yet, every lookup
// falls back to the CDN.
func TestLookupBeforeFirstPlan(t *testing.T) {
	s := newTestServer(t, Config{World: testWorld(3, 5, 5)})
	rr := do(t, s, http.MethodGet, "/redirect?video=1&hotspot=0", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("redirect status %d", rr.Code)
	}
	var resp struct {
		Target int `json:"target"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Target != CDN {
		t.Fatalf("target %d before first plan, want CDN (%d)", resp.Target, CDN)
	}
	for _, q := range []string{"", "?video=1", "?video=x&hotspot=0", "?video=-1&hotspot=0", "?video=1&hotspot=99"} {
		if rr := do(t, s, http.MethodGet, "/redirect"+q, ""); rr.Code != http.StatusBadRequest {
			t.Errorf("redirect%s status %d, want 400", q, rr.Code)
		}
	}
}

// TestManualSlotLifecycle drives the full loop without a socket:
// ingest → AdvanceSlot → plan swap → lookups served from the plan.
func TestManualSlotLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(64, true)
	world := testWorld(3, 10, 10)
	s := newTestServer(t, Config{World: world, Registry: reg, Tracer: tracer})
	s.wg.Add(1)
	go s.recomputeLoop()
	defer func() {
		s.stopOnce.Do(func() { close(s.stop) })
		s.wg.Wait()
	}()

	// Empty slot: counter advances, no plan.
	slot, rec, err := s.AdvanceSlot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if slot != 0 || rec.Epoch != 0 {
		t.Fatalf("empty slot advance = (%d, %+v)", slot, rec)
	}

	// Demand at hotspot 0 for videos it should place locally.
	for v := 0; v < 4; v++ {
		for k := 0; k < 3; k++ {
			body := fmt.Sprintf(`{"user":%d,"video":%d,"hotspot":0}`, k, v)
			if rr := do(t, s, http.MethodPost, "/ingest", body); rr.Code != http.StatusAccepted {
				t.Fatalf("ingest: %d", rr.Code)
			}
		}
	}
	slot, rec, err = s.AdvanceSlot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if slot != 1 || rec.Epoch != 1 || rec.Requests != 12 {
		t.Fatalf("advance = (%d, %+v), want slot 1 epoch 1 requests 12", slot, rec)
	}
	sp := s.instances[0].current.Load()
	if sp == nil || sp.slot != 1 {
		t.Fatalf("serving plan %+v, want slot 1", sp)
	}

	// A lookup for demanded content at its aggregation hotspot must not
	// answer CDN (capacity 10 covers the 12-request slot's top videos).
	rr := do(t, s, http.MethodGet, "/redirect?video=0&hotspot=0", "")
	var resp struct {
		Target int    `json:"target"`
		Epoch  int64  `json:"epoch"`
		Digest string `json:"digest"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Target == CDN {
		t.Fatalf("demanded video routed to CDN: %+v (plan %s)", resp, sp.canonical)
	}
	if resp.Epoch != 1 || resp.Digest != digestString(sp.digest) {
		t.Fatalf("lookup stamped %+v, want epoch 1 digest %s", resp, digestString(sp.digest))
	}
	if got := reg.Counter("server.plan.swaps").Value(); got != 1 {
		t.Errorf("swap counter = %d, want 1", got)
	}
	if hist := s.Plans(); len(hist) != 1 || hist[0].Slot != 1 {
		t.Errorf("history %+v, want one record for slot 1", hist)
	}

	// GET /plans serves the same history, canonical bytes included.
	var records []PlanRecord
	pr := do(t, s, http.MethodGet, "/plans", "")
	if err := json.Unmarshal(pr.Body.Bytes(), &records); err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || records[0].Canonical == "" || records[0].Digest != digestString(sp.digest) {
		t.Fatalf("/plans = %+v", records)
	}

	// The tracer saw the swap.
	events := tracer.Events()
	if len(events) != 1 || events[0].Type != "swap" || events[0].Slot != 1 {
		t.Fatalf("trace events %+v, want one swap for slot 1", events)
	}
}

// TestRedirectEntryProportionalRouting checks the redirect fan-out
// follows the planned per-target counts.
func TestRedirectEntryProportionalRouting(t *testing.T) {
	plan := &core.Plan{
		Redirects: []core.Redirect{
			{From: 0, To: 1, Video: 5, Count: 2},
			{From: 0, To: 2, Video: 5, Count: 1},
		},
		Placement:     make([]similarity.Set, 3),
		OverflowToCDN: make([]int64, 3),
	}
	sp := newServingPlan(1, 0, 3, plan, 10)
	var got []int
	for i := 0; i < 6; i++ {
		got = append(got, sp.lookup(0, 5).target)
	}
	want := []int{1, 1, 2, 1, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("routing sequence %v, want %v", got, want)
		}
	}
}

// TestGracefulShutdownFlushesPending: requests accepted but not yet
// snapshotted are scheduled by Close's final flush — nothing is
// silently dropped.
func TestGracefulShutdownFlushesPending(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{World: testWorld(3, 10, 10), Registry: reg})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 3; v++ {
		body := fmt.Sprintf(`{"user":1,"video":%d,"hotspot":1}`, v)
		if rr := do(t, s, http.MethodPost, "/ingest", body); rr.Code != http.StatusAccepted {
			t.Fatalf("ingest: %d", rr.Code)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	hist := s.Plans()
	if len(hist) != 1 || hist[0].Requests != 3 {
		t.Fatalf("history after close %+v, want one 3-request record", hist)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, _, err := s.AdvanceSlot(context.Background()); err == nil {
		t.Fatalf("AdvanceSlot after Close succeeded")
	}
	if rr := do(t, s, http.MethodPost, "/admin/advance", ""); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("advance after Close: status %d, want 503", rr.Code)
	}
}

// TestConcurrentIngestLookupSwap is the tentpole race test: ingest,
// lookup, and slot swaps all run concurrently (under -race in CI), and
// every lookup must observe an internally consistent plan — its
// (epoch, digest) stamp must match a plan the server actually
// published, proving no partially applied plan is ever visible.
func TestConcurrentIngestLookupSwap(t *testing.T) {
	world := testWorld(8, 20, 20)
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{World: world, Registry: reg, Shards: 4, QueueBound: 1 << 20})
	s.wg.Add(1)
	go s.recomputeLoop()
	defer func() {
		s.stopOnce.Do(func() { close(s.stop) })
		s.wg.Wait()
	}()

	type stamp struct {
		Epoch  int64  `json:"epoch"`
		Digest string `json:"digest"`
	}
	var (
		mu       sync.Mutex
		observed = map[stamp]bool{}
	)
	stopIngest := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stopIngest:
					return
				default:
				}
				body := fmt.Sprintf(`{"user":%d,"video":%d,"hotspot":%d}`, w, (w*31+i)%world.NumVideos, (w+i)%len(world.Hotspots))
				rr := do(t, s, http.MethodPost, "/ingest", body)
				if rr.Code != http.StatusAccepted && rr.Code != http.StatusTooManyRequests {
					t.Errorf("ingest status %d", rr.Code)
					return
				}
				i++
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopIngest:
					return
				default:
				}
				rr := do(t, s, http.MethodGet,
					fmt.Sprintf("/redirect?video=%d&hotspot=%d", (w*7+i)%world.NumVideos, i%len(world.Hotspots)), "")
				if rr.Code != http.StatusOK {
					t.Errorf("redirect status %d", rr.Code)
					return
				}
				var st stamp
				if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
					t.Errorf("redirect body: %v", err)
					return
				}
				if st.Epoch != 0 {
					mu.Lock()
					observed[st] = true
					mu.Unlock()
				}
			}
		}(w)
	}
	for k := 0; k < 20; k++ {
		// Seed demand from the main goroutine too, so every slot has
		// something to schedule even if the ingest workers are starved.
		for v := 0; v < 8; v++ {
			body := fmt.Sprintf(`{"user":1,"video":%d,"hotspot":%d}`, v, v%len(world.Hotspots))
			do(t, s, http.MethodPost, "/ingest", body)
		}
		if _, _, err := s.AdvanceSlot(context.Background()); err != nil {
			t.Fatalf("AdvanceSlot: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	// Keep the lookup workers running until at least one plan has been
	// observed (the swaps above guarantee plans exist).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(observed)
		mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stopIngest)
	wg.Wait()

	published := map[stamp]bool{}
	for _, rec := range s.Plans() {
		published[stamp{Epoch: rec.Epoch, Digest: rec.Digest}] = true
	}
	mu.Lock()
	defer mu.Unlock()
	if len(observed) == 0 {
		t.Fatalf("no lookup observed any plan")
	}
	for st := range observed {
		if !published[st] {
			t.Errorf("lookup observed (epoch %d, digest %s) never published — partial plan?", st.Epoch, st.Digest)
		}
	}
}

// TestTimedSlots exercises the ticker path: with a short SlotDuration,
// accumulated demand is scheduled without manual advances.
func TestTimedSlots(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{World: testWorld(3, 10, 10), Registry: reg, SlotDuration: 5 * time.Millisecond})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for v := 0; v < 3; v++ {
		body := fmt.Sprintf(`{"user":1,"video":%d,"hotspot":0}`, v)
		if rr := do(t, s, http.MethodPost, "/ingest", body); rr.Code != http.StatusAccepted {
			t.Fatalf("ingest: %d", rr.Code)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s.instances[0].current.Load() != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if s.instances[0].current.Load() == nil {
		t.Fatalf("ticker never swapped a plan in")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestHealthz smoke-checks the liveness endpoint.
func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{World: testWorld(2, 5, 5)})
	rr := do(t, s, http.MethodGet, "/healthz", "")
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), `"status":"ok"`) {
		t.Fatalf("healthz = %d %s", rr.Code, rr.Body.String())
	}
}
