package server

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/similarity"
)

// TestAdvanceRejectedAfterClose is the lifecycle regression: a tick or
// manual advance that loses the race with Close must be rejected under
// the same lock that guards closed, not enqueue a snapshot the worker
// will never drain.
func TestAdvanceRejectedAfterClose(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{World: testWorld(3, 10, 10), Registry: reg})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	slotBefore := s.slot

	// A late ticker-style advance (what tickLoop calls) must be a no-op.
	if _, ok := s.advance(nil, false); ok {
		t.Error("advance after Close reported ok")
	}
	if got := reg.Counter("server.slots.rejected").Value(); got != 1 {
		t.Errorf("server.slots.rejected = %d, want 1", got)
	}
	if s.slot != slotBefore {
		t.Errorf("rejected advance still moved the slot counter %d → %d", slotBefore, s.slot)
	}
	if len(s.queue) != 0 {
		t.Errorf("rejected advance left %d snapshots queued", len(s.queue))
	}

	// The done channel of a rejected advance must stay open (the caller
	// gets ok=false instead of a wait), so AdvanceSlot errors promptly.
	if _, _, err := s.AdvanceSlot(context.Background()); err == nil {
		t.Error("AdvanceSlot after Close succeeded")
	}
}

// TestCloseAdvanceSlotRace interleaves AdvanceSlot callers and ingest
// with Close (run under -race in CI): no caller may hang, and after
// Close returns no snapshot may remain queued — accepted demand is
// either scheduled by the final flush or was rejected visibly.
func TestCloseAdvanceSlotRace(t *testing.T) {
	for round := 0; round < 8; round++ {
		s := newTestServer(t, Config{World: testWorld(4, 10, 10), QueueBound: 1 << 20})
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		start := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start
				for i := 0; i < 20; i++ {
					body := fmt.Sprintf(`{"user":%d,"video":%d,"hotspot":%d}`, w, i%100, i%4)
					do(t, s, http.MethodPost, "/ingest", body)
					if _, _, err := s.AdvanceSlot(context.Background()); err != nil {
						return // closed mid-loop: expected
					}
				}
			}(w)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := s.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
		close(start)
		wg.Wait()
		s.mu.Lock()
		queued := len(s.queue)
		s.mu.Unlock()
		if queued != 0 {
			t.Fatalf("round %d: %d snapshots stranded in the queue after Close", round, queued)
		}
	}
}

// TestRedirectCursorOverflow is the ~2^63-lookup regression: once the
// signed round-robin cursor wraps negative, a signed modulo pinned
// every lookup to targets[0] forever. Seeding the cursor just below the
// wrap must keep the proportional fan-out intact across it.
func TestRedirectCursorOverflow(t *testing.T) {
	plan := &core.Plan{
		Redirects: []core.Redirect{
			{From: 0, To: 1, Video: 5, Count: 1},
			{From: 0, To: 2, Video: 5, Count: 1000},
		},
		Placement:     make([]similarity.Set, 3),
		OverflowToCDN: make([]int64, 3),
	}
	sp := newServingPlan(1, 0, 1001, plan, 10)
	e := sp.redirect[int64(0)*10+5]
	if e == nil {
		t.Fatal("no redirect entry for (0, 5)")
	}
	e.cursor.Store(math.MaxInt64 - 1)

	counts := map[int]int{}
	for i := 0; i < 4004; i++ {
		counts[e.next()]++
	}
	// 4004 draws over a 1:1000 split must send the overwhelming
	// majority to target 2, before AND after the cursor wraps. The
	// broken signed modulo sent everything after the wrap to target 1.
	if counts[2] < 3990 {
		t.Fatalf("target 2 served %d of 4004 lookups across the cursor wrap (target 1: %d)",
			counts[2], counts[1])
	}
}

// TestSlotLatencyMicrosHistogram pins the latency histogram to
// microsecond buckets: sub-millisecond rounds (the norm for delta
// slots) must land in a non-zero bucket instead of all collapsing into
// bucket zero of a milliseconds histogram.
func TestSlotLatencyMicrosHistogram(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{World: testWorld(3, 10, 10), Registry: reg})
	s.wg.Add(1)
	go s.recomputeLoop()
	defer func() {
		s.stopOnce.Do(func() { close(s.stop) })
		s.wg.Wait()
	}()
	for v := 0; v < 4; v++ {
		body := fmt.Sprintf(`{"user":1,"video":%d,"hotspot":0}`, v)
		if rr := do(t, s, http.MethodPost, "/ingest", body); rr.Code != http.StatusAccepted {
			t.Fatalf("ingest: %d", rr.Code)
		}
	}
	if _, _, err := s.AdvanceSlot(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := reg.Histogram("server.slot.latency_us", obs.PowersOf2Buckets(24)).Count(); got != 1 {
		t.Errorf("server.slot.latency_us count = %d, want 1", got)
	}
	if got := reg.Histogram("server.slot.latency_ms", obs.PowersOf2Buckets(16)).Count(); got != 0 {
		t.Errorf("legacy server.slot.latency_ms histogram still observed %d values", got)
	}
}

// TestServerDeltaMode checks the delta wiring: healthz reports the
// scheduling mode, and delta rounds surface as server.plan.delta_*
// counters.
func TestServerDeltaMode(t *testing.T) {
	params := core.DefaultParams()
	params.DeltaThreshold = 1
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{World: testWorld(3, 10, 10), Params: params, Registry: reg})
	s.wg.Add(1)
	go s.recomputeLoop()
	defer func() {
		s.stopOnce.Do(func() { close(s.stop) })
		s.wg.Wait()
	}()

	rr := do(t, s, http.MethodGet, "/healthz", "")
	if !strings.Contains(rr.Body.String(), `"mode":"delta"`) {
		t.Errorf("healthz = %s, want mode delta", rr.Body.String())
	}

	for slot := 0; slot < 2; slot++ {
		for v := 0; v < 4; v++ {
			body := fmt.Sprintf(`{"user":1,"video":%d,"hotspot":0}`, v)
			if rr := do(t, s, http.MethodPost, "/ingest", body); rr.Code != http.StatusAccepted {
				t.Fatalf("ingest: %d", rr.Code)
			}
		}
		if _, _, err := s.AdvanceSlot(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("server.plan.delta_rounds").Value(); got != 1 {
		t.Errorf("server.plan.delta_rounds = %d, want 1 (cold slot + one delta slot)", got)
	}

	full := newTestServer(t, Config{World: testWorld(3, 10, 10)})
	rr = do(t, full, http.MethodGet, "/healthz", "")
	if !strings.Contains(rr.Body.String(), `"mode":"full"`) {
		t.Errorf("healthz = %s, want mode full", rr.Body.String())
	}
}
