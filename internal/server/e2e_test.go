package server_test

import (
	"encoding/hex"
	"encoding/json"
	"net/http"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/scheme"
	"repro/internal/server"
	"repro/internal/server/loadgen"
	"repro/internal/sim"
	"repro/internal/trace"
)

// e2eWorldAndTrace generates a small but non-trivial deployment: a few
// regions, enough demand per slot that RBCAer actually redirects and
// places content, several slots.
func e2eWorldAndTrace(t *testing.T) (*trace.World, *trace.Trace) {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.Seed = 7
	cfg.NumHotspots = 24
	cfg.NumVideos = 600
	cfg.NumUsers = 800
	cfg.NumRequests = 3000
	cfg.Slots = 6
	cfg.NumRegions = 4
	world, tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return world, tr
}

// TestServerMatchesOfflineSim is the byte-identity certification:
// replaying a fixed trace through the live server (real HTTP, real
// concurrent ingest) must yield per-slot plans byte-identical to the
// plans sim.Run computes for the same trace offline. This pins down
// the whole online pipeline — nearest-hotspot resolution, demand
// accumulation, capacity inputs, and ScheduleRound determinism.
func TestServerMatchesOfflineSim(t *testing.T) {
	world, tr := e2eWorldAndTrace(t)
	params := core.DefaultParams()

	// Offline reference: collect every slot's canonical plan bytes.
	offline := make(map[int]string)
	_, err := sim.Run(world, tr, scheme.NewRBCAer(params), sim.Options{
		PlanSink: func(slot int, plan *core.Plan) {
			offline[slot] = hex.EncodeToString(plan.Canonical())
		},
	})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	if len(offline) == 0 {
		t.Fatalf("offline run produced no plans")
	}

	// Online replay over real HTTP.
	reg := obs.NewRegistry()
	srv, err := server.New(server.Config{
		World:       world,
		Params:      params,
		Registry:    reg,
		PlanHistory: tr.Slots + 1,
		QueueBound:  1 << 20,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close()

	report, err := loadgen.Replay("http://"+srv.Addr(), world, tr, loadgen.Options{Workers: 8})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if report.Rejected != 0 {
		t.Fatalf("%d requests rejected — QueueBound too small for byte-identity", report.Rejected)
	}
	if report.Accepted != int64(len(tr.Requests)) {
		t.Fatalf("accepted %d of %d requests", report.Accepted, len(tr.Requests))
	}

	online := make(map[int]string)
	for _, rec := range srv.Plans() {
		online[rec.Slot] = rec.Canonical
	}
	if len(online) != len(offline) {
		t.Fatalf("online scheduled %d slots, offline %d", len(online), len(offline))
	}
	for slot, want := range offline {
		got, ok := online[slot]
		if !ok {
			t.Errorf("slot %d: no online plan", slot)
			continue
		}
		if got != want {
			t.Errorf("slot %d: online plan differs from offline (%d vs %d hex bytes)",
				slot, len(got), len(want))
		}
	}

	// The digests the replay saw at each advance match the server's own
	// plan records — the loadgen report is a faithful view of what was
	// served.
	digests := make(map[int]string)
	for _, rec := range srv.Plans() {
		digests[rec.Slot] = rec.Digest
	}
	for _, sr := range report.Slots {
		if !sr.Scheduled {
			t.Errorf("slot %d not scheduled (sent %d)", sr.Slot, sr.Sent)
			continue
		}
		if sr.Digest != digests[sr.Slot] {
			t.Errorf("slot %d: advance digest %s, plan record digest %s", sr.Slot, sr.Digest, digests[sr.Slot])
		}
	}
}

// TestServerDeltaMatchesOfflineFullSim holds the delta scheduler to the
// same byte-identity bar: a live server running in delta mode
// (incremental rounds with a periodic full-solve fallback) must serve
// plans byte-identical to the offline simulator's full solves of the
// same trace.
func TestServerDeltaMatchesOfflineFullSim(t *testing.T) {
	world, tr := e2eWorldAndTrace(t)

	// Offline reference: plain full solves.
	offline := make(map[int]string)
	_, err := sim.Run(world, tr, scheme.NewRBCAer(core.DefaultParams()), sim.Options{
		PlanSink: func(slot int, plan *core.Plan) {
			offline[slot] = hex.EncodeToString(plan.Canonical())
		},
	})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}

	// Online: delta mode, never falling back on drift but re-solving
	// fully every third slot, so the replay crosses cold, delta, and
	// periodic-fallback rounds.
	deltaParams := core.DefaultParams()
	deltaParams.DeltaThreshold = 1
	deltaParams.FullSolveEvery = 3
	reg := obs.NewRegistry()
	srv, err := server.New(server.Config{
		World:       world,
		Params:      deltaParams,
		Registry:    reg,
		PlanHistory: tr.Slots + 1,
		QueueBound:  1 << 20,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close()

	report, err := loadgen.Replay("http://"+srv.Addr(), world, tr, loadgen.Options{Workers: 8})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if report.Rejected != 0 {
		t.Fatalf("%d requests rejected", report.Rejected)
	}

	online := make(map[int]string)
	for _, rec := range srv.Plans() {
		online[rec.Slot] = rec.Canonical
	}
	if len(online) != len(offline) {
		t.Fatalf("online scheduled %d slots, offline %d", len(online), len(offline))
	}
	for slot, want := range offline {
		if got := online[slot]; got != want {
			t.Errorf("slot %d: delta-mode plan differs from offline full solve", slot)
		}
	}
	if got := reg.Counter("server.plan.delta_rounds").Value(); got == 0 {
		t.Error("no delta rounds recorded — the replay never exercised the delta path")
	}
}

// TestMultiInstanceServerMatchesOfflineSim is the scaled-out
// byte-identity certification: a four-frontend serving tier (real HTTP,
// ingest rotated across every frontend, ring-sharded accumulation,
// digest-verified plan fan-out) must serve per-slot plans byte-identical
// to sim.Run's offline plans for the same trace, with every frontend on
// the exact same (epoch, digest) after each swap.
func TestMultiInstanceServerMatchesOfflineSim(t *testing.T) {
	world, tr := e2eWorldAndTrace(t)
	params := core.DefaultParams()

	offline := make(map[int]string)
	_, err := sim.Run(world, tr, scheme.NewRBCAer(params), sim.Options{
		PlanSink: func(slot int, plan *core.Plan) {
			offline[slot] = hex.EncodeToString(plan.Canonical())
		},
	})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}

	const instances = 4
	reg := obs.NewRegistry()
	srv, err := server.New(server.Config{
		World:       world,
		Params:      params,
		Registry:    reg,
		Instances:   instances,
		PlanHistory: tr.Slots + 1,
		QueueBound:  1 << 20,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close()

	targets := make([]string, instances)
	for i := 0; i < instances; i++ {
		addr := srv.InstanceAddr(i)
		if addr == "" {
			t.Fatalf("instance %d has no listen address", i)
		}
		targets[i] = "http://" + addr
	}
	report, err := loadgen.Replay(targets[0], world, tr, loadgen.Options{Workers: 8, Targets: targets})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if report.Rejected != 0 {
		t.Fatalf("%d requests rejected — QueueBound too small for byte-identity", report.Rejected)
	}
	if report.Accepted != int64(len(tr.Requests)) {
		t.Fatalf("accepted %d of %d requests", report.Accepted, len(tr.Requests))
	}

	// Byte identity against the offline simulator.
	online := make(map[int]string)
	epochs := 0
	for _, rec := range srv.Plans() {
		online[rec.Slot] = rec.Canonical
		epochs++
	}
	if len(online) != len(offline) {
		t.Fatalf("online scheduled %d slots, offline %d", len(online), len(offline))
	}
	for slot, want := range offline {
		if online[slot] != want {
			t.Errorf("slot %d: multi-instance plan differs from offline", slot)
		}
	}

	// Every frontend installed every epoch's exact plan: the swap counter
	// only advances on digest-and-byte-verified installs, so
	// swaps == epochs with zero rejects proves each epoch's fan-out
	// delivered the identical plan to all frontends.
	for i := 0; i < instances; i++ {
		pfx := "server.shard." + strconv.Itoa(i) + "."
		if got := reg.Counter(pfx + "swaps").Value(); got != int64(epochs) {
			t.Errorf("instance %d: %d verified swaps, want %d", i, got, epochs)
		}
		if got := reg.Counter(pfx + "plan_rejects").Value(); got != 0 {
			t.Errorf("instance %d: %d plan rejects, want 0", i, got)
		}
	}
	if got := reg.Counter("server.plan.rejects").Value(); got != 0 {
		t.Errorf("scheduler counted %d fan-out rejects, want 0", got)
	}

	// And over real HTTP, every frontend reports the same serving
	// (epoch, digest) in /healthz.
	last := srv.Plans()[len(srv.Plans())-1]
	for i := 0; i < instances; i++ {
		resp, err := http.Get(targets[i] + "/healthz")
		if err != nil {
			t.Fatalf("healthz %d: %v", i, err)
		}
		var hz struct {
			Instance     int    `json:"instance"`
			Instances    int    `json:"instances"`
			ServingEpoch int64  `json:"serving_epoch"`
			Digest       string `json:"digest"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
			t.Fatalf("healthz %d: decoding: %v", i, err)
		}
		resp.Body.Close()
		if hz.Instance != i || hz.Instances != instances {
			t.Errorf("healthz %d: reports instance %d of %d", i, hz.Instance, hz.Instances)
		}
		if hz.ServingEpoch != last.Epoch || hz.Digest != last.Digest {
			t.Errorf("healthz %d: serving (epoch %d, %s), want (epoch %d, %s)",
				i, hz.ServingEpoch, hz.Digest, last.Epoch, last.Digest)
		}
	}

	// Demand really was sharded: more than one instance accumulated.
	busy := 0
	for i := 0; i < instances; i++ {
		if reg.Counter("server.shard."+strconv.Itoa(i)+".accepted").Value() > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("only %d of %d instances accumulated demand — ring sharding inert", busy, instances)
	}
}

// TestReplayByHotspot exercises loadgen's pre-resolved aggregation mode
// against the same byte-identity bar: resolving nearest hotspots on the
// client side must not change the plans.
func TestReplayByHotspot(t *testing.T) {
	world, tr := e2eWorldAndTrace(t)
	params := core.DefaultParams()

	offline := make(map[int]string)
	_, err := sim.Run(world, tr, scheme.NewRBCAer(params), sim.Options{
		PlanSink: func(slot int, plan *core.Plan) {
			offline[slot] = hex.EncodeToString(plan.Canonical())
		},
	})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}

	srv, err := server.New(server.Config{
		World:       world,
		Params:      params,
		PlanHistory: tr.Slots + 1,
		QueueBound:  1 << 20,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close()

	report, err := loadgen.Replay("http://"+srv.Addr(), world, tr, loadgen.Options{Workers: 4, ByHotspot: true})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if report.Rejected != 0 {
		t.Fatalf("%d rejected", report.Rejected)
	}
	for _, rec := range srv.Plans() {
		if offline[rec.Slot] != rec.Canonical {
			t.Errorf("slot %d: by-hotspot replay diverged from offline plan", rec.Slot)
		}
	}
}
