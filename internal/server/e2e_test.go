package server_test

import (
	"encoding/hex"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/scheme"
	"repro/internal/server"
	"repro/internal/server/loadgen"
	"repro/internal/sim"
	"repro/internal/trace"
)

// e2eWorldAndTrace generates a small but non-trivial deployment: a few
// regions, enough demand per slot that RBCAer actually redirects and
// places content, several slots.
func e2eWorldAndTrace(t *testing.T) (*trace.World, *trace.Trace) {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.Seed = 7
	cfg.NumHotspots = 24
	cfg.NumVideos = 600
	cfg.NumUsers = 800
	cfg.NumRequests = 3000
	cfg.Slots = 6
	cfg.NumRegions = 4
	world, tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return world, tr
}

// TestServerMatchesOfflineSim is the byte-identity certification:
// replaying a fixed trace through the live server (real HTTP, real
// concurrent ingest) must yield per-slot plans byte-identical to the
// plans sim.Run computes for the same trace offline. This pins down
// the whole online pipeline — nearest-hotspot resolution, demand
// accumulation, capacity inputs, and ScheduleRound determinism.
func TestServerMatchesOfflineSim(t *testing.T) {
	world, tr := e2eWorldAndTrace(t)
	params := core.DefaultParams()

	// Offline reference: collect every slot's canonical plan bytes.
	offline := make(map[int]string)
	_, err := sim.Run(world, tr, scheme.NewRBCAer(params), sim.Options{
		PlanSink: func(slot int, plan *core.Plan) {
			offline[slot] = hex.EncodeToString(plan.Canonical())
		},
	})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	if len(offline) == 0 {
		t.Fatalf("offline run produced no plans")
	}

	// Online replay over real HTTP.
	reg := obs.NewRegistry()
	srv, err := server.New(server.Config{
		World:       world,
		Params:      params,
		Registry:    reg,
		PlanHistory: tr.Slots + 1,
		QueueBound:  1 << 20,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close()

	report, err := loadgen.Replay("http://"+srv.Addr(), world, tr, loadgen.Options{Workers: 8})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if report.Rejected != 0 {
		t.Fatalf("%d requests rejected — QueueBound too small for byte-identity", report.Rejected)
	}
	if report.Accepted != int64(len(tr.Requests)) {
		t.Fatalf("accepted %d of %d requests", report.Accepted, len(tr.Requests))
	}

	online := make(map[int]string)
	for _, rec := range srv.Plans() {
		online[rec.Slot] = rec.Canonical
	}
	if len(online) != len(offline) {
		t.Fatalf("online scheduled %d slots, offline %d", len(online), len(offline))
	}
	for slot, want := range offline {
		got, ok := online[slot]
		if !ok {
			t.Errorf("slot %d: no online plan", slot)
			continue
		}
		if got != want {
			t.Errorf("slot %d: online plan differs from offline (%d vs %d hex bytes)",
				slot, len(got), len(want))
		}
	}

	// The digests the replay saw at each advance match the server's own
	// plan records — the loadgen report is a faithful view of what was
	// served.
	digests := make(map[int]string)
	for _, rec := range srv.Plans() {
		digests[rec.Slot] = rec.Digest
	}
	for _, sr := range report.Slots {
		if !sr.Scheduled {
			t.Errorf("slot %d not scheduled (sent %d)", sr.Slot, sr.Sent)
			continue
		}
		if sr.Digest != digests[sr.Slot] {
			t.Errorf("slot %d: advance digest %s, plan record digest %s", sr.Slot, sr.Digest, digests[sr.Slot])
		}
	}
}

// TestServerDeltaMatchesOfflineFullSim holds the delta scheduler to the
// same byte-identity bar: a live server running in delta mode
// (incremental rounds with a periodic full-solve fallback) must serve
// plans byte-identical to the offline simulator's full solves of the
// same trace.
func TestServerDeltaMatchesOfflineFullSim(t *testing.T) {
	world, tr := e2eWorldAndTrace(t)

	// Offline reference: plain full solves.
	offline := make(map[int]string)
	_, err := sim.Run(world, tr, scheme.NewRBCAer(core.DefaultParams()), sim.Options{
		PlanSink: func(slot int, plan *core.Plan) {
			offline[slot] = hex.EncodeToString(plan.Canonical())
		},
	})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}

	// Online: delta mode, never falling back on drift but re-solving
	// fully every third slot, so the replay crosses cold, delta, and
	// periodic-fallback rounds.
	deltaParams := core.DefaultParams()
	deltaParams.DeltaThreshold = 1
	deltaParams.FullSolveEvery = 3
	reg := obs.NewRegistry()
	srv, err := server.New(server.Config{
		World:       world,
		Params:      deltaParams,
		Registry:    reg,
		PlanHistory: tr.Slots + 1,
		QueueBound:  1 << 20,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close()

	report, err := loadgen.Replay("http://"+srv.Addr(), world, tr, loadgen.Options{Workers: 8})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if report.Rejected != 0 {
		t.Fatalf("%d requests rejected", report.Rejected)
	}

	online := make(map[int]string)
	for _, rec := range srv.Plans() {
		online[rec.Slot] = rec.Canonical
	}
	if len(online) != len(offline) {
		t.Fatalf("online scheduled %d slots, offline %d", len(online), len(offline))
	}
	for slot, want := range offline {
		if got := online[slot]; got != want {
			t.Errorf("slot %d: delta-mode plan differs from offline full solve", slot)
		}
	}
	if got := reg.Counter("server.plan.delta_rounds").Value(); got == 0 {
		t.Error("no delta rounds recorded — the replay never exercised the delta path")
	}
}

// TestReplayByHotspot exercises loadgen's pre-resolved aggregation mode
// against the same byte-identity bar: resolving nearest hotspots on the
// client side must not change the plans.
func TestReplayByHotspot(t *testing.T) {
	world, tr := e2eWorldAndTrace(t)
	params := core.DefaultParams()

	offline := make(map[int]string)
	_, err := sim.Run(world, tr, scheme.NewRBCAer(params), sim.Options{
		PlanSink: func(slot int, plan *core.Plan) {
			offline[slot] = hex.EncodeToString(plan.Canonical())
		},
	})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}

	srv, err := server.New(server.Config{
		World:       world,
		Params:      params,
		PlanHistory: tr.Slots + 1,
		QueueBound:  1 << 20,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close()

	report, err := loadgen.Replay("http://"+srv.Addr(), world, tr, loadgen.Options{Workers: 4, ByHotspot: true})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if report.Rejected != 0 {
		t.Fatalf("%d rejected", report.Rejected)
	}
	for _, rec := range srv.Plans() {
		if offline[rec.Slot] != rec.Canonical {
			t.Errorf("slot %d: by-hotspot replay diverged from offline plan", rec.Slot)
		}
	}
}
