package server

import (
	"encoding/hex"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/wal"
)

// This file is the serving tier's side of the durability subsystem
// (internal/wal). The protocol, end to end:
//
//   - Every accepted ingest is logged under its stripe's lock (so the
//     per-instance sequence watermark is exact) and group-committed
//     before the 202 acknowledgment (acceptDemand).
//   - Every slot boundary logs an advance record under s.mu *before*
//     the drain re-stamps the stripes' slot tags, so in WAL order no
//     ingest tagged slot k+1 can precede advance k (Server.advance).
//   - Every scheduled plan logs its canonical bytes + digest and is
//     synced before the plan fans out to the frontends; a round that
//     fails its contract logs a roundErr record instead, durably
//     mirroring the live drop (Server.runSlot).
//   - Every CheckpointEvery scheduled slots (and at Close) the server
//     freezes s.mu plus every stripe lock and captures a checkpoint:
//     slot/epoch counters, the last plan, merged pending demand,
//     queued-but-unplanned snapshots, and per-instance ingest cursors
//     (writeCheckpoint).
//
// On boot, openWAL replays the newest valid checkpoint plus the WAL
// suffix and re-seeds the server: recovery hands back exactly the
// durable prefix, so a kill/restart finishes a trace byte-identical
// to an uninterrupted run (certified in durability_e2e_test.go).

// openWAL opens cfg.WALDir, recovers the durable state, and applies it
// to the freshly built (not yet started) server.
func (s *Server) openWAL() error {
	policy, err := wal.ParsePolicy(s.cfg.Fsync)
	if err != nil {
		return err
	}
	l, st, err := wal.Open(s.cfg.WALDir, wal.Options{
		Policy:   policy,
		Interval: s.cfg.FsyncInterval,
		Registry: s.reg,
	})
	if err != nil {
		return err
	}
	s.wal = l
	s.walState = st
	s.slot = st.Slot
	s.epoch = st.Epoch
	for id, seq := range st.Cursors {
		if id >= 0 && id < len(s.instances) {
			s.instances[id].seq.Store(seq)
		}
	}
	for _, sh := range s.allShards {
		sh.slot = st.Slot
	}

	// Accepted-but-undrained demand goes back into the stripes it
	// would live in, routed through the same ring.
	m := len(s.world.Hotspots)
	for _, e := range st.Pending {
		if e.Hotspot < 0 || e.Hotspot >= m || e.Video < 0 || e.Video >= s.world.NumVideos {
			// A WAL from a different world: drop the entry loudly
			// rather than corrupt the accumulators.
			s.walErrors.Inc()
			continue
		}
		owner := s.instances[0]
		if len(s.instances) > 1 {
			owner = s.instances[s.ring.OwnerOfHotspot(e.Hotspot)]
		}
		sh := owner.shards[e.Hotspot%len(owner.shards)]
		sh.mu.Lock()
		sh.applyLocked(trace.HotspotID(e.Hotspot), trace.VideoID(e.Video), e.Count)
		sh.mu.Unlock()
	}

	// The last durable plan goes back to serving on every frontend,
	// re-verified by install exactly like a live fan-out.
	if st.Plan != nil {
		for _, in := range s.instances {
			if err := in.install(st.Plan.Epoch, st.Plan.Slot, 0, st.Plan.Canonical, st.Plan.Digest); err != nil {
				return fmt.Errorf("recovered plan rejected: %w", err)
			}
		}
		s.history = append(s.history, PlanRecord{
			Slot:      st.Plan.Slot,
			Epoch:     st.Plan.Epoch,
			Digest:    digestString(st.Plan.Digest),
			Canonical: hex.EncodeToString(st.Plan.Canonical),
		})
		s.lastPlan = st.Plan
	}

	// Drained-but-unplanned slots go back on the recompute queue; the
	// worker schedules them as soon as Start kicks it.
	for _, q := range st.Queue {
		d := core.NewDemand(m)
		var reqs int64
		for _, e := range q.Entries {
			if e.Hotspot < 0 || e.Hotspot >= m || e.Video < 0 || e.Video >= s.world.NumVideos {
				s.walErrors.Inc()
				continue
			}
			d.Add(trace.HotspotID(e.Hotspot), trace.VideoID(e.Video), e.Count)
			reqs += e.Count
		}
		if reqs == 0 {
			continue
		}
		s.queue = append(s.queue, &slotSnapshot{slot: q.Slot, demand: d, requests: reqs, start: time.Now()})
	}
	return nil
}

// syncWAL makes lsn durable per the policy, folding append and fsync
// failures into server.wal.errors (durability degrades loudly; the
// caller decides whether to keep the acknowledgment).
func (s *Server) syncWAL(lsn uint64, appendErr error) error {
	if s.wal == nil {
		return nil
	}
	if appendErr != nil {
		s.walErrors.Inc()
		return appendErr
	}
	if err := s.wal.Sync(lsn); err != nil {
		s.walErrors.Inc()
		return err
	}
	return nil
}

// maybeCheckpoint writes a checkpoint when the scheduled-slot cadence
// is due (or force is set). Called from the recompute worker after a
// plan publishes, and from Close after the final flush.
func (s *Server) maybeCheckpoint(force bool) {
	if s.wal == nil {
		return
	}
	s.mu.Lock()
	s.sinceCkpt++
	due := force || (s.cfg.CheckpointEvery > 0 && s.sinceCkpt >= s.cfg.CheckpointEvery)
	if due {
		s.sinceCkpt = 0
	}
	s.mu.Unlock()
	if !due {
		return
	}
	s.writeCheckpoint()
}

// writeCheckpoint captures and persists the full durable state. The
// segment mark is taken first so WriteCheckpoint's GC can never
// collect a segment whose records postdate the capture; the capture
// itself holds s.mu plus every stripe lock, so the per-instance
// sequence counters are exact watermarks of applied-and-logged
// ingests and the pending maps cannot move underneath it.
func (s *Server) writeCheckpoint() {
	mark := s.wal.CurrentSegment()
	s.mu.Lock()
	cp := &wal.Checkpoint{
		Slot:    s.slot,
		Epoch:   s.epoch,
		Plan:    s.lastPlan,
		Cursors: make(map[int]uint64, len(s.instances)),
	}
	for _, snap := range s.queue {
		cp.Queue = append(cp.Queue, queuedFromSnapshot(snap))
	}
	for _, sh := range s.allShards {
		sh.mu.Lock()
	}
	for _, in := range s.instances {
		if seq := in.seq.Load(); seq > 0 {
			cp.Cursors[in.id] = seq
		}
	}
	pend := make(map[[2]int]int64)
	for _, sh := range s.allShards {
		for h, vids := range sh.perVideo {
			for v, n := range vids {
				pend[[2]int{int(h), int(v)}] += n
			}
		}
	}
	for i := len(s.allShards) - 1; i >= 0; i-- {
		s.allShards[i].mu.Unlock()
	}
	s.mu.Unlock()

	cp.Pending = entriesFromMap(pend)
	if err := s.wal.WriteCheckpoint(cp, mark); err != nil {
		s.walErrors.Inc()
	}
}

// queuedFromSnapshot renders one queued slot snapshot as its durable
// form.
func queuedFromSnapshot(snap *slotSnapshot) wal.QueuedSlot {
	m := make(map[[2]int]int64)
	for h := range snap.demand.PerVideo {
		for v, n := range snap.demand.PerVideo[h] {
			m[[2]int{h, int(v)}] += n
		}
	}
	return wal.QueuedSlot{Slot: snap.slot, Requests: snap.requests, Entries: entriesFromMap(m)}
}

// entriesFromMap renders a demand map as (hotspot, video)-sorted
// entries (deterministic checkpoint bytes).
func entriesFromMap(m map[[2]int]int64) []wal.Entry {
	out := make([]wal.Entry, 0, len(m))
	for k, n := range m {
		out = append(out, wal.Entry{Hotspot: k[0], Video: k[1], Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hotspot != out[j].Hotspot {
			return out[i].Hotspot < out[j].Hotspot
		}
		return out[i].Video < out[j].Video
	})
	return out
}

// Kill terminates the server the way a crash would: listeners are
// closed abruptly (in-flight requests are cut off), no final flush
// runs, no checkpoint is written, and the WAL drops whatever is still
// buffered in user space. Only the crash-recovery harnesses use it;
// state recovery after Kill must come entirely from the durable
// prefix. Kill is idempotent and mutually idempotent with Close.
func (s *Server) Kill() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.killed.Store(true)
	for _, in := range s.instances {
		if in.httpSrv != nil {
			in.httpSrv.Close()
		}
	}
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	if s.wal != nil {
		s.wal.Crash()
	}
}

// WALState reports the recovery summary of this server's boot (nil
// when durability is off or the directory was fresh and empty).
func (s *Server) WALState() *wal.State { return s.walState }
