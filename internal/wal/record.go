package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Record framing: every log record is one frame,
//
//	u32le length | u32le crc32c(payload) | payload
//
// followed immediately by the next frame. The length covers the
// payload only; the CRC is Castagnoli over the payload bytes. A frame
// whose length field is implausible, whose payload is cut short, or
// whose CRC mismatches marks the end of the log's valid prefix —
// recovery truncates there (torn-tail detection) and discards
// everything after it, because durability is ordered: a later frame
// can only be trusted if every earlier frame is intact.
//
// Payloads are a kind byte followed by uvarint fields:
//
//	ingest  (1): slot, instance, seq, hotspot, video, count
//	advance (2): slot
//	plan    (3): slot, epoch, digest (8 bytes le), len, canonical bytes
//	roundErr(4): slot
//
// ingest records one accepted request (or a pre-aggregated count)
// tagged with the slot the owning stripe was accumulating for;
// advance marks a slot boundary (the drained slot number); plan
// records a scheduled plan's canonical bytes and digest; roundErr
// records that a slot's round failed its contract and the drained
// demand was dropped (mirroring the live server, which keeps serving
// the previous plan).

const (
	frameHeaderBytes = 8
	// maxRecordBytes bounds a single payload; a length field above it
	// is treated as corruption rather than an allocation request.
	maxRecordBytes = 64 << 20
)

const (
	recIngest   byte = 1
	recAdvance  byte = 2
	recPlan     byte = 3
	recRoundErr byte = 4
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// record is one decoded log record.
type record struct {
	kind      byte
	slot      int
	instance  int
	seq       uint64
	hotspot   int
	video     int
	count     int64
	epoch     int64
	digest    uint64
	canonical []byte
}

// appendFrame appends payload as one framed record.
func appendFrame(b, payload []byte) []byte {
	var hdr [frameHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	b = append(b, hdr[:]...)
	return append(b, payload...)
}

// encode appends the record's payload (not the frame) to b.
func (r *record) encode(b []byte) []byte {
	b = append(b, r.kind)
	switch r.kind {
	case recIngest:
		b = binary.AppendUvarint(b, uint64(r.slot))
		b = binary.AppendUvarint(b, uint64(r.instance))
		b = binary.AppendUvarint(b, r.seq)
		b = binary.AppendUvarint(b, uint64(r.hotspot))
		b = binary.AppendUvarint(b, uint64(r.video))
		b = binary.AppendUvarint(b, uint64(r.count))
	case recAdvance, recRoundErr:
		b = binary.AppendUvarint(b, uint64(r.slot))
	case recPlan:
		b = binary.AppendUvarint(b, uint64(r.slot))
		b = binary.AppendUvarint(b, uint64(r.epoch))
		b = binary.LittleEndian.AppendUint64(b, r.digest)
		b = binary.AppendUvarint(b, uint64(len(r.canonical)))
		b = append(b, r.canonical...)
	}
	return b
}

// uvarint reads one uvarint, reporting the remaining bytes.
func uvarint(b []byte) (uint64, []byte, bool) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, false
	}
	return v, b[n:], true
}

// uvarintBounded reads one uvarint that must fit the given bound
// (guarding the int conversions on 32-bit-hostile inputs).
func uvarintBounded(b []byte, bound uint64) (uint64, []byte, bool) {
	v, rest, ok := uvarint(b)
	if !ok || v > bound {
		return 0, nil, false
	}
	return v, rest, true
}

const (
	maxSlotValue     = 1 << 40
	maxInstanceValue = 1 << 20
	maxEntityValue   = 1 << 40 // hotspot / video ids
	maxCountValue    = 1 << 50
)

// decodeRecord strictly decodes one payload. Trailing bytes or
// out-of-range fields are errors: a CRC-valid frame that fails to
// decode is treated exactly like corruption by the replay layer.
func decodeRecord(payload []byte) (record, error) {
	if len(payload) == 0 {
		return record{}, fmt.Errorf("wal: empty record payload")
	}
	r := record{kind: payload[0]}
	b := payload[1:]
	var v uint64
	var ok bool
	switch r.kind {
	case recIngest:
		if v, b, ok = uvarintBounded(b, maxSlotValue); !ok {
			return record{}, fmt.Errorf("wal: ingest record: bad slot")
		}
		r.slot = int(v)
		if v, b, ok = uvarintBounded(b, maxInstanceValue); !ok {
			return record{}, fmt.Errorf("wal: ingest record: bad instance")
		}
		r.instance = int(v)
		if r.seq, b, ok = uvarint(b); !ok {
			return record{}, fmt.Errorf("wal: ingest record: bad seq")
		}
		if v, b, ok = uvarintBounded(b, maxEntityValue); !ok {
			return record{}, fmt.Errorf("wal: ingest record: bad hotspot")
		}
		r.hotspot = int(v)
		if v, b, ok = uvarintBounded(b, maxEntityValue); !ok {
			return record{}, fmt.Errorf("wal: ingest record: bad video")
		}
		r.video = int(v)
		if v, b, ok = uvarintBounded(b, maxCountValue); !ok || v == 0 {
			return record{}, fmt.Errorf("wal: ingest record: bad count")
		}
		r.count = int64(v)
	case recAdvance, recRoundErr:
		if v, b, ok = uvarintBounded(b, maxSlotValue); !ok {
			return record{}, fmt.Errorf("wal: advance record: bad slot")
		}
		r.slot = int(v)
	case recPlan:
		if v, b, ok = uvarintBounded(b, maxSlotValue); !ok {
			return record{}, fmt.Errorf("wal: plan record: bad slot")
		}
		r.slot = int(v)
		if v, b, ok = uvarintBounded(b, 1<<62); !ok {
			return record{}, fmt.Errorf("wal: plan record: bad epoch")
		}
		r.epoch = int64(v)
		if len(b) < 8 {
			return record{}, fmt.Errorf("wal: plan record: truncated digest")
		}
		r.digest = binary.LittleEndian.Uint64(b[:8])
		b = b[8:]
		// The bound must be the bytes left AFTER the length varint, or
		// a truncated body whose length still fits the pre-read bound
		// would slice past the end.
		if v, b, ok = uvarint(b); !ok || v > uint64(len(b)) {
			return record{}, fmt.Errorf("wal: plan record: bad canonical length")
		}
		r.canonical = append([]byte(nil), b[:v]...)
		b = b[v:]
	default:
		return record{}, fmt.Errorf("wal: unknown record kind %d", r.kind)
	}
	if len(b) != 0 {
		return record{}, fmt.Errorf("wal: %d trailing bytes after record", len(b))
	}
	return r, nil
}

// scanSegment decodes data's longest valid record prefix. It returns
// the decoded records and the byte length of the prefix they occupy —
// everything after validLen is a torn tail or corruption and must be
// truncated. scanSegment never panics, whatever the bytes (FuzzWALReplay
// holds it to that).
func scanSegment(data []byte) (recs []record, validLen int) {
	off := 0
	for {
		rest := data[off:]
		if len(rest) < frameHeaderBytes {
			return recs, off
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		if n > maxRecordBytes || int(n) > len(rest)-frameHeaderBytes {
			return recs, off
		}
		payload := rest[frameHeaderBytes : frameHeaderBytes+int(n)]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(rest[4:8]) {
			return recs, off
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return recs, off
		}
		recs = append(recs, rec)
		off += frameHeaderBytes + int(n)
	}
}
