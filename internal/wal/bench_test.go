package wal

import (
	"testing"
)

func benchAppend(b *testing.B, policy Policy) {
	dir := b.TempDir()
	l, _, err := Open(dir, Options{Policy: policy})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lsn, err := l.AppendIngest(i>>10, 0, uint64(i+1), i%64, i%512, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := l.Sync(lsn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALAppendAlways(b *testing.B)   { benchAppend(b, PolicyAlways) }
func BenchmarkWALAppendInterval(b *testing.B) { benchAppend(b, PolicyInterval) }
func BenchmarkWALAppendNone(b *testing.B)     { benchAppend(b, PolicyNone) }

func BenchmarkRecoveryReplay(b *testing.B) {
	dir := b.TempDir()
	l, _, err := Open(dir, Options{Policy: PolicyNone})
	if err != nil {
		b.Fatal(err)
	}
	const records = 20000
	canonical, digest := testPlanBytes(b, 7)
	for i := 0; i < records; i++ {
		if i%2000 == 1999 {
			slot := i / 2000
			if _, err := l.AppendAdvance(slot); err != nil {
				b.Fatal(err)
			}
			if _, err := l.AppendPlan(slot, int64(slot+1), digest, canonical); err != nil {
				b.Fatal(err)
			}
			continue
		}
		if _, err := l.AppendIngest(i/2000, i%4, uint64(i/4+1), i%64, i%512, 1); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l2, st, err := Open(dir, Options{Policy: PolicyNone})
		if err != nil {
			b.Fatal(err)
		}
		// Boundary iterations append two records (advance + plan).
		want := records + records/2000
		if st.Records != want {
			b.Fatalf("recovered %d records, want %d", st.Records, want)
		}
		l2.Close()
	}
}
