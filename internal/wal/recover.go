package wal

import (
	"bytes"
	"sort"

	"repro/internal/core"
)

// State is what recovery hands the server: provably equal to the
// durable prefix of the crashed run. Slot/Epoch restore the counters,
// Plan (if any) is the newest verified plan, Pending is accepted
// demand not yet drained into a slot, Queue is drained demand whose
// plan never became durable, and Cursors are the per-instance ingest
// sequence watermarks the server resumes from.
type State struct {
	// Slot is the restored slot counter (the next slot to drain).
	Slot int
	// Epoch is the last durable plan epoch.
	Epoch int64
	// Plan is the newest verified durable plan (nil before any plan).
	Plan *PlanState
	// Pending is merged accepted-but-undrained demand, sorted
	// (hotspot, video).
	Pending []Entry
	// PendingRequests is the total request count behind Pending.
	PendingRequests int64
	// Queue holds drained slots awaiting (re)scheduling, slot order.
	Queue []QueuedSlot
	// Cursors maps instance id to its last durable ingest sequence.
	Cursors map[int]uint64
	// CheckpointSeq is the loaded checkpoint's sequence (0 = none).
	CheckpointSeq uint64
	// Records counts WAL records replayed on top of the checkpoint.
	Records int
	// TruncatedBytes counts bytes discarded as torn tail / corruption
	// (including whole segments after the first invalid frame).
	TruncatedBytes int64
}

// verifyPlanBytes re-verifies canonical plan bytes exactly like the
// serving tier's fan-out install: the bytes must hash to the
// advertised digest, must parse strictly, and must re-encode to the
// identical bytes. Durable state never reaches the server without
// passing this.
func verifyPlanBytes(canonical []byte, digest uint64) bool {
	if core.DigestOf(canonical) != digest {
		return false
	}
	plan, err := core.ParseCanonical(canonical)
	if err != nil {
		return false
	}
	return bytes.Equal(plan.Canonical(), canonical)
}

// entryKey merges demand increments.
type entryKey struct{ hotspot, video int }

// buildState deterministically reconstructs server state from a base
// checkpoint (nil for none) plus the decoded WAL records, in log
// order. It never panics, whatever the inputs (FuzzWALReplay drives
// it with adversarial record streams), and any plan it returns has
// passed verifyPlanBytes.
func buildState(ckpt *Checkpoint, recs []record) *State {
	st := &State{Cursors: make(map[int]uint64)}
	base := make(map[int]uint64) // checkpoint cursors, frozen for skip decisions
	if ckpt != nil {
		st.Slot = ckpt.Slot
		st.Epoch = ckpt.Epoch
		st.Plan = ckpt.Plan
		st.CheckpointSeq = ckpt.Seq
		for id, seq := range ckpt.Cursors {
			base[id] = seq
			st.Cursors[id] = seq
		}
	}

	// A plan record whose bytes fail verification is corruption that
	// slipped past the CRC; trusting anything after it would violate
	// the durable-prefix contract, so replay stops there.
	for i := range recs {
		if recs[i].kind == recPlan && !verifyPlanBytes(recs[i].canonical, recs[i].digest) {
			recs = recs[:i]
			break
		}
	}
	st.Records = len(recs)

	// First pass, log order: slot outcomes (plan or contract error),
	// the newest plan, and the advance high-water mark.
	maxAdv := -1
	outcome := make(map[int]bool)
	var ingests []record
	for _, r := range recs {
		switch r.kind {
		case recAdvance:
			if r.slot > maxAdv {
				maxAdv = r.slot
			}
		case recPlan:
			outcome[r.slot] = true
			if st.Plan == nil || r.epoch > st.Plan.Epoch {
				st.Plan = &PlanState{Slot: r.slot, Epoch: r.epoch, Digest: r.digest, Canonical: r.canonical}
			}
			if r.epoch > st.Epoch {
				st.Epoch = r.epoch
			}
		case recRoundErr:
			outcome[r.slot] = true
		case recIngest:
			if r.seq > base[r.instance] {
				ingests = append(ingests, r)
			}
			if r.seq > st.Cursors[r.instance] {
				st.Cursors[r.instance] = r.seq
			}
		}
	}
	if maxAdv+1 > st.Slot {
		st.Slot = maxAdv + 1
	}
	for s := range outcome {
		if s+1 > st.Slot {
			st.Slot = s + 1
		}
	}
	// drainedBound: slots strictly below it have durably passed their
	// boundary; their surviving demand belongs to the queue, everything
	// at or above it is still pending.
	drainedBound := maxAdv + 1
	if ckpt != nil && ckpt.Slot > drainedBound {
		drainedBound = ckpt.Slot
	}

	// Deterministic replay order. Demand counts commute, so the merge
	// result is order-independent — the sort pins the record-for-record
	// reconstruction order regardless of how concurrent appends from
	// different stripes interleaved in the log.
	sort.SliceStable(ingests, func(i, j int) bool {
		a, b := ingests[i], ingests[j]
		if a.slot != b.slot {
			return a.slot < b.slot
		}
		if a.instance != b.instance {
			return a.instance < b.instance
		}
		return a.seq < b.seq
	})

	pending := make(map[entryKey]int64)
	queued := make(map[int]map[entryKey]int64)
	queuedReqs := make(map[int]int64)
	if ckpt != nil {
		for _, q := range ckpt.Queue {
			if outcome[q.Slot] {
				continue // its plan (or contract error) became durable after the checkpoint
			}
			m := queued[q.Slot]
			if m == nil {
				m = make(map[entryKey]int64)
				queued[q.Slot] = m
			}
			for _, e := range q.Entries {
				m[entryKey{e.Hotspot, e.Video}] += e.Count
			}
			queuedReqs[q.Slot] += q.Requests
		}
	}
	for _, r := range ingests {
		if outcome[r.slot] {
			continue // consumed by a durable plan
		}
		if r.slot < drainedBound {
			m := queued[r.slot]
			if m == nil {
				m = make(map[entryKey]int64)
				queued[r.slot] = m
			}
			m[entryKey{r.hotspot, r.video}] += r.count
			queuedReqs[r.slot] += r.count
		} else {
			pending[entryKey{r.hotspot, r.video}] += r.count
			st.PendingRequests += r.count
		}
	}
	if ckpt != nil {
		for _, e := range ckpt.Pending {
			pending[entryKey{e.Hotspot, e.Video}] += e.Count
			st.PendingRequests += e.Count
		}
	}

	st.Pending = sortedEntries(pending)
	slots := make([]int, 0, len(queued))
	for s := range queued {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	for _, s := range slots {
		es := sortedEntries(queued[s])
		if len(es) == 0 {
			continue
		}
		st.Queue = append(st.Queue, QueuedSlot{Slot: s, Requests: queuedReqs[s], Entries: es})
	}
	return st
}

// sortedEntries renders a demand map as (hotspot, video)-sorted
// entries.
func sortedEntries(m map[entryKey]int64) []Entry {
	out := make([]Entry, 0, len(m))
	for k, n := range m {
		out = append(out, Entry{Hotspot: k.hotspot, Video: k.video, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hotspot != out[j].Hotspot {
			return out[i].Hotspot < out[j].Hotspot
		}
		return out[i].Video < out[j].Video
	})
	return out
}
