package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPolicyStrings locks in the policy name round-trip and the
// parser's rejection of unknown names.
func TestPolicyStrings(t *testing.T) {
	for _, tc := range []struct {
		p    Policy
		want string
	}{
		{PolicyAlways, "always"},
		{PolicyInterval, "interval"},
		{PolicyNone, "none"},
		{Policy(42), "policy(42)"},
	} {
		if got := tc.p.String(); got != tc.want {
			t.Errorf("Policy(%d).String() = %q, want %q", int(tc.p), got, tc.want)
		}
	}
	if p, err := ParsePolicy(""); err != nil || p != PolicyAlways {
		t.Errorf(`ParsePolicy("") = %v, %v`, p, err)
	}
	for _, name := range []string{"always", "interval", "none"} {
		p, err := ParsePolicy(name)
		if err != nil || p.String() != name {
			t.Errorf("ParsePolicy(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil || !strings.Contains(err.Error(), "sometimes") {
		t.Errorf("ParsePolicy(sometimes) err = %v", err)
	}
}

// uv appends uvarints to a payload under construction.
func uv(b []byte, vs ...uint64) []byte {
	for _, v := range vs {
		b = binary.AppendUvarint(b, v)
	}
	return b
}

// TestDecodeRecordErrors walks every rejection branch of the strict
// record decoder: truncations, out-of-range fields, zero counts,
// unknown kinds, and trailing garbage all must fail (a CRC-valid
// frame that fails decoding is treated as corruption by replay).
func TestDecodeRecordErrors(t *testing.T) {
	digest := make([]byte, 8)
	validPlan := uv([]byte{recPlan}, 7, 3)
	validPlan = append(validPlan, digest...)
	validPlan = uv(validPlan, 0)
	cases := []struct {
		name    string
		payload []byte
		want    string
	}{
		{"empty", nil, "empty record payload"},
		{"ingest truncated slot", []byte{recIngest}, "bad slot"},
		{"ingest slot out of range", uv([]byte{recIngest}, maxSlotValue+1), "bad slot"},
		{"ingest truncated instance", uv([]byte{recIngest}, 1), "bad instance"},
		{"ingest truncated seq", uv([]byte{recIngest}, 1, 0), "bad seq"},
		{"ingest truncated hotspot", uv([]byte{recIngest}, 1, 0, 9), "bad hotspot"},
		{"ingest truncated video", uv([]byte{recIngest}, 1, 0, 9, 4), "bad video"},
		{"ingest truncated count", uv([]byte{recIngest}, 1, 0, 9, 4, 2), "bad count"},
		{"ingest zero count", uv([]byte{recIngest}, 1, 0, 9, 4, 2, 0), "bad count"},
		{"advance truncated slot", []byte{recAdvance}, "bad slot"},
		{"rounderr truncated slot", []byte{recRoundErr}, "bad slot"},
		{"plan truncated slot", []byte{recPlan}, "bad slot"},
		{"plan truncated epoch", uv([]byte{recPlan}, 7), "bad epoch"},
		{"plan truncated digest", uv([]byte{recPlan}, 7, 3), "truncated digest"},
		{"plan canonical overruns", append(uv(append(uv([]byte{recPlan}, 7, 3), digest...), 200), 1, 2), "bad canonical length"},
		{"unknown kind", []byte{99, 1}, "unknown record kind"},
		{"trailing bytes", append(append([]byte(nil), validPlan...), 0xFF), "trailing bytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := decodeRecord(tc.payload)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("decodeRecord(% x) err = %v, want %q", tc.payload, err, tc.want)
			}
		})
	}
	if _, err := decodeRecord(validPlan); err != nil {
		t.Fatalf("valid plan payload rejected: %v", err)
	}
}

// TestDecodeCheckpointErrors corrupts a well-formed checkpoint body
// byte by byte: every strict prefix must fail to decode (never panic,
// never decode to a shorter-but-valid state), and targeted edits hit
// the version / plan-flag / implausible-count branches.
func TestDecodeCheckpointErrors(t *testing.T) {
	canon, dig := testPlanBytes(t, 5)
	cp := &Checkpoint{
		Seq:     3,
		Slot:    9,
		Epoch:   5,
		Plan:    &PlanState{Slot: 8, Epoch: 5, Digest: dig, Canonical: canon},
		Cursors: map[int]uint64{0: 12, 2: 7},
		Pending: []Entry{{Hotspot: 1, Video: 2, Count: 3}},
		Queue: []QueuedSlot{
			{Slot: 9, Requests: 4, Entries: []Entry{{Hotspot: 0, Video: 1, Count: 4}}},
		},
	}
	body := cp.encode(nil)
	if _, err := decodeCheckpoint(body); err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
	for k := 0; k < len(body); k++ {
		if _, err := decodeCheckpoint(body[:k]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", k, len(body))
		}
	}

	bad := append([]byte(nil), body...)
	bad[0] = 9 // version
	if _, err := decodeCheckpoint(bad); err == nil || !strings.Contains(err.Error(), "unsupported version") {
		t.Fatalf("bad version err = %v", err)
	}

	// The plan-present flag sits right after version, seq, slot, epoch.
	flagOff := 0
	for i := 0; i < 4; i++ {
		_, n := binary.Uvarint(body[flagOff:])
		flagOff += n
	}
	if body[flagOff] != 1 {
		t.Fatalf("expected plan flag at offset %d, found %d", flagOff, body[flagOff])
	}
	bad = append([]byte(nil), body...)
	bad[flagOff] = 2
	if _, err := decodeCheckpoint(bad); err == nil || !strings.Contains(err.Error(), "bad plan flag") {
		t.Fatalf("bad plan flag err = %v", err)
	}

	// An entry count far beyond the remaining bytes is corruption, not
	// an allocation request.
	if _, _, err := decodeEntries(uv(nil, 1<<40)); err == nil || !strings.Contains(err.Error(), "exceeds body") {
		t.Fatalf("implausible entry count err = %v", err)
	}

	// Trailing garbage after a complete checkpoint is rejected.
	if _, err := decodeCheckpoint(append(append([]byte(nil), body...), 0)); err == nil ||
		!strings.Contains(err.Error(), "trailing bytes") {
		t.Fatal("trailing checkpoint bytes accepted")
	}
}

// TestUnmarshalCheckpointErrors covers the file-level checks in front
// of the strict decoder: magic, framed length, CRC.
func TestUnmarshalCheckpointErrors(t *testing.T) {
	data := marshalCheckpoint(&Checkpoint{Slot: 1, Cursors: map[int]uint64{}})
	if _, err := unmarshalCheckpoint(data); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
	if _, err := unmarshalCheckpoint(data[:4]); err == nil || !strings.Contains(err.Error(), "short file") {
		t.Fatalf("short file err = %v", err)
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if _, err := unmarshalCheckpoint(bad); err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("bad magic err = %v", err)
	}
	if _, err := unmarshalCheckpoint(data[:len(data)-1]); err == nil || !strings.Contains(err.Error(), "bad body length") {
		t.Fatalf("bad body length err = %v", err)
	}
	bad = append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := unmarshalCheckpoint(bad); err == nil || !strings.Contains(err.Error(), "CRC mismatch") {
		t.Fatalf("CRC mismatch err = %v", err)
	}
}

// TestLogAccessors exercises the introspection surface: LSN and
// segment accessors, checkpoint sequencing, sync-past-end, and the
// closed-log append rejection.
func TestLogAccessors(t *testing.T) {
	dir := t.TempDir()
	l, st, err := Open(dir, Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 0 {
		t.Fatalf("fresh dir recovered %d records", st.Records)
	}
	if got := l.LastLSN(); got != 0 {
		t.Fatalf("LastLSN on empty log = %d", got)
	}
	if got := l.Policy(); got != PolicyAlways {
		t.Fatalf("Policy() = %v", got)
	}
	if got := l.CurrentSegment(); got != 1 {
		t.Fatalf("CurrentSegment() = %d", got)
	}
	if got := l.CheckpointSeq(); got != 0 {
		t.Fatalf("CheckpointSeq() = %d", got)
	}

	lsn, err := l.AppendIngest(0, 0, 1, 3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.LastLSN(); got != lsn {
		t.Fatalf("LastLSN = %d, want %d", got, lsn)
	}
	if err := l.Sync(lsn); err != nil {
		t.Fatal(err)
	}
	if got := l.DurableLSN(); got != lsn {
		t.Fatalf("DurableLSN = %d, want %d", got, lsn)
	}
	// Syncing an LSN that was never appended is a caller bug and must
	// be reported, not silently "durable".
	if err := l.Sync(lsn + 5); err == nil || !strings.Contains(err.Error(), "sync past end of log") {
		t.Fatalf("Sync past end err = %v", err)
	}

	if err := l.WriteCheckpoint(&Checkpoint{Slot: 1, Cursors: map[int]uint64{0: 1}}, l.CurrentSegment()); err != nil {
		t.Fatal(err)
	}
	if got := l.CheckpointSeq(); got != 1 {
		t.Fatalf("CheckpointSeq after write = %d", got)
	}

	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.AppendAdvance(0); err == nil || !strings.Contains(err.Error(), "log closed") {
		t.Fatalf("append on closed log err = %v", err)
	}
	if err := l.WriteCheckpoint(&Checkpoint{}, 1); err == nil || !strings.Contains(err.Error(), "log closed") {
		t.Fatalf("checkpoint on closed log err = %v", err)
	}
	l.Crash() // no-op after Close, must not panic
}

// TestSyncOnClosedLog: a PolicyAlways Sync that loses the race with
// Close reports the closed log instead of hanging.
func TestSyncOnClosedLog(t *testing.T) {
	l, _, err := Open(t.TempDir(), Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.AppendAdvance(0)
	if err != nil {
		t.Fatal(err)
	}
	l.Crash()
	if err := l.Sync(lsn); err == nil || !strings.Contains(err.Error(), "log closed") {
		t.Fatalf("Sync after crash err = %v", err)
	}
	// The failure is sticky.
	if err := l.Sync(lsn); err == nil {
		t.Fatal("second Sync after crash succeeded")
	}
}

// TestWriteFileAtomicError: the temp-file creation failure is
// reported (no directory, nothing to rename).
func TestWriteFileAtomicError(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "no-such-dir", "x.ckpt")
	if err := writeFileAtomic(missing, []byte("x")); err == nil {
		t.Fatal("writeFileAtomic into missing dir succeeded")
	}
}

// TestLoadCheckpointsSkipsDamaged: recovery must fall back to the
// newest checkpoint that passes CRC + strict decode + plan
// verification, while new checkpoint sequence numbers never collide
// with the damaged newer file.
func TestLoadCheckpointsSkipsDamaged(t *testing.T) {
	dir := t.TempDir()
	good := marshalCheckpoint(&Checkpoint{Slot: 4, Cursors: map[int]uint64{0: 9}})
	if err := os.WriteFile(filepath.Join(dir, checkpointName(2)), good, 0o644); err != nil {
		t.Fatal(err)
	}
	// Newest file is CRC-valid garbage at the decode layer.
	bad := append([]byte(nil), good...)
	bad[len(ckptMagic)+frameHeaderBytes] = 9 // version byte inside the framed body
	body := bad[len(ckptMagic)+frameHeaderBytes:]
	binary.LittleEndian.PutUint32(bad[len(ckptMagic)+4:], crc32.Checksum(body, crcTable))
	if err := os.WriteFile(filepath.Join(dir, checkpointName(5)), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	// And one that is pure noise (fails CRC outright).
	if err := os.WriteFile(filepath.Join(dir, checkpointName(4)), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	ckpt, maxSeq, err := loadCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ckpt == nil || ckpt.Slot != 4 {
		t.Fatalf("loaded checkpoint = %+v, want the seq-2 fallback", ckpt)
	}
	if maxSeq != 5 {
		t.Fatalf("maxSeq = %d, want 5 (damaged file still reserves its sequence)", maxSeq)
	}

	// A full Open over the same directory agrees.
	l, st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if st.Slot != 4 {
		t.Fatalf("recovered slot = %d, want 4", st.Slot)
	}
	if got := l.CheckpointSeq(); got != 5 {
		t.Fatalf("CheckpointSeq = %d, want 5", got)
	}
}
