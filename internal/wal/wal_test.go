package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/similarity"
)

// mkset builds a placement set.
func mkset(vs ...int) similarity.Set {
	s := make(similarity.Set, len(vs))
	for _, v := range vs {
		s.Add(v)
	}
	return s
}

// testPlanBytes fabricates a small valid plan whose content varies
// with epoch, returning its canonical bytes and digest. The bytes
// round-trip through core.ParseCanonical, so verifyPlanBytes accepts
// them.
func testPlanBytes(t testing.TB, epoch int64) ([]byte, uint64) {
	t.Helper()
	p := &core.Plan{
		Flows:         []core.FlowEdge{{From: 0, To: 1, Amount: epoch + 3}},
		Redirects:     []core.Redirect{{From: 1, To: 0, Video: 2, Count: epoch}},
		Placement:     []similarity.Set{mkset(1, 2), mkset(0)},
		OverflowToCDN: []int64{0, epoch},
	}
	c := p.Canonical()
	d := core.DigestOf(c)
	if !verifyPlanBytes(c, d) {
		t.Fatalf("fabricated plan does not verify")
	}
	return c, d
}

// must adapts a (lsn, error) append result into a fatal check.
func must(t testing.TB) func(uint64, error) uint64 {
	return func(lsn uint64, err error) uint64 {
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		return lsn
	}
}

// writeScriptedLog writes a fixed record script through the public
// API: two scheduled slots, one contract-error slot, and pending
// demand for the next slot, across two instances.
func writeScriptedLog(t *testing.T, dir string, segBytes int64) {
	t.Helper()
	l, st, err := Open(dir, Options{Policy: PolicyAlways, SegmentBytes: segBytes})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if st.Records != 0 || st.Slot != 0 || st.Plan != nil {
		t.Fatalf("fresh dir recovered non-empty state: %+v", st)
	}
	c0, d0 := testPlanBytes(t, 1)
	c1, d1 := testPlanBytes(t, 2)
	m := must(t)

	m(l.AppendIngest(0, 0, 1, 0, 0, 1))
	m(l.AppendIngest(0, 0, 2, 1, 3, 2))
	m(l.AppendIngest(0, 1, 1, 2, 1, 1))
	m(l.AppendAdvance(0))
	m(l.AppendPlan(0, 1, d0, c0))

	m(l.AppendIngest(1, 0, 3, 0, 2, 1))
	m(l.AppendAdvance(1))
	m(l.AppendPlan(1, 2, d1, c1))

	m(l.AppendIngest(2, 1, 2, 3, 1, 1))
	m(l.AppendAdvance(2))
	m(l.AppendRoundErr(2))

	lsn := m(l.AppendIngest(3, 0, 4, 1, 1, 1))
	if err := l.Sync(lsn); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// readSegments returns every retained segment's bytes, in order.
func readSegments(t *testing.T, dir string) [][]byte {
	t.Helper()
	idxs, err := listSegments(dir)
	if err != nil {
		t.Fatalf("listing segments: %v", err)
	}
	out := make([][]byte, len(idxs))
	for i, idx := range idxs {
		data, err := os.ReadFile(filepath.Join(dir, segmentName(idx)))
		if err != nil {
			t.Fatalf("reading segment: %v", err)
		}
		out[i] = data
	}
	return out
}

// copyDir clones every regular file of src into dst.
func copyDir(t testing.TB, src, dst string) {
	t.Helper()
	des, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("reading %s: %v", src, err)
	}
	for _, de := range des {
		data, err := os.ReadFile(filepath.Join(src, de.Name()))
		if err != nil {
			t.Fatalf("copy: %v", err)
		}
		if err := os.WriteFile(filepath.Join(dst, de.Name()), data, 0o644); err != nil {
			t.Fatalf("copy: %v", err)
		}
	}
}

// stateCore projects a State onto its comparable durable content.
type stateCore struct {
	Slot            int
	Epoch           int64
	PlanSlot        int
	PlanEpoch       int64
	PlanDigest      uint64
	PlanBytes       string
	Pending         []Entry
	PendingRequests int64
	Queue           []QueuedSlot
	Cursors         map[int]uint64
}

func coreOf(st *State) stateCore {
	sc := stateCore{
		Slot:            st.Slot,
		Epoch:           st.Epoch,
		Pending:         st.Pending,
		PendingRequests: st.PendingRequests,
		Queue:           st.Queue,
		Cursors:         st.Cursors,
	}
	if st.Plan != nil {
		sc.PlanSlot = st.Plan.Slot
		sc.PlanEpoch = st.Plan.Epoch
		sc.PlanDigest = st.Plan.Digest
		sc.PlanBytes = string(st.Plan.Canonical)
	}
	return sc
}

func requireStateEqual(t *testing.T, got, want *State, ctx string) {
	t.Helper()
	g, w := coreOf(got), coreOf(want)
	if !reflect.DeepEqual(g, w) {
		t.Fatalf("%s: recovered state diverged from durable prefix\n got: %+v\nwant: %+v", ctx, g, w)
	}
	if got.Plan != nil && !verifyPlanBytes(got.Plan.Canonical, got.Plan.Digest) {
		t.Fatalf("%s: recovery installed an unverified plan", ctx)
	}
}

func TestLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeScriptedLog(t, dir, DefaultSegmentBytes)
	l, st, err := Open(dir, Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()

	if st.Slot != 3 {
		t.Errorf("slot counter %d, want 3", st.Slot)
	}
	if st.Epoch != 2 {
		t.Errorf("epoch %d, want 2", st.Epoch)
	}
	c1, d1 := testPlanBytes(t, 2)
	if st.Plan == nil || st.Plan.Epoch != 2 || st.Plan.Slot != 1 || st.Plan.Digest != d1 || !bytes.Equal(st.Plan.Canonical, c1) {
		t.Errorf("recovered plan %+v, want slot 1 epoch 2", st.Plan)
	}
	wantPending := []Entry{{Hotspot: 1, Video: 1, Count: 1}}
	if !reflect.DeepEqual(st.Pending, wantPending) {
		t.Errorf("pending %+v, want %+v", st.Pending, wantPending)
	}
	if st.PendingRequests != 1 {
		t.Errorf("pending requests %d, want 1", st.PendingRequests)
	}
	// Slot 2's demand was consumed by the durable contract-error
	// record, mirroring the live server dropping it.
	if len(st.Queue) != 0 {
		t.Errorf("queue %+v, want empty", st.Queue)
	}
	wantCursors := map[int]uint64{0: 4, 1: 2}
	if !reflect.DeepEqual(st.Cursors, wantCursors) {
		t.Errorf("cursors %v, want %v", st.Cursors, wantCursors)
	}
	if st.Records != 12 {
		t.Errorf("recovered records %d, want 12", st.Records)
	}
	if st.TruncatedBytes != 0 {
		t.Errorf("truncated %d bytes on a clean log", st.TruncatedBytes)
	}
}

// TestTornTailRecovery is the truncation half of the crash-injection
// harness: the final segment is cut at every byte offset, and
// recovery must (without panicking or erroring) reconstruct exactly
// the state implied by the surviving valid frame prefix, truncating
// the tail.
func TestTornTailRecovery(t *testing.T) {
	src := t.TempDir()
	writeScriptedLog(t, src, 192) // forces several segments
	segs := readSegments(t, src)
	if len(segs) < 2 {
		t.Fatalf("want multiple segments, got %d", len(segs))
	}
	var prefixRecs []record
	for _, data := range segs[:len(segs)-1] {
		rs, v := scanSegment(data)
		if v != len(data) {
			t.Fatalf("sealed segment not fully valid")
		}
		prefixRecs = append(prefixRecs, rs...)
	}
	last := segs[len(segs)-1]
	scratch := t.TempDir()
	for off := 0; off <= len(last); off++ {
		dir := filepath.Join(scratch, "t")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		copyDir(t, src, dir)
		idxs, _ := listSegments(dir)
		lastPath := filepath.Join(dir, segmentName(idxs[len(idxs)-1]))
		if err := os.Truncate(lastPath, int64(off)); err != nil {
			t.Fatal(err)
		}

		l, st, err := Open(dir, Options{Policy: PolicyAlways})
		if err != nil {
			t.Fatalf("offset %d: recovery failed: %v", off, err)
		}
		l.Close()

		rs, validLen := scanSegment(last[:off])
		want := buildState(nil, append(append([]record(nil), prefixRecs...), rs...))
		requireStateEqual(t, st, want, "truncate@"+itoa(off))
		if wantTrunc := int64(off - validLen); st.TruncatedBytes != wantTrunc {
			t.Fatalf("offset %d: truncated %d bytes, want %d", off, st.TruncatedBytes, wantTrunc)
		}
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCorruptionRecovery is the corruption half of the harness: a
// single byte is flipped at every offset of every segment. The CRC
// must catch the damage, and recovery must reconstruct exactly the
// records preceding the damaged frame — everything after it
// (including later segments) is discarded.
func TestCorruptionRecovery(t *testing.T) {
	src := t.TempDir()
	writeScriptedLog(t, src, 192)
	segs := readSegments(t, src)
	segRecs := make([][]record, len(segs))
	for i, data := range segs {
		rs, v := scanSegment(data)
		if v != len(data) {
			t.Fatalf("segment %d not fully valid", i)
		}
		segRecs[i] = rs
	}
	scratch := t.TempDir()
	for si, data := range segs {
		ends := frameEnds(data)
		for off := 0; off < len(data); off++ {
			dir := filepath.Join(scratch, "c")
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			copyDir(t, src, dir)
			idxs, _ := listSegments(dir)
			p := filepath.Join(dir, segmentName(idxs[si]))
			mut := append([]byte(nil), data...)
			mut[off] ^= 0x41
			if err := os.WriteFile(p, mut, 0o644); err != nil {
				t.Fatal(err)
			}

			l, st, err := Open(dir, Options{Policy: PolicyAlways})
			if err != nil {
				t.Fatalf("segment %d offset %d: recovery failed: %v", si, off, err)
			}
			l.Close()

			// The flip lands inside some frame; every record before it
			// (across all earlier segments) survives, nothing after.
			damaged := 0
			for damaged < len(ends) && off >= ends[damaged] {
				damaged++
			}
			var want []record
			for sj := 0; sj < si; sj++ {
				want = append(want, segRecs[sj]...)
			}
			want = append(want, segRecs[si][:damaged]...)
			requireStateEqual(t, st, buildState(nil, want), "flip@seg"+itoa(si)+"+"+itoa(off))
			if st.TruncatedBytes <= 0 {
				t.Fatalf("segment %d offset %d: corruption not counted as truncated tail", si, off)
			}
			if err := os.RemoveAll(dir); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// frameEnds returns the cumulative end offset of each frame in a
// fully valid segment.
func frameEnds(data []byte) []int {
	var ends []int
	off := 0
	for off < len(data) {
		n := int(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		off += frameHeaderBytes + n
		ends = append(ends, off)
	}
	return ends
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestCheckpointCursorSkip(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatal(err)
	}
	m := must(t)
	// Two accepted requests, then a checkpoint that has absorbed them.
	m(l.AppendIngest(0, 0, 1, 0, 0, 1))
	lsn := m(l.AppendIngest(0, 0, 2, 1, 1, 1))
	if err := l.Sync(lsn); err != nil {
		t.Fatal(err)
	}
	mark := l.CurrentSegment()
	cp := &Checkpoint{
		Slot:    0,
		Cursors: map[int]uint64{0: 2},
		Pending: []Entry{{Hotspot: 0, Video: 0, Count: 1}, {Hotspot: 1, Video: 1, Count: 1}},
	}
	if err := l.WriteCheckpoint(cp, mark); err != nil {
		t.Fatal(err)
	}
	// One more accepted request after the checkpoint, then a crash.
	lsn = m(l.AppendIngest(0, 0, 3, 2, 2, 1))
	if err := l.Sync(lsn); err != nil {
		t.Fatal(err)
	}
	l.Crash()

	l2, st, err := Open(dir, Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer l2.Close()
	if st.CheckpointSeq != 1 {
		t.Errorf("checkpoint seq %d, want 1", st.CheckpointSeq)
	}
	// seq 1 and 2 must come from the checkpoint only (the log records
	// are skipped by the cursor), seq 3 from the WAL suffix.
	want := []Entry{{Hotspot: 0, Video: 0, Count: 1}, {Hotspot: 1, Video: 1, Count: 1}, {Hotspot: 2, Video: 2, Count: 1}}
	if !reflect.DeepEqual(st.Pending, want) {
		t.Errorf("pending %+v, want %+v (cursor-skipped replay)", st.Pending, want)
	}
	if st.Cursors[0] != 3 {
		t.Errorf("cursor %d, want 3", st.Cursors[0])
	}
}

func TestCheckpointFallbackToOlder(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatal(err)
	}
	c0, d0 := testPlanBytes(t, 1)
	if err := l.WriteCheckpoint(&Checkpoint{Slot: 1, Epoch: 1,
		Plan: &PlanState{Slot: 0, Epoch: 1, Digest: d0, Canonical: c0}}, 0); err != nil {
		t.Fatal(err)
	}
	c1, d1 := testPlanBytes(t, 2)
	if err := l.WriteCheckpoint(&Checkpoint{Slot: 2, Epoch: 2,
		Plan: &PlanState{Slot: 1, Epoch: 2, Digest: d1, Canonical: c1}}, 0); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Damage the newest checkpoint: recovery must fall back to the
	// older one rather than fail or trust damaged bytes.
	p := filepath.Join(dir, checkpointName(2))
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, st, err := Open(dir, Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer l2.Close()
	if st.CheckpointSeq != 1 || st.Slot != 1 || st.Epoch != 1 {
		t.Errorf("fell back to state %+v, want checkpoint 1 (slot 1, epoch 1)", st)
	}
	if st.Plan == nil || st.Plan.Digest != d0 {
		t.Errorf("plan %+v, want the older checkpoint's", st.Plan)
	}
}

func TestSegmentRotationAndGC(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	l, _, err := Open(dir, Options{Policy: PolicyAlways, SegmentBytes: 128, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	m := must(t)
	for i := 0; i < 40; i++ {
		m(l.AppendIngest(0, 0, uint64(i+1), i%7, i%11, 1))
	}
	if l.CurrentSegment() < 3 {
		t.Fatalf("expected rotation, still on segment %d", l.CurrentSegment())
	}
	mark1 := l.CurrentSegment()
	if err := l.WriteCheckpoint(&Checkpoint{Slot: 0, Cursors: map[int]uint64{0: 40},
		Pending: drainEntries(40)}, mark1); err != nil {
		t.Fatal(err)
	}
	for i := 40; i < 60; i++ {
		m(l.AppendIngest(0, 0, uint64(i+1), i%7, i%11, 1))
	}
	mark2 := l.CurrentSegment()
	if err := l.WriteCheckpoint(&Checkpoint{Slot: 0, Cursors: map[int]uint64{0: 60},
		Pending: drainEntries(60)}, mark2); err != nil {
		t.Fatal(err)
	}
	// GC lags one checkpoint: segments below mark1 are gone, those
	// mark1..mark2 retained for the older checkpoint's replay.
	idxs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(idxs) == 0 || idxs[0] != mark1 {
		t.Errorf("segments %v, want oldest retained = %d", idxs, mark1)
	}
	l.Close()

	l2, st, err := Open(dir, Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatalf("recovery after GC: %v", err)
	}
	defer l2.Close()
	if st.PendingRequests != 60 || st.Cursors[0] != 60 {
		t.Errorf("recovered %d pending (cursor %d), want 60/60", st.PendingRequests, st.Cursors[0])
	}
}

// drainEntries mirrors the test's ingest pattern as merged entries.
func drainEntries(n int) []Entry {
	m := make(map[entryKey]int64)
	for i := 0; i < n; i++ {
		m[entryKey{i % 7, i % 11}]++
	}
	return sortedEntries(m)
}

func TestCrashDropsUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Policy: PolicyNone})
	if err != nil {
		t.Fatal(err)
	}
	lsn := must(t)(l.AppendIngest(0, 0, 1, 0, 0, 1))
	if err := l.Sync(lsn); err != nil { // no-op under PolicyNone
		t.Fatal(err)
	}
	l.Crash()
	l2, st, err := Open(dir, Options{Policy: PolicyNone})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer l2.Close()
	// The record sat in the user-space buffer; the simulated crash
	// dropped it. Nothing recovered, nothing corrupted.
	if st.Records != 0 || st.PendingRequests != 0 {
		t.Errorf("recovered %d records / %d pending after unflushed crash, want none", st.Records, st.PendingRequests)
	}
}

func TestIntervalPolicyFlushes(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Policy: PolicyInterval, Interval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	lsn := must(t)(l.AppendIngest(0, 0, 1, 3, 4, 2))
	if err := l.Sync(lsn); err != nil { // returns immediately
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.DurableLSN() < lsn {
		if time.Now().After(deadline) {
			t.Fatal("interval flusher never made the record durable")
		}
		time.Sleep(5 * time.Millisecond)
	}
	l.Crash() // buffered writer already flushed by the ticker
	l2, st, err := Open(dir, Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer l2.Close()
	if st.PendingRequests != 2 {
		t.Errorf("recovered %d pending requests, want 2 (interval flush)", st.PendingRequests)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				lsn, err := l.AppendIngest(0, g, uint64(i+1), g, i, 1)
				if err == nil {
					err = l.Sync(lsn)
				}
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	l.Crash() // synced records must all survive a crash

	l2, st, err := Open(dir, Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer l2.Close()
	if st.PendingRequests != goroutines*perG {
		t.Errorf("recovered %d pending requests, want %d", st.PendingRequests, goroutines*perG)
	}
	for g := 0; g < goroutines; g++ {
		if st.Cursors[g] != perG {
			t.Errorf("instance %d cursor %d, want %d", g, st.Cursors[g], perG)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"", PolicyAlways, true},
		{"always", PolicyAlways, true},
		{"interval", PolicyInterval, true},
		{"none", PolicyNone, true},
		{"sometimes", 0, false},
		{"ALWAYS", 0, false},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if c.ok != (err == nil) || (c.ok && got != c.want) {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	if PolicyInterval.String() != "interval" {
		t.Errorf("Policy.String: %q", PolicyInterval.String())
	}
}

func TestMetricsCounters(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	l, _, err := Open(dir, Options{Policy: PolicyAlways, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	lsn := must(t)(l.AppendIngest(0, 0, 1, 0, 0, 1))
	if err := l.Sync(lsn); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteCheckpoint(&Checkpoint{Slot: 0, Cursors: map[int]uint64{0: 1},
		Pending: []Entry{{Hotspot: 0, Video: 0, Count: 1}}}, 0); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if got := reg.Counter("wal.appends").Value(); got != 1 {
		t.Errorf("wal.appends = %d, want 1", got)
	}
	if got := reg.Counter("wal.fsyncs").Value(); got < 1 {
		t.Errorf("wal.fsyncs = %d, want >= 1", got)
	}
	if got := reg.Counter("wal.bytes").Value(); got <= 0 {
		t.Errorf("wal.bytes = %d, want > 0", got)
	}
	if got := reg.Counter("wal.checkpoints").Value(); got != 1 {
		t.Errorf("wal.checkpoints = %d, want 1", got)
	}

	reg2 := obs.NewRegistry()
	l2, st, err := Open(dir, Options{Policy: PolicyAlways, Registry: reg2})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := reg2.Counter("wal.recovered_records").Value(); got != int64(st.Records) {
		t.Errorf("wal.recovered_records = %d, state says %d", got, st.Records)
	}
}

func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.AppendAdvance(0); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}
