package wal

import (
	"bytes"
	"testing"
)

// FuzzWALReplay throws arbitrary bytes at the full recovery path:
// segment scanning, record decoding, checkpoint unmarshalling, and
// state building must never panic, the valid prefix must be stable
// (re-scanning it yields the same records), and any plan that reaches
// a State must pass full verification.
func FuzzWALReplay(f *testing.F) {
	// Seed with a well-formed segment and checkpoint so the fuzzer
	// starts from structurally valid corpora.
	var seg []byte
	recs := []record{
		{kind: recIngest, slot: 0, instance: 1, seq: 1, hotspot: 2, video: 3, count: 4},
		{kind: recAdvance, slot: 0},
		{kind: recPlan, slot: 0, epoch: 1, digest: 42, canonical: []byte("plan v1\n")},
		{kind: recRoundErr, slot: 1},
	}
	for i := range recs {
		seg = appendFrame(seg, recs[i].encode(nil))
	}
	f.Add(seg)
	f.Add(marshalCheckpoint(&Checkpoint{
		Slot:    2,
		Epoch:   3,
		Cursors: map[int]uint64{0: 5},
		Pending: []Entry{{Hotspot: 1, Video: 2, Count: 3}},
		Queue:   []QueuedSlot{{Slot: 1, Requests: 2, Entries: []Entry{{Hotspot: 0, Video: 0, Count: 2}}}},
	}))
	f.Add([]byte{})
	f.Add([]byte("WALCKPT1garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, validLen := scanSegment(data)
		if validLen < 0 || validLen > len(data) {
			t.Fatalf("validLen %d out of range [0, %d]", validLen, len(data))
		}
		again, againLen := scanSegment(data[:validLen])
		if againLen != validLen || len(again) != len(recs) {
			t.Fatalf("valid prefix not stable: %d/%d records, %d/%d bytes",
				len(again), len(recs), againLen, validLen)
		}

		st := buildState(nil, recs)
		if st.Plan != nil && !verifyPlanBytes(st.Plan.Canonical, st.Plan.Digest) {
			t.Fatal("buildState surfaced an unverified plan")
		}
		for _, q := range st.Queue {
			if len(q.Entries) == 0 {
				t.Fatal("buildState surfaced an empty queued slot")
			}
		}

		if cp, err := unmarshalCheckpoint(data); err == nil {
			// A checkpoint that decodes must re-marshal into bytes that
			// decode to the same checkpoint (modulo the CRC frame), and
			// must be safe to replay records onto.
			st2 := buildState(cp, recs)
			if st2.Plan != nil && cp.Plan == nil && st.Plan == nil {
				t.Fatal("plan appeared from nowhere")
			}
			round := marshalCheckpoint(cp)
			cp2, err := unmarshalCheckpoint(round)
			if err != nil {
				t.Fatalf("re-marshalled checkpoint does not decode: %v", err)
			}
			if !bytes.Equal(marshalCheckpoint(cp2), round) {
				t.Fatal("checkpoint marshalling not a fixed point")
			}
		}
	})
}
